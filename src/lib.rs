//! # sparc-dyser
//!
//! An end-to-end reproduction of the SPARC-DySER prototype system
//! evaluated in *"Performance evaluation of a DySER FPGA prototype system
//! spanning the compiler, microarchitecture, and hardware implementation"*
//! (ISPASS 2015): the DySER coarse-grained reconfigurable fabric
//! integrated into an OpenSPARC-T1-like core, with its co-designed
//! compiler, rebuilt as a cycle-level simulation stack in Rust.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`isa`] — the SPARC-flavoured ISA with the DySER extension,
//! * [`mem`] — functional memory and the blocking cache hierarchy,
//! * [`fabric`] — the cycle-level DySER fabric model,
//! * [`sparc`] — the in-order pipeline timing model,
//! * [`compiler`] — the co-designed compiler (SSA IR → SPARC+DySER),
//! * [`core`] — the integrated system and experiment harness,
//! * [`energy`] — the activity-based power/energy model,
//! * [`workloads`] — the benchmark suite and manual DySER mappings.
//!
//! ## Quickstart
//!
//! ```
//! use sparc_dyser::core::{run_kernel, RunConfig};
//! use sparc_dyser::workloads::suite;
//!
//! let kernels = suite();
//! let saxpy = kernels.iter().find(|k| k.name == "saxpy").unwrap();
//! let mut config = RunConfig::default();
//! config.compiler = saxpy.compiler_options(config.system.geometry);
//! let result = run_kernel(&saxpy.case(64, 42), &config)?;
//! assert!(result.speedup > 0.5);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```


#![warn(missing_docs)]
pub use dyser_compiler as compiler;
pub use dyser_core as core;
pub use dyser_energy as energy;
pub use dyser_fabric as fabric;
pub use dyser_isa as isa;
pub use dyser_mem as mem;
pub use dyser_sparc as sparc;
pub use dyser_workloads as workloads;
