//! Register-pressure stress: kernels with more simultaneously live values
//! than the machine has registers force the linear-scan allocator down its
//! spill paths (int and fp), and the results must still match the
//! interpreter on both binaries.

use sparc_dyser::compiler::ir::interp::{interpret, InterpMem};
use sparc_dyser::compiler::{
    compile, BinOp, CmpOp, CompilerOptions, Function, FunctionBuilder, Type, Value,
};
use sparc_dyser::core::{run_program, RunConfig};

const BUF_A: u64 = 0x20_0000;
const BUF_C: u64 = 0x40_0000;

/// Loads `width` values up front, keeps them all live across a long chain,
/// then combines everything — more than 18 live integers at once.
fn wide_int_kernel(width: usize) -> Function {
    let mut b = FunctionBuilder::new("wide", &[("a", Type::Ptr), ("c", Type::Ptr), ("n", Type::I64)]);
    let (a, c, n) = (b.param(0), b.param(1), b.param(2));
    let zero = b.const_i(0);
    let one = b.const_i(1);
    let body = b.block("body");
    let exit = b.block("exit");
    let entry = b.current();
    b.br(body);
    b.switch_to(body);
    let i = b.phi(Type::I64);
    // `width` long-lived loads.
    let lanes: Vec<Value> = (0..width)
        .map(|k| {
            let off = b.const_i(k as i64);
            let idx = b.bin(BinOp::Add, i, off);
            let p = b.gep(a, idx, 8);
            b.load(p, Type::I64)
        })
        .collect();
    // A chain that keeps every lane live until its final use.
    let mut acc = lanes[0];
    for (k, &lane) in lanes.iter().enumerate().skip(1) {
        let rot = b.const_i((k % 7 + 1) as i64);
        let shifted = b.bin(BinOp::Shl, lane, rot);
        acc = b.bin(BinOp::Xor, acc, shifted);
    }
    // Re-touch all lanes in reverse, extending their live ranges across
    // the whole chain above.
    for &lane in lanes.iter().rev() {
        acc = b.bin(BinOp::Add, acc, lane);
    }
    let pc = b.gep(c, i, 8);
    b.store(acc, pc);
    let i2 = b.bin(BinOp::Add, i, one);
    b.add_incoming(i, entry, zero);
    b.add_incoming(i, body, i2);
    let cond = b.cmp(CmpOp::Slt, i2, n);
    b.cond_br(cond, body, exit);
    b.switch_to(exit);
    b.ret(None);
    b.build().unwrap()
}

/// Same idea over doubles: more than 30 live fp values.
fn wide_fp_kernel(width: usize) -> Function {
    let mut b = FunctionBuilder::new("widefp", &[("a", Type::Ptr), ("c", Type::Ptr), ("n", Type::I64)]);
    let (a, c, n) = (b.param(0), b.param(1), b.param(2));
    let zero = b.const_i(0);
    let one = b.const_i(1);
    let body = b.block("body");
    let exit = b.block("exit");
    let entry = b.current();
    b.br(body);
    b.switch_to(body);
    let i = b.phi(Type::I64);
    let lanes: Vec<Value> = (0..width)
        .map(|k| {
            let off = b.const_i(k as i64);
            let idx = b.bin(BinOp::Add, i, off);
            let p = b.gep(a, idx, 8);
            b.load(p, Type::F64)
        })
        .collect();
    let mut acc = lanes[0];
    for &lane in lanes.iter().skip(1) {
        acc = b.bin(BinOp::Fmul, acc, lane);
    }
    for &lane in lanes.iter().rev() {
        acc = b.bin(BinOp::Fadd, acc, lane);
    }
    let pc = b.gep(c, i, 8);
    b.store(acc, pc);
    let i2 = b.bin(BinOp::Add, i, one);
    b.add_incoming(i, entry, zero);
    b.add_incoming(i, body, i2);
    let cond = b.cmp(CmpOp::Slt, i2, n);
    b.cond_br(cond, body, exit);
    b.switch_to(exit);
    b.ret(None);
    b.build().unwrap()
}

fn check(f: &Function, n: usize, width: usize, fp: bool) {
    let total = n + width;
    let a: Vec<u64> = if fp {
        (0..total).map(|k| (1.0 + (k as f64) * 0.01).to_bits()).collect()
    } else {
        (0..total as u64).map(|k| k.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1).collect()
    };
    let args = [BUF_A, BUF_C, n as u64];

    let mut imem = InterpMem::new();
    imem.write_u64_slice(BUF_A, &a);
    interpret(f, &args, &mut imem, 50_000_000).unwrap();
    let expected = imem.read_u64_slice(BUF_C, n);

    // No unrolling: pressure is already extreme; exercise both binaries.
    let opts = CompilerOptions { unroll_factor: 1, ..CompilerOptions::default() };
    let compiled = compile(f, &opts).unwrap();
    assert!(
        compiled.baseline.spill_slots > 1,
        "this kernel must actually spill (got {} slots)",
        compiled.baseline.spill_slots
    );
    let init = vec![(BUF_A, a)];
    let want = vec![(BUF_C, expected)];
    let rc = RunConfig::default();
    run_program("baseline", &compiled.baseline, &args, &init, &want, &rc)
        .unwrap_or_else(|e| panic!("baseline width {width}: {e}"));
    run_program("dyser", &compiled.accelerated, &args, &init, &want, &rc)
        .unwrap_or_else(|e| panic!("dyser width {width}: {e}"));
}

#[test]
fn int_spills_are_correct() {
    for width in [20usize, 26] {
        let f = wide_int_kernel(width);
        check(&f, 13, width, false);
    }
}

#[test]
fn fp_spills_are_correct() {
    for width in [32usize, 40] {
        let f = wide_fp_kernel(width);
        check(&f, 9, width, true);
    }
}
