//! Lowering coverage: one kernel per IR operation family that the main
//! suite does not exercise, each verified against the interpreter on both
//! binaries (and with the region offloaded where selection allows).

use sparc_dyser::compiler::ir::interp::{interpret, InterpMem};
use sparc_dyser::compiler::{
    compile, BinOp, CmpOp, CompilerOptions, Function, FunctionBuilder, Type, UnOp, Value,
};
use sparc_dyser::core::{run_program, RunConfig};

const BUF_A: u64 = 0x20_0000;
const BUF_C: u64 = 0x40_0000;

/// Builds `c[i] = body(a[i], i)` over `n` elements.
fn elementwise(
    name: &str,
    in_ty: Type,
    body: impl FnOnce(&mut FunctionBuilder, Value, Value) -> Value,
) -> Function {
    let mut b = FunctionBuilder::new(name, &[("a", Type::Ptr), ("c", Type::Ptr), ("n", Type::I64)]);
    let (a, c, n) = (b.param(0), b.param(1), b.param(2));
    let zero = b.const_i(0);
    let one = b.const_i(1);
    let bb = b.block("body");
    let exit = b.block("exit");
    let entry = b.current();
    b.br(bb);
    b.switch_to(bb);
    let i = b.phi(Type::I64);
    let p = b.gep(a, i, 8);
    let x = b.load(p, in_ty);
    let result = body(&mut b, x, i);
    let pc = b.gep(c, i, 8);
    b.store(result, pc);
    let i2 = b.bin(BinOp::Add, i, one);
    b.add_incoming(i, entry, zero);
    b.add_incoming(i, bb, i2);
    let cond = b.cmp(CmpOp::Slt, i2, n);
    b.cond_br(cond, bb, exit);
    b.switch_to(exit);
    b.ret(None);
    b.build().unwrap()
}

fn check(f: &Function, input: Vec<u64>, unroll: usize) {
    let n = input.len();
    let args = [BUF_A, BUF_C, n as u64];
    let mut imem = InterpMem::new();
    imem.write_u64_slice(BUF_A, &input);
    interpret(f, &args, &mut imem, 10_000_000).unwrap();
    let expected = imem.read_u64_slice(BUF_C, n);

    let opts = CompilerOptions { unroll_factor: unroll, ..CompilerOptions::default() };
    let compiled = compile(f, &opts).unwrap_or_else(|e| panic!("{}: {e}", f.name()));
    let init = vec![(BUF_A, input)];
    let want = vec![(BUF_C, expected)];
    let rc = RunConfig::default();
    run_program("baseline", &compiled.baseline, &args, &init, &want, &rc)
        .unwrap_or_else(|e| panic!("{} baseline: {e}", f.name()));
    run_program("dyser", &compiled.accelerated, &args, &init, &want, &rc)
        .unwrap_or_else(|e| panic!("{} dyser: {e}", f.name()));
}

fn ints(n: usize) -> Vec<u64> {
    (0..n as u64).map(|k| k.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(k)).collect()
}

fn floats(n: usize) -> Vec<u64> {
    (0..n).map(|k| ((k as f64) * 0.731 - 7.0).to_bits()).collect()
}

#[test]
fn smax_smin_clamp() {
    let f = elementwise("iclamp", Type::I64, |b, x, _| {
        let lo = b.const_i(-1000);
        let hi = b.const_i(1000);
        let m = b.bin(BinOp::Smax, x, lo);
        b.bin(BinOp::Smin, m, hi)
    });
    check(&f, ints(21), 4);
}

#[test]
fn conversions_roundtrip_through_fp() {
    // c[i] = ftoi(itof(x) * 0.5) — exercises Xtod/Dtox on the core and
    // IToF/FToI in the fabric.
    let f = elementwise("conv", Type::I64, |b, x, _| {
        let half = b.const_f(0.5);
        let fx = b.un(UnOp::Itof, x);
        let scaled = b.bin(BinOp::Fmul, fx, half);
        b.un(UnOp::Ftoi, scaled)
    });
    let input: Vec<u64> = (0..19).map(|k| (k as i64 * 37 - 300) as u64).collect();
    check(&f, input, 4);
}

#[test]
fn boolean_not_and_unsigned_compare() {
    // c[i] = !(x <u 2^32) ? x : i  — ult + not + select.
    let f = elementwise("ult_not", Type::I64, |b, x, i| {
        let lim = b.const_i(1i64 << 32);
        let small = b.cmp(CmpOp::Ult, x, lim);
        let big = b.un(UnOp::Not, small);
        b.select(big, x, i)
    });
    check(&f, ints(23), 4);
}

#[test]
fn fneg_fabs_fsqrt_chain() {
    let f = elementwise("fpuns", Type::F64, |b, x, _| {
        let neg = b.un(UnOp::Fneg, x);
        let abs = b.un(UnOp::Fabs, neg);
        let root = b.un(UnOp::Fsqrt, abs);
        b.bin(BinOp::Fsub, root, x)
    });
    check(&f, floats(17), 2);
}

#[test]
fn divides_are_trap_free_everywhere() {
    // c[i] = (x / (i - 4)) + x sdiv by values passing through zero, plus
    // an fdiv — the IR, the core, and the fabric all define x/0 = 0 (int)
    // and IEEE semantics (fp).
    let f = elementwise("divs", Type::I64, |b, x, i| {
        let four = b.const_i(4);
        let d = b.bin(BinOp::Sub, i, four);
        let q = b.bin(BinOp::Sdiv, x, d);
        b.bin(BinOp::Add, q, x)
    });
    check(&f, ints(16), 1);

    let g = elementwise("fdivs", Type::F64, |b, x, _| {
        let k = b.const_f(3.0);
        b.bin(BinOp::Fdiv, k, x)
    });
    check(&g, floats(16), 2);
}

#[test]
fn shifts_with_dynamic_counts() {
    // Shift counts from data (mod-64 semantics must agree end to end).
    let f = elementwise("shifty", Type::I64, |b, x, i| {
        let s1 = b.bin(BinOp::Shl, x, i);
        let s2 = b.bin(BinOp::Lshr, x, i);
        let s3 = b.bin(BinOp::Ashr, x, i);
        let t = b.bin(BinOp::Xor, s1, s2);
        b.bin(BinOp::Xor, t, s3)
    });
    check(&f, ints(70), 4); // i exceeds 64: wraps
}

#[test]
fn fp_compare_select_three_way() {
    // c[i] = x < 0 ? -1.0 : (x <= 1.0 ? x : 1.0) — fcmp chains + selects.
    let f = elementwise("fsel3", Type::F64, |b, x, _| {
        let zero = b.const_f(0.0);
        let one = b.const_f(1.0);
        let neg1 = b.const_f(-1.0);
        let lt0 = b.cmp(CmpOp::Flt, x, zero);
        let le1 = b.cmp(CmpOp::Fle, x, one);
        let upper = b.select(le1, x, one);
        b.select(lt0, neg1, upper)
    });
    check(&f, floats(25), 4);
}
