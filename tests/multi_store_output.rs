//! A compute value stored to two different arrays: the fabric produces it
//! once per invocation, so the code generator must receive it into a
//! register and perform both stores from there (two `dstore`s on one port
//! would deadlock).

use sparc_dyser::compiler::ir::interp::{interpret, InterpMem};
use sparc_dyser::compiler::{compile, BinOp, CmpOp, CompilerOptions, FunctionBuilder, Type};
use sparc_dyser::core::{run_program, RunConfig};

const BUF_A: u64 = 0x20_0000;
const BUF_C: u64 = 0x40_0000;
const BUF_D: u64 = 0x50_0000;

#[test]
fn value_stored_twice_verifies() {
    // c[i] = d[i] = a[i]*a[i] + 1
    let mut b = FunctionBuilder::new(
        "dup",
        &[("a", Type::Ptr), ("c", Type::Ptr), ("d", Type::Ptr), ("n", Type::I64)],
    );
    let (a, c, d, n) = (b.param(0), b.param(1), b.param(2), b.param(3));
    let zero = b.const_i(0);
    let one = b.const_i(1);
    let body = b.block("body");
    let exit = b.block("exit");
    let entry = b.current();
    b.br(body);
    b.switch_to(body);
    let i = b.phi(Type::I64);
    let pa = b.gep(a, i, 8);
    let x = b.load(pa, Type::I64);
    let xx = b.bin(BinOp::Mul, x, x);
    let v = b.bin(BinOp::Add, xx, one);
    let pc = b.gep(c, i, 8);
    let pd = b.gep(d, i, 8);
    b.store(v, pc);
    b.store(v, pd);
    let i2 = b.bin(BinOp::Add, i, one);
    b.add_incoming(i, entry, zero);
    b.add_incoming(i, body, i2);
    let cond = b.cmp(CmpOp::Slt, i2, n);
    b.cond_br(cond, body, exit);
    b.switch_to(exit);
    b.ret(None);
    let f = b.build().unwrap();

    for unroll in [1usize, 4] {
        let n = 27usize;
        let input: Vec<u64> = (0..n as u64).map(|k| k * 3 + 1).collect();
        let args = [BUF_A, BUF_C, BUF_D, n as u64];

        let mut imem = InterpMem::new();
        imem.write_u64_slice(BUF_A, &input);
        interpret(&f, &args, &mut imem, 1_000_000).unwrap();
        let want_c = imem.read_u64_slice(BUF_C, n);
        let want_d = imem.read_u64_slice(BUF_D, n);

        let opts = CompilerOptions { unroll_factor: unroll, ..CompilerOptions::default() };
        let compiled = compile(&f, &opts).unwrap();
        assert!(compiled.accelerated_any, "the region must still accelerate");

        let init = vec![(BUF_A, input.clone())];
        let want = vec![(BUF_C, want_c.clone()), (BUF_D, want_d.clone())];
        let rc = RunConfig::default();
        run_program("baseline", &compiled.baseline, &args, &init, &want, &rc)
            .unwrap_or_else(|e| panic!("baseline unroll {unroll}: {e}"));
        run_program("dyser", &compiled.accelerated, &args, &init, &want, &rc)
            .unwrap_or_else(|e| panic!("dyser unroll {unroll}: {e}"));
    }
}
