//! Differential randomized testing of the whole stack.
//!
//! For randomly generated kernels — a canonical loop whose body is a
//! random expression DAG over the loop index, two loaded streams, and
//! constants — the IR interpreter, the compiled **baseline** binary
//! executed on the cycle-level machine, and the compiled **DySER** binary
//! (random unroll factor and lag depth) must all produce bit-identical
//! output buffers.
//!
//! This exercises, per case: the builder, verifier, const-fold/CSE/DCE,
//! unrolling with epilogues, region slicing, spatial scheduling, both code
//! generators, the assembler/encoder, the pipeline, the caches, and the
//! fabric — against the one independent source of truth.
//!
//! Seeded with `dyser-rng` so the case set is identical on every run.

use dyser_rng::Rng64;
use sparc_dyser::compiler::ir::interp::{interpret, InterpMem};
use sparc_dyser::compiler::{
    compile, BinOp, CmpOp, CompilerOptions, Function, FunctionBuilder, Type, Value,
};
use sparc_dyser::core::{run_program, RunConfig};

const BUF_A: u64 = 0x20_0000;
const BUF_B: u64 = 0x30_0000;
const BUF_C: u64 = 0x40_0000;

/// A recipe for one random expression node.
#[derive(Debug, Clone)]
enum Node {
    /// Leaf: 0 = a[i], 1 = b[i], 2 = i, 3+ = constant.
    Leaf(u8, i64),
    /// Binary op over two earlier nodes.
    Bin(u8, usize, usize),
    /// Compare + select over three earlier nodes.
    Select(usize, usize, usize),
}

#[derive(Debug, Clone)]
struct Recipe {
    nodes: Vec<Node>,
    unroll: usize,
    lag_depth: usize,
    n: usize,
}

fn int_bin(tag: u8) -> BinOp {
    match tag % 9 {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::And,
        4 => BinOp::Or,
        5 => BinOp::Xor,
        6 => BinOp::Smax,
        7 => BinOp::Smin,
        _ => BinOp::Ashr,
    }
}

fn rand_recipe(rng: &mut Rng64) -> Recipe {
    // Full-range constants exercise the 64-bit materialisation paths in
    // the code generator and the fabric's configured constants.
    let n_leaves = rng.gen_range(2usize..4);
    let mut nodes: Vec<Node> = (0..n_leaves)
        .map(|_| Node::Leaf(rng.gen_range(0u64..4) as u8, rng.next_u64() as i64))
        .collect();
    let extra_ops = rng.gen_range(0usize..6);
    for _ in 0..extra_ops + 1 {
        let avail = nodes.len();
        let sel = rng.next_u64() as u8;
        let node = if sel.is_multiple_of(4) && avail >= 3 {
            Node::Select(
                rng.gen_range(0..avail),
                rng.gen_range(0..avail),
                rng.gen_range(0..avail),
            )
        } else {
            Node::Bin(rng.next_u64() as u8, rng.gen_range(0..avail), rng.gen_range(0..avail))
        };
        nodes.push(node);
    }
    Recipe {
        nodes,
        unroll: 1 << rng.gen_range(0usize..3),
        lag_depth: rng.gen_range(1usize..4),
        n: rng.gen_range(8usize..28),
    }
}

/// Builds the kernel: for i in 0..n { c[i] = expr(a[i], b[i], i) }.
fn build_kernel(recipe: &Recipe) -> Function {
    let mut b = FunctionBuilder::new(
        "random",
        &[("a", Type::Ptr), ("b", Type::Ptr), ("c", Type::Ptr), ("n", Type::I64)],
    );
    let (a, bb, c, n) = (b.param(0), b.param(1), b.param(2), b.param(3));
    let zero = b.const_i(0);
    let one = b.const_i(1);
    let body = b.block("body");
    let exit = b.block("exit");
    let entry = b.current();
    b.br(body);
    b.switch_to(body);
    let i = b.phi(Type::I64);
    let pa = b.gep(a, i, 8);
    let pb = b.gep(bb, i, 8);
    let va = b.load(pa, Type::I64);
    let vb = b.load(pb, Type::I64);

    let mut vals: Vec<Value> = Vec::new();
    for node in &recipe.nodes {
        let v = match node {
            Node::Leaf(0, _) => va,
            Node::Leaf(1, _) => vb,
            Node::Leaf(2, _) => i,
            Node::Leaf(_, cst) => b.const_i(*cst),
            Node::Bin(tag, x, y) => {
                let op = int_bin(*tag);
                b.bin(op, vals[*x], vals[*y])
            }
            Node::Select(x, y, z) => {
                let cond = b.cmp(CmpOp::Slt, vals[*x], vals[*y]);
                b.select(cond, vals[*y], vals[*z])
            }
        };
        vals.push(v);
    }
    let result = *vals.last().expect("at least one node");
    // Guarantee the stored value is a computed (non-leaf) expression so a
    // region always has something to offload.
    let result = b.bin(BinOp::Add, result, va);
    let pc = b.gep(c, i, 8);
    b.store(result, pc);
    let i2 = b.bin(BinOp::Add, i, one);
    b.add_incoming(i, entry, zero);
    b.add_incoming(i, body, i2);
    let cond = b.cmp(CmpOp::Slt, i2, n);
    b.cond_br(cond, body, exit);
    b.switch_to(exit);
    b.ret(None);
    b.build().expect("random kernels are well-formed")
}

/// Floating-point variant: binary fp op tags.
fn fp_bin(tag: u8) -> BinOp {
    match tag % 6 {
        0 => BinOp::Fadd,
        1 => BinOp::Fsub,
        2 => BinOp::Fmul,
        3 => BinOp::Fdiv,
        4 => BinOp::Fmax,
        _ => BinOp::Fmin,
    }
}

/// Builds the fp kernel: c[i] = expr(a[i], b[i]) over doubles, with
/// fcmp-driven selects mixed in. IEEE arithmetic (including NaN and
/// infinity propagation) must agree bit-for-bit across the interpreter,
/// the core's FPU, and the fabric's FP units.
fn build_fp_kernel(recipe: &Recipe) -> Function {
    let mut b = FunctionBuilder::new(
        "randomfp",
        &[("a", Type::Ptr), ("b", Type::Ptr), ("c", Type::Ptr), ("n", Type::I64)],
    );
    let (a, bb, c, n) = (b.param(0), b.param(1), b.param(2), b.param(3));
    let zero = b.const_i(0);
    let one = b.const_i(1);
    let body = b.block("body");
    let exit = b.block("exit");
    let entry = b.current();
    b.br(body);
    b.switch_to(body);
    let i = b.phi(Type::I64);
    let pa = b.gep(a, i, 8);
    let pb = b.gep(bb, i, 8);
    let va = b.load(pa, Type::F64);
    let vb = b.load(pb, Type::F64);

    let mut vals: Vec<Value> = Vec::new();
    for node in &recipe.nodes {
        let v = match node {
            Node::Leaf(0, _) => va,
            Node::Leaf(1, _) => vb,
            Node::Leaf(2, cst) => b.const_f(*cst as f64 * 0.125),
            Node::Leaf(_, cst) => b.const_f(*cst as f64),
            Node::Bin(tag, x, y) => b.bin(fp_bin(*tag), vals[*x], vals[*y]),
            Node::Select(x, y, z) => {
                let cond = b.cmp(CmpOp::Flt, vals[*x], vals[*y]);
                b.select(cond, vals[*y], vals[*z])
            }
        };
        vals.push(v);
    }
    let result = *vals.last().expect("at least one node");
    let result = b.bin(BinOp::Fadd, result, va);
    let pc = b.gep(c, i, 8);
    b.store(result, pc);
    let i2 = b.bin(BinOp::Add, i, one);
    b.add_incoming(i, entry, zero);
    b.add_incoming(i, body, i2);
    let cond = b.cmp(CmpOp::Slt, i2, n);
    b.cond_br(cond, body, exit);
    b.switch_to(exit);
    b.ret(None);
    b.build().expect("random fp kernels are well-formed")
}

/// xorshift input stream, kept separate from the recipe PRNG so input data
/// matches the pre-port behaviour of seeding from a single u64.
fn xorshift_stream(seed: u64) -> impl FnMut() -> u64 {
    let mut state = seed | 1;
    move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    }
}

#[test]
fn interpreter_baseline_and_dyser_agree() {
    let mut rng = Rng64::seed_from_u64(0xD1FF_0001);
    for _ in 0..24 {
        let recipe = rand_recipe(&mut rng);
        let f = build_kernel(&recipe);
        let n = recipe.n;

        // Deterministic pseudo-random inputs from a per-case seed.
        let mut next = xorshift_stream(rng.next_u64());
        let a: Vec<u64> = (0..n).map(|_| next()).collect();
        let b: Vec<u64> = (0..n).map(|_| next()).collect();
        let args = [BUF_A, BUF_B, BUF_C, n as u64];

        // Oracle: the IR interpreter.
        let mut imem = InterpMem::new();
        imem.write_u64_slice(BUF_A, &a);
        imem.write_u64_slice(BUF_B, &b);
        interpret(&f, &args, &mut imem, 10_000_000).expect("interpreter runs");
        let expected = imem.read_u64_slice(BUF_C, n);

        // Compile once with the randomized knobs.
        let mut opts =
            CompilerOptions { unroll_factor: recipe.unroll, ..CompilerOptions::default() };
        opts.codegen.lag_depth = recipe.lag_depth;
        let compiled = compile(&f, &opts).expect("random kernels compile");

        let rc = RunConfig::default();
        let init = vec![(BUF_A, a.clone()), (BUF_B, b.clone())];
        let want = vec![(BUF_C, expected.clone())];

        // run_program verifies the output against `want` and errors on the
        // first mismatching word.
        run_program("baseline", &compiled.baseline, &args, &init, &want, &rc)
            .unwrap_or_else(|e| panic!("baseline: {e}\n{f}"));
        run_program("dyser", &compiled.accelerated, &args, &init, &want, &rc).unwrap_or_else(
            |e| panic!("dyser (unroll {}, lag {}): {e}\n{f}", recipe.unroll, recipe.lag_depth),
        );
    }
}

#[test]
fn fp_kernels_agree_bit_for_bit() {
    let mut rng = Rng64::seed_from_u64(0xD1FF_0002);
    for _ in 0..24 {
        let recipe = rand_recipe(&mut rng);
        let f = build_fp_kernel(&recipe);
        let n = recipe.n;

        // Inputs spanning normal values, plus injected specials.
        let mut next = xorshift_stream(rng.next_u64());
        let mut a: Vec<u64> =
            (0..n).map(|_| (((next() % 4000) as f64) / 100.0 - 20.0).to_bits()).collect();
        let b: Vec<u64> =
            (0..n).map(|_| (((next() % 4000) as f64) / 100.0 - 20.0).to_bits()).collect();
        // Specials: a NaN, an infinity, a signed zero.
        if n >= 4 {
            a[0] = f64::NAN.to_bits();
            a[1] = f64::INFINITY.to_bits();
            a[2] = (-0.0f64).to_bits();
        }
        let args = [BUF_A, BUF_B, BUF_C, n as u64];

        let mut imem = InterpMem::new();
        imem.write_u64_slice(BUF_A, &a);
        imem.write_u64_slice(BUF_B, &b);
        interpret(&f, &args, &mut imem, 10_000_000).expect("interpreter runs");
        let expected = imem.read_u64_slice(BUF_C, n);

        let mut opts =
            CompilerOptions { unroll_factor: recipe.unroll, ..CompilerOptions::default() };
        opts.codegen.lag_depth = recipe.lag_depth;
        let compiled = compile(&f, &opts).expect("random fp kernels compile");

        let rc = RunConfig::default();
        let init = vec![(BUF_A, a.clone()), (BUF_B, b.clone())];
        let want = vec![(BUF_C, expected.clone())];
        run_program("baseline", &compiled.baseline, &args, &init, &want, &rc)
            .unwrap_or_else(|e| panic!("fp baseline: {e}\n{f}"));
        run_program("dyser", &compiled.accelerated, &args, &init, &want, &rc)
            .unwrap_or_else(|e| panic!("fp dyser: {e}\n{f}"));
    }
}
