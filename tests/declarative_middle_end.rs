//! The declarative middle-end override: a custom pass combination drives
//! the whole compilation, and the result still verifies end to end.

use sparc_dyser::compiler::{CompilerOptions, PassSpec};
use sparc_dyser::core::{run_kernel, RunConfig};
use sparc_dyser::workloads::suite;

#[test]
fn custom_pass_combination_compiles_and_verifies() {
    let kernels = suite();
    let k = kernels.iter().find(|k| k.name == "saxpy").unwrap();
    for spec_text in [
        "ifconv, licm, cleanup, unroll(4), cleanup",
        "cleanup, unroll(2)",
        "ifconv, cse, dce",
        "licm",
    ] {
        let spec: PassSpec = spec_text.parse().unwrap();
        let mut config = RunConfig::default();
        config.compiler = CompilerOptions {
            middle_end: Some(spec),
            ..k.compiler_options(config.system.geometry)
        };
        let r = run_kernel(&k.case(37, 5), &config)
            .unwrap_or_else(|e| panic!("spec `{spec_text}`: {e}"));
        assert!(r.baseline.halted && r.dyser.halted, "spec `{spec_text}`");
    }
}

#[test]
fn declarative_default_matches_builtin_pipeline() {
    // The spec equivalent of the built-in sequence produces the same
    // accelerated cycle count.
    let kernels = suite();
    let k = kernels.iter().find(|k| k.name == "poly6").unwrap();
    let mut builtin = RunConfig::default();
    builtin.compiler = k.compiler_options(builtin.system.geometry);
    let r1 = run_kernel(&k.case(64, 9), &builtin).unwrap();

    let mut declared = RunConfig::default();
    declared.compiler = CompilerOptions {
        middle_end: Some("ifconv, licm, cleanup, unroll(4), cleanup".parse().unwrap()),
        ..k.compiler_options(declared.system.geometry)
    };
    let r2 = run_kernel(&k.case(64, 9), &declared).unwrap();
    assert_eq!(r1.dyser.cycles, r2.dyser.cycles);
    assert_eq!(r1.baseline.cycles, r2.baseline.cycles);
}
