//! The central integration test: every kernel in the suite compiles both
//! ways, runs on the cycle-level machine, and produces bit-exact outputs —
//! on the default geometry and on a small one.

use sparc_dyser::core::{run_kernel, RunConfig};
use sparc_dyser::fabric::FabricGeometry;
use sparc_dyser::workloads::{suite, Category};

fn small_n(name: &str) -> usize {
    match name {
        "mm" => 6,
        _ => 40,
    }
}

#[test]
fn every_kernel_verifies_on_the_default_geometry() {
    for k in suite() {
        let mut config = RunConfig::default();
        config.compiler = k.compiler_options(config.system.geometry);
        let case = k.case(small_n(k.name), 11);
        let result = run_kernel(&case, &config).unwrap_or_else(|e| panic!("{}: {e}", k.name));
        assert!(result.baseline.halted && result.dyser.halted, "{}", k.name);
        assert!(result.baseline.cycles > 0, "{}", k.name);
    }
}

#[test]
fn acceleratable_kernels_actually_accelerate() {
    for k in suite() {
        let mut config = RunConfig::default();
        config.compiler = k.compiler_options(config.system.geometry);
        let case = k.case(small_n(k.name), 11);
        let result = run_kernel(&case, &config).unwrap();
        match k.name {
            // Shape A and shape B loops must NOT be accelerated — the
            // paper's compiler finding.
            "find_first" | "cond_store" => {
                assert!(!result.accelerated_any, "{} should stay on the core", k.name);
                assert_eq!(result.baseline.cycles, result.dyser.cycles, "{}", k.name);
            }
            _ => {
                assert!(result.accelerated_any, "{}: {:?}", k.name, result.regions);
                assert!(result.dyser.fabric.fu_fires() > 0, "{}", k.name);
            }
        }
    }
}

#[test]
fn micro_kernels_speed_up_substantially_at_size() {
    for k in suite().iter().filter(|k| k.category == Category::Micro) {
        let mut config = RunConfig::default();
        config.compiler = k.compiler_options(config.system.geometry);
        let case = k.case(256, 5);
        let result = run_kernel(&case, &config).unwrap();
        assert!(
            result.speedup > 1.5,
            "{}: expected a substantial speedup, got {:.2} (base {} vs dyser {})",
            k.name,
            result.speedup,
            result.baseline.cycles,
            result.dyser.cycles
        );
    }
}

#[test]
fn suite_verifies_on_a_4x4_fabric() {
    for k in suite() {
        let mut config = RunConfig::default();
        config.system.geometry = FabricGeometry::new(4, 4);
        config.compiler = k.compiler_options(config.system.geometry);
        // A smaller fabric may not fit an unroll-by-4 slice; degrade to 2.
        config.compiler.unroll_factor = config.compiler.unroll_factor.min(2);
        let case = k.case(small_n(k.name), 19);
        run_kernel(&case, &config).unwrap_or_else(|e| panic!("{} on 4x4: {e}", k.name));
    }
}

#[test]
fn suite_verifies_on_an_asymmetric_fabric() {
    // A 3x6 fabric: port maps, routing, and scheduling must not assume
    // square geometries.
    for k in suite().into_iter().filter(|k| k.category != Category::Irregular) {
        let mut config = RunConfig::default();
        config.system.geometry = FabricGeometry::new(3, 6);
        config.compiler = k.compiler_options(config.system.geometry);
        config.compiler.unroll_factor = config.compiler.unroll_factor.min(2);
        let case = k.case(small_n(k.name), 13);
        run_kernel(&case, &config).unwrap_or_else(|e| panic!("{} on 3x6: {e}", k.name));
    }
}

#[test]
fn different_seeds_still_verify() {
    for seed in [1u64, 99, 31415] {
        for k in suite().iter().filter(|k| k.category == Category::Regular) {
            let mut config = RunConfig::default();
            config.compiler = k.compiler_options(config.system.geometry);
            let case = k.case(small_n(k.name), seed);
            run_kernel(&case, &config)
                .unwrap_or_else(|e| panic!("{} seed {seed}: {e}", k.name));
        }
    }
}

#[test]
fn unroll_sweep_verifies() {
    let kernels = suite();
    let saxpy = kernels.iter().find(|k| k.name == "saxpy").unwrap();
    for unroll in [1usize, 2, 4, 8] {
        let mut config = RunConfig::default();
        config.compiler = saxpy.compiler_options(config.system.geometry);
        config.compiler.unroll_factor = unroll;
        let case = saxpy.case(53, 2); // odd size exercises the epilogue
        run_kernel(&case, &config).unwrap_or_else(|e| panic!("unroll {unroll}: {e}"));
    }
}
