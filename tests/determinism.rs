//! The whole stack is deterministic: identical seeds produce identical
//! binaries, identical cycle counts, and identical statistics.

use sparc_dyser::core::{run_kernel, RunConfig};
use sparc_dyser::workloads::suite;

#[test]
fn repeated_runs_are_cycle_identical() {
    let kernels = suite();
    for name in ["saxpy", "poly6", "find_first"] {
        let k = kernels.iter().find(|k| k.name == name).unwrap();
        let mut config = RunConfig::default();
        config.compiler = k.compiler_options(config.system.geometry);
        let r1 = run_kernel(&k.case(64, 7), &config).unwrap();
        let r2 = run_kernel(&k.case(64, 7), &config).unwrap();
        assert_eq!(r1.baseline.cycles, r2.baseline.cycles, "{name}");
        assert_eq!(r1.dyser.cycles, r2.dyser.cycles, "{name}");
        assert_eq!(
            r1.dyser.fabric.switch_hops, r2.dyser.fabric.switch_hops,
            "{name}: fabric activity must be identical"
        );
        assert_eq!(r1.code_sizes, r2.code_sizes, "{name}: binaries must be identical");
    }
}

#[test]
fn compiled_binaries_are_bit_identical_across_compilations() {
    let kernels = suite();
    let k = kernels.iter().find(|k| k.name == "stencil3").unwrap();
    let opts = k.compiler_options(sparc_dyser::fabric::FabricGeometry::new(8, 8));
    let c1 = sparc_dyser::compiler::compile(&k.function(), &opts).unwrap();
    let c2 = sparc_dyser::compiler::compile(&k.function(), &opts).unwrap();
    assert_eq!(c1.baseline.code, c2.baseline.code);
    assert_eq!(c1.accelerated.code, c2.accelerated.code);
    assert_eq!(c1.accelerated.configs.len(), c2.accelerated.configs.len());
    for (a, b) in c1.accelerated.configs.iter().zip(&c2.accelerated.configs) {
        assert_eq!(a, b, "fabric configurations must be identical");
    }
}
