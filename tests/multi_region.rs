//! A kernel with two accelerated loops: the fabric must reconfigure
//! between regions (`dinit` with different table entries), and repeated
//! invocations of the same region must hit the configuration cache.

use sparc_dyser::compiler::{
    compile, BinOp, CompilerOptions, FunctionBuilder, Type,
};
use sparc_dyser::compiler::{CmpOp, Function};
use sparc_dyser::core::{run_program, RunConfig};

const BUF_A: u64 = 0x20_0000;
const BUF_C: u64 = 0x40_0000;

/// Two back-to-back loops over the same arrays:
/// loop 1: c[i] = a[i]*a[i] + a[i]   (int)
/// loop 2: c[i] = c[i] ^ (c[i] >> 3) then + 7 (int)
fn two_loops() -> Function {
    let mut b = FunctionBuilder::new("two", &[("a", Type::Ptr), ("c", Type::Ptr), ("n", Type::I64)]);
    let (a, c, n) = (b.param(0), b.param(1), b.param(2));
    let zero = b.const_i(0);
    let one = b.const_i(1);
    let three = b.const_i(3);
    let seven = b.const_i(7);
    let body1 = b.block("body1");
    let mid = b.block("mid");
    let body2 = b.block("body2");
    let exit = b.block("exit");
    let entry = b.current();
    b.br(body1);

    b.switch_to(body1);
    let i = b.phi(Type::I64);
    let pa = b.gep(a, i, 8);
    let x = b.load(pa, Type::I64);
    let xx = b.bin(BinOp::Mul, x, x);
    let s = b.bin(BinOp::Add, xx, x);
    let pc = b.gep(c, i, 8);
    b.store(s, pc);
    let i2 = b.bin(BinOp::Add, i, one);
    b.add_incoming(i, entry, zero);
    b.add_incoming(i, body1, i2);
    let c1 = b.cmp(CmpOp::Slt, i2, n);
    b.cond_br(c1, body1, mid);

    b.switch_to(mid);
    b.br(body2);

    b.switch_to(body2);
    let j = b.phi(Type::I64);
    let pc2 = b.gep(c, j, 8);
    let y = b.load(pc2, Type::I64);
    let sh = b.bin(BinOp::Lshr, y, three);
    let mixed = b.bin(BinOp::Xor, y, sh);
    let out = b.bin(BinOp::Add, mixed, seven);
    b.store(out, pc2);
    let j2 = b.bin(BinOp::Add, j, one);
    b.add_incoming(j, mid, zero);
    b.add_incoming(j, body2, j2);
    let c2 = b.cmp(CmpOp::Slt, j2, n);
    b.cond_br(c2, body2, exit);

    b.switch_to(exit);
    b.ret(None);
    b.build().unwrap()
}

fn reference(a: &[u64]) -> Vec<u64> {
    a.iter()
        .map(|&x| {
            let s = x.wrapping_mul(x).wrapping_add(x);
            let mixed = s ^ (s >> 3);
            mixed.wrapping_add(7)
        })
        .collect()
}

#[test]
fn both_regions_accelerate_and_reconfigure() {
    let f = two_loops();
    // Unrolling targets only one loop; compile without it so BOTH loops
    // become regions and the fabric must switch configurations.
    let opts = CompilerOptions { unroll_factor: 1, ..CompilerOptions::default() };
    let compiled = compile(&f, &opts).expect("compiles");
    assert_eq!(compiled.regions.len(), 2, "{:?}", compiled.regions);
    assert_eq!(compiled.accelerated.configs.len(), 2);

    let n = 48usize;
    let a: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9E37_79B9) + 3).collect();
    let want = reference(&a);
    let args = [BUF_A, BUF_C, n as u64];
    let init = vec![(BUF_A, a)];
    let expected = vec![(BUF_C, want)];

    let rc = RunConfig::default();
    run_program("baseline", &compiled.baseline, &args, &init, &expected, &rc).unwrap();
    let stats =
        run_program("dyser", &compiled.accelerated, &args, &init, &expected, &rc).unwrap();
    assert_eq!(stats.fabric.configs_loaded, 2, "one load per region");
    assert!(stats.fabric.fu_fires() >= 5 * n as u64, "both regions fired");
}

#[test]
fn in_memory_second_loop_sees_first_loops_stores() {
    // The store-lag drain of region 1 must complete before region 2 loads
    // c[] — the dfence plus drain ordering guarantees it; verify across
    // unroll factors and lag depths.
    for unroll in [1usize, 2, 4] {
        for lag in [1usize, 2, 3] {
            let f = two_loops();
            let mut opts =
                CompilerOptions { unroll_factor: unroll, ..CompilerOptions::default() };
            opts.codegen.lag_depth = lag;
            let compiled = compile(&f, &opts).unwrap();

            let n = 29usize; // odd: epilogue paths live
            let a: Vec<u64> = (0..n as u64).map(|i| i * 17 + 1).collect();
            let want = reference(&a);
            let args = [BUF_A, BUF_C, n as u64];
            let init = vec![(BUF_A, a)];
            let expected = vec![(BUF_C, want)];
            run_program("dyser", &compiled.accelerated, &args, &init, &expected, &RunConfig::default())
                .unwrap_or_else(|e| panic!("unroll {unroll} lag {lag}: {e}"));
        }
    }
}
