//! Every kernel in the suite survives a print -> parse round trip through
//! the textual IR with identical semantics (checked by interpreting both
//! forms on the kernel's own inputs).

use sparc_dyser::compiler::ir::interp::{interpret, InterpMem};
use sparc_dyser::compiler::ir::parser::parse_module;
use sparc_dyser::compiler::Module;
use sparc_dyser::workloads::suite;

#[test]
fn all_kernels_roundtrip_through_text() {
    for k in suite() {
        let n = if k.name == "mm" { 5 } else { 17 };
        let case = k.case(n, 23);
        let f0 = &case.function;

        let text = f0.to_string();
        let module = parse_module(&text)
            .unwrap_or_else(|e| panic!("{}: parse failed: {e}\n{text}", k.name));
        let f1 = module.function(f0.name()).expect("function name preserved");

        let mut m0 = InterpMem::new();
        for (addr, words) in &case.init {
            m0.write_u64_slice(*addr, words);
        }
        let mut m1 = m0.clone();
        let r0 = interpret(f0, &case.args, &mut m0, 50_000_000)
            .unwrap_or_else(|e| panic!("{} original: {e}", k.name));
        let r1 = interpret(f1, &case.args, &mut m1, 50_000_000)
            .unwrap_or_else(|e| panic!("{} reparsed: {e}", k.name));
        assert_eq!(r0.ret, r1.ret, "{}", k.name);
        assert_eq!(r0.steps, r1.steps, "{}: step counts must match exactly", k.name);

        for (addr, words) in &case.expected {
            for (i, w) in words.iter().enumerate() {
                let a = addr + 8 * i as u64;
                assert_eq!(m1.read_u64(a), *w, "{} reparsed output at {a:#x}", k.name);
                assert_eq!(m0.read_u64(a), *w, "{} original output at {a:#x}", k.name);
            }
        }
    }
}

#[test]
fn module_of_all_kernels_parses_as_one_unit() {
    let mut module = Module::new();
    for k in suite() {
        module.functions.push(k.function());
    }
    let text = module.to_string();
    let reparsed = parse_module(&text).unwrap_or_else(|e| panic!("suite module: {e}"));
    assert_eq!(reparsed.functions.len(), module.functions.len());
}
