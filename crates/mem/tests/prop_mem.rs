//! Property tests for the memory substrate.

use dyser_mem::{Cache, CacheConfig, Hierarchy, MemConfig, Memory};
use proptest::prelude::*;

proptest! {
    #[test]
    fn memory_readback_u64(writes in proptest::collection::vec((0u64..0x10_0000, any::<u64>()), 1..50)) {
        let mut mem = Memory::new();
        // Align to 8 so later writes can't partially overlap earlier ones
        // in a way the model under test shouldn't have to disambiguate.
        let mut last = std::collections::HashMap::new();
        for (addr, val) in &writes {
            let a = addr & !7;
            mem.write_u64(a, *val);
            last.insert(a, *val);
        }
        for (a, v) in last {
            prop_assert_eq!(mem.read_u64(a), v);
        }
    }

    #[test]
    fn memory_bytes_compose_words(addr in 0u64..0x1_0000, val in any::<u64>()) {
        let mut mem = Memory::new();
        mem.write_u64(addr, val);
        let mut rebuilt = 0u64;
        for i in 0..8 {
            rebuilt = (rebuilt << 8) | u64::from(mem.read_u8(addr + i));
        }
        prop_assert_eq!(rebuilt, val, "big-endian byte composition");
    }

    #[test]
    fn cache_counters_are_consistent(addrs in proptest::collection::vec(0u64..0x4000, 1..200)) {
        let mut c = Cache::new(CacheConfig { sets: 8, ways: 2, line_bytes: 32, hit_latency: 1 });
        for (i, a) in addrs.iter().enumerate() {
            c.access(*a, i % 2 == 0);
        }
        let s = c.stats();
        prop_assert_eq!(s.accesses, addrs.len() as u64);
        prop_assert_eq!(s.hits + s.misses, s.accesses);
        prop_assert!(s.writebacks <= s.misses, "only misses can evict");
    }

    #[test]
    fn cache_repeat_access_hits(addr in 0u64..0x10_0000) {
        let mut c = Cache::new(CacheConfig { sets: 8, ways: 2, line_bytes: 32, hit_latency: 1 });
        c.access(addr, false);
        prop_assert!(c.access(addr, false).hit);
    }

    #[test]
    fn hierarchy_latency_is_bounded(addrs in proptest::collection::vec(0u64..0x10_0000, 1..100)) {
        let cfg = MemConfig::default();
        let max = cfg.l1d.hit_latency + cfg.l2.hit_latency + cfg.dram_latency;
        let mut h = Hierarchy::new(cfg);
        for a in addrs {
            let lat = h.load(a);
            prop_assert!(lat >= cfg.l1d.hit_latency && lat <= max, "latency {lat} out of bounds");
        }
    }

    #[test]
    fn hierarchy_is_deterministic(addrs in proptest::collection::vec(0u64..0x10_0000, 1..100)) {
        let mut h1 = Hierarchy::new(MemConfig::tiny());
        let mut h2 = Hierarchy::new(MemConfig::tiny());
        for a in &addrs {
            prop_assert_eq!(h1.load(*a), h2.load(*a));
        }
    }
}
