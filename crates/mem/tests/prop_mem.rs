//! Randomized tests for the memory substrate, driven by the seeded
//! in-workspace PRNG so runs are reproducible everywhere.

use dyser_mem::{Cache, CacheConfig, Hierarchy, MemConfig, Memory};
use dyser_rng::Rng64;

#[test]
fn memory_readback_u64() {
    let mut rng = Rng64::seed_from_u64(0x3E3_0001);
    for _ in 0..200 {
        let count = rng.gen_range(1usize..50);
        let mut mem = Memory::new();
        // Align to 8 so later writes can't partially overlap earlier ones
        // in a way the model under test shouldn't have to disambiguate.
        let mut last = std::collections::HashMap::new();
        for _ in 0..count {
            let a = rng.gen_range(0u64..0x10_0000) & !7;
            let val = rng.next_u64();
            mem.write_u64(a, val);
            last.insert(a, val);
        }
        for (a, v) in last {
            assert_eq!(mem.read_u64(a), v);
        }
    }
}

#[test]
fn memory_bytes_compose_words() {
    let mut rng = Rng64::seed_from_u64(0x3E3_0002);
    for _ in 0..500 {
        let addr = rng.gen_range(0u64..0x1_0000);
        let val = rng.next_u64();
        let mut mem = Memory::new();
        mem.write_u64(addr, val);
        let mut rebuilt = 0u64;
        for i in 0..8 {
            rebuilt = (rebuilt << 8) | u64::from(mem.read_u8(addr + i));
        }
        assert_eq!(rebuilt, val, "big-endian byte composition");
    }
}

#[test]
fn cache_counters_are_consistent() {
    let mut rng = Rng64::seed_from_u64(0x3E3_0003);
    for _ in 0..100 {
        let count = rng.gen_range(1usize..200);
        let mut c = Cache::new(CacheConfig { sets: 8, ways: 2, line_bytes: 32, hit_latency: 1 });
        for i in 0..count {
            let a = rng.gen_range(0u64..0x4000);
            c.access(a, i % 2 == 0);
        }
        let s = c.stats();
        assert_eq!(s.accesses, count as u64);
        assert_eq!(s.hits + s.misses, s.accesses);
        assert!(s.writebacks <= s.misses, "only misses can evict");
    }
}

#[test]
fn cache_repeat_access_hits() {
    let mut rng = Rng64::seed_from_u64(0x3E3_0004);
    for _ in 0..500 {
        let addr = rng.gen_range(0u64..0x10_0000);
        let mut c = Cache::new(CacheConfig { sets: 8, ways: 2, line_bytes: 32, hit_latency: 1 });
        c.access(addr, false);
        assert!(c.access(addr, false).hit);
    }
}

#[test]
fn hierarchy_latency_is_bounded() {
    let mut rng = Rng64::seed_from_u64(0x3E3_0005);
    for _ in 0..50 {
        let count = rng.gen_range(1usize..100);
        let cfg = MemConfig::default();
        let max = cfg.l1d.hit_latency + cfg.l2.hit_latency + cfg.dram_latency;
        let mut h = Hierarchy::new(cfg);
        for _ in 0..count {
            let a = rng.gen_range(0u64..0x10_0000);
            let lat = h.load(a);
            assert!(lat >= cfg.l1d.hit_latency && lat <= max, "latency {lat} out of bounds");
        }
    }
}

#[test]
fn hierarchy_is_deterministic() {
    let mut rng = Rng64::seed_from_u64(0x3E3_0006);
    for _ in 0..50 {
        let count = rng.gen_range(1usize..100);
        let addrs: Vec<u64> = (0..count).map(|_| rng.gen_range(0u64..0x10_0000)).collect();
        let mut h1 = Hierarchy::new(MemConfig::tiny());
        let mut h2 = Hierarchy::new(MemConfig::tiny());
        for a in &addrs {
            assert_eq!(h1.load(*a), h2.load(*a));
        }
    }
}
