//! The functional physical memory: sparse, paged, big-endian.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

const PAGE_SHIFT: u32 = 12;
const PAGE_BYTES: usize = 1 << PAGE_SHIFT;

/// A minimal multiplicative hasher for page numbers.
///
/// Page keys are small sequential integers, so SipHash's DoS resistance
/// buys nothing here while its cost lands on every simulated memory
/// access. Nothing observes the map's iteration order, so the hash only
/// has to spread consecutive keys across buckets — one multiply does.
#[derive(Default)]
struct PageHasher(u64);

impl Hasher for PageHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 << 8) | u64::from(b);
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

/// One resident page plus its write generation.
///
/// The generation starts at 1 on first touch and is bumped on every write
/// into the page, so translated-code caches can detect stores into pages
/// they decoded from without tracking individual addresses.
#[derive(Debug, Clone)]
struct Page {
    data: Box<[u8; PAGE_BYTES]>,
    gen: u64,
}

impl Page {
    fn new() -> Self {
        Self { data: Box::new([0u8; PAGE_BYTES]), gen: 1 }
    }
}

/// A sparse, paged, big-endian physical memory.
///
/// Pages are allocated on first touch and read as zero before that, which
/// matches the simulator's zero-initialised DRAM. All multi-byte accessors
/// are big-endian, as on SPARC; unaligned accesses are permitted (the
/// timing model charges them as a single access — the measured kernels are
/// fully aligned).
#[derive(Debug, Clone, Default)]
pub struct Memory {
    pages: HashMap<u64, Page, BuildHasherDefault<PageHasher>>,
}

impl Memory {
    /// Creates an empty (all-zero) memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pages that have been touched.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(page) => page.data[(addr as usize) & (PAGE_BYTES - 1)],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let page = self.pages.entry(addr >> PAGE_SHIFT).or_insert_with(Page::new);
        page.gen += 1;
        page.data[(addr as usize) & (PAGE_BYTES - 1)] = value;
    }

    /// The write generation of the page containing `addr`: 0 while the
    /// page is untouched, bumped on every write into it afterwards. A
    /// cached decode of code on the page is stale iff the generation has
    /// moved since it was taken.
    pub fn page_generation(&self, addr: u64) -> u64 {
        self.pages.get(&(addr >> PAGE_SHIFT)).map_or(0, |p| p.gen)
    }

    fn read_be(&self, addr: u64, bytes: u32) -> u64 {
        // One page lookup per access on the common non-straddling path;
        // only accesses crossing a page edge (or wrapping the address
        // space) fall back to the byte-at-a-time loop.
        let end = addr.wrapping_add(u64::from(bytes)).wrapping_sub(1);
        if end >= addr && addr >> PAGE_SHIFT == end >> PAGE_SHIFT {
            return match self.pages.get(&(addr >> PAGE_SHIFT)) {
                Some(page) => {
                    let off = (addr as usize) & (PAGE_BYTES - 1);
                    page.data[off..off + bytes as usize]
                        .iter()
                        .fold(0u64, |v, &b| (v << 8) | u64::from(b))
                }
                None => 0,
            };
        }
        let mut v = 0u64;
        for i in 0..bytes {
            v = (v << 8) | u64::from(self.read_u8(addr.wrapping_add(u64::from(i))));
        }
        v
    }

    fn write_be(&mut self, addr: u64, bytes: u32, value: u64) {
        let end = addr.wrapping_add(u64::from(bytes)).wrapping_sub(1);
        if end >= addr && addr >> PAGE_SHIFT == end >> PAGE_SHIFT {
            let page = self.pages.entry(addr >> PAGE_SHIFT).or_insert_with(Page::new);
            page.gen += 1;
            let off = (addr as usize) & (PAGE_BYTES - 1);
            for (i, slot) in page.data[off..off + bytes as usize].iter_mut().enumerate() {
                *slot = (value >> (8 * (bytes - 1 - i as u32))) as u8;
            }
            return;
        }
        for i in 0..bytes {
            let shift = 8 * (bytes - 1 - i);
            self.write_u8(addr.wrapping_add(u64::from(i)), (value >> shift) as u8);
        }
    }

    /// Reads a big-endian 16-bit value.
    pub fn read_u16(&self, addr: u64) -> u16 {
        self.read_be(addr, 2) as u16
    }

    /// Writes a big-endian 16-bit value.
    pub fn write_u16(&mut self, addr: u64, value: u16) {
        self.write_be(addr, 2, u64::from(value));
    }

    /// Reads a big-endian 32-bit value.
    pub fn read_u32(&self, addr: u64) -> u32 {
        self.read_be(addr, 4) as u32
    }

    /// Writes a big-endian 32-bit value.
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        self.write_be(addr, 4, u64::from(value));
    }

    /// Reads a big-endian 64-bit value.
    pub fn read_u64(&self, addr: u64) -> u64 {
        self.read_be(addr, 8)
    }

    /// Writes a big-endian 64-bit value.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.write_be(addr, 8, value);
    }

    /// Reads a double stored as a 64-bit big-endian word.
    pub fn read_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Writes a double as a 64-bit big-endian word.
    pub fn write_f64(&mut self, addr: u64, value: f64) {
        self.write_u64(addr, value.to_bits());
    }

    /// Copies a byte slice into memory starting at `addr`.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        for (i, b) in bytes.iter().enumerate() {
            self.write_u8(addr + i as u64, *b);
        }
    }

    /// Reads `len` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Vec<u8> {
        (0..len).map(|i| self.read_u8(addr + i as u64)).collect()
    }

    /// Writes a slice of 64-bit words contiguously starting at `addr`.
    pub fn write_u64_slice(&mut self, addr: u64, words: &[u64]) {
        for (i, w) in words.iter().enumerate() {
            self.write_u64(addr + 8 * i as u64, *w);
        }
    }

    /// Reads `len` contiguous 64-bit words starting at `addr`.
    pub fn read_u64_slice(&self, addr: u64, len: usize) -> Vec<u64> {
        (0..len).map(|i| self.read_u64(addr + 8 * i as u64)).collect()
    }

    /// Writes a slice of doubles contiguously starting at `addr`.
    pub fn write_f64_slice(&mut self, addr: u64, values: &[f64]) {
        for (i, v) in values.iter().enumerate() {
            self.write_f64(addr + 8 * i as u64, *v);
        }
    }

    /// Reads `len` contiguous doubles starting at `addr`.
    pub fn read_f64_slice(&self, addr: u64, len: usize) -> Vec<f64> {
        (0..len).map(|i| self.read_f64(addr + 8 * i as u64)).collect()
    }

    /// Writes a program image (32-bit instruction words) starting at `addr`.
    pub fn write_code(&mut self, addr: u64, words: &[u32]) {
        for (i, w) in words.iter().enumerate() {
            self.write_u32(addr + 4 * i as u64, *w);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_memory_reads_zero() {
        let mem = Memory::new();
        assert_eq!(mem.read_u64(0), 0);
        assert_eq!(mem.read_u8(0xFFFF_FFFF_FFFF), 0);
        assert_eq!(mem.resident_pages(), 0);
    }

    #[test]
    fn readback_u64() {
        let mut mem = Memory::new();
        mem.write_u64(0x100, 0x0123_4567_89AB_CDEF);
        assert_eq!(mem.read_u64(0x100), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn big_endian_byte_order() {
        let mut mem = Memory::new();
        mem.write_u32(0, 0x1122_3344);
        assert_eq!(mem.read_u8(0), 0x11, "most significant byte first");
        assert_eq!(mem.read_u8(3), 0x44);
        assert_eq!(mem.read_u16(1), 0x2233);
    }

    #[test]
    fn cross_page_access() {
        let mut mem = Memory::new();
        let addr = (1 << 12) - 4; // straddles the first page boundary
        mem.write_u64(addr, 0xAABB_CCDD_EEFF_0011);
        assert_eq!(mem.read_u64(addr), 0xAABB_CCDD_EEFF_0011);
        assert_eq!(mem.resident_pages(), 2);
    }

    #[test]
    fn f64_roundtrip() {
        let mut mem = Memory::new();
        mem.write_f64(0x80, -3.75);
        assert_eq!(mem.read_f64(0x80), -3.75);
    }

    #[test]
    fn slices_roundtrip() {
        let mut mem = Memory::new();
        let ws = [1u64, 2, 3, u64::MAX];
        mem.write_u64_slice(0x1000, &ws);
        assert_eq!(mem.read_u64_slice(0x1000, 4), ws);
        let fs = [0.5, -1.5, 2.25];
        mem.write_f64_slice(0x2000, &fs);
        assert_eq!(mem.read_f64_slice(0x2000, 3), fs);
        mem.write_bytes(0x3000, &[9, 8, 7]);
        assert_eq!(mem.read_bytes(0x3000, 3), vec![9, 8, 7]);
    }

    #[test]
    fn code_image() {
        let mut mem = Memory::new();
        mem.write_code(0x4000, &[0xDEAD_BEEF, 0x0BAD_F00D]);
        assert_eq!(mem.read_u32(0x4000), 0xDEAD_BEEF);
        assert_eq!(mem.read_u32(0x4004), 0x0BAD_F00D);
    }

    #[test]
    fn page_generation_tracks_writes() {
        let mut mem = Memory::new();
        assert_eq!(mem.page_generation(0x5000), 0, "untouched page");
        mem.write_u32(0x5000, 7);
        let g1 = mem.page_generation(0x5000);
        assert!(g1 > 0);
        assert_eq!(mem.page_generation(0x5FFC), g1, "same page, same generation");
        mem.read_u32(0x5000);
        assert_eq!(mem.page_generation(0x5000), g1, "reads do not bump");
        mem.write_u8(0x5800, 1);
        assert!(mem.page_generation(0x5000) > g1, "any write into the page bumps");
        assert_eq!(mem.page_generation(0x6000), 0, "neighbouring page untouched");
    }

    #[test]
    fn overwrite() {
        let mut mem = Memory::new();
        mem.write_u64(0, 1);
        mem.write_u64(0, 2);
        assert_eq!(mem.read_u64(0), 2);
    }
}
