//! # dyser-mem
//!
//! Memory substrate for the SPARC-DySER simulator.
//!
//! The prototype runs on an FPGA board with the OpenSPARC T1's simple
//! blocking memory system; this crate rebuilds that substrate at the
//! abstraction level the evaluation needs:
//!
//! * [`Memory`] — the *functional* store: a sparse, paged, big-endian
//!   physical memory (SPARC is big-endian),
//! * [`Cache`] — a *timing-only* set-associative write-back cache model
//!   with LRU replacement,
//! * [`Hierarchy`] — L1I + L1D + unified L2 + fixed-latency DRAM, with
//!   per-level access statistics.
//!
//! Functional data and timing are deliberately split: all loads and stores
//! read/write [`Memory`] immediately, while the caches only compute the
//! latency and maintain tag state. This is the standard
//! functional-first/timing-second simulator organisation and keeps the two
//! concerns independently testable.
//!
//! ```
//! use dyser_mem::{Hierarchy, MemConfig, Memory};
//!
//! let mut mem = Memory::new();
//! mem.write_u64(0x1000, 42);
//! assert_eq!(mem.read_u64(0x1000), 42);
//!
//! let mut hier = Hierarchy::new(MemConfig::default());
//! let cold = hier.load(0x1000);
//! let warm = hier.load(0x1000);
//! assert!(cold > warm, "second access hits in L1");
//! ```


#![warn(missing_docs)]
pub mod cache;
pub mod hierarchy;
pub mod memory;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use hierarchy::{Hierarchy, MemConfig, MemStats};
pub use memory::Memory;
