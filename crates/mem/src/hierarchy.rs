//! The L1I / L1D / L2 / DRAM hierarchy with blocking-access timing.
//!
//! The OpenSPARC T1's memory path (at one thread, as in the prototype's
//! measurements) behaves as a blocking hierarchy: a miss stalls the pipeline
//! until the fill completes. [`Hierarchy::fetch`]/[`load`]/[`store`] return
//! the total stall latency of one access; the pipeline model adds it to the
//! cycle count.
//!
//! [`load`]: Hierarchy::load
//! [`store`]: Hierarchy::store

use crate::cache::{Cache, CacheConfig, CacheStats};
use dyser_trace::{detail, EventKind, TraceBuffer, TraceEvent};

/// Configuration of the whole hierarchy.
///
/// Defaults approximate the prototype's FPGA system *relative to its slow
/// core clock* (OpenSPARC at ~50 MHz): 16 KiB 4-way L1s with 32-byte
/// lines, a 256 KiB 8-way unified L2 at 3 cycles, and ~8-cycle DRAM —
/// DDR latency measured in 20 ns core cycles is small, which is exactly
/// why the prototype's speedups are not memory-bound (see DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemConfig {
    /// Instruction L1.
    pub l1i: CacheConfig,
    /// Data L1.
    pub l1d: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// Latency of a DRAM access in cycles.
    pub dram_latency: u64,
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig {
            l1i: CacheConfig { sets: 128, ways: 4, line_bytes: 32, hit_latency: 1 },
            l1d: CacheConfig { sets: 128, ways: 4, line_bytes: 32, hit_latency: 1 },
            l2: CacheConfig { sets: 512, ways: 8, line_bytes: 64, hit_latency: 3 },
            dram_latency: 8,
        }
    }
}

impl MemConfig {
    /// A tiny configuration that misses often; useful in tests.
    pub fn tiny() -> Self {
        MemConfig {
            l1i: CacheConfig { sets: 4, ways: 1, line_bytes: 16, hit_latency: 1 },
            l1d: CacheConfig { sets: 4, ways: 1, line_bytes: 16, hit_latency: 1 },
            l2: CacheConfig { sets: 16, ways: 2, line_bytes: 32, hit_latency: 4 },
            dram_latency: 30,
        }
    }

    /// An idealised configuration where every access hits in one cycle.
    ///
    /// Used by the ablation benches to separate compute from memory effects.
    pub fn perfect() -> Self {
        // Giant single-level caches make every non-cold access a hit; with
        // zero fill cost the cold misses cost the L1 latency only.
        MemConfig {
            l1i: CacheConfig { sets: 1 << 16, ways: 8, line_bytes: 64, hit_latency: 1 },
            l1d: CacheConfig { sets: 1 << 16, ways: 8, line_bytes: 64, hit_latency: 1 },
            l2: CacheConfig { sets: 1 << 16, ways: 8, line_bytes: 64, hit_latency: 0 },
            dram_latency: 0,
        }
    }
}

/// Aggregated statistics for the hierarchy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Instruction-L1 counters.
    pub l1i: CacheStats,
    /// Data-L1 counters.
    pub l1d: CacheStats,
    /// Unified-L2 counters.
    pub l2: CacheStats,
    /// Number of DRAM accesses (L2 misses).
    pub dram_accesses: u64,
    /// Total stall cycles charged to instruction fetch.
    pub fetch_cycles: u64,
    /// Total stall cycles charged to data accesses.
    pub data_cycles: u64,
}

impl MemStats {
    /// Stall cycles the hierarchy believes it caused: total access latency
    /// minus the one base cycle per L1 access that overlaps with issue.
    ///
    /// With hit latencies of at least one cycle (all shipped
    /// [`MemConfig`]s) this equals the pipeline's `MemMiss` attribution
    /// bucket exactly; the attribution property tests assert the
    /// cross-check.
    pub fn miss_stall_cycles(&self) -> u64 {
        (self.fetch_cycles + self.data_cycles)
            .saturating_sub(self.l1i.accesses + self.l1d.accesses)
    }
}

/// The blocking L1I/L1D/L2/DRAM hierarchy.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    config: MemConfig,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    dram_accesses: u64,
    fetch_cycles: u64,
    data_cycles: u64,
    /// Event tracer; `None` (the default) keeps the hot path to a single
    /// branch per access.
    tracer: Option<Box<TraceBuffer>>,
    /// Timestamp for trace events, advanced by the owner via [`set_now`].
    ///
    /// [`set_now`]: Hierarchy::set_now
    now: u64,
}

impl Hierarchy {
    /// Creates an empty hierarchy.
    pub fn new(config: MemConfig) -> Self {
        Hierarchy {
            config,
            l1i: Cache::new(config.l1i),
            l1d: Cache::new(config.l1d),
            l2: Cache::new(config.l2),
            dram_accesses: 0,
            fetch_cycles: 0,
            data_cycles: 0,
            tracer: None,
            now: 0,
        }
    }

    /// Enables cache-miss tracing into a ring buffer of `capacity` events.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.tracer = Some(Box::new(TraceBuffer::new(capacity)));
    }

    /// Detaches the trace buffer, disabling tracing.
    pub fn take_trace(&mut self) -> Option<Box<TraceBuffer>> {
        self.tracer.take()
    }

    /// Sets the cycle timestamp used for subsequent trace events.
    ///
    /// The hierarchy has no clock of its own; the owning system calls this
    /// once per core tick when tracing is enabled.
    pub fn set_now(&mut self, cycle: u64) {
        self.now = cycle;
    }

    #[inline]
    fn trace_miss(&mut self, addr: u64, which: u32) {
        if let Some(tracer) = self.tracer.as_deref_mut() {
            tracer.record(TraceEvent {
                cycle: self.now,
                kind: EventKind::CacheMiss,
                arg: addr,
                detail: which,
            });
        }
    }

    /// This hierarchy's configuration.
    pub fn config(&self) -> &MemConfig {
        &self.config
    }

    /// Latency of refilling from L2 (and DRAM beyond it) after an L1 miss.
    fn refill(&mut self, addr: u64, write: bool) -> u64 {
        let out = self.l2.access(addr, write);
        let mut cycles = self.config.l2.hit_latency;
        if !out.hit {
            self.dram_accesses += 1;
            cycles += self.config.dram_latency;
            self.trace_miss(addr, detail::MISS_L2);
        }
        if out.evicted_dirty {
            // Writebacks to DRAM are buffered; they consume bandwidth but
            // not demand latency, so they are counted, not charged.
            self.dram_accesses += 1;
        }
        cycles
    }

    /// Performs an instruction fetch and returns its latency in cycles.
    pub fn fetch(&mut self, addr: u64) -> u64 {
        let out = self.l1i.access(addr, false);
        let mut cycles = self.config.l1i.hit_latency;
        if !out.hit {
            self.trace_miss(addr, detail::MISS_L1I);
            cycles += self.refill(addr, false);
        }
        self.fetch_cycles += cycles;
        cycles
    }

    /// Performs an instruction fetch the caller has proven must hit in
    /// L1I (the line was fetched by this hierarchy since, and only fetch
    /// traffic can evict L1I lines). Returns the hit latency.
    ///
    /// State- and stats-equivalent to [`Hierarchy::fetch`] on a hitting
    /// address, but skips the refill machinery; the compiled backend uses
    /// it for the non-leading instructions of a translated block.
    pub fn fetch_repeat(&mut self, addr: u64) -> u64 {
        self.l1i.repeat_hit(addr);
        let cycles = self.config.l1i.hit_latency;
        self.fetch_cycles += cycles;
        cycles
    }

    /// Performs a data load and returns its latency in cycles.
    pub fn load(&mut self, addr: u64) -> u64 {
        self.data_access(addr, false)
    }

    /// Performs a data store and returns its latency in cycles.
    pub fn store(&mut self, addr: u64) -> u64 {
        self.data_access(addr, true)
    }

    fn data_access(&mut self, addr: u64, write: bool) -> u64 {
        let out = self.l1d.access(addr, write);
        let mut cycles = self.config.l1d.hit_latency;
        if !out.hit {
            self.trace_miss(addr, detail::MISS_L1D);
            cycles += self.refill(addr, write);
        }
        if out.evicted_dirty {
            // L1 dirty victims are written into L2 (allocate, no demand
            // latency — the writeback buffer hides it).
            self.l2.access(addr, true);
        }
        self.data_cycles += cycles;
        cycles
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> MemStats {
        MemStats {
            l1i: *self.l1i.stats(),
            l1d: *self.l1d.stats(),
            l2: *self.l2.stats(),
            dram_accesses: self.dram_accesses,
            fetch_cycles: self.fetch_cycles,
            data_cycles: self.data_cycles,
        }
    }

    /// Invalidates all cache levels (statistics are kept).
    pub fn flush(&mut self) {
        self.l1i.flush();
        self.l1d.flush();
        self.l2.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_fetch_costs_more_than_warm() {
        let mut h = Hierarchy::new(MemConfig::default());
        let cold = h.fetch(0x1000);
        let warm = h.fetch(0x1000);
        assert!(cold > warm);
        assert_eq!(warm, h.config().l1i.hit_latency);
        assert_eq!(cold, 1 + 3 + 8, "L1 + L2 + DRAM on a fully cold access");
    }

    #[test]
    fn l2_catches_l1_misses() {
        let mut h = Hierarchy::new(MemConfig::tiny());
        // Touch enough lines to overflow the 64-byte L1 but stay in L2.
        for i in 0..8u64 {
            h.load(i * 16);
        }
        // Re-touch the first line: L1 miss (evicted), L2 hit.
        let lat = h.load(0);
        assert_eq!(lat, 1 + 4, "L1 miss latency plus L2 hit latency");
        let s = h.stats();
        assert!(s.l1d.misses >= 8);
        assert!(s.l2.hits >= 1);
    }

    #[test]
    fn dram_counter_tracks_l2_misses() {
        let mut h = Hierarchy::new(MemConfig::tiny());
        h.load(0);
        h.load(0x10_0000);
        assert_eq!(h.stats().dram_accesses, 2);
    }

    #[test]
    fn fetch_and_data_paths_are_separate() {
        let mut h = Hierarchy::new(MemConfig::default());
        h.fetch(0x2000);
        let lat = h.load(0x2000);
        assert!(lat > h.config().l1d.hit_latency, "L1I fill does not warm L1D");
        // But both hit in the now-warm L2.
        assert_eq!(h.stats().l2.hits, 1);
    }

    #[test]
    fn stats_accumulate_cycles() {
        let mut h = Hierarchy::new(MemConfig::default());
        h.fetch(0);
        h.load(64);
        h.store(64);
        let s = h.stats();
        assert!(s.fetch_cycles > 0);
        assert!(s.data_cycles > 0);
        assert_eq!(s.l1d.accesses, 2);
    }

    #[test]
    fn flush_forces_misses_again() {
        let mut h = Hierarchy::new(MemConfig::default());
        h.load(0);
        h.flush();
        let lat = h.load(0);
        assert!(lat > h.config().l1d.hit_latency);
    }

    #[test]
    fn fetch_repeat_matches_fetch_on_warm_line() {
        let mut via_fetch = Hierarchy::new(MemConfig::default());
        let mut via_repeat = Hierarchy::new(MemConfig::default());
        via_fetch.fetch(0x1000);
        via_repeat.fetch(0x1000);
        for _ in 0..4 {
            let a = via_fetch.fetch(0x1004);
            let b = via_repeat.fetch_repeat(0x1004);
            assert_eq!(a, b);
        }
        assert_eq!(via_fetch.stats(), via_repeat.stats());
    }

    #[test]
    fn perfect_config_is_flat_after_warmup() {
        let mut h = Hierarchy::new(MemConfig::perfect());
        h.load(0);
        assert_eq!(h.load(0), 1);
        assert_eq!(h.load(8), 1, "same line");
    }
}
