//! A timing-only set-associative cache model.
//!
//! The cache tracks tags, dirtiness, and true-LRU recency; it does not hold
//! data (the functional store is [`crate::Memory`]). An access reports
//! whether it hit and whether a dirty victim was evicted; the
//! [`crate::Hierarchy`] turns those outcomes into latencies.

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets (must be a power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes (must be a power of two).
    pub line_bytes: u64,
    /// Latency of a hit, in cycles.
    pub hit_latency: u64,
}

impl CacheConfig {
    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.sets as u64 * self.ways as u64 * self.line_bytes
    }
}

/// Outcome of a single cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// The access hit in this level.
    pub hit: bool,
    /// A dirty line was evicted to make room (miss only).
    pub evicted_dirty: bool,
}

/// Hit/miss counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
}

impl CacheStats {
    /// Miss rate in `[0, 1]`; zero when there were no accesses.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// A set-associative, write-back, write-allocate cache with true LRU.
///
/// Lines are stored structure-of-arrays in flat per-field vectors indexed
/// by `set * ways + way`; a line is valid iff its recency stamp is
/// nonzero (the tick counter pre-increments, so live stamps start at 1).
/// The zeroed vectors come from the allocator's zero-page path, so even
/// the huge idealised configurations (`MemConfig::perfect`) construct in
/// microseconds and only fault in the pages their working set touches.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// Line tags; meaningful only where `stamps` is nonzero.
    tags: Vec<u64>,
    /// Recency stamps (larger = more recent); zero marks an invalid way.
    stamps: Vec<u64>,
    /// Dirty flags; meaningful only where `stamps` is nonzero.
    dirty: Vec<u8>,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `line_bytes` is not a power of two, or if any
    /// dimension is zero.
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.sets.is_power_of_two(), "set count must be a power of two");
        assert!(config.line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(config.ways > 0, "associativity must be non-zero");
        let lines = config.sets * config.ways;
        Cache {
            config,
            tags: vec![0; lines],
            stamps: vec![0; lines],
            dirty: vec![0; lines],
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// This cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// The line-aligned address of the line containing `addr`.
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr & !(self.config.line_bytes - 1)
    }

    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.config.line_bytes;
        let set = (line as usize) & (self.config.sets - 1);
        let tag = line / self.config.sets as u64;
        (set, tag)
    }

    /// Performs one access, allocating the line on a miss.
    pub fn access(&mut self, addr: u64, write: bool) -> AccessOutcome {
        self.tick += 1;
        self.stats.accesses += 1;
        let (set_idx, tag) = self.set_and_tag(addr);
        let base = set_idx * self.config.ways;

        for i in base..base + self.config.ways {
            if self.stamps[i] != 0 && self.tags[i] == tag {
                self.stamps[i] = self.tick;
                self.dirty[i] |= u8::from(write);
                self.stats.hits += 1;
                return AccessOutcome { hit: true, evicted_dirty: false };
            }
        }

        self.stats.misses += 1;
        // Invalid ways carry stamp zero — below every live stamp — and
        // ties break toward the lower index, so this picks the first
        // invalid way when one exists and the true LRU line otherwise.
        let victim = (base..base + self.config.ways)
            .min_by_key(|&i| self.stamps[i])
            .expect("associativity is non-zero");
        let evicted_dirty = self.stamps[victim] != 0 && self.dirty[victim] != 0;
        if evicted_dirty {
            self.stats.writebacks += 1;
        }
        self.tags[victim] = tag;
        self.dirty[victim] = u8::from(write);
        self.stamps[victim] = self.tick;
        AccessOutcome { hit: false, evicted_dirty }
    }

    /// Records one access that the caller has proven must hit (the line
    /// was touched by this cache since, and nothing in between could have
    /// evicted it). State- and stats-equivalent to calling
    /// [`Cache::access`] with `write = false`: the tick advances, the hit
    /// is counted, and the line's recency stamp moves to the new tick —
    /// intermediate stamps of a run of repeats are unobservable because
    /// only the final stamp participates in later LRU decisions.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the line is not resident.
    pub fn repeat_hit(&mut self, addr: u64) {
        self.tick += 1;
        self.stats.accesses += 1;
        self.stats.hits += 1;
        let (set_idx, tag) = self.set_and_tag(addr);
        let base = set_idx * self.config.ways;
        let line = (base..base + self.config.ways)
            .find(|&i| self.stamps[i] != 0 && self.tags[i] == tag);
        debug_assert!(line.is_some(), "repeat_hit on non-resident line {addr:#x}");
        if let Some(i) = line {
            self.stamps[i] = self.tick;
        }
    }

    /// Whether the line containing `addr` is currently resident (no state
    /// change; useful for tests and warm-up checks).
    pub fn probe(&self, addr: u64) -> bool {
        let (set_idx, tag) = self.set_and_tag(addr);
        let base = set_idx * self.config.ways;
        (base..base + self.config.ways).any(|i| self.stamps[i] != 0 && self.tags[i] == tag)
    }

    /// Invalidates all lines and forgets dirtiness (no writeback modelling;
    /// used between benchmark runs).
    pub fn flush(&mut self) {
        self.stamps.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        Cache::new(CacheConfig { sets: 4, ways: 2, line_bytes: 16, hit_latency: 1 })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        assert!(!c.access(0x100, false).hit);
        assert!(c.access(0x100, false).hit);
        assert!(c.access(0x10F, false).hit, "same line");
        assert!(!c.access(0x110, false).hit, "next line");
        assert_eq!(c.stats().accesses, 4);
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small();
        // Three lines mapping to the same set (set stride = sets*line = 64).
        let (a, b, d) = (0x000, 0x040, 0x080);
        c.access(a, false);
        c.access(b, false);
        c.access(a, false); // a is now most recent
        c.access(d, false); // evicts b (LRU)
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(d));
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut c = small();
        let (a, b, d) = (0x000, 0x040, 0x080);
        c.access(a, true); // dirty
        c.access(b, false);
        let out = c.access(d, false); // evicts a (LRU, dirty)
        assert!(out.evicted_dirty);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = small();
        let (a, b, d) = (0x000, 0x040, 0x080);
        c.access(a, false);
        c.access(a, true); // dirty via write hit
        c.access(b, false);
        c.access(b, false); // b most recent; a is LRU
        let out = c.access(d, false);
        assert!(out.evicted_dirty, "write-hit dirtied the line");
    }

    #[test]
    fn repeat_hit_equivalent_to_access() {
        let mut via_access = small();
        let mut via_repeat = small();
        for c in [&mut via_access, &mut via_repeat] {
            c.access(0x000, false);
            c.access(0x040, false);
        }
        for _ in 0..3 {
            via_access.access(0x044, false);
            via_repeat.repeat_hit(0x044);
        }
        assert_eq!(via_access.stats(), via_repeat.stats());
        // Recency must match too: 0x000 is LRU in both, so a conflicting
        // fill evicts the same victim.
        via_access.access(0x080, false);
        via_repeat.access(0x080, false);
        assert_eq!(via_access.probe(0x000), via_repeat.probe(0x000));
        assert_eq!(via_access.probe(0x040), via_repeat.probe(0x040));
    }

    #[test]
    fn stats_are_consistent() {
        let mut c = small();
        for i in 0..100u64 {
            c.access(i * 8, i % 3 == 0);
        }
        let s = c.stats();
        assert_eq!(s.hits + s.misses, s.accesses);
        assert!(s.miss_rate() > 0.0 && s.miss_rate() <= 1.0);
    }

    #[test]
    fn flush_empties() {
        let mut c = small();
        c.access(0, false);
        assert!(c.probe(0));
        c.flush();
        assert!(!c.probe(0));
    }

    #[test]
    fn capacity() {
        let cfg = CacheConfig { sets: 64, ways: 4, line_bytes: 32, hit_latency: 1 };
        assert_eq!(cfg.capacity(), 8192);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        let _ = Cache::new(CacheConfig { sets: 3, ways: 1, line_bytes: 16, hit_latency: 1 });
    }
}
