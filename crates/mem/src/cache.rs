//! A timing-only set-associative cache model.
//!
//! The cache tracks tags, dirtiness, and true-LRU recency; it does not hold
//! data (the functional store is [`crate::Memory`]). An access reports
//! whether it hit and whether a dirty victim was evicted; the
//! [`crate::Hierarchy`] turns those outcomes into latencies.

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets (must be a power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes (must be a power of two).
    pub line_bytes: u64,
    /// Latency of a hit, in cycles.
    pub hit_latency: u64,
}

impl CacheConfig {
    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.sets as u64 * self.ways as u64 * self.line_bytes
    }
}

/// Outcome of a single cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// The access hit in this level.
    pub hit: bool,
    /// A dirty line was evicted to make room (miss only).
    pub evicted_dirty: bool,
}

/// Hit/miss counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
}

impl CacheStats {
    /// Miss rate in `[0, 1]`; zero when there were no accesses.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    dirty: bool,
    /// Monotonic recency stamp; larger = more recent.
    stamp: u64,
}

/// A set-associative, write-back, write-allocate cache with true LRU.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<Option<Line>>>,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `line_bytes` is not a power of two, or if any
    /// dimension is zero.
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.sets.is_power_of_two(), "set count must be a power of two");
        assert!(config.line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(config.ways > 0, "associativity must be non-zero");
        Cache {
            config,
            sets: vec![vec![None; config.ways]; config.sets],
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// This cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// The line-aligned address of the line containing `addr`.
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr & !(self.config.line_bytes - 1)
    }

    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.config.line_bytes;
        let set = (line as usize) & (self.config.sets - 1);
        let tag = line / self.config.sets as u64;
        (set, tag)
    }

    /// Performs one access, allocating the line on a miss.
    pub fn access(&mut self, addr: u64, write: bool) -> AccessOutcome {
        self.tick += 1;
        self.stats.accesses += 1;
        let (set_idx, tag) = self.set_and_tag(addr);
        let set = &mut self.sets[set_idx];

        if let Some(line) = set.iter_mut().flatten().find(|l| l.tag == tag) {
            line.stamp = self.tick;
            line.dirty |= write;
            self.stats.hits += 1;
            return AccessOutcome { hit: true, evicted_dirty: false };
        }

        self.stats.misses += 1;
        // Prefer an invalid way; otherwise evict the least recently used.
        let victim = match set.iter().position(Option::is_none) {
            Some(idx) => idx,
            None => {
                let (idx, _) = set
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, l)| l.map(|l| l.stamp).unwrap_or(0))
                    .expect("associativity is non-zero");
                idx
            }
        };
        let evicted_dirty = set[victim].is_some_and(|l| l.dirty);
        if evicted_dirty {
            self.stats.writebacks += 1;
        }
        set[victim] = Some(Line { tag, dirty: write, stamp: self.tick });
        AccessOutcome { hit: false, evicted_dirty }
    }

    /// Whether the line containing `addr` is currently resident (no state
    /// change; useful for tests and warm-up checks).
    pub fn probe(&self, addr: u64) -> bool {
        let (set_idx, tag) = self.set_and_tag(addr);
        self.sets[set_idx].iter().flatten().any(|l| l.tag == tag)
    }

    /// Invalidates all lines and forgets dirtiness (no writeback modelling;
    /// used between benchmark runs).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.fill(None);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        Cache::new(CacheConfig { sets: 4, ways: 2, line_bytes: 16, hit_latency: 1 })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        assert!(!c.access(0x100, false).hit);
        assert!(c.access(0x100, false).hit);
        assert!(c.access(0x10F, false).hit, "same line");
        assert!(!c.access(0x110, false).hit, "next line");
        assert_eq!(c.stats().accesses, 4);
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small();
        // Three lines mapping to the same set (set stride = sets*line = 64).
        let (a, b, d) = (0x000, 0x040, 0x080);
        c.access(a, false);
        c.access(b, false);
        c.access(a, false); // a is now most recent
        c.access(d, false); // evicts b (LRU)
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(d));
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut c = small();
        let (a, b, d) = (0x000, 0x040, 0x080);
        c.access(a, true); // dirty
        c.access(b, false);
        let out = c.access(d, false); // evicts a (LRU, dirty)
        assert!(out.evicted_dirty);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = small();
        let (a, b, d) = (0x000, 0x040, 0x080);
        c.access(a, false);
        c.access(a, true); // dirty via write hit
        c.access(b, false);
        c.access(b, false); // b most recent; a is LRU
        let out = c.access(d, false);
        assert!(out.evicted_dirty, "write-hit dirtied the line");
    }

    #[test]
    fn stats_are_consistent() {
        let mut c = small();
        for i in 0..100u64 {
            c.access(i * 8, i % 3 == 0);
        }
        let s = c.stats();
        assert_eq!(s.hits + s.misses, s.accesses);
        assert!(s.miss_rate() > 0.0 && s.miss_rate() <= 1.0);
    }

    #[test]
    fn flush_empties() {
        let mut c = small();
        c.access(0, false);
        assert!(c.probe(0));
        c.flush();
        assert!(!c.probe(0));
    }

    #[test]
    fn capacity() {
        let cfg = CacheConfig { sets: 64, ways: 4, line_bytes: 32, hit_latency: 1 };
        assert_eq!(cfg.capacity(), 8192);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        let _ = Cache::new(CacheConfig { sets: 3, ways: 1, line_bytes: 16, hit_latency: 1 });
    }
}
