//! Loop unrolling with a runtime remainder loop.
//!
//! The DySER compiler replicates loop bodies so the spatial scheduler can
//! map several iterations' worth of dataflow onto the fabric at once.
//! This pass unrolls *canonical counted loops* — the shape every kernel in
//! the suite takes after if-conversion:
//!
//! ```text
//! preheader:
//!   br body
//! body:                                    ; single block, header == latch
//!   i   = phi [init, preheader] [i2, body]
//!   ... straight-line body ...
//!   i2  = add i, STEP                      ; STEP a positive constant
//!   c   = cmp slt|sle i2, bound            ; bound loop-invariant
//!   condbr c, body, exit                   ; exit has no other preds
//! ```
//!
//! The transform produces a *main loop* of `U` stitched copies guarded by
//! `i + (U-1)*STEP (<|<=) bound`-style checks, plus an *epilogue loop*
//! (a copy of the original) that finishes the remaining iterations, so the
//! result is correct for every trip count, not just multiples of `U`.

use std::collections::HashMap;

use crate::analysis::{Cfg, DomTree, LoopForest};
use crate::ir::{
    BinOp, Block, CmpOp, Function, Inst, Terminator, Type, Value, ValueData, ValueKind,
};

/// What [`unroll_innermost`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnrollOutcome {
    /// The loop was unrolled by the requested factor.
    Unrolled {
        /// The unroll factor applied.
        factor: usize,
        /// The new main-loop body block.
        body: Block,
    },
    /// No loop in the function matches the canonical shape.
    NoCanonicalLoop,
}

/// The pieces of a canonical counted loop.
#[derive(Debug, Clone)]
struct CanonicalLoop {
    body: Block,
    exit: Block,
    outside_pred: Block,
    /// All phis: `(phi, init_from_outside, next_from_body)`.
    phis: Vec<(Value, Value, Value)>,
    /// The induction phi and its constant step.
    iv: Value,
    step: i64,
    /// The exit comparison: `cmp op iv_next, bound`.
    cmp_op: CmpOp,
    iv_next: Value,
    bound: Value,
    cond: Value,
}

fn find_canonical(f: &Function) -> Option<CanonicalLoop> {
    let cfg = Cfg::compute(f);
    let dom = DomTree::compute(f, &cfg);
    let forest = LoopForest::compute(f, &cfg, &dom);

    for l in forest.innermost() {
        if l.blocks.len() != 1 {
            continue;
        }
        let body = l.header;
        let Terminator::CondBr { cond, then_bb, else_bb } = f.block(body).term else { continue };
        if then_bb != body {
            continue;
        }
        let exit = else_bb;
        if cfg.preds(exit) != [body] {
            continue;
        }
        let outside: Vec<Block> =
            cfg.preds(body).iter().copied().filter(|&p| p != body).collect();
        let [outside_pred] = outside.as_slice() else { continue };

        // The condition: cmp slt/sle iv_next, bound.
        let Some(Inst::Cmp { op, a, b }) = f.as_inst(cond) else { continue };
        if !matches!(op, CmpOp::Slt | CmpOp::Sle) {
            continue;
        }
        let (iv_next, bound) = (*a, *b);
        // Bound must be loop-invariant: a param, constant, or defined
        // outside the body.
        let bound_in_body = f.block(body).insts.contains(&bound);
        if bound_in_body {
            continue;
        }
        // iv_next = add iv, const-step, with iv a phi of this loop.
        let Some(Inst::Bin { op: BinOp::Add, a: iv, b: step_v }) = f.as_inst(iv_next) else {
            continue;
        };
        let Some(step) = f.as_const_i(*step_v) else { continue };
        if step <= 0 {
            continue;
        }
        let iv = *iv;
        if !matches!(f.as_inst(iv), Some(Inst::Phi { .. })) {
            continue;
        }

        // Collect phis in canonical form.
        let mut phis = Vec::new();
        let mut ok = true;
        for &v in &f.block(body).insts {
            let Some(Inst::Phi { incomings }) = f.as_inst(v) else { continue };
            let init = incomings.iter().find(|(bb, _)| *bb == *outside_pred).map(|(_, x)| *x);
            let next = incomings.iter().find(|(bb, _)| *bb == body).map(|(_, x)| *x);
            match (init, next) {
                (Some(i), Some(n)) if incomings.len() == 2 => phis.push((v, i, n)),
                _ => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok || !phis.iter().any(|(p, _, _)| *p == iv) {
            continue;
        }

        // The exit condition must feed only the terminator: intermediate
        // copies drop it, so nothing else may observe it.
        let cond_used_in_body = f
            .block(body)
            .insts
            .iter()
            .any(|&v| f.operands(v).contains(&cond));
        if cond_used_in_body {
            continue;
        }

        return Some(CanonicalLoop {
            body,
            exit,
            outside_pred: *outside_pred,
            phis,
            iv,
            step,
            cmp_op: *op,
            iv_next,
            bound,
            cond,
        });
    }
    None
}

/// Raw helpers for building values directly into a `Function` (the pass
/// works below the `FunctionBuilder` level because it rewrites an
/// existing function in place).
fn push_value(f: &mut Function, kind: ValueKind, ty: Type) -> Value {
    let values = f.values_mut();
    values.push(ValueData { kind, ty, name: None });
    Value((values.len() - 1) as u32)
}

fn push_block(f: &mut Function, name: &str) -> Block {
    let blocks = f.blocks_mut();
    blocks.push(crate::ir::BlockData {
        name: name.to_owned(),
        insts: Vec::new(),
        term: Terminator::None,
    });
    Block((blocks.len() - 1) as u32)
}

/// Unrolls the first canonical innermost loop by `factor`.
///
/// # Panics
///
/// Panics if `factor < 2`.
pub fn unroll_innermost(f: &mut Function, factor: usize) -> UnrollOutcome {
    assert!(factor >= 2, "unroll factor must be at least 2");
    let Some(cl) = find_canonical(f) else { return UnrollOutcome::NoCanonicalLoop };

    // New blocks: guard, main (the unrolled loop), epi_guard; the original
    // body becomes the epilogue loop.
    let guard = push_block(f, "unroll_guard");
    let main = push_block(f, "unroll_main");
    let epi_guard = push_block(f, "unroll_epi_guard");

    // --- Redirect the outside predecessor to the guard. ---
    let op_term = f.block(cl.outside_pred).term.clone();
    let redirect = |t: Block| if t == cl.body { guard } else { t };
    f.block_mut(cl.outside_pred).term = match op_term {
        Terminator::Br(t) => Terminator::Br(redirect(t)),
        Terminator::CondBr { cond, then_bb, else_bb } => Terminator::CondBr {
            cond,
            then_bb: redirect(then_bb),
            else_bb: redirect(else_bb),
        },
        other => other,
    };

    // --- Guard: enter main only if the first `factor` iterations all run.
    // Iteration k's validity (k >= 1) is `init + k*step (op) bound`; the
    // first iteration always runs (do-while). So require
    // `init + (factor-1)*step (op) bound`.
    let iv_init = cl
        .phis
        .iter()
        .find(|(p, _, _)| *p == cl.iv)
        .map(|(_, init, _)| *init)
        .expect("iv is one of the phis");
    let ahead = push_value(f, ValueKind::ConstI(cl.step * (factor as i64 - 1)), Type::I64);
    let guard_idx = push_value(
        f,
        ValueKind::Inst(Inst::Bin { op: BinOp::Add, a: iv_init, b: ahead }),
        Type::I64,
    );
    let guard_cond = push_value(
        f,
        ValueKind::Inst(Inst::Cmp { op: cl.cmp_op, a: guard_idx, b: cl.bound }),
        Type::I1,
    );
    f.block_mut(guard).insts.extend([guard_idx, guard_cond]);
    f.block_mut(guard).term =
        Terminator::CondBr { cond: guard_cond, then_bb: main, else_bb: epi_guard };

    // --- Main loop: phis + `factor` stitched copies of the body. ---
    // Main phis mirror the original phis.
    let mut main_phi: HashMap<Value, Value> = HashMap::new();
    for (p, init, _) in &cl.phis {
        let ty = f.ty(*p);
        let np = push_value(
            f,
            ValueKind::Inst(Inst::Phi { incomings: vec![(guard, *init)] }),
            ty,
        );
        f.block_mut(main).insts.push(np);
        main_phi.insert(*p, np);
        let _ = init;
    }

    // Original body instructions in order, minus phis.
    let body_insts: Vec<Value> = f
        .block(cl.body)
        .insts
        .iter()
        .copied()
        .filter(|&v| !matches!(f.as_inst(v), Some(Inst::Phi { .. })))
        .collect();

    // `cur` maps original values to the current copy's values; it starts
    // at the main phis and is re-seeded from each copy's phi-next values.
    let mut cur: HashMap<Value, Value> = main_phi.clone();
    let mut last_copy: HashMap<Value, Value> = HashMap::new();
    for _copy in 0..factor {
        let mut map_this: HashMap<Value, Value> = cur.clone();
        for &v in &body_insts {
            // Skip the exit compare: intermediate checks are dropped (the
            // guard proved all `factor` iterations run).
            if v == cl.cond {
                continue;
            }
            let inst = f.as_inst(v).expect("body instruction").clone();
            let m = |x: Value, map: &HashMap<Value, Value>| *map.get(&x).unwrap_or(&x);
            let new_inst = match inst {
                Inst::Bin { op, a, b } => {
                    Inst::Bin { op, a: m(a, &map_this), b: m(b, &map_this) }
                }
                Inst::Un { op, a } => Inst::Un { op, a: m(a, &map_this) },
                Inst::Cmp { op, a, b } => {
                    Inst::Cmp { op, a: m(a, &map_this), b: m(b, &map_this) }
                }
                Inst::Select { cond, on_true, on_false } => Inst::Select {
                    cond: m(cond, &map_this),
                    on_true: m(on_true, &map_this),
                    on_false: m(on_false, &map_this),
                },
                Inst::Load { ptr } => Inst::Load { ptr: m(ptr, &map_this) },
                Inst::Store { ptr, value } => {
                    Inst::Store { ptr: m(ptr, &map_this), value: m(value, &map_this) }
                }
                Inst::Gep { base, index, scale } => {
                    Inst::Gep { base: m(base, &map_this), index: m(index, &map_this), scale }
                }
                Inst::Phi { .. } => unreachable!("phis filtered out"),
            };
            let ty = f.ty(v);
            let nv = push_value(f, ValueKind::Inst(new_inst), ty);
            f.block_mut(main).insts.push(nv);
            map_this.insert(v, nv);
        }
        // Next copy starts from this copy's phi-next values.
        let mut next: HashMap<Value, Value> = HashMap::new();
        for (p, _, n) in &cl.phis {
            next.insert(*p, *map_this.get(n).unwrap_or(n));
        }
        last_copy = map_this;
        cur = next;
    }

    // Close the main phis: incoming from main = last copy's next values.
    for (p, _, n) in &cl.phis {
        let np = main_phi[p];
        let from_main = *last_copy.get(n).unwrap_or(n);
        if let ValueKind::Inst(Inst::Phi { incomings }) = &mut f.value_mut(np).kind {
            incomings.push((main, from_main));
        }
    }

    // Main continue condition: one more full batch must fit:
    // `iv_after_batch + (factor-1)*step (op) bound`.
    let iv_after = *last_copy.get(&cl.iv_next).unwrap_or(&cl.iv_next);
    let main_idx = push_value(
        f,
        ValueKind::Inst(Inst::Bin { op: BinOp::Add, a: iv_after, b: ahead }),
        Type::I64,
    );
    let main_cond = push_value(
        f,
        ValueKind::Inst(Inst::Cmp { op: cl.cmp_op, a: main_idx, b: cl.bound }),
        Type::I1,
    );
    f.block_mut(main).insts.extend([main_idx, main_cond]);
    f.block_mut(main).term =
        Terminator::CondBr { cond: main_cond, then_bb: main, else_bb: epi_guard };

    // --- Epilogue guard: merge (guard-fail, main-exit) values and decide
    // whether any iterations remain. The epilogue is the ORIGINAL do-while
    // loop, so enter it only if its first iteration is valid:
    // guard-fail path: always at least one iteration remains (do-while).
    // main-exit path: remaining iff `iv_cur (op) bound`.
    let mut epi_entry: HashMap<Value, Value> = HashMap::new();
    for (p, init, n) in &cl.phis {
        let ty = f.ty(*p);
        let from_main = *last_copy.get(n).unwrap_or(n);
        let merged = push_value(
            f,
            ValueKind::Inst(Inst::Phi {
                incomings: vec![(guard, *init), (main, from_main)],
            }),
            ty,
        );
        f.block_mut(epi_guard).insts.push(merged);
        epi_entry.insert(*p, merged);
    }
    // "Remaining work" test: after main exits, the next index is iv_merged;
    // on the guard-fail path iv_merged = init and at least one iteration
    // must run regardless (do-while), and indeed `init` satisfies this test
    // whenever the original loop would... except for the very first
    // iteration of a do-while, which runs unconditionally. To keep the
    // do-while semantics exactly, track "came from guard" explicitly.
    let true_c = push_const_bool(f, true);
    let false_c = push_const_bool(f, false);
    let came_from_guard = push_value(
        f,
        ValueKind::Inst(Inst::Phi { incomings: vec![(guard, true_c), (main, false_c)] }),
        Type::I1,
    );
    f.block_mut(epi_guard).insts.push(came_from_guard);

    let iv_merged = epi_entry[&cl.iv];
    let more = push_value(
        f,
        ValueKind::Inst(Inst::Cmp { op: cl.cmp_op, a: iv_merged, b: cl.bound }),
        Type::I1,
    );
    // Enter the epilogue if we came from the guard (first iteration always
    // runs) OR the index test says more iterations remain.
    // enter = came_from_guard | more  — both are i1.
    let enter = push_value(
        f,
        ValueKind::Inst(Inst::Bin { op: BinOp::Or, a: came_from_guard, b: more }),
        Type::I1,
    );
    f.block_mut(epi_guard).insts.extend([more, enter]);
    f.block_mut(epi_guard).term =
        Terminator::CondBr { cond: enter, then_bb: cl.body, else_bb: cl.exit };

    // --- Rewire the original body (now the epilogue): phis' outside
    // incoming comes from epi_guard with the merged values. ---
    for (p, _, _n) in &cl.phis {
        if let ValueKind::Inst(Inst::Phi { incomings }) = &mut f.value_mut(*p).kind {
            for (bb, v) in incomings.iter_mut() {
                if *bb == cl.outside_pred {
                    *bb = epi_guard;
                    *v = epi_entry[p];
                }
            }
        }
    }

    // --- Live-outs: values defined in the loop and used after it must now
    // merge the two paths into `exit`. The exit gets phis.
    // Values live-out of the original body: any body value used outside.
    let body_set: std::collections::HashSet<Value> =
        f.block(cl.body).insts.iter().copied().collect();
    let mut liveout: Vec<Value> = Vec::new();
    for b in f.blocks() {
        if b == cl.body {
            continue;
        }
        for &v in &f.block(b).insts.clone() {
            for o in f.operands(v) {
                if body_set.contains(&o) && !liveout.contains(&o) {
                    liveout.push(o);
                }
            }
        }
        match f.block(b).term.clone() {
            Terminator::CondBr { cond, .. }
                if body_set.contains(&cond) && !liveout.contains(&cond) => {
                    liveout.push(cond);
                }
            Terminator::Ret(Some(v))
                if body_set.contains(&v) && !liveout.contains(&v) => {
                    liveout.push(v);
                }
            _ => {}
        }
    }
    // Filter out uses that are the epilogue machinery itself (phis we
    // already wired). Everything else gets an exit phi merging the
    // epilogue value with the epi_guard bypass value.
    for lv in liveout {
        // The bypass value at epi_guard: for a phi it is the merged entry
        // value; for non-phi body values there is no bypass equivalent, so
        // the exit merge only applies to phi-derived live-outs. Kernels in
        // the suite only live-out phi "next" values (reductions), which are
        // phi-mapped below.
        let bypass = cl
            .phis
            .iter()
            .find(|(_, _, n)| *n == lv)
            .map(|(p, _, _)| epi_entry[p])
            .or_else(|| epi_entry.get(&lv).copied());
        let Some(bypass) = bypass else { continue };
        let ty = f.ty(lv);
        let exit_phi = push_value(
            f,
            ValueKind::Inst(Inst::Phi {
                incomings: vec![(cl.body, lv), (epi_guard, bypass)],
            }),
            ty,
        );
        // Replace uses of lv outside the loop with the exit phi.
        replace_uses_outside(f, lv, exit_phi, cl.body, epi_guard, exit_phi);
        f.block_mut(cl.exit).insts.insert(0, exit_phi);
    }

    UnrollOutcome::Unrolled { factor, body: main }
}

fn push_const_bool(f: &mut Function, v: bool) -> Value {
    push_value(f, ValueKind::ConstI(i64::from(v)), Type::I1)
}

/// Replaces uses of `from` with `to` everywhere except inside `skip_block`
/// and inside the value `keep` (the exit phi referencing the original).
fn replace_uses_outside(
    f: &mut Function,
    from: Value,
    to: Value,
    skip_block: Block,
    skip_block2: Block,
    keep: Value,
) {
    let blocks: Vec<Block> = f.blocks().collect();
    for b in blocks {
        if b == skip_block || b == skip_block2 {
            continue;
        }
        let insts = f.block(b).insts.clone();
        for v in insts {
            if v == keep {
                continue;
            }
            substitute_in_value(f, v, from, to);
        }
        match f.block(b).term.clone() {
            Terminator::CondBr { cond, then_bb, else_bb } if cond == from => {
                f.block_mut(b).term = Terminator::CondBr { cond: to, then_bb, else_bb };
            }
            Terminator::Ret(Some(v)) if v == from => {
                f.block_mut(b).term = Terminator::Ret(Some(to));
            }
            _ => {}
        }
    }
}

fn substitute_in_value(f: &mut Function, v: Value, from: Value, to: Value) {
    if let ValueKind::Inst(inst) = &mut f.value_mut(v).kind {
        let subst = |x: &mut Value| {
            if *x == from {
                *x = to;
            }
        };
        match inst {
            Inst::Bin { a, b, .. } | Inst::Cmp { a, b, .. } => {
                subst(a);
                subst(b);
            }
            Inst::Un { a, .. } => subst(a),
            Inst::Select { cond, on_true, on_false } => {
                subst(cond);
                subst(on_true);
                subst(on_false);
            }
            Inst::Load { ptr } => subst(ptr),
            Inst::Store { ptr, value } => {
                subst(ptr);
                subst(value);
            }
            Inst::Gep { base, index, .. } => {
                subst(base);
                subst(index);
            }
            Inst::Phi { incomings } => {
                for (_, x) in incomings {
                    subst(x);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::interp::{interpret, InterpMem};
    use crate::ir::verify::verify;
    use crate::ir::FunctionBuilder;

    /// sum += a[i] for i in 0..n (do-while), returning the sum.
    fn dot_self() -> Function {
        let mut b = FunctionBuilder::new("sum", &[("a", Type::Ptr), ("n", Type::I64)]);
        let a = b.param(0);
        let n = b.param(1);
        let zero = b.const_i(0);
        let one = b.const_i(1);
        let body = b.block("body");
        let exit = b.block("exit");
        let entry = b.current();
        b.br(body);
        b.switch_to(body);
        let i = b.phi(Type::I64);
        let acc = b.phi(Type::I64);
        let p = b.gep(a, i, 8);
        let x = b.load(p, Type::I64);
        let acc2 = b.bin(BinOp::Add, acc, x);
        let i2 = b.bin(BinOp::Add, i, one);
        b.add_incoming(i, entry, zero);
        b.add_incoming(i, body, i2);
        b.add_incoming(acc, entry, zero);
        b.add_incoming(acc, body, acc2);
        let c = b.cmp(CmpOp::Slt, i2, n);
        b.cond_br(c, body, exit);
        b.switch_to(exit);
        b.ret(Some(acc2));
        b.build().unwrap()
    }

    /// c[i] = a[i] * 3 for i in 0..n.
    fn scale3() -> Function {
        let mut b = FunctionBuilder::new(
            "scale3",
            &[("a", Type::Ptr), ("c", Type::Ptr), ("n", Type::I64)],
        );
        let a = b.param(0);
        let cp = b.param(1);
        let n = b.param(2);
        let zero = b.const_i(0);
        let one = b.const_i(1);
        let three = b.const_i(3);
        let body = b.block("body");
        let exit = b.block("exit");
        let entry = b.current();
        b.br(body);
        b.switch_to(body);
        let i = b.phi(Type::I64);
        let pa = b.gep(a, i, 8);
        let x = b.load(pa, Type::I64);
        let y = b.bin(BinOp::Mul, x, three);
        let pc = b.gep(cp, i, 8);
        b.store(y, pc);
        let i2 = b.bin(BinOp::Add, i, one);
        b.add_incoming(i, entry, zero);
        b.add_incoming(i, body, i2);
        let c = b.cmp(CmpOp::Slt, i2, n);
        b.cond_br(c, body, exit);
        b.switch_to(exit);
        b.ret(None);
        b.build().unwrap()
    }

    fn run_scale(f: &Function, n: u64) -> Vec<u64> {
        let mut mem = InterpMem::new();
        let input: Vec<u64> = (0..n).map(|i| i + 1).collect();
        mem.write_u64_slice(0x1000, &input);
        interpret(f, &[0x1000, 0x8000, n], &mut mem, 1_000_000).unwrap();
        mem.read_u64_slice(0x8000, n as usize)
    }

    #[test]
    fn unroll_detects_canonical_loop() {
        let mut f = scale3();
        let out = unroll_innermost(&mut f, 4);
        assert!(matches!(out, UnrollOutcome::Unrolled { factor: 4, .. }));
        verify(&f).unwrap_or_else(|e| panic!("unrolled function invalid: {e}\n{f}"));
    }

    #[test]
    fn unrolled_store_loop_matches_for_all_trip_counts() {
        for factor in [2usize, 3, 4] {
            for n in 1u64..=13 {
                let f0 = scale3();
                let mut f1 = scale3();
                unroll_innermost(&mut f1, factor);
                verify(&f1).unwrap_or_else(|e| panic!("U={factor} n={n}: {e}\n{f1}"));
                assert_eq!(
                    run_scale(&f0, n),
                    run_scale(&f1, n),
                    "factor={factor} n={n}\n{f1}"
                );
            }
        }
    }

    #[test]
    fn unrolled_reduction_matches_and_liveout_merges() {
        for factor in [2usize, 4] {
            for n in 1u64..=11 {
                let f0 = dot_self();
                let mut f1 = dot_self();
                unroll_innermost(&mut f1, factor);
                verify(&f1).unwrap_or_else(|e| panic!("U={factor} n={n}: {e}\n{f1}"));
                let input: Vec<u64> = (0..n).map(|i| 10 * (i + 1)).collect();
                let mut m0 = InterpMem::new();
                m0.write_u64_slice(0x1000, &input);
                let mut m1 = m0.clone();
                let r0 = interpret(&f0, &[0x1000, n], &mut m0, 1_000_000).unwrap();
                let r1 = interpret(&f1, &[0x1000, n], &mut m1, 1_000_000).unwrap();
                assert_eq!(r0.ret, r1.ret, "factor={factor} n={n}\n{f1}");
            }
        }
    }

    #[test]
    fn unrolled_loop_runs_fewer_branch_blocks() {
        // The interpreter step count should shrink (fewer compare/branch
        // evaluations per element).
        let n = 64u64;
        let f0 = scale3();
        let mut f1 = scale3();
        unroll_innermost(&mut f1, 4);
        let mut m0 = InterpMem::new();
        let mut m1 = InterpMem::new();
        m0.write_u64_slice(0x1000, &vec![1u64; n as usize]);
        m1.write_u64_slice(0x1000, &vec![1u64; n as usize]);
        let r0 = interpret(&f0, &[0x1000, 0x8000, n], &mut m0, 1_000_000).unwrap();
        let r1 = interpret(&f1, &[0x1000, 0x8000, n], &mut m1, 1_000_000).unwrap();
        assert!(
            r1.steps < r0.steps,
            "unrolled {} steps vs original {}",
            r1.steps,
            r0.steps
        );
    }

    #[test]
    fn non_canonical_loop_reports_no_loop() {
        // A while-style loop with the branch at the top is not canonical.
        let mut b = FunctionBuilder::new("w", &[("x", Type::I64)]);
        b.ret(None);
        let mut f = b.build().unwrap();
        assert_eq!(unroll_innermost(&mut f, 4), UnrollOutcome::NoCanonicalLoop);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn factor_one_panics() {
        let mut f = scale3();
        let _ = unroll_innermost(&mut f, 1);
    }
}
