//! If-conversion: turning acyclic diamonds and triangles into `select`s.
//!
//! This is the transform that lets the DySER compiler absorb *irregular
//! but predicable* control flow into the fabric: a hammock
//! (`A -> {T, E} -> J` or `A -> {T} -> J`) whose arms contain only
//! speculatable instructions is flattened into `A`'s straight line, and
//! each phi at the join becomes a `select` on the branch condition.
//!
//! Loads are considered speculatable here because the machine model is
//! trap-free (see `DESIGN.md`); stores and divides are not (a store is a
//! side effect; a speculated divide changes no architectural state in this
//! IR either, but it is excluded to keep the cost model honest — an
//! if-converted divide would burn 20+ cycles on the untaken path).

use std::collections::HashSet;

use crate::analysis::Cfg;
use crate::ir::{BinOp, Block, Function, Inst, Terminator, ValueKind};

/// Whether every instruction in `b` may execute unconditionally.
fn speculatable(f: &Function, b: Block) -> bool {
    f.block(b).insts.iter().all(|&v| match f.as_inst(v) {
        Some(Inst::Store { .. }) | Some(Inst::Phi { .. }) => false,
        Some(Inst::Bin { op, .. }) => !matches!(op, BinOp::Sdiv | BinOp::Fdiv),
        Some(_) => true,
        None => true,
    })
}

/// One if-conversion step: finds a hammock and flattens it.
/// Returns `true` if a rewrite happened.
fn if_convert_once(f: &mut Function) -> bool {
    let cfg = Cfg::compute(f);
    for a in f.blocks() {
        let Terminator::CondBr { cond, then_bb, else_bb } = f.block(a).term else { continue };
        if then_bb == else_bb {
            continue;
        }

        // Diamond: A -> T -> J and A -> E -> J, with T/E otherwise private.
        let arm = |x: Block| -> Option<Block> {
            match f.block(x).term {
                Terminator::Br(j) if cfg.preds(x) == [a] && speculatable(f, x) => Some(j),
                _ => None,
            }
        };

        // Case 1: full diamond.
        if let (Some(jt), Some(je)) = (arm(then_bb), arm(else_bb)) {
            if jt == je && jt != a {
                let join = jt;
                let mut preds: Vec<Block> = cfg.preds(join).to_vec();
                preds.sort();
                let mut expect = vec![then_bb, else_bb];
                expect.sort();
                if preds == expect {
                    flatten(f, a, cond, Some(then_bb), Some(else_bb), join);
                    return true;
                }
            }
        }

        // Case 2: triangle with the then-arm: A -> T -> J, A -> J.
        if let Some(j) = arm(then_bb) {
            if j == else_bb && j != a {
                let mut preds: Vec<Block> = cfg.preds(j).to_vec();
                preds.sort();
                let mut expect = vec![a, then_bb];
                expect.sort();
                if preds == expect {
                    flatten(f, a, cond, Some(then_bb), None, j);
                    return true;
                }
            }
        }

        // Case 3: triangle with the else-arm: A -> E -> J, A -> J.
        if let Some(j) = arm(else_bb) {
            if j == then_bb && j != a {
                let mut preds: Vec<Block> = cfg.preds(j).to_vec();
                preds.sort();
                let mut expect = vec![a, else_bb];
                expect.sort();
                if preds == expect {
                    flatten(f, a, cond, None, Some(else_bb), j);
                    return true;
                }
            }
        }
    }
    false
}

/// Moves the arm instructions into `a`, rewrites `join`'s phis into
/// selects at the end of `a`, and reroutes `a` straight to `join`.
fn flatten(
    f: &mut Function,
    a: Block,
    cond: crate::ir::Value,
    then_arm: Option<Block>,
    else_arm: Option<Block>,
    join: Block,
) {
    // Hoist arm instructions (in order: then-arm, else-arm).
    let mut hoisted = Vec::new();
    for arm in [then_arm, else_arm].into_iter().flatten() {
        hoisted.append(&mut f.block_mut(arm).insts);
        // Self-loop stub: keeps the now-unreachable arm out of everyone's
        // predecessor lists.
        f.block_mut(arm).term = Terminator::Br(arm);
    }
    f.block_mut(a).insts.extend(hoisted);

    // Rewrite join phis into selects placed at the end of `a`.
    let then_pred = then_arm.unwrap_or(a);
    let else_pred = else_arm.unwrap_or(a);
    let phis: Vec<crate::ir::Value> = f
        .block(join)
        .insts
        .iter()
        .copied()
        .filter(|&v| matches!(f.as_inst(v), Some(Inst::Phi { .. })))
        .collect();
    for phi in phis {
        let Some(Inst::Phi { incomings }) = f.as_inst(phi).cloned() else { continue };
        let from = |pred: Block| incomings.iter().find(|(bb, _)| *bb == pred).map(|(_, v)| *v);
        let (Some(tv), Some(ev)) = (from(then_pred), from(else_pred)) else { continue };
        let ty = f.ty(phi);
        // Turn the phi value itself into the select (keeps its id stable
        // for all existing uses) and move it to the end of `a`.
        f.value_mut(phi).kind =
            ValueKind::Inst(Inst::Select { cond, on_true: tv, on_false: ev });
        let _ = ty;
        f.block_mut(join).insts.retain(|&x| x != phi);
        f.block_mut(a).insts.push(phi);
    }

    f.block_mut(a).term = Terminator::Br(join);
}

/// Merges one straight-line chain `X -> Y` (where `Y` has no other
/// predecessors and no phis) into `X`. Returns `true` if merged.
///
/// Chain merging exposes nested hammocks to further if-conversion: once an
/// inner diamond collapses, its join becomes a trivial pass-through block
/// sitting between the outer arm and the outer join.
fn merge_chain_once(f: &mut Function) -> bool {
    let cfg = Cfg::compute(f);
    for x in f.blocks() {
        let Terminator::Br(y) = f.block(x).term else { continue };
        if y == x || y == f.entry() || cfg.preds(y) != [x] {
            continue;
        }
        let has_phi = f
            .block(y)
            .insts
            .iter()
            .any(|&v| matches!(f.as_inst(v), Some(Inst::Phi { .. })));
        if has_phi {
            continue;
        }
        // Move Y's body and terminator into X.
        let mut moved = std::mem::take(&mut f.block_mut(y).insts);
        let term = std::mem::replace(&mut f.block_mut(y).term, Terminator::Br(y));
        f.block_mut(x).insts.append(&mut moved);
        f.block_mut(x).term = term;
        // Phis downstream that named Y as a predecessor now see X.
        rename_phi_pred(f, y, x);
        return true;
    }
    false
}

/// Rewrites phi incomings `(from, v)` to `(to, v)` everywhere.
fn rename_phi_pred(f: &mut Function, from: Block, to: Block) {
    for b in f.blocks().collect::<Vec<_>>() {
        let insts = f.block(b).insts.clone();
        for v in insts {
            if let Some(Inst::Phi { incomings }) = f.as_inst(v).cloned() {
                let renamed: Vec<(Block, crate::ir::Value)> = incomings
                    .into_iter()
                    .map(|(bb, iv)| (if bb == from { to } else { bb }, iv))
                    .collect();
                if let ValueKind::Inst(Inst::Phi { incomings }) = &mut f.value_mut(v).kind {
                    *incomings = renamed;
                }
            }
        }
    }
}

/// If-converts hammocks to a fixpoint (interleaving straight-line chain
/// merging so nested hammocks collapse inside-out); returns the number of
/// hammocks flattened.
pub fn if_convert(f: &mut Function) -> usize {
    let mut n = 0;
    loop {
        let converted = if_convert_once(f);
        if converted {
            n += 1;
        }
        let merged = merge_chain_once(f);
        if !converted && !merged {
            return n;
        }
    }
}

/// Checks whether all blocks of a rewritten function remain verifiable —
/// exposed for tests.
pub fn still_verifies(f: &Function) -> bool {
    crate::ir::verify::verify(f).is_ok()
}

/// Blocks reachable from the entry (used by tests and codegen).
pub fn reachable_blocks(f: &Function) -> HashSet<Block> {
    let cfg = Cfg::compute(f);
    f.blocks().filter(|&b| cfg.reachable(b)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::interp::{interpret, InterpMem};
    use crate::ir::{CmpOp, FunctionBuilder, Type};

    /// abs-diff: if a > b { a - b } else { b - a } — a full diamond.
    fn diamond_fn() -> Function {
        let mut b = FunctionBuilder::new("absdiff", &[("a", Type::I64), ("b", Type::I64)]);
        let x = b.param(0);
        let y = b.param(1);
        let t = b.block("t");
        let e = b.block("e");
        let j = b.block("j");
        let entry = b.current();
        let c = b.cmp(CmpOp::Sgt, x, y);
        b.cond_br(c, t, e);
        b.switch_to(t);
        let d1 = b.bin(BinOp::Sub, x, y);
        b.br(j);
        b.switch_to(e);
        let d2 = b.bin(BinOp::Sub, y, x);
        b.br(j);
        b.switch_to(j);
        let p = b.phi(Type::I64);
        b.add_incoming(p, t, d1);
        b.add_incoming(p, e, d2);
        b.ret(Some(p));
        let _ = entry;
        b.build().unwrap()
    }

    /// clamp-to-zero triangle: if x < 0 { t: y = 0 } ; ret phi(x|0)
    fn triangle_fn() -> Function {
        let mut b = FunctionBuilder::new("relu", &[("x", Type::I64)]);
        let x = b.param(0);
        let zero = b.const_i(0);
        let t = b.block("t");
        let j = b.block("j");
        let entry = b.current();
        let c = b.cmp(CmpOp::Slt, x, zero);
        b.cond_br(c, t, j);
        b.switch_to(t);
        let z = b.bin(BinOp::Mul, x, zero); // a speculatable stand-in for 0
        b.br(j);
        b.switch_to(j);
        let p = b.phi(Type::I64);
        b.add_incoming(p, t, z);
        b.add_incoming(p, entry, x);
        b.ret(Some(p));
        b.build().unwrap()
    }

    #[test]
    fn diamond_becomes_select() {
        let mut f = diamond_fn();
        let n = if_convert(&mut f);
        assert_eq!(n, 1);
        assert!(still_verifies(&f), "{f}");
        // The join merged back into the entry, which now returns directly
        // and contains the select.
        let entry = f.entry();
        assert!(matches!(f.block(entry).term, Terminator::Ret(_)));
        let has_select = f
            .block(entry)
            .insts
            .iter()
            .any(|&v| matches!(f.as_inst(v), Some(Inst::Select { .. })));
        assert!(has_select);
    }

    #[test]
    fn diamond_semantics_preserved() {
        let f0 = diamond_fn();
        let mut f1 = f0.clone();
        if_convert(&mut f1);
        for (a, b) in [(10i64, 3i64), (3, 10), (-5, 5), (7, 7)] {
            let mut m0 = InterpMem::new();
            let mut m1 = InterpMem::new();
            let r0 = interpret(&f0, &[a as u64, b as u64], &mut m0, 1000).unwrap();
            let r1 = interpret(&f1, &[a as u64, b as u64], &mut m1, 1000).unwrap();
            assert_eq!(r0.ret, r1.ret, "absdiff({a},{b})");
        }
    }

    #[test]
    fn triangle_semantics_preserved() {
        let f0 = triangle_fn();
        let mut f1 = f0.clone();
        let n = if_convert(&mut f1);
        assert_eq!(n, 1);
        assert!(still_verifies(&f1), "{f1}");
        for x in [-7i64, 0, 9] {
            let mut m0 = InterpMem::new();
            let mut m1 = InterpMem::new();
            let r0 = interpret(&f0, &[x as u64], &mut m0, 1000).unwrap();
            let r1 = interpret(&f1, &[x as u64], &mut m1, 1000).unwrap();
            assert_eq!(r0.ret, r1.ret, "relu({x})");
        }
    }

    #[test]
    fn arm_with_store_not_converted() {
        let mut b = FunctionBuilder::new("g", &[("p", Type::Ptr), ("x", Type::I64)]);
        let p = b.param(0);
        let x = b.param(1);
        let zero = b.const_i(0);
        let t = b.block("t");
        let j = b.block("j");
        let c = b.cmp(CmpOp::Slt, x, zero);
        b.cond_br(c, t, j);
        b.switch_to(t);
        b.store(x, p); // side effect: must not be speculated
        b.br(j);
        b.switch_to(j);
        b.ret(None);
        let mut f = b.build().unwrap();
        assert_eq!(if_convert(&mut f), 0);
    }

    #[test]
    fn arm_with_divide_not_converted() {
        let mut b = FunctionBuilder::new("g", &[("x", Type::I64), ("y", Type::I64)]);
        let x = b.param(0);
        let y = b.param(1);
        let zero = b.const_i(0);
        let t = b.block("t");
        let j = b.block("j");
        let entry = b.current();
        let c = b.cmp(CmpOp::Ne, y, zero);
        b.cond_br(c, t, j);
        b.switch_to(t);
        let q = b.bin(BinOp::Sdiv, x, y);
        b.br(j);
        b.switch_to(j);
        let p = b.phi(Type::I64);
        b.add_incoming(p, t, q);
        b.add_incoming(p, entry, zero);
        b.ret(Some(p));
        let mut f = b.build().unwrap();
        assert_eq!(if_convert(&mut f), 0, "guarded divide is the point of the guard");
    }

    #[test]
    fn nested_diamonds_convert_inside_out() {
        // if c1 { if c2 { a } else { b } } else { c } — two rewrites.
        let mut b = FunctionBuilder::new("n", &[("x", Type::I64)]);
        let x = b.param(0);
        let zero = b.const_i(0);
        let ten = b.const_i(10);
        let outer_t = b.block("outer_t");
        let inner_t = b.block("inner_t");
        let inner_e = b.block("inner_e");
        let inner_j = b.block("inner_j");
        let outer_e = b.block("outer_e");
        let outer_j = b.block("outer_j");
        let c1 = b.cmp(CmpOp::Sgt, x, zero);
        b.cond_br(c1, outer_t, outer_e);

        b.switch_to(outer_t);
        let c2 = b.cmp(CmpOp::Sgt, x, ten);
        b.cond_br(c2, inner_t, inner_e);
        b.switch_to(inner_t);
        let v1 = b.bin(BinOp::Add, x, ten);
        b.br(inner_j);
        b.switch_to(inner_e);
        let v2 = b.bin(BinOp::Sub, x, ten);
        b.br(inner_j);
        b.switch_to(inner_j);
        let pi = b.phi(Type::I64);
        b.add_incoming(pi, inner_t, v1);
        b.add_incoming(pi, inner_e, v2);
        b.br(outer_j);

        b.switch_to(outer_e);
        let v3 = b.bin(BinOp::Mul, x, ten);
        b.br(outer_j);

        b.switch_to(outer_j);
        let po = b.phi(Type::I64);
        b.add_incoming(po, inner_j, pi);
        b.add_incoming(po, outer_e, v3);
        b.ret(Some(po));
        let f0 = b.build().unwrap();

        let mut f1 = f0.clone();
        let n = if_convert(&mut f1);
        assert!(n >= 2, "expected both diamonds converted, got {n}");
        for x in [-3i64, 5, 20] {
            let mut m0 = InterpMem::new();
            let mut m1 = InterpMem::new();
            let r0 = interpret(&f0, &[x as u64], &mut m0, 1000).unwrap();
            let r1 = interpret(&f1, &[x as u64], &mut m1, 1000).unwrap();
            assert_eq!(r0.ret, r1.ret, "x={x}");
        }
    }
}
