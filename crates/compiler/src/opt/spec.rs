//! A declarative pass-pipeline specification.
//!
//! The paper's concluding observation is that bringing up an ISA-exposed
//! accelerator urgently needs *"declarative tools for quickly specifying
//! combinations of known compiler transforms"*. This module is that tool
//! for this compiler: a tiny textual language naming the middle-end
//! transforms, parsed into a [`PassSpec`] and applied to a function.
//!
//! ```text
//! ifconv, unroll(4), cse, constfold, dce
//! cleanup                      # the fixpoint bundle
//! unroll(2), cleanup
//! ```
//!
//! ```
//! use dyser_compiler::opt::spec::PassSpec;
//! let spec: PassSpec = "ifconv, unroll(4), cleanup".parse().unwrap();
//! assert_eq!(spec.passes().len(), 3);
//! ```

use std::fmt;
use std::str::FromStr;

use crate::ir::Function;
use crate::opt::{
    cleanup, const_fold, cse, dce, if_convert, licm, unroll_innermost, UnrollOutcome,
};

/// One named transform, possibly parameterised.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pass {
    /// If-conversion to a fixpoint.
    IfConvert,
    /// Unroll the innermost canonical loop by the given factor.
    Unroll(usize),
    /// Constant folding.
    ConstFold,
    /// Common-subexpression elimination.
    Cse,
    /// Dead-code elimination.
    Dce,
    /// Loop-invariant code motion.
    Licm,
    /// The fold + CSE + DCE fixpoint bundle.
    Cleanup,
}

impl fmt::Display for Pass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pass::IfConvert => write!(f, "ifconv"),
            Pass::Unroll(n) => write!(f, "unroll({n})"),
            Pass::ConstFold => write!(f, "constfold"),
            Pass::Cse => write!(f, "cse"),
            Pass::Dce => write!(f, "dce"),
            Pass::Licm => write!(f, "licm"),
            Pass::Cleanup => write!(f, "cleanup"),
        }
    }
}

/// A parse failure with the offending token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecParseError {
    /// The token that failed to parse.
    pub token: String,
}

impl fmt::Display for SpecParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown or malformed pass `{}`", self.token)
    }
}

impl std::error::Error for SpecParseError {}

/// What running a spec did, pass by pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecReport {
    /// `(pass, simplifications)` — the count is pass-specific (rewrites,
    /// removed instructions, or 1/0 for unrolling).
    pub steps: Vec<(Pass, usize)>,
}

/// An ordered list of transforms.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PassSpec {
    passes: Vec<Pass>,
}

impl PassSpec {
    /// Builds a spec from an explicit pass list.
    pub fn from_passes(passes: Vec<Pass>) -> Self {
        PassSpec { passes }
    }

    /// The passes, in application order.
    pub fn passes(&self) -> &[Pass] {
        &self.passes
    }

    /// Applies every pass in order; returns per-pass activity counts.
    pub fn apply(&self, f: &mut Function) -> SpecReport {
        let mut steps = Vec::new();
        for pass in &self.passes {
            let count = match pass {
                Pass::IfConvert => if_convert(f),
                Pass::Unroll(factor) => {
                    if *factor >= 2 {
                        match unroll_innermost(f, *factor) {
                            UnrollOutcome::Unrolled { .. } => 1,
                            UnrollOutcome::NoCanonicalLoop => 0,
                        }
                    } else {
                        0
                    }
                }
                Pass::ConstFold => const_fold(f),
                Pass::Cse => cse(f),
                Pass::Dce => dce(f),
                Pass::Licm => licm(f),
                Pass::Cleanup => {
                    cleanup(f);
                    1
                }
            };
            steps.push((pass.clone(), count));
        }
        SpecReport { steps }
    }
}

impl fmt::Display for PassSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.passes.iter().map(Pass::to_string).collect();
        write!(f, "{}", parts.join(", "))
    }
}

impl FromStr for PassSpec {
    type Err = SpecParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut passes = Vec::new();
        for raw in s.split(',') {
            let token = raw.split('#').next().unwrap_or("").trim();
            if token.is_empty() {
                continue;
            }
            let pass = if let Some(rest) = token.strip_prefix("unroll") {
                let inner = rest.trim().trim_start_matches('(').trim_end_matches(')').trim();
                let factor: usize = inner
                    .parse()
                    .map_err(|_| SpecParseError { token: token.to_owned() })?;
                if factor < 2 {
                    return Err(SpecParseError { token: token.to_owned() });
                }
                Pass::Unroll(factor)
            } else {
                match token {
                    "ifconv" | "if-convert" => Pass::IfConvert,
                    "constfold" | "fold" => Pass::ConstFold,
                    "cse" => Pass::Cse,
                    "dce" => Pass::Dce,
                    "licm" => Pass::Licm,
                    "cleanup" => Pass::Cleanup,
                    _ => return Err(SpecParseError { token: token.to_owned() }),
                }
            };
            passes.push(pass);
        }
        Ok(PassSpec { passes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::interp::{interpret, InterpMem};
    use crate::ir::{BinOp, CmpOp, FunctionBuilder, Type};

    fn loopy() -> Function {
        let mut b = FunctionBuilder::new("k", &[("a", Type::Ptr), ("n", Type::I64)]);
        let a = b.param(0);
        let n = b.param(1);
        let zero = b.const_i(0);
        let one = b.const_i(1);
        let two = b.const_i(2);
        let body = b.block("body");
        let exit = b.block("exit");
        let entry = b.current();
        b.br(body);
        b.switch_to(body);
        let i = b.phi(Type::I64);
        let p = b.gep(a, i, 8);
        let x = b.load(p, Type::I64);
        let y = b.bin(BinOp::Mul, x, two);
        let y2 = b.bin(BinOp::Mul, x, two); // CSE fodder
        let s = b.bin(BinOp::Add, y, y2);
        b.store(s, p);
        let i2 = b.bin(BinOp::Add, i, one);
        b.add_incoming(i, entry, zero);
        b.add_incoming(i, body, i2);
        let c = b.cmp(CmpOp::Slt, i2, n);
        b.cond_br(c, body, exit);
        b.switch_to(exit);
        b.ret(None);
        b.build().unwrap()
    }

    #[test]
    fn parses_and_displays() {
        let spec: PassSpec = "ifconv, unroll(4), cse, constfold, dce".parse().unwrap();
        assert_eq!(spec.passes().len(), 5);
        assert_eq!(spec.to_string(), "ifconv, unroll(4), cse, constfold, dce");
        let round: PassSpec = spec.to_string().parse().unwrap();
        assert_eq!(round, spec);
    }

    #[test]
    fn comments_and_whitespace_tolerated() {
        let spec: PassSpec = " cleanup ,  unroll( 2 ) # trailing comment".parse().unwrap();
        assert_eq!(spec.passes(), &[Pass::Cleanup, Pass::Unroll(2)]);
    }

    #[test]
    fn rejects_unknown_and_bad_factors() {
        assert!("frobnicate".parse::<PassSpec>().is_err());
        assert!("unroll(1)".parse::<PassSpec>().is_err());
        assert!("unroll(x)".parse::<PassSpec>().is_err());
    }

    #[test]
    fn apply_reports_activity_and_preserves_semantics() {
        let f0 = loopy();
        let mut f1 = f0.clone();
        let spec: PassSpec = "cse, constfold, dce, unroll(2), cleanup".parse().unwrap();
        let report = spec.apply(&mut f1);
        let cse_count = report.steps.iter().find(|(p, _)| *p == Pass::Cse).unwrap().1;
        assert!(cse_count >= 1, "duplicate multiply merged");
        let unrolled = report.steps.iter().find(|(p, _)| matches!(p, Pass::Unroll(_))).unwrap().1;
        assert_eq!(unrolled, 1);

        // Semantics preserved for a few sizes.
        for n in [1u64, 3, 8] {
            let mut m0 = InterpMem::new();
            m0.write_u64_slice(0x100, &(0..n).map(|i| i + 5).collect::<Vec<_>>());
            let mut m1 = m0.clone();
            interpret(&f0, &[0x100, n], &mut m0, 100_000).unwrap();
            interpret(&f1, &[0x100, n], &mut m1, 100_000).unwrap();
            assert_eq!(
                m0.read_u64_slice(0x100, n as usize),
                m1.read_u64_slice(0x100, n as usize),
                "n={n}"
            );
        }
    }

    #[test]
    fn empty_spec_is_identity() {
        let spec: PassSpec = "".parse().unwrap();
        let f0 = loopy();
        let mut f1 = f0.clone();
        let report = spec.apply(&mut f1);
        assert!(report.steps.is_empty());
        assert_eq!(f0, f1);
    }
}
