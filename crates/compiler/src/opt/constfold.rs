//! Constant folding and algebraic simplification.

use crate::ir::{BinOp, Function, Inst, Type, ValueKind};

/// Raw-bits constant of a value, if it is a constant.
fn const_bits(f: &Function, v: crate::ir::Value) -> Option<u64> {
    match f.value(v).kind {
        ValueKind::ConstI(c) => Some(c as u64),
        ValueKind::ConstF(c) => Some(c.to_bits()),
        _ => None,
    }
}

/// Folds constant expressions and applies simple identities
/// (`x + 0`, `x * 1`, `x * 0`, `select const`). Returns the number of
/// values simplified.
pub fn const_fold(f: &mut Function) -> usize {
    let mut folded = 0;
    loop {
        let mut change: Option<(crate::ir::Value, Replacement)> = None;
        'search: for b in f.blocks() {
            for &v in &f.block(b).insts {
                let Some(inst) = f.as_inst(v) else { continue };
                let ty = f.ty(v);
                match inst {
                    Inst::Bin { op, a, b: rhs } => {
                        if let (Some(ca), Some(cb)) = (const_bits(f, *a), const_bits(f, *rhs)) {
                            let bits = super::super::ir::interp_eval_bin(*op, ca, cb);
                            change = Some((v, Replacement::Const(bits, ty)));
                            break 'search;
                        }
                        // Identities on integers.
                        if !op.is_fp() {
                            let a_c = f.as_const_i(*a);
                            let b_c = f.as_const_i(*rhs);
                            let ident = match (op, a_c, b_c) {
                                (BinOp::Add, _, Some(0)) | (BinOp::Sub, _, Some(0)) => Some(*a),
                                (BinOp::Add, Some(0), _) => Some(*rhs),
                                (BinOp::Mul, _, Some(1)) => Some(*a),
                                (BinOp::Mul, Some(1), _) => Some(*rhs),
                                (BinOp::Shl | BinOp::Lshr | BinOp::Ashr, _, Some(0)) => Some(*a),
                                _ => None,
                            };
                            if let Some(repl) = ident {
                                change = Some((v, Replacement::Value(repl)));
                                break 'search;
                            }
                            if matches!(op, BinOp::Mul)
                                && (a_c == Some(0) || b_c == Some(0))
                            {
                                change = Some((v, Replacement::Const(0, Type::I64)));
                                break 'search;
                            }
                        }
                    }
                    Inst::Un { op, a } => {
                        if let Some(ca) = const_bits(f, *a) {
                            let bits = super::super::ir::interp_eval_un(*op, ca);
                            change = Some((v, Replacement::Const(bits, ty)));
                            break 'search;
                        }
                    }
                    Inst::Cmp { op, a, b: rhs } => {
                        if let (Some(ca), Some(cb)) = (const_bits(f, *a), const_bits(f, *rhs)) {
                            let bits = super::super::ir::interp_eval_cmp(*op, ca, cb);
                            change = Some((v, Replacement::Const(bits, Type::I1)));
                            break 'search;
                        }
                    }
                    Inst::Select { cond, on_true, on_false } => {
                        if let Some(c) = f.as_const_i(*cond) {
                            let repl = if c != 0 { *on_true } else { *on_false };
                            change = Some((v, Replacement::Value(repl)));
                            break 'search;
                        }
                        if on_true == on_false {
                            change = Some((v, Replacement::Value(*on_true)));
                            break 'search;
                        }
                    }
                    Inst::Phi { incomings } => {
                        // A phi whose incomings are all the same value.
                        let first = incomings.first().map(|(_, v)| *v);
                        if let Some(fv) = first {
                            if fv != v && incomings.iter().all(|(_, iv)| *iv == fv || *iv == v) {
                                change = Some((v, Replacement::Value(fv)));
                                break 'search;
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        let Some((v, repl)) = change else { break };
        folded += 1;
        match repl {
            Replacement::Const(bits, ty) => {
                let kind = match ty {
                    Type::F64 => ValueKind::ConstF(f64::from_bits(bits)),
                    _ => ValueKind::ConstI(bits as i64),
                };
                f.value_mut(v).kind = kind;
                // Constants live outside blocks.
                for b in f.blocks() {
                    f.block_mut(b).insts.retain(|&x| x != v);
                }
            }
            Replacement::Value(to) => {
                f.replace_uses(v, to);
                for b in f.blocks() {
                    f.block_mut(b).insts.retain(|&x| x != v);
                }
            }
        }
    }
    folded
}

enum Replacement {
    Const(u64, Type),
    Value(crate::ir::Value),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::interp::{interpret, InterpMem};
    use crate::ir::{CmpOp, FunctionBuilder, UnOp};

    #[test]
    fn folds_constant_arithmetic() {
        let mut b = FunctionBuilder::new("f", &[]);
        let two = b.const_i(2);
        let three = b.const_i(3);
        let five = b.bin(BinOp::Add, two, three);
        let ten = b.bin(BinOp::Mul, five, two);
        b.ret(Some(ten));
        let mut f = b.build().unwrap();
        let n = const_fold(&mut f);
        assert!(n >= 2);
        assert_eq!(f.as_const_i(ten), Some(10));
        assert!(f.block(f.entry()).insts.is_empty(), "all insts folded away");
    }

    #[test]
    fn folds_fp_and_cmp() {
        let mut b = FunctionBuilder::new("f", &[]);
        let x = b.const_f(2.0);
        let y = b.const_f(0.5);
        let p = b.bin(BinOp::Fmul, x, y);
        let c = b.cmp(CmpOp::Flt, p, x);
        let s = b.un(UnOp::Fsqrt, p);
        b.ret(Some(c));
        let mut f = b.build().unwrap();
        const_fold(&mut f);
        assert_eq!(f.as_const_f(p), Some(1.0));
        assert_eq!(f.as_const_i(c), Some(1));
        assert_eq!(f.as_const_f(s), Some(1.0));
    }

    #[test]
    fn identities() {
        let mut b = FunctionBuilder::new("f", &[("x", crate::ir::Type::I64)]);
        let x = b.param(0);
        let zero = b.const_i(0);
        let one = b.const_i(1);
        let a = b.bin(BinOp::Add, x, zero);
        let m = b.bin(BinOp::Mul, a, one);
        let z = b.bin(BinOp::Mul, m, zero);
        b.ret(Some(z));
        let mut f = b.build().unwrap();
        const_fold(&mut f);
        assert_eq!(f.as_const_i(z), Some(0));
    }

    #[test]
    fn const_select_picks_arm() {
        let mut b = FunctionBuilder::new("f", &[("x", crate::ir::Type::I64)]);
        let x = b.param(0);
        let t = b.const_bool(true);
        let seven = b.const_i(7);
        let s = b.select(t, x, seven);
        b.ret(Some(s));
        let mut f = b.build().unwrap();
        const_fold(&mut f);
        // select folded to x: the ret now returns x.
        let mut mem = InterpMem::new();
        let r = interpret(&f, &[42], &mut mem, 100).unwrap();
        assert_eq!(r.ret, Some(42));
    }

    #[test]
    fn preserves_semantics_on_mixed_function() {
        let mut b = FunctionBuilder::new("f", &[("x", crate::ir::Type::I64)]);
        let x = b.param(0);
        let two = b.const_i(2);
        let three = b.const_i(3);
        let six = b.bin(BinOp::Mul, two, three);
        let y = b.bin(BinOp::Add, x, six);
        b.ret(Some(y));
        let f0 = b.build().unwrap();
        let mut f1 = f0.clone();
        const_fold(&mut f1);
        let mut m0 = InterpMem::new();
        let mut m1 = InterpMem::new();
        let r0 = interpret(&f0, &[10], &mut m0, 100).unwrap();
        let r1 = interpret(&f1, &[10], &mut m1, 100).unwrap();
        assert_eq!(r0.ret, r1.ret);
        assert!(r1.steps <= r0.steps);
    }
}
