//! Optimisation passes: constant folding, dead-code elimination,
//! if-conversion (predication via `select`), and loop unrolling.
//!
//! If-conversion and unrolling are the two transforms the DySER compiler
//! leans on: if-conversion turns acyclic control flow inside loop bodies
//! into straight-line `select` dataflow the fabric can absorb, and
//! unrolling replicates the body to fill the fabric with data parallelism.

pub mod constfold;
pub mod cse;
pub mod dce;
pub mod ifconv;
pub mod licm;
pub mod spec;
pub mod unroll;

pub use constfold::const_fold;
pub use cse::cse;
pub use dce::dce;
pub use ifconv::if_convert;
pub use licm::licm;
pub use spec::{Pass, PassSpec};
pub use unroll::{unroll_innermost, UnrollOutcome};

use crate::ir::Function;

/// Runs the standard clean-up pipeline (fold + DCE to fixpoint).
pub fn cleanup(f: &mut Function) {
    loop {
        let folded = const_fold(f);
        let merged = cse(f);
        let removed = dce(f);
        if folded == 0 && merged == 0 && removed == 0 {
            break;
        }
    }
}
