//! Dead-code elimination.

use std::collections::HashSet;

use crate::ir::{Function, Inst, Terminator, Value};

/// Removes pure instructions whose results are never used, iterating to a
/// fixpoint. Returns the number of instructions removed.
pub fn dce(f: &mut Function) -> usize {
    let mut removed = 0;
    loop {
        let mut used: HashSet<Value> = HashSet::new();
        for b in f.blocks() {
            for &v in &f.block(b).insts {
                for o in f.operands(v) {
                    used.insert(o);
                }
            }
            match &f.block(b).term {
                Terminator::CondBr { cond, .. } => {
                    used.insert(*cond);
                }
                Terminator::Ret(Some(v)) => {
                    used.insert(*v);
                }
                _ => {}
            }
        }

        let mut dead: Vec<(crate::ir::Block, Value)> = Vec::new();
        for b in f.blocks() {
            for &v in &f.block(b).insts {
                let Some(inst) = f.as_inst(v) else { continue };
                let pure = !matches!(inst, Inst::Store { .. });
                if pure && !used.contains(&v) {
                    dead.push((b, v));
                }
            }
        }
        if dead.is_empty() {
            return removed;
        }
        removed += dead.len();
        for (b, v) in dead {
            f.block_mut(b).insts.retain(|&x| x != v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinOp, FunctionBuilder, Type};

    #[test]
    fn removes_unused_chain() {
        let mut b = FunctionBuilder::new("f", &[("x", Type::I64)]);
        let x = b.param(0);
        let one = b.const_i(1);
        let dead1 = b.bin(BinOp::Add, x, one);
        let _dead2 = b.bin(BinOp::Mul, dead1, dead1);
        let live = b.bin(BinOp::Sub, x, one);
        b.ret(Some(live));
        let mut f = b.build().unwrap();
        let n = dce(&mut f);
        assert_eq!(n, 2, "both dead instructions removed (fixpoint)");
        assert_eq!(f.block(f.entry()).insts.len(), 1);
    }

    #[test]
    fn keeps_stores() {
        let mut b = FunctionBuilder::new("f", &[("p", Type::Ptr)]);
        let p = b.param(0);
        let one = b.const_i(1);
        b.store(one, p);
        b.ret(None);
        let mut f = b.build().unwrap();
        assert_eq!(dce(&mut f), 0);
        assert_eq!(f.block(f.entry()).insts.len(), 1);
    }

    #[test]
    fn keeps_values_feeding_stores_and_terminators() {
        let mut b = FunctionBuilder::new("f", &[("p", Type::Ptr), ("x", Type::I64)]);
        let p = b.param(0);
        let x = b.param(1);
        let one = b.const_i(1);
        let y = b.bin(BinOp::Add, x, one);
        b.store(y, p);
        let c = b.cmp(crate::ir::CmpOp::Slt, x, one);
        let t = b.block("t");
        let e = b.block("e");
        b.cond_br(c, t, e);
        b.switch_to(t);
        b.ret(None);
        b.switch_to(e);
        b.ret(None);
        let mut f = b.build().unwrap();
        assert_eq!(dce(&mut f), 0);
    }

    #[test]
    fn phi_keeps_its_operands_alive() {
        let mut b = FunctionBuilder::new("f", &[("n", Type::I64)]);
        let n = b.param(0);
        let zero = b.const_i(0);
        let one = b.const_i(1);
        let body = b.block("body");
        let exit = b.block("exit");
        let entry = b.current();
        b.br(body);
        b.switch_to(body);
        let i = b.phi(Type::I64);
        let i2 = b.bin(BinOp::Add, i, one);
        b.add_incoming(i, entry, zero);
        b.add_incoming(i, body, i2);
        let c = b.cmp(crate::ir::CmpOp::Slt, i2, n);
        b.cond_br(c, body, exit);
        b.switch_to(exit);
        b.ret(Some(i2));
        let mut f = b.build().unwrap();
        assert_eq!(dce(&mut f), 0, "loop-carried values stay alive");
    }
}
