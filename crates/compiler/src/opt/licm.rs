//! Loop-invariant code motion.
//!
//! Pure, non-memory instructions whose operands are all defined outside a
//! loop are hoisted into the loop's preheader. Speculation is safe in this
//! IR: pure operations cannot trap (division is trap-free by definition).
//! Loads are not hoisted — there is no alias analysis to prove a loop
//! store cannot clobber them.

use std::collections::HashSet;

use crate::analysis::{Cfg, DomTree, LoopForest};
use crate::ir::{Block, Function, Inst, Value};

/// Whether `inst` may be hoisted when its operands are invariant.
fn hoistable(inst: &Inst) -> bool {
    matches!(
        inst,
        Inst::Bin { .. } | Inst::Un { .. } | Inst::Cmp { .. } | Inst::Select { .. } | Inst::Gep { .. }
    )
}

/// Hoists loop-invariant instructions to preheaders; returns how many
/// instructions moved. Loops without a preheader (multiple or branching
/// outside predecessors) are left alone.
pub fn licm(f: &mut Function) -> usize {
    let mut moved_total = 0;
    loop {
        let cfg = Cfg::compute(f);
        let dom = DomTree::compute(f, &cfg);
        let forest = LoopForest::compute(f, &cfg, &dom);

        // One hoist per iteration keeps the analyses trivially fresh; the
        // functions involved are small.
        let mut next: Option<(Block, Block, Value)> = None; // (body block, preheader, value)
        'search: for l in forest.loops() {
            let Some(preheader) = l.preheader else { continue };
            // Values defined inside the loop.
            let inside: HashSet<Value> = l
                .blocks
                .iter()
                .flat_map(|&b| f.block(b).insts.iter().copied())
                .collect();
            for &b in &l.blocks {
                for &v in &f.block(b).insts {
                    let Some(inst) = f.as_inst(v) else { continue };
                    if !hoistable(inst) {
                        continue;
                    }
                    if f.operands(v).iter().all(|o| !inside.contains(o)) {
                        next = Some((b, preheader, v));
                        break 'search;
                    }
                }
            }
        }

        let Some((body, preheader, v)) = next else { return moved_total };
        f.block_mut(body).insts.retain(|&x| x != v);
        f.block_mut(preheader).insts.push(v);
        moved_total += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::interp::{interpret, InterpMem};
    use crate::ir::{BinOp, CmpOp, FunctionBuilder, Type};

    /// A loop that recomputes `n * 8` and `base + off` every iteration.
    fn sloppy_loop() -> Function {
        let mut b = FunctionBuilder::new("s", &[("a", Type::Ptr), ("n", Type::I64)]);
        let a = b.param(0);
        let n = b.param(1);
        let zero = b.const_i(0);
        let one = b.const_i(1);
        let eight = b.const_i(8);
        let body = b.block("body");
        let exit = b.block("exit");
        let entry = b.current();
        b.br(body);
        b.switch_to(body);
        let i = b.phi(Type::I64);
        let scale = b.bin(BinOp::Mul, n, eight); // invariant
        let biased = b.bin(BinOp::Add, scale, one); // invariant chain
        let p = b.gep(a, i, 8);
        let x = b.load(p, Type::I64);
        let y = b.bin(BinOp::Add, x, biased);
        b.store(y, p);
        let i2 = b.bin(BinOp::Add, i, one);
        b.add_incoming(i, entry, zero);
        b.add_incoming(i, body, i2);
        let c = b.cmp(CmpOp::Slt, i2, n);
        b.cond_br(c, body, exit);
        b.switch_to(exit);
        b.ret(None);
        b.build().unwrap()
    }

    #[test]
    fn hoists_invariant_chain() {
        let mut f = sloppy_loop();
        let before = f.block(crate::ir::Block(1)).insts.len();
        let moved = licm(&mut f);
        assert_eq!(moved, 2, "scale and biased both hoist");
        let after = f.block(crate::ir::Block(1)).insts.len();
        assert_eq!(after, before - 2);
        crate::ir::verify::verify(&f).unwrap_or_else(|e| panic!("{e}\n{f}"));
    }

    #[test]
    fn semantics_preserved() {
        let f0 = sloppy_loop();
        let mut f1 = f0.clone();
        licm(&mut f1);
        for n in [1u64, 5, 9] {
            let vals: Vec<u64> = (0..n).map(|k| 100 + k).collect();
            let mut m0 = InterpMem::new();
            m0.write_u64_slice(0x100, &vals);
            let mut m1 = m0.clone();
            interpret(&f0, &[0x100, n], &mut m0, 100_000).unwrap();
            interpret(&f1, &[0x100, n], &mut m1, 100_000).unwrap();
            assert_eq!(
                m0.read_u64_slice(0x100, n as usize),
                m1.read_u64_slice(0x100, n as usize),
                "n={n}"
            );
        }
    }

    #[test]
    fn loads_and_variant_ops_stay_put() {
        let mut f = sloppy_loop();
        licm(&mut f);
        // The load, gep (uses the phi), add (uses the load), iv update, and
        // cmp all remain in the body.
        let body = crate::ir::Block(1);
        let remaining = f.block(body).insts.len();
        assert!(remaining >= 6, "variant work stays in the loop, got {remaining}");
        assert_eq!(licm(&mut f), 0, "fixpoint reached");
    }

    #[test]
    fn loop_without_preheader_untouched() {
        // A loop whose outside predecessor branches (no dedicated
        // preheader) is left alone.
        let mut b = FunctionBuilder::new("p", &[("n", Type::I64)]);
        let n = b.param(0);
        let zero = b.const_i(0);
        let one = b.const_i(1);
        let eight = b.const_i(8);
        let body = b.block("body");
        let exit = b.block("exit");
        let c0 = b.cmp(CmpOp::Sgt, n, zero);
        b.cond_br(c0, body, exit); // entry has two successors
        b.switch_to(body);
        let i = b.phi(Type::I64);
        let inv = b.bin(BinOp::Mul, n, eight);
        let i2 = b.bin(BinOp::Add, i, one);
        b.add_incoming(i, b.current(), i2);
        let entry = crate::ir::Block(0);
        b.add_incoming(i, entry, zero);
        let c = b.cmp(CmpOp::Slt, i2, inv);
        b.cond_br(c, body, exit);
        b.switch_to(exit);
        b.ret(None);
        let mut f = b.build().unwrap();
        assert_eq!(licm(&mut f), 0, "no preheader, no motion");
    }
}
