//! Local common-subexpression elimination.
//!
//! Within each block, identical pure expressions (`bin`, `un`, `cmp`,
//! `select`, `gep`) are merged, and repeated loads from the same address
//! are merged until a store intervenes (stores conservatively kill all
//! remembered loads — there is no alias analysis). Address arithmetic is
//! the main beneficiary: kernels compute `i*8` once per array instead of
//! once per access, which matters for both binaries but especially for
//! the accelerated one, where addressing is most of the remaining core
//! work.

use std::collections::HashMap;

use crate::ir::{Function, Inst, Value};

/// A hashable key describing a pure expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Key {
    Bin(crate::ir::BinOp, Value, Value),
    Un(crate::ir::UnOp, Value),
    Cmp(crate::ir::CmpOp, Value, Value),
    Select(Value, Value, Value),
    Gep(Value, Value, u64),
    Load(Value),
}

fn key_of(inst: &Inst) -> Option<Key> {
    Some(match inst {
        Inst::Bin { op, a, b } => Key::Bin(*op, *a, *b),
        Inst::Un { op, a } => Key::Un(*op, *a),
        Inst::Cmp { op, a, b } => Key::Cmp(*op, *a, *b),
        Inst::Select { cond, on_true, on_false } => Key::Select(*cond, *on_true, *on_false),
        Inst::Gep { base, index, scale } => Key::Gep(*base, *index, *scale),
        Inst::Load { ptr } => Key::Load(*ptr),
        _ => return None,
    })
}

/// Runs local CSE over every block; returns the number of instructions
/// removed. Iterates to a fixpoint (merging one expression can make two
/// others identical).
pub fn cse(f: &mut Function) -> usize {
    let mut removed = 0;
    loop {
        let mut change: Option<(crate::ir::Block, Value, Value)> = None; // (block, dup, keep)
        'outer: for b in f.blocks() {
            let mut seen: HashMap<Key, Value> = HashMap::new();
            for &v in &f.block(b).insts {
                let Some(inst) = f.as_inst(v) else { continue };
                if matches!(inst, Inst::Store { .. }) {
                    // A store may alias any remembered load.
                    seen.retain(|k, _| !matches!(k, Key::Load(_)));
                    continue;
                }
                if matches!(inst, Inst::Phi { .. }) {
                    continue;
                }
                let Some(key) = key_of(inst) else { continue };
                // Loads of different types must not merge.
                if let Some(&keep) = seen.get(&key) {
                    if f.ty(keep) == f.ty(v) {
                        change = Some((b, v, keep));
                        break 'outer;
                    }
                } else {
                    seen.insert(key, v);
                }
            }
        }
        let Some((b, dup, keep)) = change else { return removed };
        f.replace_uses(dup, keep);
        f.block_mut(b).insts.retain(|&x| x != dup);
        removed += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::interp::{interpret, InterpMem};
    use crate::ir::{BinOp, FunctionBuilder, Type};

    #[test]
    fn merges_identical_geps() {
        let mut b = FunctionBuilder::new("g", &[("a", Type::Ptr), ("i", Type::I64)]);
        let a = b.param(0);
        let i = b.param(1);
        let p1 = b.gep(a, i, 8);
        let p2 = b.gep(a, i, 8);
        let x = b.load(p1, Type::I64);
        let y = b.load(p2, Type::I64);
        let s = b.bin(BinOp::Add, x, y);
        b.ret(Some(s));
        let mut f = b.build().unwrap();
        let n = cse(&mut f);
        assert!(n >= 2, "gep and load both merge, got {n}");
    }

    #[test]
    fn store_kills_loads() {
        let mut b = FunctionBuilder::new("s", &[("p", Type::Ptr)]);
        let p = b.param(0);
        let x1 = b.load(p, Type::I64);
        let one = b.const_i(1);
        let x2 = b.bin(BinOp::Add, x1, one);
        b.store(x2, p);
        let x3 = b.load(p, Type::I64); // must NOT merge with x1
        b.ret(Some(x3));
        let f0 = b.build().unwrap();
        let mut f1 = f0.clone();
        cse(&mut f1);
        let mut m0 = InterpMem::new();
        m0.write_u64(0x100, 41);
        let mut m1 = m0.clone();
        let r0 = interpret(&f0, &[0x100], &mut m0, 100).unwrap();
        let r1 = interpret(&f1, &[0x100], &mut m1, 100).unwrap();
        assert_eq!(r0.ret, Some(42));
        assert_eq!(r1.ret, Some(42), "reload after store preserved");
    }

    #[test]
    fn different_blocks_do_not_merge() {
        let mut b = FunctionBuilder::new("d", &[("x", Type::I64)]);
        let x = b.param(0);
        let one = b.const_i(1);
        let t = b.block("t");
        let _y1 = b.bin(BinOp::Add, x, one);
        b.br(t);
        b.switch_to(t);
        let y2 = b.bin(BinOp::Add, x, one);
        b.ret(Some(y2));
        let mut f = b.build().unwrap();
        assert_eq!(cse(&mut f), 0, "local CSE only");
    }

    #[test]
    fn semantics_preserved_on_expression_dag() {
        let mut b = FunctionBuilder::new("e", &[("x", Type::I64), ("y", Type::I64)]);
        let x = b.param(0);
        let y = b.param(1);
        let a1 = b.bin(BinOp::Add, x, y);
        let a2 = b.bin(BinOp::Add, x, y);
        let m = b.bin(BinOp::Mul, a1, a2);
        b.ret(Some(m));
        let f0 = b.build().unwrap();
        let mut f1 = f0.clone();
        assert_eq!(cse(&mut f1), 1);
        let mut m0 = InterpMem::new();
        let mut m1 = InterpMem::new();
        let r0 = interpret(&f0, &[3, 4], &mut m0, 100).unwrap();
        let r1 = interpret(&f1, &[3, 4], &mut m1, 100).unwrap();
        assert_eq!(r0.ret, r1.ret);
        assert_eq!(r1.ret, Some(49));
    }
}
