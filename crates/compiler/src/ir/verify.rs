//! The IR verifier: structural and SSA well-formedness.

use std::collections::HashMap;
use std::fmt;

use crate::analysis::{Cfg, DomTree};
use crate::ir::{Block, Function, Inst, Terminator, Type, Value, ValueKind};

/// A verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// A block has no terminator.
    MissingTerminator {
        /// The block's label.
        block: String,
    },
    /// An instruction's operand types do not match.
    TypeMismatch {
        /// A description of the offending value.
        value: String,
        /// What was expected.
        expected: String,
    },
    /// A phi's incoming blocks differ from the block's CFG predecessors.
    PhiPredecessorMismatch {
        /// The block's label.
        block: String,
    },
    /// A phi appears after a non-phi instruction.
    PhiNotAtTop {
        /// The block's label.
        block: String,
    },
    /// A value is used where its definition does not dominate the use.
    UseNotDominated {
        /// A description of the used value.
        value: String,
        /// The block containing the use.
        block: String,
    },
    /// A `Unit`-typed value (a store) is used as an operand.
    UnitUsed {
        /// The block's label.
        block: String,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::MissingTerminator { block } => {
                write!(f, "block `{block}` has no terminator")
            }
            VerifyError::TypeMismatch { value, expected } => {
                write!(f, "type mismatch at {value}: expected {expected}")
            }
            VerifyError::PhiPredecessorMismatch { block } => {
                write!(f, "phi in `{block}` does not cover exactly the block's predecessors")
            }
            VerifyError::PhiNotAtTop { block } => {
                write!(f, "phi after a non-phi instruction in `{block}`")
            }
            VerifyError::UseNotDominated { value, block } => {
                write!(f, "use of {value} in `{block}` is not dominated by its definition")
            }
            VerifyError::UnitUsed { block } => {
                write!(f, "a unit (store) value is used as an operand in `{block}`")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

fn int_like(ty: Type) -> bool {
    matches!(ty, Type::I64 | Type::Ptr | Type::I1)
}

/// Verifies `f`.
///
/// # Errors
///
/// Returns the first violation found: unterminated blocks, operand type
/// mismatches, malformed phis, or SSA dominance violations.
pub fn verify(f: &Function) -> Result<(), VerifyError> {
    let cfg = Cfg::compute(f);
    let dom = DomTree::compute(f, &cfg);

    // Where is each instruction value defined?
    let mut def_site: HashMap<Value, (Block, usize)> = HashMap::new();
    for b in f.blocks() {
        for (pos, &v) in f.block(b).insts.iter().enumerate() {
            def_site.insert(v, (b, pos));
        }
    }

    for b in f.blocks() {
        let bd = f.block(b);
        if matches!(bd.term, Terminator::None) && cfg.reachable(b) {
            return Err(VerifyError::MissingTerminator { block: bd.name.clone() });
        }

        let mut seen_non_phi = false;
        for (pos, &v) in bd.insts.iter().enumerate() {
            let vd = f.value(v);
            let ValueKind::Inst(inst) = &vd.kind else { continue };

            if matches!(inst, Inst::Phi { .. }) {
                if seen_non_phi {
                    return Err(VerifyError::PhiNotAtTop { block: bd.name.clone() });
                }
            } else {
                seen_non_phi = true;
            }

            // Type checks.
            let mismatch = |expected: &str| VerifyError::TypeMismatch {
                value: f.value_name(v),
                expected: expected.to_owned(),
            };
            match inst {
                Inst::Bin { op, a, b: rhs } => {
                    let want = op.ty();
                    let a_ok = if want == Type::F64 {
                        f.ty(*a) == Type::F64 && f.ty(*rhs) == Type::F64
                    } else {
                        int_like(f.ty(*a)) && int_like(f.ty(*rhs))
                    };
                    if !a_ok {
                        return Err(mismatch(&format!("{} operands", op.mnemonic())));
                    }
                }
                Inst::Un { op, a } => {
                    let ok = match op {
                        crate::ir::UnOp::Itof => int_like(f.ty(*a)),
                        crate::ir::UnOp::Not => f.ty(*a) == Type::I1,
                        _ => f.ty(*a) == Type::F64,
                    };
                    if !ok {
                        return Err(mismatch(&format!("{} operand", op.mnemonic())));
                    }
                }
                Inst::Cmp { op, a, b: rhs } => {
                    let ok = if op.is_fp() {
                        f.ty(*a) == Type::F64 && f.ty(*rhs) == Type::F64
                    } else {
                        int_like(f.ty(*a)) && int_like(f.ty(*rhs))
                    };
                    if !ok {
                        return Err(mismatch("comparable operands"));
                    }
                }
                Inst::Select { cond, on_true, on_false } => {
                    if f.ty(*cond) != Type::I1 {
                        return Err(mismatch("i1 condition"));
                    }
                    if f.ty(*on_true) != f.ty(*on_false) || f.ty(*on_true) != vd.ty {
                        return Err(mismatch("matching select arms"));
                    }
                }
                Inst::Load { ptr } => {
                    if f.ty(*ptr) != Type::Ptr {
                        return Err(mismatch("ptr address"));
                    }
                    if vd.ty == Type::Unit {
                        return Err(mismatch("non-unit load result"));
                    }
                }
                Inst::Store { ptr, value } => {
                    if f.ty(*ptr) != Type::Ptr {
                        return Err(mismatch("ptr address"));
                    }
                    if f.ty(*value) == Type::Unit {
                        return Err(mismatch("non-unit stored value"));
                    }
                }
                Inst::Gep { base, index, .. } => {
                    if f.ty(*base) != Type::Ptr || f.ty(*index) != Type::I64 {
                        return Err(mismatch("gep (ptr, i64)"));
                    }
                }
                Inst::Phi { incomings } => {
                    let mut inc_blocks: Vec<Block> =
                        incomings.iter().map(|(bb, _)| *bb).collect();
                    inc_blocks.sort();
                    inc_blocks.dedup();
                    let mut preds: Vec<Block> = cfg.preds(b).to_vec();
                    preds.sort();
                    preds.dedup();
                    if cfg.reachable(b) && inc_blocks != preds {
                        return Err(VerifyError::PhiPredecessorMismatch {
                            block: bd.name.clone(),
                        });
                    }
                    for (_, iv) in incomings {
                        if f.ty(*iv) != vd.ty {
                            return Err(mismatch("phi incoming type"));
                        }
                    }
                }
            }

            // Dominance of operand definitions.
            if !cfg.reachable(b) {
                continue;
            }
            let operands = f.operands(v);
            for (oi, &o) in operands.iter().enumerate() {
                if f.ty(o) == Type::Unit {
                    return Err(VerifyError::UnitUsed { block: bd.name.clone() });
                }
                let use_site: Option<Block> = match inst {
                    // A phi's i-th operand is used at the end of the i-th
                    // incoming block.
                    Inst::Phi { incomings } => Some(incomings[oi].0),
                    _ => None,
                };
                match f.value(o).kind {
                    ValueKind::Param { .. } | ValueKind::ConstI(_) | ValueKind::ConstF(_) => {}
                    ValueKind::Inst(_) => {
                        let Some(&(db, dpos)) = def_site.get(&o) else {
                            return Err(VerifyError::UseNotDominated {
                                value: f.value_name(o),
                                block: bd.name.clone(),
                            });
                        };
                        let ok = match use_site {
                            Some(pred) => dom.dominates(db, pred),
                            None => {
                                if db == b {
                                    dpos < pos
                                } else {
                                    dom.dominates(db, b)
                                }
                            }
                        };
                        if !ok {
                            return Err(VerifyError::UseNotDominated {
                                value: f.value_name(o),
                                block: bd.name.clone(),
                            });
                        }
                    }
                }
            }
        }

        // Terminator condition type.
        if let Terminator::CondBr { cond, .. } = &bd.term {
            if f.ty(*cond) != Type::I1 {
                return Err(VerifyError::TypeMismatch {
                    value: f.value_name(*cond),
                    expected: "i1 branch condition".to_owned(),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinOp, CmpOp, FunctionBuilder};

    #[test]
    fn wellformed_passes() {
        let mut b = FunctionBuilder::new("ok", &[("x", Type::I64)]);
        let x = b.param(0);
        let one = b.const_i(1);
        let y = b.bin(BinOp::Add, x, one);
        b.ret(Some(y));
        assert!(b.build().is_ok());
    }

    #[test]
    fn missing_terminator_rejected() {
        let b = FunctionBuilder::new("bad", &[]);
        let err = b.build().unwrap_err();
        assert!(matches!(err, VerifyError::MissingTerminator { .. }));
    }

    #[test]
    fn fp_int_mix_rejected() {
        let mut b = FunctionBuilder::new("bad", &[("x", Type::I64)]);
        let x = b.param(0);
        let c = b.const_f(1.0);
        let _bad = b.bin(BinOp::Fadd, x, c);
        b.ret(None);
        assert!(matches!(b.build().unwrap_err(), VerifyError::TypeMismatch { .. }));
    }

    #[test]
    fn condbr_needs_i1() {
        let mut b = FunctionBuilder::new("bad", &[("x", Type::I64)]);
        let x = b.param(0);
        let t = b.block("t");
        b.cond_br(x, t, t);
        b.switch_to(t);
        b.ret(None);
        assert!(matches!(b.build().unwrap_err(), VerifyError::TypeMismatch { .. }));
    }

    #[test]
    fn phi_must_cover_preds() {
        let mut b = FunctionBuilder::new("bad", &[("x", Type::I64)]);
        let x = b.param(0);
        let zero = b.const_i(0);
        let t = b.block("t");
        let u = b.block("u");
        let j = b.block("j");
        let c = b.cmp(CmpOp::Slt, x, zero);
        b.cond_br(c, t, u);
        b.switch_to(t);
        b.br(j);
        b.switch_to(u);
        b.br(j);
        b.switch_to(j);
        let p = b.phi(Type::I64);
        b.add_incoming(p, t, x); // missing the edge from u
        b.ret(Some(p));
        assert!(matches!(
            b.build().unwrap_err(),
            VerifyError::PhiPredecessorMismatch { .. }
        ));
    }

    #[test]
    fn phi_after_inst_rejected() {
        let mut b = FunctionBuilder::new("bad", &[("x", Type::I64)]);
        let x = b.param(0);
        let body = b.block("body");
        let entry = b.current();
        b.br(body);
        b.switch_to(body);
        let one = b.const_i(1);
        let _y = b.bin(BinOp::Add, x, one);
        let p = b.phi(Type::I64);
        b.add_incoming(p, entry, x);
        b.ret(None);
        assert!(matches!(b.build().unwrap_err(), VerifyError::PhiNotAtTop { .. }));
    }

    #[test]
    fn use_before_def_in_block_rejected() {
        // Build manually: y = add x, z; z = add x, 1 — z used before def.
        let mut b = FunctionBuilder::new("bad", &[("x", Type::I64)]);
        let x = b.param(0);
        let one = b.const_i(1);
        let z = b.bin(BinOp::Add, x, one);
        let y = b.bin(BinOp::Add, x, z);
        b.ret(Some(y));
        let mut f = b.build_unverified();
        // Swap the two instructions so z is used before its definition.
        let entry = f.entry();
        f.block_mut(entry).insts.swap(0, 1);
        assert!(matches!(verify(&f).unwrap_err(), VerifyError::UseNotDominated { .. }));
    }

    #[test]
    fn sibling_branch_value_not_dominating_rejected() {
        let mut b = FunctionBuilder::new("bad", &[("x", Type::I64)]);
        let x = b.param(0);
        let zero = b.const_i(0);
        let t = b.block("t");
        let u = b.block("u");
        let c = b.cmp(CmpOp::Slt, x, zero);
        b.cond_br(c, t, u);
        b.switch_to(t);
        let one = b.const_i(1);
        let y = b.bin(BinOp::Add, x, one);
        b.ret(Some(y));
        b.switch_to(u);
        let z = b.bin(BinOp::Add, y, one); // uses y from sibling branch
        b.ret(Some(z));
        assert!(matches!(b.build().unwrap_err(), VerifyError::UseNotDominated { .. }));
    }

    #[test]
    fn store_result_cannot_be_used() {
        let mut b = FunctionBuilder::new("bad", &[("p", Type::Ptr)]);
        let p = b.param(0);
        let one = b.const_i(1);
        b.store(one, p);
        let f0 = b.build_unverified();
        // Find the store's value id and misuse it.
        let entry = f0.entry();
        let store_v = f0.block(entry).insts[0];
        let mut b2 = FunctionBuilder::new("bad2", &[("p", Type::Ptr)]);
        let p2 = b2.param(0);
        let one2 = b2.const_i(1);
        b2.store(one2, p2);
        let _use_unit = b2.bin(BinOp::Add, store_v, one2);
        b2.ret(None);
        let err = b2.build().unwrap_err();
        assert!(
            matches!(err, VerifyError::UnitUsed { .. } | VerifyError::TypeMismatch { .. }),
            "got {err}"
        );
    }
}
