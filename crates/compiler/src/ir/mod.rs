//! The compiler's SSA intermediate representation.
//!
//! A deliberately small, LLVM-flavoured IR: typed SSA values, basic blocks
//! with explicit terminators, `phi` nodes, `select`, and a `gep`
//! address-arithmetic instruction that keeps address computation visible
//! to the access/execute slicer. Kernels are built with
//! [`FunctionBuilder`]; the textual form produced by `Display` can be
//! parsed back with [`parse_module`](crate::ir::parser::parse_module).

pub mod interp;
pub(crate) use interp::{eval_bin as interp_eval_bin, eval_cmp as interp_eval_cmp, eval_un as interp_eval_un};
pub mod parser;
pub mod verify;

use std::fmt;

/// Value types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Type {
    /// 64-bit integer.
    I64,
    /// 64-bit double.
    F64,
    /// Pointer (64-bit address).
    Ptr,
    /// Boolean (0 or 1 in a 64-bit word).
    I1,
    /// No value (result type of `store`).
    Unit,
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Type::I64 => "i64",
            Type::F64 => "f64",
            Type::Ptr => "ptr",
            Type::I1 => "i1",
            Type::Unit => "unit",
        };
        f.write_str(s)
    }
}

/// A reference to an SSA value within one function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Value(pub(crate) u32);

impl Value {
    /// The value's index in the function's value table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A reference to a basic block within one function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Block(pub(crate) u32);

impl Block {
    /// The block's index in the function's block table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Binary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Integer add.
    Add,
    /// Integer subtract.
    Sub,
    /// Integer multiply.
    Mul,
    /// Signed integer divide (`x / 0 = 0`, matching the machine model).
    Sdiv,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left.
    Shl,
    /// Logical shift right.
    Lshr,
    /// Arithmetic shift right.
    Ashr,
    /// Signed maximum.
    Smax,
    /// Signed minimum.
    Smin,
    /// Double add.
    Fadd,
    /// Double subtract.
    Fsub,
    /// Double multiply.
    Fmul,
    /// Double divide.
    Fdiv,
    /// Double maximum.
    Fmax,
    /// Double minimum.
    Fmin,
}

impl BinOp {
    /// Whether the operation works on doubles.
    pub fn is_fp(self) -> bool {
        matches!(
            self,
            BinOp::Fadd | BinOp::Fsub | BinOp::Fmul | BinOp::Fdiv | BinOp::Fmax | BinOp::Fmin
        )
    }

    /// Result (and operand) type.
    pub fn ty(self) -> Type {
        if self.is_fp() {
            Type::F64
        } else {
            Type::I64
        }
    }

    /// The textual mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Sdiv => "sdiv",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Lshr => "lshr",
            BinOp::Ashr => "ashr",
            BinOp::Smax => "smax",
            BinOp::Smin => "smin",
            BinOp::Fadd => "fadd",
            BinOp::Fsub => "fsub",
            BinOp::Fmul => "fmul",
            BinOp::Fdiv => "fdiv",
            BinOp::Fmax => "fmax",
            BinOp::Fmin => "fmin",
        }
    }
}

/// Unary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Double negation.
    Fneg,
    /// Double absolute value.
    Fabs,
    /// Double square root.
    Fsqrt,
    /// Signed integer to double.
    Itof,
    /// Double to signed integer (truncating).
    Ftoi,
    /// Boolean not (operand and result are `i1`).
    Not,
}

impl UnOp {
    /// Result type.
    pub fn ty(self) -> Type {
        match self {
            UnOp::Fneg | UnOp::Fabs | UnOp::Fsqrt | UnOp::Itof => Type::F64,
            UnOp::Ftoi => Type::I64,
            UnOp::Not => Type::I1,
        }
    }

    /// The textual mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnOp::Fneg => "fneg",
            UnOp::Fabs => "fabs",
            UnOp::Fsqrt => "fsqrt",
            UnOp::Itof => "itof",
            UnOp::Ftoi => "ftoi",
            UnOp::Not => "not",
        }
    }
}

/// Comparison operations (result type `i1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Integer equal.
    Eq,
    /// Integer not equal.
    Ne,
    /// Signed less-than.
    Slt,
    /// Signed less-or-equal.
    Sle,
    /// Signed greater-than.
    Sgt,
    /// Signed greater-or-equal.
    Sge,
    /// Unsigned less-than.
    Ult,
    /// Double equal.
    Feq,
    /// Double less-than.
    Flt,
    /// Double less-or-equal.
    Fle,
}

impl CmpOp {
    /// Whether the comparison is on doubles.
    pub fn is_fp(self) -> bool {
        matches!(self, CmpOp::Feq | CmpOp::Flt | CmpOp::Fle)
    }

    /// The textual mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Slt => "slt",
            CmpOp::Sle => "sle",
            CmpOp::Sgt => "sgt",
            CmpOp::Sge => "sge",
            CmpOp::Ult => "ult",
            CmpOp::Feq => "feq",
            CmpOp::Flt => "flt",
            CmpOp::Fle => "fle",
        }
    }
}

/// An instruction (the `Inst` variant of a value's defining kind).
#[derive(Debug, Clone, PartialEq)]
pub enum Inst {
    /// `a op b`.
    Bin {
        /// The operation.
        op: BinOp,
        /// Left operand.
        a: Value,
        /// Right operand.
        b: Value,
    },
    /// `op a`.
    Un {
        /// The operation.
        op: UnOp,
        /// Operand.
        a: Value,
    },
    /// `a op b -> i1`.
    Cmp {
        /// The comparison.
        op: CmpOp,
        /// Left operand.
        a: Value,
        /// Right operand.
        b: Value,
    },
    /// `cond ? on_true : on_false`.
    Select {
        /// The `i1` condition.
        cond: Value,
        /// Value when true.
        on_true: Value,
        /// Value when false.
        on_false: Value,
    },
    /// 64-bit load from `ptr` (the value's type selects int/double view).
    Load {
        /// The address.
        ptr: Value,
    },
    /// 64-bit store of `value` to `ptr`.
    Store {
        /// The address.
        ptr: Value,
        /// The stored value.
        value: Value,
    },
    /// `base + index * scale` (pointer arithmetic, kept explicit for the
    /// access/execute slicer).
    Gep {
        /// Base pointer.
        base: Value,
        /// Element index.
        index: Value,
        /// Element size in bytes.
        scale: u64,
    },
    /// SSA phi.
    Phi {
        /// `(predecessor, value)` incomings.
        incomings: Vec<(Block, Value)>,
    },
}

/// How a value comes into existence.
#[derive(Debug, Clone, PartialEq)]
pub enum ValueKind {
    /// The `index`-th function parameter.
    Param {
        /// Parameter position.
        index: usize,
    },
    /// An integer (or pointer/bool) constant.
    ConstI(i64),
    /// A double constant.
    ConstF(f64),
    /// An instruction result.
    Inst(Inst),
}

/// A value's definition: kind, type, and optional name.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueData {
    /// How the value is produced.
    pub kind: ValueKind,
    /// Its type.
    pub ty: Type,
    /// Optional name used in the textual form.
    pub name: Option<String>,
}

/// A basic-block terminator.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// Unconditional branch.
    Br(Block),
    /// Two-way conditional branch on an `i1`.
    CondBr {
        /// The condition.
        cond: Value,
        /// Target when true.
        then_bb: Block,
        /// Target when false.
        else_bb: Block,
    },
    /// Function return.
    Ret(Option<Value>),
    /// Block still under construction (rejected by the verifier).
    None,
}

/// A basic block: ordered instructions plus a terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockData {
    /// Block label.
    pub name: String,
    /// Instruction values in execution order.
    pub insts: Vec<Value>,
    /// The terminator.
    pub term: Terminator,
}

/// A function: parameters, a value table, and basic blocks.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    name: String,
    params: Vec<(String, Type)>,
    values: Vec<ValueData>,
    blocks: Vec<BlockData>,
}

impl Function {
    /// The function's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The parameter list.
    pub fn params(&self) -> &[(String, Type)] {
        &self.params
    }

    /// The value handle of parameter `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn param(&self, index: usize) -> Value {
        assert!(index < self.params.len(), "parameter {index} out of range");
        Value(index as u32)
    }

    /// The entry block.
    pub fn entry(&self) -> Block {
        Block(0)
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Iterates over all block handles in index order.
    pub fn blocks(&self) -> impl Iterator<Item = Block> {
        (0..self.blocks.len() as u32).map(Block)
    }

    /// The data of block `b`.
    pub fn block(&self, b: Block) -> &BlockData {
        &self.blocks[b.index()]
    }

    /// Mutable access to the data of block `b`.
    pub fn block_mut(&mut self, b: Block) -> &mut BlockData {
        &mut self.blocks[b.index()]
    }

    /// Number of values (params + constants + instructions).
    pub fn value_count(&self) -> usize {
        self.values.len()
    }

    /// The definition of value `v`.
    pub fn value(&self, v: Value) -> &ValueData {
        &self.values[v.index()]
    }

    /// Mutable access to the definition of value `v`.
    pub fn value_mut(&mut self, v: Value) -> &mut ValueData {
        &mut self.values[v.index()]
    }

    /// The type of value `v`.
    pub fn ty(&self, v: Value) -> Type {
        self.values[v.index()].ty
    }

    /// The constant integer behind `v`, if it is one.
    pub fn as_const_i(&self, v: Value) -> Option<i64> {
        match self.values[v.index()].kind {
            ValueKind::ConstI(c) => Some(c),
            _ => None,
        }
    }

    /// The constant double behind `v`, if it is one.
    pub fn as_const_f(&self, v: Value) -> Option<f64> {
        match self.values[v.index()].kind {
            ValueKind::ConstF(c) => Some(c),
            _ => None,
        }
    }

    /// Whether `v` is any constant.
    pub fn is_const(&self, v: Value) -> bool {
        matches!(self.values[v.index()].kind, ValueKind::ConstI(_) | ValueKind::ConstF(_))
    }

    /// The instruction behind `v`, if it is an instruction result.
    pub fn as_inst(&self, v: Value) -> Option<&Inst> {
        match &self.values[v.index()].kind {
            ValueKind::Inst(i) => Some(i),
            _ => None,
        }
    }

    /// The operand values of `v` (empty for params/constants).
    pub fn operands(&self, v: Value) -> Vec<Value> {
        match &self.values[v.index()].kind {
            ValueKind::Inst(inst) => match inst {
                Inst::Bin { a, b, .. } | Inst::Cmp { a, b, .. } => vec![*a, *b],
                Inst::Un { a, .. } => vec![*a],
                Inst::Select { cond, on_true, on_false } => vec![*cond, *on_true, *on_false],
                Inst::Load { ptr } => vec![*ptr],
                Inst::Store { ptr, value } => vec![*ptr, *value],
                Inst::Gep { base, index, .. } => vec![*base, *index],
                Inst::Phi { incomings } => incomings.iter().map(|(_, v)| *v).collect(),
            },
            _ => Vec::new(),
        }
    }

    /// A printable name for `v` (its given name or `%N`).
    pub fn value_name(&self, v: Value) -> String {
        match &self.values[v.index()] {
            ValueData { name: Some(n), .. } => format!("%{n}"),
            ValueData { kind: ValueKind::ConstI(c), .. } => format!("{c}"),
            ValueData { kind: ValueKind::ConstF(c), .. } => format_f64(*c),
            _ => format!("%v{}", v.index()),
        }
    }

    /// Raw access to the value table (for in-place rewriting passes).
    pub(crate) fn values_mut(&mut self) -> &mut Vec<ValueData> {
        &mut self.values
    }

    /// Raw access to the block table (for in-place rewriting passes).
    pub(crate) fn blocks_mut(&mut self) -> &mut Vec<BlockData> {
        &mut self.blocks
    }

    /// Replaces every use of `from` with `to` across instructions and
    /// terminators (used by the optimisation passes).
    pub fn replace_uses(&mut self, from: Value, to: Value) {
        for vd in &mut self.values {
            if let ValueKind::Inst(inst) = &mut vd.kind {
                let subst = |v: &mut Value| {
                    if *v == from {
                        *v = to;
                    }
                };
                match inst {
                    Inst::Bin { a, b, .. } | Inst::Cmp { a, b, .. } => {
                        subst(a);
                        subst(b);
                    }
                    Inst::Un { a, .. } => subst(a),
                    Inst::Select { cond, on_true, on_false } => {
                        subst(cond);
                        subst(on_true);
                        subst(on_false);
                    }
                    Inst::Load { ptr } => subst(ptr),
                    Inst::Store { ptr, value } => {
                        subst(ptr);
                        subst(value);
                    }
                    Inst::Gep { base, index, .. } => {
                        subst(base);
                        subst(index);
                    }
                    Inst::Phi { incomings } => {
                        for (_, v) in incomings {
                            subst(v);
                        }
                    }
                }
            }
        }
        for bd in &mut self.blocks {
            match &mut bd.term {
                Terminator::CondBr { cond, .. } if *cond == from => *cond = to,
                Terminator::Ret(Some(v)) if *v == from => bd.term = Terminator::Ret(Some(to)),
                _ => {}
            }
        }
    }
}

fn format_f64(c: f64) -> String {
    if c == c.trunc() && c.is_finite() && c.abs() < 1e15 {
        format!("{c:.1}")
    } else {
        format!("{c}")
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "func @{}(", self.name)?;
        for (i, (n, t)) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "%{n}: {t}")?;
        }
        writeln!(f, ") {{")?;
        for b in self.blocks() {
            let bd = self.block(b);
            writeln!(f, "{}:", bd.name)?;
            for &v in &bd.insts {
                let vd = self.value(v);
                let ValueKind::Inst(inst) = &vd.kind else { continue };
                write!(f, "  ")?;
                if vd.ty != Type::Unit {
                    write!(f, "{} = ", self.value_name(v))?;
                }
                match inst {
                    Inst::Bin { op, a, b } => write!(
                        f,
                        "{} {}, {}",
                        op.mnemonic(),
                        self.value_name(*a),
                        self.value_name(*b)
                    )?,
                    Inst::Un { op, a } => {
                        write!(f, "{} {}", op.mnemonic(), self.value_name(*a))?
                    }
                    Inst::Cmp { op, a, b } => write!(
                        f,
                        "cmp {} {}, {}",
                        op.mnemonic(),
                        self.value_name(*a),
                        self.value_name(*b)
                    )?,
                    Inst::Select { cond, on_true, on_false } => write!(
                        f,
                        "select {}, {}, {}",
                        self.value_name(*cond),
                        self.value_name(*on_true),
                        self.value_name(*on_false)
                    )?,
                    Inst::Load { ptr } => {
                        write!(f, "load {}, {}", self.value_name(*ptr), vd.ty)?
                    }
                    Inst::Store { ptr, value } => write!(
                        f,
                        "store {}, {}",
                        self.value_name(*value),
                        self.value_name(*ptr)
                    )?,
                    Inst::Gep { base, index, scale } => write!(
                        f,
                        "gep {}, {}, {}",
                        self.value_name(*base),
                        self.value_name(*index),
                        scale
                    )?,
                    Inst::Phi { incomings } => {
                        write!(f, "phi {}", vd.ty)?;
                        for (bb, v) in incomings {
                            write!(f, " [{}, {}]", self.value_name(*v), self.block(*bb).name)?;
                        }
                    }
                }
                writeln!(f)?;
            }
            match &bd.term {
                Terminator::Br(t) => writeln!(f, "  br {}", self.block(*t).name)?,
                Terminator::CondBr { cond, then_bb, else_bb } => writeln!(
                    f,
                    "  condbr {}, {}, {}",
                    self.value_name(*cond),
                    self.block(*then_bb).name,
                    self.block(*else_bb).name
                )?,
                Terminator::Ret(None) => writeln!(f, "  ret")?,
                Terminator::Ret(Some(v)) => writeln!(f, "  ret {}", self.value_name(*v))?,
                Terminator::None => writeln!(f, "  <no terminator>")?,
            }
        }
        writeln!(f, "}}")
    }
}

/// A compilation unit: a list of functions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Module {
    /// The functions, in definition order.
    pub functions: Vec<Function>,
}

impl Module {
    /// Creates an empty module.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finds a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, func) in self.functions.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{func}")?;
        }
        Ok(())
    }
}

/// Incrementally builds a [`Function`] in SSA form.
///
/// ```
/// use dyser_compiler::ir::{FunctionBuilder, Type, BinOp};
///
/// // fn add1(x: i64) -> i64 { x + 1 }
/// let mut b = FunctionBuilder::new("add1", &[("x", Type::I64)]);
/// let x = b.param(0);
/// let one = b.const_i(1);
/// let sum = b.bin(BinOp::Add, x, one);
/// b.ret(Some(sum));
/// let f = b.build().unwrap();
/// assert_eq!(f.name(), "add1");
/// ```
#[derive(Debug, Clone)]
pub struct FunctionBuilder {
    func: Function,
    current: Block,
}

impl FunctionBuilder {
    /// Starts a function with the given name and parameters; an `entry`
    /// block is created and selected.
    pub fn new(name: &str, params: &[(&str, Type)]) -> Self {
        let values = params
            .iter()
            .enumerate()
            .map(|(i, (n, t))| ValueData {
                kind: ValueKind::Param { index: i },
                ty: *t,
                name: Some((*n).to_owned()),
            })
            .collect();
        let func = Function {
            name: name.to_owned(),
            params: params.iter().map(|(n, t)| ((*n).to_owned(), *t)).collect(),
            values,
            blocks: vec![BlockData {
                name: "entry".to_owned(),
                insts: Vec::new(),
                term: Terminator::None,
            }],
        };
        FunctionBuilder { func, current: Block(0) }
    }

    /// The value handle of parameter `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn param(&self, index: usize) -> Value {
        self.func.param(index)
    }

    /// Creates a new (empty, unterminated) block.
    pub fn block(&mut self, name: &str) -> Block {
        self.func.blocks.push(BlockData {
            name: name.to_owned(),
            insts: Vec::new(),
            term: Terminator::None,
        });
        Block((self.func.blocks.len() - 1) as u32)
    }

    /// Selects the block subsequent instructions append to.
    pub fn switch_to(&mut self, b: Block) {
        self.current = b;
    }

    /// The currently selected block.
    pub fn current(&self) -> Block {
        self.current
    }

    fn add_value(&mut self, kind: ValueKind, ty: Type) -> Value {
        self.func.values.push(ValueData { kind, ty, name: None });
        Value((self.func.values.len() - 1) as u32)
    }

    fn add_inst(&mut self, inst: Inst, ty: Type) -> Value {
        let v = self.add_value(ValueKind::Inst(inst), ty);
        self.func.blocks[self.current.index()].insts.push(v);
        v
    }

    /// Names a value for readable printouts.
    pub fn name(&mut self, v: Value, name: &str) {
        self.func.values[v.index()].name = Some(name.to_owned());
    }

    /// An integer constant.
    pub fn const_i(&mut self, c: i64) -> Value {
        self.add_value(ValueKind::ConstI(c), Type::I64)
    }

    /// A boolean constant.
    pub fn const_bool(&mut self, c: bool) -> Value {
        self.add_value(ValueKind::ConstI(i64::from(c)), Type::I1)
    }

    /// A double constant.
    pub fn const_f(&mut self, c: f64) -> Value {
        self.add_value(ValueKind::ConstF(c), Type::F64)
    }

    /// A binary operation.
    pub fn bin(&mut self, op: BinOp, a: Value, b: Value) -> Value {
        self.add_inst(Inst::Bin { op, a, b }, op.ty())
    }

    /// A unary operation.
    pub fn un(&mut self, op: UnOp, a: Value) -> Value {
        self.add_inst(Inst::Un { op, a }, op.ty())
    }

    /// A comparison.
    pub fn cmp(&mut self, op: CmpOp, a: Value, b: Value) -> Value {
        self.add_inst(Inst::Cmp { op, a, b }, Type::I1)
    }

    /// A select.
    pub fn select(&mut self, cond: Value, on_true: Value, on_false: Value) -> Value {
        let ty = self.func.ty(on_true);
        self.add_inst(Inst::Select { cond, on_true, on_false }, ty)
    }

    /// A 64-bit load producing `ty` (`i64`, `f64`, or `ptr`).
    pub fn load(&mut self, ptr: Value, ty: Type) -> Value {
        self.add_inst(Inst::Load { ptr }, ty)
    }

    /// A 64-bit store.
    pub fn store(&mut self, value: Value, ptr: Value) {
        self.add_inst(Inst::Store { ptr, value }, Type::Unit);
    }

    /// Pointer arithmetic: `base + index * scale`.
    pub fn gep(&mut self, base: Value, index: Value, scale: u64) -> Value {
        self.add_inst(Inst::Gep { base, index, scale }, Type::Ptr)
    }

    /// An empty phi of type `ty`; fill it with
    /// [`FunctionBuilder::add_incoming`].
    pub fn phi(&mut self, ty: Type) -> Value {
        self.add_inst(Inst::Phi { incomings: Vec::new() }, ty)
    }

    /// Adds an incoming edge to a phi.
    ///
    /// # Panics
    ///
    /// Panics if `phi` is not a phi instruction.
    pub fn add_incoming(&mut self, phi: Value, pred: Block, value: Value) {
        match &mut self.func.values[phi.index()].kind {
            ValueKind::Inst(Inst::Phi { incomings }) => incomings.push((pred, value)),
            _ => panic!("add_incoming on a non-phi value"),
        }
    }

    /// Terminates the current block with an unconditional branch.
    pub fn br(&mut self, target: Block) {
        self.func.blocks[self.current.index()].term = Terminator::Br(target);
    }

    /// Terminates the current block with a conditional branch.
    pub fn cond_br(&mut self, cond: Value, then_bb: Block, else_bb: Block) {
        self.func.blocks[self.current.index()].term =
            Terminator::CondBr { cond, then_bb, else_bb };
    }

    /// Terminates the current block with a return.
    pub fn ret(&mut self, value: Option<Value>) {
        self.func.blocks[self.current.index()].term = Terminator::Ret(value);
    }

    /// Finishes and verifies the function.
    ///
    /// # Errors
    ///
    /// Returns the first verification failure (see [`verify::verify`]).
    pub fn build(self) -> Result<Function, verify::VerifyError> {
        verify::verify(&self.func)?;
        Ok(self.func)
    }

    /// Finishes without verification (used by passes that construct
    /// temporarily ill-formed functions).
    pub fn build_unverified(self) -> Function {
        self.func
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// vecadd: for i in 0..n { c[i] = a[i] + b[i] } — the canonical kernel.
    pub(crate) fn build_vecadd() -> Function {
        let mut b = FunctionBuilder::new(
            "vecadd",
            &[("a", Type::Ptr), ("b", Type::Ptr), ("c", Type::Ptr), ("n", Type::I64)],
        );
        let (a, bb, c, n) = (b.param(0), b.param(1), b.param(2), b.param(3));
        let zero = b.const_i(0);
        let one = b.const_i(1);
        let loop_bb = b.block("loop");
        let exit_bb = b.block("exit");
        let entry = b.current();
        b.br(loop_bb);

        b.switch_to(loop_bb);
        let i = b.phi(Type::I64);
        b.name(i, "i");
        let pa = b.gep(a, i, 8);
        let pb = b.gep(bb, i, 8);
        let va = b.load(pa, Type::F64);
        let vb = b.load(pb, Type::F64);
        let sum = b.bin(BinOp::Fadd, va, vb);
        let pc = b.gep(c, i, 8);
        b.store(sum, pc);
        let i2 = b.bin(BinOp::Add, i, one);
        let cond = b.cmp(CmpOp::Slt, i2, n);
        b.add_incoming(i, entry, zero);
        b.add_incoming(i, loop_bb, i2);
        b.cond_br(cond, loop_bb, exit_bb);

        b.switch_to(exit_bb);
        b.ret(None);
        b.build().expect("vecadd is well-formed")
    }

    #[test]
    fn builder_produces_wellformed_function() {
        let f = build_vecadd();
        assert_eq!(f.name(), "vecadd");
        assert_eq!(f.params().len(), 4);
        assert_eq!(f.block_count(), 3);
        assert!(f.value_count() > 10);
    }

    #[test]
    fn display_contains_structure() {
        let f = build_vecadd();
        let text = f.to_string();
        assert!(text.contains("func @vecadd"));
        assert!(text.contains("loop:"));
        assert!(text.contains("phi i64"));
        assert!(text.contains("fadd"));
        assert!(text.contains("condbr"));
        assert!(text.contains("gep"));
    }

    #[test]
    fn operands_reported() {
        let f = build_vecadd();
        let loop_bb = Block(1);
        let insts = &f.block(loop_bb).insts;
        // The fadd has two operands; the store has two; the phi has two.
        let fadd = insts
            .iter()
            .find(|&&v| matches!(f.as_inst(v), Some(Inst::Bin { op: BinOp::Fadd, .. })))
            .unwrap();
        assert_eq!(f.operands(*fadd).len(), 2);
    }

    #[test]
    fn replace_uses_rewrites_operands() {
        let mut b = FunctionBuilder::new("t", &[("x", Type::I64)]);
        let x = b.param(0);
        let one = b.const_i(1);
        let y = b.bin(BinOp::Add, x, one);
        let z = b.bin(BinOp::Mul, y, y);
        b.ret(Some(z));
        let mut f = b.build().unwrap();
        f.replace_uses(y, x);
        let ops = f.operands(z);
        assert_eq!(ops, vec![x, x]);
    }

    #[test]
    fn const_accessors() {
        let mut b = FunctionBuilder::new("t", &[]);
        let ci = b.const_i(-5);
        let cf = b.const_f(2.5);
        b.ret(None);
        let f = b.build_unverified();
        assert_eq!(f.as_const_i(ci), Some(-5));
        assert_eq!(f.as_const_f(cf), Some(2.5));
        assert!(f.is_const(ci));
        assert_eq!(f.as_const_i(cf), None);
    }

    #[test]
    fn module_lookup() {
        let mut m = Module::new();
        m.functions.push(build_vecadd());
        assert!(m.function("vecadd").is_some());
        assert!(m.function("nope").is_none());
        assert!(m.to_string().contains("@vecadd"));
    }
}
