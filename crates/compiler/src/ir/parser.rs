//! A parser for the textual IR form produced by `Display`.
//!
//! `parse_module(&module.to_string())` round-trips: the parsed module is
//! structurally identical up to value numbering. Constants are typed by
//! context (the operation that consumes them), which covers everything the
//! printer emits.

use std::collections::HashMap;
use std::fmt;

use crate::ir::{
    verify, BinOp, Block, BlockData, CmpOp, Function, Inst, Module, Terminator, Type, UnOp,
    Value, ValueData, ValueKind,
};

/// A parse failure, with a 1-based line number.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Line the failure was detected on.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError { line, message: message.into() })
}

fn parse_type(s: &str, line: usize) -> Result<Type, ParseError> {
    match s {
        "i64" => Ok(Type::I64),
        "f64" => Ok(Type::F64),
        "ptr" => Ok(Type::Ptr),
        "i1" => Ok(Type::I1),
        _ => err(line, format!("unknown type `{s}`")),
    }
}

fn bin_op(s: &str) -> Option<BinOp> {
    Some(match s {
        "add" => BinOp::Add,
        "sub" => BinOp::Sub,
        "mul" => BinOp::Mul,
        "sdiv" => BinOp::Sdiv,
        "and" => BinOp::And,
        "or" => BinOp::Or,
        "xor" => BinOp::Xor,
        "shl" => BinOp::Shl,
        "lshr" => BinOp::Lshr,
        "ashr" => BinOp::Ashr,
        "smax" => BinOp::Smax,
        "smin" => BinOp::Smin,
        "fadd" => BinOp::Fadd,
        "fsub" => BinOp::Fsub,
        "fmul" => BinOp::Fmul,
        "fdiv" => BinOp::Fdiv,
        "fmax" => BinOp::Fmax,
        "fmin" => BinOp::Fmin,
        _ => return None,
    })
}

fn un_op(s: &str) -> Option<UnOp> {
    Some(match s {
        "fneg" => UnOp::Fneg,
        "fabs" => UnOp::Fabs,
        "fsqrt" => UnOp::Fsqrt,
        "itof" => UnOp::Itof,
        "ftoi" => UnOp::Ftoi,
        "not" => UnOp::Not,
        _ => return None,
    })
}

fn cmp_op(s: &str, line: usize) -> Result<CmpOp, ParseError> {
    Ok(match s {
        "eq" => CmpOp::Eq,
        "ne" => CmpOp::Ne,
        "slt" => CmpOp::Slt,
        "sle" => CmpOp::Sle,
        "sgt" => CmpOp::Sgt,
        "sge" => CmpOp::Sge,
        "ult" => CmpOp::Ult,
        "feq" => CmpOp::Feq,
        "flt" => CmpOp::Flt,
        "fle" => CmpOp::Fle,
        _ => return err(line, format!("unknown comparison `{s}`"))?,
    })
}

/// An operand before value resolution.
#[derive(Debug, Clone)]
enum Operand {
    Name(String),
    IntLit(i64),
    FloatLit(f64),
}

fn parse_operand(tok: &str, line: usize) -> Result<Operand, ParseError> {
    if let Some(name) = tok.strip_prefix('%') {
        return Ok(Operand::Name(name.to_owned()));
    }
    if tok.contains('.') || tok.contains("inf") || tok.contains("nan") || tok.contains('e') {
        match tok.parse::<f64>() {
            Ok(v) => return Ok(Operand::FloatLit(v)),
            Err(_) => return err(line, format!("bad float literal `{tok}`")),
        }
    }
    match tok.parse::<i64>() {
        Ok(v) => Ok(Operand::IntLit(v)),
        Err(_) => err(line, format!("bad operand `{tok}`")),
    }
}

/// Splits a line into tokens, treating `,`, `[`, `]`, `(`, `)`, `:` and
/// `=` as separators (with `:` and `=` kept as their own tokens).
fn tokenize(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for ch in line.chars() {
        match ch {
            ',' | '[' | ']' | '(' | ')' | ' ' | '\t' => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            ':' | '=' => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
                out.push(ch.to_string());
            }
            _ => cur.push(ch),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

#[derive(Debug)]
struct PendingInst {
    line: usize,
    block: usize,
    dest: Option<String>,
    tokens: Vec<String>,
}

#[derive(Debug)]
struct PendingTerm {
    line: usize,
    tokens: Vec<String>,
}

/// Parses a whole module (one or more functions).
///
/// # Errors
///
/// Returns the first syntax error, or the verifier error of an
/// ill-formed parsed function.
pub fn parse_module(text: &str) -> Result<Module, ParseError> {
    let mut module = Module::new();
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.split("//").next().unwrap_or("").trim()))
        .filter(|(_, l)| !l.is_empty())
        .peekable();

    while let Some(&(line_no, line)) = lines.peek() {
        if !line.starts_with("func") {
            return err(line_no, format!("expected `func`, found `{line}`"));
        }
        let mut body = Vec::new();
        let header = (line_no, line.to_owned());
        lines.next();
        let mut depth_closed = false;
        for (ln, l) in lines.by_ref() {
            if l == "}" {
                depth_closed = true;
                break;
            }
            body.push((ln, l.to_owned()));
        }
        if !depth_closed {
            return err(header.0, "unterminated function body");
        }
        module.functions.push(parse_function(header, body)?);
    }
    Ok(module)
}

fn parse_function(
    header: (usize, String),
    body: Vec<(usize, String)>,
) -> Result<Function, ParseError> {
    let (hline, htext) = header;
    let toks = tokenize(&htext);
    // func @name %a : ptr %b : i64 ... {
    if toks.first().map(String::as_str) != Some("func") {
        return err(hline, "expected `func`");
    }
    let name = toks
        .get(1)
        .and_then(|t| t.strip_prefix('@'))
        .ok_or_else(|| ParseError { line: hline, message: "expected `@name`".into() })?
        .to_owned();
    let mut params: Vec<(String, Type)> = Vec::new();
    let mut i = 2;
    while i < toks.len() && toks[i] != "{" {
        let pname = toks[i]
            .strip_prefix('%')
            .ok_or_else(|| ParseError { line: hline, message: "expected `%param`".into() })?;
        if toks.get(i + 1).map(String::as_str) != Some(":") {
            return err(hline, "expected `:` after parameter name");
        }
        let ty = parse_type(
            toks.get(i + 2)
                .ok_or_else(|| ParseError { line: hline, message: "missing type".into() })?,
            hline,
        )?;
        params.push((pname.to_owned(), ty));
        i += 3;
    }

    // First pass: blocks and instruction skeletons.
    let mut blocks: Vec<BlockData> = Vec::new();
    let mut block_ids: HashMap<String, usize> = HashMap::new();
    let mut insts: Vec<PendingInst> = Vec::new();
    let mut terms: Vec<Option<PendingTerm>> = Vec::new();

    for (ln, l) in &body {
        if let Some(label) = l.strip_suffix(':') {
            if !label.contains(' ') {
                block_ids.insert(label.to_owned(), blocks.len());
                blocks.push(BlockData {
                    name: label.to_owned(),
                    insts: Vec::new(),
                    term: Terminator::None,
                });
                terms.push(None);
                continue;
            }
        }
        if blocks.is_empty() {
            return err(*ln, "instruction before the first block label");
        }
        let toks = tokenize(l);
        let cur = blocks.len() - 1;
        if matches!(toks.first().map(String::as_str), Some("br" | "condbr" | "ret")) {
            terms[cur] = Some(PendingTerm { line: *ln, tokens: toks });
        } else if toks.get(1).map(String::as_str) == Some("=") {
            let dest = toks[0]
                .strip_prefix('%')
                .ok_or_else(|| ParseError { line: *ln, message: "expected `%dest =`".into() })?
                .to_owned();
            insts.push(PendingInst {
                line: *ln,
                block: cur,
                dest: Some(dest),
                tokens: toks[2..].to_vec(),
            });
        } else {
            insts.push(PendingInst { line: *ln, block: cur, dest: None, tokens: toks });
        }
    }
    if blocks.is_empty() {
        return err(hline, "function has no blocks");
    }

    // Value table: params first, then one slot per named instruction.
    let mut values: Vec<ValueData> = params
        .iter()
        .enumerate()
        .map(|(idx, (n, t))| ValueData {
            kind: ValueKind::Param { index: idx },
            ty: *t,
            name: Some(n.clone()),
        })
        .collect();
    let mut names: HashMap<String, Value> = params
        .iter()
        .enumerate()
        .map(|(idx, (n, _))| (n.clone(), Value(idx as u32)))
        .collect();

    // Reserve a slot per defining instruction so forward references work.
    let mut inst_value: Vec<Option<Value>> = Vec::with_capacity(insts.len());
    for p in &insts {
        if let Some(dest) = &p.dest {
            let v = Value(values.len() as u32);
            values.push(ValueData {
                kind: ValueKind::ConstI(0), // placeholder, replaced below
                ty: Type::I64,
                name: Some(dest.clone()),
            });
            if names.insert(dest.clone(), v).is_some() {
                return err(p.line, format!("value `%{dest}` defined twice"));
            }
            inst_value.push(Some(v));
        } else {
            inst_value.push(None);
        }
    }

    let mut func = Function { name, params, values, blocks };

    // Second pass: build instructions.
    for (pi, p) in insts.iter().enumerate() {
        let line = p.line;
        let t = &p.tokens;
        let opname = t
            .first()
            .ok_or_else(|| ParseError { line, message: "empty instruction".into() })?
            .as_str();

        let resolve = |func: &mut Function, tok: &str, ty_hint: Type| -> Result<Value, ParseError> {
            match parse_operand(tok, line)? {
                Operand::Name(n) => names
                    .get(&n)
                    .copied()
                    .ok_or_else(|| ParseError { line, message: format!("unknown value `%{n}`") }),
                Operand::IntLit(c) => {
                    func.values.push(ValueData {
                        kind: ValueKind::ConstI(c),
                        ty: if ty_hint == Type::F64 { Type::I64 } else { ty_hint },
                        name: None,
                    });
                    Ok(Value((func.values.len() - 1) as u32))
                }
                Operand::FloatLit(c) => {
                    func.values.push(ValueData {
                        kind: ValueKind::ConstF(c),
                        ty: Type::F64,
                        name: None,
                    });
                    Ok(Value((func.values.len() - 1) as u32))
                }
            }
        };

        let (inst, ty) = if let Some(op) = bin_op(opname) {
            let want = op.ty();
            let a = resolve(&mut func, t.get(1).map(String::as_str).unwrap_or(""), want)?;
            let b = resolve(&mut func, t.get(2).map(String::as_str).unwrap_or(""), want)?;
            (Inst::Bin { op, a, b }, op.ty())
        } else if let Some(op) = un_op(opname) {
            let hint = if op == UnOp::Itof { Type::I64 } else { Type::F64 };
            let a = resolve(&mut func, t.get(1).map(String::as_str).unwrap_or(""), hint)?;
            (Inst::Un { op, a }, op.ty())
        } else {
            match opname {
                "cmp" => {
                    let op = cmp_op(t.get(1).map(String::as_str).unwrap_or(""), line)?;
                    let hint = if op.is_fp() { Type::F64 } else { Type::I64 };
                    let a = resolve(&mut func, t.get(2).map(String::as_str).unwrap_or(""), hint)?;
                    let b = resolve(&mut func, t.get(3).map(String::as_str).unwrap_or(""), hint)?;
                    (Inst::Cmp { op, a, b }, Type::I1)
                }
                "select" => {
                    let c = resolve(&mut func, t.get(1).map(String::as_str).unwrap_or(""), Type::I1)?;
                    let a = resolve(&mut func, t.get(2).map(String::as_str).unwrap_or(""), Type::I64)?;
                    let b = resolve(&mut func, t.get(3).map(String::as_str).unwrap_or(""), Type::I64)?;
                    let ty = func.ty(a);
                    (Inst::Select { cond: c, on_true: a, on_false: b }, ty)
                }
                "load" => {
                    let ptr = resolve(&mut func, t.get(1).map(String::as_str).unwrap_or(""), Type::Ptr)?;
                    let ty = parse_type(t.get(2).map(String::as_str).unwrap_or(""), line)?;
                    (Inst::Load { ptr }, ty)
                }
                "store" => {
                    let value =
                        resolve(&mut func, t.get(1).map(String::as_str).unwrap_or(""), Type::I64)?;
                    let ptr = resolve(&mut func, t.get(2).map(String::as_str).unwrap_or(""), Type::Ptr)?;
                    (Inst::Store { ptr, value }, Type::Unit)
                }
                "gep" => {
                    let base =
                        resolve(&mut func, t.get(1).map(String::as_str).unwrap_or(""), Type::Ptr)?;
                    let index =
                        resolve(&mut func, t.get(2).map(String::as_str).unwrap_or(""), Type::I64)?;
                    let scale: u64 = t
                        .get(3)
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| ParseError { line, message: "bad gep scale".into() })?;
                    (Inst::Gep { base, index, scale }, Type::Ptr)
                }
                "phi" => {
                    let ty = parse_type(t.get(1).map(String::as_str).unwrap_or(""), line)?;
                    let mut incomings = Vec::new();
                    let mut k = 2;
                    while k + 1 < t.len() {
                        let v = resolve(&mut func, &t[k], ty)?;
                        let bb = *block_ids.get(&t[k + 1]).ok_or_else(|| ParseError {
                            line,
                            message: format!("unknown block `{}`", t[k + 1]),
                        })?;
                        incomings.push((Block(bb as u32), v));
                        k += 2;
                    }
                    (Inst::Phi { incomings }, ty)
                }
                other => return err(line, format!("unknown instruction `{other}`")),
            }
        };

        let v = match inst_value[pi] {
            Some(v) => {
                func.values[v.index()] = ValueData {
                    kind: ValueKind::Inst(inst),
                    ty,
                    name: func.values[v.index()].name.clone(),
                };
                v
            }
            None => {
                func.values.push(ValueData { kind: ValueKind::Inst(inst), ty, name: None });
                Value((func.values.len() - 1) as u32)
            }
        };
        func.blocks[p.block].insts.push(v);
    }

    // Terminators.
    for (bi, term) in terms.into_iter().enumerate() {
        let Some(pt) = term else { continue };
        let t = &pt.tokens;
        let line = pt.line;
        let lookup_block = |name: &str| -> Result<Block, ParseError> {
            block_ids
                .get(name)
                .map(|&i| Block(i as u32))
                .ok_or_else(|| ParseError { line, message: format!("unknown block `{name}`") })
        };
        func.blocks[bi].term = match t[0].as_str() {
            "br" => Terminator::Br(lookup_block(t.get(1).map(String::as_str).unwrap_or(""))?),
            "condbr" => {
                let cond_name = t
                    .get(1)
                    .and_then(|s| s.strip_prefix('%'))
                    .ok_or_else(|| ParseError { line, message: "condbr needs %cond".into() })?;
                let cond = *names.get(cond_name).ok_or_else(|| ParseError {
                    line,
                    message: format!("unknown value `%{cond_name}`"),
                })?;
                Terminator::CondBr {
                    cond,
                    then_bb: lookup_block(t.get(2).map(String::as_str).unwrap_or(""))?,
                    else_bb: lookup_block(t.get(3).map(String::as_str).unwrap_or(""))?,
                }
            }
            "ret" => match t.get(1) {
                None => Terminator::Ret(None),
                Some(tok) => {
                    let name = tok.strip_prefix('%').ok_or_else(|| ParseError {
                        line,
                        message: "ret operand must be a named value".into(),
                    })?;
                    let v = *names.get(name).ok_or_else(|| ParseError {
                        line,
                        message: format!("unknown value `%{name}`"),
                    })?;
                    Terminator::Ret(Some(v))
                }
            },
            other => return err(line, format!("unknown terminator `{other}`")),
        };
    }

    verify::verify(&func).map_err(|e| ParseError { line: hline, message: e.to_string() })?;
    Ok(func)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::interp::{interpret, InterpMem};

    const VECADD: &str = r"
func @vecadd(%a: ptr, %b: ptr, %c: ptr, %n: i64) {
entry:
  br loop
loop:
  %i = phi i64 [0, entry] [%i2, loop]
  %pa = gep %a, %i, 8
  %pb = gep %b, %i, 8
  %va = load %pa, f64
  %vb = load %pb, f64
  %sum = fadd %va, %vb
  %pc = gep %c, %i, 8
  store %sum, %pc
  %i2 = add %i, 1
  %cond = cmp slt %i2, %n
  condbr %cond, loop, exit
exit:
  ret
}
";

    #[test]
    fn parses_vecadd() {
        let m = parse_module(VECADD).expect("vecadd parses");
        let f = m.function("vecadd").unwrap();
        assert_eq!(f.block_count(), 3);
        assert_eq!(f.params().len(), 4);
    }

    #[test]
    fn parsed_function_interprets_correctly() {
        let m = parse_module(VECADD).unwrap();
        let f = m.function("vecadd").unwrap();
        let mut mem = InterpMem::new();
        mem.write_f64_slice(0x1000, &[1.0, 2.0]);
        mem.write_f64_slice(0x2000, &[5.0, 7.0]);
        interpret(f, &[0x1000, 0x2000, 0x3000, 2], &mut mem, 10_000).unwrap();
        assert_eq!(mem.read_f64_slice(0x3000, 2), vec![6.0, 9.0]);
    }

    #[test]
    fn print_parse_roundtrip_preserves_semantics() {
        let m1 = parse_module(VECADD).unwrap();
        let text = m1.to_string();
        let m2 = parse_module(&text).unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        let f = m2.function("vecadd").unwrap();
        let mut mem = InterpMem::new();
        mem.write_f64_slice(0x1000, &[4.0]);
        mem.write_f64_slice(0x2000, &[-1.0]);
        interpret(f, &[0x1000, 0x2000, 0x3000, 1], &mut mem, 1_000).unwrap();
        assert_eq!(mem.read_f64_slice(0x3000, 1), vec![3.0]);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let src = "\n// a comment\nfunc @f(%x: i64) {\nentry: // entry\n  ret %x\n}\n";
        let m = parse_module(src).unwrap();
        assert_eq!(m.functions.len(), 1);
    }

    #[test]
    fn unknown_instruction_reports_line() {
        let src = "func @f(%x: i64) {\nentry:\n  %y = frobnicate %x\n  ret\n}\n";
        let e = parse_module(src).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("frobnicate"));
    }

    #[test]
    fn unknown_value_reports_error() {
        let src = "func @f(%x: i64) {\nentry:\n  %y = add %zzz, 1\n  ret\n}\n";
        let e = parse_module(src).unwrap_err();
        assert!(e.message.contains("zzz"));
    }

    #[test]
    fn double_definition_rejected() {
        let src = "func @f(%x: i64) {\nentry:\n  %y = add %x, 1\n  %y = add %x, 2\n  ret\n}\n";
        let e = parse_module(src).unwrap_err();
        assert!(e.message.contains("defined twice"));
    }

    #[test]
    fn verifier_runs_on_parsed_functions() {
        // Block `loop` references a phi with wrong predecessor coverage.
        let src = "func @f(%x: i64) {\nentry:\n  ret %zz\n}\n";
        assert!(parse_module(src).is_err());
    }

    #[test]
    fn multiple_functions() {
        let src = "func @f(%x: i64) {\nentry:\n  ret %x\n}\nfunc @g() {\nentry:\n  ret\n}\n";
        let m = parse_module(src).unwrap();
        assert_eq!(m.functions.len(), 2);
        assert!(m.function("g").is_some());
    }

    #[test]
    fn select_and_float_literals() {
        let src = "func @f(%x: f64) {\nentry:\n  %c = cmp flt %x, 2.5\n  %y = select %c, %x, 2.5\n  ret\n}\n";
        let m = parse_module(src).unwrap();
        let f = m.function("f").unwrap();
        let mut mem = InterpMem::new();
        let r = interpret(f, &[1.0f64.to_bits()], &mut mem, 100).unwrap();
        assert_eq!(r.ret, None);
    }
}
