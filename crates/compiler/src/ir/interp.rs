//! A reference interpreter for the IR.
//!
//! Used as the semantic oracle: the code generator's output (run on the
//! cycle-level machine) must produce exactly the memory contents the
//! interpreter produces. Memory is a sparse big-endian byte store
//! mirroring the machine's memory model.

use std::collections::HashMap;

use crate::ir::{BinOp, Block, CmpOp, Function, Inst, Terminator, Type, UnOp, Value, ValueKind};

/// A sparse big-endian memory for interpretation.
#[derive(Debug, Clone, Default)]
pub struct InterpMem {
    bytes: HashMap<u64, u8>,
}

impl InterpMem {
    /// Creates an empty (all-zero) memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads a big-endian 64-bit word.
    pub fn read_u64(&self, addr: u64) -> u64 {
        let mut v = 0u64;
        for i in 0..8 {
            v = (v << 8) | u64::from(*self.bytes.get(&addr.wrapping_add(i)).unwrap_or(&0));
        }
        v
    }

    /// Writes a big-endian 64-bit word.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        for i in 0..8 {
            let shift = 8 * (7 - i);
            self.bytes.insert(addr.wrapping_add(i), (value >> shift) as u8);
        }
    }

    /// Reads a double.
    pub fn read_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Writes a double.
    pub fn write_f64(&mut self, addr: u64, value: f64) {
        self.write_u64(addr, value.to_bits());
    }

    /// Writes a slice of doubles contiguously.
    pub fn write_f64_slice(&mut self, addr: u64, values: &[f64]) {
        for (i, v) in values.iter().enumerate() {
            self.write_f64(addr + 8 * i as u64, *v);
        }
    }

    /// Writes a slice of 64-bit words contiguously.
    pub fn write_u64_slice(&mut self, addr: u64, values: &[u64]) {
        for (i, v) in values.iter().enumerate() {
            self.write_u64(addr + 8 * i as u64, *v);
        }
    }

    /// Reads `len` contiguous doubles.
    pub fn read_f64_slice(&self, addr: u64, len: usize) -> Vec<f64> {
        (0..len).map(|i| self.read_f64(addr + 8 * i as u64)).collect()
    }

    /// Reads `len` contiguous 64-bit words.
    pub fn read_u64_slice(&self, addr: u64, len: usize) -> Vec<u64> {
        (0..len).map(|i| self.read_u64(addr + 8 * i as u64)).collect()
    }
}

/// Errors raised during interpretation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// The step budget was exhausted (probable infinite loop).
    StepLimit,
    /// The function's block structure was malformed.
    Malformed(String),
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpError::StepLimit => write!(f, "interpreter step limit exceeded"),
            InterpError::Malformed(m) => write!(f, "malformed function: {m}"),
        }
    }
}

impl std::error::Error for InterpError {}

pub(crate) fn eval_bin(op: BinOp, a: u64, b: u64) -> u64 {
    let (fa, fb) = (f64::from_bits(a), f64::from_bits(b));
    match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Sdiv => {
            if b == 0 {
                0
            } else {
                (a as i64).wrapping_div(b as i64) as u64
            }
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a.wrapping_shl(b as u32 & 63),
        BinOp::Lshr => a.wrapping_shr(b as u32 & 63),
        BinOp::Ashr => ((a as i64).wrapping_shr(b as u32 & 63)) as u64,
        BinOp::Smax => (a as i64).max(b as i64) as u64,
        BinOp::Smin => (a as i64).min(b as i64) as u64,
        BinOp::Fadd => (fa + fb).to_bits(),
        BinOp::Fsub => (fa - fb).to_bits(),
        BinOp::Fmul => (fa * fb).to_bits(),
        BinOp::Fdiv => (fa / fb).to_bits(),
        BinOp::Fmax => fa.max(fb).to_bits(),
        BinOp::Fmin => fa.min(fb).to_bits(),
    }
}

pub(crate) fn eval_un(op: UnOp, a: u64) -> u64 {
    let fa = f64::from_bits(a);
    match op {
        UnOp::Fneg => (-fa).to_bits(),
        UnOp::Fabs => fa.abs().to_bits(),
        UnOp::Fsqrt => fa.sqrt().to_bits(),
        UnOp::Itof => ((a as i64) as f64).to_bits(),
        UnOp::Ftoi => (fa as i64) as u64,
        UnOp::Not => u64::from(a == 0),
    }
}

pub(crate) fn eval_cmp(op: CmpOp, a: u64, b: u64) -> u64 {
    let (fa, fb) = (f64::from_bits(a), f64::from_bits(b));
    let r = match op {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        CmpOp::Slt => (a as i64) < (b as i64),
        CmpOp::Sle => (a as i64) <= (b as i64),
        CmpOp::Sgt => (a as i64) > (b as i64),
        CmpOp::Sge => (a as i64) >= (b as i64),
        CmpOp::Ult => a < b,
        CmpOp::Feq => fa == fb,
        CmpOp::Flt => fa < fb,
        CmpOp::Fle => fa <= fb,
    };
    u64::from(r)
}

/// The result of interpreting a function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterpResult {
    /// The returned value (raw bits), if any.
    pub ret: Option<u64>,
    /// Dynamic IR instructions executed (basic op count, used by region
    /// heuristics and reports).
    pub steps: u64,
}

/// Interprets `f` with raw 64-bit arguments against `mem`.
///
/// # Errors
///
/// Returns [`InterpError::StepLimit`] after `max_steps` instructions, or
/// [`InterpError::Malformed`] on structural problems the verifier would
/// also reject.
pub fn interpret(
    f: &Function,
    args: &[u64],
    mem: &mut InterpMem,
    max_steps: u64,
) -> Result<InterpResult, InterpError> {
    if args.len() != f.params().len() {
        return Err(InterpError::Malformed(format!(
            "expected {} arguments, got {}",
            f.params().len(),
            args.len()
        )));
    }
    let mut vals: HashMap<Value, u64> = HashMap::new();
    let mut steps = 0u64;
    let mut cur: Block = f.entry();
    let mut prev: Option<Block> = None;

    let value_of = |f: &Function, vals: &HashMap<Value, u64>, v: Value| -> Result<u64, InterpError> {
        match &f.value(v).kind {
            ValueKind::Param { index } => Ok(args[*index]),
            ValueKind::ConstI(c) => Ok(*c as u64),
            ValueKind::ConstF(c) => Ok(c.to_bits()),
            ValueKind::Inst(_) => vals
                .get(&v)
                .copied()
                .ok_or_else(|| InterpError::Malformed(format!("use of undefined {}", f.value_name(v)))),
        }
    };

    loop {
        let bd = f.block(cur);

        // Phis first, evaluated in parallel from the previous block.
        let mut phi_updates: Vec<(Value, u64)> = Vec::new();
        for &v in &bd.insts {
            let Some(Inst::Phi { incomings }) = f.as_inst(v) else { break };
            let Some(p) = prev else {
                return Err(InterpError::Malformed("phi in entry block".into()));
            };
            let Some((_, iv)) = incomings.iter().find(|(bb, _)| *bb == p) else {
                return Err(InterpError::Malformed(format!(
                    "phi {} lacks an incoming for {}",
                    f.value_name(v),
                    f.block(p).name
                )));
            };
            phi_updates.push((v, value_of(f, &vals, *iv)?));
        }
        for (v, x) in phi_updates {
            vals.insert(v, x);
            steps += 1;
        }

        for &v in &bd.insts {
            let Some(inst) = f.as_inst(v) else { continue };
            if matches!(inst, Inst::Phi { .. }) {
                continue;
            }
            steps += 1;
            if steps > max_steps {
                return Err(InterpError::StepLimit);
            }
            let result = match inst {
                Inst::Bin { op, a, b } => {
                    Some(eval_bin(*op, value_of(f, &vals, *a)?, value_of(f, &vals, *b)?))
                }
                Inst::Un { op, a } => Some(eval_un(*op, value_of(f, &vals, *a)?)),
                Inst::Cmp { op, a, b } => {
                    Some(eval_cmp(*op, value_of(f, &vals, *a)?, value_of(f, &vals, *b)?))
                }
                Inst::Select { cond, on_true, on_false } => {
                    let c = value_of(f, &vals, *cond)?;
                    Some(if c != 0 {
                        value_of(f, &vals, *on_true)?
                    } else {
                        value_of(f, &vals, *on_false)?
                    })
                }
                Inst::Load { ptr } => Some(mem.read_u64(value_of(f, &vals, *ptr)?)),
                Inst::Store { ptr, value } => {
                    let addr = value_of(f, &vals, *ptr)?;
                    let x = value_of(f, &vals, *value)?;
                    mem.write_u64(addr, x);
                    None
                }
                Inst::Gep { base, index, scale } => {
                    let b = value_of(f, &vals, *base)?;
                    let i = value_of(f, &vals, *index)?;
                    Some(b.wrapping_add(i.wrapping_mul(*scale)))
                }
                Inst::Phi { .. } => unreachable!("phis handled above"),
            };
            if let Some(r) = result {
                if f.ty(v) != Type::Unit {
                    vals.insert(v, r);
                }
            }
        }

        match &bd.term {
            Terminator::Br(t) => {
                prev = Some(cur);
                cur = *t;
            }
            Terminator::CondBr { cond, then_bb, else_bb } => {
                let c = value_of(f, &vals, *cond)?;
                prev = Some(cur);
                cur = if c != 0 { *then_bb } else { *else_bb };
            }
            Terminator::Ret(v) => {
                let ret = match v {
                    Some(v) => Some(value_of(f, &vals, *v)?),
                    None => None,
                };
                return Ok(InterpResult { ret, steps });
            }
            Terminator::None => {
                return Err(InterpError::Malformed(format!(
                    "fell off unterminated block {}",
                    bd.name
                )));
            }
        }
        if steps > max_steps {
            return Err(InterpError::StepLimit);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinOp, CmpOp, FunctionBuilder};

    fn vecadd() -> Function {
        let mut b = FunctionBuilder::new(
            "vecadd",
            &[("a", Type::Ptr), ("b", Type::Ptr), ("c", Type::Ptr), ("n", Type::I64)],
        );
        let (a, bb, c, n) = (b.param(0), b.param(1), b.param(2), b.param(3));
        let zero = b.const_i(0);
        let one = b.const_i(1);
        let loop_bb = b.block("loop");
        let exit_bb = b.block("exit");
        let entry = b.current();
        b.br(loop_bb);
        b.switch_to(loop_bb);
        let i = b.phi(Type::I64);
        let pa = b.gep(a, i, 8);
        let pb = b.gep(bb, i, 8);
        let va = b.load(pa, Type::F64);
        let vb = b.load(pb, Type::F64);
        let sum = b.bin(BinOp::Fadd, va, vb);
        let pc = b.gep(c, i, 8);
        b.store(sum, pc);
        let i2 = b.bin(BinOp::Add, i, one);
        let cond = b.cmp(CmpOp::Slt, i2, n);
        b.add_incoming(i, entry, zero);
        b.add_incoming(i, loop_bb, i2);
        b.cond_br(cond, loop_bb, exit_bb);
        b.switch_to(exit_bb);
        b.ret(None);
        b.build().unwrap()
    }

    #[test]
    fn vecadd_semantics() {
        let f = vecadd();
        let mut mem = InterpMem::new();
        let (pa, pb, pc) = (0x1000u64, 0x2000u64, 0x3000u64);
        mem.write_f64_slice(pa, &[1.0, 2.0, 3.0, 4.0]);
        mem.write_f64_slice(pb, &[10.0, 20.0, 30.0, 40.0]);
        let r = interpret(&f, &[pa, pb, pc, 4], &mut mem, 10_000).unwrap();
        assert_eq!(mem.read_f64_slice(pc, 4), vec![11.0, 22.0, 33.0, 44.0]);
        assert!(r.steps > 16);
        assert_eq!(r.ret, None);
    }

    #[test]
    fn returns_value() {
        let mut b = FunctionBuilder::new("f", &[("x", Type::I64)]);
        let x = b.param(0);
        let k = b.const_i(5);
        let y = b.bin(BinOp::Mul, x, k);
        b.ret(Some(y));
        let f = b.build().unwrap();
        let mut mem = InterpMem::new();
        let r = interpret(&f, &[7], &mut mem, 100).unwrap();
        assert_eq!(r.ret, Some(35));
    }

    #[test]
    fn select_and_cmp() {
        let mut b = FunctionBuilder::new("maxish", &[("x", Type::I64), ("y", Type::I64)]);
        let x = b.param(0);
        let y = b.param(1);
        let c = b.cmp(CmpOp::Sgt, x, y);
        let m = b.select(c, x, y);
        b.ret(Some(m));
        let f = b.build().unwrap();
        let mut mem = InterpMem::new();
        assert_eq!(interpret(&f, &[3, 9], &mut mem, 100).unwrap().ret, Some(9));
        assert_eq!(
            interpret(&f, &[(-1i64) as u64, (-5i64) as u64], &mut mem, 100).unwrap().ret,
            Some((-1i64) as u64)
        );
    }

    #[test]
    fn step_limit_catches_infinite_loops() {
        let mut b = FunctionBuilder::new("spin", &[]);
        let body = b.block("body");
        b.br(body);
        b.switch_to(body);
        let one = b.const_i(1);
        let _ = b.bin(BinOp::Add, one, one);
        b.br(body);
        let f = b.build().unwrap();
        let mut mem = InterpMem::new();
        assert_eq!(interpret(&f, &[], &mut mem, 100), Err(InterpError::StepLimit));
    }

    #[test]
    fn wrong_arity_rejected() {
        let f = vecadd();
        let mut mem = InterpMem::new();
        assert!(matches!(
            interpret(&f, &[0, 0], &mut mem, 100),
            Err(InterpError::Malformed(_))
        ));
    }

    #[test]
    fn fp_unops() {
        let mut b = FunctionBuilder::new("f", &[]);
        let c = b.const_f(-9.0);
        let a = b.un(UnOp::Fabs, c);
        let s = b.un(UnOp::Fsqrt, a);
        b.ret(Some(s));
        let f = b.build().unwrap();
        let mut mem = InterpMem::new();
        let r = interpret(&f, &[], &mut mem, 100).unwrap();
        assert_eq!(f64::from_bits(r.ret.unwrap()), 3.0);
    }

    #[test]
    fn memory_slices() {
        let mut m = InterpMem::new();
        m.write_u64_slice(0x10, &[1, 2, 3]);
        assert_eq!(m.read_u64_slice(0x10, 3), vec![1, 2, 3]);
        m.write_f64(0x40, 2.5);
        assert_eq!(m.read_f64(0x40), 2.5);
    }
}
