//! Control-flow shape classification.
//!
//! The paper's second key finding: the compiler extracts computationally
//! intensive regular *and* irregular code well, but two control-flow
//! shapes curtail it on non-compute-intense irregular code:
//!
//! * **Shape A — early-exit loops**: loops with data-dependent side exits
//!   (`break`-style control). The fabric's pipelined invocations cannot be
//!   speculated past the exit without a flush mechanism.
//! * **Shape B — nested data-dependent control**: loop bodies whose
//!   branching cannot be if-converted (stores under conditions, inner
//!   loops), so no single compute slice exists.
//!
//! [`classify_loops`] reports the shape of every innermost loop, before
//! and after if-conversion — the measurement behind experiment E8.

use crate::analysis::{Cfg, DomTree, LoopForest};
use crate::ir::{Block, Function};
use crate::opt::if_convert;

/// The shape of one innermost loop, as the DySER compiler sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoopShape {
    /// Single-block body with a single exit: directly acceleratable.
    Regular,
    /// Multi-block body that if-conversion flattens: acceleratable after
    /// predication.
    IfConvertible,
    /// Shape A: a loop with more than one exit edge (early exit).
    EarlyExit,
    /// Shape B: nested data-dependent control that predication cannot
    /// remove (conditional stores, non-hammock flow, inner loops).
    NestedControl,
}

impl LoopShape {
    /// A short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            LoopShape::Regular => "regular",
            LoopShape::IfConvertible => "if-convertible",
            LoopShape::EarlyExit => "early-exit (shape A)",
            LoopShape::NestedControl => "nested-control (shape B)",
        }
    }

    /// Whether the compiler can extract a region from this shape.
    pub fn acceleratable(self) -> bool {
        matches!(self, LoopShape::Regular | LoopShape::IfConvertible)
    }
}

/// Classification of one loop.
#[derive(Debug, Clone)]
pub struct ShapeReport {
    /// The loop header in the *original* function.
    pub header: Block,
    /// Loop nesting depth.
    pub depth: usize,
    /// Blocks in the loop body.
    pub body_blocks: usize,
    /// Exit edges out of the loop.
    pub exit_edges: usize,
    /// The classified shape.
    pub shape: LoopShape,
}

/// Classifies every innermost loop of `f`.
///
/// The function is cloned and if-converted internally; the original is
/// untouched.
pub fn classify_loops(f: &Function) -> Vec<ShapeReport> {
    let cfg = Cfg::compute(f);
    let dom = DomTree::compute(f, &cfg);
    let forest = LoopForest::compute(f, &cfg, &dom);

    let mut reports = Vec::new();
    for l in forest.innermost() {
        let exit_edges = l.exits.len();
        let body_blocks = l.blocks.len();
        let shape = if exit_edges > 1 {
            LoopShape::EarlyExit
        } else if body_blocks == 1 {
            LoopShape::Regular
        } else {
            // Multi-block, single exit: try predication on a clone.
            if if_converts_to_single_block(f, l.header) {
                LoopShape::IfConvertible
            } else {
                LoopShape::NestedControl
            }
        };
        reports.push(ShapeReport {
            header: l.header,
            depth: l.depth,
            body_blocks,
            exit_edges,
            shape,
        });
    }
    reports.sort_by_key(|r| r.header);
    reports
}

/// Whether if-converting a clone collapses the loop at `header` into a
/// single-block body.
fn if_converts_to_single_block(f: &Function, header: Block) -> bool {
    let mut clone = f.clone();
    if_convert(&mut clone);
    let cfg = Cfg::compute(&clone);
    let dom = DomTree::compute(&clone, &cfg);
    let forest = LoopForest::compute(&clone, &cfg, &dom);
    // The header block id is stable across if_convert (blocks are never
    // renumbered, only emptied), so look its loop up again.
    forest
        .loops()
        .iter()
        .find(|l| l.header == header)
        .map(|l| l.blocks.len() == 1)
        .unwrap_or(false)
}

/// Summary counts over a set of reports (used by E8's table).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShapeSummary {
    /// Regular loops.
    pub regular: usize,
    /// If-convertible loops.
    pub if_convertible: usize,
    /// Early-exit loops (shape A).
    pub early_exit: usize,
    /// Nested-control loops (shape B).
    pub nested_control: usize,
}

impl ShapeSummary {
    /// Tallies a list of reports.
    pub fn tally(reports: &[ShapeReport]) -> Self {
        let mut s = ShapeSummary::default();
        for r in reports {
            match r.shape {
                LoopShape::Regular => s.regular += 1,
                LoopShape::IfConvertible => s.if_convertible += 1,
                LoopShape::EarlyExit => s.early_exit += 1,
                LoopShape::NestedControl => s.nested_control += 1,
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinOp, CmpOp, FunctionBuilder, Type};

    fn regular_loop() -> Function {
        let mut b = FunctionBuilder::new("r", &[("n", Type::I64)]);
        let n = b.param(0);
        let zero = b.const_i(0);
        let one = b.const_i(1);
        let body = b.block("body");
        let exit = b.block("exit");
        let entry = b.current();
        b.br(body);
        b.switch_to(body);
        let i = b.phi(Type::I64);
        let i2 = b.bin(BinOp::Add, i, one);
        b.add_incoming(i, entry, zero);
        b.add_incoming(i, body, i2);
        let c = b.cmp(CmpOp::Slt, i2, n);
        b.cond_br(c, body, exit);
        b.switch_to(exit);
        b.ret(None);
        b.build().unwrap()
    }

    /// Loop with an if-convertible diamond in the body.
    fn predicable_loop() -> Function {
        let mut b = FunctionBuilder::new("p", &[("a", Type::Ptr), ("n", Type::I64)]);
        let a = b.param(0);
        let n = b.param(1);
        let zero = b.const_i(0);
        let one = b.const_i(1);
        let head = b.block("head");
        let t = b.block("t");
        let e = b.block("e");
        let latch = b.block("latch");
        let exit = b.block("exit");
        let entry = b.current();
        b.br(head);
        b.switch_to(head);
        let i = b.phi(Type::I64);
        let p = b.gep(a, i, 8);
        let x = b.load(p, Type::I64);
        let c = b.cmp(CmpOp::Slt, x, zero);
        b.cond_br(c, t, e);
        b.switch_to(t);
        let neg = b.bin(BinOp::Sub, zero, x);
        b.br(latch);
        b.switch_to(e);
        let pos = b.bin(BinOp::Add, x, zero);
        b.br(latch);
        b.switch_to(latch);
        let m = b.phi(Type::I64);
        b.add_incoming(m, t, neg);
        b.add_incoming(m, e, pos);
        b.store(m, p);
        let i2 = b.bin(BinOp::Add, i, one);
        b.add_incoming(i, entry, zero);
        b.add_incoming(i, latch, i2);
        let lc = b.cmp(CmpOp::Slt, i2, n);
        b.cond_br(lc, head, exit);
        b.switch_to(exit);
        b.ret(None);
        b.build().unwrap()
    }

    /// Early-exit search: break when a[i] == key.
    fn early_exit_loop() -> Function {
        let mut b = FunctionBuilder::new("find", &[("a", Type::Ptr), ("n", Type::I64), ("key", Type::I64)]);
        let a = b.param(0);
        let n = b.param(1);
        let key = b.param(2);
        let zero = b.const_i(0);
        let one = b.const_i(1);
        let head = b.block("head");
        let latch = b.block("latch");
        let found = b.block("found");
        let exit = b.block("exit");
        let entry = b.current();
        b.br(head);
        b.switch_to(head);
        let i = b.phi(Type::I64);
        let p = b.gep(a, i, 8);
        let x = b.load(p, Type::I64);
        let hit = b.cmp(CmpOp::Eq, x, key);
        b.cond_br(hit, found, latch);
        b.switch_to(latch);
        let i2 = b.bin(BinOp::Add, i, one);
        b.add_incoming(i, entry, zero);
        b.add_incoming(i, latch, i2);
        let c = b.cmp(CmpOp::Slt, i2, n);
        b.cond_br(c, head, exit);
        b.switch_to(found);
        b.ret(Some(i));
        b.switch_to(exit);
        let neg1 = b.const_i(-1);
        let m = b.bin(BinOp::Add, neg1, zero);
        b.ret(Some(m));
        b.build().unwrap()
    }

    /// Conditional store: cannot be if-converted.
    fn nested_control_loop() -> Function {
        let mut b = FunctionBuilder::new("condstore", &[("a", Type::Ptr), ("n", Type::I64)]);
        let a = b.param(0);
        let n = b.param(1);
        let zero = b.const_i(0);
        let one = b.const_i(1);
        let head = b.block("head");
        let do_store = b.block("do_store");
        let latch = b.block("latch");
        let exit = b.block("exit");
        let entry = b.current();
        b.br(head);
        b.switch_to(head);
        let i = b.phi(Type::I64);
        let p = b.gep(a, i, 8);
        let x = b.load(p, Type::I64);
        let c = b.cmp(CmpOp::Slt, x, zero);
        b.cond_br(c, do_store, latch);
        b.switch_to(do_store);
        b.store(zero, p);
        b.br(latch);
        b.switch_to(latch);
        let i2 = b.bin(BinOp::Add, i, one);
        b.add_incoming(i, entry, zero);
        b.add_incoming(i, latch, i2);
        let lc = b.cmp(CmpOp::Slt, i2, n);
        b.cond_br(lc, head, exit);
        b.switch_to(exit);
        b.ret(None);
        b.build().unwrap()
    }

    #[test]
    fn regular_is_regular() {
        let reports = classify_loops(&regular_loop());
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].shape, LoopShape::Regular);
        assert!(reports[0].shape.acceleratable());
    }

    #[test]
    fn diamond_body_is_if_convertible() {
        let reports = classify_loops(&predicable_loop());
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].shape, LoopShape::IfConvertible, "{reports:?}");
        assert!(reports[0].shape.acceleratable());
        assert_eq!(reports[0].body_blocks, 4);
    }

    #[test]
    fn break_loop_is_shape_a() {
        let reports = classify_loops(&early_exit_loop());
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].shape, LoopShape::EarlyExit);
        assert!(!reports[0].shape.acceleratable());
        assert_eq!(reports[0].exit_edges, 2);
    }

    #[test]
    fn conditional_store_is_shape_b() {
        let reports = classify_loops(&nested_control_loop());
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].shape, LoopShape::NestedControl);
        assert!(!reports[0].shape.acceleratable());
    }

    #[test]
    fn summary_tallies() {
        let mut all = Vec::new();
        all.extend(classify_loops(&regular_loop()));
        all.extend(classify_loops(&early_exit_loop()));
        all.extend(classify_loops(&nested_control_loop()));
        let s = ShapeSummary::tally(&all);
        assert_eq!(s.regular, 1);
        assert_eq!(s.early_exit, 1);
        assert_eq!(s.nested_control, 1);
        assert_eq!(s.if_convertible, 0);
    }
}
