//! Acceleratable-region selection and access/execute slicing.
//!
//! A region is an innermost, single-block loop body (the shape loops take
//! after if-conversion and unrolling). Its instructions are partitioned:
//!
//! * the **access slice** stays on the core: phis, address arithmetic
//!   (`gep` chains), loads, stores, and the loop-exit test;
//! * the **compute slice** moves to the fabric: every remaining pure
//!   operation.
//!
//! The slice boundary defines the fabric interface:
//!
//! * **inputs** — loads consumed only by compute (they become `dload`,
//!   the memory-to-fabric fast path), and core values consumed by compute
//!   (loop-carried phis, shared loads, loop invariants — they become
//!   `dsend`);
//! * **outputs** — compute values consumed by the core. A value consumed
//!   *only* by stores becomes a `dstore` (and the code generator lags it
//!   one iteration to pipeline invocations); anything else is received
//!   into a register (`drecv`).

use std::collections::{HashMap, HashSet};

use crate::analysis::{Cfg, DomTree, LoopForest};
use crate::ir::{Block, Function, Inst, Terminator, Value};

/// Options controlling region selection.
#[derive(Debug, Clone, Copy)]
pub struct RegionOptions {
    /// Minimum number of compute-slice operations for a region to be
    /// worth configuring (the paper's compiler applies a similar
    /// profitability threshold).
    pub min_compute_ops: usize,
    /// Adaptive mechanism for data-dependent exits (E8): allow the
    /// loop-exit condition's dataflow to move into the fabric, received
    /// back each iteration. Serializes invocations, but offloads the
    /// comparison work.
    pub offload_exit_condition: bool,
    /// Restrict selection to this block (the unrolled main body), if set.
    pub only_block: Option<Block>,
}

impl Default for RegionOptions {
    fn default() -> Self {
        RegionOptions { min_compute_ops: 2, offload_exit_condition: false, only_block: None }
    }
}

/// One fabric input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegionInput {
    /// A load consumed only by the compute slice: becomes `dload`.
    Load {
        /// The load instruction.
        load: Value,
    },
    /// A core value consumed by the compute slice: becomes `dsend`.
    CoreValue {
        /// The value sent.
        value: Value,
    },
}

impl RegionInput {
    /// The IR value this input carries.
    pub fn value(&self) -> Value {
        match self {
            RegionInput::Load { load } => *load,
            RegionInput::CoreValue { value } => *value,
        }
    }
}

/// How a fabric output is consumed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OutputKind {
    /// Consumed only by stores in the body. With a single store it becomes
    /// a `dstore`, software-pipelined by the code generator; with several
    /// stores the code generator receives the value into a register first
    /// (one output value arrives per invocation).
    StoreOnly {
        /// The store instructions consuming it.
        stores: Vec<Value>,
    },
    /// Consumed by the core (phi updates, live-outs, the offloaded exit
    /// condition): becomes `drecv`.
    CoreUse,
}

/// One fabric output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionOutput {
    /// The compute-slice value leaving the fabric.
    pub value: Value,
    /// How the core consumes it.
    pub kind: OutputKind,
}

/// An acceleratable region with its slices and interface.
#[derive(Debug, Clone)]
pub struct Region {
    /// Region name (used as the configuration name).
    pub name: String,
    /// The single-block loop body.
    pub body: Block,
    /// The block the loop exits to.
    pub exit: Block,
    /// The loop's unique outside predecessor (`dinit` goes here).
    pub outside_pred: Block,
    /// Compute-slice instructions, in body order.
    pub compute: Vec<Value>,
    /// Fabric inputs, in deterministic order (port `i` = `inputs[i]`).
    pub inputs: Vec<RegionInput>,
    /// Fabric outputs, in deterministic order (port `j` = `outputs[j]`).
    pub outputs: Vec<RegionOutput>,
    /// Whether the exit condition was offloaded (adaptive mechanism).
    pub exit_condition_offloaded: bool,
}

impl Region {
    /// Whether `v` is in the compute slice.
    pub fn is_compute(&self, v: Value) -> bool {
        self.compute.contains(&v)
    }
}

/// Selects acceleratable regions in `f`.
///
/// Returns one [`Region`] per qualifying innermost single-block loop, in
/// block order.
pub fn select_regions(f: &Function, options: &RegionOptions) -> Vec<Region> {
    let cfg = Cfg::compute(f);
    let dom = DomTree::compute(f, &cfg);
    let forest = LoopForest::compute(f, &cfg, &dom);

    let mut regions = Vec::new();
    let mut candidates: Vec<(Block, Block, Block)> = Vec::new(); // (body, exit, outside)
    for l in forest.innermost() {
        if l.blocks.len() != 1 {
            continue;
        }
        let body = l.header;
        if let Some(only) = options.only_block {
            if body != only {
                continue;
            }
        }
        let Terminator::CondBr { then_bb, else_bb, .. } = f.block(body).term else { continue };
        let exit = if then_bb == body {
            else_bb
        } else if else_bb == body {
            then_bb
        } else {
            continue;
        };
        let outside: Vec<Block> =
            cfg.preds(body).iter().copied().filter(|&p| p != body).collect();
        let [outside_pred] = outside.as_slice() else { continue };
        candidates.push((body, exit, *outside_pred));
    }
    candidates.sort();

    for (body, exit, outside_pred) in candidates {
        if let Some(region) = slice_body(f, body, exit, outside_pred, options) {
            regions.push(region);
        }
    }
    regions
}

/// Whether an instruction is a pure compute candidate.
fn is_pure_compute(inst: &Inst) -> bool {
    matches!(
        inst,
        Inst::Bin { .. } | Inst::Un { .. } | Inst::Cmp { .. } | Inst::Select { .. }
    )
}

fn slice_body(
    f: &Function,
    body: Block,
    exit: Block,
    outside_pred: Block,
    options: &RegionOptions,
) -> Option<Region> {
    let insts = &f.block(body).insts;
    let in_body: HashSet<Value> = insts.iter().copied().collect();
    let Terminator::CondBr { cond, .. } = f.block(body).term else { return None };

    // Seed the core-required set: gep operands and (unless offloaded) the
    // exit condition. Close transitively over pure feeders inside the body.
    let mut core_required: HashSet<Value> = HashSet::new();
    let mut work: Vec<Value> = Vec::new();
    for &v in insts {
        match f.as_inst(v) {
            Some(Inst::Gep { base, index, .. }) => {
                work.push(*base);
                work.push(*index);
            }
            Some(Inst::Store { ptr, .. }) => work.push(*ptr),
            _ => {}
        }
    }
    if !options.offload_exit_condition {
        work.push(cond);
    }
    while let Some(v) = work.pop() {
        if !in_body.contains(&v) || core_required.contains(&v) {
            continue;
        }
        if let Some(inst) = f.as_inst(v) {
            if is_pure_compute(inst) {
                core_required.insert(v);
                work.extend(f.operands(v));
            }
        }
    }

    // Compute slice: pure ops in the body not required on the core.
    let compute: Vec<Value> = insts
        .iter()
        .copied()
        .filter(|&v| {
            f.as_inst(v).is_some_and(is_pure_compute) && !core_required.contains(&v)
        })
        .collect();
    if compute.len() < options.min_compute_ops {
        return None;
    }
    let compute_set: HashSet<Value> = compute.iter().copied().collect();

    // Uses of every value, to classify loads and outputs. Collect across
    // the whole function (live-outs count as core uses). Terminator and
    // return uses are tracked separately: they are always core uses.
    let mut users: HashMap<Value, Vec<Value>> = HashMap::new();
    let mut control_users: HashSet<Value> = HashSet::new();
    for b in f.blocks() {
        for &v in &f.block(b).insts {
            for o in f.operands(v) {
                users.entry(o).or_default().push(v);
            }
        }
        match &f.block(b).term {
            Terminator::CondBr { cond: c, .. } => {
                control_users.insert(*c);
            }
            Terminator::Ret(Some(rv)) => {
                control_users.insert(*rv);
            }
            _ => {}
        }
    }

    // Helper: is this value consumed by anything outside the compute slice?
    let externally_used = |v: Value| -> bool {
        control_users.contains(&v)
            || users
                .get(&v)
                .map(|us| us.iter().any(|u| !compute_set.contains(u)))
                .unwrap_or(false)
    };

    // Inputs: distinct non-compute, non-constant operands of compute insts.
    let mut inputs: Vec<RegionInput> = Vec::new();
    let mut seen_inputs: HashSet<Value> = HashSet::new();
    for &cv in &compute {
        for o in f.operands(cv) {
            if compute_set.contains(&o) || seen_inputs.contains(&o) || f.is_const(o) {
                continue;
            }
            seen_inputs.insert(o);
            let is_body_load =
                in_body.contains(&o) && matches!(f.as_inst(o), Some(Inst::Load { .. }));
            if is_body_load {
                let only_compute = !control_users.contains(&o)
                    && users
                        .get(&o)
                        .map(|us| us.iter().all(|u| compute_set.contains(u)))
                        .unwrap_or(false);
                if only_compute {
                    inputs.push(RegionInput::Load { load: o });
                    continue;
                }
            }
            inputs.push(RegionInput::CoreValue { value: o });
        }
    }

    // Outputs: compute values consumed outside the compute slice.
    let mut outputs: Vec<RegionOutput> = Vec::new();
    for &cv in &compute {
        if !externally_used(cv) {
            continue;
        }
        let external: Vec<Value> = users
            .get(&cv)
            .map(|us| us.iter().copied().filter(|u| !compute_set.contains(u)).collect())
            .unwrap_or_default();
        let all_stores_of_value = !control_users.contains(&cv)
            && !external.is_empty()
            && external.iter().all(|&u| {
                in_body.contains(&u)
                    && matches!(f.as_inst(u), Some(Inst::Store { value, .. }) if *value == cv)
            });
        let kind = if all_stores_of_value {
            OutputKind::StoreOnly { stores: external }
        } else {
            OutputKind::CoreUse
        };
        outputs.push(RegionOutput { value: cv, kind });
    }
    if outputs.is_empty() {
        return None;
    }

    let offloaded = options.offload_exit_condition && compute_set.contains(&cond);
    Some(Region {
        name: format!("{}::{}", f.name(), f.block(body).name),
        body,
        exit,
        outside_pred,
        compute,
        inputs,
        outputs,
        exit_condition_offloaded: offloaded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinOp, CmpOp, FunctionBuilder, Type};

    /// c[i] = a[i]*b[i] + k, with a reduction acc += a[i].
    fn rich_kernel() -> (Function, Block) {
        let mut b = FunctionBuilder::new(
            "rich",
            &[("a", Type::Ptr), ("b", Type::Ptr), ("c", Type::Ptr), ("n", Type::I64), ("k", Type::F64)],
        );
        let (a, bb, c, n, k) = (b.param(0), b.param(1), b.param(2), b.param(3), b.param(4));
        let zero = b.const_i(0);
        let one = b.const_i(1);
        let body = b.block("body");
        let exit = b.block("exit");
        let entry = b.current();
        b.br(body);
        b.switch_to(body);
        let i = b.phi(Type::I64);
        let acc = b.phi(Type::F64);
        let pa = b.gep(a, i, 8);
        let pb = b.gep(bb, i, 8);
        let va = b.load(pa, Type::F64);
        let vb = b.load(pb, Type::F64);
        let prod = b.bin(BinOp::Fmul, va, vb);
        let shifted = b.bin(BinOp::Fadd, prod, k);
        let pc = b.gep(c, i, 8);
        b.store(shifted, pc);
        let acc2 = b.bin(BinOp::Fadd, acc, va);
        let i2 = b.bin(BinOp::Add, i, one);
        let zf = b.const_f(0.0);
        b.add_incoming(i, entry, zero);
        b.add_incoming(i, body, i2);
        b.add_incoming(acc, entry, zf);
        b.add_incoming(acc, body, acc2);
        let cond = b.cmp(CmpOp::Slt, i2, n);
        b.cond_br(cond, body, exit);
        b.switch_to(exit);
        let pacc = b.gep(c, n, 8);
        b.store(acc2, pacc);
        b.ret(None);
        (b.build().unwrap(), body)
    }

    #[test]
    fn selects_and_slices_rich_kernel() {
        let (f, body) = rich_kernel();
        let regions = select_regions(&f, &RegionOptions::default());
        assert_eq!(regions.len(), 1);
        let r = &regions[0];
        assert_eq!(r.body, body);
        // Compute slice: fmul, fadd(+k), fadd(acc). The iv add and the cmp
        // stay on the core.
        assert_eq!(r.compute.len(), 3, "{:?}", r.compute);
    }

    #[test]
    fn load_classification() {
        let (f, _) = rich_kernel();
        let r = &select_regions(&f, &RegionOptions::default())[0];
        // vb feeds only fmul -> dload. va feeds fmul AND acc-fadd, both
        // compute -> also dload. k is a param -> core value send.
        let loads = r.inputs.iter().filter(|i| matches!(i, RegionInput::Load { .. })).count();
        let sends = r
            .inputs
            .iter()
            .filter(|i| matches!(i, RegionInput::CoreValue { .. }))
            .count();
        assert_eq!(loads, 2, "both loads feed only compute: {:?}", r.inputs);
        // k (param) and acc (phi) are core-value inputs.
        assert_eq!(sends, 2, "{:?}", r.inputs);
    }

    #[test]
    fn output_classification() {
        let (f, _) = rich_kernel();
        let r = &select_regions(&f, &RegionOptions::default())[0];
        assert_eq!(r.outputs.len(), 2);
        let store_only = r
            .outputs
            .iter()
            .filter(|o| matches!(o.kind, OutputKind::StoreOnly { .. }))
            .count();
        let core_use =
            r.outputs.iter().filter(|o| o.kind == OutputKind::CoreUse).count();
        assert_eq!(store_only, 1, "shifted value feeds only the in-body store");
        // acc2 feeds the phi and a store OUTSIDE the body -> core use.
        assert_eq!(core_use, 1);
    }

    #[test]
    fn threshold_rejects_tiny_regions() {
        let (f, _) = rich_kernel();
        let opts = RegionOptions { min_compute_ops: 10, ..Default::default() };
        assert!(select_regions(&f, &opts).is_empty());
    }

    #[test]
    fn only_block_restriction() {
        let (f, body) = rich_kernel();
        let opts = RegionOptions { only_block: Some(body), ..Default::default() };
        assert_eq!(select_regions(&f, &opts).len(), 1);
        let opts2 = RegionOptions { only_block: Some(f.entry()), ..Default::default() };
        assert!(select_regions(&f, &opts2).is_empty());
    }

    #[test]
    fn exit_condition_offload() {
        // while (a[i] < limit): the exit test is data-dependent.
        let mut b = FunctionBuilder::new("scan", &[("a", Type::Ptr), ("limit", Type::I64)]);
        let a = b.param(0);
        let limit = b.param(1);
        let zero = b.const_i(0);
        let one = b.const_i(1);
        let body = b.block("body");
        let exit = b.block("exit");
        let entry = b.current();
        b.br(body);
        b.switch_to(body);
        let i = b.phi(Type::I64);
        let p = b.gep(a, i, 8);
        let x = b.load(p, Type::I64);
        let dx = b.bin(BinOp::Mul, x, x);
        let i2 = b.bin(BinOp::Add, i, one);
        b.add_incoming(i, entry, zero);
        b.add_incoming(i, body, i2);
        let c = b.cmp(CmpOp::Slt, dx, limit);
        b.cond_br(c, body, exit);
        b.switch_to(exit);
        let pr = b.gep(a, zero, 8);
        b.store(i2, pr);
        b.ret(None);
        let f = b.build().unwrap();

        // Without offloading: the condition chain (mul, cmp) is core-
        // required, leaving no compute slice.
        assert!(select_regions(&f, &RegionOptions::default()).is_empty());

        // With the adaptive mechanism the chain moves to the fabric and the
        // condition is received back.
        let opts = RegionOptions { offload_exit_condition: true, min_compute_ops: 1, ..Default::default() };
        let regions = select_regions(&f, &opts);
        assert_eq!(regions.len(), 1);
        let r = &regions[0];
        assert!(r.exit_condition_offloaded);
        assert!(r.outputs.iter().any(|o| o.kind == OutputKind::CoreUse));
    }

    #[test]
    fn no_region_without_outputs() {
        // A body whose pure ops all feed addresses has nothing to ship.
        let mut b = FunctionBuilder::new("addr", &[("a", Type::Ptr), ("n", Type::I64)]);
        let a = b.param(0);
        let n = b.param(1);
        let zero = b.const_i(0);
        let one = b.const_i(1);
        let two = b.const_i(2);
        let body = b.block("body");
        let exit = b.block("exit");
        let entry = b.current();
        b.br(body);
        b.switch_to(body);
        let i = b.phi(Type::I64);
        let j = b.bin(BinOp::Mul, i, two); // feeds gep: core-required
        let p = b.gep(a, j, 8);
        b.store(i, p);
        let i2 = b.bin(BinOp::Add, i, one);
        b.add_incoming(i, entry, zero);
        b.add_incoming(i, body, i2);
        let c = b.cmp(CmpOp::Slt, i2, n);
        b.cond_br(c, body, exit);
        b.switch_to(exit);
        b.ret(None);
        let f = b.build().unwrap();
        assert!(select_regions(&f, &RegionOptions::default()).is_empty());
    }
}
