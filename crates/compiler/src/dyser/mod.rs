//! Region selection, access/execute slicing, and control-flow shape
//! classification — the heart of the co-designed compiler.

pub mod region;
pub mod shapes;

pub use region::{select_regions, OutputKind, Region, RegionInput, RegionOptions, RegionOutput};
pub use shapes::{classify_loops, LoopShape, ShapeReport, ShapeSummary};
