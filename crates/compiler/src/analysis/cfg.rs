//! The control-flow graph: successors, predecessors, reverse postorder.

use crate::ir::{Block, Function, Terminator};

/// Successor/predecessor sets and a reverse-postorder numbering.
#[derive(Debug, Clone)]
pub struct Cfg {
    succs: Vec<Vec<Block>>,
    preds: Vec<Vec<Block>>,
    rpo: Vec<Block>,
    rpo_index: Vec<Option<usize>>,
}

impl Cfg {
    /// Computes the CFG of `f`.
    pub fn compute(f: &Function) -> Self {
        let n = f.block_count();
        let mut succs = vec![Vec::new(); n];
        let mut preds: Vec<Vec<Block>> = vec![Vec::new(); n];
        for b in f.blocks() {
            let ss: Vec<Block> = match &f.block(b).term {
                Terminator::Br(t) => vec![*t],
                Terminator::CondBr { then_bb, else_bb, .. } => {
                    if then_bb == else_bb {
                        vec![*then_bb]
                    } else {
                        vec![*then_bb, *else_bb]
                    }
                }
                Terminator::Ret(_) | Terminator::None => Vec::new(),
            };
            for s in &ss {
                preds[s.index()].push(b);
            }
            succs[b.index()] = ss;
        }

        // Reverse postorder via iterative DFS from the entry block.
        let mut visited = vec![false; n];
        let mut postorder = Vec::with_capacity(n);
        let mut stack: Vec<(Block, usize)> = vec![(f.entry(), 0)];
        visited[f.entry().index()] = true;
        while let Some(&(b, child)) = stack.last() {
            if child < succs[b.index()].len() {
                stack.last_mut().expect("stack non-empty").1 += 1;
                let next = succs[b.index()][child];
                if !visited[next.index()] {
                    visited[next.index()] = true;
                    stack.push((next, 0));
                }
            } else {
                postorder.push(b);
                stack.pop();
            }
        }
        let rpo: Vec<Block> = postorder.into_iter().rev().collect();
        let mut rpo_index = vec![None; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_index[b.index()] = Some(i);
        }
        Cfg { succs, preds, rpo, rpo_index }
    }

    /// Successors of `b`.
    pub fn succs(&self, b: Block) -> &[Block] {
        &self.succs[b.index()]
    }

    /// Predecessors of `b`.
    pub fn preds(&self, b: Block) -> &[Block] {
        &self.preds[b.index()]
    }

    /// Blocks in reverse postorder (entry first; unreachable blocks absent).
    pub fn rpo(&self) -> &[Block] {
        &self.rpo
    }

    /// Position of `b` in the reverse postorder, if reachable.
    pub fn rpo_index(&self, b: Block) -> Option<usize> {
        self.rpo_index[b.index()]
    }

    /// Whether `b` is reachable from the entry.
    pub fn reachable(&self, b: Block) -> bool {
        self.rpo_index[b.index()].is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{FunctionBuilder, Type};

    /// entry -> (then | else) -> join, plus an unreachable block.
    fn diamond() -> Function {
        let mut b = FunctionBuilder::new("d", &[("x", Type::I64)]);
        let x = b.param(0);
        let zero = b.const_i(0);
        let then_bb = b.block("then");
        let else_bb = b.block("else");
        let join = b.block("join");
        let dead = b.block("dead");
        let c = b.cmp(crate::ir::CmpOp::Slt, x, zero);
        b.cond_br(c, then_bb, else_bb);
        b.switch_to(then_bb);
        b.br(join);
        b.switch_to(else_bb);
        b.br(join);
        b.switch_to(join);
        b.ret(None);
        b.switch_to(dead);
        b.ret(None);
        b.build_unverified()
    }

    #[test]
    fn diamond_structure() {
        let f = diamond();
        let cfg = Cfg::compute(&f);
        let entry = f.entry();
        assert_eq!(cfg.succs(entry).len(), 2);
        let join = Block(3);
        assert_eq!(cfg.preds(join).len(), 2);
        assert!(cfg.reachable(join));
        assert!(!cfg.reachable(Block(4)), "dead block is unreachable");
    }

    #[test]
    fn rpo_starts_at_entry_and_ends_at_exit() {
        let f = diamond();
        let cfg = Cfg::compute(&f);
        assert_eq!(cfg.rpo()[0], f.entry());
        assert_eq!(*cfg.rpo().last().unwrap(), Block(3), "join is last in RPO");
        assert_eq!(cfg.rpo().len(), 4, "unreachable block not in RPO");
        assert_eq!(cfg.rpo_index(f.entry()), Some(0));
        assert_eq!(cfg.rpo_index(Block(4)), None);
    }

    #[test]
    fn self_loop() {
        let mut b = FunctionBuilder::new("l", &[]);
        let body = b.block("body");
        b.br(body);
        b.switch_to(body);
        b.br(body);
        let f = b.build_unverified();
        let cfg = Cfg::compute(&f);
        assert_eq!(cfg.succs(Block(1)), &[Block(1)]);
        assert!(cfg.preds(Block(1)).contains(&Block(1)));
    }

    #[test]
    fn condbr_with_equal_targets_has_one_succ() {
        let mut b = FunctionBuilder::new("e", &[("x", Type::I64)]);
        let x = b.param(0);
        let t = b.block("t");
        let c = b.cmp(crate::ir::CmpOp::Eq, x, x);
        b.cond_br(c, t, t);
        b.switch_to(t);
        b.ret(None);
        let f = b.build_unverified();
        let cfg = Cfg::compute(&f);
        assert_eq!(cfg.succs(f.entry()).len(), 1);
        assert_eq!(cfg.preds(t).len(), 1);
    }
}
