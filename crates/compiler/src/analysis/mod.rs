//! Analyses over the IR: control-flow graph, dominators, natural loops.

pub mod cfg;
pub mod dom;
pub mod loops;

pub use cfg::Cfg;
pub use dom::DomTree;
pub use loops::{Loop, LoopForest};
