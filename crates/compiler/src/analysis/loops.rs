//! Natural-loop detection from back edges.
//!
//! A back edge `latch -> header` exists when `header` dominates `latch`;
//! the natural loop is the set of blocks that can reach the latch without
//! passing through the header. The forest records nesting depth, exit
//! edges, and preheaders — everything region selection needs.

use std::collections::HashSet;

use crate::ir::{Block, Function};

use super::cfg::Cfg;
use super::dom::DomTree;

/// One natural loop.
#[derive(Debug, Clone)]
pub struct Loop {
    /// The loop header (target of the back edges).
    pub header: Block,
    /// Blocks branching back to the header from inside the loop.
    pub latches: Vec<Block>,
    /// All blocks in the loop (including header and latches).
    pub blocks: HashSet<Block>,
    /// Edges leaving the loop: `(from_inside, to_outside)`.
    pub exits: Vec<(Block, Block)>,
    /// Nesting depth (1 = outermost).
    pub depth: usize,
    /// The unique predecessor of the header from outside the loop, if any.
    pub preheader: Option<Block>,
}

impl Loop {
    /// Whether this is an innermost loop of its forest.
    ///
    /// (Stored at construction; exposed through [`LoopForest`].)
    pub fn contains(&self, b: Block) -> bool {
        self.blocks.contains(&b)
    }
}

/// All natural loops of a function.
#[derive(Debug, Clone)]
pub struct LoopForest {
    loops: Vec<Loop>,
}

impl LoopForest {
    /// Finds the natural loops of `f`.
    pub fn compute(_f: &Function, cfg: &Cfg, dom: &DomTree) -> Self {
        // Group back edges by header.
        let mut by_header: Vec<(Block, Vec<Block>)> = Vec::new();
        for &b in cfg.rpo() {
            for &s in cfg.succs(b) {
                if dom.dominates(s, b) {
                    match by_header.iter_mut().find(|(h, _)| *h == s) {
                        Some((_, latches)) => latches.push(b),
                        None => by_header.push((s, vec![b])),
                    }
                }
            }
        }

        let mut loops = Vec::new();
        for (header, latches) in by_header {
            // Natural loop body: reverse reachability from latches,
            // stopping at the header.
            let mut blocks: HashSet<Block> = HashSet::new();
            blocks.insert(header);
            let mut stack: Vec<Block> = latches.clone();
            while let Some(b) = stack.pop() {
                if blocks.insert(b) {
                    for &p in cfg.preds(b) {
                        stack.push(p);
                    }
                }
            }
            let mut exits = Vec::new();
            for &b in &blocks {
                for &s in cfg.succs(b) {
                    if !blocks.contains(&s) {
                        exits.push((b, s));
                    }
                }
            }
            exits.sort();
            let outside_preds: Vec<Block> = cfg
                .preds(header)
                .iter()
                .copied()
                .filter(|p| !blocks.contains(p))
                .collect();
            let preheader = match outside_preds.as_slice() {
                [single] if cfg.succs(*single).len() == 1 => Some(*single),
                _ => None,
            };
            loops.push(Loop { header, latches, blocks, exits, depth: 0, preheader });
        }

        // Nesting depth: a loop is nested in every loop that strictly
        // contains its header.
        let containers: Vec<usize> = loops
            .iter()
            .map(|l| {
                loops
                    .iter()
                    .filter(|o| o.header != l.header && o.blocks.contains(&l.header))
                    .count()
            })
            .collect();
        for (l, extra) in loops.iter_mut().zip(containers) {
            l.depth = 1 + extra;
        }
        LoopForest { loops }
    }

    /// All loops, unordered.
    pub fn loops(&self) -> &[Loop] {
        &self.loops
    }

    /// Innermost loops: loops containing no other loop's header.
    pub fn innermost(&self) -> Vec<&Loop> {
        self.loops
            .iter()
            .filter(|l| {
                !self
                    .loops
                    .iter()
                    .any(|o| o.header != l.header && l.blocks.contains(&o.header))
            })
            .collect()
    }

    /// The innermost loop containing `b`, if any.
    pub fn loop_of(&self, b: Block) -> Option<&Loop> {
        self.loops
            .iter()
            .filter(|l| l.contains(b))
            .max_by_key(|l| l.depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{CmpOp, FunctionBuilder, Type};

    /// entry -> loop(header==latch) -> exit
    fn simple_loop() -> Function {
        let mut b = FunctionBuilder::new("l", &[("n", Type::I64)]);
        let n = b.param(0);
        let zero = b.const_i(0);
        let one = b.const_i(1);
        let body = b.block("body");
        let exit = b.block("exit");
        let entry = b.current();
        b.br(body);
        b.switch_to(body);
        let i = b.phi(Type::I64);
        let i2 = b.bin(crate::ir::BinOp::Add, i, one);
        b.add_incoming(i, entry, zero);
        b.add_incoming(i, body, i2);
        let c = b.cmp(CmpOp::Slt, i2, n);
        b.cond_br(c, body, exit);
        b.switch_to(exit);
        b.ret(None);
        b.build_unverified()
    }

    /// Nested: outer loop over i, inner loop over j.
    fn nested_loops() -> Function {
        let mut b = FunctionBuilder::new("n", &[("n", Type::I64)]);
        let n = b.param(0);
        let zero = b.const_i(0);
        let one = b.const_i(1);
        let outer = b.block("outer");
        let inner = b.block("inner");
        let outer_latch = b.block("outer_latch");
        let exit = b.block("exit");
        let entry = b.current();
        b.br(outer);

        b.switch_to(outer);
        let i = b.phi(Type::I64);
        b.br(inner);

        b.switch_to(inner);
        let j = b.phi(Type::I64);
        let j2 = b.bin(crate::ir::BinOp::Add, j, one);
        b.add_incoming(j, outer, zero);
        b.add_incoming(j, inner, j2);
        let cj = b.cmp(CmpOp::Slt, j2, n);
        b.cond_br(cj, inner, outer_latch);

        b.switch_to(outer_latch);
        let i2 = b.bin(crate::ir::BinOp::Add, i, one);
        b.add_incoming(i, entry, zero);
        b.add_incoming(i, outer_latch, i2);
        let ci = b.cmp(CmpOp::Slt, i2, n);
        b.cond_br(ci, outer, exit);

        b.switch_to(exit);
        b.ret(None);
        b.build_unverified()
    }

    fn forest(f: &Function) -> LoopForest {
        let cfg = Cfg::compute(f);
        let dom = DomTree::compute(f, &cfg);
        LoopForest::compute(f, &cfg, &dom)
    }

    #[test]
    fn detects_single_loop() {
        let f = simple_loop();
        let lf = forest(&f);
        assert_eq!(lf.loops().len(), 1);
        let l = &lf.loops()[0];
        assert_eq!(l.header, Block(1));
        assert_eq!(l.latches, vec![Block(1)]);
        assert_eq!(l.blocks.len(), 1);
        assert_eq!(l.exits, vec![(Block(1), Block(2))]);
        assert_eq!(l.depth, 1);
        assert_eq!(l.preheader, Some(f.entry()));
    }

    #[test]
    fn detects_nesting() {
        let f = nested_loops();
        let lf = forest(&f);
        assert_eq!(lf.loops().len(), 2);
        let outer = lf.loops().iter().find(|l| l.header == Block(1)).unwrap();
        let inner = lf.loops().iter().find(|l| l.header == Block(2)).unwrap();
        assert_eq!(outer.depth, 1);
        assert_eq!(inner.depth, 2);
        assert!(outer.blocks.contains(&inner.header));
        let innermost = lf.innermost();
        assert_eq!(innermost.len(), 1);
        assert_eq!(innermost[0].header, inner.header);
    }

    #[test]
    fn loop_of_finds_deepest() {
        let f = nested_loops();
        let lf = forest(&f);
        assert_eq!(lf.loop_of(Block(2)).unwrap().depth, 2);
        assert_eq!(lf.loop_of(Block(3)).unwrap().depth, 1, "outer latch is outer-only");
        assert!(lf.loop_of(Block(4)).is_none(), "exit is in no loop");
    }

    #[test]
    fn straightline_has_no_loops() {
        let mut b = FunctionBuilder::new("s", &[]);
        b.ret(None);
        let f = b.build_unverified();
        assert!(forest(&f).loops().is_empty());
    }
}
