//! Dominator tree via the Cooper–Harvey–Kennedy iterative algorithm.

use crate::ir::{Block, Function};

use super::cfg::Cfg;

/// Immediate-dominator tree over the reachable blocks of a function.
#[derive(Debug, Clone)]
pub struct DomTree {
    /// `idom[b] = immediate dominator` (entry maps to itself).
    idom: Vec<Option<Block>>,
    rpo_index: Vec<Option<usize>>,
    entry: Block,
}

impl DomTree {
    /// Computes dominators for `f` given its CFG.
    pub fn compute(f: &Function, cfg: &Cfg) -> Self {
        let n = f.block_count();
        let entry = f.entry();
        let mut idom: Vec<Option<Block>> = vec![None; n];
        idom[entry.index()] = Some(entry);

        let mut changed = true;
        while changed {
            changed = false;
            for &b in cfg.rpo().iter().skip(1) {
                // First processed predecessor with a known idom.
                let mut new_idom: Option<Block> = None;
                for &p in cfg.preds(b) {
                    if idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => Self::intersect_raw(&idom, cfg, cur, p),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }

        DomTree {
            idom,
            rpo_index: (0..n).map(|i| cfg.rpo_index(Block(i as u32))).collect(),
            entry,
        }
    }

    fn intersect_raw(idom: &[Option<Block>], cfg: &Cfg, a: Block, b: Block) -> Block {
        let (mut x, mut y) = (a, b);
        while x != y {
            let xi = cfg.rpo_index(x).expect("reachable");
            let yi = cfg.rpo_index(y).expect("reachable");
            if xi > yi {
                x = idom[x.index()].expect("processed");
            } else {
                y = idom[y.index()].expect("processed");
            }
        }
        x
    }

    /// The immediate dominator of `b` (`None` for the entry and for
    /// unreachable blocks).
    pub fn idom(&self, b: Block) -> Option<Block> {
        if b == self.entry {
            None
        } else {
            self.idom[b.index()]
        }
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: Block, b: Block) -> bool {
        if self.rpo_index[b.index()].is_none() {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if cur == self.entry {
                return false;
            }
            match self.idom[cur.index()] {
                Some(next) => cur = next,
                None => return false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{CmpOp, FunctionBuilder, Type};

    /// entry -> (then|else) -> join -> (loop back to join | exit)
    fn build() -> (Function, Cfg, DomTree) {
        let mut b = FunctionBuilder::new("g", &[("x", Type::I64)]);
        let x = b.param(0);
        let zero = b.const_i(0);
        let then_bb = b.block("then");
        let else_bb = b.block("else");
        let join = b.block("join");
        let exit = b.block("exit");
        let c = b.cmp(CmpOp::Slt, x, zero);
        b.cond_br(c, then_bb, else_bb);
        b.switch_to(then_bb);
        b.br(join);
        b.switch_to(else_bb);
        b.br(join);
        b.switch_to(join);
        let c2 = b.cmp(CmpOp::Sgt, x, zero);
        b.cond_br(c2, join, exit);
        b.switch_to(exit);
        b.ret(None);
        let f = b.build_unverified();
        let cfg = Cfg::compute(&f);
        let dom = DomTree::compute(&f, &cfg);
        (f, cfg, dom)
    }

    #[test]
    fn entry_dominates_everything() {
        let (f, cfg, dom) = build();
        for &b in cfg.rpo() {
            assert!(dom.dominates(f.entry(), b));
        }
    }

    #[test]
    fn join_idom_is_entry() {
        let (f, _, dom) = build();
        // join (block 3) is reached via then/else; its idom is entry.
        assert_eq!(dom.idom(Block(3)), Some(f.entry()));
    }

    #[test]
    fn branch_arms_do_not_dominate_join() {
        let (_, _, dom) = build();
        assert!(!dom.dominates(Block(1), Block(3)));
        assert!(!dom.dominates(Block(2), Block(3)));
        assert!(dom.dominates(Block(3), Block(4)), "join dominates exit");
    }

    #[test]
    fn dominance_is_reflexive_and_antisymmetric() {
        let (_, cfg, dom) = build();
        for &a in cfg.rpo() {
            assert!(dom.dominates(a, a));
            for &b in cfg.rpo() {
                if a != b {
                    assert!(
                        !(dom.dominates(a, b) && dom.dominates(b, a)),
                        "{a:?} and {b:?} mutually dominate"
                    );
                }
            }
        }
    }

    #[test]
    fn entry_has_no_idom() {
        let (f, _, dom) = build();
        assert_eq!(dom.idom(f.entry()), None);
    }
}
