//! # dyser-compiler
//!
//! The co-designed DySER compiler, rebuilt from scratch on a small SSA IR
//! (the original prototype implements these passes inside LLVM; the
//! substitution is documented in `DESIGN.md`).
//!
//! The pipeline mirrors the paper's compiler:
//!
//! 1. **Front end** — kernels are written against the [`ir`] builder API
//!    (or parsed from the textual form) as ordinary loops over memory.
//! 2. **Middle end** — [`analysis`] (CFG, dominators, natural loops) and
//!    [`opt`] (constant folding, DCE, *if-conversion* into `select`,
//!    loop unrolling).
//! 3. **Region selection & slicing** — [`dyser`] finds acceleratable
//!    inner-loop regions, classifies their *control-flow shape* (the
//!    paper's finding: two shapes curtail the compiler), and slices each
//!    region into an **access slice** (addresses, loads, stores, loop
//!    control — stays on the core) and a **compute slice** (pure dataflow
//!    — moves to the fabric).
//! 4. **Spatial scheduling** — [`schedule`] places and routes the compute
//!    slice onto the fabric, producing a [`dyser_fabric::FabricConfig`].
//! 5. **Code generation** — [`codegen`] emits SPARC machine code twice
//!    from the same IR: a scalar **baseline** binary and a **DySER**
//!    binary in which each accelerated region becomes a send/compute/recv
//!    loop whose store-only outputs are software-pipelined to a depth
//!    chosen from the spatial schedule's critical path.
//!
//! The top-level driver is [`compile`]; see [`CompiledProgram`].


#![warn(missing_docs)]
pub mod analysis;
pub mod codegen;
pub mod dyser;
pub mod ir;
pub mod opt;
pub mod pipeline;
pub mod schedule;

pub use codegen::{Program, CODE_BASE, POOL_BASE, SPILL_BASE};
pub use dyser::{classify_loops, LoopShape, Region, RegionOptions, ShapeReport, ShapeSummary};
pub use ir::{BinOp, Block, CmpOp, Function, FunctionBuilder, Module, Terminator, Type, UnOp, Value};
pub use opt::{Pass, PassSpec};
pub use pipeline::{compile, CompileError, CompiledProgram, CompilerOptions, RegionFate, RegionReport};
pub use schedule::{schedule_region, Schedule, ScheduleError, ScheduleOptions};
