//! The top-level compilation driver.
//!
//! [`compile`] runs the full co-designed pipeline on one kernel and
//! returns **both** evaluation binaries — the scalar baseline and the
//! DySER-accelerated program — generated from the *same* optimised IR, so
//! any speedup is attributable to the execution model rather than to
//! middle-end differences (mirroring the paper's methodology of comparing
//! OpenSPARC against SPARC-DySER on identically compiled sources).

use std::fmt;

use dyser_fabric::{FabricGeometry, FuKind};

use crate::codegen::{codegen_accel, codegen_baseline, CodegenError, CodegenOptions, Program};
use crate::dyser::region::{select_regions, RegionOptions};
use crate::dyser::shapes::{classify_loops, ShapeReport};
use crate::ir::Function;
use crate::opt::{cleanup, if_convert, licm, unroll_innermost, PassSpec, UnrollOutcome};
use crate::schedule::{schedule_region, Schedule, ScheduleError, ScheduleOptions};

/// Options for the whole pipeline.
#[derive(Debug, Clone)]
pub struct CompilerOptions {
    /// Apply if-conversion before region selection.
    pub if_convert: bool,
    /// Unroll the innermost canonical loop by this factor (1 = off).
    pub unroll_factor: usize,
    /// Region-selection knobs.
    pub region: RegionOptions,
    /// Spatial-scheduling knobs.
    pub schedule: ScheduleOptions,
    /// Code-generation knobs.
    pub codegen: CodegenOptions,
    /// Target fabric geometry.
    pub geometry: FabricGeometry,
    /// Per-site hardware kinds (row-major); `None` = the default pattern.
    pub kinds: Option<Vec<FuKind>>,
    /// Declarative middle-end override: when set, this pass combination
    /// replaces the built-in `ifconv + licm + cleanup + unroll + cleanup`
    /// sequence entirely (the `if_convert`/`unroll_factor` knobs are then
    /// ignored, except that `unroll` passes in the spec still drive the
    /// region-selection restriction and resource fallback).
    pub middle_end: Option<PassSpec>,
}

impl Default for CompilerOptions {
    fn default() -> Self {
        CompilerOptions {
            if_convert: true,
            unroll_factor: 4,
            region: RegionOptions::default(),
            schedule: ScheduleOptions::default(),
            codegen: CodegenOptions::default(),
            geometry: FabricGeometry::new(8, 8),
            kinds: None,
            middle_end: None,
        }
    }
}

impl CompilerOptions {
    /// Options for a given geometry with everything else default.
    pub fn for_geometry(geometry: FabricGeometry) -> Self {
        CompilerOptions { geometry, ..Default::default() }
    }
}

/// Why a selected region was not accelerated.
#[derive(Debug, Clone)]
pub enum RegionFate {
    /// Mapped onto the fabric.
    Accelerated,
    /// The spatial scheduler could not map it.
    Unmapped(ScheduleError),
}

/// Per-region report for the evaluation tables.
#[derive(Debug, Clone)]
pub struct RegionReport {
    /// Region name.
    pub name: String,
    /// Compute-slice operations.
    pub compute_ops: usize,
    /// Fabric inputs.
    pub inputs: usize,
    /// Fabric outputs.
    pub outputs: usize,
    /// Whether the exit condition was offloaded (adaptive mechanism).
    pub exit_condition_offloaded: bool,
    /// What happened to the region.
    pub fate: RegionFate,
}

/// The result of compiling one kernel.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// The scalar baseline binary.
    pub baseline: Program,
    /// The DySER-accelerated binary (identical to `baseline` when no
    /// region was accelerated).
    pub accelerated: Program,
    /// Region reports.
    pub regions: Vec<RegionReport>,
    /// Control-flow shape classification of the *original* function.
    pub shapes: Vec<ShapeReport>,
    /// Whether any region was accelerated.
    pub accelerated_any: bool,
}

/// Compilation failures.
#[derive(Debug, Clone)]
pub enum CompileError {
    /// Code generation failed.
    Codegen(CodegenError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Codegen(e) => write!(f, "codegen: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<CodegenError> for CompileError {
    fn from(e: CodegenError) -> Self {
        CompileError::Codegen(e)
    }
}

/// Compiles `f` into baseline and accelerated programs.
///
/// # Errors
///
/// Returns an error when code generation fails; scheduling failures
/// degrade gracefully (the region is left on the core and reported).
pub fn compile(f: &Function, options: &CompilerOptions) -> Result<CompiledProgram, CompileError> {
    let shapes = classify_loops(f);

    let kinds: Vec<FuKind> = options.kinds.clone().unwrap_or_else(|| {
        options.geometry.fus().map(|fu| FuKind::default_pattern(fu.row, fu.col)).collect()
    });

    // The compiler picks the largest unroll factor whose compute slice the
    // spatial scheduler can map, halving on failure — the prototype's
    // compiler applies the same resource-driven degradation.
    let requested_factor = match &options.middle_end {
        Some(spec) => spec
            .passes()
            .iter()
            .filter_map(|p| match p {
                crate::opt::Pass::Unroll(n) => Some(*n),
                _ => None,
            })
            .max()
            .unwrap_or(1),
        None => options.unroll_factor,
    };
    let mut factor = requested_factor.max(1);
    loop {
        // Shared middle end: both binaries see the same optimised IR.
        let mut opt = f.clone();
        let mut region_opts = options.region;
        match &options.middle_end {
            Some(spec) => {
                // Re-scale any unroll passes by the current fallback factor.
                let scaled: Vec<crate::opt::Pass> = spec
                    .passes()
                    .iter()
                    .map(|p| match p {
                        crate::opt::Pass::Unroll(n) => {
                            crate::opt::Pass::Unroll((*n).min(factor).max(2))
                        }
                        other => other.clone(),
                    })
                    .collect();
                for pass in &scaled {
                    if let crate::opt::Pass::Unroll(n) = pass {
                        if factor > 1 {
                            if let UnrollOutcome::Unrolled { body, .. } =
                                unroll_innermost(&mut opt, *n)
                            {
                                region_opts.only_block = Some(body);
                            }
                        }
                    } else {
                        let single = PassSpec::from_passes(vec![pass.clone()]);
                        single.apply(&mut opt);
                    }
                }
            }
            None => {
                if options.if_convert {
                    if_convert(&mut opt);
                }
                licm(&mut opt);
                cleanup(&mut opt);
                if factor > 1 {
                    if let UnrollOutcome::Unrolled { body, .. } = unroll_innermost(&mut opt, factor)
                    {
                        region_opts.only_block = Some(body);
                    }
                    cleanup(&mut opt);
                }
            }
        }

        let mut reports = Vec::new();
        let mut scheduled: Vec<(crate::dyser::region::Region, Schedule)> = Vec::new();
        let mut any_unmapped = false;
        for region in select_regions(&opt, &region_opts) {
            let report_base = RegionReport {
                name: region.name.clone(),
                compute_ops: region.compute.len(),
                inputs: region.inputs.len(),
                outputs: region.outputs.len(),
                exit_condition_offloaded: region.exit_condition_offloaded,
                fate: RegionFate::Accelerated,
            };
            match schedule_region(&opt, &region, options.geometry, &kinds, &options.schedule) {
                Ok(schedule) => {
                    scheduled.push((region, schedule));
                    reports.push(report_base);
                }
                Err(e) => {
                    any_unmapped = true;
                    reports.push(RegionReport { fate: RegionFate::Unmapped(e), ..report_base });
                }
            }
        }

        if any_unmapped && factor > 1 {
            factor /= 2;
            continue;
        }

        let baseline = codegen_baseline(&opt)?;
        let accelerated_any = !scheduled.is_empty();
        let accelerated = if accelerated_any {
            codegen_accel(&opt, scheduled, options.codegen)?
        } else {
            baseline.clone()
        };
        return Ok(CompiledProgram { baseline, accelerated, regions: reports, shapes, accelerated_any });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinOp, CmpOp, FunctionBuilder, Type};

    fn saxpyish() -> Function {
        let mut b = FunctionBuilder::new(
            "saxpy",
            &[("a", Type::Ptr), ("b", Type::Ptr), ("c", Type::Ptr), ("n", Type::I64)],
        );
        let (a, bb, c, n) = (b.param(0), b.param(1), b.param(2), b.param(3));
        let zero = b.const_i(0);
        let one = b.const_i(1);
        let two = b.const_f(2.0);
        let body = b.block("body");
        let exit = b.block("exit");
        let entry = b.current();
        b.br(body);
        b.switch_to(body);
        let i = b.phi(Type::I64);
        let pa = b.gep(a, i, 8);
        let pb = b.gep(bb, i, 8);
        let va = b.load(pa, Type::F64);
        let vb = b.load(pb, Type::F64);
        let scaled = b.bin(BinOp::Fmul, va, two);
        let sum = b.bin(BinOp::Fadd, scaled, vb);
        let pc = b.gep(c, i, 8);
        b.store(sum, pc);
        let i2 = b.bin(BinOp::Add, i, one);
        b.add_incoming(i, entry, zero);
        b.add_incoming(i, body, i2);
        let cond = b.cmp(CmpOp::Slt, i2, n);
        b.cond_br(cond, body, exit);
        b.switch_to(exit);
        b.ret(None);
        b.build().unwrap()
    }

    #[test]
    fn full_pipeline_produces_both_binaries() {
        let f = saxpyish();
        let out = compile(&f, &CompilerOptions::default()).unwrap();
        assert!(out.accelerated_any, "{:?}", out.regions);
        assert!(!out.baseline.is_empty());
        assert!(!out.accelerated.is_empty());
        assert_eq!(out.accelerated.configs.len(), 1);
        assert!(out.baseline.configs.is_empty());
        // The accelerated binary must actually contain DySER instructions.
        let has_dyser = out
            .accelerated
            .listing
            .iter()
            .any(|i| matches!(i, dyser_isa::Instr::Dyser(_)));
        assert!(has_dyser);
        let base_has_dyser = out
            .baseline
            .listing
            .iter()
            .any(|i| matches!(i, dyser_isa::Instr::Dyser(_)));
        assert!(!base_has_dyser);
    }

    #[test]
    fn unrolling_multiplies_compute_ops() {
        let f = saxpyish();
        let o1 = CompilerOptions { unroll_factor: 1, ..Default::default() };
        let o4 = CompilerOptions { unroll_factor: 4, ..Default::default() };
        let r1 = compile(&f, &o1).unwrap();
        let r4 = compile(&f, &o4).unwrap();
        let ops1: usize = r1.regions.iter().map(|r| r.compute_ops).sum();
        let ops4: usize = r4.regions.iter().map(|r| r.compute_ops).sum();
        assert!(ops4 >= 4 * ops1, "unroll x4 should ~quadruple the slice: {ops1} -> {ops4}");
    }

    #[test]
    fn shape_reports_present() {
        let f = saxpyish();
        let out = compile(&f, &CompilerOptions::default()).unwrap();
        assert_eq!(out.shapes.len(), 1);
        assert!(out.shapes[0].shape.acceleratable());
    }

    #[test]
    fn tiny_fabric_degrades_gracefully() {
        let f = saxpyish();
        let opts = CompilerOptions {
            geometry: FabricGeometry::new(1, 1),
            kinds: Some(vec![FuKind::IntSimple]),
            ..Default::default()
        };
        let out = compile(&f, &opts).unwrap();
        assert!(!out.accelerated_any);
        assert!(out
            .regions
            .iter()
            .all(|r| matches!(r.fate, RegionFate::Unmapped(_))));
        // Accelerated binary falls back to the baseline.
        assert_eq!(out.accelerated.code, out.baseline.code);
    }
}
