//! Code generation: from IR to SPARC-DySER machine code.
//!
//! One back end serves both evaluation binaries:
//!
//! * **baseline** — every instruction lowered to scalar SPARC code;
//! * **accelerated** — each selected region's compute slice is deleted
//!   from the instruction stream and replaced by the DySER interface
//!   protocol: `dinit` in the loop preheader, `dload`/`dsend` where the
//!   inputs arise, `drecv` where core-consumed results were defined, and
//!   `dstore` for store-only results — *software-pipelined several
//!   iterations deep* (the depth picked per region from the spatial
//!   schedule's critical path) so consecutive fabric invocations overlap.
//!
//! Lowering details:
//!
//! * linear-scan register allocation over SSA values with spilling to a
//!   fixed frame (`%g6` holds the frame base; `%g5`/`%g7`/`%f30`/`%f31`
//!   are reserved scratch),
//! * phi elimination by parallel copies at predecessor ends (cycles broken
//!   through scratch),
//! * compare-and-branch fusion for single-use conditions,
//! * `f64` constants in a constant pool loaded at a fixed address,
//! * SPARC delay slots filled with `nop` (a deliberate simplification —
//!   both binaries pay it equally).

use std::collections::{HashMap, HashSet};
use std::fmt;

use dyser_fabric::FabricConfig;
use dyser_isa::{
    regs, AluOp, AsmError, Assembler, ConfigId, DyserInstr, FCond, FReg, ICond, Instr, LoadKind,
    Op2, Port, RCond, Reg, StoreKind,
};

use crate::analysis::Cfg;
use crate::dyser::region::{OutputKind, Region, RegionInput};
use crate::ir::{BinOp, Block, CmpOp, Function, Inst, Terminator, Type, UnOp, Value, ValueKind};
use crate::schedule::Schedule;

/// Where generated code is placed in physical memory.
pub const CODE_BASE: u64 = 0x1_0000;
/// Where the `f64` constant pool is placed.
pub const POOL_BASE: u64 = 0xC000;
/// Where the spill frame is placed (`%g6` points here).
pub const SPILL_BASE: u64 = 0x8000;

/// Spill slot 0 is the int<->fp conversion staging slot.
const CONV_SLOT: i16 = 0;

/// A compiled program image.
#[derive(Debug, Clone)]
pub struct Program {
    /// Encoded instruction words, to be written at [`Program::entry`].
    pub code: Vec<u32>,
    /// The resolved instruction listing (disassembly view of `code`).
    pub listing: Vec<Instr>,
    /// Entry address.
    pub entry: u64,
    /// Constant-pool words, to be written at [`POOL_BASE`].
    pub pool: Vec<u64>,
    /// Number of spill slots used (8 bytes each at [`SPILL_BASE`]).
    pub spill_slots: usize,
    /// Fabric configuration table (`dinit N` loads `configs[N]`).
    pub configs: Vec<FabricConfig>,
}

impl Program {
    /// Static instruction count.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// A human-readable listing.
    pub fn disassemble(&self) -> String {
        let mut s = String::new();
        for (i, instr) in self.listing.iter().enumerate() {
            s.push_str(&format!("{:#08x}:  {instr}\n", self.entry + 4 * i as u64));
        }
        s
    }
}

/// Code-generation failures.
#[derive(Debug, Clone, PartialEq)]
pub enum CodegenError {
    /// More than six parameters (the `%o0..%o5` convention).
    TooManyParams {
        /// The function name.
        function: String,
    },
    /// The spill frame overflowed its addressable range.
    FrameOverflow,
    /// Internal assembler failure (a codegen bug).
    Asm(AsmError),
    /// A region references state codegen cannot honour.
    BadRegion(String),
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodegenError::TooManyParams { function } => {
                write!(f, "function `{function}` has more than 6 parameters")
            }
            CodegenError::FrameOverflow => write!(f, "spill frame exceeds the imm13 range"),
            CodegenError::Asm(e) => write!(f, "assembler error: {e}"),
            CodegenError::BadRegion(m) => write!(f, "bad region: {m}"),
        }
    }
}

impl std::error::Error for CodegenError {}

impl From<AsmError> for CodegenError {
    fn from(e: AsmError) -> Self {
        CodegenError::Asm(e)
    }
}

/// Where a value lives at run time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    IReg(Reg),
    FReg(FReg),
    Spill(i16),
    /// Pure fabric-internal value: no core location.
    None,
}

/// Scratch registers (never allocated).
const SCRATCH_A: Reg = regs::G7;
const SCRATCH_B: Reg = regs::G5;
const FRAME: Reg = regs::G6;
const FSCRATCH_A: FReg = FReg::new(30);
const FSCRATCH_B: FReg = FReg::new(31);

fn int_pool() -> Vec<Reg> {
    // l0-l7, i0-i5, g1-g4 (o-regs are the parameter registers, g5-g7
    // reserved). Listed in allocation preference order.
    let mut v = Vec::new();
    for i in 16..24 {
        v.push(Reg::new(i)); // locals
    }
    for i in 24..30 {
        v.push(Reg::new(i)); // ins
    }
    for i in 1..5 {
        v.push(Reg::new(i)); // globals 1-4
    }
    v
}

fn fp_pool() -> Vec<FReg> {
    (0..30).map(FReg::new).collect()
}

/// Per-region codegen state.
struct RegionCtx {
    region: Region,
    config_id: u16,
    /// Store-only outputs software-pipelined `lag_depth` iterations deep:
    /// `(output port, store ptr value, rotating address registers)` where
    /// `prevs[0]` holds the newest deferred address and `prevs[D-1]` the
    /// oldest.
    lagged: Vec<(usize, Value, Vec<Reg>)>,
    /// Store-only outputs stored immediately (lagging disabled):
    /// `store value -> output index`.
    immediate_stores: HashMap<Value, usize>,
    /// Counts down from `lag_depth`; zero once the pipeline is full.
    warmup: Reg,
    /// The lag depth in use for this region.
    lag_depth: usize,
    /// Input port by IR value.
    input_port: HashMap<Value, usize>,
    /// Output port by IR value.
    output_port: HashMap<Value, usize>,
    /// Values in the compute slice.
    compute: HashSet<Value>,
    /// Compute values received into core registers.
    core_use: HashSet<Value>,
}

/// Options for code generation.
#[derive(Debug, Clone, Copy)]
pub struct CodegenOptions {
    /// Lag store-only outputs behind the sends (requires the kernel's
    /// loads and stores to be independent across `lag_depth` adjacent
    /// iterations — guaranteed by the workload suite; see `DESIGN.md`).
    pub lag_stores: bool,
    /// Upper bound on how many iterations deep to pipeline store-only
    /// outputs (1..=4). The code generator picks the actual depth per
    /// region from the spatial schedule's critical-path estimate: deep
    /// fabric pipelines need deep lag to stay full, while shallow ones
    /// only pay rotation overhead for it.
    pub lag_depth: usize,
}

impl Default for CodegenOptions {
    fn default() -> Self {
        CodegenOptions { lag_stores: true, lag_depth: 4 }
    }
}

/// Generates the scalar baseline program.
///
/// # Errors
///
/// Returns a [`CodegenError`] on convention violations or internal
/// assembly failures.
pub fn codegen_baseline(f: &Function) -> Result<Program, CodegenError> {
    FnCodegen::new(f, Vec::new(), CodegenOptions::default())?.run()
}

/// Generates the DySER-accelerated program: each `(region, schedule)`
/// pair's compute slice is replaced by interface code.
///
/// # Errors
///
/// Returns a [`CodegenError`] on convention violations, inconsistent
/// regions, or internal assembly failures.
pub fn codegen_accel(
    f: &Function,
    regions: Vec<(Region, Schedule)>,
    options: CodegenOptions,
) -> Result<Program, CodegenError> {
    FnCodegen::new(f, regions, options)?.run()
}

struct FnCodegen<'f> {
    f: &'f Function,
    order: Vec<Block>,
    /// Linear index of every block's start and end.
    block_range: HashMap<Block, (usize, usize)>,
    /// Definition index of every instruction value.
    def_idx: HashMap<Value, usize>,
    loc: HashMap<Value, Loc>,
    regions: HashMap<Block, RegionCtx>,
    spill_slots: usize,
    pool: Vec<u64>,
    pool_index: HashMap<u64, usize>,
    asm: Assembler,
    label_counter: usize,
    /// Conditions fused into their block's terminator.
    fused: HashMap<Block, Value>,
    configs: Vec<FabricConfig>,
}

impl<'f> FnCodegen<'f> {
    fn new(
        f: &'f Function,
        region_scheds: Vec<(Region, Schedule)>,
        options: CodegenOptions,
    ) -> Result<Self, CodegenError> {
        if f.params().len() > 6 {
            return Err(CodegenError::TooManyParams { function: f.name().to_owned() });
        }
        let cfg = Cfg::compute(f);
        let order: Vec<Block> = cfg.rpo().to_vec();

        // Linear indices: one slot per instruction, plus one slot for each
        // block start (phi defs) and end (copies/terminator).
        let mut idx = 0usize;
        let mut block_range = HashMap::new();
        let mut def_idx = HashMap::new();
        for &b in &order {
            let start = idx;
            idx += 1; // block start slot
            for &v in &f.block(b).insts {
                def_idx.insert(v, idx);
                idx += 1;
            }
            let end = idx;
            idx += 1; // block end slot
            block_range.insert(b, (start, end));
        }

        // Reserve region registers from the back of the int pool.
        let mut pool = int_pool();
        let mut regions = HashMap::new();
        let mut configs = Vec::new();
        for (region, schedule) in region_scheds {
            let mut lagged = Vec::new();
            let mut immediate_stores = HashMap::new();
            let mut output_port = HashMap::new();
            let mut core_use = HashSet::new();
            // Depth heuristic: one extra iteration of lag per ~32 cycles of
            // fabric critical path, bounded by the option.
            let depth = ((schedule.depth_estimate as usize + 16) / 32)
                .clamp(1, options.lag_depth.clamp(1, 4));
            // Lagging reorders store-only outputs relative to every other
            // store in the body — other lagged outputs, but also plain
            // core-side `stx`s (e.g. a folded value that never enters the
            // fabric). When any two stores in the body go through the same
            // pointer value the hazard is statically visible, and lag
            // reordering would let the earlier store win — fall back to
            // immediate in-order `dstore`s for the whole region.
            let mut store_ptrs = HashSet::new();
            let mut stores_may_alias = false;
            for &v in &f.block(region.body).insts {
                if let Some(Inst::Store { ptr, .. }) = f.as_inst(v) {
                    stores_may_alias |= !store_ptrs.insert(*ptr);
                }
            }
            let lag_ok = options.lag_stores && !stores_may_alias;
            for (j, out) in region.outputs.iter().enumerate() {
                output_port.insert(out.value, schedule.output_ports[j]);
                match &out.kind {
                    OutputKind::StoreOnly { stores } => {
                        // One fabric output value arrives per invocation, so
                        // `dstore` can consume it exactly once. The common
                        // single-store case is lagged (software-pipelined);
                        // it falls back to an immediate dstore when the pool
                        // cannot spare rotation registers. A value stored to
                        // *several* locations is received into a register
                        // instead — two dstores on one port would each wait
                        // for their own value and deadlock.
                        if stores.len() != 1 {
                            core_use.insert(out.value);
                        } else if lag_ok && pool.len() > depth + 4 {
                            let store = stores[0];
                            let Some(Inst::Store { ptr, .. }) = f.as_inst(store) else {
                                return Err(CodegenError::BadRegion(
                                    "store-only output without a store".into(),
                                ));
                            };
                            let prevs: Vec<Reg> =
                                (0..depth).map(|_| pool.pop().expect("len checked")).collect();
                            lagged.push((schedule.output_ports[j], *ptr, prevs));
                        } else {
                            immediate_stores.insert(stores[0], schedule.output_ports[j]);
                        }
                    }
                    OutputKind::CoreUse => {
                        core_use.insert(out.value);
                    }
                }
            }
            let warmup = pool.pop().ok_or(CodegenError::FrameOverflow)?;
            let mut input_port = HashMap::new();
            for (i, input) in region.inputs.iter().enumerate() {
                input_port.insert(input.value(), schedule.input_ports[i]);
            }
            let config_id = configs.len() as u16;
            configs.push(schedule.config.clone());
            let compute: HashSet<Value> = region.compute.iter().copied().collect();
            regions.insert(
                region.body,
                RegionCtx {
                    region,
                    config_id,
                    lagged,
                    immediate_stores,
                    warmup,
                    lag_depth: depth,
                    input_port,
                    output_port,
                    compute,
                    core_use,
                },
            );
        }

        let mut cg = FnCodegen {
            f,
            order,
            block_range,
            def_idx,
            loc: HashMap::new(),
            regions,
            spill_slots: 1, // slot 0 = conversion staging
            pool: Vec::new(),
            pool_index: HashMap::new(),
            asm: Assembler::new(),
            label_counter: 0,
            fused: HashMap::new(),
            configs,
        };
        cg.allocate(pool)?;
        cg.find_fusions();
        Ok(cg)
    }

    // ---------------- register allocation ----------------

    /// Values that never need a core location.
    fn needs_no_loc(&self, v: Value) -> bool {
        if self.f.ty(v) == Type::Unit || self.f.is_const(v) {
            return true;
        }
        for ctx in self.regions.values() {
            if ctx.compute.contains(&v) && !ctx.core_use.contains(&v) {
                return true;
            }
            if let Some(Inst::Load { .. }) = self.f.as_inst(v) {
                if matches!(
                    ctx.region.inputs.iter().find(|i| i.value() == v),
                    Some(RegionInput::Load { .. })
                ) {
                    return true;
                }
            }
        }
        false
    }

    fn allocate(&mut self, ipool: Vec<Reg>) -> Result<(), CodegenError> {
        // Build live intervals.
        #[derive(Debug, Clone, Copy)]
        struct Interval {
            start: usize,
            end: usize,
        }
        let mut intervals: HashMap<Value, Interval> = HashMap::new();
        let touch = |map: &mut HashMap<Value, Interval>, v: Value, at: usize| {
            let e = map.entry(v).or_insert(Interval { start: at, end: at });
            e.start = e.start.min(at);
            e.end = e.end.max(at);
        };

        // Params are defined at index 0.
        for i in 0..self.f.params().len() {
            touch(&mut intervals, self.f.param(i), 0);
        }
        for &b in &self.order {
            let (bstart, bend) = self.block_range[&b];
            for &v in &self.f.block(b).insts {
                let at = self.def_idx[&v];
                let Some(inst) = self.f.as_inst(v) else { continue };
                if matches!(inst, Inst::Phi { .. }) {
                    // Phi defined at block start; copy points handled below.
                    touch(&mut intervals, v, bstart);
                } else {
                    touch(&mut intervals, v, at);
                    for o in self.f.operands(v) {
                        if !self.f.is_const(o) {
                            touch(&mut intervals, o, at);
                        }
                    }
                }
            }
            // Terminator condition used at block end.
            if let Terminator::CondBr { cond, .. } = &self.f.block(b).term {
                if !self.f.is_const(*cond) {
                    touch(&mut intervals, *cond, bend);
                }
            }
            if let Terminator::Ret(Some(v)) = &self.f.block(b).term {
                if !self.f.is_const(*v) {
                    touch(&mut intervals, *v, bend);
                }
            }
            // Phi copies: at the end of each predecessor, the incoming
            // value is read and the phi location written.
            for &s in Cfg::compute(self.f).succs(b) {
                for &pv in &self.f.block(s).insts {
                    if let Some(Inst::Phi { incomings }) = self.f.as_inst(pv) {
                        for (pred, iv) in incomings {
                            if *pred == b {
                                if !self.f.is_const(*iv) {
                                    touch(&mut intervals, *iv, bend);
                                }
                                touch(&mut intervals, pv, bend);
                            }
                        }
                    }
                }
            }
            // Region extras: lagged store addresses are read at block end
            // (the rotation move) and in the exit block (the drain).
            if let Some(ctx) = self.regions.get(&b) {
                for (_, ptr, _) in &ctx.lagged {
                    touch(&mut intervals, *ptr, bend);
                }
            }
        }

        // Values live into a loop stay live across its back edge: extend
        // their intervals to the loop's end, or the allocator would hand
        // their registers to loop-local values and clobber them on the
        // second iteration.
        {
            let cfg = Cfg::compute(self.f);
            let dom = crate::analysis::DomTree::compute(self.f, &cfg);
            let forest = crate::analysis::LoopForest::compute(self.f, &cfg, &dom);
            let spans: Vec<(usize, usize)> = forest
                .loops()
                .iter()
                .filter_map(|l| {
                    let mut lo = usize::MAX;
                    let mut hi = 0usize;
                    for b in &l.blocks {
                        let Some(&(s, e)) = self.block_range.get(b) else { continue };
                        lo = lo.min(s);
                        hi = hi.max(e);
                    }
                    (lo != usize::MAX).then_some((lo, hi))
                })
                .collect();
            let mut changed = true;
            while changed {
                changed = false;
                for iv in intervals.values_mut() {
                    for &(lo, hi) in &spans {
                        if iv.start < lo && iv.end >= lo && iv.end < hi {
                            iv.end = hi;
                            changed = true;
                        }
                    }
                }
            }
        }

        // Linear scan, separate int and fp pools.
        let mut items: Vec<(Value, Interval)> = intervals
            .iter()
            .filter(|(v, _)| !self.needs_no_loc(**v))
            .map(|(v, i)| (*v, *i))
            .collect();
        items.sort_by_key(|(v, i)| (i.start, v.index()));

        let mut free_i = ipool;
        let mut free_f = fp_pool();
        let mut active: Vec<(Value, Interval)> = Vec::new();

        for (v, iv) in items {
            // Expire.
            let mut still_active = Vec::new();
            for (av, ai) in active.drain(..) {
                if ai.end < iv.start {
                    match self.loc[&av] {
                        Loc::IReg(r) => free_i.push(r),
                        Loc::FReg(r) => free_f.push(r),
                        _ => {}
                    }
                } else {
                    still_active.push((av, ai));
                }
            }
            active = still_active;

            let is_fp = self.f.ty(v) == Type::F64;
            let assigned = if is_fp {
                free_f.pop().map(Loc::FReg)
            } else {
                free_i.pop().map(Loc::IReg)
            };
            match assigned {
                Some(loc) => {
                    self.loc.insert(v, loc);
                    active.push((v, iv));
                }
                None => {
                    // Spill the active interval (same class) ending last.
                    let victim = active
                        .iter()
                        .enumerate()
                        .filter(|(_, (av, _))| (self.f.ty(*av) == Type::F64) == is_fp)
                        .max_by_key(|(_, (_, ai))| ai.end)
                        .map(|(k, _)| k);
                    match victim {
                        Some(k) if active[k].1.end > iv.end => {
                            let (vv, _) = active.remove(k);
                            let freed = self.loc[&vv];
                            let slot = self.new_spill()?;
                            self.loc.insert(vv, slot);
                            self.loc.insert(v, freed);
                            active.push((v, iv));
                        }
                        _ => {
                            let slot = self.new_spill()?;
                            self.loc.insert(v, slot);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn new_spill(&mut self) -> Result<Loc, CodegenError> {
        let slot = self.spill_slots as i16;
        self.spill_slots += 1;
        if 8 * (slot as i64) > i64::from(Op2::IMM_MAX) {
            return Err(CodegenError::FrameOverflow);
        }
        Ok(Loc::Spill(slot))
    }

    /// Finds compare instructions fusible into their block terminator.
    fn find_fusions(&mut self) {
        // Count uses of every value.
        let mut uses: HashMap<Value, usize> = HashMap::new();
        for b in self.f.blocks() {
            for &v in &self.f.block(b).insts {
                for o in self.f.operands(v) {
                    *uses.entry(o).or_insert(0) += 1;
                }
            }
            match &self.f.block(b).term {
                Terminator::CondBr { cond, .. } => *uses.entry(*cond).or_insert(0) += 1,
                Terminator::Ret(Some(v)) => *uses.entry(*v).or_insert(0) += 1,
                _ => {}
            }
        }
        for &b in &self.order {
            let Terminator::CondBr { cond, .. } = self.f.block(b).term else { continue };
            if uses.get(&cond) != Some(&1) {
                continue;
            }
            if !self.f.block(b).insts.contains(&cond) {
                continue;
            }
            if !matches!(self.f.as_inst(cond), Some(Inst::Cmp { .. })) {
                continue;
            }
            // Compute-slice conditions are received, not computed.
            if self.regions.get(&b).is_some_and(|ctx| ctx.compute.contains(&cond)) {
                continue;
            }
            self.fused.insert(b, cond);
        }
    }

    // ---------------- emission helpers ----------------

    fn loc_of(&self, v: Value) -> Loc {
        self.loc.get(&v).copied().unwrap_or(Loc::None)
    }

    fn fresh_label(&mut self, what: &str) -> String {
        self.label_counter += 1;
        format!("{}_{}", what, self.label_counter)
    }

    fn block_label(b: Block) -> String {
        format!("blk{}", b.index())
    }

    fn emit(&mut self, i: Instr) {
        self.asm.push(i);
    }

    /// Loads slot `slot` into `rd`.
    fn emit_reload_int(&mut self, rd: Reg, slot: i16) {
        self.emit(Instr::Load {
            kind: LoadKind::Ldx,
            rd,
            rs1: FRAME,
            op2: Op2::Imm(slot * 8),
        });
    }

    fn emit_spill_int(&mut self, rs: Reg, slot: i16) {
        self.emit(Instr::Store { kind: StoreKind::Stx, rs, rs1: FRAME, op2: Op2::Imm(slot * 8) });
    }

    fn emit_reload_fp(&mut self, rd: FReg, slot: i16) {
        self.emit(Instr::LoadF { rd, rs1: FRAME, op2: Op2::Imm(slot * 8) });
    }

    fn emit_spill_fp(&mut self, rs: FReg, slot: i16) {
        self.emit(Instr::StoreF { rs, rs1: FRAME, op2: Op2::Imm(slot * 8) });
    }

    /// Materialises an arbitrary 64-bit constant into `rd`.
    fn emit_materialize(&mut self, rd: Reg, c: u64) {
        if Op2::fits_imm(c as i64) {
            self.emit(Instr::mov_imm(rd, c as i64 as i16));
        } else if c < (1u64 << 32) {
            self.emit(Instr::Sethi { rd, imm22: (c >> 10) as u32 });
            let low = (c & 0x3FF) as i16;
            if low != 0 {
                self.emit(Instr::alu(AluOp::Or, rd, rd, Op2::Imm(low)));
            }
        } else {
            // General path: six 11-bit chunks, shift-or.
            self.emit(Instr::mov_imm(rd, 0));
            for k in (0..6).rev() {
                self.emit(Instr::alu(AluOp::Sllx, rd, rd, Op2::Imm(11)));
                let chunk = ((c >> (11 * k)) & 0x7FF) as i16;
                if chunk != 0 {
                    self.emit(Instr::alu(AluOp::Or, rd, rd, Op2::Imm(chunk)));
                }
            }
        }
    }

    /// Ensures `v` is in an integer register; reloads/materialises into
    /// `scratch` when needed.
    fn int_reg(&mut self, v: Value, scratch: Reg) -> Reg {
        if let Some(c) = self.const_bits(v) {
            self.emit_materialize(scratch, c);
            return scratch;
        }
        match self.loc_of(v) {
            Loc::IReg(r) => r,
            Loc::Spill(slot) => {
                self.emit_reload_int(scratch, slot);
                scratch
            }
            other => panic!("int_reg on {v:?} with location {other:?}"),
        }
    }

    /// Second ALU operand for `v`: an immediate when possible, else a
    /// register via `scratch`.
    fn int_op2(&mut self, v: Value, scratch: Reg) -> Op2 {
        if let Some(c) = self.const_bits(v) {
            if Op2::fits_imm(c as i64) {
                return Op2::Imm(c as i64 as i16);
            }
        }
        Op2::Reg(self.int_reg(v, scratch))
    }

    fn const_bits(&self, v: Value) -> Option<u64> {
        match self.f.value(v).kind {
            ValueKind::ConstI(c) => Some(c as u64),
            ValueKind::ConstF(c) => Some(c.to_bits()),
            _ => None,
        }
    }

    /// The pool address of an f64 constant.
    fn pool_slot(&mut self, bits: u64) -> u64 {
        let next = self.pool.len();
        let off = *self.pool_index.entry(bits).or_insert(next);
        if off == self.pool.len() {
            self.pool.push(bits);
        }
        POOL_BASE + 8 * off as u64
    }

    /// Ensures `v` is in an fp register; reloads into `scratch` (clobbers
    /// `SCRATCH_A` for pool addressing).
    fn fp_reg(&mut self, v: Value, scratch: FReg) -> FReg {
        if let Some(c) = self.const_bits(v) {
            let addr = self.pool_slot(c);
            self.emit_materialize(SCRATCH_A, addr);
            self.emit(Instr::LoadF { rd: scratch, rs1: SCRATCH_A, op2: Op2::Imm(0) });
            return scratch;
        }
        match self.loc_of(v) {
            Loc::FReg(r) => r,
            Loc::Spill(slot) => {
                self.emit_reload_fp(scratch, slot);
                scratch
            }
            other => panic!("fp_reg on {v:?} with location {other:?}"),
        }
    }

    /// Destination staging: `(reg to compute into, spill slot to write)`.
    fn int_dest(&self, v: Value) -> (Reg, Option<i16>) {
        match self.loc_of(v) {
            Loc::IReg(r) => (r, None),
            Loc::Spill(slot) => (SCRATCH_A, Some(slot)),
            other => panic!("int_dest on {v:?} with location {other:?}"),
        }
    }

    fn fp_dest(&self, v: Value) -> (FReg, Option<i16>) {
        match self.loc_of(v) {
            Loc::FReg(r) => (r, None),
            Loc::Spill(slot) => (FSCRATCH_A, Some(slot)),
            other => panic!("fp_dest on {v:?} with location {other:?}"),
        }
    }

    fn finish_int_dest(&mut self, spill: Option<i16>) {
        if let Some(slot) = spill {
            self.emit_spill_int(SCRATCH_A, slot);
        }
    }

    fn finish_fp_dest(&mut self, spill: Option<i16>) {
        if let Some(slot) = spill {
            self.emit_spill_fp(FSCRATCH_A, slot);
        }
    }

    fn cmp_icond(op: CmpOp) -> ICond {
        match op {
            CmpOp::Eq => ICond::Eq,
            CmpOp::Ne => ICond::Ne,
            CmpOp::Slt => ICond::Lt,
            CmpOp::Sle => ICond::Le,
            CmpOp::Sgt => ICond::Gt,
            CmpOp::Sge => ICond::Ge,
            CmpOp::Ult => ICond::Ltu,
            _ => unreachable!("fp compare mapped separately"),
        }
    }

    fn cmp_fcond(op: CmpOp) -> FCond {
        match op {
            CmpOp::Feq => FCond::Eq,
            CmpOp::Flt => FCond::Lt,
            CmpOp::Fle => FCond::Le,
            _ => unreachable!("int compare mapped separately"),
        }
    }

    fn alu_for_bin(op: BinOp) -> Option<AluOp> {
        Some(match op {
            BinOp::Add => AluOp::Add,
            BinOp::Sub => AluOp::Sub,
            BinOp::Mul => AluOp::Mulx,
            BinOp::Sdiv => AluOp::Sdivx,
            BinOp::And => AluOp::And,
            BinOp::Or => AluOp::Or,
            BinOp::Xor => AluOp::Xor,
            BinOp::Shl => AluOp::Sllx,
            BinOp::Lshr => AluOp::Srlx,
            BinOp::Ashr => AluOp::Srax,
            _ => return None,
        })
    }

    fn fpu_for_bin(op: BinOp) -> Option<dyser_isa::FpOp> {
        use dyser_isa::FpOp;
        Some(match op {
            BinOp::Fadd => FpOp::Addd,
            BinOp::Fsub => FpOp::Subd,
            BinOp::Fmul => FpOp::Muld,
            BinOp::Fdiv => FpOp::Divd,
            BinOp::Fmax => FpOp::Maxd,
            BinOp::Fmin => FpOp::Mind,
            _ => return None,
        })
    }

    // ---------------- instruction emission ----------------

    fn emit_inst(&mut self, b: Block, v: Value) {
        let inst = self.f.as_inst(v).expect("emit_inst on an instruction").clone();
        match inst {
            Inst::Phi { .. } => { /* handled by predecessor copies */ }
            Inst::Bin { op, a, b: rhs } => self.emit_bin(v, op, a, rhs),
            Inst::Un { op, a } => self.emit_un(v, op, a),
            Inst::Cmp { op, a, b: rhs } => {
                if self.fused.get(&b) == Some(&v) {
                    // Emitted with the terminator.
                    return;
                }
                self.emit_cmp_materialize(v, op, a, rhs);
            }
            Inst::Select { cond, on_true, on_false } => {
                self.emit_select(v, cond, on_true, on_false)
            }
            Inst::Load { ptr } => {
                let addr = self.int_reg(ptr, SCRATCH_A);
                if self.f.ty(v) == Type::F64 {
                    let (rd, spill) = self.fp_dest(v);
                    self.emit(Instr::LoadF { rd, rs1: addr, op2: Op2::Imm(0) });
                    self.finish_fp_dest(spill);
                } else {
                    let (rd, spill) = self.int_dest(v);
                    // Reuse of SCRATCH_A as both address and destination is
                    // safe: the address is consumed before the write-back.
                    self.emit(Instr::Load { kind: LoadKind::Ldx, rd, rs1: addr, op2: Op2::Imm(0) });
                    self.finish_int_dest(spill);
                }
            }
            Inst::Store { ptr, value } => {
                if self.f.ty(value) == Type::F64 {
                    let vs = self.fp_reg(value, FSCRATCH_A);
                    let addr = self.int_reg(ptr, SCRATCH_A);
                    self.emit(Instr::StoreF { rs: vs, rs1: addr, op2: Op2::Imm(0) });
                } else {
                    let vs = self.int_reg(value, SCRATCH_B);
                    let addr = self.int_reg(ptr, SCRATCH_A);
                    self.emit(Instr::Store {
                        kind: StoreKind::Stx,
                        rs: vs,
                        rs1: addr,
                        op2: Op2::Imm(0),
                    });
                }
            }
            Inst::Gep { base, index, scale } => self.emit_gep(v, base, index, scale),
        }
    }

    fn emit_bin(&mut self, v: Value, op: BinOp, a: Value, rhs: Value) {
        if let Some(alu) = Self::alu_for_bin(op) {
            let ra = self.int_reg(a, SCRATCH_A);
            let o2 = self.int_op2(rhs, SCRATCH_B);
            let (rd, spill) = self.int_dest(v);
            self.emit(Instr::Alu { op: alu, rd, rs1: ra, op2: o2 });
            self.finish_int_dest(spill);
            return;
        }
        if let Some(fop) = Self::fpu_for_bin(op) {
            let fa = self.fp_reg(a, FSCRATCH_A);
            let fb = self.fp_reg(rhs, FSCRATCH_B);
            let (rd, spill) = self.fp_dest(v);
            self.emit(Instr::Fpu { op: fop, rd, rs1: fa, rs2: fb });
            self.finish_fp_dest(spill);
            return;
        }
        match op {
            BinOp::Smax | BinOp::Smin => {
                // rd = a; cmp a, b; mov<cond> rd, b
                let ra = self.int_reg(a, SCRATCH_A);
                let o2 = self.int_op2(rhs, SCRATCH_B);
                let (rd, spill) = self.int_dest(v);
                self.emit(Instr::cmp(ra, o2));
                if rd != ra {
                    self.emit(Instr::mov(rd, ra));
                }
                let cond = if op == BinOp::Smax { ICond::Lt } else { ICond::Gt };
                self.emit(Instr::MovCc { cond, rd, op2: o2 });
                self.finish_int_dest(spill);
            }
            _ => unreachable!("all binary ops covered"),
        }
    }

    fn emit_un(&mut self, v: Value, op: UnOp, a: Value) {
        use dyser_isa::FpOp;
        match op {
            UnOp::Fneg | UnOp::Fabs | UnOp::Fsqrt => {
                let fa = self.fp_reg(a, FSCRATCH_A);
                let (rd, spill) = self.fp_dest(v);
                let fop = match op {
                    UnOp::Fneg => FpOp::Negd,
                    UnOp::Fabs => FpOp::Absd,
                    _ => FpOp::Sqrtd,
                };
                self.emit(Instr::Fpu { op: fop, rd, rs1: rd, rs2: fa });
                self.finish_fp_dest(spill);
            }
            UnOp::Itof => {
                // Through the conversion staging slot.
                let ra = self.int_reg(a, SCRATCH_A);
                self.emit_spill_int(ra, CONV_SLOT);
                let (rd, spill) = self.fp_dest(v);
                self.emit_reload_fp(rd, CONV_SLOT);
                self.emit(Instr::Fpu { op: FpOp::Xtod, rd, rs1: rd, rs2: rd });
                self.finish_fp_dest(spill);
            }
            UnOp::Ftoi => {
                let fa = self.fp_reg(a, FSCRATCH_A);
                self.emit(Instr::Fpu {
                    op: FpOp::Dtox,
                    rd: FSCRATCH_B,
                    rs1: FSCRATCH_B,
                    rs2: fa,
                });
                self.emit_spill_fp(FSCRATCH_B, CONV_SLOT);
                let (rd, spill) = self.int_dest(v);
                self.emit_reload_int(rd, CONV_SLOT);
                self.finish_int_dest(spill);
            }
            UnOp::Not => {
                // rd = (a == 0) ? 1 : 0
                let ra = self.int_reg(a, SCRATCH_A);
                let (rd, spill) = self.int_dest(v);
                self.emit(Instr::cmp(ra, Op2::Imm(0)));
                self.emit(Instr::mov_imm(rd, 0));
                self.emit(Instr::MovCc { cond: ICond::Eq, rd, op2: Op2::Imm(1) });
                self.finish_int_dest(spill);
            }
        }
    }

    fn emit_cmp_materialize(&mut self, v: Value, op: CmpOp, a: Value, rhs: Value) {
        if op.is_fp() {
            let fa = self.fp_reg(a, FSCRATCH_A);
            let fb = self.fp_reg(rhs, FSCRATCH_B);
            let (rd, spill) = self.int_dest(v);
            self.emit(Instr::FCmp { rs1: fa, rs2: fb });
            self.emit(Instr::mov_imm(rd, 1));
            let skip = self.fresh_label("fset");
            self.asm.branch_f(Self::cmp_fcond(op), skip.clone());
            self.emit(Instr::Nop);
            self.emit(Instr::mov_imm(rd, 0));
            self.asm.label(skip);
            self.finish_int_dest(spill);
        } else {
            let ra = self.int_reg(a, SCRATCH_A);
            let o2 = self.int_op2(rhs, SCRATCH_B);
            let (rd, spill) = self.int_dest(v);
            self.emit(Instr::cmp(ra, o2));
            self.emit(Instr::mov_imm(rd, 0));
            self.emit(Instr::MovCc { cond: Self::cmp_icond(op), rd, op2: Op2::Imm(1) });
            self.finish_int_dest(spill);
        }
    }

    fn emit_select(&mut self, v: Value, cond: Value, on_true: Value, on_false: Value) {
        if self.f.ty(v) == Type::F64 {
            // FP arms must be loaded before the integer condition test so
            // pool addressing (which clobbers SCRATCH_A) cannot disturb it.
            let ft = self.fp_reg(on_true, FSCRATCH_A);
            let ff = self.fp_reg(on_false, FSCRATCH_B);
            let rc = self.int_reg(cond, SCRATCH_A);
            let (rd, spill) = self.fp_dest(v);
            let skip = self.fresh_label("fsel");
            use dyser_isa::FpOp;
            if rd == ft {
                // Keep the true arm unless the condition is false.
                self.emit(Instr::cmp(rc, Op2::Imm(0)));
                self.asm.branch(ICond::Ne, skip.clone());
                self.emit(Instr::Nop);
                self.emit(Instr::Fpu { op: FpOp::Movd, rd, rs1: rd, rs2: ff });
            } else {
                if rd != ff {
                    self.emit(Instr::Fpu { op: FpOp::Movd, rd, rs1: rd, rs2: ff });
                }
                self.emit(Instr::cmp(rc, Op2::Imm(0)));
                self.asm.branch(ICond::Eq, skip.clone());
                self.emit(Instr::Nop);
                self.emit(Instr::Fpu { op: FpOp::Movd, rd, rs1: rd, rs2: ft });
            }
            self.asm.label(skip);
            self.finish_fp_dest(spill);
        } else {
            let rc = self.int_reg(cond, SCRATCH_A);
            self.emit(Instr::cmp(rc, Op2::Imm(0)));
            let (rd, spill) = self.int_dest(v);
            let t_is_rd = matches!(self.loc_of(on_true), Loc::IReg(r) if r == rd);
            if t_is_rd {
                let fo = self.int_op2(on_false, SCRATCH_B);
                self.emit(Instr::MovCc { cond: ICond::Eq, rd, op2: fo });
            } else {
                // rd <- false arm, overwritten when the condition holds.
                match self.int_op2(on_false, rd) {
                    Op2::Imm(i) => self.emit(Instr::mov_imm(rd, i)),
                    Op2::Reg(r) if r == rd => {}
                    Op2::Reg(r) => self.emit(Instr::mov(rd, r)),
                }
                let to = self.int_op2(on_true, SCRATCH_B);
                self.emit(Instr::MovCc { cond: ICond::Ne, rd, op2: to });
            }
            self.finish_int_dest(spill);
        }
    }

    fn emit_gep(&mut self, v: Value, base: Value, index: Value, scale: u64) {
        if let Some(ci) = self.const_bits(index) {
            let off = (ci as i64).wrapping_mul(scale as i64);
            let rb = self.int_reg(base, SCRATCH_A);
            let (rd, spill) = self.int_dest(v);
            if Op2::fits_imm(off) {
                self.emit(Instr::alu(AluOp::Add, rd, rb, Op2::Imm(off as i16)));
            } else {
                self.emit_materialize(SCRATCH_B, off as u64);
                self.emit(Instr::alu(AluOp::Add, rd, rb, Op2::Reg(SCRATCH_B)));
            }
            self.finish_int_dest(spill);
            return;
        }
        let ri = self.int_reg(index, SCRATCH_A);
        let scaled = if scale == 1 {
            ri
        } else if scale.is_power_of_two() {
            let shift = scale.trailing_zeros() as i16;
            self.emit(Instr::alu(AluOp::Sllx, SCRATCH_A, ri, Op2::Imm(shift)));
            SCRATCH_A
        } else {
            self.emit_materialize(SCRATCH_B, scale);
            self.emit(Instr::alu(AluOp::Mulx, SCRATCH_A, ri, Op2::Reg(SCRATCH_B)));
            SCRATCH_A
        };
        let rb = self.int_reg(base, SCRATCH_B);
        let (rd, spill) = self.int_dest(v);
        self.emit(Instr::alu(AluOp::Add, rd, rb, Op2::Reg(scaled)));
        self.finish_int_dest(spill);
    }

    // ---------------- phi copies ----------------

    /// Emits the parallel copies for the edge `pred -> succ`.
    fn emit_phi_copies(&mut self, pred: Block, succ: Block) {
        #[derive(Debug, Clone, Copy, PartialEq)]
        enum Src {
            Loc(Loc),
            Const(u64),
        }
        let mut moves: Vec<(Loc, Src, Type)> = Vec::new();
        for &pv in &self.f.block(succ).insts {
            let Some(Inst::Phi { incomings }) = self.f.as_inst(pv) else { continue };
            let Some((_, iv)) = incomings.iter().find(|(bb, _)| *bb == pred) else { continue };
            let dst = self.loc_of(pv);
            if dst == Loc::None {
                continue;
            }
            let src = match self.const_bits(*iv) {
                Some(c) => Src::Const(c),
                None => Src::Loc(self.loc_of(*iv)),
            };
            if Src::Loc(dst) == src {
                continue;
            }
            moves.push((dst, src, self.f.ty(pv)));
        }

        // Sequentialise: emit moves whose destination is not a pending
        // source; break cycles through scratch.
        while !moves.is_empty() {
            let ready = moves.iter().position(|(dst, _, _)| {
                !moves.iter().any(|(_, src, _)| *src == Src::Loc(*dst))
            });
            match ready {
                Some(k) => {
                    let (dst, src, ty) = moves.remove(k);
                    self.emit_move(dst, src_to_parts(src), ty);
                }
                None => {
                    // Cycle: rotate through scratch.
                    let (dst, src, ty) = moves[0];
                    let scratch = if ty == Type::F64 {
                        Loc::FReg(FSCRATCH_B)
                    } else {
                        Loc::IReg(SCRATCH_B)
                    };
                    self.emit_move(scratch, src_to_parts(src), ty);
                    for (_, s, _) in &mut moves {
                        if *s == src {
                            *s = Src::Loc(scratch);
                        }
                    }
                    let _ = dst;
                }
            }
        }

        fn src_to_parts(s: Src) -> Result<Loc, u64> {
            match s {
                Src::Loc(l) => Ok(l),
                Src::Const(c) => Err(c),
            }
        }
    }

    /// Emits one location-to-location move.
    fn emit_move(&mut self, dst: Loc, src: Result<Loc, u64>, ty: Type) {
        use dyser_isa::FpOp;
        match (dst, src) {
            (Loc::IReg(d), Ok(Loc::IReg(s))) => self.emit(Instr::mov(d, s)),
            (Loc::IReg(d), Ok(Loc::Spill(slot))) => self.emit_reload_int(d, slot),
            (Loc::IReg(d), Err(c)) => self.emit_materialize(d, c),
            (Loc::Spill(slot), Ok(Loc::IReg(s))) => self.emit_spill_int(s, slot),
            (Loc::Spill(slot), Ok(Loc::Spill(s))) => {
                if ty == Type::F64 {
                    self.emit_reload_fp(FSCRATCH_B, s);
                    self.emit_spill_fp(FSCRATCH_B, slot);
                } else {
                    self.emit_reload_int(SCRATCH_B, s);
                    self.emit_spill_int(SCRATCH_B, slot);
                }
            }
            (Loc::Spill(slot), Err(c)) => {
                if ty == Type::F64 {
                    let addr = self.pool_slot(c);
                    self.emit_materialize(SCRATCH_A, addr);
                    self.emit(Instr::LoadF { rd: FSCRATCH_B, rs1: SCRATCH_A, op2: Op2::Imm(0) });
                    self.emit_spill_fp(FSCRATCH_B, slot);
                } else {
                    self.emit_materialize(SCRATCH_B, c);
                    self.emit_spill_int(SCRATCH_B, slot);
                }
            }
            (Loc::Spill(slot), Ok(Loc::FReg(s))) => self.emit_spill_fp(s, slot),
            (Loc::FReg(d), Ok(Loc::FReg(s))) => {
                self.emit(Instr::Fpu { op: FpOp::Movd, rd: d, rs1: d, rs2: s })
            }
            (Loc::FReg(d), Ok(Loc::Spill(slot))) => self.emit_reload_fp(d, slot),
            (Loc::FReg(d), Err(c)) => {
                let addr = self.pool_slot(c);
                self.emit_materialize(SCRATCH_A, addr);
                self.emit(Instr::LoadF { rd: d, rs1: SCRATCH_A, op2: Op2::Imm(0) });
            }
            (a, b) => panic!("impossible move {a:?} <- {b:?}"),
        }
    }

    // ---------------- region interface emission ----------------

    fn emit_send_of(&mut self, ctx_block: Block, v: Value) {
        let ctx = &self.regions[&ctx_block];
        let Some(&port) = ctx.input_port.get(&v) else { return };
        let port = Port::new(port as u8);
        if self.f.ty(v) == Type::F64 {
            let fs = self.fp_reg(v, FSCRATCH_A);
            self.emit(Instr::Dyser(DyserInstr::SendF { port, rs: fs }));
        } else {
            let rs = self.int_reg(v, SCRATCH_A);
            self.emit(Instr::Dyser(DyserInstr::Send { port, rs }));
        }
    }

    /// Sends for inputs available at the top of the body: phis of the body
    /// and values defined outside it.
    fn emit_top_sends(&mut self, b: Block) {
        let Some(ctx) = self.regions.get(&b) else { return };
        let body_insts: HashSet<Value> = self.f.block(b).insts.iter().copied().collect();
        let inputs: Vec<Value> = ctx.region.inputs.iter().map(|i| i.value()).collect();
        for v in inputs {
            let is_body_phi = body_insts.contains(&v)
                && matches!(self.f.as_inst(v), Some(Inst::Phi { .. }));
            let outside = !body_insts.contains(&v);
            if is_body_phi || outside {
                self.emit_send_of(b, v);
            }
        }
    }

    /// Region epilogue at the bottom of the body: while the software
    /// pipeline warms up, deferred stores are skipped; afterwards the
    /// oldest deferred invocation's outputs are stored and every rotation
    /// register shifts by one.
    fn emit_body_bottom(&mut self, b: Block) {
        let Some(ctx) = self.regions.get(&b) else { return };
        let warmup = ctx.warmup;
        let lagged = ctx.lagged.clone();
        if lagged.is_empty() {
            self.emit(Instr::mov_imm(warmup, 0));
            return;
        }
        let do_recv = self.fresh_label("dorecv");
        let rotate = self.fresh_label("rotate");
        self.asm.branch_reg(RCond::Zero, warmup, do_recv.clone());
        self.emit(Instr::Nop);
        self.emit(Instr::alu(AluOp::Sub, warmup, warmup, Op2::Imm(1)));
        self.asm.branch(ICond::Always, rotate.clone());
        self.emit(Instr::Nop);
        self.asm.label(do_recv);
        for (port, _, prevs) in &lagged {
            let oldest = *prevs.last().expect("lag depth >= 1");
            self.emit(Instr::Dyser(DyserInstr::Store {
                port: Port::new(*port as u8),
                rs1: oldest,
                op2: Op2::Imm(0),
            }));
        }
        self.asm.label(rotate);
        for (_, ptr, prevs) in &lagged {
            for j in (1..prevs.len()).rev() {
                self.emit(Instr::mov(prevs[j], prevs[j - 1]));
            }
            let cur = self.int_reg(*ptr, SCRATCH_A);
            self.emit(Instr::mov(prevs[0], cur));
        }
    }

    /// Drain in the region's exit block: consume every still-deferred
    /// invocation's outputs (oldest first), then fence. Rotation slot `j`
    /// holds a valid address iff at least `j + 1` iterations ran, i.e. iff
    /// the warm-up counter fell below `depth - j`.
    fn emit_exit_drain(&mut self, body: Block) {
        let ctx = &self.regions[&body];
        let warmup = ctx.warmup;
        let depth = ctx.lag_depth;
        let lagged = ctx.lagged.clone();
        for j in (0..depth).rev() {
            if lagged.is_empty() {
                break;
            }
            let skip = self.fresh_label("skipdrain");
            // Skip slot j when warmup > depth - 1 - j.
            self.emit(Instr::cmp(warmup, Op2::Imm((depth - 1 - j) as i16)));
            self.asm.branch(ICond::Gt, skip.clone());
            self.emit(Instr::Nop);
            for (port, _, prevs) in &lagged {
                self.emit(Instr::Dyser(DyserInstr::Store {
                    port: Port::new(*port as u8),
                    rs1: prevs[j],
                    op2: Op2::Imm(0),
                }));
            }
            self.asm.label(skip);
        }
        self.emit(Instr::Dyser(DyserInstr::Fence));
    }

    /// Whether the CFG edge `pred -> succ` carries region-boundary work:
    /// the drain + fence of a region whose loop finishes on this edge, or
    /// the `dinit` + warm-up initialisation of a region it enters.
    ///
    /// A region body is a single-block self-loop, so its entry edge
    /// (`outside_pred -> body`) and exit edge (`body -> exit`) are unique.
    /// The material must live *on the edge*: the blocks at either end can
    /// have other roles (`outside_pred` may itself be a loop body whose
    /// iterations must not reconfigure the fabric; `exit` may be another
    /// region's body whose back-edge must not re-drain).
    fn edge_has_region_material(&self, pred: Block, succ: Block) -> bool {
        self.regions.get(&pred).is_some_and(|c| c.region.exit == succ)
            || self.regions.get(&succ).is_some_and(|c| c.region.outside_pred == pred)
    }

    /// Emits the region-boundary work of edge `pred -> succ` (see
    /// [`Self::edge_has_region_material`]): first the finishing region's
    /// drain while its configuration is still active, then the entered
    /// region's `dinit` + warm-up initialisation.
    fn emit_edge_material(&mut self, pred: Block, succ: Block) {
        if self.regions.get(&pred).is_some_and(|c| c.region.exit == succ) {
            self.emit_exit_drain(pred);
        }
        let entered = self
            .regions
            .get(&succ)
            .filter(|c| c.region.outside_pred == pred)
            .map(|c| (c.config_id, c.warmup, c.lag_depth));
        if let Some((config_id, warmup, depth)) = entered {
            self.emit(Instr::Dyser(DyserInstr::Init { config: ConfigId::new(config_id) }));
            self.emit(Instr::mov_imm(warmup, depth as i16));
        }
    }

    // ---------------- block and terminator emission ----------------

    fn run(mut self) -> Result<Program, CodegenError> {
        // Prologue: frame base, then copy parameters out of %o registers.
        self.emit_materialize(FRAME, SPILL_BASE);
        for i in 0..self.f.params().len() {
            let pv = self.f.param(i);
            let src = Reg::new(8 + i as u8); // %o0..%o5
            match self.loc_of(pv) {
                Loc::IReg(d) => self.emit(Instr::mov(d, src)),
                Loc::FReg(d) => {
                    // An f64 parameter arrives as raw bits in %oN.
                    self.emit_spill_int(src, CONV_SLOT);
                    self.emit_reload_fp(d, CONV_SLOT);
                }
                Loc::Spill(slot) => self.emit_spill_int(src, slot),
                Loc::None => {}
            }
        }

        let order = self.order.clone();
        for (k, &b) in order.iter().enumerate() {
            self.asm.label(Self::block_label(b));
            self.emit_top_sends(b);

            let is_region_body = self.regions.contains_key(&b);
            let insts = self.f.block(b).insts.clone();
            for v in insts {
                if is_region_body {
                    self.emit_region_inst(b, v);
                } else {
                    self.emit_inst(b, v);
                }
            }
            if is_region_body {
                self.emit_body_bottom(b);
            }

            let next = order.get(k + 1).copied();
            self.emit_terminator(b, next)?;
        }

        let listing = self.asm.resolve()?;
        let code = self.asm.assemble()?;
        Ok(Program {
            code,
            listing,
            entry: CODE_BASE,
            pool: self.pool,
            spill_slots: self.spill_slots,
            configs: self.configs,
        })
    }

    /// Emits one instruction of a region body, applying the slice rules.
    fn emit_region_inst(&mut self, b: Block, v: Value) {
        let ctx = &self.regions[&b];
        // Compute-slice values: receive if core-used, else skip entirely.
        if ctx.compute.contains(&v) {
            if ctx.core_use.contains(&v) {
                let port = Port::new(ctx.output_port[&v] as u8);
                if self.f.ty(v) == Type::F64 {
                    let (rd, spill) = self.fp_dest(v);
                    self.emit(Instr::Dyser(DyserInstr::RecvF { port, rd }));
                    self.finish_fp_dest(spill);
                } else {
                    let (rd, spill) = self.int_dest(v);
                    self.emit(Instr::Dyser(DyserInstr::Recv { port, rd }));
                    self.finish_int_dest(spill);
                }
            }
            return;
        }
        // Loads that feed only the fabric: dload.
        if let Some(Inst::Load { ptr }) = self.f.as_inst(v) {
            let is_dload = matches!(
                ctx.region.inputs.iter().find(|i| i.value() == v),
                Some(RegionInput::Load { .. })
            );
            if is_dload {
                let port = Port::new(ctx.input_port[&v] as u8);
                let ptr = *ptr;
                let addr = self.int_reg(ptr, SCRATCH_A);
                self.emit(Instr::Dyser(DyserInstr::Load { port, rs1: addr, op2: Op2::Imm(0) }));
                return;
            }
        }
        // Stores of store-only outputs: lagged (skip here) or immediate.
        if let Some(Inst::Store { .. }) = self.f.as_inst(v) {
            if let Some(&port) = ctx.immediate_stores.get(&v) {
                let Some(Inst::Store { ptr, .. }) = self.f.as_inst(v) else { unreachable!() };
                let ptr = *ptr;
                let addr = self.int_reg(ptr, SCRATCH_A);
                self.emit(Instr::Dyser(DyserInstr::Store {
                    port: Port::new(port as u8),
                    rs1: addr,
                    op2: Op2::Imm(0),
                }));
                return;
            }
            let lagged = ctx.lagged.iter().any(|(_, _, _)| {
                matches!(self.f.as_inst(v), Some(Inst::Store { value, .. })
                    if ctx.output_port.contains_key(value)
                        && !ctx.core_use.contains(value)
                        && !ctx.immediate_stores.contains_key(&v))
            });
            if lagged {
                return; // handled at the body bottom / drain
            }
        }
        // Ordinary core instruction.
        self.emit_inst(b, v);
        // If it is a fabric input computed mid-body, send it now.
        if self.regions[&b].input_port.contains_key(&v) {
            let body_insts_has_phi =
                matches!(self.f.as_inst(v), Some(Inst::Phi { .. }));
            if !body_insts_has_phi {
                self.emit_send_of(b, v);
            }
        }
    }

    fn emit_terminator(&mut self, b: Block, next: Option<Block>) -> Result<(), CodegenError> {
        match self.f.block(b).term.clone() {
            Terminator::None => {}
            Terminator::Ret(v) => {
                if let Some(v) = v {
                    if self.f.ty(v) == Type::F64 {
                        let fs = self.fp_reg(v, FSCRATCH_A);
                        if fs != FReg::new(0) {
                            self.emit(Instr::Fpu {
                                op: dyser_isa::FpOp::Movd,
                                rd: FReg::new(0),
                                rs1: FReg::new(0),
                                rs2: fs,
                            });
                        }
                    } else {
                        let rs = self.int_reg(v, SCRATCH_A);
                        if rs != regs::O0 {
                            self.emit(Instr::mov(regs::O0, rs));
                        }
                    }
                }
                self.emit(Instr::Halt);
            }
            Terminator::Br(t) => {
                self.emit_edge_material(b, t);
                self.emit_phi_copies(b, t);
                if next != Some(t) {
                    self.asm.branch(ICond::Always, Self::block_label(t));
                    self.emit(Instr::Nop);
                }
            }
            Terminator::CondBr { cond, then_bb, else_bb } => {
                let then_needs_stub =
                    self.edge_has_copies(b, then_bb) || self.edge_has_region_material(b, then_bb);
                let else_needs_stub =
                    self.edge_has_copies(b, else_bb) || self.edge_has_region_material(b, else_bb);

                // Emit the test.
                enum Test {
                    Icc(ICond),
                    Fcc(FCond),
                    Reg(Reg),
                }
                let test = if self.fused.get(&b) == Some(&cond) {
                    match self.f.as_inst(cond).cloned() {
                        Some(Inst::Cmp { op, a, b: rhs }) if op.is_fp() => {
                            let fa = self.fp_reg(a, FSCRATCH_A);
                            let fb = self.fp_reg(rhs, FSCRATCH_B);
                            self.emit(Instr::FCmp { rs1: fa, rs2: fb });
                            Test::Fcc(Self::cmp_fcond(op))
                        }
                        Some(Inst::Cmp { op, a, b: rhs }) => {
                            let ra = self.int_reg(a, SCRATCH_A);
                            let o2 = self.int_op2(rhs, SCRATCH_B);
                            self.emit(Instr::cmp(ra, o2));
                            Test::Icc(Self::cmp_icond(op))
                        }
                        _ => unreachable!("fused conditions are compares"),
                    }
                } else {
                    Test::Reg(self.int_reg(cond, SCRATCH_A))
                };

                // Branch to the then-edge (stub if it needs copies).
                let then_target = if then_needs_stub {
                    self.fresh_label("edge")
                } else {
                    Self::block_label(then_bb)
                };
                match &test {
                    Test::Icc(c) => {
                        self.asm.branch(*c, then_target.clone());
                    }
                    Test::Fcc(c) => {
                        self.asm.branch_f(*c, then_target.clone());
                    }
                    Test::Reg(r) => {
                        self.asm.branch_reg(RCond::NonZero, *r, then_target.clone());
                    }
                }
                self.emit(Instr::Nop);

                // Fallthrough: else edge.
                if else_needs_stub {
                    self.emit_edge_material(b, else_bb);
                    self.emit_phi_copies(b, else_bb);
                }
                if next != Some(else_bb) || then_needs_stub {
                    // When a then-stub follows, the else path must jump
                    // over it even if else is "next".
                    if next != Some(else_bb) || then_needs_stub {
                        self.asm.branch(ICond::Always, Self::block_label(else_bb));
                        self.emit(Instr::Nop);
                    }
                }
                if then_needs_stub {
                    self.asm.label(then_target);
                    self.emit_edge_material(b, then_bb);
                    self.emit_phi_copies(b, then_bb);
                    self.asm.branch(ICond::Always, Self::block_label(then_bb));
                    self.emit(Instr::Nop);
                }
            }
        }
        Ok(())
    }

    fn edge_has_copies(&self, pred: Block, succ: Block) -> bool {
        self.f.block(succ).insts.iter().any(|&pv| {
            if let Some(Inst::Phi { incomings }) = self.f.as_inst(pv) {
                if self.loc_of(pv) == Loc::None {
                    return false;
                }
                if let Some((_, iv)) = incomings.iter().find(|(bb, _)| *bb == pred) {
                    let src = match self.const_bits(*iv) {
                        Some(_) => None,
                        None => Some(self.loc_of(*iv)),
                    };
                    return src != Some(self.loc_of(pv));
                }
            }
            false
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{FunctionBuilder, Type};

    fn simple_fn() -> Function {
        let mut b = FunctionBuilder::new("f", &[("x", Type::I64), ("y", Type::I64)]);
        let x = b.param(0);
        let y = b.param(1);
        let s = b.bin(BinOp::Add, x, y);
        b.ret(Some(s));
        b.build().unwrap()
    }

    #[test]
    fn baseline_emits_code() {
        let f = simple_fn();
        let p = codegen_baseline(&f).unwrap();
        assert!(!p.is_empty());
        assert_eq!(p.entry, CODE_BASE);
        assert!(p.listing.iter().any(|i| matches!(i, Instr::Halt)));
        assert!(p.disassemble().contains("halt"));
    }

    #[test]
    fn too_many_params_rejected() {
        let names = ["a", "b", "c", "d", "e", "f", "g"];
        let params: Vec<(&str, Type)> =
            names.iter().map(|n| (*n, Type::I64)).collect();
        let mut b = FunctionBuilder::new("many", &params);
        b.ret(None);
        let f = b.build().unwrap();
        assert!(matches!(
            codegen_baseline(&f),
            Err(CodegenError::TooManyParams { .. })
        ));
    }

    #[test]
    fn materialize_small_and_large_constants() {
        let mut b = FunctionBuilder::new("c", &[("p", Type::Ptr)]);
        let p = b.param(0);
        let big = b.const_i(0x1234_5678_9ABC);
        let small = b.const_i(42);
        let s = b.bin(BinOp::Add, big, small);
        b.store(s, p);
        b.ret(None);
        // Note: constfold would fold this; bypass it to exercise
        // materialisation.
        let f = b.build().unwrap();
        let prog = codegen_baseline(&f).unwrap();
        assert!(prog.len() > 8, "large constants need several instructions");
    }

    #[test]
    fn fp_constants_land_in_pool() {
        let mut b = FunctionBuilder::new("fp", &[("p", Type::Ptr)]);
        let p = b.param(0);
        let c = b.const_f(3.5);
        let c2 = b.const_f(3.5); // same value: shared slot
        let s = b.bin(BinOp::Fadd, c, c2);
        b.store(s, p);
        b.ret(None);
        let f = b.build().unwrap();
        let prog = codegen_baseline(&f).unwrap();
        assert_eq!(prog.pool, vec![3.5f64.to_bits()]);
    }
}
