//! The spatial scheduler: mapping a compute slice onto the fabric.
//!
//! The mechanism (placement + breadth-first routing) lives in
//! `dyser_fabric::ConfigBuilder`; this module supplies the policy:
//!
//! * translating IR operations into fabric operations (including operand
//!   normalisation — `sgt` becomes a swapped `ICmpSLt`, `fneg` becomes
//!   `0.0 - x`),
//! * assigning interface values to ports in a deterministic order,
//! * a seeded random-restart refinement loop that re-places the graph
//!   with different hints and keeps the configuration with the shortest
//!   estimated critical path (a light-weight stand-in for the original
//!   scheduler's simulated annealing).

use std::collections::HashMap;

use dyser_fabric::{
    BuildError, ConfigBuilder, FabricConfig, FabricConfigError, FabricGeometry, FuId, FuKind,
    FuOp, ValueId,
};
use dyser_rng::Rng64;

use crate::dyser::region::Region;
use crate::ir::{BinOp, CmpOp, Function, Inst, UnOp, Value};

/// A scheduled region: the configuration plus its port assignment.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// The fabric configuration implementing the compute slice.
    pub config: FabricConfig,
    /// `input_ports[i]` is the fabric input port for `region.inputs[i]`.
    pub input_ports: Vec<usize>,
    /// `output_ports[j]` is the fabric output port for `region.outputs[j]`.
    pub output_ports: Vec<usize>,
    /// Estimated dataflow critical path through the fabric, in cycles.
    pub depth_estimate: u64,
}

/// Errors from scheduling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// The compute slice needs more interface ports than the geometry has.
    TooManyPorts {
        /// Inputs required.
        inputs: usize,
        /// Outputs required.
        outputs: usize,
        /// The geometry's limits.
        available: (usize, usize),
    },
    /// Placement or routing failed even after refinement restarts.
    Unmappable(BuildError),
    /// An IR operation has no fabric equivalent (should not happen for
    /// values region selection admits).
    Unsupported(String),
    /// The caller-supplied hardware description is malformed (e.g. a
    /// kinds vector whose length does not match the geometry).
    BadHardware(FabricConfigError),
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::TooManyPorts { inputs, outputs, available } => write!(
                f,
                "region needs {inputs} input / {outputs} output ports; fabric has {}/{}",
                available.0, available.1
            ),
            ScheduleError::Unmappable(e) => write!(f, "cannot map region: {e}"),
            ScheduleError::Unsupported(op) => write!(f, "no fabric operation for {op}"),
            ScheduleError::BadHardware(e) => write!(f, "invalid hardware description: {e}"),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Scheduling policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct ScheduleOptions {
    /// Random-restart refinement rounds (0 = greedy only).
    pub refinement_rounds: usize,
    /// RNG seed for deterministic refinement.
    pub seed: u64,
}

impl Default for ScheduleOptions {
    fn default() -> Self {
        ScheduleOptions { refinement_rounds: 12, seed: 0xD75E_2015 }
    }
}

fn fabric_bin_op(op: BinOp) -> FuOp {
    match op {
        BinOp::Add => FuOp::IAdd,
        BinOp::Sub => FuOp::ISub,
        BinOp::Mul => FuOp::IMul,
        BinOp::Sdiv => FuOp::IDiv,
        BinOp::And => FuOp::IAnd,
        BinOp::Or => FuOp::IOr,
        BinOp::Xor => FuOp::IXor,
        BinOp::Shl => FuOp::IShl,
        BinOp::Lshr => FuOp::IShrL,
        BinOp::Ashr => FuOp::IShrA,
        BinOp::Smax => FuOp::IMax,
        BinOp::Smin => FuOp::IMin,
        BinOp::Fadd => FuOp::FAdd,
        BinOp::Fsub => FuOp::FSub,
        BinOp::Fmul => FuOp::FMul,
        BinOp::Fdiv => FuOp::FDiv,
        BinOp::Fmax => FuOp::FMax,
        BinOp::Fmin => FuOp::FMin,
    }
}

/// Fabric comparison op plus whether operands must swap.
fn fabric_cmp_op(op: CmpOp) -> (FuOp, bool) {
    match op {
        CmpOp::Eq => (FuOp::ICmpEq, false),
        CmpOp::Ne => (FuOp::ICmpNe, false),
        CmpOp::Slt => (FuOp::ICmpSLt, false),
        CmpOp::Sle => (FuOp::ICmpSLe, false),
        CmpOp::Sgt => (FuOp::ICmpSLt, true),
        CmpOp::Sge => (FuOp::ICmpSLe, true),
        CmpOp::Ult => (FuOp::ICmpULt, false),
        CmpOp::Feq => (FuOp::FCmpEq, false),
        CmpOp::Flt => (FuOp::FCmpLt, false),
        CmpOp::Fle => (FuOp::FCmpLe, false),
    }
}

/// Port lists plus op-node handles returned by graph construction.
type GraphPorts = (Vec<usize>, Vec<usize>, Vec<ValueId>);

/// Builds the dataflow graph into a `ConfigBuilder`; returns the op node
/// ids so refinement can hint their placement.
fn build_graph(
    f: &Function,
    region: &Region,
    builder: &mut ConfigBuilder,
    hints: &HashMap<usize, FuId>,
) -> Result<GraphPorts, ScheduleError> {
    let mut value_map: HashMap<Value, ValueId> = HashMap::new();

    // Inputs occupy ports 0..k in region order.
    let input_ports: Vec<usize> = (0..region.inputs.len()).collect();
    for (i, input) in region.inputs.iter().enumerate() {
        let vid = builder.input_value(i);
        value_map.insert(input.value(), vid);
    }

    // Compute nodes in body (topological) order.
    let mut op_nodes: Vec<ValueId> = Vec::new();
    for (k, &cv) in region.compute.iter().enumerate() {
        let arg = |v: Value, builder: &mut ConfigBuilder| -> Result<ValueId, ScheduleError> {
            if let Some(&vid) = value_map.get(&v) {
                return Ok(vid);
            }
            if let Some(c) = f.as_const_i(v) {
                let vid = builder.const_value(c as u64);
                return Ok(vid);
            }
            if let Some(c) = f.as_const_f(v) {
                let vid = builder.const_value(c.to_bits());
                return Ok(vid);
            }
            Err(ScheduleError::Unsupported(format!(
                "operand {} reached the fabric without an input port",
                f.value_name(v)
            )))
        };
        let inst = f.as_inst(cv).expect("compute values are instructions").clone();
        let vid = match inst {
            Inst::Bin { op, a, b } => {
                let (na, nb) = (arg(a, builder)?, arg(b, builder)?);
                builder.op(fabric_bin_op(op), &[na, nb])
            }
            Inst::Un { op, a } => {
                let na = arg(a, builder)?;
                match op {
                    UnOp::Fneg => builder.op(FuOp::FNeg, &[na]),
                    UnOp::Fabs => builder.op(FuOp::FAbs, &[na]),
                    UnOp::Fsqrt => builder.op(FuOp::FSqrt, &[na]),
                    UnOp::Itof => builder.op(FuOp::IToF, &[na]),
                    UnOp::Ftoi => builder.op(FuOp::FToI, &[na]),
                    UnOp::Not => builder.op(FuOp::PredNot, &[na]),
                }
            }
            Inst::Cmp { op, a, b } => {
                let (fu, swap) = fabric_cmp_op(op);
                let (na, nb) = (arg(a, builder)?, arg(b, builder)?);
                if swap {
                    builder.op(fu, &[nb, na])
                } else {
                    builder.op(fu, &[na, nb])
                }
            }
            Inst::Select { cond, on_true, on_false } => {
                let nc = arg(cond, builder)?;
                let nt = arg(on_true, builder)?;
                let nf = arg(on_false, builder)?;
                builder.op(FuOp::Select, &[nt, nf, nc])
            }
            other => {
                return Err(ScheduleError::Unsupported(format!("{other:?}")));
            }
        };
        if let Some(&fu) = hints.get(&k) {
            builder.hint(vid, fu);
        }
        value_map.insert(cv, vid);
        op_nodes.push(vid);
    }

    // Outputs occupy ports 0..m in region order.
    let output_ports: Vec<usize> = (0..region.outputs.len()).collect();
    for (j, out) in region.outputs.iter().enumerate() {
        let vid = *value_map
            .get(&out.value)
            .expect("outputs are compute values already mapped");
        builder.output_value(vid, j);
    }

    Ok((input_ports, output_ports, op_nodes))
}

/// Estimated critical path: longest path over compute ops, each op costing
/// its latency plus an average two-hop route.
fn estimate_depth(f: &Function, region: &Region) -> u64 {
    let mut depth: HashMap<Value, u64> = HashMap::new();
    let mut max = 0;
    for &cv in &region.compute {
        let op_latency = match f.as_inst(cv) {
            Some(Inst::Bin { op, .. }) => fabric_bin_op(*op).latency(),
            Some(Inst::Cmp { .. }) => 1,
            Some(Inst::Un { op, .. }) => match op {
                UnOp::Fsqrt => FuOp::FSqrt.latency(),
                UnOp::Itof | UnOp::Ftoi => 3,
                _ => 1,
            },
            _ => 1,
        };
        let in_depth = f
            .operands(cv)
            .iter()
            .map(|o| depth.get(o).copied().unwrap_or(0))
            .max()
            .unwrap_or(0);
        let d = in_depth + op_latency + 2; // + average route hops
        depth.insert(cv, d);
        max = max.max(d);
    }
    max
}

/// Schedules `region` onto a fabric of the given geometry and kinds.
///
/// # Errors
///
/// Fails if the interface exceeds the geometry's ports or if no placement
/// routes after the refinement budget.
pub fn schedule_region(
    f: &Function,
    region: &Region,
    geometry: FabricGeometry,
    kinds: &[FuKind],
    options: &ScheduleOptions,
) -> Result<Schedule, ScheduleError> {
    if region.inputs.len() > geometry.input_ports()
        || region.outputs.len() > geometry.output_ports()
    {
        return Err(ScheduleError::TooManyPorts {
            inputs: region.inputs.len(),
            outputs: region.outputs.len(),
            available: (geometry.input_ports(), geometry.output_ports()),
        });
    }

    let build_with = |hints: &HashMap<usize, FuId>| -> Result<
        (FabricConfig, Vec<usize>, Vec<usize>),
        ScheduleError,
    > {
        let mut builder = ConfigBuilder::with_kinds(geometry, kinds.to_vec())
            .map_err(ScheduleError::BadHardware)?;
        builder.set_name(region.name.clone());
        let (ins, outs, _) = build_graph(f, region, &mut builder, hints)?;
        let config = builder.build().map_err(ScheduleError::Unmappable)?;
        Ok((config, ins, outs))
    };

    // Greedy first.
    let mut best = build_with(&HashMap::new());
    let mut best_cost = best.as_ref().ok().map(|(c, _, _)| config_cost(c));

    // Random-restart refinement: hint a random subset of ops to random
    // compatible sites, keep improvements.
    let mut rng = Rng64::seed_from_u64(options.seed);
    let sites: Vec<FuId> = geometry.fus().collect();
    for _ in 0..options.refinement_rounds {
        let mut hints = HashMap::new();
        for k in 0..region.compute.len() {
            if rng.gen_bool(0.5) {
                hints.insert(k, sites[rng.gen_range(0..sites.len())]);
            }
        }
        if let Ok(candidate) = build_with(&hints) {
            let cost = config_cost(&candidate.0);
            if best_cost.is_none_or(|b| cost < b) {
                best_cost = Some(cost);
                best = Ok(candidate);
            }
        }
    }

    let (config, input_ports, output_ports) = best?;
    Ok(Schedule {
        config,
        input_ports,
        output_ports,
        depth_estimate: estimate_depth(f, region),
    })
}

/// Cost of a configuration: total routed registers (wire length proxy).
fn config_cost(config: &FabricConfig) -> usize {
    config.configured_routes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dyser::region::{select_regions, RegionOptions};
    use crate::ir::{FunctionBuilder, Type};
    use dyser_fabric::Fabric;

    /// Builds c[i] = (a[i] + b[i]) * (a[i] - b[i]) and returns its region.
    fn kernel_and_region() -> (Function, Region) {
        let mut b = FunctionBuilder::new(
            "k",
            &[("a", Type::Ptr), ("b", Type::Ptr), ("c", Type::Ptr), ("n", Type::I64)],
        );
        let (a, bb, c, n) = (b.param(0), b.param(1), b.param(2), b.param(3));
        let zero = b.const_i(0);
        let one = b.const_i(1);
        let body = b.block("body");
        let exit = b.block("exit");
        let entry = b.current();
        b.br(body);
        b.switch_to(body);
        let i = b.phi(Type::I64);
        let pa = b.gep(a, i, 8);
        let pb = b.gep(bb, i, 8);
        let va = b.load(pa, Type::I64);
        let vb = b.load(pb, Type::I64);
        let sum = b.bin(BinOp::Add, va, vb);
        let diff = b.bin(BinOp::Sub, va, vb);
        let prod = b.bin(BinOp::Mul, sum, diff);
        let pc = b.gep(c, i, 8);
        b.store(prod, pc);
        let i2 = b.bin(BinOp::Add, i, one);
        b.add_incoming(i, entry, zero);
        b.add_incoming(i, body, i2);
        let cond = b.cmp(CmpOp::Slt, i2, n);
        b.cond_br(cond, body, exit);
        b.switch_to(exit);
        b.ret(None);
        let f = b.build().unwrap();
        let r = select_regions(&f, &RegionOptions::default()).remove(0);
        (f, r)
    }

    fn default_kinds(geom: FabricGeometry) -> Vec<FuKind> {
        geom.fus().map(|fu| FuKind::default_pattern(fu.row, fu.col)).collect()
    }

    #[test]
    fn schedules_and_executes_correctly() {
        let (f, r) = kernel_and_region();
        let geom = FabricGeometry::new(4, 4);
        let sched = schedule_region(&f, &r, geom, &default_kinds(geom), &Default::default())
            .expect("region schedules");
        assert_eq!(sched.input_ports.len(), 2);
        assert_eq!(sched.output_ports.len(), 1);
        assert!(sched.depth_estimate > 0);

        // Execute the configuration: (7+3)*(7-3) = 40.
        let mut fabric = Fabric::new(geom);
        fabric.load_config(&sched.config).unwrap();
        assert!(fabric.try_send(sched.input_ports[0], 7));
        assert!(fabric.try_send(sched.input_ports[1], 3));
        let out = fabric.run_until_output(sched.output_ports[0], 300).unwrap();
        assert_eq!(out, 40);
    }

    #[test]
    fn refinement_is_deterministic() {
        let (f, r) = kernel_and_region();
        let geom = FabricGeometry::new(4, 4);
        let opts = ScheduleOptions { refinement_rounds: 8, seed: 42 };
        let s1 = schedule_region(&f, &r, geom, &default_kinds(geom), &opts).unwrap();
        let s2 = schedule_region(&f, &r, geom, &default_kinds(geom), &opts).unwrap();
        assert_eq!(s1.config, s2.config);
    }

    #[test]
    fn too_small_fabric_rejected() {
        let (f, r) = kernel_and_region();
        // A 1x1 fabric has 3 input ports but only one FU for three ops.
        let geom = FabricGeometry::new(1, 1);
        let err = schedule_region(&f, &r, geom, &[FuKind::Universal], &Default::default())
            .unwrap_err();
        assert!(matches!(err, ScheduleError::Unmappable(_)), "got {err}");
    }

    #[test]
    fn port_overflow_detected() {
        let (f, mut r) = kernel_and_region();
        // Pretend the region needs 99 inputs.
        let v = r.inputs[0].clone();
        while r.inputs.len() < 99 {
            r.inputs.push(v.clone());
        }
        let geom = FabricGeometry::new(2, 2);
        let err = schedule_region(&f, &r, geom, &default_kinds(geom), &Default::default())
            .unwrap_err();
        assert!(matches!(err, ScheduleError::TooManyPorts { .. }));
    }

    use crate::ir::{BinOp, CmpOp};
}
