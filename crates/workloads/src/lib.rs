//! # dyser-workloads
//!
//! The benchmark suite for the SPARC-DySER evaluation.
//!
//! The paper evaluates microbenchmarks plus throughput kernels (regular)
//! and irregular codes; the originals are bound to the authors' toolchain,
//! so this crate re-expresses equivalent kernels in the mini-IR (the
//! substitution is recorded in `DESIGN.md`). Each [`Kernel`] carries:
//!
//! * an IR builder producing the kernel function,
//! * a deterministic input generator and a Rust *reference implementation*
//!   that computes the expected outputs (bit-exact: the reference applies
//!   the same IEEE operations in the same order as the IR),
//! * a [`Category`] (micro / regular / irregular) and per-kernel compiler
//!   knobs.
//!
//! [`suite`] returns every kernel; [`manual`] holds the hand-optimised
//! DySER implementations used by the manual-vs-compiler experiment (E4);
//! [`shapes`] exposes the E8 control-flow shapes (early-exit,
//! nested-control, speculative-window) as reusable constructors.


#![warn(missing_docs)]
pub mod kernels;
pub mod manual;
pub mod programs;
pub mod shapes;

pub use kernels::{program_inner_kernels, suite, Category, Kernel};
pub use shapes::ShapeCase;

/// Base address of the first data buffer.
pub const BUF_A: u64 = 0x20_0000;
/// Base address of the second data buffer.
pub const BUF_B: u64 = 0x30_0000;
/// Base address of the output buffer.
pub const BUF_C: u64 = 0x40_0000;
/// Base address of the auxiliary buffer.
pub const BUF_D: u64 = 0x50_0000;
