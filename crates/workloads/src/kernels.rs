//! The kernel suite: builders, input generators, reference outputs.

use dyser_compiler::{
    BinOp, CmpOp, CompilerOptions, Function, FunctionBuilder, Type, UnOp,
};
use dyser_core::KernelCase;
use dyser_fabric::FabricGeometry;
use dyser_rng::Rng64;

use crate::{BUF_A, BUF_B, BUF_C, BUF_D};

/// Workload category, mirroring the paper's grouping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Compute-intense microbenchmark (experiment E2).
    Micro,
    /// Regular throughput kernel (experiment E3).
    Regular,
    /// Irregular-control kernel (experiments E3/E8).
    Irregular,
}

impl Category {
    /// A short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Category::Micro => "micro",
            Category::Regular => "regular",
            Category::Irregular => "irregular",
        }
    }
}

/// Pre-baked run data for one kernel instance.
struct CaseData {
    args: Vec<u64>,
    init: Vec<(u64, Vec<u64>)>,
    expected: Vec<(u64, Vec<u64>)>,
}

impl From<crate::shapes::ShapeCase> for CaseData {
    fn from(c: crate::shapes::ShapeCase) -> Self {
        CaseData { args: c.args, init: c.init, expected: c.expected }
    }
}

/// One benchmark kernel.
pub struct Kernel {
    /// Kernel name.
    pub name: &'static str,
    /// Category.
    pub category: Category,
    /// One-line description.
    pub description: &'static str,
    /// Default problem size.
    pub default_n: usize,
    /// Suggested unroll factor.
    pub unroll: usize,
    /// Whether store lagging is safe (no cross-iteration aliasing).
    pub lag_stores: bool,
    /// Whether the adaptive exit-condition offload applies (E8).
    pub offload_exit: bool,
    build: fn() -> Function,
    case_data: fn(n: usize, seed: u64) -> CaseData,
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("name", &self.name)
            .field("category", &self.category)
            .finish()
    }
}

impl Kernel {
    /// Builds the kernel's IR.
    pub fn function(&self) -> Function {
        (self.build)()
    }

    /// Builds a runnable case of size `n` with deterministic inputs.
    pub fn case(&self, n: usize, seed: u64) -> KernelCase {
        let data = (self.case_data)(n, seed);
        KernelCase {
            name: self.name.to_owned(),
            function: self.function(),
            args: data.args,
            init: data.init,
            expected: data.expected,
        }
    }

    /// Compiler options tailored to this kernel for `geometry`.
    pub fn compiler_options(&self, geometry: FabricGeometry) -> CompilerOptions {
        let mut o = CompilerOptions::for_geometry(geometry);
        o.unroll_factor = self.unroll;
        o.codegen.lag_stores = self.lag_stores;
        o.region.offload_exit_condition = self.offload_exit;
        if self.offload_exit {
            o.region.min_compute_ops = 1;
        }
        o
    }
}

fn f64s(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn rand_f64s(n: usize, rng: &mut Rng64) -> Vec<f64> {
    (0..n).map(|_| rng.gen_range(-4.0..4.0)).collect()
}

// ---------------------------------------------------------------- micro

/// Horner evaluation of a degree-6 polynomial: heavy fp chain.
fn build_poly6() -> Function {
    let mut b = FunctionBuilder::new("poly6", &[("a", Type::Ptr), ("c", Type::Ptr), ("n", Type::I64)]);
    let (a, c, n) = (b.param(0), b.param(1), b.param(2));
    let zero = b.const_i(0);
    let one = b.const_i(1);
    let coef: Vec<_> = [0.5, -1.25, 0.75, 2.0, -0.5, 1.5, -2.25]
        .iter()
        .map(|&k| b.const_f(k))
        .collect();
    let body = b.block("body");
    let exit = b.block("exit");
    let entry = b.current();
    b.br(body);
    b.switch_to(body);
    let i = b.phi(Type::I64);
    let pa = b.gep(a, i, 8);
    let x = b.load(pa, Type::F64);
    let mut acc = coef[0];
    for &k in &coef[1..] {
        let m = b.bin(BinOp::Fmul, acc, x);
        acc = b.bin(BinOp::Fadd, m, k);
    }
    let pc = b.gep(c, i, 8);
    b.store(acc, pc);
    let i2 = b.bin(BinOp::Add, i, one);
    b.add_incoming(i, entry, zero);
    b.add_incoming(i, body, i2);
    let cond = b.cmp(CmpOp::Slt, i2, n);
    b.cond_br(cond, body, exit);
    b.switch_to(exit);
    b.ret(None);
    b.build().expect("poly6 is well-formed")
}

fn poly6_ref(x: f64) -> f64 {
    let coef = [0.5, -1.25, 0.75, 2.0, -0.5, 1.5, -2.25];
    let mut acc = coef[0];
    for &k in &coef[1..] {
        acc = acc * x + k;
    }
    acc
}

fn case_poly6(n: usize, seed: u64) -> CaseData {
    let mut rng = Rng64::seed_from_u64(seed);
    let a = rand_f64s(n, &mut rng);
    let c: Vec<f64> = a.iter().map(|&x| poly6_ref(x)).collect();
    CaseData {
        args: vec![BUF_A, BUF_C, n as u64],
        init: vec![(BUF_A, f64s(&a))],
        expected: vec![(BUF_C, f64s(&c))],
    }
}

/// Euclidean norm per element: exercises the long-latency sqrt pipeline.
fn build_dist() -> Function {
    let mut b = FunctionBuilder::new(
        "dist",
        &[("a", Type::Ptr), ("b", Type::Ptr), ("c", Type::Ptr), ("n", Type::I64)],
    );
    let (a, bb, c, n) = (b.param(0), b.param(1), b.param(2), b.param(3));
    let zero = b.const_i(0);
    let one = b.const_i(1);
    let body = b.block("body");
    let exit = b.block("exit");
    let entry = b.current();
    b.br(body);
    b.switch_to(body);
    let i = b.phi(Type::I64);
    let pa = b.gep(a, i, 8);
    let pb = b.gep(bb, i, 8);
    let x = b.load(pa, Type::F64);
    let y = b.load(pb, Type::F64);
    let xx = b.bin(BinOp::Fmul, x, x);
    let yy = b.bin(BinOp::Fmul, y, y);
    let s = b.bin(BinOp::Fadd, xx, yy);
    let d = b.un(UnOp::Fsqrt, s);
    let pc = b.gep(c, i, 8);
    b.store(d, pc);
    let i2 = b.bin(BinOp::Add, i, one);
    b.add_incoming(i, entry, zero);
    b.add_incoming(i, body, i2);
    let cond = b.cmp(CmpOp::Slt, i2, n);
    b.cond_br(cond, body, exit);
    b.switch_to(exit);
    b.ret(None);
    b.build().expect("dist is well-formed")
}

fn case_dist(n: usize, seed: u64) -> CaseData {
    let mut rng = Rng64::seed_from_u64(seed);
    let a = rand_f64s(n, &mut rng);
    let bv = rand_f64s(n, &mut rng);
    let c: Vec<f64> = a.iter().zip(&bv).map(|(x, y)| (x * x + y * y).sqrt()).collect();
    CaseData {
        args: vec![BUF_A, BUF_B, BUF_C, n as u64],
        init: vec![(BUF_A, f64s(&a)), (BUF_B, f64s(&bv))],
        expected: vec![(BUF_C, f64s(&c))],
    }
}

/// An integer mixing function (xorshift-multiply avalanche), 10 int ops.
fn build_hashmix() -> Function {
    let mut b = FunctionBuilder::new("hashmix", &[("a", Type::Ptr), ("c", Type::Ptr), ("n", Type::I64)]);
    let (a, c, n) = (b.param(0), b.param(1), b.param(2));
    let zero = b.const_i(0);
    let one = b.const_i(1);
    let s33 = b.const_i(33);
    let s29 = b.const_i(29);
    let s27 = b.const_i(27);
    let m1 = b.const_i(0x3C79_AC49);
    let m2 = b.const_i(0x1C69_B3F7);
    let body = b.block("body");
    let exit = b.block("exit");
    let entry = b.current();
    b.br(body);
    b.switch_to(body);
    let i = b.phi(Type::I64);
    let pa = b.gep(a, i, 8);
    let x0 = b.load(pa, Type::I64);
    let t1 = b.bin(BinOp::Lshr, x0, s33);
    let x1 = b.bin(BinOp::Xor, x0, t1);
    let x2 = b.bin(BinOp::Mul, x1, m1);
    let t2 = b.bin(BinOp::Lshr, x2, s29);
    let x3 = b.bin(BinOp::Xor, x2, t2);
    let x4 = b.bin(BinOp::Mul, x3, m2);
    let t3 = b.bin(BinOp::Lshr, x4, s27);
    let x5 = b.bin(BinOp::Xor, x4, t3);
    let pc = b.gep(c, i, 8);
    b.store(x5, pc);
    let i2 = b.bin(BinOp::Add, i, one);
    b.add_incoming(i, entry, zero);
    b.add_incoming(i, body, i2);
    let cond = b.cmp(CmpOp::Slt, i2, n);
    b.cond_br(cond, body, exit);
    b.switch_to(exit);
    b.ret(None);
    b.build().expect("hashmix is well-formed")
}

fn hashmix_ref(x0: u64) -> u64 {
    let x1 = x0 ^ (x0 >> 33);
    let x2 = x1.wrapping_mul(0x3C79_AC49);
    let x3 = x2 ^ (x2 >> 29);
    let x4 = x3.wrapping_mul(0x1C69_B3F7);
    x4 ^ (x4 >> 27)
}

fn case_hashmix(n: usize, seed: u64) -> CaseData {
    let mut rng = Rng64::seed_from_u64(seed);
    let a: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
    let c: Vec<u64> = a.iter().map(|&x| hashmix_ref(x)).collect();
    CaseData {
        args: vec![BUF_A, BUF_C, n as u64],
        init: vec![(BUF_A, a)],
        expected: vec![(BUF_C, c)],
    }
}

// -------------------------------------------------------------- regular

/// c[i] = a[i] + b[i].
fn build_vecadd() -> Function {
    let mut b = FunctionBuilder::new(
        "vecadd",
        &[("a", Type::Ptr), ("b", Type::Ptr), ("c", Type::Ptr), ("n", Type::I64)],
    );
    let (a, bb, c, n) = (b.param(0), b.param(1), b.param(2), b.param(3));
    let zero = b.const_i(0);
    let one = b.const_i(1);
    let body = b.block("body");
    let exit = b.block("exit");
    let entry = b.current();
    b.br(body);
    b.switch_to(body);
    let i = b.phi(Type::I64);
    let pa = b.gep(a, i, 8);
    let pb = b.gep(bb, i, 8);
    let x = b.load(pa, Type::F64);
    let y = b.load(pb, Type::F64);
    let s = b.bin(BinOp::Fadd, x, y);
    // A second op keeps the region above the profitability threshold,
    // matching the microbenchmark the prototype uses (add + scale).
    let two = b.const_f(1.0);
    let s2 = b.bin(BinOp::Fmul, s, two);
    let pc = b.gep(c, i, 8);
    b.store(s2, pc);
    let i2 = b.bin(BinOp::Add, i, one);
    b.add_incoming(i, entry, zero);
    b.add_incoming(i, body, i2);
    let cond = b.cmp(CmpOp::Slt, i2, n);
    b.cond_br(cond, body, exit);
    b.switch_to(exit);
    b.ret(None);
    b.build().expect("vecadd is well-formed")
}

fn case_vecadd(n: usize, seed: u64) -> CaseData {
    let mut rng = Rng64::seed_from_u64(seed);
    let a = rand_f64s(n, &mut rng);
    let bv = rand_f64s(n, &mut rng);
    let c: Vec<f64> = a.iter().zip(&bv).map(|(x, y)| (x + y) * 1.0).collect();
    CaseData {
        args: vec![BUF_A, BUF_B, BUF_C, n as u64],
        init: vec![(BUF_A, f64s(&a)), (BUF_B, f64s(&bv))],
        expected: vec![(BUF_C, f64s(&c))],
    }
}

/// c[i] = 2.5 * a[i] + b[i].
fn build_saxpy() -> Function {
    let mut b = FunctionBuilder::new(
        "saxpy",
        &[("a", Type::Ptr), ("b", Type::Ptr), ("c", Type::Ptr), ("n", Type::I64)],
    );
    let (a, bb, c, n) = (b.param(0), b.param(1), b.param(2), b.param(3));
    let zero = b.const_i(0);
    let one = b.const_i(1);
    let alpha = b.const_f(2.5);
    let body = b.block("body");
    let exit = b.block("exit");
    let entry = b.current();
    b.br(body);
    b.switch_to(body);
    let i = b.phi(Type::I64);
    let pa = b.gep(a, i, 8);
    let pb = b.gep(bb, i, 8);
    let x = b.load(pa, Type::F64);
    let y = b.load(pb, Type::F64);
    let ax = b.bin(BinOp::Fmul, x, alpha);
    let s = b.bin(BinOp::Fadd, ax, y);
    let pc = b.gep(c, i, 8);
    b.store(s, pc);
    let i2 = b.bin(BinOp::Add, i, one);
    b.add_incoming(i, entry, zero);
    b.add_incoming(i, body, i2);
    let cond = b.cmp(CmpOp::Slt, i2, n);
    b.cond_br(cond, body, exit);
    b.switch_to(exit);
    b.ret(None);
    b.build().expect("saxpy is well-formed")
}

fn case_saxpy(n: usize, seed: u64) -> CaseData {
    let mut rng = Rng64::seed_from_u64(seed);
    let a = rand_f64s(n, &mut rng);
    let bv = rand_f64s(n, &mut rng);
    let c: Vec<f64> = a.iter().zip(&bv).map(|(x, y)| x * 2.5 + y).collect();
    CaseData {
        args: vec![BUF_A, BUF_B, BUF_C, n as u64],
        init: vec![(BUF_A, f64s(&a)), (BUF_B, f64s(&bv))],
        expected: vec![(BUF_C, f64s(&c))],
    }
}

/// d[0] = sum a[i] * b[i] — a serial reduction (the accumulator round-trips
/// the fabric every iteration, bounding the achievable speedup).
fn build_dot() -> Function {
    let mut b = FunctionBuilder::new(
        "dot",
        &[("a", Type::Ptr), ("b", Type::Ptr), ("d", Type::Ptr), ("n", Type::I64)],
    );
    let (a, bb, d, n) = (b.param(0), b.param(1), b.param(2), b.param(3));
    let zero = b.const_i(0);
    let one = b.const_i(1);
    let zf = b.const_f(0.0);
    let body = b.block("body");
    let exit = b.block("exit");
    let entry = b.current();
    b.br(body);
    b.switch_to(body);
    let i = b.phi(Type::I64);
    let acc = b.phi(Type::F64);
    let pa = b.gep(a, i, 8);
    let pb = b.gep(bb, i, 8);
    let x = b.load(pa, Type::F64);
    let y = b.load(pb, Type::F64);
    let m = b.bin(BinOp::Fmul, x, y);
    let acc2 = b.bin(BinOp::Fadd, acc, m);
    let i2 = b.bin(BinOp::Add, i, one);
    b.add_incoming(i, entry, zero);
    b.add_incoming(i, body, i2);
    b.add_incoming(acc, entry, zf);
    b.add_incoming(acc, body, acc2);
    let cond = b.cmp(CmpOp::Slt, i2, n);
    b.cond_br(cond, body, exit);
    b.switch_to(exit);
    let pd = b.gep(d, zero, 8);
    b.store(acc2, pd);
    b.ret(None);
    b.build().expect("dot is well-formed")
}

fn case_dot(n: usize, seed: u64) -> CaseData {
    let mut rng = Rng64::seed_from_u64(seed);
    let a = rand_f64s(n, &mut rng);
    let bv = rand_f64s(n, &mut rng);
    let mut acc = 0.0f64;
    for (x, y) in a.iter().zip(&bv) {
        acc += x * y;
    }
    CaseData {
        args: vec![BUF_A, BUF_B, BUF_D, n as u64],
        init: vec![(BUF_A, f64s(&a)), (BUF_B, f64s(&bv))],
        expected: vec![(BUF_D, vec![acc.to_bits()])],
    }
}

/// Dense matrix multiply, row-major `n x n` (the inner product loop is
/// the accelerated region).
fn build_mm() -> Function {
    let mut b = FunctionBuilder::new(
        "mm",
        &[("a", Type::Ptr), ("b", Type::Ptr), ("c", Type::Ptr), ("n", Type::I64)],
    );
    let (a, bb, c, n) = (b.param(0), b.param(1), b.param(2), b.param(3));
    let zero = b.const_i(0);
    let one = b.const_i(1);
    let zf = b.const_f(0.0);
    let iloop = b.block("iloop");
    let jloop = b.block("jloop");
    let kloop = b.block("kloop");
    let jlatch = b.block("jlatch");
    let ilatch = b.block("ilatch");
    let exit = b.block("exit");
    let entry = b.current();
    b.br(iloop);

    b.switch_to(iloop);
    let i = b.phi(Type::I64);
    let in_base = b.bin(BinOp::Mul, i, n); // i*n
    b.br(jloop);

    b.switch_to(jloop);
    let j = b.phi(Type::I64);
    b.br(kloop);

    b.switch_to(kloop);
    let k = b.phi(Type::I64);
    let acc = b.phi(Type::F64);
    let aidx = b.bin(BinOp::Add, in_base, k);
    let kn = b.bin(BinOp::Mul, k, n);
    let bidx = b.bin(BinOp::Add, kn, j);
    let pa = b.gep(a, aidx, 8);
    let pb = b.gep(bb, bidx, 8);
    let x = b.load(pa, Type::F64);
    let y = b.load(pb, Type::F64);
    let m = b.bin(BinOp::Fmul, x, y);
    let acc2 = b.bin(BinOp::Fadd, acc, m);
    let k2 = b.bin(BinOp::Add, k, one);
    b.add_incoming(k, jloop, zero);
    b.add_incoming(k, kloop, k2);
    b.add_incoming(acc, jloop, zf);
    b.add_incoming(acc, kloop, acc2);
    let ck = b.cmp(CmpOp::Slt, k2, n);
    b.cond_br(ck, kloop, jlatch);

    b.switch_to(jlatch);
    let cidx = b.bin(BinOp::Add, in_base, j);
    let pc = b.gep(c, cidx, 8);
    b.store(acc2, pc);
    let j2 = b.bin(BinOp::Add, j, one);
    b.add_incoming(j, iloop, zero);
    b.add_incoming(j, jlatch, j2);
    let cj = b.cmp(CmpOp::Slt, j2, n);
    b.cond_br(cj, jloop, ilatch);

    b.switch_to(ilatch);
    let i2 = b.bin(BinOp::Add, i, one);
    b.add_incoming(i, entry, zero);
    b.add_incoming(i, ilatch, i2);
    let ci = b.cmp(CmpOp::Slt, i2, n);
    b.cond_br(ci, iloop, exit);

    b.switch_to(exit);
    b.ret(None);
    b.build().expect("mm is well-formed")
}

fn case_mm(n: usize, seed: u64) -> CaseData {
    let mut rng = Rng64::seed_from_u64(seed);
    let a = rand_f64s(n * n, &mut rng);
    let bv = rand_f64s(n * n, &mut rng);
    let mut c = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0f64;
            for k in 0..n {
                acc += a[i * n + k] * bv[k * n + j];
            }
            c[i * n + j] = acc;
        }
    }
    CaseData {
        args: vec![BUF_A, BUF_B, BUF_C, n as u64],
        init: vec![(BUF_A, f64s(&a)), (BUF_B, f64s(&bv))],
        expected: vec![(BUF_C, f64s(&c))],
    }
}

/// 3-point stencil: c[i] = 0.25*a[i-1] + 0.5*a[i] + 0.25*a[i+1], for
/// i in 1..n-1.
fn build_stencil3() -> Function {
    let mut b =
        FunctionBuilder::new("stencil3", &[("a", Type::Ptr), ("c", Type::Ptr), ("n", Type::I64)]);
    let (a, c, n) = (b.param(0), b.param(1), b.param(2));
    let one = b.const_i(1);
    let minus1 = b.const_i(-1);
    let kq = b.const_f(0.25);
    let kh = b.const_f(0.5);
    let body = b.block("body");
    let exit = b.block("exit");
    let entry = b.current();
    let bound = b.bin(BinOp::Add, n, minus1); // n-1
    b.br(body);
    b.switch_to(body);
    let i = b.phi(Type::I64);
    let im1 = b.bin(BinOp::Add, i, minus1);
    let ip1 = b.bin(BinOp::Add, i, one);
    let pl = b.gep(a, im1, 8);
    let pm = b.gep(a, i, 8);
    let pr = b.gep(a, ip1, 8);
    let l = b.load(pl, Type::F64);
    let m = b.load(pm, Type::F64);
    let r = b.load(pr, Type::F64);
    let lq = b.bin(BinOp::Fmul, l, kq);
    let mh = b.bin(BinOp::Fmul, m, kh);
    let rq = b.bin(BinOp::Fmul, r, kq);
    let s1 = b.bin(BinOp::Fadd, lq, mh);
    let s2 = b.bin(BinOp::Fadd, s1, rq);
    let pc = b.gep(c, i, 8);
    b.store(s2, pc);
    let i2 = b.bin(BinOp::Add, i, one);
    b.add_incoming(i, entry, one);
    b.add_incoming(i, body, i2);
    let cond = b.cmp(CmpOp::Slt, i2, bound);
    b.cond_br(cond, body, exit);
    b.switch_to(exit);
    b.ret(None);
    b.build().expect("stencil3 is well-formed")
}

fn case_stencil3(n: usize, seed: u64) -> CaseData {
    let mut rng = Rng64::seed_from_u64(seed);
    let a = rand_f64s(n, &mut rng);
    let mut c = vec![0.0f64; n];
    for i in 1..n - 1 {
        c[i] = a[i - 1] * 0.25 + a[i] * 0.5 + a[i + 1] * 0.25;
    }
    CaseData {
        args: vec![BUF_A, BUF_C, n as u64],
        init: vec![(BUF_A, f64s(&a))],
        expected: vec![(BUF_C + 8, f64s(&c[1..n - 1]))],
    }
}

/// Indirect gather with compute: c[i] = x[idx[i]]^2 + a[i].
fn build_gather() -> Function {
    let mut b = FunctionBuilder::new(
        "gather",
        &[("a", Type::Ptr), ("idx", Type::Ptr), ("x", Type::Ptr), ("c", Type::Ptr), ("n", Type::I64)],
    );
    let (a, idx, x, c, n) = (b.param(0), b.param(1), b.param(2), b.param(3), b.param(4));
    let zero = b.const_i(0);
    let one = b.const_i(1);
    let body = b.block("body");
    let exit = b.block("exit");
    let entry = b.current();
    b.br(body);
    b.switch_to(body);
    let i = b.phi(Type::I64);
    let pidx = b.gep(idx, i, 8);
    let iv = b.load(pidx, Type::I64);
    let px = b.gep(x, iv, 8);
    let xv = b.load(px, Type::F64);
    let pa = b.gep(a, i, 8);
    let av = b.load(pa, Type::F64);
    let sq = b.bin(BinOp::Fmul, xv, xv);
    let s = b.bin(BinOp::Fadd, sq, av);
    let pc = b.gep(c, i, 8);
    b.store(s, pc);
    let i2 = b.bin(BinOp::Add, i, one);
    b.add_incoming(i, entry, zero);
    b.add_incoming(i, body, i2);
    let cond = b.cmp(CmpOp::Slt, i2, n);
    b.cond_br(cond, body, exit);
    b.switch_to(exit);
    b.ret(None);
    b.build().expect("gather is well-formed")
}

fn case_gather(n: usize, seed: u64) -> CaseData {
    let mut rng = Rng64::seed_from_u64(seed);
    let a = rand_f64s(n, &mut rng);
    let x = rand_f64s(n, &mut rng);
    let idx: Vec<u64> = (0..n).map(|_| rng.gen_range(0..n as u64)).collect();
    let c: Vec<f64> =
        (0..n).map(|i| x[idx[i] as usize] * x[idx[i] as usize] + a[i]).collect();
    CaseData {
        args: vec![BUF_A, BUF_B, BUF_D, BUF_C, n as u64],
        init: vec![(BUF_A, f64s(&a)), (BUF_B, idx), (BUF_D, f64s(&x))],
        expected: vec![(BUF_C, f64s(&c))],
    }
}


/// 4-tap FIR filter: c[i] = sum_k h[k] * a[i+k] — four loads and seven
/// fp ops per output, high ILP for the fabric.
fn build_fir4() -> Function {
    let mut b = FunctionBuilder::new("fir4", &[("a", Type::Ptr), ("c", Type::Ptr), ("n", Type::I64)]);
    let (a, c, n) = (b.param(0), b.param(1), b.param(2));
    let zero = b.const_i(0);
    let one = b.const_i(1);
    let taps: Vec<_> = [0.25, 0.5, -0.125, 0.375].iter().map(|&h| b.const_f(h)).collect();
    let body = b.block("body");
    let exit = b.block("exit");
    let entry = b.current();
    b.br(body);
    b.switch_to(body);
    let i = b.phi(Type::I64);
    let mut acc: Option<dyser_compiler::Value> = None;
    for (k, tap) in taps.iter().enumerate() {
        let ik = if k == 0 {
            i
        } else {
            let off = b.const_i(k as i64);
            b.bin(BinOp::Add, i, off)
        };
        let p = b.gep(a, ik, 8);
        let x = b.load(p, Type::F64);
        let term = b.bin(BinOp::Fmul, x, *tap);
        acc = Some(match acc {
            None => term,
            Some(prev) => b.bin(BinOp::Fadd, prev, term),
        });
    }
    let pc = b.gep(c, i, 8);
    b.store(acc.expect("taps non-empty"), pc);
    let i2 = b.bin(BinOp::Add, i, one);
    b.add_incoming(i, entry, zero);
    b.add_incoming(i, body, i2);
    let cond = b.cmp(CmpOp::Slt, i2, n);
    b.cond_br(cond, body, exit);
    b.switch_to(exit);
    b.ret(None);
    b.build().expect("fir4 is well-formed")
}

fn case_fir4(n: usize, seed: u64) -> CaseData {
    let mut rng = Rng64::seed_from_u64(seed);
    let a = rand_f64s(n + 3, &mut rng);
    let taps = [0.25, 0.5, -0.125, 0.375];
    let c: Vec<f64> = (0..n)
        .map(|i| {
            let mut acc = a[i] * taps[0];
            for (k, &h) in taps.iter().enumerate().skip(1) {
                acc += a[i + k] * h;
            }
            acc
        })
        .collect();
    CaseData {
        args: vec![BUF_A, BUF_C, n as u64],
        init: vec![(BUF_A, f64s(&a))],
        expected: vec![(BUF_C, f64s(&c))],
    }
}

// ------------------------------------------------------------ irregular

/// Clamp with branches: if (x < 0) 0 else if (x > hi) hi else x.
/// Irregular but if-convertible — the compiler predicates it.
fn build_relu_clamp() -> Function {
    let mut b =
        FunctionBuilder::new("relu_clamp", &[("a", Type::Ptr), ("c", Type::Ptr), ("n", Type::I64)]);
    let (a, c, n) = (b.param(0), b.param(1), b.param(2));
    let zero = b.const_i(0);
    let one = b.const_i(1);
    let zf = b.const_f(0.0);
    let hi = b.const_f(2.0);
    let head = b.block("head");
    let neg = b.block("neg");
    let pos = b.block("pos");
    let big = b.block("big");
    let ok = b.block("ok");
    let join2 = b.block("join2");
    let join = b.block("join");
    let exit = b.block("exit");
    let entry = b.current();
    b.br(head);

    b.switch_to(head);
    let i = b.phi(Type::I64);
    let pa = b.gep(a, i, 8);
    let x = b.load(pa, Type::F64);
    let is_neg = b.cmp(CmpOp::Flt, x, zf);
    b.cond_br(is_neg, neg, pos);

    b.switch_to(neg);
    let zneg = b.bin(BinOp::Fmul, x, zf);
    b.br(join);

    b.switch_to(pos);
    let is_big = b.cmp(CmpOp::Flt, hi, x);
    b.cond_br(is_big, big, ok);
    b.switch_to(big);
    let chigh = b.bin(BinOp::Fadd, hi, zf);
    b.br(join2);
    b.switch_to(ok);
    let cx = b.bin(BinOp::Fadd, x, zf);
    b.br(join2);
    b.switch_to(join2);
    let inner = b.phi(Type::F64);
    b.add_incoming(inner, big, chigh);
    b.add_incoming(inner, ok, cx);
    b.br(join);

    b.switch_to(join);
    let res = b.phi(Type::F64);
    b.add_incoming(res, neg, zneg);
    b.add_incoming(res, join2, inner);
    let pc = b.gep(c, i, 8);
    b.store(res, pc);
    let i2 = b.bin(BinOp::Add, i, one);
    b.add_incoming(i, entry, zero);
    b.add_incoming(i, join, i2);
    let cond = b.cmp(CmpOp::Slt, i2, n);
    b.cond_br(cond, head, exit);

    b.switch_to(exit);
    b.ret(None);
    b.build().expect("relu_clamp is well-formed")
}

fn case_relu_clamp(n: usize, seed: u64) -> CaseData {
    let mut rng = Rng64::seed_from_u64(seed);
    let a = rand_f64s(n, &mut rng);
    let c: Vec<f64> = a
        .iter()
        .map(|&x| {
            if x < 0.0 {
                x * 0.0 // preserves the sign of -0.0 exactly as the IR does
            } else if 2.0 < x {
                2.0 + 0.0
            } else {
                x + 0.0
            }
        })
        .collect();
    CaseData {
        args: vec![BUF_A, BUF_C, n as u64],
        init: vec![(BUF_A, f64s(&a))],
        expected: vec![(BUF_C, f64s(&c))],
    }
}

/// Reduction with data-dependent select: d[0] = max_i |a[i]|.
fn build_absmax() -> Function {
    let mut b = FunctionBuilder::new("absmax", &[("a", Type::Ptr), ("d", Type::Ptr), ("n", Type::I64)]);
    let (a, d, n) = (b.param(0), b.param(1), b.param(2));
    let zero = b.const_i(0);
    let one = b.const_i(1);
    let zf = b.const_f(0.0);
    let body = b.block("body");
    let exit = b.block("exit");
    let entry = b.current();
    b.br(body);
    b.switch_to(body);
    let i = b.phi(Type::I64);
    let m = b.phi(Type::F64);
    let pa = b.gep(a, i, 8);
    let x = b.load(pa, Type::F64);
    let ax = b.un(UnOp::Fabs, x);
    let gt = b.cmp(CmpOp::Flt, m, ax);
    let m2 = b.select(gt, ax, m);
    let i2 = b.bin(BinOp::Add, i, one);
    b.add_incoming(i, entry, zero);
    b.add_incoming(i, body, i2);
    b.add_incoming(m, entry, zf);
    b.add_incoming(m, body, m2);
    let cond = b.cmp(CmpOp::Slt, i2, n);
    b.cond_br(cond, body, exit);
    b.switch_to(exit);
    let pd = b.gep(d, zero, 8);
    b.store(m2, pd);
    b.ret(None);
    b.build().expect("absmax is well-formed")
}

fn case_absmax(n: usize, seed: u64) -> CaseData {
    let mut rng = Rng64::seed_from_u64(seed);
    let a = rand_f64s(n, &mut rng);
    let mut m = 0.0f64;
    for &x in &a {
        let ax = x.abs();
        if m < ax {
            m = ax;
        }
    }
    CaseData {
        args: vec![BUF_A, BUF_D, n as u64],
        init: vec![(BUF_A, f64s(&a))],
        expected: vec![(BUF_D, vec![m.to_bits()])],
    }
}

/// Early-exit search (control-flow shape A): d[0] = first i with
/// a[i] == key, else n. Not acceleratable — the paper's finding.
/// The IR and case live in [`crate::shapes`].
fn build_find_first() -> Function {
    crate::shapes::early_exit_search()
}

fn case_find_first(n: usize, seed: u64) -> CaseData {
    crate::shapes::early_exit_search_case(n, seed).into()
}

/// Conditional store (control-flow shape B): if a[i] < 0, c[i] = 0.
/// The store under a branch defeats if-conversion — not acceleratable.
/// The IR and case live in [`crate::shapes`].
fn build_cond_store() -> Function {
    crate::shapes::nested_control_store()
}

fn case_cond_store(n: usize, seed: u64) -> CaseData {
    crate::shapes::nested_control_store_case(n, seed).into()
}

/// Data-dependent-exit scan: advance while `3*a[i]^2 + a[i] < limit`;
/// store the stopping index. Acceleratable only with the adaptive
/// exit-condition offload (experiment E8).
fn build_scan_poly() -> Function {
    let mut b = FunctionBuilder::new(
        "scan_poly",
        &[("a", Type::Ptr), ("d", Type::Ptr), ("limit", Type::I64)],
    );
    let (a, d, limit) = (b.param(0), b.param(1), b.param(2));
    let zero = b.const_i(0);
    let one = b.const_i(1);
    let three = b.const_i(3);
    let body = b.block("body");
    let exit = b.block("exit");
    let entry = b.current();
    b.br(body);
    b.switch_to(body);
    let i = b.phi(Type::I64);
    let pa = b.gep(a, i, 8);
    let x = b.load(pa, Type::I64);
    let xx = b.bin(BinOp::Mul, x, x);
    let x3 = b.bin(BinOp::Mul, xx, three);
    let y = b.bin(BinOp::Add, x3, x);
    let i2 = b.bin(BinOp::Add, i, one);
    b.add_incoming(i, entry, zero);
    b.add_incoming(i, body, i2);
    let cond = b.cmp(CmpOp::Slt, y, limit);
    b.cond_br(cond, body, exit);
    b.switch_to(exit);
    let pd = b.gep(d, zero, 8);
    b.store(i2, pd);
    b.ret(None);
    b.build().expect("scan_poly is well-formed")
}

fn case_scan_poly(n: usize, seed: u64) -> CaseData {
    let mut rng = Rng64::seed_from_u64(seed);
    // Strictly increasing positives so the scan always terminates in range.
    let mut a: Vec<u64> = Vec::with_capacity(n);
    let mut v = 1i64;
    for _ in 0..n {
        v += rng.gen_range(1i64..4);
        a.push(v as u64);
    }
    // Stop roughly 70% in.
    let stop = (n * 7 / 10).max(1).min(n - 1);
    let xs = a[stop] as i64;
    let limit = 3 * xs * xs + xs; // y(stop) == limit, so slt fails there
    let mut i = 0usize;
    loop {
        let x = a[i] as i64;
        let y = 3 * x * x + x;
        i += 1;
        if y >= limit {
            break;
        }
    }
    CaseData {
        args: vec![BUF_A, BUF_D, limit as u64],
        init: vec![(BUF_A, a)],
        expected: vec![(BUF_D, vec![i as u64])],
    }
}

// ---------------------------------------------------------------- suite

/// The full suite in evaluation order.
pub fn suite() -> Vec<Kernel> {
    vec![
        Kernel {
            name: "poly6",
            category: Category::Micro,
            description: "degree-6 Horner polynomial per element",
            default_n: 512,
            unroll: 4,
            lag_stores: true,
            offload_exit: false,
            build: build_poly6,
            case_data: case_poly6,
        },
        Kernel {
            name: "dist",
            category: Category::Micro,
            description: "2D Euclidean norm per element (sqrt-heavy)",
            default_n: 512,
            unroll: 4,
            lag_stores: true,
            offload_exit: false,
            build: build_dist,
            case_data: case_dist,
        },
        Kernel {
            name: "hashmix",
            category: Category::Micro,
            description: "64-bit avalanche hash per element (int-heavy)",
            default_n: 512,
            unroll: 4,
            lag_stores: true,
            offload_exit: false,
            build: build_hashmix,
            case_data: case_hashmix,
        },
        Kernel {
            name: "vecadd",
            category: Category::Regular,
            description: "elementwise vector add (memory-bound)",
            default_n: 1024,
            unroll: 4,
            lag_stores: true,
            offload_exit: false,
            build: build_vecadd,
            case_data: case_vecadd,
        },
        Kernel {
            name: "saxpy",
            category: Category::Regular,
            description: "scaled vector add",
            default_n: 1024,
            unroll: 4,
            lag_stores: true,
            offload_exit: false,
            build: build_saxpy,
            case_data: case_saxpy,
        },
        Kernel {
            name: "dot",
            category: Category::Regular,
            description: "dot product (serial reduction)",
            default_n: 1024,
            unroll: 4,
            lag_stores: true,
            offload_exit: false,
            build: build_dot,
            case_data: case_dot,
        },
        Kernel {
            name: "mm",
            category: Category::Regular,
            description: "dense matrix multiply (n x n)",
            default_n: 12,
            unroll: 4,
            lag_stores: true,
            offload_exit: false,
            build: build_mm,
            case_data: case_mm,
        },
        Kernel {
            name: "stencil3",
            category: Category::Regular,
            description: "1D 3-point stencil",
            default_n: 1024,
            unroll: 4,
            lag_stores: true,
            offload_exit: false,
            build: build_stencil3,
            case_data: case_stencil3,
        },
        Kernel {
            name: "fir4",
            category: Category::Regular,
            description: "4-tap FIR filter (high-ILP fp)",
            default_n: 512,
            unroll: 4,
            lag_stores: true,
            offload_exit: false,
            build: build_fir4,
            case_data: case_fir4,
        },
        Kernel {
            name: "gather",
            category: Category::Regular,
            description: "indirect gather with square-accumulate",
            default_n: 512,
            unroll: 4,
            lag_stores: true,
            offload_exit: false,
            build: build_gather,
            case_data: case_gather,
        },
        Kernel {
            name: "relu_clamp",
            category: Category::Irregular,
            description: "two-level clamp (if-convertible irregular control)",
            default_n: 512,
            unroll: 4,
            lag_stores: true,
            offload_exit: false,
            build: build_relu_clamp,
            case_data: case_relu_clamp,
        },
        Kernel {
            name: "absmax",
            category: Category::Irregular,
            description: "running |max| reduction with select",
            default_n: 512,
            unroll: 4,
            lag_stores: true,
            offload_exit: false,
            build: build_absmax,
            case_data: case_absmax,
        },
        Kernel {
            name: "find_first",
            category: Category::Irregular,
            description: "early-exit linear search (shape A: not acceleratable)",
            default_n: 512,
            unroll: 1,
            lag_stores: true,
            offload_exit: false,
            build: build_find_first,
            case_data: case_find_first,
        },
        Kernel {
            name: "cond_store",
            category: Category::Irregular,
            description: "conditional store (shape B: not acceleratable)",
            default_n: 512,
            unroll: 1,
            lag_stores: true,
            offload_exit: false,
            build: build_cond_store,
            case_data: case_cond_store,
        },
        Kernel {
            name: "scan_poly",
            category: Category::Irregular,
            description: "data-dependent-exit scan (adaptive offload, E8)",
            default_n: 512,
            unroll: 1,
            lag_stores: true,
            offload_exit: true,
            build: build_scan_poly,
            case_data: case_scan_poly,
        },
    ]
}

// --------------------------------------------- whole-program inner regions

/// The pattern word `p1` searches for, as a big-endian 64-bit integer.
pub const P1_KEY: u64 = u64::from_be_bytes(*b"NEEDLE!!");

/// Wrapping multiplier of `p2`'s payload hash (see `programs::P2_HASH_MULT`).
const P2_MULT: u64 = 0x9E37_79B9_7F4A_7C15;

/// `p1`'s inner region: c[i] = (a[i] == key) ? 1 : 0.
fn build_p1_match() -> Function {
    let mut b =
        FunctionBuilder::new("p1_match", &[("a", Type::Ptr), ("c", Type::Ptr), ("n", Type::I64)]);
    let (a, c, n) = (b.param(0), b.param(1), b.param(2));
    let zero = b.const_i(0);
    let one = b.const_i(1);
    let key = b.const_i(P1_KEY as i64);
    let body = b.block("body");
    let exit = b.block("exit");
    let entry = b.current();
    b.br(body);
    b.switch_to(body);
    let i = b.phi(Type::I64);
    let pa = b.gep(a, i, 8);
    let x = b.load(pa, Type::I64);
    let hit = b.cmp(CmpOp::Eq, x, key);
    let flag = b.select(hit, one, zero);
    let pc = b.gep(c, i, 8);
    b.store(flag, pc);
    let i2 = b.bin(BinOp::Add, i, one);
    b.add_incoming(i, entry, zero);
    b.add_incoming(i, body, i2);
    let cond = b.cmp(CmpOp::Slt, i2, n);
    b.cond_br(cond, body, exit);
    b.switch_to(exit);
    b.ret(None);
    b.build().expect("p1_match is well-formed")
}

fn case_p1_match(n: usize, seed: u64) -> CaseData {
    let mut rng = Rng64::seed_from_u64(seed);
    let a: Vec<u64> =
        (0..n).map(|i| if i % 5 == 3 { P1_KEY } else { rng.next_u64() }).collect();
    let c: Vec<u64> = a.iter().map(|&x| u64::from(x == P1_KEY)).collect();
    CaseData {
        args: vec![BUF_A, BUF_C, n as u64],
        init: vec![(BUF_A, a)],
        expected: vec![(BUF_C, c)],
    }
}

/// `p2`'s inner region: c[i] = a[i] * M (wrapping golden-ratio mix).
fn build_p2_hash() -> Function {
    let mut b =
        FunctionBuilder::new("p2_hash", &[("a", Type::Ptr), ("c", Type::Ptr), ("n", Type::I64)]);
    let (a, c, n) = (b.param(0), b.param(1), b.param(2));
    let zero = b.const_i(0);
    let one = b.const_i(1);
    let m = b.const_i(P2_MULT as i64);
    let body = b.block("body");
    let exit = b.block("exit");
    let entry = b.current();
    b.br(body);
    b.switch_to(body);
    let i = b.phi(Type::I64);
    let pa = b.gep(a, i, 8);
    let x = b.load(pa, Type::I64);
    let h = b.bin(BinOp::Mul, x, m);
    let pc = b.gep(c, i, 8);
    b.store(h, pc);
    let i2 = b.bin(BinOp::Add, i, one);
    b.add_incoming(i, entry, zero);
    b.add_incoming(i, body, i2);
    let cond = b.cmp(CmpOp::Slt, i2, n);
    b.cond_br(cond, body, exit);
    b.switch_to(exit);
    b.ret(None);
    b.build().expect("p2_hash is well-formed")
}

fn case_p2_hash(n: usize, seed: u64) -> CaseData {
    let mut rng = Rng64::seed_from_u64(seed);
    let a: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
    let c: Vec<u64> = a.iter().map(|&x| x.wrapping_mul(P2_MULT)).collect();
    CaseData {
        args: vec![BUF_A, BUF_C, n as u64],
        init: vec![(BUF_A, a)],
        expected: vec![(BUF_C, c)],
    }
}

/// `p3`'s inner region: c[i] = a[i-1] + 2*a[i] + a[i+1] (wrapping int),
/// for i in 1..n-1.
fn build_p3_stencil() -> Function {
    let mut b = FunctionBuilder::new(
        "p3_stencil",
        &[("a", Type::Ptr), ("c", Type::Ptr), ("n", Type::I64)],
    );
    let (a, c, n) = (b.param(0), b.param(1), b.param(2));
    let one = b.const_i(1);
    let minus1 = b.const_i(-1);
    let body = b.block("body");
    let exit = b.block("exit");
    let entry = b.current();
    let bound = b.bin(BinOp::Add, n, minus1);
    b.br(body);
    b.switch_to(body);
    let i = b.phi(Type::I64);
    let im1 = b.bin(BinOp::Add, i, minus1);
    let ip1 = b.bin(BinOp::Add, i, one);
    let pl = b.gep(a, im1, 8);
    let pm = b.gep(a, i, 8);
    let pr = b.gep(a, ip1, 8);
    let l = b.load(pl, Type::I64);
    let m = b.load(pm, Type::I64);
    let r = b.load(pr, Type::I64);
    let m2 = b.bin(BinOp::Shl, m, one);
    let s1 = b.bin(BinOp::Add, l, m2);
    let s2 = b.bin(BinOp::Add, s1, r);
    let pc = b.gep(c, i, 8);
    b.store(s2, pc);
    let i2 = b.bin(BinOp::Add, i, one);
    b.add_incoming(i, entry, one);
    b.add_incoming(i, body, i2);
    let cond = b.cmp(CmpOp::Slt, i2, bound);
    b.cond_br(cond, body, exit);
    b.switch_to(exit);
    b.ret(None);
    b.build().expect("p3_stencil is well-formed")
}

fn case_p3_stencil(n: usize, seed: u64) -> CaseData {
    let mut rng = Rng64::seed_from_u64(seed);
    let a: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
    let mut c = vec![0u64; n];
    for i in 1..n.saturating_sub(1) {
        c[i] = a[i - 1].wrapping_add(a[i] << 1).wrapping_add(a[i + 1]);
    }
    CaseData {
        args: vec![BUF_A, BUF_C, n as u64],
        // Pre-fill BUF_C so the untouched edge words are well-defined.
        init: vec![(BUF_A, a), (BUF_C, vec![0u64; n])],
        expected: vec![(BUF_C, c)],
    }
}

/// The inner regions of the whole-program workloads (`p1`..`p3`) as
/// standalone IR kernels, so the DSE sweep can explore them alongside
/// the main suite.
pub fn program_inner_kernels() -> Vec<Kernel> {
    vec![
        Kernel {
            name: "p1_match",
            category: Category::Regular,
            description: "p1 inner region: 8-byte pattern match flags",
            default_n: 512,
            unroll: 4,
            lag_stores: true,
            offload_exit: false,
            build: build_p1_match,
            case_data: case_p1_match,
        },
        Kernel {
            name: "p2_hash",
            category: Category::Regular,
            description: "p2 inner region: wrapping multiply hash",
            default_n: 512,
            unroll: 4,
            lag_stores: true,
            offload_exit: false,
            build: build_p2_hash,
            case_data: case_p2_hash,
        },
        Kernel {
            name: "p3_stencil",
            category: Category::Regular,
            description: "p3 inner region: integer 3-tap stencil",
            default_n: 512,
            unroll: 4,
            lag_stores: true,
            offload_exit: false,
            build: build_p3_stencil,
            case_data: case_p3_stencil,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyser_compiler::ir::interp::{interpret, InterpMem};

    /// Interprets a kernel's IR against its case and checks the expected
    /// outputs — validating builder + reference agreement before any
    /// machine-level runs.
    fn check_against_interpreter(k: &Kernel, n: usize) {
        let case = k.case(n, 7);
        let mut mem = InterpMem::new();
        for (addr, words) in &case.init {
            mem.write_u64_slice(*addr, words);
        }
        interpret(&case.function, &case.args, &mut mem, 50_000_000)
            .unwrap_or_else(|e| panic!("{}: {e}", k.name));
        for (addr, words) in &case.expected {
            for (i, w) in words.iter().enumerate() {
                let got = mem.read_u64(addr + 8 * i as u64);
                assert_eq!(
                    got,
                    *w,
                    "{}: word {} at {:#x}: got {:#x} want {:#x}",
                    k.name,
                    i,
                    addr + 8 * i as u64,
                    got,
                    w
                );
            }
        }
    }

    #[test]
    fn every_kernel_matches_its_reference_in_the_interpreter() {
        for k in suite() {
            let n = match k.name {
                "mm" => 6,
                _ => 33,
            };
            check_against_interpreter(&k, n);
        }
    }

    #[test]
    fn program_inner_kernels_match_their_references_in_the_interpreter() {
        for k in program_inner_kernels() {
            check_against_interpreter(&k, 33);
        }
    }

    #[test]
    fn suite_covers_all_categories() {
        let s = suite();
        assert!(s.iter().any(|k| k.category == Category::Micro));
        assert!(s.iter().any(|k| k.category == Category::Regular));
        assert!(s.iter().any(|k| k.category == Category::Irregular));
        assert!(s.len() >= 14);
    }

    #[test]
    fn kernel_names_unique() {
        let s = suite();
        let names: std::collections::HashSet<_> = s.iter().map(|k| k.name).collect();
        assert_eq!(names.len(), s.len());
    }

    #[test]
    fn shape_classification_matches_intent() {
        use dyser_compiler::{classify_loops, LoopShape};
        let s = suite();
        let find = |name: &str| s.iter().find(|k| k.name == name).unwrap().function();

        let shapes = classify_loops(&find("find_first"));
        assert!(shapes.iter().any(|r| r.shape == LoopShape::EarlyExit));

        let shapes = classify_loops(&find("cond_store"));
        assert!(shapes.iter().any(|r| r.shape == LoopShape::NestedControl));

        let shapes = classify_loops(&find("relu_clamp"));
        assert!(shapes.iter().any(|r| r.shape == LoopShape::IfConvertible), "{shapes:?}");

        let shapes = classify_loops(&find("vecadd"));
        assert!(shapes.iter().all(|r| r.shape == LoopShape::Regular));
    }

    #[test]
    fn deterministic_cases() {
        let k = &suite()[0];
        let c1 = k.case(16, 42);
        let c2 = k.case(16, 42);
        assert_eq!(c1.init, c2.init);
        assert_eq!(c1.expected, c2.expected);
        let c3 = k.case(16, 43);
        assert_ne!(c1.init, c3.init, "different seeds, different data");
    }
}
