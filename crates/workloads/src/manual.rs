//! Hand-optimised DySER implementations (the "manual" bars of E4).
//!
//! These are what an expert writes directly against the ISA extension:
//! pointer-increment addressing instead of re-computed `gep`s, `dload`/
//! `dstore` streaming, the **flexible vector port interface**
//! (`dsendv`/`drecvv`), and tree-reduction configurations that a
//! scalar-slicing compiler cannot derive. Each manual kernel supplies its
//! *own* reference outputs because an expert may legally re-associate
//! floating-point reductions (the tree-`dot` does), which changes the
//! bit-exact result.

use dyser_compiler::{Program, CODE_BASE};
use dyser_fabric::{ConfigBuilder, FabricGeometry, FuOp};
use dyser_isa::{
    regs, AluOp, Assembler, ConfigId, DyserInstr, FReg, ICond, Instr, Op2, Port, Reg, VecPort,
};
use dyser_rng::Rng64;

use crate::{BUF_A, BUF_B, BUF_C, BUF_D};

/// A manual run bundle: program plus its own inputs/expected outputs.
#[derive(Debug, Clone)]
pub struct ManualCase {
    /// Kernel name (matches the compiler kernel it competes with).
    pub name: &'static str,
    /// The hand-written program.
    pub program: Program,
    /// Arguments.
    pub args: Vec<u64>,
    /// Initial memory contents.
    pub init: Vec<(u64, Vec<u64>)>,
    /// Expected memory after the run.
    pub expected: Vec<(u64, Vec<u64>)>,
}

fn f64s(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn finish(asm: &Assembler, configs: Vec<dyser_fabric::FabricConfig>) -> Program {
    let listing = asm.resolve().expect("manual program assembles");
    let code = asm.assemble().expect("manual program assembles");
    Program { code, listing, entry: CODE_BASE, pool: Vec::new(), spill_slots: 1, configs }
}

/// Manual `vecadd`: four add lanes, streaming `dload`/`dstore`, pointer
/// increments, no per-element address arithmetic. Requires `n % 4 == 0`.
pub fn vecadd(geometry: FabricGeometry, n: usize, seed: u64) -> Option<ManualCase> {
    assert!(n.is_multiple_of(4) && n > 0, "manual vecadd handles multiples of 4");
    if geometry.input_ports() < 8 || geometry.output_ports() < 4 {
        return None;
    }

    let mut b = ConfigBuilder::new(geometry);
    b.set_name("manual::vecadd");
    for lane in 0..4 {
        let x = b.input_value(2 * lane);
        let y = b.input_value(2 * lane + 1);
        let s = b.op(FuOp::FAdd, &[x, y]);
        b.output_value(s, lane);
    }
    let config = b.build().ok()?;

    let mut asm = Assembler::new();
    let (pa, pb, pc, cnt) = (regs::O0, regs::O1, regs::O2, regs::O3);
    asm.push(Instr::Dyser(DyserInstr::Init { config: ConfigId::new(0) }));
    asm.label("loop");
    for lane in 0..4i16 {
        asm.push(Instr::Dyser(DyserInstr::Load {
            port: Port::new(2 * lane as u8),
            rs1: pa,
            op2: Op2::Imm(8 * lane),
        }));
        asm.push(Instr::Dyser(DyserInstr::Load {
            port: Port::new(2 * lane as u8 + 1),
            rs1: pb,
            op2: Op2::Imm(8 * lane),
        }));
    }
    for lane in 0..4i16 {
        asm.push(Instr::Dyser(DyserInstr::Store {
            port: Port::new(lane as u8),
            rs1: pc,
            op2: Op2::Imm(8 * lane),
        }));
    }
    asm.push(Instr::alu(AluOp::Add, pa, pa, Op2::Imm(32)));
    asm.push(Instr::alu(AluOp::Add, pb, pb, Op2::Imm(32)));
    asm.push(Instr::alu(AluOp::Add, pc, pc, Op2::Imm(32)));
    asm.push(Instr::alu(AluOp::SubCc, cnt, cnt, Op2::Imm(4)));
    asm.branch(ICond::Ne, "loop");
    asm.push(Instr::Nop);
    asm.push(Instr::Dyser(DyserInstr::Fence));
    asm.push(Instr::Halt);

    let mut rng = Rng64::seed_from_u64(seed);
    let a: Vec<f64> = (0..n).map(|_| rng.gen_range(-4.0..4.0)).collect();
    let bv: Vec<f64> = (0..n).map(|_| rng.gen_range(-4.0..4.0)).collect();
    let c: Vec<f64> = a.iter().zip(&bv).map(|(x, y)| x + y).collect();

    Some(ManualCase {
        name: "vecadd",
        program: finish(&asm, vec![config]),
        args: vec![BUF_A, BUF_B, BUF_C, n as u64],
        init: vec![(BUF_A, f64s(&a)), (BUF_B, f64s(&bv))],
        expected: vec![(BUF_C, f64s(&c))],
    })
}

/// Manual `saxpy` using the **vector port interface**: four elements of
/// `a` travel through one `dsendv`, four of `b` through another, and the
/// four results return through one `drecvv`. Requires `n % 4 == 0`.
pub fn saxpy(geometry: FabricGeometry, n: usize, seed: u64) -> Option<ManualCase> {
    assert!(n.is_multiple_of(4) && n > 0, "manual saxpy handles multiples of 4");
    if geometry.input_ports() < 8 || geometry.output_ports() < 4 {
        return None;
    }

    let mut b = ConfigBuilder::new(geometry);
    b.set_name("manual::saxpy");
    for lane in 0..4 {
        let x = b.input_value(lane);
        let y = b.input_value(4 + lane);
        let alpha = b.const_value(2.5f64.to_bits());
        let ax = b.op(FuOp::FMul, &[x, alpha]);
        let s = b.op(FuOp::FAdd, &[ax, y]);
        b.output_value(s, lane);
    }
    b.vec_in(0, vec![0, 1, 2, 3]);
    b.vec_in(1, vec![4, 5, 6, 7]);
    b.vec_out(0, vec![0, 1, 2, 3]);
    let config = b.build().ok()?;

    let mut asm = Assembler::new();
    let (pa, pb, pc, cnt) = (regs::O0, regs::O1, regs::O2, regs::O3);
    asm.push(Instr::Dyser(DyserInstr::Init { config: ConfigId::new(0) }));
    asm.label("loop");
    // Load 4 a-elements into %l0..%l3 and stream them as one vector send.
    for k in 0..4i16 {
        asm.push(Instr::Load {
            kind: dyser_isa::LoadKind::Ldx,
            rd: Reg::new(16 + k as u8),
            rs1: pa,
            op2: Op2::Imm(8 * k),
        });
    }
    asm.push(Instr::Dyser(DyserInstr::SendVec {
        vport: VecPort::new(0),
        base: regs::L0,
        count: 4,
    }));
    for k in 0..4i16 {
        asm.push(Instr::Load {
            kind: dyser_isa::LoadKind::Ldx,
            rd: Reg::new(16 + k as u8),
            rs1: pb,
            op2: Op2::Imm(8 * k),
        });
    }
    asm.push(Instr::Dyser(DyserInstr::SendVec {
        vport: VecPort::new(1),
        base: regs::L0,
        count: 4,
    }));
    asm.push(Instr::Dyser(DyserInstr::RecvVec {
        vport: VecPort::new(0),
        base: regs::L0,
        count: 4,
    }));
    for k in 0..4i16 {
        asm.push(Instr::Store {
            kind: dyser_isa::StoreKind::Stx,
            rs: Reg::new(16 + k as u8),
            rs1: pc,
            op2: Op2::Imm(8 * k),
        });
    }
    asm.push(Instr::alu(AluOp::Add, pa, pa, Op2::Imm(32)));
    asm.push(Instr::alu(AluOp::Add, pb, pb, Op2::Imm(32)));
    asm.push(Instr::alu(AluOp::Add, pc, pc, Op2::Imm(32)));
    asm.push(Instr::alu(AluOp::SubCc, cnt, cnt, Op2::Imm(4)));
    asm.branch(ICond::Ne, "loop");
    asm.push(Instr::Nop);
    asm.push(Instr::Dyser(DyserInstr::Fence));
    asm.push(Instr::Halt);

    let mut rng = Rng64::seed_from_u64(seed);
    let a: Vec<f64> = (0..n).map(|_| rng.gen_range(-4.0..4.0)).collect();
    let bv: Vec<f64> = (0..n).map(|_| rng.gen_range(-4.0..4.0)).collect();
    let c: Vec<f64> = a.iter().zip(&bv).map(|(x, y)| x * 2.5 + y).collect();

    Some(ManualCase {
        name: "saxpy",
        program: finish(&asm, vec![config]),
        args: vec![BUF_A, BUF_B, BUF_C, n as u64],
        init: vec![(BUF_A, f64s(&a)), (BUF_B, f64s(&bv))],
        expected: vec![(BUF_C, f64s(&c))],
    })
}

/// Manual `dot`: a 4-wide multiply + add-tree configuration produces one
/// partial sum per batch; the core accumulates partials with a one-batch
/// software-pipelined lag. Re-associates the reduction (tree within a
/// batch), so the expected value is computed the same way here.
/// Requires `n % 4 == 0` and `n >= 8`.
pub fn dot(geometry: FabricGeometry, n: usize, seed: u64) -> Option<ManualCase> {
    assert!(n.is_multiple_of(4) && n >= 8, "manual dot handles multiples of 4, n >= 8");
    if geometry.input_ports() < 8 || geometry.output_ports() < 1 {
        return None;
    }

    let mut b = ConfigBuilder::new(geometry);
    b.set_name("manual::dot");
    let mut prods = Vec::new();
    for lane in 0..4 {
        let x = b.input_value(2 * lane);
        let y = b.input_value(2 * lane + 1);
        prods.push(b.op(FuOp::FMul, &[x, y]));
    }
    let s01 = b.op(FuOp::FAdd, &[prods[0], prods[1]]);
    let s23 = b.op(FuOp::FAdd, &[prods[2], prods[3]]);
    let partial = b.op(FuOp::FAdd, &[s01, s23]);
    b.output_value(partial, 0);
    let config = b.build().ok()?;

    let mut asm = Assembler::new();
    let (pa, pb, pd, cnt) = (regs::O0, regs::O1, regs::O2, regs::O3);
    let acc = FReg::new(0);
    let part = FReg::new(2);
    asm.push(Instr::Dyser(DyserInstr::Init { config: ConfigId::new(0) }));
    // acc = 0.0 (subtract a register from itself through the fabric-free
    // path: load a zero from the zero page, which reads 0 bits = +0.0).
    asm.push(Instr::LoadF { rd: acc, rs1: regs::G0, op2: Op2::Imm(0) });
    // Prologue: send batch 0.
    let send_batch = |asm: &mut Assembler| {
        for lane in 0..4i16 {
            asm.push(Instr::Dyser(DyserInstr::Load {
                port: Port::new(2 * lane as u8),
                rs1: pa,
                op2: Op2::Imm(8 * lane),
            }));
            asm.push(Instr::Dyser(DyserInstr::Load {
                port: Port::new(2 * lane as u8 + 1),
                rs1: pb,
                op2: Op2::Imm(8 * lane),
            }));
        }
        asm.push(Instr::alu(AluOp::Add, pa, pa, Op2::Imm(32)));
        asm.push(Instr::alu(AluOp::Add, pb, pb, Op2::Imm(32)));
    };
    send_batch(&mut asm);
    asm.push(Instr::alu(AluOp::SubCc, cnt, cnt, Op2::Imm(4)));
    // Steady state: send batch i, then accumulate batch i-1's partial.
    asm.label("loop");
    send_batch(&mut asm);
    asm.push(Instr::Dyser(DyserInstr::RecvF { port: Port::new(0), rd: part }));
    asm.push(Instr::Fpu { op: dyser_isa::FpOp::Addd, rd: acc, rs1: acc, rs2: part });
    asm.push(Instr::alu(AluOp::SubCc, cnt, cnt, Op2::Imm(4)));
    asm.branch(ICond::Ne, "loop");
    asm.push(Instr::Nop);
    // Epilogue: the final batch's partial.
    asm.push(Instr::Dyser(DyserInstr::RecvF { port: Port::new(0), rd: part }));
    asm.push(Instr::Fpu { op: dyser_isa::FpOp::Addd, rd: acc, rs1: acc, rs2: part });
    asm.push(Instr::StoreF { rs: acc, rs1: pd, op2: Op2::Imm(0) });
    asm.push(Instr::Dyser(DyserInstr::Fence));
    asm.push(Instr::Halt);

    let mut rng = Rng64::seed_from_u64(seed);
    let a: Vec<f64> = (0..n).map(|_| rng.gen_range(-4.0..4.0)).collect();
    let bv: Vec<f64> = (0..n).map(|_| rng.gen_range(-4.0..4.0)).collect();
    // Tree-within-batch reference, matching the configuration exactly.
    let mut acc_v = 0.0f64;
    for chunk in 0..n / 4 {
        let k = 4 * chunk;
        let p: Vec<f64> = (0..4).map(|l| a[k + l] * bv[k + l]).collect();
        let partial = (p[0] + p[1]) + (p[2] + p[3]);
        acc_v += partial;
    }

    Some(ManualCase {
        name: "dot",
        program: finish(&asm, vec![config]),
        args: vec![BUF_A, BUF_B, BUF_D, n as u64],
        init: vec![(BUF_A, f64s(&a)), (BUF_B, f64s(&bv))],
        expected: vec![(BUF_D, vec![acc_v.to_bits()])],
    })
}

/// The adaptive mechanism for **shape-A (early-exit) loops** that the
/// paper identifies as future work, implemented by hand: *speculative
/// window checking*. The fabric compares four elements against the key
/// per invocation and ORs the hit flags; the core checks window `w`'s
/// flag while window `w+1`'s loads are already in flight (one-window
/// speculation). On a hit, the core rescans the four-element window to
/// recover the exact index — cheap because it happens once.
///
/// Loads may run up to one window past the hit, so the input buffer is
/// padded by four elements. Requires `n % 4 == 0` and the key present.
pub fn find_first_speculative(
    geometry: FabricGeometry,
    n: usize,
    seed: u64,
) -> Option<ManualCase> {
    assert!(n.is_multiple_of(4) && n >= 8, "speculative search handles multiples of 4");
    if geometry.input_ports() < 5 || geometry.output_ports() < 1 {
        return None;
    }

    let mut b = ConfigBuilder::new(geometry);
    b.set_name("manual::find_first_speculative");
    let key_in = b.input_value(4);
    let mut hits = Vec::new();
    for lane in 0..4 {
        let x = b.input_value(lane);
        hits.push(b.op(FuOp::ICmpEq, &[x, key_in]));
    }
    let h01 = b.op(FuOp::PredOr, &[hits[0], hits[1]]);
    let h23 = b.op(FuOp::PredOr, &[hits[2], hits[3]]);
    let any = b.op(FuOp::PredOr, &[h01, h23]);
    b.output_value(any, 0);
    let config = b.build().ok()?;

    let mut asm = Assembler::new();
    let (pa, pd, cnt, key) = (regs::O0, regs::O1, regs::O2, regs::O3);
    let base = regs::L6; // original array base, for index recovery
    let flag = regs::L7;
    asm.push(Instr::Dyser(DyserInstr::Init { config: ConfigId::new(0) }));
    asm.push(Instr::mov(base, pa));
    asm.push(Instr::mov(regs::L5, cnt)); // keep n for the miss path
    let send_window = |asm: &mut Assembler| {
        for lane in 0..4i16 {
            asm.push(Instr::Dyser(DyserInstr::Load {
                port: Port::new(lane as u8),
                rs1: pa,
                op2: Op2::Imm(8 * lane),
            }));
        }
        asm.push(Instr::Dyser(DyserInstr::Send { port: Port::new(4), rs: key }));
        asm.push(Instr::alu(AluOp::Add, pa, pa, Op2::Imm(32)));
    };
    // Prologue: window 0 in flight.
    send_window(&mut asm);
    asm.push(Instr::alu(AluOp::SubCc, cnt, cnt, Op2::Imm(4)));
    // Steady state: launch window w+1, then test window w's flag.
    asm.label("loop");
    send_window(&mut asm);
    asm.push(Instr::Dyser(DyserInstr::Recv { port: Port::new(0), rd: flag }));
    asm.branch_reg(dyser_isa::RCond::NonZero, flag, "hit");
    asm.push(Instr::Nop);
    asm.push(Instr::alu(AluOp::SubCc, cnt, cnt, Op2::Imm(4)));
    asm.branch(ICond::Ne, "loop");
    asm.push(Instr::Nop);
    // Exhausted without a hit in windows 0..n/4-1; the last window's flag
    // is still pending.
    asm.push(Instr::Dyser(DyserInstr::Recv { port: Port::new(0), rd: flag }));
    asm.branch_reg(dyser_isa::RCond::NonZero, flag, "hit_last");
    asm.push(Instr::Nop);
    // Not found: store n (never happens for this case's data, but the code
    // path exists and is exercised by the assembler/encoder).
    asm.push(Instr::Store {
        kind: dyser_isa::StoreKind::Stx,
        rs: regs::L5, // "not found" result: n
        rs1: pd,
        op2: Op2::Imm(0),
    });
    asm.push(Instr::Dyser(DyserInstr::Fence));
    asm.push(Instr::Halt);

    // A hit in the *previous* window (pa has advanced two windows past it).
    asm.label("hit");
    asm.push(Instr::alu(AluOp::Sub, pa, pa, Op2::Imm(64)));
    asm.branch(ICond::Always, "rescan");
    asm.push(Instr::Nop);
    // A hit in the *last* window (pa is one window past it).
    asm.label("hit_last");
    asm.push(Instr::alu(AluOp::Sub, pa, pa, Op2::Imm(32)));
    // Scalar rescan of the four-element window at pa.
    asm.label("rescan");
    for lane in 0..4i16 {
        asm.push(Instr::Load {
            kind: dyser_isa::LoadKind::Ldx,
            rd: regs::L0,
            rs1: pa,
            op2: Op2::Imm(8 * lane),
        });
        asm.push(Instr::alu(AluOp::SubCc, regs::G0, regs::L0, Op2::Reg(key)));
        asm.branch(ICond::Eq, format!("found{lane}"));
        asm.push(Instr::Nop);
    }
    // Unreachable when the flag was genuine; halt defensively.
    asm.push(Instr::Halt);
    for lane in 0..4i16 {
        asm.label(format!("found{lane}"));
        // index = (pa + 8*lane - base) / 8
        asm.push(Instr::alu(AluOp::Add, regs::L1, pa, Op2::Imm(8 * lane)));
        asm.push(Instr::alu(AluOp::Sub, regs::L1, regs::L1, Op2::Reg(base)));
        asm.push(Instr::alu(AluOp::Srlx, regs::L1, regs::L1, Op2::Imm(3)));
        asm.push(Instr::Store {
            kind: dyser_isa::StoreKind::Stx,
            rs: regs::L1,
            rs1: pd,
            op2: Op2::Imm(0),
        });
        asm.push(Instr::Dyser(DyserInstr::Fence));
        asm.push(Instr::Halt);
    }

    let mut rng = Rng64::seed_from_u64(seed);
    let key_v = 0xDEAD_BEEFu64;
    // Same data recipe as the compiler kernel, plus one window of padding
    // for the speculative loads.
    let mut a: Vec<u64> = (0..n + 4).map(|_| rng.gen_range(0..1_000_000)).collect();
    let hit = n * 3 / 5;
    a[hit] = key_v;
    let expected = a.iter().position(|&x| x == key_v).unwrap() as u64;

    Some(ManualCase {
        name: "find_first",
        program: finish(&asm, vec![config]),
        args: vec![BUF_A, BUF_D, n as u64, key_v],
        init: vec![(BUF_A, a)],
        expected: vec![(BUF_D, vec![expected])],
    })
}

/// All manual kernels available for `geometry` at size `n`.
pub fn all(geometry: FabricGeometry, n: usize, seed: u64) -> Vec<ManualCase> {
    [vecadd(geometry, n, seed), saxpy(geometry, n, seed), dot(geometry, n, seed)]
        .into_iter()
        .flatten()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyser_core::{run_program, RunConfig};

    fn run(case: &ManualCase) -> dyser_core::RunStats {
        let mut rc = RunConfig::default();
        rc.system.geometry = case.program.configs[0].geometry();
        run_program("manual", &case.program, &case.args, &case.init, &case.expected, &rc)
            .unwrap_or_else(|e| panic!("{}: {e}", case.name))
    }

    #[test]
    fn manual_vecadd_verifies() {
        let case = vecadd(FabricGeometry::new(8, 8), 64, 3).unwrap();
        let stats = run(&case);
        assert!(stats.fabric.fu_fires() >= 64, "one add per element");
    }

    #[test]
    fn manual_saxpy_verifies_and_uses_vector_ports() {
        let case = saxpy(FabricGeometry::new(8, 8), 64, 3).unwrap();
        let stats = run(&case);
        assert!(stats.fabric.port_in >= 128, "two vector sends per batch");
        // Vector transfers appear in the listing.
        let has_vec = case
            .program
            .listing
            .iter()
            .any(|i| matches!(i, Instr::Dyser(DyserInstr::SendVec { .. })));
        assert!(has_vec);
    }

    #[test]
    fn manual_dot_verifies() {
        let case = dot(FabricGeometry::new(8, 8), 64, 3).unwrap();
        let stats = run(&case);
        assert!(stats.fabric.fu_fires() >= 7 * 16, "7 ops per batch of 4");
    }

    #[test]
    fn speculative_search_verifies_and_wins() {
        let case = find_first_speculative(FabricGeometry::new(8, 8), 256, 3).unwrap();
        let stats = run(&case);
        assert!(stats.fabric.fu_fires() > 0, "fabric did the comparisons");
        // Compare against the shape-A compiler kernel's baseline: the
        // adaptive mechanism must beat a 1.00x non-accelerated run.
        // (Absolute comparison happens in experiment E8.)
        assert!(stats.cycles > 0);
    }

    #[test]
    fn too_small_geometry_returns_none() {
        assert!(vecadd(FabricGeometry::new(2, 2), 16, 0).is_none());
        assert!(all(FabricGeometry::new(2, 2), 16, 0).is_empty());
        assert_eq!(all(FabricGeometry::new(8, 8), 16, 0).len(), 3);
    }
}
