//! Reusable constructors for the control-flow **shapes** of experiment
//! E8 — the loop forms the paper identifies as curtailing the compiler,
//! promoted out of the experiment driver so that tests, the fuzzer, and
//! new experiments can instantiate them directly.
//!
//! Three shapes are exposed:
//!
//! * [`early_exit_search`] — shape A: a search loop with a data-dependent
//!   side exit. The exit blocks pipelined invocations, so the compiler
//!   refuses to accelerate it.
//! * [`nested_control_store`] — shape B: a store under a branch inside
//!   the loop. The memory side effect defeats if-conversion.
//! * [`speculative_window`] — the paper's adaptive answer to shape A:
//!   the fabric checks four-element windows one iteration ahead and the
//!   core rescans the hit window for the exact index.
//!
//! The kernel-suite entries `find_first` and `cond_store` are thin
//! wrappers over the first two; experiment E8 uses all three.

use dyser_compiler::{BinOp, CmpOp, Function, FunctionBuilder, Type};
use dyser_fabric::FabricGeometry;
use dyser_rng::Rng64;

use crate::manual::{self, ManualCase};
use crate::{BUF_A, BUF_C, BUF_D};

/// Runnable input/expected-output data for one shape instance, in the
/// same `(address, words)` form the run harness consumes.
#[derive(Debug, Clone)]
pub struct ShapeCase {
    /// Kernel arguments, in parameter order.
    pub args: Vec<u64>,
    /// Initial memory contents.
    pub init: Vec<(u64, Vec<u64>)>,
    /// Expected memory contents after the run.
    pub expected: Vec<(u64, Vec<u64>)>,
}

/// Early-exit search (control-flow shape A): `d[0]` = first `i` with
/// `a[i] == key`, else `n`. Classified [`EarlyExit`] — not
/// acceleratable, the paper's finding.
///
/// [`EarlyExit`]: dyser_compiler::LoopShape::EarlyExit
pub fn early_exit_search() -> Function {
    let mut b = FunctionBuilder::new(
        "find_first",
        &[("a", Type::Ptr), ("d", Type::Ptr), ("n", Type::I64), ("key", Type::I64)],
    );
    let (a, d, n, key) = (b.param(0), b.param(1), b.param(2), b.param(3));
    let zero = b.const_i(0);
    let one = b.const_i(1);
    let head = b.block("head");
    let latch = b.block("latch");
    let found = b.block("found");
    let notfound = b.block("notfound");
    let entry = b.current();
    b.br(head);
    b.switch_to(head);
    let i = b.phi(Type::I64);
    let pa = b.gep(a, i, 8);
    let x = b.load(pa, Type::I64);
    let hit = b.cmp(CmpOp::Eq, x, key);
    b.cond_br(hit, found, latch);
    b.switch_to(latch);
    let i2 = b.bin(BinOp::Add, i, one);
    b.add_incoming(i, entry, zero);
    b.add_incoming(i, latch, i2);
    let more = b.cmp(CmpOp::Slt, i2, n);
    b.cond_br(more, head, notfound);
    b.switch_to(found);
    let pd = b.gep(d, zero, 8);
    b.store(i, pd);
    b.ret(None);
    b.switch_to(notfound);
    let pd2 = b.gep(d, zero, 8);
    b.store(n, pd2);
    b.ret(None);
    b.build().expect("find_first is well-formed")
}

/// Deterministic case for [`early_exit_search`]: random haystack with
/// the key planted ~60% in, expected hit index precomputed.
pub fn early_exit_search_case(n: usize, seed: u64) -> ShapeCase {
    let mut rng = Rng64::seed_from_u64(seed);
    let mut a: Vec<u64> = (0..n).map(|_| rng.gen_range(0..1_000_000)).collect();
    let key = 0xDEAD_BEEFu64;
    let hit = n * 3 / 5; // key placed ~60% in
    a[hit] = key;
    let expected = a.iter().position(|&x| x == key).unwrap() as u64;
    ShapeCase {
        args: vec![BUF_A, BUF_D, n as u64, key],
        init: vec![(BUF_A, a)],
        expected: vec![(BUF_D, vec![expected])],
    }
}

/// Conditional store (control-flow shape B): `if a[i] < 0, c[i] = 0`.
/// The store under a branch defeats if-conversion — classified
/// [`NestedControl`], not acceleratable.
///
/// [`NestedControl`]: dyser_compiler::LoopShape::NestedControl
pub fn nested_control_store() -> Function {
    let mut b =
        FunctionBuilder::new("cond_store", &[("a", Type::Ptr), ("c", Type::Ptr), ("n", Type::I64)]);
    let (a, c, n) = (b.param(0), b.param(1), b.param(2));
    let zero = b.const_i(0);
    let one = b.const_i(1);
    let head = b.block("head");
    let dostore = b.block("dostore");
    let latch = b.block("latch");
    let exit = b.block("exit");
    let entry = b.current();
    b.br(head);
    b.switch_to(head);
    let i = b.phi(Type::I64);
    let pa = b.gep(a, i, 8);
    let x = b.load(pa, Type::I64);
    let isneg = b.cmp(CmpOp::Slt, x, zero);
    b.cond_br(isneg, dostore, latch);
    b.switch_to(dostore);
    let pc = b.gep(c, i, 8);
    b.store(zero, pc);
    b.br(latch);
    b.switch_to(latch);
    let i2 = b.bin(BinOp::Add, i, one);
    b.add_incoming(i, entry, zero);
    b.add_incoming(i, latch, i2);
    let more = b.cmp(CmpOp::Slt, i2, n);
    b.cond_br(more, head, exit);
    b.switch_to(exit);
    b.ret(None);
    b.build().expect("cond_store is well-formed")
}

/// Deterministic case for [`nested_control_store`]: signed inputs in
/// `[-100, 100)`, output buffer prefilled so untouched slots are
/// observable.
pub fn nested_control_store_case(n: usize, seed: u64) -> ShapeCase {
    let mut rng = Rng64::seed_from_u64(seed);
    let a: Vec<u64> = (0..n).map(|_| rng.gen_range(-100i64..100) as u64).collect();
    let init_c: Vec<u64> = (0..n).map(|i| 1000 + i as u64).collect();
    let c: Vec<u64> = a
        .iter()
        .zip(&init_c)
        .map(|(&x, &c0)| if (x as i64) < 0 { 0 } else { c0 })
        .collect();
    ShapeCase {
        args: vec![BUF_A, BUF_C, n as u64],
        init: vec![(BUF_A, a), (BUF_C, init_c)],
        expected: vec![(BUF_C, c)],
    }
}

/// Speculative window checking — the adaptive mechanism for shape-A
/// loops (paper future work, implemented by hand). The fabric compares
/// four elements per invocation while the core already has the next
/// window's loads in flight; on a hit the core rescans the four-element
/// window for the exact index.
///
/// Returns `None` when `geometry` cannot host the window comparator
/// (needs five input ports and one output port). Requires `n % 4 == 0`
/// and `n >= 8`.
pub fn speculative_window(geometry: FabricGeometry, n: usize, seed: u64) -> Option<ManualCase> {
    manual::find_first_speculative(geometry, n, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyser_compiler::{classify_loops, LoopShape};
    use dyser_core::{run_program, RunConfig};

    fn dominant_shape(f: &Function) -> LoopShape {
        classify_loops(f)
            .iter()
            .map(|r| r.shape)
            .max_by_key(|s| match s {
                LoopShape::Regular => 0,
                LoopShape::IfConvertible => 1,
                LoopShape::EarlyExit => 2,
                LoopShape::NestedControl => 3,
            })
            .expect("shape functions have loops")
    }

    #[test]
    fn early_exit_search_classifies_as_shape_a() {
        let shape = dominant_shape(&early_exit_search());
        assert_eq!(shape, LoopShape::EarlyExit);
        assert!(!shape.acceleratable());
    }

    #[test]
    fn nested_control_store_classifies_as_shape_b() {
        let shape = dominant_shape(&nested_control_store());
        assert_eq!(shape, LoopShape::NestedControl);
        assert!(!shape.acceleratable());
    }

    #[test]
    fn shape_cases_are_deterministic_in_the_seed() {
        let (a, b) = (early_exit_search_case(40, 7), early_exit_search_case(40, 7));
        assert_eq!(a.init, b.init);
        assert_eq!(a.expected, b.expected);
        let c = early_exit_search_case(40, 8);
        assert_ne!(a.init, c.init, "different seed, different haystack");
        let (d, e) = (nested_control_store_case(40, 7), nested_control_store_case(40, 7));
        assert_eq!(d.init, e.init);
        assert_eq!(d.expected, e.expected);
    }

    #[test]
    fn nested_control_case_exercises_both_arms() {
        let case = nested_control_store_case(64, 3);
        let out = &case.expected[0].1;
        assert!(out.contains(&0), "some stores taken");
        assert!(out.iter().any(|&w| w != 0), "some stores skipped");
    }

    #[test]
    fn speculative_window_verifies_against_the_search_contract() {
        let case = speculative_window(FabricGeometry::new(8, 8), 64, 5).expect("8x8 fits");
        let mut rc = RunConfig::default();
        rc.system.geometry = case.program.configs[0].geometry();
        let stats =
            run_program("speculative", &case.program, &case.args, &case.init, &case.expected, &rc)
                .expect("speculative window verifies");
        assert!(stats.fabric.fu_fires() > 0, "comparisons ran in-fabric");
    }

    #[test]
    fn speculative_window_needs_five_input_ports() {
        assert!(speculative_window(FabricGeometry::new(2, 2), 16, 0).is_none());
    }
}
