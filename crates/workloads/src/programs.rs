//! Whole-program workloads (`p1`..`p3`): emulated processes.
//!
//! Unlike the kernel suite, these are *programs*: they read their input
//! from stdin through the FASE-style syscall layer (`ta` traps to the
//! proxy kernel), allocate with `brk`, format results with a hand-written
//! decimal printer, report on stdout with `write`, and terminate with
//! `exit`. Each has two hand-assembled legs — a scalar baseline and a
//! DySER-accelerated variant whose inner region runs on the fabric — and
//! both must produce byte-identical stdout and the same exit code.
//!
//! * `p1` — string matcher: counts 8-byte-aligned occurrences of the
//!   pattern named by `argv[1]`; exits 0 when found, 1 otherwise.
//! * `p2` — tiny JSON tokenizer pipeline: counts `:` tokens byte-wise,
//!   copies the payload into `brk`-allocated heap, then hashes it.
//! * `p3` — image-kernel pipeline: 1D 3-tap stencil, then an XOR
//!   checksum, with a `gettime` liveness probe on the virtual clock.
//!
//! The inner regions are also exposed as plain IR kernels for the DSE
//! sweep — see [`crate::kernels::program_inner_kernels`].

use dyser_compiler::{Program, CODE_BASE};
use dyser_core::ProgramCase;
use dyser_fabric::{ConfigBuilder, FabricConfig, FabricGeometry, FuOp};
use dyser_isa::{
    regs, AluOp, Assembler, ConfigId, DyserInstr, ICond, Instr, LoadKind, Op2, Port, RCond, Reg,
    StoreKind,
};
use dyser_rng::Rng64;
use dyser_sparc::syscall::{SYS_BRK, SYS_EXIT, SYS_GETTIME, SYS_READ, SYS_WRITE};

use crate::{BUF_A, BUF_C};

/// The wrapping multiplier of `p2`'s payload hash (golden-ratio mix).
pub const P2_HASH_MULT: u64 = 0x9E37_79B9_7F4A_7C15;

/// End of the decimal printer's scratch buffer (digits build backward).
const SCRATCH_END: i16 = 0xE20;

/// Read-buffer capacity passed to the `read` syscall.
const READ_CAP: u64 = 65_536;

/// Emits `rd = value` as `mov` plus shift/or chunks (any 64-bit value).
fn set64(asm: &mut Assembler, rd: Reg, value: u64) {
    if value < 0x1000 {
        asm.push(Instr::mov_imm(rd, value as i16));
        return;
    }
    // Six 12-bit chunks cover 64 bits; skip leading zeros.
    let chunks: Vec<i16> = (0..6).rev().map(|i| ((value >> (12 * i)) & 0xFFF) as i16).collect();
    let first = chunks.iter().position(|&c| c != 0).unwrap_or(5);
    asm.push(Instr::mov_imm(rd, chunks[first]));
    for &c in &chunks[first + 1..] {
        asm.push(Instr::alu(AluOp::Sllx, rd, rd, Op2::Imm(12)));
        if c != 0 {
            asm.push(Instr::alu(AluOp::Or, rd, rd, Op2::Imm(c)));
        }
    }
}

/// Emits the `print_dec` subroutine: prints `%o0` in decimal plus a
/// newline to stdout. Clobbers `%o0..%o2` and `%l0..%l4`; returns via
/// `jmpl %o7 + 8`. Call with [`Assembler::call`].
fn emit_print_dec(asm: &mut Assembler) {
    asm.label("print_dec");
    asm.push(Instr::mov_imm(regs::L0, SCRATCH_END));
    asm.push(Instr::mov(regs::L1, regs::O0));
    asm.push(Instr::mov_imm(regs::L4, 10));
    // '\n' is byte 10 — the divisor doubles as the terminator byte.
    asm.push(Instr::alu(AluOp::Sub, regs::L0, regs::L0, Op2::Imm(1)));
    asm.push(Instr::Store { kind: StoreKind::Stb, rs: regs::L4, rs1: regs::L0, op2: Op2::Imm(0) });
    asm.label("pd_loop");
    asm.push(Instr::alu(AluOp::Udivx, regs::L2, regs::L1, Op2::Imm(10)));
    asm.push(Instr::alu(AluOp::Mulx, regs::L3, regs::L2, Op2::Imm(10)));
    asm.push(Instr::alu(AluOp::Sub, regs::L3, regs::L1, Op2::Reg(regs::L3)));
    asm.push(Instr::alu(AluOp::Add, regs::L3, regs::L3, Op2::Imm(48)));
    asm.push(Instr::alu(AluOp::Sub, regs::L0, regs::L0, Op2::Imm(1)));
    asm.push(Instr::Store { kind: StoreKind::Stb, rs: regs::L3, rs1: regs::L0, op2: Op2::Imm(0) });
    asm.push(Instr::mov(regs::L1, regs::L2));
    asm.branch_reg(RCond::NonZero, regs::L1, "pd_loop");
    asm.push(Instr::Nop);
    asm.push(Instr::mov_imm(regs::O0, 1));
    asm.push(Instr::mov(regs::O1, regs::L0));
    asm.push(Instr::mov_imm(regs::O2, SCRATCH_END));
    asm.push(Instr::alu(AluOp::Sub, regs::O2, regs::O2, Op2::Reg(regs::L0)));
    asm.push(Instr::Trap { code: SYS_WRITE });
    asm.push(Instr::Jmpl { rd: regs::G0, rs1: regs::O7, op2: Op2::Imm(8) });
    asm.push(Instr::Nop);
}

/// Emits `read(0, BUF_A, READ_CAP)`; leaves bytes read in `%i0` and the
/// 8-byte word count in `%i2`.
fn emit_read_stdin(asm: &mut Assembler) {
    asm.push(Instr::mov_imm(regs::O0, 0));
    set64(asm, regs::O1, BUF_A);
    set64(asm, regs::O2, READ_CAP);
    asm.push(Instr::Trap { code: SYS_READ });
    asm.push(Instr::mov(regs::I0, regs::O0));
    asm.push(Instr::alu(AluOp::Srlx, regs::I2, regs::I0, Op2::Imm(3)));
}

/// Emits `exit(%o0-as-set-by-caller)` with a defensive trailing halt.
fn emit_exit(asm: &mut Assembler) {
    asm.push(Instr::Trap { code: SYS_EXIT });
    asm.push(Instr::Halt);
}

fn finish(asm: &Assembler, configs: Vec<FabricConfig>) -> Program {
    let listing = asm.resolve().expect("program assembles");
    let code = asm.assemble().expect("program assembles");
    Program { code, listing, entry: CODE_BASE, pool: Vec::new(), spill_slots: 1, configs }
}

// ------------------------------------------------------------------ p1

/// Deterministic `p1` input: `n` 8-byte words of printable noise, with
/// the key planted at pseudo-random positions (at least one).
fn p1_input(n: usize, key: u64, seed: u64) -> (Vec<u8>, u64) {
    let mut rng = Rng64::seed_from_u64(seed);
    let mut bytes = Vec::with_capacity(n * 8);
    let mut count = 0u64;
    for i in 0..n {
        if i == 3 || rng.gen_range(0..8u64) == 0 {
            bytes.extend_from_slice(&key.to_be_bytes());
            count += 1;
        } else {
            for _ in 0..8 {
                bytes.push(rng.gen_range(0x20..0x7Fu64) as u8);
            }
        }
    }
    (bytes, count)
}

/// `p1`: counts 8-byte-aligned occurrences of the pattern in `argv[1]`
/// within the stdin text; prints the count, exits 0 if found else 1.
///
/// The accelerated leg compares four words per fabric invocation
/// (`ICmpEq` lanes plus an `IAdd` tree); the key streams in through a
/// fifth port — it is only known at run time, from argv. Needs 5 input
/// ports and 1 output port; returns `None` on smaller geometries.
/// `n` must be a positive multiple of 4.
pub fn p1(geometry: FabricGeometry, n: usize, seed: u64) -> Option<ProgramCase> {
    assert!(n.is_multiple_of(4) && n > 0, "p1 handles positive multiples of 4");
    if geometry.input_ports() < 5 || geometry.output_ports() < 1 {
        return None;
    }
    let pattern = "NEEDLE!!";
    let key = u64::from_be_bytes(pattern.as_bytes().try_into().unwrap());
    let (stdin, count) = p1_input(n, key, seed);

    // Shared head: stash argv, read stdin, load the key from argv[1].
    let head = |asm: &mut Assembler| {
        asm.push(Instr::mov(regs::I1, regs::O1));
        emit_read_stdin(asm);
        asm.push(Instr::Load { kind: LoadKind::Ldx, rd: regs::L5, rs1: regs::I1, op2: Op2::Imm(8) });
        asm.push(Instr::Load { kind: LoadKind::Ldx, rd: regs::L5, rs1: regs::L5, op2: Op2::Imm(0) });
        asm.push(Instr::mov_imm(regs::I4, 0));
        set64(asm, regs::L6, BUF_A);
        asm.push(Instr::mov(regs::L7, regs::I2));
    };
    // Shared tail: print the count, exit 0 if nonzero else 1.
    let tail = |asm: &mut Assembler| {
        asm.push(Instr::mov(regs::O0, regs::I4));
        asm.call("print_dec");
        asm.push(Instr::Nop);
        asm.branch_reg(RCond::NonZero, regs::I4, "found");
        asm.push(Instr::Nop);
        asm.push(Instr::mov_imm(regs::O0, 1));
        emit_exit(asm);
        asm.label("found");
        asm.push(Instr::mov_imm(regs::O0, 0));
        emit_exit(asm);
        emit_print_dec(asm);
    };

    let mut base = Assembler::new();
    head(&mut base);
    base.label("loop");
    base.push(Instr::Load { kind: LoadKind::Ldx, rd: regs::L0, rs1: regs::L6, op2: Op2::Imm(0) });
    base.push(Instr::alu(AluOp::SubCc, regs::G0, regs::L0, Op2::Reg(regs::L5)));
    base.branch(ICond::Ne, "miss");
    base.push(Instr::Nop);
    base.push(Instr::alu(AluOp::Add, regs::I4, regs::I4, Op2::Imm(1)));
    base.label("miss");
    base.push(Instr::alu(AluOp::Add, regs::L6, regs::L6, Op2::Imm(8)));
    base.push(Instr::alu(AluOp::SubCc, regs::L7, regs::L7, Op2::Imm(1)));
    base.branch(ICond::Ne, "loop");
    base.push(Instr::Nop);
    tail(&mut base);

    let mut b = ConfigBuilder::new(geometry);
    b.set_name("p1::match4");
    let k = b.input_value(4);
    let mut hits = Vec::new();
    for lane in 0..4 {
        let x = b.input_value(lane);
        hits.push(b.op(FuOp::ICmpEq, &[x, k]));
    }
    let s01 = b.op(FuOp::IAdd, &[hits[0], hits[1]]);
    let s23 = b.op(FuOp::IAdd, &[hits[2], hits[3]]);
    let s = b.op(FuOp::IAdd, &[s01, s23]);
    b.output_value(s, 0);
    let config = b.build().ok()?;

    let mut acc = Assembler::new();
    head(&mut acc);
    acc.push(Instr::Dyser(DyserInstr::Init { config: ConfigId::new(0) }));
    acc.label("loop");
    for lane in 0..4i16 {
        acc.push(Instr::Dyser(DyserInstr::Load {
            port: Port::new(lane as u8),
            rs1: regs::L6,
            op2: Op2::Imm(8 * lane),
        }));
    }
    acc.push(Instr::Dyser(DyserInstr::Send { port: Port::new(4), rs: regs::L5 }));
    acc.push(Instr::Dyser(DyserInstr::Recv { port: Port::new(0), rd: regs::L0 }));
    acc.push(Instr::alu(AluOp::Add, regs::I4, regs::I4, Op2::Reg(regs::L0)));
    acc.push(Instr::alu(AluOp::Add, regs::L6, regs::L6, Op2::Imm(32)));
    acc.push(Instr::alu(AluOp::SubCc, regs::L7, regs::L7, Op2::Imm(4)));
    acc.branch(ICond::Ne, "loop");
    acc.push(Instr::Nop);
    acc.push(Instr::Dyser(DyserInstr::Fence));
    tail(&mut acc);

    Some(ProgramCase {
        name: "p1".into(),
        baseline: finish(&base, Vec::new()),
        accelerated: finish(&acc, vec![config]),
        argv: vec!["p1".into(), pattern.into()],
        envp: vec!["SIM=dyser".into()],
        stdin,
        init: Vec::new(),
        expected: Vec::new(),
        expected_stdout: format!("{count}\n").into_bytes(),
        expected_exit: u64::from(count == 0),
    })
}

// ------------------------------------------------------------------ p2

/// Deterministic `p2` input: `n` words of JSON-ish ASCII with `:` tokens
/// sprinkled in.
fn p2_input(n: usize, seed: u64) -> Vec<u8> {
    let mut rng = Rng64::seed_from_u64(seed);
    let alphabet = b"{}[]\",abcdefgh0123456789 ";
    (0..n * 8)
        .map(|_| {
            if rng.gen_range(0..10u64) == 0 {
                b':'
            } else {
                alphabet[rng.gen_range(0..alphabet.len() as u64) as usize]
            }
        })
        .collect()
}

/// `p2` reference: (`:`-token count, wrapping payload hash).
fn p2_reference(stdin: &[u8]) -> (u64, u64) {
    let tokens = stdin.iter().filter(|&&b| b == b':').count() as u64;
    let hash = stdin
        .chunks_exact(8)
        .map(|c| u64::from_be_bytes(c.try_into().unwrap()).wrapping_mul(P2_HASH_MULT))
        .fold(0u64, u64::wrapping_add);
    (tokens, hash)
}

/// `p2`: a tiny tokenizer pipeline. Stage 1 counts `:` tokens byte-wise
/// and copies the payload into `brk`-allocated heap; stage 2 hashes the
/// heap copy word-wise (`w * M` summed, wrapping). Prints the token
/// count then the hash; exits 0.
///
/// The accelerated leg hashes four words per fabric invocation (`IMul`
/// by a baked constant plus an `IAdd` tree). Needs 4 input ports and 1
/// output port. `n` must be a positive multiple of 4.
pub fn p2(geometry: FabricGeometry, n: usize, seed: u64) -> Option<ProgramCase> {
    assert!(n.is_multiple_of(4) && n > 0, "p2 handles positive multiples of 4");
    if geometry.input_ports() < 4 || geometry.output_ports() < 1 {
        return None;
    }
    let stdin = p2_input(n, seed);
    let (tokens, hash) = p2_reference(&stdin);

    // Shared head: read stdin, brk-allocate the copy buffer, count ':'
    // bytes into %i5, copy the payload words into the heap at %i3.
    let head = |asm: &mut Assembler| {
        emit_read_stdin(asm);
        // heap base = brk(0); grow by READ_CAP.
        asm.push(Instr::mov_imm(regs::O0, 0));
        asm.push(Instr::Trap { code: SYS_BRK });
        asm.push(Instr::mov(regs::I3, regs::O0));
        set64(asm, regs::L0, READ_CAP);
        asm.push(Instr::alu(AluOp::Add, regs::O0, regs::I3, Op2::Reg(regs::L0)));
        asm.push(Instr::Trap { code: SYS_BRK });
        // Stage 1a: token count.
        asm.push(Instr::mov_imm(regs::I5, 0));
        set64(asm, regs::L6, BUF_A);
        asm.push(Instr::mov(regs::L7, regs::I0));
        asm.label("bloop");
        asm.push(Instr::Load {
            kind: LoadKind::Ldub,
            rd: regs::L0,
            rs1: regs::L6,
            op2: Op2::Imm(0),
        });
        asm.push(Instr::alu(AluOp::SubCc, regs::G0, regs::L0, Op2::Imm(i16::from(b':'))));
        asm.branch(ICond::Ne, "bskip");
        asm.push(Instr::Nop);
        asm.push(Instr::alu(AluOp::Add, regs::I5, regs::I5, Op2::Imm(1)));
        asm.label("bskip");
        asm.push(Instr::alu(AluOp::Add, regs::L6, regs::L6, Op2::Imm(1)));
        asm.push(Instr::alu(AluOp::SubCc, regs::L7, regs::L7, Op2::Imm(1)));
        asm.branch(ICond::Ne, "bloop");
        asm.push(Instr::Nop);
        // Stage 1b: copy words into the heap.
        set64(asm, regs::L6, BUF_A);
        asm.push(Instr::mov(regs::L5, regs::I3));
        asm.push(Instr::mov(regs::L7, regs::I2));
        asm.label("cloop");
        asm.push(Instr::Load { kind: LoadKind::Ldx, rd: regs::L0, rs1: regs::L6, op2: Op2::Imm(0) });
        asm.push(Instr::Store { kind: StoreKind::Stx, rs: regs::L0, rs1: regs::L5, op2: Op2::Imm(0) });
        asm.push(Instr::alu(AluOp::Add, regs::L6, regs::L6, Op2::Imm(8)));
        asm.push(Instr::alu(AluOp::Add, regs::L5, regs::L5, Op2::Imm(8)));
        asm.push(Instr::alu(AluOp::SubCc, regs::L7, regs::L7, Op2::Imm(1)));
        asm.branch(ICond::Ne, "cloop");
        asm.push(Instr::Nop);
        // Stage 2 setup: hash accumulator, heap cursor, word count.
        asm.push(Instr::mov_imm(regs::I4, 0));
        asm.push(Instr::mov(regs::L6, regs::I3));
        asm.push(Instr::mov(regs::L7, regs::I2));
    };
    let tail = |asm: &mut Assembler| {
        asm.push(Instr::mov(regs::O0, regs::I5));
        asm.call("print_dec");
        asm.push(Instr::Nop);
        asm.push(Instr::mov(regs::O0, regs::I4));
        asm.call("print_dec");
        asm.push(Instr::Nop);
        asm.push(Instr::mov_imm(regs::O0, 0));
        emit_exit(asm);
        emit_print_dec(asm);
    };

    let mut base = Assembler::new();
    head(&mut base);
    set64(&mut base, regs::L5, P2_HASH_MULT);
    base.label("hloop");
    base.push(Instr::Load { kind: LoadKind::Ldx, rd: regs::L0, rs1: regs::L6, op2: Op2::Imm(0) });
    base.push(Instr::alu(AluOp::Mulx, regs::L0, regs::L0, Op2::Reg(regs::L5)));
    base.push(Instr::alu(AluOp::Add, regs::I4, regs::I4, Op2::Reg(regs::L0)));
    base.push(Instr::alu(AluOp::Add, regs::L6, regs::L6, Op2::Imm(8)));
    base.push(Instr::alu(AluOp::SubCc, regs::L7, regs::L7, Op2::Imm(1)));
    base.branch(ICond::Ne, "hloop");
    base.push(Instr::Nop);
    tail(&mut base);

    let mut b = ConfigBuilder::new(geometry);
    b.set_name("p2::hash4");
    let m = b.const_value(P2_HASH_MULT);
    let mut terms = Vec::new();
    for lane in 0..4 {
        let x = b.input_value(lane);
        terms.push(b.op(FuOp::IMul, &[x, m]));
    }
    let s01 = b.op(FuOp::IAdd, &[terms[0], terms[1]]);
    let s23 = b.op(FuOp::IAdd, &[terms[2], terms[3]]);
    let s = b.op(FuOp::IAdd, &[s01, s23]);
    b.output_value(s, 0);
    let config = b.build().ok()?;

    let mut acc = Assembler::new();
    head(&mut acc);
    acc.push(Instr::Dyser(DyserInstr::Init { config: ConfigId::new(0) }));
    acc.label("hloop");
    for lane in 0..4i16 {
        acc.push(Instr::Dyser(DyserInstr::Load {
            port: Port::new(lane as u8),
            rs1: regs::L6,
            op2: Op2::Imm(8 * lane),
        }));
    }
    acc.push(Instr::Dyser(DyserInstr::Recv { port: Port::new(0), rd: regs::L0 }));
    acc.push(Instr::alu(AluOp::Add, regs::I4, regs::I4, Op2::Reg(regs::L0)));
    acc.push(Instr::alu(AluOp::Add, regs::L6, regs::L6, Op2::Imm(32)));
    acc.push(Instr::alu(AluOp::SubCc, regs::L7, regs::L7, Op2::Imm(4)));
    acc.branch(ICond::Ne, "hloop");
    acc.push(Instr::Nop);
    acc.push(Instr::Dyser(DyserInstr::Fence));
    tail(&mut acc);

    Some(ProgramCase {
        name: "p2".into(),
        baseline: finish(&base, Vec::new()),
        accelerated: finish(&acc, vec![config]),
        argv: vec!["p2".into()],
        envp: vec!["SIM=dyser".into()],
        stdin,
        init: Vec::new(),
        expected: Vec::new(),
        expected_stdout: format!("{tokens}\n{hash}\n").into_bytes(),
        expected_exit: 0,
    })
}

// ------------------------------------------------------------------ p3

/// Deterministic `p3` input: `n` words of raw pixel-ish data.
fn p3_input(n: usize, seed: u64) -> Vec<u8> {
    let mut rng = Rng64::seed_from_u64(seed);
    (0..n * 8).map(|_| rng.gen_range(0..256u64) as u8).collect()
}

/// `p3` reference: XOR checksum over the 3-tap stencil of the input row.
fn p3_reference(stdin: &[u8]) -> u64 {
    let words: Vec<u64> =
        stdin.chunks_exact(8).map(|c| u64::from_be_bytes(c.try_into().unwrap())).collect();
    let mut checksum = 0u64;
    for i in 1..words.len().saturating_sub(1) {
        let s = words[i - 1]
            .wrapping_add(words[i] << 1)
            .wrapping_add(words[i + 1]);
        checksum ^= s;
    }
    checksum
}

/// `p3`: an image-kernel pipeline. Stage 1 runs a 1D 3-tap stencil
/// (`a[i-1] + 2*a[i] + a[i+1]`, wrapping) over the stdin row into
/// `BUF_C`; stage 2 XOR-folds the result. Prints the checksum and a
/// virtual-clock liveness flag (`gettime() > 0`, always `1`); exits with
/// `checksum & 63`.
///
/// The accelerated leg computes one stencil tap per fabric invocation
/// (shift-add tree). Needs 3 input ports and 1 output port. `n >= 3`.
pub fn p3(geometry: FabricGeometry, n: usize, seed: u64) -> Option<ProgramCase> {
    assert!(n >= 3, "p3 needs at least one interior element");
    if geometry.input_ports() < 3 || geometry.output_ports() < 1 {
        return None;
    }
    let stdin = p3_input(n, seed);
    let checksum = p3_reference(&stdin);

    // Shared head: read stdin; cursors for the stencil loop.
    let head = |asm: &mut Assembler| {
        emit_read_stdin(asm);
        set64(asm, regs::L6, BUF_A + 8);
        set64(asm, regs::L5, BUF_C);
        // interior count = nwords - 2
        asm.push(Instr::alu(AluOp::Sub, regs::L7, regs::I2, Op2::Imm(2)));
    };
    // Shared mid: XOR checksum over BUF_C, gettime probe.
    let tail = |asm: &mut Assembler| {
        asm.push(Instr::mov_imm(regs::I4, 0));
        set64(asm, regs::L6, BUF_C);
        asm.push(Instr::alu(AluOp::Sub, regs::L7, regs::I2, Op2::Imm(2)));
        asm.label("xloop");
        asm.push(Instr::Load { kind: LoadKind::Ldx, rd: regs::L0, rs1: regs::L6, op2: Op2::Imm(0) });
        asm.push(Instr::alu(AluOp::Xor, regs::I4, regs::I4, Op2::Reg(regs::L0)));
        asm.push(Instr::alu(AluOp::Add, regs::L6, regs::L6, Op2::Imm(8)));
        asm.push(Instr::alu(AluOp::SubCc, regs::L7, regs::L7, Op2::Imm(1)));
        asm.branch(ICond::Ne, "xloop");
        asm.push(Instr::Nop);
        // Virtual clock: cycles are nonzero by now on every backend.
        asm.push(Instr::Trap { code: SYS_GETTIME });
        asm.push(Instr::mov_imm(regs::I5, 0));
        asm.branch_reg(RCond::Zero, regs::O0, "tdone");
        asm.push(Instr::Nop);
        asm.push(Instr::mov_imm(regs::I5, 1));
        asm.label("tdone");
        asm.push(Instr::mov(regs::O0, regs::I4));
        asm.call("print_dec");
        asm.push(Instr::Nop);
        asm.push(Instr::mov(regs::O0, regs::I5));
        asm.call("print_dec");
        asm.push(Instr::Nop);
        asm.push(Instr::alu(AluOp::And, regs::O0, regs::I4, Op2::Imm(63)));
        emit_exit(asm);
        emit_print_dec(asm);
    };

    let mut base = Assembler::new();
    head(&mut base);
    base.label("sloop");
    base.push(Instr::Load { kind: LoadKind::Ldx, rd: regs::L0, rs1: regs::L6, op2: Op2::Imm(-8) });
    base.push(Instr::Load { kind: LoadKind::Ldx, rd: regs::L1, rs1: regs::L6, op2: Op2::Imm(0) });
    base.push(Instr::Load { kind: LoadKind::Ldx, rd: regs::L2, rs1: regs::L6, op2: Op2::Imm(8) });
    base.push(Instr::alu(AluOp::Sllx, regs::L1, regs::L1, Op2::Imm(1)));
    base.push(Instr::alu(AluOp::Add, regs::L0, regs::L0, Op2::Reg(regs::L1)));
    base.push(Instr::alu(AluOp::Add, regs::L0, regs::L0, Op2::Reg(regs::L2)));
    base.push(Instr::Store { kind: StoreKind::Stx, rs: regs::L0, rs1: regs::L5, op2: Op2::Imm(0) });
    base.push(Instr::alu(AluOp::Add, regs::L6, regs::L6, Op2::Imm(8)));
    base.push(Instr::alu(AluOp::Add, regs::L5, regs::L5, Op2::Imm(8)));
    base.push(Instr::alu(AluOp::SubCc, regs::L7, regs::L7, Op2::Imm(1)));
    base.branch(ICond::Ne, "sloop");
    base.push(Instr::Nop);
    tail(&mut base);

    let mut b = ConfigBuilder::new(geometry);
    b.set_name("p3::stencil3");
    let x = b.input_value(0);
    let y = b.input_value(1);
    let z = b.input_value(2);
    let one = b.const_value(1);
    let y2 = b.op(FuOp::IShl, &[y, one]);
    let s1 = b.op(FuOp::IAdd, &[x, y2]);
    let s = b.op(FuOp::IAdd, &[s1, z]);
    b.output_value(s, 0);
    let config = b.build().ok()?;

    let mut acc = Assembler::new();
    head(&mut acc);
    acc.push(Instr::Dyser(DyserInstr::Init { config: ConfigId::new(0) }));
    acc.label("sloop");
    acc.push(Instr::Dyser(DyserInstr::Load { port: Port::new(0), rs1: regs::L6, op2: Op2::Imm(-8) }));
    acc.push(Instr::Dyser(DyserInstr::Load { port: Port::new(1), rs1: regs::L6, op2: Op2::Imm(0) }));
    acc.push(Instr::Dyser(DyserInstr::Load { port: Port::new(2), rs1: regs::L6, op2: Op2::Imm(8) }));
    acc.push(Instr::Dyser(DyserInstr::Store { port: Port::new(0), rs1: regs::L5, op2: Op2::Imm(0) }));
    acc.push(Instr::alu(AluOp::Add, regs::L6, regs::L6, Op2::Imm(8)));
    acc.push(Instr::alu(AluOp::Add, regs::L5, regs::L5, Op2::Imm(8)));
    acc.push(Instr::alu(AluOp::SubCc, regs::L7, regs::L7, Op2::Imm(1)));
    acc.branch(ICond::Ne, "sloop");
    acc.push(Instr::Nop);
    acc.push(Instr::Dyser(DyserInstr::Fence));
    tail(&mut acc);

    Some(ProgramCase {
        name: "p3".into(),
        baseline: finish(&base, Vec::new()),
        accelerated: finish(&acc, vec![config]),
        argv: vec!["p3".into()],
        envp: vec!["SIM=dyser".into()],
        stdin,
        init: Vec::new(),
        expected: Vec::new(),
        expected_stdout: format!("{checksum}\n1\n").into_bytes(),
        expected_exit: checksum & 63,
    })
}

/// All whole-program workloads available for `geometry` at size `n`
/// (words of stdin).
pub fn all(geometry: FabricGeometry, n: usize, seed: u64) -> Vec<ProgramCase> {
    [p1(geometry, n, seed), p2(geometry, n, seed), p3(geometry, n, seed)]
        .into_iter()
        .flatten()
        .collect()
}

/// A program constructor: `(geometry, n, seed)` to a built case, or
/// `None` when the program's inner region does not fit the geometry.
pub type ProgramBuild = fn(FabricGeometry, usize, u64) -> Option<ProgramCase>;

/// The program constructor registered under `name`, if any.
pub fn by_name(name: &str) -> Option<ProgramBuild> {
    match name {
        "p1" => Some(p1),
        "p2" => Some(p2),
        "p3" => Some(p3),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyser_core::{run_whole_program, Backend, RunConfig};

    fn geometry() -> FabricGeometry {
        FabricGeometry::new(8, 8)
    }

    fn check_all_engines(case: &ProgramCase) {
        // Interpreted, stepped, and compiled must agree bit-for-bit on
        // stats and byte-for-byte on stdout for both legs.
        let mut rc = RunConfig::default();
        rc.system.geometry = geometry();
        let interp = run_whole_program("dyser", &case.accelerated, case, &rc)
            .unwrap_or_else(|e| panic!("{} interpreted: {e}", case.name));
        let base = run_whole_program("baseline", &case.baseline, case, &rc)
            .unwrap_or_else(|e| panic!("{} baseline: {e}", case.name));
        assert_eq!(base.stdout, interp.stdout, "{}: legs disagree on stdout", case.name);
        assert_eq!(base.exit_code, interp.exit_code, "{}: legs disagree on exit", case.name);

        let mut stepped_rc = rc.clone();
        stepped_rc.stepped = true;
        let stepped = run_whole_program("dyser", &case.accelerated, case, &stepped_rc)
            .unwrap_or_else(|e| panic!("{} stepped: {e}", case.name));
        assert_eq!(stepped.stats, interp.stats, "{}: stepped diverged", case.name);

        let mut compiled_rc = rc;
        compiled_rc.backend = Backend::Compiled;
        let compiled = run_whole_program("dyser", &case.accelerated, case, &compiled_rc)
            .unwrap_or_else(|e| panic!("{} compiled: {e}", case.name));
        assert_eq!(compiled.stats, interp.stats, "{}: compiled diverged", case.name);
        assert_eq!(compiled.stdout, interp.stdout, "{}: compiled stdout diverged", case.name);
    }

    #[test]
    fn p1_runs_identically_everywhere() {
        check_all_engines(&p1(geometry(), 32, 11).unwrap());
    }

    #[test]
    fn p2_runs_identically_everywhere() {
        check_all_engines(&p2(geometry(), 24, 12).unwrap());
    }

    #[test]
    fn p3_runs_identically_everywhere() {
        check_all_engines(&p3(geometry(), 26, 13).unwrap());
    }

    #[test]
    fn accelerated_legs_use_the_fabric() {
        let mut rc = RunConfig::default();
        rc.system.geometry = geometry();
        for case in all(geometry(), 32, 5) {
            let run = run_whole_program("dyser", &case.accelerated, &case, &rc)
                .unwrap_or_else(|e| panic!("{}: {e}", case.name));
            assert!(run.stats.fabric.fu_fires() > 0, "{}: fabric idle", case.name);
        }
    }

    #[test]
    fn too_small_geometry_returns_none() {
        let tiny = FabricGeometry::new(1, 1);
        assert!(p1(tiny, 8, 0).is_none());
    }
}
