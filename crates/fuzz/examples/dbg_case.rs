//! Disassembles and runs a corpus-format recipe given as a JSON path.

fn main() {
    let path = std::env::args().nth(1).expect("usage: dbg_case <recipe.json>");
    let text = std::fs::read_to_string(&path).expect("read recipe");
    let recipe = dyser_fuzz::corpus::recipe_from_json(&text).expect("parse recipe");
    let built = dyser_fuzz::gen::build_case(&recipe).expect("build");
    println!("=== IR ===\n{}", built.function);
    let opts = dyser_fuzz::gen::compiler_options(&recipe);
    let compiled = dyser_core::compile_cached(&built.function, &opts).expect("compile");
    println!("=== dyser asm ===");
    for (i, ins) in compiled.accelerated.listing.iter().enumerate() {
        println!("{i:4}: {ins}");
    }
    match dyser_fuzz::oracle::check_case(&recipe) {
        Ok(o) => println!("oracle: OK {o:?}"),
        Err(e) => println!("oracle: FAIL {e}"),
    }
}
