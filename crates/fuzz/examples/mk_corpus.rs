//! Regenerates the checked-in regression corpus under `corpus/`.

use dyser_fuzz::corpus::recipe_json;
use dyser_fuzz::gen::{GenStats, LoopForm, MemKind, Node, Recipe, RunMode};
use dyser_fuzz::sysprog::{
    checked_sys, sys_case_recipe, sys_recipe_json, SysOp, SysRecipe,
};

fn neutral() -> Recipe {
    Recipe {
        form: LoopForm::Canonical,
        a_fp: false,
        b_fp: false,
        nodes: vec![Node::Leaf(0, 0)],
        second: vec![],
        n: 4,
        inner: 0,
        alias_store: false,
        double_store: false,
        input_seed: 1,
        unroll: 1,
        lag_depth: 1,
        lag_stores: false,
        if_convert: false,
        refinement_rounds: 0,
        offload_exit: false,
        rows: 8,
        cols: 8,
        universal_fus: false,
        fifo_depth: 4,
        mem: MemKind::Default,
        mode: RunMode::FastForward,
        timeout_check: false,
    }
}

fn main() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/corpus");

    // Regression: two-region function hung — the second region's `dinit`
    // was emitted inside the first loop's body instead of on the CFG edge
    // entering the second region, reconfiguring the fabric mid-loop.
    let hang = Recipe {
        form: LoopForm::Sequential,
        a_fp: true,
        nodes: vec![Node::Leaf(3, 0x19b9_55d4_7e14_153b)],
        second: vec![Node::Leaf(1, 0x953e_4fc1_9651_0c37)],
        n: 2,
        input_seed: 0xadbd_8e3b_56da_fd40,
        ..neutral()
    };

    // Regression: `fneg` lowered to the fabric as `0.0 - x`, which does
    // not flip the sign of NaN (nor of +0.0); the interpreter and the
    // SPARC baseline negate the sign bit.
    let fneg_nan = Recipe {
        form: LoopForm::Canonical,
        a_fp: true,
        nodes: vec![Node::Leaf(0, 0x670d_9f8f_f936_551d), Node::Un(244, 0)],
        n: 6,
        input_seed: 0xb9f0_b36e_e233_2b0d,
        ..neutral()
    };

    // Regression: two stores through the same pointer in one iteration
    // were both software-pipelined as lagged store-only outputs, draining
    // out of program order so the earlier (negated draft) store won.
    let double_store_lag = Recipe {
        nodes: vec![Node::Leaf(3, 14_732_493_916_911_693_124)],
        n: 2,
        double_store: true,
        input_seed: 11_208_317_007_395_226_676,
        lag_stores: true,
        ..neutral()
    };

    // Regression: constant folding turned the *final* store's value into
    // the plain loaded value, so it compiled to a core-side `stx` while
    // the negated draft store stayed a fabric output — and lagging then
    // delayed the draft past the core store. The alias check must scan
    // every store in the body, not just the store-only fabric outputs.
    let lag_vs_core_store = Recipe {
        nodes: vec![Node::Leaf(3, 0x949f_a9ea_ce66_3c0c), Node::Bin(157, 0, 0)],
        n: 4,
        double_store: true,
        input_seed: 0x66c8_ac5b_dd84_5eef,
        unroll: 4,
        lag_stores: true,
        ..neutral()
    };

    let mut entries = vec![
        ("seq-region-switch-hang", hang, "run"),
        ("fneg-nan-sign", fneg_nan, "output-mismatch"),
        ("double-store-lag-order", double_store_lag, "output-mismatch"),
        ("lag-store-vs-core-store-order", lag_vs_core_store, "output-mismatch"),
    ];

    // Breadth: the first generated case of each loop form from the fixed
    // campaign seed, as representative always-green coverage.
    for form in LoopForm::ALL {
        let (idx, recipe) = (0u64..)
            .map(|i| (i, dyser_fuzz::case_recipe(0xD75E, i)))
            .find(|(_, r)| r.form == form && r.fifo_depth != 0)
            .expect("every form appears");
        let mut stats = GenStats::default();
        stats.record(&recipe);
        let name = format!("gen-{}-case-{idx}", form.label());
        entries.push((Box::leak(name.into_boxed_str()), recipe, ""));
    }

    for (name, recipe, failure) in entries {
        dyser_fuzz::checked(&recipe, None).unwrap_or_else(|e| panic!("{name} not green: {e}"));
        let failure = if failure.is_empty() { None } else { Some(failure) };
        let path = format!("{dir}/{name}.json");
        std::fs::write(&path, recipe_json(&recipe, failure)).expect("write corpus entry");
        println!("wrote {path}");
    }

    // Syscall-leg corpus (corpus/syscall/): trap-sequence programs the
    // multi-engine stream/exit/stats oracle replays on every test run.
    let sys_dir = format!("{dir}/syscall");
    std::fs::create_dir_all(&sys_dir).expect("create syscall corpus dir");

    // Hand-written minimal interleaving: write / brk-grow / write — the
    // shape that would catch stdout bytes lost or reordered around a
    // moving program break.
    let interleave = SysRecipe {
        ops: vec![
            SysOp::Write { fd: 1, off: 0, len: 16 },
            SysOp::BrkGrow { delta: 0x200 },
            SysOp::Write { fd: 1, off: 16, len: 16 },
            SysOp::BrkShrink,
            SysOp::Write { fd: 2, off: 32, len: 8 },
        ],
        exit_code: 7,
        data_seed: 0x5C5C_0001,
        stdin_len: 0,
    };

    // Representative generated cases from the fixed campaign seed: the
    // first with a bad-fd write, and the first mixing reads with writes.
    let with = |pred: &dyn Fn(&SysRecipe) -> bool| -> (u64, SysRecipe) {
        (0u64..)
            .map(|i| (i, sys_case_recipe(0xD75E, i)))
            .find(|(_, r)| pred(r))
            .expect("the grammar draws this shape")
    };
    let (bad_i, bad_fd) = with(&|r| {
        r.ops.iter().any(|o| matches!(o, SysOp::Write { fd, .. } if *fd != 1 && *fd != 2))
    });
    let (rw_i, read_write) = with(&|r| {
        r.ops.iter().any(|o| matches!(o, SysOp::Read { .. }))
            && r.ops.iter().any(|o| matches!(o, SysOp::Write { fd: 1, .. }))
            && r.stdin_len > 0
    });

    let sys_entries = vec![
        ("sys-write-brk-interleave".to_string(), interleave),
        (format!("sys-gen-bad-fd-case-{bad_i}"), bad_fd),
        (format!("sys-gen-read-write-case-{rw_i}"), read_write),
    ];
    for (name, recipe) in sys_entries {
        checked_sys(&recipe).unwrap_or_else(|e| panic!("{name} not green: {e}"));
        let path = format!("{sys_dir}/{name}.json");
        std::fs::write(&path, sys_recipe_json(&recipe, None)).expect("write syscall entry");
        println!("wrote {path}");
    }
}
