//! # dyser-fuzz
//!
//! The differential fuzzing subsystem: an adversarial, grammar-based
//! kernel generator with a multi-engine oracle and automatic shrinking.
//!
//! The workload suite and the hand-written tests establish that the
//! simulator is right on the kernels we thought of. This crate is the
//! standing adversary for everything else: it draws random [`gen::Recipe`]s
//! — nested/sequential/reduction loops, early-exit and guarded-store
//! control flow, aliasing stores, mixed int/fp DAGs, randomized compiler
//! options, fabric geometries, cache configurations, and run modes — and
//! demands that every engine in the stack agrees:
//!
//! * the IR **interpreter** (ground truth),
//! * the compiled **baseline** binary on the cycle-level core,
//! * the compiled **DySER** binary on core + fabric,
//! * the **fast-forwarding** and **per-cycle** simulation paths
//!   (bit-identical `RunStats`),
//! * the **cycle-attribution identity** on every run, and
//! * **typed errors** — never panics — for timeouts and invalid
//!   configurations.
//!
//! Failures shrink automatically ([`shrink::shrink`]) and render as both
//! a JSON corpus entry and a ready-to-paste Rust test
//! ([`corpus::rust_repro`]). The checked-in corpus under
//! `crates/fuzz/corpus/` replays on every `cargo test`.
//!
//! Drive a campaign from the command line:
//!
//! ```text
//! cargo run --release -p dyser-bench --bin repro -- fuzz --cases 10000 --seed 0xD75E
//! ```

#![warn(missing_docs)]

pub mod corpus;
pub mod gen;
pub mod oracle;
pub mod shrink;
pub mod sysprog;

use dyser_rng::Rng64;

pub use gen::{GenStats, Recipe};
pub use oracle::{CaseOutcome, FuzzFailure, Sabotage};
pub use sysprog::{run_sys_campaign, SysCampaignReport, SysRecipe};

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Number of cases to draw.
    pub cases: u64,
    /// Campaign seed; each case derives an independent sub-seed, so a
    /// `(seed, index)` pair pinpoints a case without replaying the
    /// campaign.
    pub seed: u64,
    /// Shrink failures before reporting.
    pub shrink: bool,
    /// Worker threads.
    pub threads: usize,
    /// Arm the synthetic-miscompile hook (test-only; proves the oracle
    /// and shrinker end to end).
    pub sabotage: bool,
    /// Route each worker's cases through the lockstep batch oracle
    /// ([`oracle::check_cases_with`]) instead of checking them one at a
    /// time. Results are bit-identical either way.
    pub batch: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            cases: 1000,
            seed: 0xD75E,
            shrink: true,
            threads: dyser_core::default_workers(),
            sabotage: false,
            batch: true,
        }
    }
}

/// One campaign failure, with its shrunken form when shrinking ran.
#[derive(Debug, Clone)]
pub struct CaseFailure {
    /// Case index within the campaign.
    pub index: u64,
    /// What the oracle rejected.
    pub failure: FuzzFailure,
    /// The original recipe.
    pub recipe: Recipe,
    /// The minimized recipe (same failure kind), if shrinking ran.
    pub shrunk: Option<Recipe>,
}

/// Aggregate campaign results.
#[derive(Debug, Clone, Default)]
pub struct CampaignReport {
    /// Cases drawn.
    pub cases: u64,
    /// Generator self-statistics over every drawn recipe.
    pub gen_stats: GenStats,
    /// Passing cases where at least one region ran on the fabric.
    pub accelerated: u64,
    /// Deliberately invalid configurations, each rejected with a typed
    /// error.
    pub invalid_config: u64,
    /// Total simulated cycles across all runs of all passing cases.
    pub sim_cycles: u64,
    /// Oracle violations.
    pub failures: Vec<CaseFailure>,
}

impl CampaignReport {
    /// Zero oracle mismatches and zero panics.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// The recipe a `(campaign seed, case index)` pair denotes. Each case
/// gets its own SplitMix64 stream, so cases are independent and any one
/// of them replays in isolation.
#[must_use]
pub fn case_recipe(seed: u64, index: u64) -> Recipe {
    let mut rng = Rng64::seed_from_u64(seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    gen::generate(&mut rng)
}

/// [`oracle::check_case_with`] hardened against panics: any panic in the
/// compiler or simulator becomes a [`FuzzFailure::Panic`] finding instead
/// of tearing down the campaign.
pub fn checked(r: &Recipe, sabotage: Option<&Sabotage>) -> Result<CaseOutcome, FuzzFailure> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        oracle::check_case_with(r, sabotage)
    })) {
        Ok(result) => result,
        Err(payload) => {
            let detail = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            Err(FuzzFailure::Panic(detail))
        }
    }
}

/// [`oracle::check_cases_with`] hardened against panics: a panic
/// anywhere in the batched waves falls the whole slice back to the
/// serial [`checked`] path, which attributes the panic to its case.
#[must_use]
pub fn checked_batch(
    recipes: &[Recipe],
    sabotage: Option<&Sabotage>,
) -> Vec<Result<CaseOutcome, FuzzFailure>> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        oracle::check_cases_with(recipes, sabotage)
    }))
    .unwrap_or_else(|_| recipes.iter().map(|r| checked(r, sabotage)).collect())
}

/// Shrink cap per campaign: failures usually repeat one root cause, and
/// each shrink re-runs the oracle hundreds of times.
const MAX_SHRINKS: usize = 10;

/// Cases per worker slice: with four main legs per case, one slice's
/// first wave steps up to 32 systems in lockstep.
const BATCH_CASES: usize = 8;

/// Runs a fuzz campaign: draws `cases` recipes, checks each against the
/// full oracle on a worker pool (reusing the harness's [`parallel_map`]
/// and the process-wide compile cache), and shrinks up to [`MAX_SHRINKS`]
/// failures.
///
/// [`parallel_map`]: dyser_core::parallel_map
#[must_use]
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignReport {
    // Panics are findings here, not crashes; silence the default hook's
    // stderr spew while the campaign (and shrinking) runs.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let indices: Vec<u64> = (0..cfg.cases).collect();
    let sabotage = if cfg.sabotage { Some(Sabotage) } else { None };
    let chunks: Vec<&[u64]> = indices.chunks(BATCH_CASES).collect();
    let results: Vec<(Recipe, Result<CaseOutcome, FuzzFailure>)> =
        dyser_core::parallel_map(&chunks, cfg.threads, |chunk| {
            let recipes: Vec<Recipe> = chunk.iter().map(|&i| case_recipe(cfg.seed, i)).collect();
            let outcomes = if cfg.batch {
                checked_batch(&recipes, sabotage.as_ref())
            } else {
                recipes.iter().map(|r| checked(r, sabotage.as_ref())).collect()
            };
            recipes.into_iter().zip(outcomes).collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect();

    let mut report = CampaignReport { cases: cfg.cases, ..CampaignReport::default() };
    for (index, (recipe, outcome)) in results.into_iter().enumerate() {
        report.gen_stats.record(&recipe);
        match outcome {
            Ok(o) => {
                report.accelerated += u64::from(o.accelerated);
                report.invalid_config += u64::from(o.invalid_config);
                report.sim_cycles += o.cycles;
            }
            Err(failure) => {
                let shrunk = (cfg.shrink && report.failures.len() < MAX_SHRINKS).then(|| {
                    let kind = failure.kind();
                    shrink::shrink(&recipe, |cand| {
                        checked(cand, sabotage.as_ref())
                            .err()
                            .is_some_and(|f| f.kind() == kind)
                    })
                });
                report.failures.push(CaseFailure {
                    index: index as u64,
                    failure,
                    recipe,
                    shrunk,
                });
            }
        }
    }

    std::panic::set_hook(prev_hook);
    report
}
