//! The multi-way oracle: every fuzz case must satisfy *all* of
//!
//! 1. IR interpreter == compiled baseline binary == compiled DySER binary
//!    (bit-exact output buffers, IEEE specials included);
//! 2. `System::run` (fast-forwarding), `System::run_stepped` (per-cycle
//!    reference), and `System::run_compiled` (block-translated thunks)
//!    produce bit-identical `RunStats`;
//! 3. every run's cycle attribution is balanced — `sum(buckets) ==
//!    cycles` — and the `MemMiss` bucket equals the memory hierarchy's
//!    own stall count;
//! 4. mid-run timeouts are typed (`SysError::Timeout`) and identical on
//!    both simulation paths;
//! 5. invalid system descriptions fail with a typed
//!    `SysError::InvalidConfig` before any simulation starts;
//! 6. nothing panics (the campaign driver wraps each case in
//!    `catch_unwind`).
//!
//! Any violation is a simulator or compiler bug, reported as a
//! [`FuzzFailure`] whose `kind` the shrinker preserves while minimizing.

use std::fmt;

use dyser_compiler::ir::interp::{interpret, InterpMem};
use dyser_compiler::Program;
use dyser_core::{compile_cached, RunStats, SysError, System, SystemConfig};
use dyser_sparc::CycleBucket;

use crate::gen::{build_case, compiler_options, system_config, BuiltCase, Recipe, RunMode};

/// Interpreter step budget per case.
const INTERP_STEPS: u64 = 10_000_000;
/// Simulation cycle budget per run — generous for kernels this small, so
/// hitting it is itself a finding.
const MAX_CYCLES: u64 = 2_000_000;
/// Trace ring capacity for traced-mode runs.
const TRACE_CAP: usize = 4096;

/// One oracle violation. `Debug` doubles as the campaign's detail line.
#[derive(Debug, Clone)]
pub enum FuzzFailure {
    /// The grammar emitted IR the verifier rejected — a fuzzer bug.
    Generator(String),
    /// The interpreter itself faulted on generated IR.
    Interp(String),
    /// Compilation failed; the pipeline is supposed to degrade, not fail.
    Compile(String),
    /// A zero-FIFO recipe did not produce a typed `InvalidConfig`.
    ExpectedInvalidConfig(String),
    /// A run that should complete returned an error.
    Run {
        /// Which engine (`"baseline"`, `"dyser"`, `"dyser-stepped"`,
        /// `"dyser-compiled"`).
        which: &'static str,
        /// The typed error's rendering.
        detail: String,
    },
    /// An output word disagreed with the interpreter.
    OutputMismatch {
        /// Which engine.
        which: &'static str,
        /// Address of the first mismatching word.
        addr: u64,
        /// Interpreter's bits.
        expected: u64,
        /// Engine's bits.
        got: u64,
    },
    /// Fast-forwarded and stepped stats were not bit-identical.
    StatsDiverge(String),
    /// A run's cycle attribution failed the balance identity.
    UnbalancedAccount {
        /// Which engine.
        which: &'static str,
        /// What went out of balance.
        detail: String,
    },
    /// The half-budget timeout sweep diverged between paths.
    TimeoutDiverge(String),
    /// Traced mode produced no trace.
    MissingTrace,
    /// The case panicked (caught by the campaign driver).
    Panic(String),
}

impl FuzzFailure {
    /// Stable failure class; the shrinker only accepts candidates that
    /// fail with the *same* kind, so minimization never wanders onto a
    /// different bug.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            FuzzFailure::Generator(_) => "generator",
            FuzzFailure::Interp(_) => "interp",
            FuzzFailure::Compile(_) => "compile",
            FuzzFailure::ExpectedInvalidConfig(_) => "expected-invalid-config",
            FuzzFailure::Run { .. } => "run",
            FuzzFailure::OutputMismatch { .. } => "output-mismatch",
            FuzzFailure::StatsDiverge(_) => "stats-diverge",
            FuzzFailure::UnbalancedAccount { .. } => "unbalanced-account",
            FuzzFailure::TimeoutDiverge(_) => "timeout-diverge",
            FuzzFailure::MissingTrace => "missing-trace",
            FuzzFailure::Panic(_) => "panic",
        }
    }
}

impl fmt::Display for FuzzFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FuzzFailure::Generator(d) => write!(f, "generator bug: {d}"),
            FuzzFailure::Interp(d) => write!(f, "interpreter fault: {d}"),
            FuzzFailure::Compile(d) => write!(f, "compile failure: {d}"),
            FuzzFailure::ExpectedInvalidConfig(d) => {
                write!(f, "invalid config not rejected with a typed error: {d}")
            }
            FuzzFailure::Run { which, detail } => write!(f, "{which} run failed: {detail}"),
            FuzzFailure::OutputMismatch { which, addr, expected, got } => write!(
                f,
                "{which} output mismatch at {addr:#x}: expected {expected:#018x}, got {got:#018x}"
            ),
            FuzzFailure::StatsDiverge(d) => write!(f, "run vs run_stepped stats diverge: {d}"),
            FuzzFailure::UnbalancedAccount { which, detail } => {
                write!(f, "{which} cycle account unbalanced: {detail}")
            }
            FuzzFailure::TimeoutDiverge(d) => write!(f, "timeout sweep diverged: {d}"),
            FuzzFailure::MissingTrace => write!(f, "traced run produced no trace"),
            FuzzFailure::Panic(d) => write!(f, "panic: {d}"),
        }
    }
}

/// What a passing case looked like — fed into campaign aggregates.
#[derive(Debug, Clone, Copy, Default)]
pub struct CaseOutcome {
    /// Whether any region actually ran on the fabric.
    pub accelerated: bool,
    /// Total simulated cycles across all of the case's runs.
    pub cycles: u64,
    /// The case was a deliberately invalid configuration, checked for a
    /// typed rejection and nothing more.
    pub invalid_config: bool,
}

/// The synthetic-miscompile hook: when armed, any recipe whose resolved
/// DAG contains an integer multiply gets its expected output perturbed,
/// simulating a miscompiled `Mul`. Test-only by construction — the
/// campaign only arms it when explicitly asked — it proves end to end
/// that the oracle detects single-op miscompiles and that the shrinker
/// minimizes them while preserving the failure.
#[derive(Debug, Clone, Copy)]
pub struct Sabotage;

impl Sabotage {
    /// Whether the recipe's resolved DAG contains the trigger op.
    #[must_use]
    pub fn trips(&self, r: &Recipe) -> bool {
        use crate::gen::{bin_choice, dag_types, BinChoice, Node};
        use dyser_compiler::{BinOp, Type};
        let has_int_mul = |nodes: &[Node], a_fp: bool, b_fp: bool| {
            let tys = dag_types(nodes, a_fp, b_fp);
            nodes.iter().any(|n| match n {
                Node::Bin(tag, x, y) => {
                    bin_choice(*tag, tys[*x], tys[*y]) == BinChoice::Int(BinOp::Mul)
                }
                _ => false,
            })
        };
        if has_int_mul(&r.nodes, r.a_fp, r.b_fp) {
            return true;
        }
        if r.second.is_empty() {
            return false;
        }
        // Loop 2's streams: loop 1's stored type, then stream A.
        let stored_fp =
            *dag_types(&r.nodes, r.a_fp, r.b_fp).last().expect("non-empty DAG") == Type::F64;
        has_int_mul(&r.second, stored_fp, r.a_fp)
    }
}

/// Checks one recipe against the full oracle stack.
///
/// # Errors
///
/// Returns the first [`FuzzFailure`] encountered.
pub fn check_case(r: &Recipe) -> Result<CaseOutcome, FuzzFailure> {
    check_case_with(r, None)
}

/// [`check_case`] with an optional synthetic-miscompile hook armed.
///
/// # Errors
///
/// Returns the first [`FuzzFailure`] encountered.
pub fn check_case_with(
    r: &Recipe,
    sabotage: Option<&Sabotage>,
) -> Result<CaseOutcome, FuzzFailure> {
    let built = build_case(r).map_err(FuzzFailure::Generator)?;

    // Ground truth: the IR interpreter.
    let mut imem = InterpMem::new();
    for (addr, words) in &built.init {
        imem.write_u64_slice(*addr, words);
    }
    interpret(&built.function, &built.args, &mut imem, INTERP_STEPS)
        .map_err(|e| FuzzFailure::Interp(format!("{e:?}")))?;
    let mut expected: Vec<(u64, Vec<u64>)> = built
        .outputs
        .iter()
        .map(|&(addr, len)| (addr, imem.read_u64_slice(addr, len)))
        .collect();

    if let Some(s) = sabotage {
        if s.trips(r) {
            // Simulate a miscompiled multiply: one wrong output bit.
            expected[0].1[0] ^= 1;
        }
    }

    let sys_cfg = system_config(r);

    // Deliberately impossible hardware must be rejected with a typed
    // error — from both the validator and the constructor — and that is
    // the whole case.
    if r.fifo_depth == 0 {
        if sys_cfg.validate().is_ok() {
            return Err(FuzzFailure::ExpectedInvalidConfig(
                "SystemConfig::validate accepted a zero FIFO depth".into(),
            ));
        }
        return match System::try_new(sys_cfg) {
            Err(SysError::InvalidConfig(_)) => {
                Ok(CaseOutcome { invalid_config: true, ..CaseOutcome::default() })
            }
            Err(other) => Err(FuzzFailure::ExpectedInvalidConfig(format!(
                "wrong error class: {other}"
            ))),
            Ok(_) => Err(FuzzFailure::ExpectedInvalidConfig(
                "System::try_new accepted a zero FIFO depth".into(),
            )),
        };
    }

    let opts = compiler_options(r);
    let compiled = compile_cached(&built.function, &opts)
        .map_err(|e| FuzzFailure::Compile(e.to_string()))?;

    let mut cycles = 0u64;

    // Baseline binary against the interpreter.
    let (base_stats, _) =
        exec("baseline", &compiled.baseline, &built, &expected, &sys_cfg, Engine::Fast, false)?;
    cycles += base_stats.cycles;

    // DySER binary: the fast-forwarding path (traced when the recipe says
    // so), the per-cycle reference path, and the block-translated compiled
    // path — all three must agree bit-for-bit in both outputs and
    // statistics.
    let traced = r.mode == RunMode::Traced;
    let (ff_stats, had_trace) =
        exec("dyser", &compiled.accelerated, &built, &expected, &sys_cfg, Engine::Fast, traced)?;
    let (st_stats, _) = exec(
        "dyser-stepped",
        &compiled.accelerated,
        &built,
        &expected,
        &sys_cfg,
        Engine::Stepped,
        false,
    )?;
    let (cp_stats, _) = exec(
        "dyser-compiled",
        &compiled.accelerated,
        &built,
        &expected,
        &sys_cfg,
        Engine::Compiled,
        false,
    )?;
    cycles += ff_stats.cycles + st_stats.cycles + cp_stats.cycles;
    if ff_stats != st_stats {
        return Err(FuzzFailure::StatsDiverge(format!(
            "fast-forward {ff_stats:?} vs stepped {st_stats:?}"
        )));
    }
    if ff_stats != cp_stats {
        return Err(FuzzFailure::StatsDiverge(format!(
            "fast-forward {ff_stats:?} vs compiled {cp_stats:?}"
        )));
    }
    if traced && !had_trace {
        return Err(FuzzFailure::MissingTrace);
    }

    // Mid-run timeout sweep: every path must report the same typed
    // Timeout at the same cycle under a half budget.
    if r.timeout_check {
        let budget = ff_stats.cycles / 2;
        let t_ff = run_to_timeout(&compiled.accelerated, &built, &sys_cfg, Engine::Fast, budget)?;
        let t_st =
            run_to_timeout(&compiled.accelerated, &built, &sys_cfg, Engine::Stepped, budget)?;
        let t_cp =
            run_to_timeout(&compiled.accelerated, &built, &sys_cfg, Engine::Compiled, budget)?;
        if t_ff != t_st || t_ff != t_cp {
            return Err(FuzzFailure::TimeoutDiverge(format!(
                "budget {budget}: fast-forward timed out at {t_ff}, stepped at {t_st}, \
                 compiled at {t_cp}"
            )));
        }
        cycles += t_ff + t_st + t_cp;
    }

    Ok(CaseOutcome { accelerated: compiled.accelerated_any, cycles, invalid_config: false })
}

/// Which execution engine drives a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Engine {
    /// [`System::run`] — interpreted, with quiescent fast-forwarding.
    Fast,
    /// [`System::run_stepped`] — the per-cycle reference.
    Stepped,
    /// [`System::run_compiled`] — block-translated execution thunks.
    Compiled,
}

impl Engine {
    fn run(self, sys: &mut System, budget: u64) -> Result<RunStats, SysError> {
        match self {
            Engine::Fast => sys.run(budget),
            Engine::Stepped => sys.run_stepped(budget),
            Engine::Compiled => sys.run_compiled(budget),
        }
    }
}

/// Builds a system, runs one engine, checks the balance identity and the
/// output buffers.
fn exec(
    which: &'static str,
    program: &Program,
    built: &BuiltCase,
    expected: &[(u64, Vec<u64>)],
    sys_cfg: &SystemConfig,
    engine: Engine,
    trace: bool,
) -> Result<(RunStats, bool), FuzzFailure> {
    let mut sys = setup(which, program, built, sys_cfg)?;
    if trace {
        sys.enable_trace(TRACE_CAP);
    }
    let run = engine.run(&mut sys, MAX_CYCLES);
    let stats = run.map_err(|e| FuzzFailure::Run { which, detail: e.to_string() })?;
    let acct = stats.cycle_account();
    if !acct.balanced() {
        return Err(FuzzFailure::UnbalancedAccount {
            which,
            detail: format!("sum(buckets) {} != cycles {}", acct.sum(), stats.cycles),
        });
    }
    if acct.get(CycleBucket::MemMiss) != stats.mem_miss_stall_cycles() {
        return Err(FuzzFailure::UnbalancedAccount {
            which,
            detail: format!(
                "MemMiss bucket {} != memory stall count {}",
                acct.get(CycleBucket::MemMiss),
                stats.mem_miss_stall_cycles()
            ),
        });
    }
    for (addr, words) in expected {
        for (i, want) in words.iter().enumerate() {
            let a = addr + 8 * i as u64;
            let got = sys.memory().read_u64(a);
            if got != *want {
                return Err(FuzzFailure::OutputMismatch {
                    which,
                    addr: a,
                    expected: *want,
                    got,
                });
            }
        }
    }
    Ok((stats, sys.take_trace().is_some()))
}

/// Runs one engine under an insufficient budget; the result must be a
/// typed `Timeout`, whose cycle count is returned.
fn run_to_timeout(
    program: &Program,
    built: &BuiltCase,
    sys_cfg: &SystemConfig,
    engine: Engine,
    budget: u64,
) -> Result<u64, FuzzFailure> {
    let mut sys = setup("timeout-sweep", program, built, sys_cfg)?;
    let run = engine.run(&mut sys, budget);
    match run {
        Err(SysError::Timeout { cycles }) => Ok(cycles),
        Err(other) => Err(FuzzFailure::TimeoutDiverge(format!(
            "budget {budget} produced a non-timeout error: {other}"
        ))),
        Ok(stats) => Err(FuzzFailure::TimeoutDiverge(format!(
            "budget {budget} (half of the full run) completed in {} cycles",
            stats.cycles
        ))),
    }
}

fn setup(
    which: &'static str,
    program: &Program,
    built: &BuiltCase,
    sys_cfg: &SystemConfig,
) -> Result<System, FuzzFailure> {
    let mut sys = System::try_new(sys_cfg.clone())
        .map_err(|e| FuzzFailure::Run { which, detail: e.to_string() })?;
    sys.load_program(program).map_err(|e| FuzzFailure::Run { which, detail: e.to_string() })?;
    for (addr, words) in &built.init {
        sys.memory_mut().write_u64_slice(*addr, words);
    }
    sys.set_args(&built.args);
    Ok(sys)
}
