//! The multi-way oracle: every fuzz case must satisfy *all* of
//!
//! 1. IR interpreter == compiled baseline binary == compiled DySER binary
//!    (bit-exact output buffers, IEEE specials included);
//! 2. `System::run` (fast-forwarding), `System::run_stepped` (per-cycle
//!    reference), and `System::run_compiled` (block-translated thunks)
//!    produce bit-identical `RunStats`;
//! 3. every run's cycle attribution is balanced — `sum(buckets) ==
//!    cycles` — and the `MemMiss` bucket equals the memory hierarchy's
//!    own stall count;
//! 4. mid-run timeouts are typed (`SysError::Timeout`) and identical on
//!    both simulation paths;
//! 5. invalid system descriptions fail with a typed
//!    `SysError::InvalidConfig` before any simulation starts;
//! 6. nothing panics (the campaign driver wraps each case in
//!    `catch_unwind`).
//!
//! Any violation is a simulator or compiler bug, reported as a
//! [`FuzzFailure`] whose `kind` the shrinker preserves while minimizing.

use std::fmt;
use std::sync::Arc;

use dyser_compiler::ir::interp::{interpret, InterpMem};
use dyser_compiler::{CompiledProgram, Program};
use dyser_core::{
    compile_cached, run_batch, BatchEngine, BatchItem, RunStats, SysError, System, SystemConfig,
};
use dyser_sparc::CycleBucket;

use crate::gen::{build_case, compiler_options, system_config, BuiltCase, Recipe, RunMode};

/// Interpreter step budget per case.
const INTERP_STEPS: u64 = 10_000_000;
/// Simulation cycle budget per run — generous for kernels this small, so
/// hitting it is itself a finding.
const MAX_CYCLES: u64 = 2_000_000;
/// Trace ring capacity for traced-mode runs.
const TRACE_CAP: usize = 4096;

/// One oracle violation. `Debug` doubles as the campaign's detail line.
#[derive(Debug, Clone)]
pub enum FuzzFailure {
    /// The grammar emitted IR the verifier rejected — a fuzzer bug.
    Generator(String),
    /// The interpreter itself faulted on generated IR.
    Interp(String),
    /// Compilation failed; the pipeline is supposed to degrade, not fail.
    Compile(String),
    /// A zero-FIFO recipe did not produce a typed `InvalidConfig`.
    ExpectedInvalidConfig(String),
    /// A run that should complete returned an error.
    Run {
        /// Which engine (`"baseline"`, `"dyser"`, `"dyser-stepped"`,
        /// `"dyser-compiled"`).
        which: &'static str,
        /// The typed error's rendering.
        detail: String,
    },
    /// An output word disagreed with the interpreter.
    OutputMismatch {
        /// Which engine.
        which: &'static str,
        /// Address of the first mismatching word.
        addr: u64,
        /// Interpreter's bits.
        expected: u64,
        /// Engine's bits.
        got: u64,
    },
    /// Fast-forwarded and stepped stats were not bit-identical.
    StatsDiverge(String),
    /// A run's cycle attribution failed the balance identity.
    UnbalancedAccount {
        /// Which engine.
        which: &'static str,
        /// What went out of balance.
        detail: String,
    },
    /// The half-budget timeout sweep diverged between paths.
    TimeoutDiverge(String),
    /// Traced mode produced no trace.
    MissingTrace,
    /// The case panicked (caught by the campaign driver).
    Panic(String),
}

impl FuzzFailure {
    /// Stable failure class; the shrinker only accepts candidates that
    /// fail with the *same* kind, so minimization never wanders onto a
    /// different bug.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            FuzzFailure::Generator(_) => "generator",
            FuzzFailure::Interp(_) => "interp",
            FuzzFailure::Compile(_) => "compile",
            FuzzFailure::ExpectedInvalidConfig(_) => "expected-invalid-config",
            FuzzFailure::Run { .. } => "run",
            FuzzFailure::OutputMismatch { .. } => "output-mismatch",
            FuzzFailure::StatsDiverge(_) => "stats-diverge",
            FuzzFailure::UnbalancedAccount { .. } => "unbalanced-account",
            FuzzFailure::TimeoutDiverge(_) => "timeout-diverge",
            FuzzFailure::MissingTrace => "missing-trace",
            FuzzFailure::Panic(_) => "panic",
        }
    }
}

impl fmt::Display for FuzzFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FuzzFailure::Generator(d) => write!(f, "generator bug: {d}"),
            FuzzFailure::Interp(d) => write!(f, "interpreter fault: {d}"),
            FuzzFailure::Compile(d) => write!(f, "compile failure: {d}"),
            FuzzFailure::ExpectedInvalidConfig(d) => {
                write!(f, "invalid config not rejected with a typed error: {d}")
            }
            FuzzFailure::Run { which, detail } => write!(f, "{which} run failed: {detail}"),
            FuzzFailure::OutputMismatch { which, addr, expected, got } => write!(
                f,
                "{which} output mismatch at {addr:#x}: expected {expected:#018x}, got {got:#018x}"
            ),
            FuzzFailure::StatsDiverge(d) => write!(f, "run vs run_stepped stats diverge: {d}"),
            FuzzFailure::UnbalancedAccount { which, detail } => {
                write!(f, "{which} cycle account unbalanced: {detail}")
            }
            FuzzFailure::TimeoutDiverge(d) => write!(f, "timeout sweep diverged: {d}"),
            FuzzFailure::MissingTrace => write!(f, "traced run produced no trace"),
            FuzzFailure::Panic(d) => write!(f, "panic: {d}"),
        }
    }
}

/// What a passing case looked like — fed into campaign aggregates.
#[derive(Debug, Clone, Copy, Default)]
pub struct CaseOutcome {
    /// Whether any region actually ran on the fabric.
    pub accelerated: bool,
    /// Total simulated cycles across all of the case's runs.
    pub cycles: u64,
    /// The case was a deliberately invalid configuration, checked for a
    /// typed rejection and nothing more.
    pub invalid_config: bool,
}

/// The synthetic-miscompile hook: when armed, any recipe whose resolved
/// DAG contains an integer multiply gets its expected output perturbed,
/// simulating a miscompiled `Mul`. Test-only by construction — the
/// campaign only arms it when explicitly asked — it proves end to end
/// that the oracle detects single-op miscompiles and that the shrinker
/// minimizes them while preserving the failure.
#[derive(Debug, Clone, Copy)]
pub struct Sabotage;

impl Sabotage {
    /// Whether the recipe's resolved DAG contains the trigger op.
    #[must_use]
    pub fn trips(&self, r: &Recipe) -> bool {
        use crate::gen::{bin_choice, dag_types, BinChoice, Node};
        use dyser_compiler::{BinOp, Type};
        let has_int_mul = |nodes: &[Node], a_fp: bool, b_fp: bool| {
            let tys = dag_types(nodes, a_fp, b_fp);
            nodes.iter().any(|n| match n {
                Node::Bin(tag, x, y) => {
                    bin_choice(*tag, tys[*x], tys[*y]) == BinChoice::Int(BinOp::Mul)
                }
                _ => false,
            })
        };
        if has_int_mul(&r.nodes, r.a_fp, r.b_fp) {
            return true;
        }
        if r.second.is_empty() {
            return false;
        }
        // Loop 2's streams: loop 1's stored type, then stream A.
        let stored_fp =
            *dag_types(&r.nodes, r.a_fp, r.b_fp).last().expect("non-empty DAG") == Type::F64;
        has_int_mul(&r.second, stored_fp, r.a_fp)
    }
}

/// Checks one recipe against the full oracle stack.
///
/// # Errors
///
/// Returns the first [`FuzzFailure`] encountered.
pub fn check_case(r: &Recipe) -> Result<CaseOutcome, FuzzFailure> {
    check_case_with(r, None)
}

/// [`check_case`] with an optional synthetic-miscompile hook armed.
///
/// # Errors
///
/// Returns the first [`FuzzFailure`] encountered.
pub fn check_case_with(
    r: &Recipe,
    sabotage: Option<&Sabotage>,
) -> Result<CaseOutcome, FuzzFailure> {
    let Some(prep) = prep_case(r, sabotage)? else {
        return Ok(CaseOutcome { invalid_config: true, ..CaseOutcome::default() });
    };
    let PrepCase { built, expected, compiled, sys_cfg, .. } = prep;

    let mut cycles = 0u64;

    // Baseline binary against the interpreter.
    let (base_stats, _) =
        exec("baseline", &compiled.baseline, &built, &expected, &sys_cfg, Engine::Fast, false)?;
    cycles += base_stats.cycles;

    // DySER binary: the fast-forwarding path (traced when the recipe says
    // so), the per-cycle reference path, and the block-translated compiled
    // path — all three must agree bit-for-bit in both outputs and
    // statistics.
    let traced = r.mode == RunMode::Traced;
    let (ff_stats, had_trace) =
        exec("dyser", &compiled.accelerated, &built, &expected, &sys_cfg, Engine::Fast, traced)?;
    let (st_stats, _) = exec(
        "dyser-stepped",
        &compiled.accelerated,
        &built,
        &expected,
        &sys_cfg,
        Engine::Stepped,
        false,
    )?;
    let (cp_stats, _) = exec(
        "dyser-compiled",
        &compiled.accelerated,
        &built,
        &expected,
        &sys_cfg,
        Engine::Compiled,
        false,
    )?;
    cycles += ff_stats.cycles + st_stats.cycles + cp_stats.cycles;
    if ff_stats != st_stats {
        return Err(FuzzFailure::StatsDiverge(format!(
            "fast-forward {ff_stats:?} vs stepped {st_stats:?}"
        )));
    }
    if ff_stats != cp_stats {
        return Err(FuzzFailure::StatsDiverge(format!(
            "fast-forward {ff_stats:?} vs compiled {cp_stats:?}"
        )));
    }
    if traced && !had_trace {
        return Err(FuzzFailure::MissingTrace);
    }

    // Mid-run timeout sweep: every path must report the same typed
    // Timeout at the same cycle under a half budget.
    if r.timeout_check {
        let budget = ff_stats.cycles / 2;
        let t_ff = run_to_timeout(&compiled.accelerated, &built, &sys_cfg, Engine::Fast, budget)?;
        let t_st =
            run_to_timeout(&compiled.accelerated, &built, &sys_cfg, Engine::Stepped, budget)?;
        let t_cp =
            run_to_timeout(&compiled.accelerated, &built, &sys_cfg, Engine::Compiled, budget)?;
        if t_ff != t_st || t_ff != t_cp {
            return Err(FuzzFailure::TimeoutDiverge(format!(
                "budget {budget}: fast-forward timed out at {t_ff}, stepped at {t_st}, \
                 compiled at {t_cp}"
            )));
        }
        cycles += t_ff + t_st + t_cp;
    }

    Ok(CaseOutcome { accelerated: compiled.accelerated_any, cycles, invalid_config: false })
}

/// Everything [`check_case_with`] computes before its first engine run:
/// the built case, the interpreter's (possibly sabotaged) expected
/// outputs, the compiled binaries, and the system description.
struct PrepCase {
    built: BuiltCase,
    expected: Vec<(u64, Vec<u64>)>,
    compiled: Arc<CompiledProgram>,
    sys_cfg: SystemConfig,
    timeout_check: bool,
}

/// The shared prologue of the serial and batched oracle paths: build,
/// interpret, sabotage, reject invalid configurations, compile.
/// `Ok(None)` is the deliberately-invalid-configuration outcome.
fn prep_case(r: &Recipe, sabotage: Option<&Sabotage>) -> Result<Option<PrepCase>, FuzzFailure> {
    let built = build_case(r).map_err(FuzzFailure::Generator)?;

    // Ground truth: the IR interpreter.
    let mut imem = InterpMem::new();
    for (addr, words) in &built.init {
        imem.write_u64_slice(*addr, words);
    }
    interpret(&built.function, &built.args, &mut imem, INTERP_STEPS)
        .map_err(|e| FuzzFailure::Interp(format!("{e:?}")))?;
    let mut expected: Vec<(u64, Vec<u64>)> = built
        .outputs
        .iter()
        .map(|&(addr, len)| (addr, imem.read_u64_slice(addr, len)))
        .collect();

    if let Some(s) = sabotage {
        if s.trips(r) {
            // Simulate a miscompiled multiply: one wrong output bit.
            expected[0].1[0] ^= 1;
        }
    }

    let sys_cfg = system_config(r);

    // Deliberately impossible hardware must be rejected with a typed
    // error — from both the validator and the constructor — and that is
    // the whole case.
    if r.fifo_depth == 0 {
        if sys_cfg.validate().is_ok() {
            return Err(FuzzFailure::ExpectedInvalidConfig(
                "SystemConfig::validate accepted a zero FIFO depth".into(),
            ));
        }
        return match System::try_new(sys_cfg) {
            Err(SysError::InvalidConfig(_)) => Ok(None),
            Err(other) => Err(FuzzFailure::ExpectedInvalidConfig(format!(
                "wrong error class: {other}"
            ))),
            Ok(_) => Err(FuzzFailure::ExpectedInvalidConfig(
                "System::try_new accepted a zero FIFO depth".into(),
            )),
        };
    }

    let opts = compiler_options(r);
    let compiled = compile_cached(&built.function, &opts)
        .map_err(|e| FuzzFailure::Compile(e.to_string()))?;
    Ok(Some(PrepCase { built, expected, compiled, sys_cfg, timeout_check: r.timeout_check }))
}

/// The four main oracle legs, in serial check order: name, engine, and
/// whether the leg runs the accelerated binary.
const LEGS: [(&str, Engine, bool); 4] = [
    ("baseline", Engine::Fast, false),
    ("dyser", Engine::Fast, true),
    ("dyser-stepped", Engine::Stepped, true),
    ("dyser-compiled", Engine::Compiled, true),
];

/// The timeout sweep's engines, in serial check order.
const SWEEP: [Engine; 3] = [Engine::Fast, Engine::Stepped, Engine::Compiled];

/// Checks a slice of recipes with every case's simulation legs packed
/// into lockstep batches ([`dyser_core::run_batch`]): wave one steps all
/// cases' four main legs together, wave two batches the timeout sweeps
/// of the cases that survived wave one. Results — outcomes, failures,
/// and which failure is reported first — are identical to running
/// [`check_case_with`] on each recipe in turn. Traced-mode recipes run
/// through the serial path, which owns the trace-ring plumbing.
pub fn check_cases_with(
    recipes: &[Recipe],
    sabotage: Option<&Sabotage>,
) -> Vec<Result<CaseOutcome, FuzzFailure>> {
    let mut results: Vec<Option<Result<CaseOutcome, FuzzFailure>>> =
        recipes.iter().map(|_| None).collect();
    let mut preps: Vec<(usize, PrepCase)> = Vec::new();
    for (i, r) in recipes.iter().enumerate() {
        if r.mode == RunMode::Traced {
            results[i] = Some(check_case_with(r, sabotage));
            continue;
        }
        match prep_case(r, sabotage) {
            Ok(Some(prep)) => preps.push((i, prep)),
            Ok(None) => {
                results[i] =
                    Some(Ok(CaseOutcome { invalid_config: true, ..CaseOutcome::default() }));
            }
            Err(f) => results[i] = Some(Err(f)),
        }
    }

    // Wave 1: the main legs of every prepped case, one lockstep batch.
    type LegResult = Result<(RunStats, System), FuzzFailure>;
    let mut legs: Vec<[Option<LegResult>; 4]> =
        preps.iter().map(|_| [None, None, None, None]).collect();
    let mut items: Vec<BatchItem> = Vec::new();
    let mut slots: Vec<(usize, usize)> = Vec::new();
    for (p_i, (_, prep)) in preps.iter().enumerate() {
        for (l_i, &(which, engine, accel)) in LEGS.iter().enumerate() {
            let program =
                if accel { &prep.compiled.accelerated } else { &prep.compiled.baseline };
            match setup(which, program, &prep.built, &prep.sys_cfg) {
                Ok(sys) => {
                    slots.push((p_i, l_i));
                    items.push(BatchItem::new(sys, MAX_CYCLES, engine.batch()));
                }
                Err(f) => legs[p_i][l_i] = Some(Err(f)),
            }
        }
    }
    for ((p_i, l_i), outcome) in slots.into_iter().zip(run_batch(items).outcomes) {
        let which = LEGS[l_i].0;
        legs[p_i][l_i] = Some(match outcome.result {
            Ok(stats) => Ok((stats, outcome.system)),
            Err(e) => Err(FuzzFailure::Run { which, detail: e.to_string() }),
        });
    }

    // Evaluate wave 1 per case, in the serial path's leg order, and
    // collect the timeout sweeps the survivors owe.
    let mut pending: Vec<(usize, u64, u64)> = Vec::new(); // (prep index, cycles, budget)
    for (p_i, (case_i, prep)) in preps.iter().enumerate() {
        let verdict = (|| {
            let mut cycles = 0u64;
            let mut stats = Vec::with_capacity(LEGS.len());
            for (l_i, &(which, _, _)) in LEGS.iter().enumerate() {
                let (leg_stats, sys) = legs[p_i][l_i].take().expect("every leg resolved")?;
                audit_leg(which, &leg_stats, &sys, &prep.expected)?;
                cycles += leg_stats.cycles;
                stats.push(leg_stats);
            }
            if stats[1] != stats[2] {
                return Err(FuzzFailure::StatsDiverge(format!(
                    "fast-forward {:?} vs stepped {:?}",
                    stats[1], stats[2]
                )));
            }
            if stats[1] != stats[3] {
                return Err(FuzzFailure::StatsDiverge(format!(
                    "fast-forward {:?} vs compiled {:?}",
                    stats[1], stats[3]
                )));
            }
            Ok((cycles, stats[1].cycles))
        })();
        match verdict {
            Err(f) => results[*case_i] = Some(Err(f)),
            Ok((cycles, ff_cycles)) => {
                if prep.timeout_check {
                    pending.push((p_i, cycles, ff_cycles / 2));
                } else {
                    results[*case_i] = Some(Ok(CaseOutcome {
                        accelerated: prep.compiled.accelerated_any,
                        cycles,
                        invalid_config: false,
                    }));
                }
            }
        }
    }

    // Wave 2: the survivors' timeout sweeps, one lockstep batch.
    let mut sweeps: Vec<[Option<Result<u64, FuzzFailure>>; 3]> =
        pending.iter().map(|_| [None, None, None]).collect();
    let mut items: Vec<BatchItem> = Vec::new();
    let mut slots: Vec<(usize, usize)> = Vec::new();
    for (s_i, &(p_i, _, budget)) in pending.iter().enumerate() {
        let prep = &preps[p_i].1;
        for (e_i, engine) in SWEEP.iter().enumerate() {
            match setup("timeout-sweep", &prep.compiled.accelerated, &prep.built, &prep.sys_cfg) {
                Ok(sys) => {
                    slots.push((s_i, e_i));
                    items.push(BatchItem::new(sys, budget, engine.batch()));
                }
                Err(f) => sweeps[s_i][e_i] = Some(Err(f)),
            }
        }
    }
    for ((s_i, e_i), outcome) in slots.into_iter().zip(run_batch(items).outcomes) {
        let budget = pending[s_i].2;
        sweeps[s_i][e_i] = Some(match outcome.result {
            Err(SysError::Timeout { cycles }) => Ok(cycles),
            Err(other) => Err(FuzzFailure::TimeoutDiverge(format!(
                "budget {budget} produced a non-timeout error: {other}"
            ))),
            Ok(stats) => Err(FuzzFailure::TimeoutDiverge(format!(
                "budget {budget} (half of the full run) completed in {} cycles",
                stats.cycles
            ))),
        });
    }
    for (s_i, (p_i, cycles, budget)) in pending.into_iter().enumerate() {
        let (case_i, prep) = &preps[p_i];
        let verdict = (|| {
            let mut timed = [0u64; 3];
            for (e_i, t) in timed.iter_mut().enumerate() {
                *t = sweeps[s_i][e_i].take().expect("every sweep leg resolved")?;
            }
            if timed[0] != timed[1] || timed[0] != timed[2] {
                return Err(FuzzFailure::TimeoutDiverge(format!(
                    "budget {budget}: fast-forward timed out at {}, stepped at {}, \
                     compiled at {}",
                    timed[0], timed[1], timed[2]
                )));
            }
            Ok(timed[0] + timed[1] + timed[2])
        })();
        results[*case_i] = Some(match verdict {
            Ok(extra) => Ok(CaseOutcome {
                accelerated: prep.compiled.accelerated_any,
                cycles: cycles + extra,
                invalid_config: false,
            }),
            Err(f) => Err(f),
        });
    }

    results.into_iter().map(|r| r.expect("every case resolved")).collect()
}

/// Which execution engine drives a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Engine {
    /// [`System::run`] — interpreted, with quiescent fast-forwarding.
    Fast,
    /// [`System::run_stepped`] — the per-cycle reference.
    Stepped,
    /// [`System::run_compiled`] — block-translated execution thunks.
    Compiled,
}

impl Engine {
    fn run(self, sys: &mut System, budget: u64) -> Result<RunStats, SysError> {
        match self {
            Engine::Fast => sys.run(budget),
            Engine::Stepped => sys.run_stepped(budget),
            Engine::Compiled => sys.run_compiled(budget),
        }
    }

    /// The lockstep batch scheduler's name for the same engine.
    fn batch(self) -> BatchEngine {
        match self {
            Engine::Fast => BatchEngine::Interpreted,
            Engine::Stepped => BatchEngine::Stepped,
            Engine::Compiled => BatchEngine::Compiled,
        }
    }
}

/// Builds a system, runs one engine, checks the balance identity and the
/// output buffers.
fn exec(
    which: &'static str,
    program: &Program,
    built: &BuiltCase,
    expected: &[(u64, Vec<u64>)],
    sys_cfg: &SystemConfig,
    engine: Engine,
    trace: bool,
) -> Result<(RunStats, bool), FuzzFailure> {
    let mut sys = setup(which, program, built, sys_cfg)?;
    if trace {
        sys.enable_trace(TRACE_CAP);
    }
    let run = engine.run(&mut sys, MAX_CYCLES);
    let stats = run.map_err(|e| FuzzFailure::Run { which, detail: e.to_string() })?;
    audit_leg(which, &stats, &sys, expected)?;
    Ok((stats, sys.take_trace().is_some()))
}

/// The post-run checks of one leg: the cycle-attribution balance
/// identity, the `MemMiss` cross-check, and the output buffers against
/// the interpreter — shared by the serial and batched paths.
fn audit_leg(
    which: &'static str,
    stats: &RunStats,
    sys: &System,
    expected: &[(u64, Vec<u64>)],
) -> Result<(), FuzzFailure> {
    let acct = stats.cycle_account();
    if !acct.balanced() {
        return Err(FuzzFailure::UnbalancedAccount {
            which,
            detail: format!("sum(buckets) {} != cycles {}", acct.sum(), stats.cycles),
        });
    }
    if acct.get(CycleBucket::MemMiss) != stats.mem_miss_stall_cycles() {
        return Err(FuzzFailure::UnbalancedAccount {
            which,
            detail: format!(
                "MemMiss bucket {} != memory stall count {}",
                acct.get(CycleBucket::MemMiss),
                stats.mem_miss_stall_cycles()
            ),
        });
    }
    for (addr, words) in expected {
        for (i, want) in words.iter().enumerate() {
            let a = addr + 8 * i as u64;
            let got = sys.memory().read_u64(a);
            if got != *want {
                return Err(FuzzFailure::OutputMismatch {
                    which,
                    addr: a,
                    expected: *want,
                    got,
                });
            }
        }
    }
    Ok(())
}

/// Runs one engine under an insufficient budget; the result must be a
/// typed `Timeout`, whose cycle count is returned.
fn run_to_timeout(
    program: &Program,
    built: &BuiltCase,
    sys_cfg: &SystemConfig,
    engine: Engine,
    budget: u64,
) -> Result<u64, FuzzFailure> {
    let mut sys = setup("timeout-sweep", program, built, sys_cfg)?;
    let run = engine.run(&mut sys, budget);
    match run {
        Err(SysError::Timeout { cycles }) => Ok(cycles),
        Err(other) => Err(FuzzFailure::TimeoutDiverge(format!(
            "budget {budget} produced a non-timeout error: {other}"
        ))),
        Ok(stats) => Err(FuzzFailure::TimeoutDiverge(format!(
            "budget {budget} (half of the full run) completed in {} cycles",
            stats.cycles
        ))),
    }
}

fn setup(
    which: &'static str,
    program: &Program,
    built: &BuiltCase,
    sys_cfg: &SystemConfig,
) -> Result<System, FuzzFailure> {
    let mut sys = System::try_new(sys_cfg.clone())
        .map_err(|e| FuzzFailure::Run { which, detail: e.to_string() })?;
    sys.load_program(program).map_err(|e| FuzzFailure::Run { which, detail: e.to_string() })?;
    for (addr, words) in &built.init {
        sys.memory_mut().write_u64_slice(*addr, words);
    }
    sys.set_args(&built.args);
    Ok(sys)
}
