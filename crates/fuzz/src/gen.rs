//! The kernel grammar and its generator.
//!
//! A [`Recipe`] is a small, fully explicit description of one fuzz case:
//! the loop form, the body expression DAG, the input data seed, and every
//! compiler / system / run-mode knob. Recipes are plain data — they
//! serialize to the JSON corpus, print as ready-to-paste Rust, and shrink
//! by field edits — and [`build_case`] deterministically lowers one to an
//! IR function plus its inputs. Nothing about a case depends on ambient
//! state: a recipe alone reproduces the run bit-for-bit.

use dyser_compiler::{
    BinOp, CmpOp, CompilerOptions, Function, FunctionBuilder, Type, UnOp, Value,
};
use dyser_core::SystemConfig;
use dyser_fabric::{FabricGeometry, FuKind};
use dyser_mem::MemConfig;
use dyser_rng::Rng64;

/// Input stream A base address (matches the workload suite's layout).
pub const BUF_A: u64 = 0x20_0000;
/// Input stream B base address.
pub const BUF_B: u64 = 0x30_0000;
/// Primary output buffer.
pub const BUF_C: u64 = 0x40_0000;
/// Secondary output buffer (reductions, early-exit results, loop 2).
pub const BUF_D: u64 = 0x50_0000;

/// One node of the body expression DAG. Operand indices refer to earlier
/// nodes only, so any prefix of a node list is itself a valid DAG — the
/// property the shrinker's deletion pass relies on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// Leaf: `kind % 5` selects `a[i]`, `b[i]`, the loop index, an integer
    /// constant (payload bits as `i64`), or a double constant (payload
    /// bits reinterpreted as `f64`).
    Leaf(u8, u64),
    /// Binary op: the tag picks an integer or floating op depending on the
    /// resolved operand types (see [`bin_choice`]).
    Bin(u8, usize, usize),
    /// Compare + select over three earlier nodes.
    Sel(usize, usize, usize),
    /// Unary op: conversion for integer operands, `tag % 4` selecting
    /// neg/abs/sqrt/truncate for floating operands.
    Un(u8, usize),
}

/// The loop skeleton a recipe's DAG is planted into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopForm {
    /// `for i { c[i] = f(a[i], b[i], i) }` — optionally storing in place
    /// over `a` and/or storing twice per iteration.
    Canonical,
    /// Outer × inner loop nest over `c[i*inner + j] = f(a[..], b[j], j)`.
    Nested,
    /// Two canonical loops in one function: `c = f(a, b)` then
    /// `d = g(c, a)` — a genuine multi-region program.
    Sequential,
    /// `d[0] = fold(+, f(a[i], b[i], i))` with the accumulator in a phi.
    Reduction,
    /// Data-dependent break: first `i` with `f(a[i]) < 0` (the E8
    /// early-exit shape family).
    EarlyExit,
    /// Store under a loop-carried branch (the E8 nested-control family;
    /// if-conversion turns the guard into a predicated store).
    CondStore,
}

impl LoopForm {
    /// All forms, for iteration in tests and stats.
    pub const ALL: [LoopForm; 6] = [
        LoopForm::Canonical,
        LoopForm::Nested,
        LoopForm::Sequential,
        LoopForm::Reduction,
        LoopForm::EarlyExit,
        LoopForm::CondStore,
    ];

    /// Stable label used by the JSON corpus.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            LoopForm::Canonical => "canonical",
            LoopForm::Nested => "nested",
            LoopForm::Sequential => "sequential",
            LoopForm::Reduction => "reduction",
            LoopForm::EarlyExit => "early-exit",
            LoopForm::CondStore => "cond-store",
        }
    }

    /// Inverse of [`LoopForm::label`].
    #[must_use]
    pub fn from_label(s: &str) -> Option<LoopForm> {
        LoopForm::ALL.into_iter().find(|f| f.label() == s)
    }
}

/// Which simulation path the oracle drives for the case's primary run.
/// Every case *also* runs the per-cycle reference path and demands
/// bit-identical statistics, so each mode is a distinct equivalence check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunMode {
    /// `System::run` — quiescent-state fast-forwarding enabled.
    FastForward,
    /// `System::run_stepped` — the per-cycle reference path on both sides.
    Stepped,
    /// `System::run` with event tracing enabled (tracing forces the
    /// per-cycle path internally; stats must still match).
    Traced,
}

impl RunMode {
    /// All modes.
    pub const ALL: [RunMode; 3] = [RunMode::FastForward, RunMode::Stepped, RunMode::Traced];

    /// Stable label used by the JSON corpus.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            RunMode::FastForward => "fast-forward",
            RunMode::Stepped => "stepped",
            RunMode::Traced => "traced",
        }
    }

    /// Inverse of [`RunMode::label`].
    #[must_use]
    pub fn from_label(s: &str) -> Option<RunMode> {
        RunMode::ALL.into_iter().find(|m| m.label() == s)
    }
}

/// Memory-hierarchy preset for the case's system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemKind {
    /// The evaluation's default hierarchy.
    Default,
    /// Pathologically small caches — maximum miss traffic.
    Tiny,
    /// Single-cycle everything — no stall machinery at all.
    Perfect,
}

impl MemKind {
    /// All presets.
    pub const ALL: [MemKind; 3] = [MemKind::Default, MemKind::Tiny, MemKind::Perfect];

    /// Stable label used by the JSON corpus.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            MemKind::Default => "default",
            MemKind::Tiny => "tiny",
            MemKind::Perfect => "perfect",
        }
    }

    /// Inverse of [`MemKind::label`].
    #[must_use]
    pub fn from_label(s: &str) -> Option<MemKind> {
        MemKind::ALL.into_iter().find(|m| m.label() == s)
    }

    /// The corresponding [`MemConfig`].
    #[must_use]
    pub fn config(self) -> MemConfig {
        match self {
            MemKind::Default => MemConfig::default(),
            MemKind::Tiny => MemConfig::tiny(),
            MemKind::Perfect => MemConfig::perfect(),
        }
    }
}

/// One complete fuzz case. Self-contained: the input data derives from
/// `input_seed`, so a saved recipe replays without any generator state.
#[derive(Debug, Clone, PartialEq)]
pub struct Recipe {
    /// Loop skeleton.
    pub form: LoopForm,
    /// Element type of stream A (`true` = f64).
    pub a_fp: bool,
    /// Element type of stream B.
    pub b_fp: bool,
    /// Body DAG (first loop for [`LoopForm::Sequential`]).
    pub nodes: Vec<Node>,
    /// Second-loop DAG, empty unless the form is `Sequential`.
    pub second: Vec<Node>,
    /// Trip count (outer trip count for `Nested`).
    pub n: usize,
    /// Inner trip count for `Nested`; ignored elsewhere.
    pub inner: usize,
    /// Canonical only: store in place over stream A instead of into C.
    pub alias_store: bool,
    /// Canonical only: store a draft value, then overwrite it — same
    /// address, same iteration — so store ordering is observable.
    pub double_store: bool,
    /// Seed of the xorshift stream that fills the input buffers.
    pub input_seed: u64,
    // --- compiler knobs ---
    /// Innermost-loop unroll factor (power of two, 1 = off).
    pub unroll: usize,
    /// Store-lag depth (1..=4).
    pub lag_depth: usize,
    /// Whether stores lag loads at all. Forced off for `alias_store`
    /// cases, matching the workload suite's conservative contract.
    pub lag_stores: bool,
    /// If-conversion toggle.
    pub if_convert: bool,
    /// Spatial-scheduler refinement rounds.
    pub refinement_rounds: usize,
    /// Offload the exit condition of data-dependent loops to the fabric.
    pub offload_exit: bool,
    // --- system knobs ---
    /// Fabric rows.
    pub rows: usize,
    /// Fabric columns.
    pub cols: usize,
    /// All-universal FU pattern instead of the default checkerboard.
    pub universal_fus: bool,
    /// Port FIFO depth. Zero is *deliberately* invalid: the oracle then
    /// demands a typed `SysError::InvalidConfig`, never a panic.
    pub fifo_depth: usize,
    /// Memory hierarchy preset.
    pub mem: MemKind,
    // --- run knobs ---
    /// Primary simulation path.
    pub mode: RunMode,
    /// Also re-run both paths under a half-budget cycle limit and demand
    /// identical typed `SysError::Timeout` results — the mid-stall
    /// timeout equivalence check.
    pub timeout_check: bool,
}

impl Recipe {
    /// Total IR DAG size — the quantity the shrinker minimizes and the
    /// acceptance criterion (≤ 8 after shrinking) counts.
    #[must_use]
    pub fn ir_nodes(&self) -> usize {
        self.nodes.len() + self.second.len()
    }

    /// Number of 64-bit words each input stream needs.
    #[must_use]
    pub fn stream_lens(&self) -> (usize, usize) {
        match self.form {
            LoopForm::Nested => (self.n * self.inner, self.inner),
            _ => (self.n, self.n),
        }
    }
}

/// Draws one recipe from the grammar. Every call advances `rng` by a
/// recipe-dependent amount; campaign drivers derive one sub-seed per case
/// instead of sharing a stream across cases.
pub fn generate(rng: &mut Rng64) -> Recipe {
    let form = match rng.gen_range(0u64..100) {
        0..=29 => LoopForm::Canonical,
        30..=44 => LoopForm::Nested,
        45..=59 => LoopForm::Sequential,
        60..=74 => LoopForm::Reduction,
        75..=86 => LoopForm::EarlyExit,
        _ => LoopForm::CondStore,
    };
    let nodes = gen_dag(rng, 2..=4, 1..=6);
    let second =
        if form == LoopForm::Sequential { gen_dag(rng, 2..=3, 1..=3) } else { Vec::new() };
    let (n, inner) = match form {
        LoopForm::Nested => (rng.gen_range(2usize..6), rng.gen_range(2usize..9)),
        _ => (rng.gen_range(4usize..40), 0),
    };
    let alias_store = form == LoopForm::Canonical && rng.gen_bool(0.25);
    let double_store = form == LoopForm::Canonical && rng.gen_bool(0.25);
    Recipe {
        form,
        a_fp: rng.gen_bool(0.5),
        b_fp: rng.gen_bool(0.5),
        nodes,
        second,
        n,
        inner,
        alias_store,
        double_store,
        input_seed: rng.next_u64(),
        unroll: 1 << rng.gen_range(0usize..4),
        lag_depth: rng.gen_range(1usize..5),
        lag_stores: !alias_store && rng.gen_bool(0.75),
        if_convert: rng.gen_bool(0.85),
        refinement_rounds: [0usize, 4, 12][rng.gen_range(0usize..3)],
        offload_exit: rng.gen_bool(0.2),
        rows: rng.gen_range(2usize..9),
        cols: rng.gen_range(2usize..9),
        universal_fus: rng.gen_bool(0.15),
        fifo_depth: if rng.gen_bool(0.01) { 0 } else { rng.gen_range(1usize..9) },
        mem: MemKind::ALL[rng.gen_range(0usize..3)],
        mode: match rng.gen_range(0u64..10) {
            0..=3 => RunMode::FastForward,
            4..=6 => RunMode::Stepped,
            _ => RunMode::Traced,
        },
        timeout_check: rng.gen_bool(0.25),
    }
}

fn gen_dag(
    rng: &mut Rng64,
    leaves: std::ops::RangeInclusive<usize>,
    ops: std::ops::RangeInclusive<usize>,
) -> Vec<Node> {
    let n_leaves = rng.gen_range(*leaves.start()..*leaves.end() + 1);
    let mut nodes: Vec<Node> =
        (0..n_leaves).map(|_| Node::Leaf(rng.gen_range(0u64..5) as u8, rng.next_u64())).collect();
    let n_ops = rng.gen_range(*ops.start()..*ops.end() + 1);
    for _ in 0..n_ops {
        let avail = nodes.len();
        let node = match rng.gen_range(0u64..10) {
            0..=5 => Node::Bin(
                rng.next_u64() as u8,
                rng.gen_range(0..avail),
                rng.gen_range(0..avail),
            ),
            6..=7 if avail >= 3 => Node::Sel(
                rng.gen_range(0..avail),
                rng.gen_range(0..avail),
                rng.gen_range(0..avail),
            ),
            _ => Node::Un(rng.next_u64() as u8, rng.gen_range(0..avail)),
        };
        nodes.push(node);
    }
    nodes
}

/// Aggregate generator self-statistics: the proof that the grammar
/// actually exercises what the issue demands — all three run modes, both
/// E8 control-flow shape families, aliasing, mixed types, invalid
/// configurations, and timeout sweeps.
#[derive(Debug, Default, Clone)]
pub struct GenStats {
    /// Recipes recorded.
    pub total: u64,
    /// Count per loop form, indexed like [`LoopForm::ALL`].
    pub forms: [u64; 6],
    /// Count per run mode, indexed like [`RunMode::ALL`].
    pub modes: [u64; 3],
    /// In-place (aliasing) store cases.
    pub alias_store: u64,
    /// Double-store cases.
    pub double_store: u64,
    /// Cases whose two streams have different element types.
    pub mixed_types: u64,
    /// Deliberately invalid system configurations (zero FIFO depth).
    pub invalid_config: u64,
    /// Cases that also sweep a mid-run timeout.
    pub timeout_checks: u64,
    /// Cases with exit-condition offload enabled.
    pub offload_exit: u64,
    /// Cases compiled with unrolling.
    pub unrolled: u64,
    /// Cases on an all-universal FU pattern.
    pub universal_fus: u64,
    /// Cases on a non-default memory hierarchy.
    pub nondefault_mem: u64,
}

impl GenStats {
    /// Folds one recipe into the tally.
    pub fn record(&mut self, r: &Recipe) {
        self.total += 1;
        let fi = LoopForm::ALL.iter().position(|f| *f == r.form).expect("known form");
        self.forms[fi] += 1;
        let mi = RunMode::ALL.iter().position(|m| *m == r.mode).expect("known mode");
        self.modes[mi] += 1;
        self.alias_store += u64::from(r.alias_store);
        self.double_store += u64::from(r.double_store);
        self.mixed_types += u64::from(r.a_fp != r.b_fp);
        self.invalid_config += u64::from(r.fifo_depth == 0);
        self.timeout_checks += u64::from(r.timeout_check);
        self.offload_exit += u64::from(r.offload_exit);
        self.unrolled += u64::from(r.unroll > 1);
        self.universal_fus += u64::from(r.universal_fus);
        self.nondefault_mem += u64::from(r.mem != MemKind::Default);
    }

    /// All three run modes drawn at least once.
    #[must_use]
    pub fn exercises_all_modes(&self) -> bool {
        self.modes.iter().all(|&c| c > 0)
    }

    /// Both E8 control-flow shape families drawn at least once: the
    /// early-exit family and the nested-control (guarded-store) family.
    #[must_use]
    pub fn exercises_shape_families(&self) -> bool {
        let ee = LoopForm::ALL.iter().position(|f| *f == LoopForm::EarlyExit).expect("form");
        let cs = LoopForm::ALL.iter().position(|f| *f == LoopForm::CondStore).expect("form");
        self.forms[ee] > 0 && self.forms[cs] > 0
    }
}

/// The system description a recipe asks for.
#[must_use]
pub fn system_config(r: &Recipe) -> SystemConfig {
    let geometry = FabricGeometry::new(r.rows, r.cols);
    SystemConfig {
        geometry,
        kinds: r.universal_fus.then(|| vec![FuKind::Universal; geometry.fu_count()]),
        mem: r.mem.config(),
        fifo_depth: r.fifo_depth,
        has_fabric: true,
    }
}

/// The compiler options a recipe asks for. Geometry and FU pattern match
/// [`system_config`] so the configured program loads onto the fabric it
/// was scheduled for.
#[must_use]
pub fn compiler_options(r: &Recipe) -> CompilerOptions {
    let mut opts = CompilerOptions {
        if_convert: r.if_convert,
        unroll_factor: r.unroll,
        geometry: FabricGeometry::new(r.rows, r.cols),
        kinds: r.universal_fus.then(|| vec![FuKind::Universal; r.rows * r.cols]),
        ..CompilerOptions::default()
    };
    opts.region.offload_exit_condition = r.offload_exit;
    if r.offload_exit {
        opts.region.min_compute_ops = 1;
    }
    opts.schedule.refinement_rounds = r.refinement_rounds;
    opts.codegen.lag_stores = r.lag_stores;
    opts.codegen.lag_depth = r.lag_depth;
    opts
}

// ---------------------------------------------------------------------------
// DAG typing and emission
// ---------------------------------------------------------------------------

fn int_bin(tag: u8) -> BinOp {
    match tag % 12 {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::And,
        4 => BinOp::Or,
        5 => BinOp::Xor,
        6 => BinOp::Smax,
        7 => BinOp::Smin,
        8 => BinOp::Ashr,
        9 => BinOp::Shl,
        10 => BinOp::Lshr,
        _ => BinOp::Sdiv,
    }
}

fn fp_bin(tag: u8) -> BinOp {
    match tag % 6 {
        0 => BinOp::Fadd,
        1 => BinOp::Fsub,
        2 => BinOp::Fmul,
        3 => BinOp::Fdiv,
        4 => BinOp::Fmax,
        _ => BinOp::Fmin,
    }
}

/// How a `Bin` node resolves against its operand types: mixed operands
/// promote to floating point on even tags and demote to integer on odd
/// tags, so both conversion directions appear in generated kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinChoice {
    /// Integer op; any f64 operand passes through `Ftoi` first.
    Int(BinOp),
    /// Floating op; any i64 operand passes through `Itof` first.
    Fp(BinOp),
}

/// Resolves a `Bin` tag against operand types.
#[must_use]
pub fn bin_choice(tag: u8, tx: Type, ty: Type) -> BinChoice {
    match (tx, ty) {
        (Type::I64, Type::I64) => BinChoice::Int(int_bin(tag)),
        (Type::F64, Type::F64) => BinChoice::Fp(fp_bin(tag)),
        _ if tag.is_multiple_of(2) => BinChoice::Fp(fp_bin(tag / 2)),
        _ => BinChoice::Int(int_bin(tag / 2)),
    }
}

fn leaf_ty(kind: u8, a_fp: bool, b_fp: bool) -> Type {
    match kind % 5 {
        0 => {
            if a_fp {
                Type::F64
            } else {
                Type::I64
            }
        }
        1 => {
            if b_fp {
                Type::F64
            } else {
                Type::I64
            }
        }
        2 | 3 => Type::I64,
        _ => Type::F64,
    }
}

fn un_ty(tag: u8, operand: Type) -> Type {
    if operand == Type::I64 {
        Type::F64 // Itof
    } else if tag % 4 == 3 {
        Type::I64 // Ftoi
    } else {
        Type::F64 // Fneg / Fabs / Fsqrt
    }
}

/// Static type of every DAG node, without building IR. [`build_case`]
/// emits exactly these types; the sabotage hook and the reduction
/// accumulator use them to reason about a recipe before lowering it.
#[must_use]
pub fn dag_types(nodes: &[Node], a_fp: bool, b_fp: bool) -> Vec<Type> {
    let mut tys = Vec::with_capacity(nodes.len());
    for node in nodes {
        let ty = match node {
            Node::Leaf(kind, _) => leaf_ty(*kind, a_fp, b_fp),
            Node::Bin(tag, x, y) => match bin_choice(*tag, tys[*x], tys[*y]) {
                BinChoice::Int(_) => Type::I64,
                BinChoice::Fp(_) => Type::F64,
            },
            Node::Sel(_, y, _) => tys[*y],
            Node::Un(tag, x) => un_ty(*tag, tys[*x]),
        };
        tys.push(ty);
    }
    tys
}

/// Loop-body values the DAG leaves refer to.
struct LeafCtx {
    va: Value,
    a_fp: bool,
    vb: Value,
    b_fp: bool,
    idx: Value,
}

fn to_int(b: &mut FunctionBuilder, v: Value, ty: Type) -> Value {
    if ty == Type::F64 {
        b.un(UnOp::Ftoi, v)
    } else {
        v
    }
}

fn to_fp(b: &mut FunctionBuilder, v: Value, ty: Type) -> Value {
    if ty == Type::I64 {
        b.un(UnOp::Itof, v)
    } else {
        v
    }
}

/// Emits the DAG into the current block; returns the root value and type.
fn emit_dag(b: &mut FunctionBuilder, nodes: &[Node], ctx: &LeafCtx) -> (Value, Type) {
    let tys = dag_types(nodes, ctx.a_fp, ctx.b_fp);
    let mut vals: Vec<Value> = Vec::with_capacity(nodes.len());
    for node in nodes {
        let v = match node {
            Node::Leaf(kind, bits) => match kind % 5 {
                0 => ctx.va,
                1 => ctx.vb,
                2 => ctx.idx,
                3 => b.const_i(*bits as i64),
                _ => b.const_f(f64::from_bits(*bits)),
            },
            Node::Bin(tag, x, y) => {
                let (vx, vy) = (vals[*x], vals[*y]);
                match bin_choice(*tag, tys[*x], tys[*y]) {
                    BinChoice::Int(op) => {
                        let vx = to_int(b, vx, tys[*x]);
                        let vy = to_int(b, vy, tys[*y]);
                        b.bin(op, vx, vy)
                    }
                    BinChoice::Fp(op) => {
                        let vx = to_fp(b, vx, tys[*x]);
                        let vy = to_fp(b, vy, tys[*y]);
                        b.bin(op, vx, vy)
                    }
                }
            }
            Node::Sel(x, y, z) => {
                // Compare in x's type, select in y's type.
                let (vx, vy, vz) = (vals[*x], vals[*y], vals[*z]);
                let cond = if tys[*x] == Type::F64 {
                    let cy = to_fp(b, vy, tys[*y]);
                    b.cmp(CmpOp::Flt, vx, cy)
                } else {
                    let cy = to_int(b, vy, tys[*y]);
                    b.cmp(CmpOp::Slt, vx, cy)
                };
                let sz = if tys[*y] == Type::F64 {
                    to_fp(b, vz, tys[*z])
                } else {
                    to_int(b, vz, tys[*z])
                };
                b.select(cond, vy, sz)
            }
            Node::Un(tag, x) => {
                if tys[*x] == Type::I64 {
                    b.un(UnOp::Itof, vals[*x])
                } else {
                    let op = match tag % 4 {
                        0 => UnOp::Fneg,
                        1 => UnOp::Fabs,
                        2 => UnOp::Fsqrt,
                        _ => UnOp::Ftoi,
                    };
                    b.un(op, vals[*x])
                }
            }
        };
        vals.push(v);
    }
    let root = *vals.last().expect("non-empty DAG");
    let root_ty = *tys.last().expect("non-empty DAG");
    (root, root_ty)
}

/// Combines the DAG root with the freshly loaded `va` so the stored value
/// is always a computed expression (a region always has work to offload),
/// mirroring the original differential test.
fn combine_with_a(
    b: &mut FunctionBuilder,
    root: Value,
    root_ty: Type,
    va: Value,
    a_fp: bool,
) -> (Value, Type) {
    let a_ty = if a_fp { Type::F64 } else { Type::I64 };
    if root_ty == Type::F64 {
        let va = to_fp(b, va, a_ty);
        (b.bin(BinOp::Fadd, root, va), Type::F64)
    } else {
        let va = to_int(b, va, a_ty);
        (b.bin(BinOp::Add, root, va), Type::I64)
    }
}

// ---------------------------------------------------------------------------
// Case construction
// ---------------------------------------------------------------------------

/// A lowered recipe, ready for the oracle: the IR function, its argument
/// registers, the initial memory image, and which ranges to compare.
#[derive(Debug, Clone)]
pub struct BuiltCase {
    /// The kernel.
    pub function: Function,
    /// `%o0..%o5`.
    pub args: Vec<u64>,
    /// `(address, words)` written before the run — identically into the
    /// interpreter's memory and both simulated systems.
    pub init: Vec<(u64, Vec<u64>)>,
    /// `(address, word count)` ranges the oracle compares.
    pub outputs: Vec<(u64, usize)>,
}

fn a_load_ty(r: &Recipe) -> Type {
    if r.a_fp {
        Type::F64
    } else {
        Type::I64
    }
}

fn b_load_ty(r: &Recipe) -> Type {
    if r.b_fp {
        Type::F64
    } else {
        Type::I64
    }
}

/// xorshift64 input stream — self-contained so saved recipes replay
/// without the generator.
fn xorshift_stream(seed: u64) -> impl FnMut() -> u64 {
    let mut state = seed | 1;
    move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    }
}

fn input_words(next: &mut impl FnMut() -> u64, fp: bool, len: usize) -> Vec<u64> {
    let mut v: Vec<u64> = (0..len)
        .map(|_| {
            if fp {
                (((next() % 4000) as f64) / 100.0 - 20.0).to_bits()
            } else {
                next()
            }
        })
        .collect();
    // Inject IEEE specials so NaN/∞/−0 propagation is compared bit-exact.
    if fp && len >= 4 {
        v[0] = f64::NAN.to_bits();
        v[1] = f64::INFINITY.to_bits();
        v[2] = (-0.0f64).to_bits();
    }
    v
}

/// Lowers a recipe to an IR function plus inputs. Deterministic; the only
/// failure is an internal grammar bug surfacing as a verifier error, which
/// the oracle reports as its own failure class.
///
/// # Errors
///
/// Returns the verifier's message if the generated function is malformed.
pub fn build_case(r: &Recipe) -> Result<BuiltCase, String> {
    let (a_len, b_len) = r.stream_lens();
    let mut next = xorshift_stream(r.input_seed);
    let a_words = input_words(&mut next, r.a_fp, a_len);
    let b_words = input_words(&mut next, r.b_fp, b_len);

    let function = match r.form {
        LoopForm::Canonical => build_canonical(r),
        LoopForm::Nested => build_nested(r),
        LoopForm::Sequential => build_sequential(r),
        LoopForm::Reduction => build_reduction(r),
        LoopForm::EarlyExit => build_early_exit(r),
        LoopForm::CondStore => build_cond_store(r),
    }
    .map_err(|e| format!("{e:?}"))?;

    let mut init = vec![(BUF_A, a_words)];
    let args;
    let mut outputs = Vec::new();
    match r.form {
        LoopForm::Canonical => {
            init.push((BUF_B, b_words));
            args = vec![BUF_A, BUF_B, BUF_C, r.n as u64];
            outputs.push((if r.alias_store { BUF_A } else { BUF_C }, r.n));
        }
        LoopForm::Nested => {
            init.push((BUF_B, b_words));
            args = vec![BUF_A, BUF_B, BUF_C, r.n as u64];
            outputs.push((BUF_C, r.n * r.inner));
        }
        LoopForm::Sequential => {
            init.push((BUF_B, b_words));
            args = vec![BUF_A, BUF_B, BUF_C, BUF_D, r.n as u64];
            outputs.push((BUF_C, r.n));
            outputs.push((BUF_D, r.n));
        }
        LoopForm::Reduction => {
            init.push((BUF_B, b_words));
            args = vec![BUF_A, BUF_B, BUF_D, r.n as u64];
            outputs.push((BUF_D, 1));
        }
        LoopForm::EarlyExit => {
            args = vec![BUF_A, BUF_D, r.n as u64];
            outputs.push((BUF_D, 1));
        }
        LoopForm::CondStore => {
            init.push((BUF_B, b_words));
            // Prefill C so skipped iterations are observable.
            init.push((BUF_C, (0..r.n as u64).map(|i| 1000 + i).collect()));
            args = vec![BUF_A, BUF_B, BUF_C, r.n as u64];
            outputs.push((BUF_C, r.n));
        }
    }
    Ok(BuiltCase { function, args, init, outputs })
}

type BuildResult = Result<Function, dyser_compiler::ir::verify::VerifyError>;

fn build_canonical(r: &Recipe) -> BuildResult {
    let mut b = FunctionBuilder::new(
        "fuzz_canonical",
        &[("a", Type::Ptr), ("b", Type::Ptr), ("c", Type::Ptr), ("n", Type::I64)],
    );
    let (a, bb, c, n) = (b.param(0), b.param(1), b.param(2), b.param(3));
    let zero = b.const_i(0);
    let one = b.const_i(1);
    let body = b.block("body");
    let exit = b.block("exit");
    let entry = b.current();
    b.br(body);
    b.switch_to(body);
    let i = b.phi(Type::I64);
    let pa = b.gep(a, i, 8);
    let va = b.load(pa, a_load_ty(r));
    let pb = b.gep(bb, i, 8);
    let vb = b.load(pb, b_load_ty(r));
    let (root, root_ty) =
        emit_dag(&mut b, &r.nodes, &LeafCtx { va, a_fp: r.a_fp, vb, b_fp: r.b_fp, idx: i });
    let (stored, stored_ty) = combine_with_a(&mut b, root, root_ty, va, r.a_fp);
    let dst = if r.alias_store { a } else { c };
    let p = b.gep(dst, i, 8);
    if r.double_store {
        let draft = if stored_ty == Type::F64 {
            b.un(UnOp::Fneg, stored)
        } else {
            b.bin(BinOp::Sub, zero, stored)
        };
        b.store(draft, p);
    }
    b.store(stored, p);
    let i2 = b.bin(BinOp::Add, i, one);
    b.add_incoming(i, entry, zero);
    b.add_incoming(i, body, i2);
    let cond = b.cmp(CmpOp::Slt, i2, n);
    b.cond_br(cond, body, exit);
    b.switch_to(exit);
    b.ret(None);
    b.build()
}

fn build_nested(r: &Recipe) -> BuildResult {
    let mut b = FunctionBuilder::new(
        "fuzz_nested",
        &[("a", Type::Ptr), ("b", Type::Ptr), ("c", Type::Ptr), ("n", Type::I64)],
    );
    let (a, bb, c, n) = (b.param(0), b.param(1), b.param(2), b.param(3));
    let zero = b.const_i(0);
    let one = b.const_i(1);
    let inner_c = b.const_i(r.inner as i64);
    let oloop = b.block("oloop");
    let jloop = b.block("jloop");
    let olatch = b.block("olatch");
    let exit = b.block("exit");
    let entry = b.current();
    b.br(oloop);
    b.switch_to(oloop);
    let i = b.phi(Type::I64);
    let ibase = b.bin(BinOp::Mul, i, inner_c);
    b.br(jloop);
    b.switch_to(jloop);
    let j = b.phi(Type::I64);
    let aidx = b.bin(BinOp::Add, ibase, j);
    let pa = b.gep(a, aidx, 8);
    let va = b.load(pa, a_load_ty(r));
    let pb = b.gep(bb, j, 8);
    let vb = b.load(pb, b_load_ty(r));
    let (root, root_ty) =
        emit_dag(&mut b, &r.nodes, &LeafCtx { va, a_fp: r.a_fp, vb, b_fp: r.b_fp, idx: j });
    let (stored, _) = combine_with_a(&mut b, root, root_ty, va, r.a_fp);
    let pc = b.gep(c, aidx, 8);
    b.store(stored, pc);
    let j2 = b.bin(BinOp::Add, j, one);
    b.add_incoming(j, oloop, zero);
    b.add_incoming(j, jloop, j2);
    let jc = b.cmp(CmpOp::Slt, j2, inner_c);
    b.cond_br(jc, jloop, olatch);
    b.switch_to(olatch);
    let i2 = b.bin(BinOp::Add, i, one);
    b.add_incoming(i, entry, zero);
    b.add_incoming(i, olatch, i2);
    let oc = b.cmp(CmpOp::Slt, i2, n);
    b.cond_br(oc, oloop, exit);
    b.switch_to(exit);
    b.ret(None);
    b.build()
}

fn build_sequential(r: &Recipe) -> BuildResult {
    let mut b = FunctionBuilder::new(
        "fuzz_sequential",
        &[
            ("a", Type::Ptr),
            ("b", Type::Ptr),
            ("c", Type::Ptr),
            ("d", Type::Ptr),
            ("n", Type::I64),
        ],
    );
    let (a, bb, c, d, n) = (b.param(0), b.param(1), b.param(2), b.param(3), b.param(4));
    let zero = b.const_i(0);
    let one = b.const_i(1);
    let body1 = b.block("body1");
    let body2 = b.block("body2");
    let exit = b.block("exit");
    let entry = b.current();
    b.br(body1);

    b.switch_to(body1);
    let i = b.phi(Type::I64);
    let pa = b.gep(a, i, 8);
    let va = b.load(pa, a_load_ty(r));
    let pb = b.gep(bb, i, 8);
    let vb = b.load(pb, b_load_ty(r));
    let (root, root_ty) =
        emit_dag(&mut b, &r.nodes, &LeafCtx { va, a_fp: r.a_fp, vb, b_fp: r.b_fp, idx: i });
    let (stored, stored_ty) = combine_with_a(&mut b, root, root_ty, va, r.a_fp);
    let pc = b.gep(c, i, 8);
    b.store(stored, pc);
    let i2 = b.bin(BinOp::Add, i, one);
    b.add_incoming(i, entry, zero);
    b.add_incoming(i, body1, i2);
    let c1 = b.cmp(CmpOp::Slt, i2, n);
    b.cond_br(c1, body1, body2);

    // Loop 2 consumes loop 1's output: d[j] = g(c[j], a[j], j).
    b.switch_to(body2);
    let j = b.phi(Type::I64);
    let pcv = b.gep(c, j, 8);
    let vc = b.load(pcv, stored_ty);
    let pa2 = b.gep(a, j, 8);
    let va2 = b.load(pa2, a_load_ty(r));
    let (root2, root2_ty) = emit_dag(
        &mut b,
        &r.second,
        &LeafCtx { va: vc, a_fp: stored_ty == Type::F64, vb: va2, b_fp: r.a_fp, idx: j },
    );
    let (stored2, _) = combine_with_a(&mut b, root2, root2_ty, vc, stored_ty == Type::F64);
    let pd = b.gep(d, j, 8);
    b.store(stored2, pd);
    let j2 = b.bin(BinOp::Add, j, one);
    b.add_incoming(j, body1, zero);
    b.add_incoming(j, body2, j2);
    let c2 = b.cmp(CmpOp::Slt, j2, n);
    b.cond_br(c2, body2, exit);

    b.switch_to(exit);
    b.ret(None);
    b.build()
}

fn build_reduction(r: &Recipe) -> BuildResult {
    let mut b = FunctionBuilder::new(
        "fuzz_reduction",
        &[("a", Type::Ptr), ("b", Type::Ptr), ("d", Type::Ptr), ("n", Type::I64)],
    );
    let (a, bb, d, n) = (b.param(0), b.param(1), b.param(2), b.param(3));
    let zero = b.const_i(0);
    let one = b.const_i(1);
    let acc_ty = *dag_types(&r.nodes, r.a_fp, r.b_fp).last().expect("non-empty DAG");
    let acc_init = if acc_ty == Type::F64 { b.const_f(0.0) } else { zero };
    let body = b.block("body");
    let exit = b.block("exit");
    let entry = b.current();
    b.br(body);
    b.switch_to(body);
    let i = b.phi(Type::I64);
    let acc = b.phi(acc_ty);
    let pa = b.gep(a, i, 8);
    let va = b.load(pa, a_load_ty(r));
    let pb = b.gep(bb, i, 8);
    let vb = b.load(pb, b_load_ty(r));
    let (root, _) =
        emit_dag(&mut b, &r.nodes, &LeafCtx { va, a_fp: r.a_fp, vb, b_fp: r.b_fp, idx: i });
    let acc2 = if acc_ty == Type::F64 {
        b.bin(BinOp::Fadd, acc, root)
    } else {
        b.bin(BinOp::Add, acc, root)
    };
    let i2 = b.bin(BinOp::Add, i, one);
    b.add_incoming(i, entry, zero);
    b.add_incoming(i, body, i2);
    b.add_incoming(acc, entry, acc_init);
    b.add_incoming(acc, body, acc2);
    let cond = b.cmp(CmpOp::Slt, i2, n);
    b.cond_br(cond, body, exit);
    b.switch_to(exit);
    let pd = b.gep(d, zero, 8);
    b.store(acc2, pd);
    b.ret(None);
    b.build()
}

fn build_early_exit(r: &Recipe) -> BuildResult {
    let mut b = FunctionBuilder::new(
        "fuzz_early_exit",
        &[("a", Type::Ptr), ("d", Type::Ptr), ("n", Type::I64)],
    );
    let (a, d, n) = (b.param(0), b.param(1), b.param(2));
    let zero = b.const_i(0);
    let one = b.const_i(1);
    let head = b.block("head");
    let latch = b.block("latch");
    let found = b.block("found");
    let notfound = b.block("notfound");
    let entry = b.current();
    b.br(head);
    b.switch_to(head);
    let i = b.phi(Type::I64);
    let pa = b.gep(a, i, 8);
    let va = b.load(pa, a_load_ty(r));
    let (root, root_ty) =
        emit_dag(&mut b, &r.nodes, &LeafCtx { va, a_fp: r.a_fp, vb: va, b_fp: r.a_fp, idx: i });
    let root_i = to_int(&mut b, root, root_ty);
    let hit = b.cmp(CmpOp::Slt, root_i, zero);
    b.cond_br(hit, found, latch);
    b.switch_to(latch);
    let i2 = b.bin(BinOp::Add, i, one);
    b.add_incoming(i, entry, zero);
    b.add_incoming(i, latch, i2);
    let more = b.cmp(CmpOp::Slt, i2, n);
    b.cond_br(more, head, notfound);
    b.switch_to(found);
    let pd = b.gep(d, zero, 8);
    b.store(i, pd);
    b.ret(None);
    b.switch_to(notfound);
    let pd2 = b.gep(d, zero, 8);
    b.store(n, pd2);
    b.ret(None);
    b.build()
}

fn build_cond_store(r: &Recipe) -> BuildResult {
    let mut b = FunctionBuilder::new(
        "fuzz_cond_store",
        &[("a", Type::Ptr), ("b", Type::Ptr), ("c", Type::Ptr), ("n", Type::I64)],
    );
    let (a, bb, c, n) = (b.param(0), b.param(1), b.param(2), b.param(3));
    let zero = b.const_i(0);
    let one = b.const_i(1);
    let head = b.block("head");
    let dostore = b.block("dostore");
    let latch = b.block("latch");
    let exit = b.block("exit");
    let entry = b.current();
    b.br(head);
    b.switch_to(head);
    let i = b.phi(Type::I64);
    let pa = b.gep(a, i, 8);
    let va = b.load(pa, a_load_ty(r));
    let pb = b.gep(bb, i, 8);
    let vb = b.load(pb, b_load_ty(r));
    let (root, root_ty) =
        emit_dag(&mut b, &r.nodes, &LeafCtx { va, a_fp: r.a_fp, vb, b_fp: r.b_fp, idx: i });
    let root_i = to_int(&mut b, root, root_ty);
    let pred = b.cmp(CmpOp::Slt, root_i, zero);
    b.cond_br(pred, dostore, latch);
    b.switch_to(dostore);
    let p = b.gep(c, i, 8);
    b.store(root, p);
    b.br(latch);
    b.switch_to(latch);
    let i2 = b.bin(BinOp::Add, i, one);
    b.add_incoming(i, entry, zero);
    b.add_incoming(i, latch, i2);
    let more = b.cmp(CmpOp::Slt, i2, n);
    b.cond_br(more, head, exit);
    b.switch_to(exit);
    b.ret(None);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_generated_recipe_lowers_and_verifies() {
        let mut rng = Rng64::seed_from_u64(0x000F_0220_0001);
        for _ in 0..300 {
            let r = generate(&mut rng);
            let built = build_case(&r).unwrap_or_else(|e| panic!("{e}\n{r:?}"));
            assert!(!built.args.is_empty());
            assert!(!built.outputs.is_empty());
        }
    }

    #[test]
    fn dag_types_match_emitted_types() {
        // The static type oracle must agree with what emit_dag produces;
        // build_case exercising the verifier transitively checks this, so
        // here we just pin the mixed-type promotion rule.
        assert_eq!(bin_choice(2, Type::I64, Type::F64), BinChoice::Fp(fp_bin(1)));
        assert_eq!(bin_choice(3, Type::F64, Type::I64), BinChoice::Int(int_bin(1)));
        assert_eq!(bin_choice(7, Type::I64, Type::I64), BinChoice::Int(int_bin(7)));
        assert_eq!(bin_choice(7, Type::F64, Type::F64), BinChoice::Fp(fp_bin(7)));
    }

    #[test]
    fn aliasing_recipes_never_lag_stores() {
        let mut rng = Rng64::seed_from_u64(0x000F_0220_0002);
        let mut saw_alias = false;
        for _ in 0..500 {
            let r = generate(&mut rng);
            if r.alias_store {
                saw_alias = true;
                assert!(!r.lag_stores, "aliasing case with store lag: {r:?}");
            }
        }
        assert!(saw_alias, "grammar never drew an aliasing case");
    }

    #[test]
    fn labels_round_trip() {
        for f in LoopForm::ALL {
            assert_eq!(LoopForm::from_label(f.label()), Some(f));
        }
        for m in RunMode::ALL {
            assert_eq!(RunMode::from_label(m.label()), Some(m));
        }
        for m in MemKind::ALL {
            assert_eq!(MemKind::from_label(m.label()), Some(m));
        }
    }
}
