//! Automatic test-case minimization.
//!
//! Given a failing [`Recipe`] and a predicate that replays a candidate and
//! answers "does it still fail the same way?", the shrinker runs deletion
//! and simplification passes to a local fixpoint:
//!
//! * **form pass** — collapse exotic loop forms to a canonical loop;
//! * **node pass** — delete DAG nodes one at a time, remapping references
//!   into the deleted node onto its first operand;
//! * **trip pass** — halve the trip counts;
//! * **option pass** — neutralize compiler/system/run knobs one by one
//!   (unroll 1, lag off, default geometry, default memory, …).
//!
//! Every accepted candidate fails with the *same* [`FuzzFailure::kind`]
//! (the predicate's contract), so minimization never slides onto a
//! different bug. The total number of predicate evaluations is bounded;
//! each evaluation re-runs the whole oracle, so the bound also bounds
//! shrink time.
//!
//! [`FuzzFailure::kind`]: crate::oracle::FuzzFailure::kind

use crate::gen::{LoopForm, MemKind, Node, Recipe, RunMode};

/// Maximum predicate evaluations per shrink.
const MAX_EVALS: usize = 500;

/// Minimizes `recipe` under `fails`. `fails(candidate)` must return
/// `true` exactly when the candidate reproduces the original failure
/// class. Returns the smallest accepted recipe (the input itself if
/// nothing smaller reproduces).
pub fn shrink(recipe: &Recipe, fails: impl Fn(&Recipe) -> bool) -> Recipe {
    let mut cur = recipe.clone();
    let evals = std::cell::Cell::new(0usize);
    let accept = |cur: &mut Recipe, cand: Recipe| -> bool {
        if evals.get() >= MAX_EVALS || cand == *cur {
            return false;
        }
        evals.set(evals.get() + 1);
        if fails(&cand) {
            *cur = cand;
            true
        } else {
            false
        }
    };

    loop {
        let mut progressed = false;

        // Form pass: everything wants to be a canonical loop.
        if cur.form != LoopForm::Canonical {
            let mut cand = cur.clone();
            cand.form = LoopForm::Canonical;
            cand.second = Vec::new();
            cand.inner = 0;
            cand.n = cand.n.max(2);
            progressed |= accept(&mut cur, cand);
        }

        // Node pass: delete one DAG node at a time, root first.
        loop {
            let mut deleted = false;
            for list in [false, true] {
                let len = if list { cur.second.len() } else { cur.nodes.len() };
                for i in (0..len).rev() {
                    let nodes = if list { &cur.second } else { &cur.nodes };
                    let Some(smaller) = delete_node(nodes, i) else { continue };
                    let mut cand = cur.clone();
                    if list {
                        cand.second = smaller;
                    } else {
                        cand.nodes = smaller;
                    }
                    if accept(&mut cur, cand) {
                        deleted = true;
                        break;
                    }
                }
            }
            if !deleted {
                break;
            }
            progressed = true;
        }

        // Trip pass: halve n (and the inner trip count) toward 2.
        while cur.n > 2 {
            let mut cand = cur.clone();
            cand.n = (cand.n / 2).max(2);
            if !accept(&mut cur, cand) {
                break;
            }
            progressed = true;
        }
        while cur.form == LoopForm::Nested && cur.inner > 1 {
            let mut cand = cur.clone();
            cand.inner = (cand.inner / 2).max(1);
            if !accept(&mut cur, cand) {
                break;
            }
            progressed = true;
        }

        // Option pass: neutralize one knob at a time.
        let knobs: Vec<fn(&mut Recipe)> = vec![
            |r| r.unroll = 1,
            |r| r.lag_depth = 1,
            |r| r.lag_stores = false,
            |r| r.if_convert = false,
            |r| r.refinement_rounds = 0,
            |r| r.offload_exit = false,
            |r| {
                r.rows = 8;
                r.cols = 8;
            },
            |r| r.universal_fus = false,
            |r| {
                // Never touch a zero depth: that *is* the trigger for
                // invalid-config findings.
                if r.fifo_depth != 0 {
                    r.fifo_depth = 4;
                }
            },
            |r| r.mem = MemKind::Default,
            |r| r.mode = RunMode::FastForward,
            |r| r.timeout_check = false,
            |r| r.alias_store = false,
            |r| r.double_store = false,
            |r| r.a_fp = false,
            |r| r.b_fp = false,
        ];
        for knob in knobs {
            let mut cand = cur.clone();
            knob(&mut cand);
            progressed |= accept(&mut cur, cand);
        }

        if !progressed || evals.get() >= MAX_EVALS {
            break;
        }
    }
    cur
}

fn node_refs(n: &Node) -> Vec<usize> {
    match n {
        Node::Leaf(..) => Vec::new(),
        Node::Bin(_, x, y) => vec![*x, *y],
        Node::Sel(x, y, z) => vec![*x, *y, *z],
        Node::Un(_, x) => vec![*x],
    }
}

/// Deletes node `i`, remapping references to it onto its first operand
/// (or node 0 for leaves). Returns `None` when the deletion is not
/// expressible — the DAG would become empty, or a leaf at index 0 is
/// still referenced.
fn delete_node(nodes: &[Node], i: usize) -> Option<Vec<Node>> {
    if nodes.len() <= 1 {
        return None;
    }
    let target = match &nodes[i] {
        Node::Bin(_, x, _) | Node::Un(_, x) | Node::Sel(x, _, _) => *x,
        Node::Leaf(..) => {
            if i == 0 && nodes.iter().any(|n| node_refs(n).contains(&0)) {
                return None;
            }
            0
        }
    };
    let remap = |r: usize| if r == i { target } else if r > i { r - 1 } else { r };
    Some(
        nodes
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, n)| match n {
                Node::Leaf(k, c) => Node::Leaf(*k, *c),
                Node::Bin(t, x, y) => Node::Bin(*t, remap(*x), remap(*y)),
                Node::Sel(x, y, z) => Node::Sel(remap(*x), remap(*y), remap(*z)),
                Node::Un(t, x) => Node::Un(*t, remap(*x)),
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;
    use dyser_rng::Rng64;

    #[test]
    fn delete_node_keeps_prefix_validity() {
        // After any deletion, every reference must still point strictly
        // backwards — the invariant build_case relies on.
        let mut rng = Rng64::seed_from_u64(0x5412_0001);
        for _ in 0..200 {
            let r = generate(&mut rng);
            for i in 0..r.nodes.len() {
                if let Some(smaller) = delete_node(&r.nodes, i) {
                    assert_eq!(smaller.len(), r.nodes.len() - 1);
                    for (j, n) in smaller.iter().enumerate() {
                        for refi in node_refs(n) {
                            assert!(refi < j, "forward reference after deleting {i}: {smaller:?}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn shrink_reaches_a_small_recipe_under_a_permissive_predicate() {
        // With a predicate that accepts anything that still contains an
        // integer multiply, shrinking must fall well under the 8-node
        // acceptance bound.
        use crate::oracle::Sabotage;
        let mut rng = Rng64::seed_from_u64(0x5412_0002);
        let sab = Sabotage;
        let r = loop {
            let r = generate(&mut rng);
            if sab.trips(&r) && r.fifo_depth != 0 {
                break r;
            }
        };
        let small = shrink(&r, |cand| sab.trips(cand) && cand.fifo_depth != 0);
        assert!(sab.trips(&small));
        assert!(
            small.ir_nodes() <= 8,
            "shrunk to {} nodes: {small:?}",
            small.ir_nodes()
        );
    }
}
