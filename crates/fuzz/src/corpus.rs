//! The regression corpus: failing recipes, shrunk and saved as JSON.
//!
//! Every entry under `crates/fuzz/corpus/` is one [`Recipe`], serialized
//! with the hand-rolled encoder below (the workspace is dependency-free —
//! no serde). Entries are *seed-free*: the recipe embeds its own input
//! seed, so a saved case replays bit-for-bit with no generator state.
//! `cargo test` replays the whole corpus through the full oracle, and
//! [`rust_repro`] renders any recipe as a ready-to-paste `#[test]`.

use std::path::{Path, PathBuf};

use crate::gen::{LoopForm, MemKind, Node, Recipe, RunMode};

/// Corpus format version.
pub const CORPUS_VERSION: u64 = 1;

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn node_json(n: &Node) -> String {
    match n {
        Node::Leaf(k, c) => format!("[\"leaf\", {k}, {c}]"),
        Node::Bin(t, x, y) => format!("[\"bin\", {t}, {x}, {y}]"),
        Node::Sel(x, y, z) => format!("[\"sel\", {x}, {y}, {z}]"),
        Node::Un(t, x) => format!("[\"un\", {t}, {x}]"),
    }
}

fn nodes_json(nodes: &[Node]) -> String {
    let inner: Vec<String> = nodes.iter().map(node_json).collect();
    format!("[{}]", inner.join(", "))
}

/// Serializes a recipe (plus an optional failure-class annotation) as a
/// corpus entry.
#[must_use]
pub fn recipe_json(r: &Recipe, failure: Option<&str>) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"version\": {CORPUS_VERSION},\n"));
    if let Some(kind) = failure {
        s.push_str(&format!("  \"failure\": \"{kind}\",\n"));
    }
    s.push_str(&format!("  \"form\": \"{}\",\n", r.form.label()));
    s.push_str(&format!("  \"a_fp\": {},\n", r.a_fp));
    s.push_str(&format!("  \"b_fp\": {},\n", r.b_fp));
    s.push_str(&format!("  \"nodes\": {},\n", nodes_json(&r.nodes)));
    s.push_str(&format!("  \"second\": {},\n", nodes_json(&r.second)));
    s.push_str(&format!("  \"n\": {},\n", r.n));
    s.push_str(&format!("  \"inner\": {},\n", r.inner));
    s.push_str(&format!("  \"alias_store\": {},\n", r.alias_store));
    s.push_str(&format!("  \"double_store\": {},\n", r.double_store));
    s.push_str(&format!("  \"input_seed\": {},\n", r.input_seed));
    s.push_str(&format!("  \"unroll\": {},\n", r.unroll));
    s.push_str(&format!("  \"lag_depth\": {},\n", r.lag_depth));
    s.push_str(&format!("  \"lag_stores\": {},\n", r.lag_stores));
    s.push_str(&format!("  \"if_convert\": {},\n", r.if_convert));
    s.push_str(&format!("  \"refinement_rounds\": {},\n", r.refinement_rounds));
    s.push_str(&format!("  \"offload_exit\": {},\n", r.offload_exit));
    s.push_str(&format!("  \"rows\": {},\n", r.rows));
    s.push_str(&format!("  \"cols\": {},\n", r.cols));
    s.push_str(&format!("  \"universal_fus\": {},\n", r.universal_fus));
    s.push_str(&format!("  \"fifo_depth\": {},\n", r.fifo_depth));
    s.push_str(&format!("  \"mem\": \"{}\",\n", r.mem.label()));
    s.push_str(&format!("  \"mode\": \"{}\",\n", r.mode.label()));
    s.push_str(&format!("  \"timeout_check\": {}\n", r.timeout_check));
    s.push_str("}\n");
    s
}

// ---------------------------------------------------------------------------
// Minimal JSON parser (integers, booleans, strings, arrays, objects)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Jv {
    Bool(bool),
    Int(i128),
    Str(String),
    Arr(Vec<Jv>),
    Obj(Vec<(String, Jv)>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser { bytes: s.as_bytes(), pos: 0 }
    }

    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    fn value(&mut self) -> Result<Jv, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Jv::Str(self.string()?)),
            Some(b't') => self.literal("true", Jv::Bool(true)),
            Some(b'f') => self.literal("false", Jv::Bool(false)),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, lit: &str, v: Jv) -> Result<Jv, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn number(&mut self) -> Result<Jv, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        if matches!(self.bytes.get(self.pos), Some(b'.' | b'e' | b'E')) {
            return Err(self.err("corpus entries use integers only"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are utf8");
        text.parse::<i128>().map(Jv::Int).map_err(|e| self.err(&format!("bad number: {e}")))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        _ => return Err(self.err("unsupported escape")),
                    }
                    self.pos += 1;
                }
                Some(&c) => {
                    out.push(c as char);
                    self.pos += 1;
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn array(&mut self) -> Result<Jv, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Jv::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Jv::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Jv, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Jv::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Jv::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

fn get<'j>(obj: &'j [(String, Jv)], key: &str) -> Result<&'j Jv, String> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v).ok_or_else(|| format!("missing `{key}`"))
}

fn as_u64(v: &Jv, key: &str) -> Result<u64, String> {
    match v {
        Jv::Int(i) => u64::try_from(*i).map_err(|_| format!("`{key}` out of range")),
        _ => Err(format!("`{key}` is not an integer")),
    }
}

fn as_usize(v: &Jv, key: &str) -> Result<usize, String> {
    as_u64(v, key).map(|u| u as usize)
}

fn as_bool(v: &Jv, key: &str) -> Result<bool, String> {
    match v {
        Jv::Bool(b) => Ok(*b),
        _ => Err(format!("`{key}` is not a boolean")),
    }
}

fn as_str<'j>(v: &'j Jv, key: &str) -> Result<&'j str, String> {
    match v {
        Jv::Str(s) => Ok(s),
        _ => Err(format!("`{key}` is not a string")),
    }
}

fn parse_node(v: &Jv) -> Result<Node, String> {
    let Jv::Arr(items) = v else { return Err("node is not an array".into()) };
    let tag = items.first().and_then(|t| match t {
        Jv::Str(s) => Some(s.as_str()),
        _ => None,
    });
    let num = |i: usize| -> Result<u64, String> {
        items.get(i).ok_or_else(|| "node too short".to_string()).and_then(|v| as_u64(v, "node"))
    };
    match tag {
        Some("leaf") => Ok(Node::Leaf(num(1)? as u8, num(2)?)),
        Some("bin") => Ok(Node::Bin(num(1)? as u8, num(2)? as usize, num(3)? as usize)),
        Some("sel") => Ok(Node::Sel(num(1)? as usize, num(2)? as usize, num(3)? as usize)),
        Some("un") => Ok(Node::Un(num(1)? as u8, num(2)? as usize)),
        _ => Err("unknown node tag".into()),
    }
}

fn parse_nodes(v: &Jv, key: &str) -> Result<Vec<Node>, String> {
    let Jv::Arr(items) = v else { return Err(format!("`{key}` is not an array")) };
    items.iter().map(parse_node).collect()
}

/// Validates DAG reference order: every operand points strictly backwards.
fn check_dag(nodes: &[Node], key: &str) -> Result<(), String> {
    for (i, n) in nodes.iter().enumerate() {
        let refs = match n {
            Node::Leaf(..) => vec![],
            Node::Bin(_, x, y) => vec![*x, *y],
            Node::Sel(x, y, z) => vec![*x, *y, *z],
            Node::Un(_, x) => vec![*x],
        };
        if refs.iter().any(|&r| r >= i) {
            return Err(format!("`{key}` node {i} has a forward reference"));
        }
    }
    Ok(())
}

/// Parses one corpus entry back into a recipe.
///
/// # Errors
///
/// Malformed JSON, missing fields, unknown labels, or invalid DAGs.
pub fn recipe_from_json(text: &str) -> Result<Recipe, String> {
    let mut p = Parser::new(text);
    let v = p.value()?;
    let Jv::Obj(obj) = v else { return Err("corpus entry is not an object".into()) };
    let version = as_u64(get(&obj, "version")?, "version")?;
    if version != CORPUS_VERSION {
        return Err(format!("unsupported corpus version {version}"));
    }
    let form = LoopForm::from_label(as_str(get(&obj, "form")?, "form")?)
        .ok_or_else(|| "unknown form label".to_string())?;
    let nodes = parse_nodes(get(&obj, "nodes")?, "nodes")?;
    let second = parse_nodes(get(&obj, "second")?, "second")?;
    if nodes.is_empty() {
        return Err("`nodes` must be non-empty".into());
    }
    if (form == LoopForm::Sequential) == second.is_empty() {
        return Err("`second` must be non-empty exactly for sequential recipes".into());
    }
    check_dag(&nodes, "nodes")?;
    check_dag(&second, "second")?;
    Ok(Recipe {
        form,
        a_fp: as_bool(get(&obj, "a_fp")?, "a_fp")?,
        b_fp: as_bool(get(&obj, "b_fp")?, "b_fp")?,
        nodes,
        second,
        n: as_usize(get(&obj, "n")?, "n")?,
        inner: as_usize(get(&obj, "inner")?, "inner")?,
        alias_store: as_bool(get(&obj, "alias_store")?, "alias_store")?,
        double_store: as_bool(get(&obj, "double_store")?, "double_store")?,
        input_seed: as_u64(get(&obj, "input_seed")?, "input_seed")?,
        unroll: as_usize(get(&obj, "unroll")?, "unroll")?,
        lag_depth: as_usize(get(&obj, "lag_depth")?, "lag_depth")?,
        lag_stores: as_bool(get(&obj, "lag_stores")?, "lag_stores")?,
        if_convert: as_bool(get(&obj, "if_convert")?, "if_convert")?,
        refinement_rounds: as_usize(get(&obj, "refinement_rounds")?, "refinement_rounds")?,
        offload_exit: as_bool(get(&obj, "offload_exit")?, "offload_exit")?,
        rows: as_usize(get(&obj, "rows")?, "rows")?,
        cols: as_usize(get(&obj, "cols")?, "cols")?,
        universal_fus: as_bool(get(&obj, "universal_fus")?, "universal_fus")?,
        fifo_depth: as_usize(get(&obj, "fifo_depth")?, "fifo_depth")?,
        mem: MemKind::from_label(as_str(get(&obj, "mem")?, "mem")?)
            .ok_or_else(|| "unknown mem label".to_string())?,
        mode: RunMode::from_label(as_str(get(&obj, "mode")?, "mode")?)
            .ok_or_else(|| "unknown mode label".to_string())?,
        timeout_check: as_bool(get(&obj, "timeout_check")?, "timeout_check")?,
    })
}

// ---------------------------------------------------------------------------
// Rust repro rendering
// ---------------------------------------------------------------------------

fn nodes_rust(nodes: &[Node]) -> String {
    let items: Vec<String> = nodes
        .iter()
        .map(|n| match n {
            Node::Leaf(k, c) => format!("Node::Leaf({k}, {c:#x})"),
            Node::Bin(t, x, y) => format!("Node::Bin({t}, {x}, {y})"),
            Node::Sel(x, y, z) => format!("Node::Sel({x}, {y}, {z})"),
            Node::Un(t, x) => format!("Node::Un({t}, {x})"),
        })
        .collect();
    format!("vec![{}]", items.join(", "))
}

/// Renders a recipe as a standalone, ready-to-paste `#[test]` that
/// replays it through the full oracle. Seed-free: everything the case
/// needs is in the literal.
#[must_use]
pub fn rust_repro(r: &Recipe, label: &str) -> String {
    format!(
        r#"#[test]
fn fuzz_repro_{label}() {{
    use dyser_fuzz::gen::{{LoopForm, MemKind, Node, Recipe, RunMode}};
    let recipe = Recipe {{
        form: LoopForm::{form:?},
        a_fp: {a_fp},
        b_fp: {b_fp},
        nodes: {nodes},
        second: {second},
        n: {n},
        inner: {inner},
        alias_store: {alias_store},
        double_store: {double_store},
        input_seed: {input_seed:#x},
        unroll: {unroll},
        lag_depth: {lag_depth},
        lag_stores: {lag_stores},
        if_convert: {if_convert},
        refinement_rounds: {refinement_rounds},
        offload_exit: {offload_exit},
        rows: {rows},
        cols: {cols},
        universal_fus: {universal_fus},
        fifo_depth: {fifo_depth},
        mem: MemKind::{mem:?},
        mode: RunMode::{mode:?},
        timeout_check: {timeout_check},
    }};
    dyser_fuzz::oracle::check_case(&recipe).expect("oracle agrees");
}}
"#,
        form = r.form,
        a_fp = r.a_fp,
        b_fp = r.b_fp,
        nodes = nodes_rust(&r.nodes),
        second = nodes_rust(&r.second),
        n = r.n,
        inner = r.inner,
        alias_store = r.alias_store,
        double_store = r.double_store,
        input_seed = r.input_seed,
        unroll = r.unroll,
        lag_depth = r.lag_depth,
        lag_stores = r.lag_stores,
        if_convert = r.if_convert,
        refinement_rounds = r.refinement_rounds,
        offload_exit = r.offload_exit,
        rows = r.rows,
        cols = r.cols,
        universal_fus = r.universal_fus,
        fifo_depth = r.fifo_depth,
        mem = r.mem,
        mode = r.mode,
        timeout_check = r.timeout_check,
    )
}

// ---------------------------------------------------------------------------
// Corpus directory
// ---------------------------------------------------------------------------

/// The checked-in corpus directory (`crates/fuzz/corpus/`).
#[must_use]
pub fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

/// Loads every `*.json` entry under `dir`, sorted by filename.
///
/// # Errors
///
/// I/O failures or malformed entries (with the offending filename).
pub fn load_corpus(dir: &Path) -> Result<Vec<(String, Recipe)>, String> {
    let mut names: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("read {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    names.sort();
    names
        .into_iter()
        .map(|path| {
            let name =
                path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
            let text =
                std::fs::read_to_string(&path).map_err(|e| format!("read {name}: {e}"))?;
            let recipe = recipe_from_json(&text).map_err(|e| format!("{name}: {e}"))?;
            Ok((name, recipe))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;
    use dyser_rng::Rng64;

    #[test]
    fn json_round_trips_random_recipes() {
        let mut rng = Rng64::seed_from_u64(0xC0DE_0001);
        for _ in 0..80 {
            let r = generate(&mut rng);
            let text = recipe_json(&r, Some("output-mismatch"));
            let back = recipe_from_json(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
            assert_eq!(r, back);
        }
    }

    #[test]
    fn parser_rejects_malformed_entries() {
        assert!(recipe_from_json("").is_err());
        assert!(recipe_from_json("{}").is_err());
        assert!(recipe_from_json("{\"version\": 99}").is_err());
        assert!(recipe_from_json("[1, 2]").is_err());
        // Forward references must be rejected.
        let mut rng = Rng64::seed_from_u64(0xC0DE_0002);
        let r = generate(&mut rng);
        let bad = recipe_json(&r, None).replace(
            &format!("\"nodes\": {}", super::nodes_json(&r.nodes)),
            "\"nodes\": [[\"bin\", 0, 5, 5]]",
        );
        assert!(recipe_from_json(&bad).is_err(), "{bad}");
    }

    #[test]
    fn rust_repro_is_selfcontained() {
        let mut rng = Rng64::seed_from_u64(0xC0DE_0003);
        let r = generate(&mut rng);
        let code = rust_repro(&r, "example");
        assert!(code.contains("fn fuzz_repro_example()"));
        assert!(code.contains("Recipe {"));
        assert!(code.contains("check_case(&recipe)"));
        assert!(!code.contains("seed_from_u64"), "repros must not depend on the generator");
    }
}
