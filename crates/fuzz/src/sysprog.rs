//! The syscall leg of the fuzzer: whole-program trap sequences.
//!
//! The kernel-grammar fuzzer ([`crate::gen`]) covers computation; this
//! module covers the *proxy-kernel ABI*. A [`SysRecipe`] is a random
//! sequence of syscall operations — `write`s to every fd (valid and
//! bad), `brk` grows and refused shrinks, chunked `read`s, virtual-clock
//! reads, and compute spacers that shift where traps land relative to
//! slice boundaries — assembled into a real trap-issuing program. The
//! oracle runs it on every engine (`run`, `run_stepped`, `run_compiled`,
//! and all three lockstep batch engines) and demands:
//!
//! * captured **stdout and stderr bytes** equal the host-side model's
//!   prediction, on every engine;
//! * the **exit code** propagates identically everywhere;
//! * **`RunStats` are bit-identical** across engines — including the
//!   `Syscall` cycle bucket, so trap service costs settle the same way
//!   in serial and batched execution;
//! * every run's **cycle account balances**.
//!
//! Failures shrink by op deletion ([`shrink_sys`]) and serialize to the
//! JSON corpus under `crates/fuzz/corpus/syscall/`, which replays on
//! every `cargo test`.

use std::fmt;
use std::path::{Path, PathBuf};

use dyser_core::{run_batch, BatchEngine, BatchItem, RunStats, SysError, System, SystemConfig};
use dyser_isa::{regs, AluOp, Assembler, Instr, Op2, RCond, StoreKind};
use dyser_rng::Rng64;
use dyser_sparc::syscall::{SYS_BRK, SYS_EXIT, SYS_GETTIME, SYS_READ, SYS_WRITE};
use dyser_sparc::CycleBucket;

/// Base of the 256-byte data window `write` ops source from. Low enough
/// that every address fits a 13-bit immediate.
pub const DATA_BASE: u64 = 0xC00;
/// Size of the data window.
pub const DATA_LEN: usize = 256;
/// Where `read` ops deposit stdin bytes.
pub const READ_BASE: u64 = 0xD00;

/// Cycle budget per engine run; generous for programs this small.
const MAX_CYCLES: u64 = 500_000;

/// Syscall corpus format version.
pub const SYS_CORPUS_VERSION: u64 = 1;

/// One operation in a syscall program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SysOp {
    /// `write(fd, DATA_BASE + off, len)`. `fd` may be invalid on
    /// purpose; `off + len` is clamped to the data window by
    /// construction.
    Write {
        /// Target fd: 1, 2, or a deliberately bad one.
        fd: u8,
        /// Offset into the data window.
        off: u8,
        /// Byte count.
        len: u8,
    },
    /// `brk(0)` then `brk(current + delta)` — a query and a grow.
    BrkGrow {
        /// Bytes to grow by (13-bit-immediate sized).
        delta: u16,
    },
    /// `brk(0)` then `brk(current - 0x40)` — a shrink attempt the kernel
    /// must refuse.
    BrkShrink,
    /// `read(0, READ_BASE, len)` — drains stdin, eventually hitting EOF.
    Read {
        /// Byte count requested.
        len: u8,
    },
    /// `gettime()` — the cycle-derived virtual clock; the result is
    /// discarded (it differs run to run but never engine to engine).
    Gettime,
    /// A compute spacer: `iters + 1` loop iterations that shift where
    /// the next trap lands relative to slice and quantum boundaries.
    Compute {
        /// Extra iterations.
        iters: u8,
    },
}

impl SysOp {
    /// Stable tag used by the JSON corpus.
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            SysOp::Write { .. } => "write",
            SysOp::BrkGrow { .. } => "brk-grow",
            SysOp::BrkShrink => "brk-shrink",
            SysOp::Read { .. } => "read",
            SysOp::Gettime => "gettime",
            SysOp::Compute { .. } => "compute",
        }
    }
}

/// One syscall fuzz case. Self-contained: the data window and stdin both
/// derive from `data_seed`, so a saved recipe replays without generator
/// state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SysRecipe {
    /// The trap sequence.
    pub ops: Vec<SysOp>,
    /// Code passed to the final `exit` trap.
    pub exit_code: u8,
    /// Seed of the xorshift stream filling the data window and stdin.
    pub data_seed: u64,
    /// Bytes of stdin made available to `read` ops.
    pub stdin_len: u8,
}

/// Draws one syscall recipe.
pub fn generate_sys(rng: &mut Rng64) -> SysRecipe {
    let n_ops = rng.gen_range(2usize..10);
    let ops = (0..n_ops)
        .map(|_| match rng.gen_range(0u64..100) {
            0..=39 => {
                let fd = match rng.gen_range(0u64..10) {
                    0..=5 => 1,
                    6..=7 => 2,
                    _ => 7, // deliberately bad
                };
                let off = rng.gen_range(0u64..(DATA_LEN as u64 - 64)) as u8;
                SysOp::Write { fd, off, len: rng.gen_range(0u64..64) as u8 }
            }
            40..=54 => SysOp::BrkGrow { delta: rng.gen_range(8u64..0x800) as u16 },
            55..=64 => SysOp::BrkShrink,
            65..=79 => SysOp::Read { len: rng.gen_range(1u64..48) as u8 },
            80..=87 => SysOp::Gettime,
            _ => SysOp::Compute { iters: rng.gen_range(0u64..24) as u8 },
        })
        .collect();
    SysRecipe {
        ops,
        exit_code: rng.gen_range(0u64..64) as u8,
        data_seed: rng.next_u64(),
        stdin_len: rng.gen_range(0u64..64) as u8,
    }
}

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// The data window a recipe's `write` ops source from.
#[must_use]
pub fn data_bytes(r: &SysRecipe) -> Vec<u8> {
    let mut s = r.data_seed | 1;
    (0..DATA_LEN).map(|_| (xorshift(&mut s) & 0xFF) as u8).collect()
}

/// The stdin bytes available to the recipe's `read` ops.
#[must_use]
pub fn stdin_bytes(r: &SysRecipe) -> Vec<u8> {
    let mut s = (r.data_seed ^ 0x5717_D10) | 1;
    (0..r.stdin_len).map(|_| (xorshift(&mut s) & 0xFF) as u8).collect()
}

/// Assembles the recipe into program words (entry at `0x10000`).
#[must_use]
pub fn sys_program(r: &SysRecipe) -> Vec<u32> {
    let mut asm = Assembler::new();
    for (i, op) in r.ops.iter().enumerate() {
        match *op {
            SysOp::Write { fd, off, len } => {
                asm.push(Instr::mov_imm(regs::O0, i16::from(fd)));
                asm.push(Instr::mov_imm(regs::O1, DATA_BASE as i16 + i16::from(off)));
                asm.push(Instr::mov_imm(regs::O2, i16::from(len)));
                asm.push(Instr::Trap { code: SYS_WRITE });
            }
            SysOp::BrkGrow { delta } => {
                asm.push(Instr::mov_imm(regs::O0, 0));
                asm.push(Instr::Trap { code: SYS_BRK });
                asm.push(Instr::alu(AluOp::Add, regs::O0, regs::O0, Op2::Imm(delta as i16)));
                asm.push(Instr::Trap { code: SYS_BRK });
            }
            SysOp::BrkShrink => {
                asm.push(Instr::mov_imm(regs::O0, 0));
                asm.push(Instr::Trap { code: SYS_BRK });
                asm.push(Instr::alu(AluOp::Sub, regs::O0, regs::O0, Op2::Imm(0x40)));
                asm.push(Instr::Trap { code: SYS_BRK });
            }
            SysOp::Read { len } => {
                asm.push(Instr::mov_imm(regs::O0, 0));
                asm.push(Instr::mov_imm(regs::O1, READ_BASE as i16));
                asm.push(Instr::mov_imm(regs::O2, i16::from(len)));
                asm.push(Instr::Trap { code: SYS_READ });
            }
            SysOp::Gettime => {
                asm.push(Instr::Trap { code: SYS_GETTIME });
            }
            SysOp::Compute { iters } => {
                let label = format!("spin{i}");
                asm.push(Instr::mov_imm(regs::L0, i16::from(iters) + 1));
                asm.label(&label);
                asm.push(Instr::alu(AluOp::Sub, regs::L0, regs::L0, Op2::Imm(1)));
                asm.branch_reg(RCond::NonZero, regs::L0, &label);
                asm.push(Instr::Nop);
                // Keep one observable side effect per spacer so the
                // compiled backend cannot elide it structurally.
                asm.push(Instr::mov_imm(regs::L1, DATA_BASE as i16 - 8));
                asm.push(Instr::Store {
                    kind: StoreKind::Stx,
                    rs: regs::L0,
                    rs1: regs::L1,
                    op2: Op2::Imm(0),
                });
            }
        }
    }
    asm.push(Instr::mov_imm(regs::O0, i16::from(r.exit_code)));
    asm.push(Instr::Trap { code: SYS_EXIT });
    asm.push(Instr::Halt);
    asm.assemble().expect("syscall program assembles")
}

/// Host-side model of the recipe's observable behaviour: the exact
/// stdout and stderr byte streams and the exit code.
#[must_use]
pub fn expected_streams(r: &SysRecipe) -> (Vec<u8>, Vec<u8>, u64) {
    let data = data_bytes(r);
    let mut stdout = Vec::new();
    let mut stderr = Vec::new();
    for op in &r.ops {
        if let SysOp::Write { fd, off, len } = *op {
            let slice = &data[usize::from(off)..usize::from(off) + usize::from(len)];
            match fd {
                1 => stdout.extend_from_slice(slice),
                2 => stderr.extend_from_slice(slice),
                _ => {} // bad fd: no bytes move
            }
        }
    }
    (stdout, stderr, u64::from(r.exit_code))
}

/// One syscall-oracle violation.
#[derive(Debug, Clone)]
pub struct SysFailure {
    /// Stable failure class (shrinking preserves it).
    pub kind: &'static str,
    /// Human-readable detail.
    pub detail: String,
}

impl fmt::Display for SysFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind, self.detail)
    }
}

fn fail(kind: &'static str, detail: String) -> SysFailure {
    SysFailure { kind, detail }
}

fn fresh_sys(words: &[u32], stdin: &[u8], data: &[u8]) -> System {
    let mut sys = System::new(SystemConfig::default());
    sys.load_raw(0x10000, words);
    sys.setup_process(&["fuzz"], &[], stdin);
    sys.memory_mut().write_bytes(DATA_BASE, data);
    sys
}

/// Checks one syscall recipe against every engine. Returns the total
/// simulated cycles of all runs.
///
/// # Errors
///
/// Returns the first [`SysFailure`] encountered.
pub fn check_sys_case(r: &SysRecipe) -> Result<u64, SysFailure> {
    check_sys_case_with(r, false)
}

/// [`check_sys_case`] with an optional synthetic lost-write hook: when
/// `sabotage` is set the model's expected stdout gains a byte no engine
/// will produce, proving the oracle detects dropped syscall output.
///
/// # Errors
///
/// Returns the first [`SysFailure`] encountered.
pub fn check_sys_case_with(r: &SysRecipe, sabotage: bool) -> Result<u64, SysFailure> {
    let words = sys_program(r);
    let stdin = stdin_bytes(r);
    let data = data_bytes(r);
    let (mut want_out, want_err, want_exit) = expected_streams(r);
    if sabotage {
        want_out.push(0xFF);
    }

    let mut runs: Vec<(&'static str, System, Result<RunStats, SysError>)> = Vec::new();
    let mut sys = fresh_sys(&words, &stdin, &data);
    let res = sys.run(MAX_CYCLES);
    runs.push(("run", sys, res));
    let mut sys = fresh_sys(&words, &stdin, &data);
    let res = sys.run_stepped(MAX_CYCLES);
    runs.push(("stepped", sys, res));
    let mut sys = fresh_sys(&words, &stdin, &data);
    let res = sys.run_compiled(MAX_CYCLES);
    runs.push(("compiled", sys, res));
    for (label, engine) in [
        ("batch-interpreted", BatchEngine::Interpreted),
        ("batch-stepped", BatchEngine::Stepped),
        ("batch-compiled", BatchEngine::Compiled),
    ] {
        let report =
            run_batch(vec![BatchItem::new(fresh_sys(&words, &stdin, &data), MAX_CYCLES, engine)]);
        let outcome = report.outcomes.into_iter().next().expect("one outcome");
        runs.push((label, outcome.system, outcome.result));
    }

    let mut cycles = 0u64;
    let mut reference: Option<RunStats> = None;
    for (label, sys, result) in &runs {
        let stats = result
            .as_ref()
            .map_err(|e| fail("run-error", format!("{label}: {e}")))?;
        cycles += stats.cycles;
        let acct = stats.cycle_account();
        if !acct.balanced() {
            return Err(fail(
                "unbalanced-account",
                format!("{label}: sum(buckets) {} != cycles {}", acct.sum(), stats.cycles),
            ));
        }
        if r.ops.iter().any(|o| !matches!(o, SysOp::Compute { .. }))
            && acct.get(CycleBucket::Syscall) == 0
        {
            return Err(fail(
                "unbalanced-account",
                format!("{label}: trap-issuing program charged no Syscall cycles"),
            ));
        }
        match &reference {
            None => reference = Some(stats.clone()),
            Some(first) => {
                if stats != first {
                    return Err(fail(
                        "stats-diverge",
                        format!("run {first:?} vs {label} {stats:?}"),
                    ));
                }
            }
        }
        if sys.kernel().stdout() != want_out.as_slice() {
            return Err(fail(
                "stream-mismatch",
                format!(
                    "{label}: stdout {:02x?} != expected {:02x?}",
                    sys.kernel().stdout(),
                    want_out
                ),
            ));
        }
        if sys.kernel().stderr() != want_err.as_slice() {
            return Err(fail(
                "stream-mismatch",
                format!(
                    "{label}: stderr {:02x?} != expected {:02x?}",
                    sys.kernel().stderr(),
                    want_err
                ),
            ));
        }
        if sys.kernel().exit_code() != Some(want_exit) {
            return Err(fail(
                "exit-mismatch",
                format!("{label}: exit {:?} != expected {want_exit}", sys.kernel().exit_code()),
            ));
        }
    }
    Ok(cycles)
}

/// Greedy op-deletion shrinker: removes ops (then zeroes the exit code
/// and empties stdin) while `still_fails` keeps returning `true`.
pub fn shrink_sys(r: &SysRecipe, mut still_fails: impl FnMut(&SysRecipe) -> bool) -> SysRecipe {
    let mut best = r.clone();
    loop {
        let mut improved = false;
        let mut i = 0;
        while i < best.ops.len() {
            let mut cand = best.clone();
            cand.ops.remove(i);
            if still_fails(&cand) {
                best = cand;
                improved = true;
            } else {
                i += 1;
            }
        }
        if best.exit_code != 0 {
            let mut cand = best.clone();
            cand.exit_code = 0;
            if still_fails(&cand) {
                best = cand;
                improved = true;
            }
        }
        if best.stdin_len != 0 {
            let mut cand = best.clone();
            cand.stdin_len = 0;
            if still_fails(&cand) {
                best = cand;
                improved = true;
            }
        }
        if !improved {
            return best;
        }
    }
}

// ---------------------------------------------------------------------------
// JSON corpus
// ---------------------------------------------------------------------------

fn op_json(op: SysOp) -> String {
    match op {
        SysOp::Write { fd, off, len } => format!("[\"write\", {fd}, {off}, {len}]"),
        SysOp::BrkGrow { delta } => format!("[\"brk-grow\", {delta}]"),
        SysOp::BrkShrink => "[\"brk-shrink\"]".to_string(),
        SysOp::Read { len } => format!("[\"read\", {len}]"),
        SysOp::Gettime => "[\"gettime\"]".to_string(),
        SysOp::Compute { iters } => format!("[\"compute\", {iters}]"),
    }
}

/// Serializes a syscall recipe as a corpus entry.
#[must_use]
pub fn sys_recipe_json(r: &SysRecipe, failure: Option<&str>) -> String {
    let ops: Vec<String> = r.ops.iter().map(|&o| op_json(o)).collect();
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"version\": {SYS_CORPUS_VERSION},\n"));
    if let Some(kind) = failure {
        s.push_str(&format!("  \"failure\": \"{kind}\",\n"));
    }
    s.push_str(&format!("  \"ops\": [{}],\n", ops.join(", ")));
    s.push_str(&format!("  \"exit_code\": {},\n", r.exit_code));
    s.push_str(&format!("  \"data_seed\": {},\n", r.data_seed));
    s.push_str(&format!("  \"stdin_len\": {}\n", r.stdin_len));
    s.push_str("}\n");
    s
}

/// Parses one syscall corpus entry. The format is deliberately tiny, so
/// this is a line-oriented scraper over the encoder's own output shape
/// rather than a full JSON parser.
///
/// # Errors
///
/// Malformed entries, unknown op tags, or out-of-range fields.
pub fn sys_recipe_from_json(text: &str) -> Result<SysRecipe, String> {
    fn field<'t>(text: &'t str, key: &str) -> Result<&'t str, String> {
        let pat = format!("\"{key}\":");
        let at = text.find(&pat).ok_or_else(|| format!("missing `{key}`"))?;
        let rest = text[at + pat.len()..].trim_start();
        let end = rest
            .find(|c: char| c == ',' || c == '\n' || c == '}')
            .ok_or_else(|| format!("unterminated `{key}`"))?;
        Ok(rest[..end].trim())
    }
    fn num<T: std::str::FromStr>(s: &str, key: &str) -> Result<T, String> {
        s.parse().map_err(|_| format!("bad `{key}`: {s}"))
    }

    let version: u64 = num(field(text, "version")?, "version")?;
    if version != SYS_CORPUS_VERSION {
        return Err(format!("unsupported syscall corpus version {version}"));
    }
    let ops_at = text.find("\"ops\":").ok_or("missing `ops`")?;
    let ops_text = &text[ops_at..];
    let open = ops_text.find('[').ok_or("`ops` is not an array")?;
    let close = ops_text.rfind(']').ok_or("`ops` is not an array")?;
    let body = &ops_text[open + 1..close];
    let mut ops = Vec::new();
    for item in body.split('[').skip(1) {
        let item = item.split(']').next().ok_or("unterminated op")?;
        let parts: Vec<&str> = item.split(',').map(str::trim).collect();
        let tag = parts.first().map(|t| t.trim_matches('"')).ok_or("empty op")?;
        let arg = |i: usize| -> Result<u64, String> {
            parts.get(i).ok_or_else(|| format!("op `{tag}` too short")).and_then(|s| {
                s.parse().map_err(|_| format!("bad op arg `{s}`"))
            })
        };
        ops.push(match tag {
            "write" => SysOp::Write { fd: arg(1)? as u8, off: arg(2)? as u8, len: arg(3)? as u8 },
            "brk-grow" => SysOp::BrkGrow { delta: arg(1)? as u16 },
            "brk-shrink" => SysOp::BrkShrink,
            "read" => SysOp::Read { len: arg(1)? as u8 },
            "gettime" => SysOp::Gettime,
            "compute" => SysOp::Compute { iters: arg(1)? as u8 },
            other => return Err(format!("unknown op tag `{other}`")),
        });
    }
    for op in &ops {
        if let SysOp::Write { off, len, .. } = op {
            if usize::from(*off) + usize::from(*len) > DATA_LEN {
                return Err(format!("write [{off}, {len}) exceeds the data window"));
            }
        }
    }
    Ok(SysRecipe {
        ops,
        exit_code: num(field(text, "exit_code")?, "exit_code")?,
        data_seed: num(field(text, "data_seed")?, "data_seed")?,
        stdin_len: num(field(text, "stdin_len")?, "stdin_len")?,
    })
}

/// The checked-in syscall corpus directory
/// (`crates/fuzz/corpus/syscall/`). A subdirectory, so the kernel-recipe
/// loader ([`crate::corpus::load_corpus`]) never sees these entries.
#[must_use]
pub fn sys_corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus").join("syscall")
}

/// Loads every syscall corpus entry under `dir`, sorted by filename.
///
/// # Errors
///
/// I/O failures or malformed entries (with the offending filename).
pub fn load_sys_corpus(dir: &Path) -> Result<Vec<(String, SysRecipe)>, String> {
    let mut names: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("read {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    names.sort();
    names
        .into_iter()
        .map(|path| {
            let name =
                path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
            let text =
                std::fs::read_to_string(&path).map_err(|e| format!("read {name}: {e}"))?;
            let recipe = sys_recipe_from_json(&text).map_err(|e| format!("{name}: {e}"))?;
            Ok((name, recipe))
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Campaign
// ---------------------------------------------------------------------------

/// One syscall-campaign failure, shrunk.
#[derive(Debug, Clone)]
pub struct SysCaseFailure {
    /// Case index within the campaign.
    pub index: u64,
    /// What the oracle rejected.
    pub failure: SysFailure,
    /// The minimized recipe (same failure kind).
    pub shrunk: SysRecipe,
}

/// Aggregate syscall-campaign results.
#[derive(Debug, Clone, Default)]
pub struct SysCampaignReport {
    /// Cases drawn.
    pub cases: u64,
    /// Total simulated cycles across all engines of all passing cases.
    pub sim_cycles: u64,
    /// Oracle violations.
    pub failures: Vec<SysCaseFailure>,
}

impl SysCampaignReport {
    /// Zero oracle mismatches and zero panics.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// The syscall recipe a `(campaign seed, case index)` pair denotes.
#[must_use]
pub fn sys_case_recipe(seed: u64, index: u64) -> SysRecipe {
    let mut rng = Rng64::seed_from_u64(seed ^ index.wrapping_mul(0xA24B_AED4_963E_E407));
    generate_sys(&mut rng)
}

/// [`check_sys_case`] hardened against panics, mirroring
/// [`crate::checked`]: a panic anywhere in the stack is a finding, not a
/// campaign crash.
///
/// # Errors
///
/// Returns the [`SysFailure`] the oracle (or a panic) produced.
pub fn checked_sys(r: &SysRecipe) -> Result<u64, SysFailure> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| check_sys_case(r))) {
        Ok(result) => result,
        Err(payload) => {
            let detail = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            Err(fail("panic", detail))
        }
    }
}

/// Runs a syscall fuzz campaign: `cases` random trap programs, each
/// checked on all six engine runs, failures shrunk by op deletion.
#[must_use]
pub fn run_sys_campaign(cases: u64, seed: u64) -> SysCampaignReport {
    let mut report = SysCampaignReport { cases, ..SysCampaignReport::default() };
    for index in 0..cases {
        let recipe = sys_case_recipe(seed, index);
        match checked_sys(&recipe) {
            Ok(cycles) => report.sim_cycles += cycles,
            Err(failure) => {
                let kind = failure.kind;
                let shrunk = shrink_sys(&recipe, |cand| {
                    checked_sys(cand).err().is_some_and(|f| f.kind == kind)
                });
                report.failures.push(SysCaseFailure { index, failure, shrunk });
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fixed-seed generator coverage: every op kind, bad fds, and
    /// nonzero exit codes all appear.
    #[test]
    fn generator_covers_the_abi() {
        let mut writes = 0;
        let mut bad_fd = 0;
        let mut grows = 0;
        let mut shrinks = 0;
        let mut reads = 0;
        let mut times = 0;
        let mut spacers = 0;
        let mut nonzero_exit = 0;
        for i in 0..200 {
            let r = sys_case_recipe(0x5C5C, i);
            nonzero_exit += u64::from(r.exit_code != 0);
            for op in &r.ops {
                match op {
                    SysOp::Write { fd, .. } => {
                        writes += 1;
                        bad_fd += u64::from(*fd != 1 && *fd != 2);
                    }
                    SysOp::BrkGrow { .. } => grows += 1,
                    SysOp::BrkShrink => shrinks += 1,
                    SysOp::Read { .. } => reads += 1,
                    SysOp::Gettime => times += 1,
                    SysOp::Compute { .. } => spacers += 1,
                }
            }
        }
        for (label, count) in [
            ("write", writes),
            ("bad-fd write", bad_fd),
            ("brk-grow", grows),
            ("brk-shrink", shrinks),
            ("read", reads),
            ("gettime", times),
            ("compute", spacers),
            ("nonzero exit", nonzero_exit),
        ] {
            assert!(count > 0, "grammar never drew {label}");
        }
    }

    /// A small but real syscall campaign is clean on every engine.
    #[test]
    fn small_sys_campaign_is_clean() {
        let report = run_sys_campaign(40, 0xD75E);
        assert_eq!(report.cases, 40);
        assert!(
            report.clean(),
            "syscall oracle failures: {:?}",
            report.failures.iter().map(|f| f.failure.to_string()).collect::<Vec<_>>()
        );
        assert!(report.sim_cycles > 0);
    }

    /// The synthetic lost-write hook is detected as a stream mismatch and
    /// shrinks to a minimal recipe that still fails the same way.
    #[test]
    fn lost_write_is_detected_and_shrinks() {
        let recipe = (0..)
            .map(|i| sys_case_recipe(0x10_57, i))
            .find(|r| r.ops.len() >= 4)
            .expect("the grammar draws multi-op programs");
        let failure = check_sys_case_with(&recipe, true).expect_err("lost write detected");
        assert_eq!(failure.kind, "stream-mismatch", "{failure}");
        let small = shrink_sys(&recipe, |cand| {
            check_sys_case_with(cand, true).err().is_some_and(|f| f.kind == failure.kind)
        });
        // The sabotage perturbs expected stdout unconditionally, so the
        // empty program still trips it — the shrinker must reach bottom.
        assert!(small.ops.is_empty(), "shrunk to {:?}", small.ops);
        assert_eq!(small.exit_code, 0);
        check_sys_case(&small).expect("shrunken recipe is otherwise clean");
    }

    /// JSON round-trips random syscall recipes exactly.
    #[test]
    fn sys_json_round_trips() {
        for i in 0..60 {
            let r = sys_case_recipe(0xC0DE, i);
            let text = sys_recipe_json(&r, Some("stream-mismatch"));
            let back = sys_recipe_from_json(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
            assert_eq!(r, back);
        }
        assert!(sys_recipe_from_json("").is_err());
        assert!(sys_recipe_from_json("{\"version\": 99}").is_err());
        assert!(sys_recipe_from_json(
            "{\"version\": 1, \"ops\": [[\"write\", 1, 250, 63]], \"exit_code\": 0, \
             \"data_seed\": 1, \"stdin_len\": 0}"
        )
        .is_err());
    }
}
