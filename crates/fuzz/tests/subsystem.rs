//! End-to-end tests of the fuzzing subsystem itself: generator coverage,
//! a real (small) campaign through the full oracle, the synthetic
//! miscompile → shrink → repro pipeline, corpus replay, and typed-error
//! handling for invalid configurations.

use dyser_fuzz::corpus::{corpus_dir, load_corpus, recipe_from_json, recipe_json, rust_repro};
use dyser_fuzz::gen::{GenStats, LoopForm, MemKind, Node, Recipe, RunMode};
use dyser_fuzz::oracle::{check_case, Sabotage};
use dyser_fuzz::shrink::shrink;
use dyser_fuzz::{case_recipe, checked, run_campaign, CampaignConfig};

/// The generator provably exercises all three run modes and both E8
/// control-flow shape families (plus the adversarial extras) — the
/// acceptance criterion's self-stats assertion.
#[test]
fn generator_exercises_modes_and_shape_families() {
    let mut stats = GenStats::default();
    for i in 0..400 {
        stats.record(&case_recipe(0xD75E, i));
    }
    assert_eq!(stats.total, 400);
    assert!(stats.exercises_all_modes(), "run modes missing: {stats:?}");
    assert!(stats.exercises_shape_families(), "shape families missing: {stats:?}");
    // Every loop form appears.
    assert!(stats.forms.iter().all(|&c| c > 0), "loop form missing: {stats:?}");
    // The adversarial extras appear too.
    assert!(stats.alias_store > 0, "{stats:?}");
    assert!(stats.double_store > 0, "{stats:?}");
    assert!(stats.mixed_types > 0, "{stats:?}");
    assert!(stats.timeout_checks > 0, "{stats:?}");
    assert!(stats.unrolled > 0, "{stats:?}");
    assert!(stats.nondefault_mem > 0, "{stats:?}");
}

/// A small but real campaign — every case runs the interpreter, both
/// binaries, both simulation paths, and the attribution identity — must
/// be clean. The CI smoke job and the 10k acceptance campaign scale this
/// up through `repro fuzz`.
#[test]
fn small_campaign_is_clean() {
    let report = run_campaign(&CampaignConfig {
        cases: 60,
        seed: 0xD75E,
        shrink: false,
        sabotage: false,
        ..CampaignConfig::default()
    });
    assert_eq!(report.cases, 60);
    assert!(
        report.clean(),
        "oracle failures: {:?}",
        report.failures.iter().map(|f| f.failure.to_string()).collect::<Vec<_>>()
    );
    assert!(report.accelerated > 0, "no case was ever accelerated: {report:?}");
    assert!(report.sim_cycles > 0);
}

/// Forcing a synthetic miscompile (the test-only sabotage hook) must
/// yield a detected failure, and shrinking must reduce it to ≤ 8 IR
/// nodes while preserving the failure class — the acceptance criterion
/// for the shrinker. The shrunken recipe round-trips through both repro
/// formats.
#[test]
fn sabotage_shrinks_to_a_small_preserved_repro() {
    let sab = Sabotage;
    // First sabotage-tripping, otherwise-valid recipe in the fixed stream.
    let recipe = (0..)
        .map(|i| case_recipe(0x5AB0_7A6E, i))
        .find(|r| r.fifo_depth != 0 && sab.trips(r))
        .expect("the grammar draws integer multiplies");

    let failure = checked(&recipe, Some(&sab)).expect_err("sabotage must be detected");
    assert_eq!(failure.kind(), "output-mismatch", "{failure}");

    let kind = failure.kind();
    let small = shrink(&recipe, |cand| {
        checked(cand, Some(&sab)).err().is_some_and(|f| f.kind() == kind)
    });
    assert!(small.ir_nodes() <= 8, "shrunk to {} nodes: {small:?}", small.ir_nodes());
    let still = checked(&small, Some(&sab)).expect_err("shrunk recipe still fails");
    assert_eq!(still.kind(), kind, "shrinking changed the failure class");
    // Without the hook the shrunken recipe passes: the failure really was
    // the synthetic miscompile, not a latent bug.
    checked(&small, None).expect("shrunken recipe is otherwise clean");

    // Both repro formats are faithful.
    let json = recipe_json(&small, Some(kind));
    assert_eq!(recipe_from_json(&json).expect("round trip"), small);
    let code = rust_repro(&small, "sabotage_min");
    assert!(code.contains("fn fuzz_repro_sabotage_min()"));
    assert!(code.contains("check_case(&recipe)"));
}

/// Every checked-in corpus entry replays clean through the full oracle —
/// the regression gate for previously found (and fixed) bugs.
#[test]
fn corpus_replays_clean() {
    let entries = load_corpus(&corpus_dir()).expect("corpus loads");
    assert!(!entries.is_empty(), "corpus must not be empty");
    for (name, recipe) in entries {
        checked(&recipe, None).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

/// Every checked-in syscall corpus entry replays clean through the
/// stream/exit/stats oracle on all six engine runs.
#[test]
fn sys_corpus_replays_clean() {
    use dyser_fuzz::sysprog::{checked_sys, load_sys_corpus, sys_corpus_dir};
    let entries = load_sys_corpus(&sys_corpus_dir()).expect("syscall corpus loads");
    assert!(!entries.is_empty(), "syscall corpus must not be empty");
    for (name, recipe) in entries {
        checked_sys(&recipe).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

/// Deliberately impossible hardware descriptions produce typed errors —
/// `SysError::InvalidConfig` — never panics, and the oracle counts them
/// as their own outcome class.
#[test]
fn invalid_configs_fail_typed() {
    let recipe = Recipe {
        form: LoopForm::Canonical,
        a_fp: false,
        b_fp: false,
        nodes: vec![Node::Leaf(0, 0), Node::Bin(0, 0, 0)],
        second: vec![],
        n: 4,
        inner: 0,
        alias_store: false,
        double_store: false,
        input_seed: 1,
        unroll: 1,
        lag_depth: 1,
        lag_stores: false,
        if_convert: false,
        refinement_rounds: 0,
        offload_exit: false,
        rows: 4,
        cols: 4,
        universal_fus: false,
        fifo_depth: 0, // impossible hardware
        mem: MemKind::Default,
        mode: RunMode::FastForward,
        timeout_check: false,
    };
    let outcome = check_case(&recipe).expect("typed rejection is a pass");
    assert!(outcome.invalid_config);
    assert_eq!(outcome.cycles, 0);
}

/// Tiny fabrics that cannot fit any region must degrade gracefully: the
/// compiler falls back toward the baseline, everything still verifies.
#[test]
fn tiny_fabrics_degrade_gracefully() {
    for i in 0..8 {
        let mut r = case_recipe(0x7139, i);
        r.fifo_depth = r.fifo_depth.max(1);
        r.rows = 2;
        r.cols = 2;
        checked(&r, None).unwrap_or_else(|e| panic!("case {i}: {e}\n{r:?}"));
    }
}

/// The lockstep batch oracle must agree with the serial path case for
/// case: identical aggregates on a clean campaign, and identical failure
/// indices and kinds when the sabotage hook forces miscompiles.
#[test]
fn batched_oracle_matches_serial() {
    let cfg = |batch, sabotage| CampaignConfig {
        cases: 60,
        seed: 0xD75E,
        shrink: false,
        sabotage,
        batch,
        ..CampaignConfig::default()
    };
    let batched = run_campaign(&cfg(true, false));
    let serial = run_campaign(&cfg(false, false));
    assert!(batched.clean(), "{:?}", batched.failures);
    assert_eq!(batched.accelerated, serial.accelerated);
    assert_eq!(batched.invalid_config, serial.invalid_config);
    assert_eq!(batched.sim_cycles, serial.sim_cycles, "batching must not change a cycle");

    let batched = run_campaign(&cfg(true, true));
    let serial = run_campaign(&cfg(false, true));
    let digest = |r: &dyser_fuzz::CampaignReport| {
        r.failures.iter().map(|f| (f.index, f.failure.kind())).collect::<Vec<_>>()
    };
    assert!(!batched.failures.is_empty(), "sabotage must trip the oracle");
    assert_eq!(digest(&batched), digest(&serial));
    assert_eq!(batched.sim_cycles, serial.sim_cycles);
}
