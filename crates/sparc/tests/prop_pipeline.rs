//! Property tests: the timed pipeline's architectural results match a
//! direct functional evaluation for random straight-line programs, and
//! its cycle accounting obeys the model's invariants.

use dyser_isa::{AluOp, Assembler, Instr, Op2, Reg};
use dyser_sparc::{NullCoproc, Pipeline, SimpleBus};
use proptest::prelude::*;

const ENTRY: u64 = 0x1000;

/// Registers the generator is allowed to touch (no scratch/frame regs).
fn arb_work_reg() -> impl Strategy<Value = Reg> {
    prop_oneof![
        (16u8..24).prop_map(Reg::new), // %l0..%l7
        (8u8..14).prop_map(Reg::new),  // %o0..%o5
    ]
}

fn arb_alu_op() -> impl Strategy<Value = AluOp> {
    proptest::sample::select(AluOp::ALL.to_vec())
}

#[derive(Debug, Clone)]
struct Step {
    op: AluOp,
    rd: Reg,
    rs1: Reg,
    op2: Result<Reg, i16>,
}

fn arb_step() -> impl Strategy<Value = Step> {
    (
        arb_alu_op(),
        arb_work_reg(),
        arb_work_reg(),
        prop_oneof![arb_work_reg().prop_map(Ok), (-4096i16..=4095).prop_map(Err)],
    )
        .prop_map(|(op, rd, rs1, op2)| Step { op, rd, rs1, op2 })
}

/// Oracle: evaluate the program over an architectural register array.
fn oracle(init: &[(Reg, u64)], steps: &[Step]) -> [u64; 32] {
    let mut regs = [0u64; 32];
    for (r, v) in init {
        if !r.is_zero() {
            regs[r.index()] = *v;
        }
    }
    for s in steps {
        let a = regs[s.rs1.index()];
        let b = match s.op2 {
            Ok(r) => regs[r.index()],
            Err(i) => i as i64 as u64,
        };
        let (res, _) = s.op.eval(a, b);
        if !s.rd.is_zero() {
            regs[s.rd.index()] = res;
        }
    }
    regs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn pipeline_matches_functional_oracle(
        steps in proptest::collection::vec(arb_step(), 1..40),
        seeds in proptest::collection::vec(any::<u64>(), 14),
    ) {
        // Initial values for %l0..%l7 and %o0..%o5.
        let init: Vec<(Reg, u64)> = (16u8..24)
            .chain(8u8..14)
            .zip(seeds.iter().copied())
            .map(|(r, v)| (Reg::new(r), v))
            .collect();

        let mut asm = Assembler::new();
        for s in &steps {
            let op2 = match s.op2 {
                Ok(r) => Op2::Reg(r),
                Err(i) => Op2::Imm(i),
            };
            asm.push(Instr::Alu { op: s.op, rd: s.rd, rs1: s.rs1, op2 });
        }
        asm.push(Instr::Halt);
        let words = asm.assemble().unwrap();

        let mut bus = SimpleBus::new();
        bus.memory_mut().write_code(ENTRY, &words);
        let mut cpu = Pipeline::new(ENTRY);
        for (r, v) in &init {
            cpu.regs_mut().write(*r, *v);
        }
        let halted = cpu.run(&mut bus, &mut NullCoproc, 1_000_000).unwrap();
        prop_assert!(halted);

        let want = oracle(&init, &steps);
        for idx in 0..32u8 {
            let r = Reg::new(idx);
            prop_assert_eq!(
                cpu.regs().read(r),
                want[idx as usize],
                "register {} after {} steps",
                r,
                steps.len()
            );
        }
    }

    #[test]
    fn cycle_count_is_instructions_plus_attributed_stalls(
        steps in proptest::collection::vec(arb_step(), 1..40),
    ) {
        let mut asm = Assembler::new();
        for s in &steps {
            let op2 = match s.op2 {
                Ok(r) => Op2::Reg(r),
                Err(i) => Op2::Imm(i),
            };
            asm.push(Instr::Alu { op: s.op, rd: s.rd, rs1: s.rs1, op2 });
        }
        asm.push(Instr::Halt);
        let words = asm.assemble().unwrap();
        let mut bus = SimpleBus::new();
        bus.memory_mut().write_code(ENTRY, &words);
        let mut cpu = Pipeline::new(ENTRY);
        cpu.run(&mut bus, &mut NullCoproc, 1_000_000).unwrap();

        // The timing model's core identity: every cycle is either a retire
        // or an attributed stall.
        let stats = cpu.stats();
        prop_assert_eq!(stats.cycles, stats.instructions + stats.total_stalls());
        prop_assert_eq!(stats.instructions, steps.len() as u64 + 1, "all steps + halt retire");
    }
}
