//! Randomized tests: the timed pipeline's architectural results match a
//! direct functional evaluation for random straight-line programs, and
//! its cycle accounting obeys the model's invariants. Seeded with the
//! in-workspace PRNG so the case set is identical on every run.

use dyser_isa::{AluOp, Assembler, Instr, Op2, Reg};
use dyser_rng::Rng64;
use dyser_sparc::{NullCoproc, Pipeline, SimpleBus};

const ENTRY: u64 = 0x1000;

/// Registers the generator is allowed to touch (no scratch/frame regs):
/// %l0..%l7 and %o0..%o5.
const WORK_REGS: [u8; 14] = [16, 17, 18, 19, 20, 21, 22, 23, 8, 9, 10, 11, 12, 13];

fn rand_work_reg(rng: &mut Rng64) -> Reg {
    Reg::new(WORK_REGS[rng.gen_range(0..WORK_REGS.len())])
}

#[derive(Debug, Clone)]
struct Step {
    op: AluOp,
    rd: Reg,
    rs1: Reg,
    op2: Result<Reg, i16>,
}

fn rand_step(rng: &mut Rng64) -> Step {
    Step {
        op: AluOp::ALL[rng.gen_range(0..AluOp::ALL.len())],
        rd: rand_work_reg(rng),
        rs1: rand_work_reg(rng),
        op2: if rng.gen_bool(0.5) {
            Ok(rand_work_reg(rng))
        } else {
            Err(rng.gen_range(-4096i64..4096) as i16)
        },
    }
}

fn rand_steps(rng: &mut Rng64) -> Vec<Step> {
    let count = rng.gen_range(1usize..40);
    (0..count).map(|_| rand_step(rng)).collect()
}

fn assemble(steps: &[Step]) -> Vec<u32> {
    let mut asm = Assembler::new();
    for s in steps {
        let op2 = match s.op2 {
            Ok(r) => Op2::Reg(r),
            Err(i) => Op2::Imm(i),
        };
        asm.push(Instr::Alu { op: s.op, rd: s.rd, rs1: s.rs1, op2 });
    }
    asm.push(Instr::Halt);
    asm.assemble().unwrap()
}

/// Oracle: evaluate the program over an architectural register array.
fn oracle(init: &[(Reg, u64)], steps: &[Step]) -> [u64; 32] {
    let mut regs = [0u64; 32];
    for (r, v) in init {
        if !r.is_zero() {
            regs[r.index()] = *v;
        }
    }
    for s in steps {
        let a = regs[s.rs1.index()];
        let b = match s.op2 {
            Ok(r) => regs[r.index()],
            Err(i) => i as i64 as u64,
        };
        let (res, _) = s.op.eval(a, b);
        if !s.rd.is_zero() {
            regs[s.rd.index()] = res;
        }
    }
    regs
}

#[test]
fn pipeline_matches_functional_oracle() {
    let mut rng = Rng64::seed_from_u64(0x0005_BA7C_0001);
    for _ in 0..96 {
        let steps = rand_steps(&mut rng);
        // Initial values for %l0..%l7 and %o0..%o5.
        let init: Vec<(Reg, u64)> =
            WORK_REGS.iter().map(|&r| (Reg::new(r), rng.next_u64())).collect();

        let words = assemble(&steps);
        let mut bus = SimpleBus::new();
        bus.memory_mut().write_code(ENTRY, &words);
        let mut cpu = Pipeline::new(ENTRY);
        for (r, v) in &init {
            cpu.regs_mut().write(*r, *v);
        }
        let halted = cpu.run(&mut bus, &mut NullCoproc, 1_000_000).unwrap();
        assert!(halted);

        let want = oracle(&init, &steps);
        for idx in 0..32u8 {
            let r = Reg::new(idx);
            assert_eq!(
                cpu.regs().read(r),
                want[idx as usize],
                "register {} after {} steps",
                r,
                steps.len()
            );
        }
    }
}

#[test]
fn cycle_count_is_instructions_plus_attributed_stalls() {
    let mut rng = Rng64::seed_from_u64(0x0005_BA7C_0002);
    for _ in 0..96 {
        let steps = rand_steps(&mut rng);
        let words = assemble(&steps);
        let mut bus = SimpleBus::new();
        bus.memory_mut().write_code(ENTRY, &words);
        let mut cpu = Pipeline::new(ENTRY);
        cpu.run(&mut bus, &mut NullCoproc, 1_000_000).unwrap();

        // The timing model's core identity: every cycle is either a retire
        // or an attributed stall.
        let stats = cpu.stats();
        assert_eq!(stats.cycles, stats.instructions + stats.total_stalls());
        assert_eq!(stats.instructions, steps.len() as u64 + 1, "all steps + halt retire");
    }
}
