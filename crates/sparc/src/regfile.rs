//! Architectural register files.

use dyser_isa::{FReg, Reg};

/// The integer register file. `%g0` reads as zero and ignores writes.
#[derive(Debug, Clone)]
pub struct RegFile {
    regs: [u64; Reg::COUNT],
}

impl Default for RegFile {
    fn default() -> Self {
        RegFile { regs: [0; Reg::COUNT] }
    }
}

impl RegFile {
    /// Creates a zeroed register file.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads a register (`%g0` is always zero).
    pub fn read(&self, r: Reg) -> u64 {
        if r.is_zero() {
            0
        } else {
            self.regs[r.index()]
        }
    }

    /// Writes a register (writes to `%g0` are discarded).
    pub fn write(&mut self, r: Reg, value: u64) {
        if !r.is_zero() {
            self.regs[r.index()] = value;
        }
    }
}

/// The floating-point register file (64-bit doubles, bit-punned).
#[derive(Debug, Clone)]
pub struct FRegFile {
    regs: [u64; FReg::COUNT],
}

impl Default for FRegFile {
    fn default() -> Self {
        FRegFile { regs: [0; FReg::COUNT] }
    }
}

impl FRegFile {
    /// Creates a zeroed register file.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads a register's raw bits.
    pub fn read(&self, r: FReg) -> u64 {
        self.regs[r.index()]
    }

    /// Writes a register's raw bits.
    pub fn write(&mut self, r: FReg, value: u64) {
        self.regs[r.index()] = value;
    }

    /// Reads a register as a double.
    pub fn read_f64(&self, r: FReg) -> f64 {
        f64::from_bits(self.read(r))
    }

    /// Writes a register as a double.
    pub fn write_f64(&mut self, r: FReg, value: f64) {
        self.write(r, value.to_bits());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyser_isa::regs;

    #[test]
    fn g0_is_hardwired_zero() {
        let mut rf = RegFile::new();
        rf.write(regs::G0, 123);
        assert_eq!(rf.read(regs::G0), 0);
    }

    #[test]
    fn readback() {
        let mut rf = RegFile::new();
        rf.write(regs::O3, 77);
        assert_eq!(rf.read(regs::O3), 77);
        assert_eq!(rf.read(regs::O4), 0);
    }

    #[test]
    fn fp_double_view() {
        let mut rf = FRegFile::new();
        rf.write_f64(FReg::new(2), -1.25);
        assert_eq!(rf.read_f64(FReg::new(2)), -1.25);
        assert_eq!(rf.read(FReg::new(2)), (-1.25f64).to_bits());
    }
}
