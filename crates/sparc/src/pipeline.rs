//! The timed in-order pipeline.
//!
//! Execution follows SPARC's architectural `PC`/`nPC` pair, which gives
//! delay-slot semantics for free: a taken control transfer replaces `nPC`,
//! so the instruction after the branch (the delay slot) always executes.
//!
//! Timing model: each retired instruction consumes one base cycle; every
//! additional cycle before the next instruction issues is a *stall*
//! attributed to a [`StallCause`]. Stalls are queued as micro-states
//! (cache fill, long-latency occupancy, DySER port waits) and drained one
//! cycle per [`Pipeline::tick`], which keeps the core in lockstep with the
//! fabric the system crate ticks alongside it.

use std::collections::VecDeque;
use std::fmt;

use dyser_isa::{
    decode, AluOp, DecodeError, DyserInstr, FReg, Fcc, FpOp, Icc, Instr, LoadKind, Op2, Reg,
    StoreKind,
};
use dyser_trace::{EventKind, TraceBuffer, TraceEvent};

use crate::bus::Bus;
use crate::coproc::{Coproc, CoprocError};
use crate::regfile::{FRegFile, RegFile};
use crate::stats::{CoreStats, StallCause};

/// How many scalar values a vector port transfer moves per cycle.
pub const VECTOR_WIDTH: usize = 2;

/// Fatal simulation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// An undecodable instruction word was fetched.
    Decode {
        /// The fetch address.
        pc: u64,
        /// The underlying decode error.
        source: DecodeError,
    },
    /// A coprocessor operation failed.
    Coproc {
        /// The instruction address.
        pc: u64,
        /// The underlying coprocessor error.
        source: CoprocError,
    },
    /// A vector transfer's register count does not match its port map.
    VecLengthMismatch {
        /// The instruction address.
        pc: u64,
        /// Registers named by the instruction.
        regs: usize,
        /// Scalar ports behind the vector port.
        ports: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Decode { pc, source } => write!(f, "at pc 0x{pc:x}: {source}"),
            CoreError::Coproc { pc, source } => write!(f, "at pc 0x{pc:x}: {source}"),
            CoreError::VecLengthMismatch { pc, regs, ports } => write!(
                f,
                "at pc 0x{pc:x}: vector transfer of {regs} registers over {ports} scalar ports"
            ),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Decode { source, .. } => Some(source),
            CoreError::Coproc { source, .. } => Some(source),
            CoreError::VecLengthMismatch { .. } => None,
        }
    }
}

/// Where a pending DySER receive delivers its value.
#[derive(Debug, Clone, Copy)]
enum RecvDest {
    Int(Reg),
    Fp(FReg),
    /// `dstore`: write the received value to memory at this address.
    Mem(u64),
}

/// A queued micro-state consuming cycles after an instruction issues.
#[derive(Debug, Clone)]
enum Pending {
    /// A counted stall.
    Stall { cause: StallCause, remaining: u64 },
    /// Retry a port send until the FIFO accepts.
    Send { port: usize, value: u64 },
    /// Retry a port receive until a value arrives.
    Recv { port: usize, dest: RecvDest },
    /// Remaining scalar sends of a vector transfer.
    VecSend { pairs: VecDeque<(usize, u64)> },
    /// Remaining scalar receives of a vector transfer.
    VecRecv { pairs: VecDeque<(usize, Reg)> },
    /// Wait until the fabric drains.
    Fence,
}

/// Slots in the direct-mapped decoded-instruction cache. Purely a
/// simulator-speed artefact with no timing meaning: entries are
/// validated against the fetched word on every hit, so even
/// self-modifying code decodes correctly.
const DECODE_SLOTS: usize = 1024;

/// The in-order, single-issue core.
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Debug)]
pub struct Pipeline {
    pc: u64,
    npc: u64,
    regs: RegFile,
    fregs: FRegFile,
    icc: Icc,
    fcc: Fcc,
    pending: VecDeque<Pending>,
    last_load_int: Option<Reg>,
    last_load_fp: Option<FReg>,
    halted: bool,
    /// Syscall number of a retired `ta` trap awaiting harness-side
    /// service. While set, the core is frozen: [`Pipeline::tick`] is a
    /// no-op and no cycles elapse, so every backend observes the trap at
    /// the exact same cycle regardless of how it slices execution.
    pending_syscall: Option<u16>,
    stats: CoreStats,
    simcall_log: Vec<(u16, u64)>,
    /// `(pc, word, decoded)` triples indexed by `(pc >> 2) % DECODE_SLOTS`;
    /// `pc == u64::MAX` marks an empty slot.
    decoded: Vec<(u64, u32, Instr)>,
    /// Decode-cache probes that found a valid entry. Simulator
    /// observability only — deliberately outside [`CoreStats`], whose
    /// bit-for-bit equality the backends must preserve while taking
    /// different decode paths.
    decode_hits: u64,
    /// Decode-cache probes that had to decode the fetched word.
    decode_misses: u64,
    /// `None` unless tracing was enabled for this run: the disabled path
    /// is a single branch at retire, preserving the allocation-free hot
    /// path (see DESIGN.md, "Observability").
    tracer: Option<Box<TraceBuffer>>,
}

impl Pipeline {
    /// Creates a core that will start fetching at `entry`.
    pub fn new(entry: u64) -> Self {
        Pipeline {
            pc: entry,
            npc: entry + 4,
            regs: RegFile::new(),
            fregs: FRegFile::new(),
            icc: Icc::default(),
            fcc: Fcc::default(),
            pending: VecDeque::new(),
            last_load_int: None,
            last_load_fp: None,
            halted: false,
            pending_syscall: None,
            stats: CoreStats::default(),
            simcall_log: Vec::new(),
            decoded: vec![(u64::MAX, 0, Instr::Nop); DECODE_SLOTS],
            decode_hits: 0,
            decode_misses: 0,
            tracer: None,
        }
    }

    /// Enables instruction-retire tracing into a ring buffer of at most
    /// `capacity` events. Tracing is off by default and costs one branch
    /// per retired instruction when enabled-but-unused paths are ticked.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.tracer = Some(Box::new(TraceBuffer::new(capacity)));
    }

    /// Takes the trace buffer (disabling further tracing), if any.
    pub fn take_trace(&mut self) -> Option<Box<TraceBuffer>> {
        self.tracer.take()
    }

    /// The integer register file.
    pub fn regs(&self) -> &RegFile {
        &self.regs
    }

    /// Mutable access to the integer register file (argument set-up).
    pub fn regs_mut(&mut self) -> &mut RegFile {
        &mut self.regs
    }

    /// The floating-point register file.
    pub fn fregs(&self) -> &FRegFile {
        &self.fregs
    }

    /// Mutable access to the floating-point register file.
    pub fn fregs_mut(&mut self) -> &mut FRegFile {
        &mut self.fregs
    }

    /// The current program counter.
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Whether the core has executed `halt`.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// The syscall number of a retired `ta` trap awaiting service, if any.
    /// While set, the core is frozen (ticks are no-ops) until
    /// [`Pipeline::complete_syscall`] or [`Pipeline::force_halt`].
    pub fn pending_syscall(&self) -> Option<u16> {
        self.pending_syscall
    }

    /// Completes a pending syscall: writes the return value to `%o0`,
    /// queues `stall` counted cycles of [`StallCause::Syscall`] service
    /// latency, and unfreezes the core.
    ///
    /// The stall is a plain counted stall, so batch runners fast-forward
    /// it through [`Pipeline::tick_n`] exactly like any other latency.
    pub fn complete_syscall(&mut self, retval: u64, stall: u64) {
        debug_assert!(self.pending_syscall.is_some(), "complete_syscall without a pending trap");
        self.pending_syscall = None;
        self.regs.write(dyser_isa::regs::O0, retval);
        self.push_stall(StallCause::Syscall, stall);
    }

    /// Halts the core from outside the instruction stream — the `exit`
    /// syscall and fatal syscall errors. Clears any pending trap.
    pub fn force_halt(&mut self) {
        self.pending_syscall = None;
        self.halted = true;
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Values recorded by `simcall` instructions, in program order.
    pub fn simcall_log(&self) -> &[(u16, u64)] {
        &self.simcall_log
    }

    /// `(hits, misses)` of the decoded-instruction cache — a simulator
    /// speed counter, not an architectural statistic (see the field
    /// comments on `decode_hits`).
    pub fn decode_cache_stats(&self) -> (u64, u64) {
        (self.decode_hits, self.decode_misses)
    }

    /// Whether any micro-state (stall, port retry, fence) is queued ahead
    /// of the next instruction issue.
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    fn op2_value(&self, op2: Op2) -> u64 {
        match op2 {
            Op2::Reg(r) => self.regs.read(r),
            Op2::Imm(i) => i as i64 as u64,
        }
    }

    /// Whether `instr` reads integer register `reg` (the load-use check).
    fn int_uses(instr: &Instr, reg: Reg) -> bool {
        let op2_is = |op2: &Op2| matches!(op2, Op2::Reg(r) if *r == reg);
        match instr {
            Instr::Alu { rs1, op2, .. } => *rs1 == reg || op2_is(op2),
            Instr::MovCc { op2, .. } => op2_is(op2),
            Instr::Load { rs1, op2, .. } | Instr::LoadF { rs1, op2, .. } => {
                *rs1 == reg || op2_is(op2)
            }
            Instr::Store { rs, rs1, op2, .. } => *rs == reg || *rs1 == reg || op2_is(op2),
            Instr::StoreF { rs1, op2, .. } => *rs1 == reg || op2_is(op2),
            Instr::BranchReg { rs1, .. } => *rs1 == reg,
            Instr::Jmpl { rs1, op2, .. } => *rs1 == reg || op2_is(op2),
            Instr::Dyser(d) => match d {
                DyserInstr::Send { rs, .. } => *rs == reg,
                DyserInstr::Load { rs1, op2, .. } | DyserInstr::Store { rs1, op2, .. } => {
                    *rs1 == reg || op2_is(op2)
                }
                DyserInstr::SendVec { base, count, .. } => {
                    let base = base.index() as u16;
                    let r = reg.index() as u16;
                    r >= base && r < base + u16::from(*count)
                }
                _ => false,
            },
            _ => false,
        }
    }

    /// Whether `instr` reads floating-point register `reg`.
    fn fp_uses(instr: &Instr, reg: FReg) -> bool {
        match instr {
            Instr::Fpu { op, rs1, rs2, .. } => {
                (!op.is_unary() && *rs1 == reg) || *rs2 == reg
            }
            Instr::FCmp { rs1, rs2 } => *rs1 == reg || *rs2 == reg,
            Instr::StoreF { rs, .. } => *rs == reg,
            Instr::Dyser(DyserInstr::SendF { rs, .. }) => *rs == reg,
            _ => false,
        }
    }

    /// Stall cycles of the given cause still queued but not yet paid —
    /// nonzero only when the core halts with latency in flight (e.g. the
    /// halt instruction's own fetch miss). Lets observers reconcile the
    /// memory hierarchy's latency counters with the paid stall cycles.
    pub fn pending_stall_cycles(&self, cause: StallCause) -> u64 {
        self.pending
            .iter()
            .map(|p| match p {
                Pending::Stall { cause: c, remaining } if *c == cause => *remaining,
                _ => 0,
            })
            .sum()
    }

    fn push_stall(&mut self, cause: StallCause, cycles: u64) {
        if cycles > 0 {
            self.pending.push_back(Pending::Stall { cause, remaining: cycles });
        }
    }

    /// How many cycles the core can burn with no externally visible event:
    /// the front [`Pending::Stall`]'s remaining count, zero otherwise.
    ///
    /// A counted stall only decrements its own counter — it touches
    /// neither the bus nor the coprocessor and cannot halt the core — so
    /// those cycles can be charged in bulk by [`Pipeline::tick_n`].
    /// Everything else at the front of the queue is externally visible:
    /// an empty queue means the next tick fetches and decodes, and a
    /// `Send`/`Recv`/`VecSend`/`VecRecv`/`Fence` polls the coprocessor
    /// every cycle.
    pub fn skip_horizon(&self) -> u64 {
        if self.halted || self.pending_syscall.is_some() {
            return 0;
        }
        match self.pending.front() {
            Some(Pending::Stall { remaining, .. }) => *remaining,
            _ => 0,
        }
    }

    /// Charges `n` cycles of the front counted stall in one arithmetic
    /// step: `stats.cycles`, the per-cause stall counter, and the pending
    /// queue end up bit-identical to `n` calls of [`Pipeline::tick`].
    ///
    /// `n` must not exceed [`Pipeline::skip_horizon`]; in release builds
    /// excess cycles are clamped to the horizon (debug builds assert).
    pub fn tick_n(&mut self, n: u64) {
        debug_assert!(n <= self.skip_horizon(), "tick_n beyond the skip horizon");
        if n == 0 || self.halted {
            return;
        }
        let Some(Pending::Stall { cause, remaining }) = self.pending.front_mut() else {
            return;
        };
        let n = n.min(*remaining);
        let cause = *cause;
        *remaining -= n;
        if *remaining == 0 {
            self.pending.pop_front();
        }
        self.stats.cycles += n;
        self.stats.stall(cause, n);
    }

    /// Advances the core by exactly one cycle.
    ///
    /// # Errors
    ///
    /// Returns an error on undecodable instructions, coprocessor failures,
    /// or malformed vector transfers; the core is left halted.
    pub fn tick<B: Bus, C: Coproc>(&mut self, bus: &mut B, coproc: &mut C) -> Result<(), CoreError> {
        if self.halted || self.pending_syscall.is_some() {
            return Ok(());
        }
        self.stats.cycles += 1;

        if let Some(front) = self.pending.pop_front() {
            let keep = match front {
                Pending::Stall { cause, remaining } => {
                    self.stats.stall(cause, 1);
                    (remaining > 1).then_some(Pending::Stall { cause, remaining: remaining - 1 })
                }
                Pending::Send { port, value } => {
                    self.stats.stall(StallCause::DyserSend, 1);
                    (!coproc.cp_send(port, value)).then_some(Pending::Send { port, value })
                }
                Pending::Recv { port, dest } => {
                    self.stats.stall(StallCause::DyserRecv, 1);
                    match coproc.cp_recv(port) {
                        Some(v) => {
                            self.finish_recv(bus, dest, v);
                            None
                        }
                        None => Some(Pending::Recv { port, dest }),
                    }
                }
                Pending::VecSend { mut pairs } => {
                    self.stats.stall(StallCause::DyserSend, 1);
                    let mut sent = 0;
                    while sent < VECTOR_WIDTH {
                        let Some(&(port, value)) = pairs.front() else { break };
                        if !coproc.cp_send(port, value) {
                            break;
                        }
                        pairs.pop_front();
                        sent += 1;
                    }
                    (!pairs.is_empty()).then_some(Pending::VecSend { pairs })
                }
                Pending::VecRecv { mut pairs } => {
                    self.stats.stall(StallCause::DyserRecv, 1);
                    let mut received = 0;
                    while received < VECTOR_WIDTH {
                        let Some(&(port, rd)) = pairs.front() else { break };
                        let Some(v) = coproc.cp_recv(port) else { break };
                        self.regs.write(rd, v);
                        pairs.pop_front();
                        received += 1;
                    }
                    (!pairs.is_empty()).then_some(Pending::VecRecv { pairs })
                }
                Pending::Fence => {
                    self.stats.stall(StallCause::DyserFence, 1);
                    (coproc.cp_in_flight() != 0).then_some(Pending::Fence)
                }
            };
            if let Some(p) = keep {
                self.pending.push_front(p);
            }
            return Ok(());
        }

        self.issue(bus, coproc)
    }

    fn finish_recv<B: Bus>(&mut self, bus: &mut B, dest: RecvDest, value: u64) {
        match dest {
            RecvDest::Int(rd) => self.regs.write(rd, value),
            RecvDest::Fp(rd) => self.fregs.write(rd, value),
            RecvDest::Mem(addr) => {
                let lat = bus.store(addr, 8, value);
                self.push_stall(StallCause::DCache, lat.saturating_sub(1));
            }
        }
    }

    /// Fetches, decodes, executes, and retires one instruction, queueing
    /// any stall cycles it incurs.
    fn issue<B: Bus, C: Coproc>(&mut self, bus: &mut B, coproc: &mut C) -> Result<(), CoreError> {
        let pc = self.pc;
        let (word, fetch_lat) = bus.fetch_instr(pc);
        self.push_stall(StallCause::ICache, fetch_lat.saturating_sub(1));
        let slot = ((pc >> 2) as usize) & (DECODE_SLOTS - 1);
        let cached = self.decoded[slot];
        let instr = if cached.0 == pc && cached.1 == word {
            self.decode_hits += 1;
            cached.2
        } else {
            self.decode_misses += 1;
            let instr = decode(word).map_err(|source| {
                self.halted = true;
                CoreError::Decode { pc, source }
            })?;
            self.decoded[slot] = (pc, word, instr);
            instr
        };
        self.execute_decoded(instr, bus, coproc)
    }

    /// Issues one pre-decoded instruction as one cycle, charging the given
    /// fetch latency — the compiled backend's issue path. The caller must
    /// ensure the pending queue is empty, the core is not halted, and
    /// `instr` is what [`Bus::fetch_instr`] at the current `pc` would
    /// decode to; then every counter and register moves bit-identically
    /// to [`Pipeline::tick`].
    ///
    /// # Errors
    ///
    /// As [`Pipeline::tick`]: coprocessor failures or malformed vector
    /// transfers leave the core halted.
    pub fn step_decoded<B: Bus, C: Coproc>(
        &mut self,
        instr: Instr,
        fetch_lat: u64,
        bus: &mut B,
        coproc: &mut C,
    ) -> Result<(), CoreError> {
        debug_assert!(!self.halted, "step_decoded on a halted core");
        debug_assert!(self.pending.is_empty(), "step_decoded with micro-state queued");
        self.stats.cycles += 1;
        self.push_stall(StallCause::ICache, fetch_lat.saturating_sub(1));
        self.execute_decoded(instr, bus, coproc)
    }

    /// The post-decode half of an issue cycle: interlocks, retire,
    /// execute, and the PC/nPC update.
    fn execute_decoded<B: Bus, C: Coproc>(
        &mut self,
        instr: Instr,
        bus: &mut B,
        coproc: &mut C,
    ) -> Result<(), CoreError> {
        let pc = self.pc;

        // Load-use interlock against the previous instruction.
        let mut load_use = false;
        if let Some(last) = self.last_load_int {
            if Self::int_uses(&instr, last) {
                load_use = true;
            }
        }
        if let Some(last) = self.last_load_fp {
            if Self::fp_uses(&instr, last) {
                load_use = true;
            }
        }
        if load_use {
            self.push_stall(StallCause::LoadUse, 1);
        }
        self.last_load_int = None;
        self.last_load_fp = None;

        self.stats.retire(instr.class());
        if let Some(tracer) = self.tracer.as_deref_mut() {
            let detail = instr.class().index() as u32;
            tracer.record(TraceEvent {
                cycle: self.stats.cycles - 1,
                kind: EventKind::InstrRetire,
                arg: pc,
                detail,
            });
        }

        // Default control flow; CTIs overwrite `next_npc`.
        let next_pc = self.npc;
        let mut next_npc = self.npc.wrapping_add(4);
        let branch_target = |disp: i32| pc.wrapping_add((disp as i64 as u64).wrapping_mul(4));

        match instr {
            Instr::Alu { op, rd, rs1, op2 } => {
                let a = self.regs.read(rs1);
                let b = self.op2_value(op2);
                let (res, icc) = op.eval(a, b);
                self.regs.write(rd, res);
                if let Some(icc) = icc {
                    self.icc = icc;
                }
                let extra = u64::from(op.latency().saturating_sub(1));
                if matches!(op, AluOp::Mulx | AluOp::Sdivx | AluOp::Udivx) {
                    self.push_stall(StallCause::IntMulDiv, extra);
                }
            }
            Instr::Sethi { rd, imm22 } => {
                self.regs.write(rd, u64::from(imm22) << 10);
            }
            Instr::MovCc { cond, rd, op2 } => {
                if cond.eval(self.icc) {
                    let v = self.op2_value(op2);
                    self.regs.write(rd, v);
                }
            }
            Instr::Load { kind, rd, rs1, op2 } => {
                let addr = self.regs.read(rs1).wrapping_add(self.op2_value(op2));
                let signed = matches!(kind, LoadKind::Ldsw);
                let (value, lat) = bus.load(addr, kind.bytes(), signed);
                self.regs.write(rd, value);
                self.push_stall(StallCause::DCache, lat.saturating_sub(1));
                self.last_load_int = Some(rd);
            }
            Instr::Store { kind, rs, rs1, op2 } => {
                let addr = self.regs.read(rs1).wrapping_add(self.op2_value(op2));
                let lat = bus.store(addr, kind.bytes(), self.regs.read(rs));
                self.push_stall(StallCause::DCache, lat.saturating_sub(1));
                let _ = StoreKind::Stx; // (kind only selects the width)
            }
            Instr::LoadF { rd, rs1, op2 } => {
                let addr = self.regs.read(rs1).wrapping_add(self.op2_value(op2));
                let (value, lat) = bus.load(addr, 8, false);
                self.fregs.write(rd, value);
                self.push_stall(StallCause::DCache, lat.saturating_sub(1));
                self.last_load_fp = Some(rd);
            }
            Instr::StoreF { rs, rs1, op2 } => {
                let addr = self.regs.read(rs1).wrapping_add(self.op2_value(op2));
                let lat = bus.store(addr, 8, self.fregs.read(rs));
                self.push_stall(StallCause::DCache, lat.saturating_sub(1));
            }
            Instr::Fpu { op, rd, rs1, rs2 } => {
                let a = self.fregs.read(rs1);
                let b = self.fregs.read(rs2);
                // Unary operations read rs2, matching FpOp::eval.
                self.fregs.write(rd, op.eval(a, b));
                self.push_stall(StallCause::Fp, u64::from(op.latency().saturating_sub(1)));
                let _ = FpOp::Addd;
            }
            Instr::FCmp { rs1, rs2 } => {
                self.fcc = Fcc::compare(self.fregs.read_f64(rs1), self.fregs.read_f64(rs2));
            }
            Instr::Branch { cond, disp } => {
                if cond.eval(self.icc) {
                    next_npc = branch_target(disp);
                    self.push_stall(StallCause::Branch, 1);
                }
            }
            Instr::BranchF { cond, disp } => {
                if cond.eval(self.fcc) {
                    next_npc = branch_target(disp);
                    self.push_stall(StallCause::Branch, 1);
                }
            }
            Instr::BranchReg { cond, rs1, disp } => {
                if cond.eval(self.regs.read(rs1)) {
                    next_npc = branch_target(disp);
                    self.push_stall(StallCause::Branch, 1);
                }
            }
            Instr::Call { disp } => {
                self.regs.write(dyser_isa::regs::O7, pc);
                next_npc = branch_target(disp);
                self.push_stall(StallCause::Branch, 1);
            }
            Instr::Jmpl { rd, rs1, op2 } => {
                let target = self.regs.read(rs1).wrapping_add(self.op2_value(op2));
                self.regs.write(rd, pc);
                next_npc = target;
                self.push_stall(StallCause::Branch, 1);
            }
            Instr::Dyser(d) => {
                self.execute_dyser(pc, d, bus, coproc)?;
            }
            Instr::Nop => {}
            Instr::Halt => {
                self.halted = true;
                return Ok(());
            }
            Instr::SimCall { code } => {
                let value = match code {
                    1 => self.fregs.read(FReg::new(0)),
                    _ => self.regs.read(dyser_isa::regs::O0),
                };
                self.simcall_log.push((code, value));
            }
            Instr::Trap { code } => {
                // The trap retires as one ordinary cycle; the core then
                // freezes (tick becomes a no-op) until the harness-side
                // handler services the call.
                self.pending_syscall = Some(code);
            }
        }

        self.pc = next_pc;
        self.npc = next_npc;
        Ok(())
    }

    fn execute_dyser<B: Bus, C: Coproc>(
        &mut self,
        pc: u64,
        d: DyserInstr,
        bus: &mut B,
        coproc: &mut C,
    ) -> Result<(), CoreError> {
        match d {
            DyserInstr::Init { config } => {
                let cycles = coproc.cp_init(config.index()).map_err(|source| {
                    self.halted = true;
                    CoreError::Coproc { pc, source }
                })?;
                self.push_stall(StallCause::DyserConfig, cycles);
            }
            DyserInstr::Send { port, rs } => {
                let value = self.regs.read(rs);
                if !coproc.cp_send(port.index(), value) {
                    self.pending.push_back(Pending::Send { port: port.index(), value });
                }
            }
            DyserInstr::SendF { port, rs } => {
                let value = self.fregs.read(rs);
                if !coproc.cp_send(port.index(), value) {
                    self.pending.push_back(Pending::Send { port: port.index(), value });
                }
            }
            DyserInstr::Recv { port, rd } => match coproc.cp_recv(port.index()) {
                Some(v) => self.regs.write(rd, v),
                None => self
                    .pending
                    .push_back(Pending::Recv { port: port.index(), dest: RecvDest::Int(rd) }),
            },
            DyserInstr::RecvF { port, rd } => match coproc.cp_recv(port.index()) {
                Some(v) => self.fregs.write(rd, v),
                None => self
                    .pending
                    .push_back(Pending::Recv { port: port.index(), dest: RecvDest::Fp(rd) }),
            },
            DyserInstr::Load { port, rs1, op2 } => {
                let addr = self.regs.read(rs1).wrapping_add(self.op2_value(op2));
                let (value, lat) = bus.load(addr, 8, false);
                self.push_stall(StallCause::DCache, lat.saturating_sub(1));
                if !coproc.cp_send(port.index(), value) {
                    self.pending.push_back(Pending::Send { port: port.index(), value });
                }
            }
            DyserInstr::Store { port, rs1, op2 } => {
                let addr = self.regs.read(rs1).wrapping_add(self.op2_value(op2));
                match coproc.cp_recv(port.index()) {
                    Some(v) => {
                        let lat = bus.store(addr, 8, v);
                        self.push_stall(StallCause::DCache, lat.saturating_sub(1));
                    }
                    None => self.pending.push_back(Pending::Recv {
                        port: port.index(),
                        dest: RecvDest::Mem(addr),
                    }),
                }
            }
            DyserInstr::SendVec { vport, base, count } => {
                let ports = coproc.cp_vec_in(vport.index());
                if ports.len() != count as usize {
                    self.halted = true;
                    return Err(CoreError::VecLengthMismatch {
                        pc,
                        regs: count as usize,
                        ports: ports.len(),
                    });
                }
                let mut pairs: VecDeque<(usize, u64)> = ports
                    .iter()
                    .enumerate()
                    .map(|(i, &p)| {
                        let r = Reg::try_new(base.index() as u8 + i as u8)
                            .unwrap_or(dyser_isa::regs::G0);
                        (p, self.regs.read(r))
                    })
                    .collect();
                // First beat happens this cycle.
                let mut sent = 0;
                while sent < VECTOR_WIDTH {
                    let Some(&(p, v)) = pairs.front() else { break };
                    if !coproc.cp_send(p, v) {
                        break;
                    }
                    pairs.pop_front();
                    sent += 1;
                }
                if !pairs.is_empty() {
                    self.pending.push_back(Pending::VecSend { pairs });
                }
            }
            DyserInstr::RecvVec { vport, base, count } => {
                let ports = coproc.cp_vec_out(vport.index());
                if ports.len() != count as usize {
                    self.halted = true;
                    return Err(CoreError::VecLengthMismatch {
                        pc,
                        regs: count as usize,
                        ports: ports.len(),
                    });
                }
                let mut pairs: VecDeque<(usize, Reg)> = ports
                    .iter()
                    .enumerate()
                    .map(|(i, &p)| {
                        let r = Reg::try_new(base.index() as u8 + i as u8)
                            .unwrap_or(dyser_isa::regs::G0);
                        (p, r)
                    })
                    .collect();
                let mut received = 0;
                while received < VECTOR_WIDTH {
                    let Some(&(p, rd)) = pairs.front() else { break };
                    let Some(v) = coproc.cp_recv(p) else { break };
                    self.regs.write(rd, v);
                    pairs.pop_front();
                    received += 1;
                }
                if !pairs.is_empty() {
                    self.pending.push_back(Pending::VecRecv { pairs });
                }
            }
            DyserInstr::Fence => {
                if coproc.cp_in_flight() != 0 {
                    self.pending.push_back(Pending::Fence);
                }
            }
        }
        Ok(())
    }

    /// Runs until `halt` or until `max_cycles` elapse; returns whether the
    /// core halted.
    ///
    /// Counted stalls are fast-forwarded in bulk via
    /// [`Pipeline::tick_n`] — statistics stay bit-identical to stepping
    /// every cycle, because a counted stall has no externally visible
    /// effect (see [`Pipeline::skip_horizon`]).
    ///
    /// # Errors
    ///
    /// Propagates the first [`CoreError`] raised by [`Pipeline::tick`].
    pub fn run<B: Bus, C: Coproc>(
        &mut self,
        bus: &mut B,
        coproc: &mut C,
        max_cycles: u64,
    ) -> Result<bool, CoreError> {
        let mut remaining = max_cycles;
        while remaining > 0 && !self.halted && self.pending_syscall.is_none() {
            let skip = self.skip_horizon().min(remaining);
            if skip > 0 {
                self.tick_n(skip);
                remaining -= skip;
            } else {
                self.tick(bus, coproc)?;
                remaining -= 1;
            }
        }
        Ok(self.halted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::SimpleBus;
    use crate::coproc::NullCoproc;
    use dyser_isa::{regs, Assembler, ICond, RCond};

    const ENTRY: u64 = 0x1000;

    fn run_asm(build: impl FnOnce(&mut Assembler)) -> (Pipeline, SimpleBus) {
        let mut asm = Assembler::new();
        build(&mut asm);
        let words = asm.assemble().expect("test programs assemble");
        let mut bus = SimpleBus::new();
        bus.memory_mut().write_code(ENTRY, &words);
        let mut cpu = Pipeline::new(ENTRY);
        cpu.run(&mut bus, &mut NullCoproc, 100_000).expect("no core errors");
        assert!(cpu.halted(), "program must halt");
        (cpu, bus)
    }

    #[test]
    fn arithmetic_and_halt() {
        let (cpu, _) = run_asm(|asm| {
            asm.push(Instr::mov_imm(regs::O0, 40));
            asm.push(Instr::alu(AluOp::Add, regs::O0, regs::O0, Op2::Imm(2)));
            asm.push(Instr::Halt);
        });
        assert_eq!(cpu.regs().read(regs::O0), 42);
        assert_eq!(cpu.stats().instructions, 3);
    }

    #[test]
    fn sethi_or_builds_large_constants() {
        let (cpu, _) = run_asm(|asm| {
            asm.push(Instr::Sethi { rd: regs::O1, imm22: 0x12345 });
            asm.push(Instr::alu(AluOp::Or, regs::O1, regs::O1, Op2::Imm(0x1FF)));
            asm.push(Instr::Halt);
        });
        assert_eq!(cpu.regs().read(regs::O1), (0x12345 << 10) | 0x1FF);
    }

    #[test]
    fn loads_and_stores() {
        let (cpu, bus) = run_asm(|asm| {
            asm.push(Instr::mov_imm(regs::O0, 0x200));
            asm.push(Instr::mov_imm(regs::O1, 99));
            asm.push(Instr::Store {
                kind: StoreKind::Stx,
                rs: regs::O1,
                rs1: regs::O0,
                op2: Op2::Imm(8),
            });
            asm.push(Instr::Load {
                kind: LoadKind::Ldx,
                rd: regs::O2,
                rs1: regs::O0,
                op2: Op2::Imm(8),
            });
            asm.push(Instr::Halt);
        });
        assert_eq!(cpu.regs().read(regs::O2), 99);
        assert_eq!(bus.memory().read_u64(0x208), 99);
    }

    #[test]
    fn delay_slot_executes_on_taken_branch() {
        let (cpu, _) = run_asm(|asm| {
            asm.push(Instr::mov_imm(regs::O0, 0));
            asm.branch(ICond::Always, "skip");
            asm.push(Instr::mov_imm(regs::O0, 1)); // delay slot: executes
            asm.push(Instr::mov_imm(regs::O0, 2)); // skipped
            asm.label("skip");
            asm.push(Instr::Halt);
        });
        assert_eq!(cpu.regs().read(regs::O0), 1, "delay slot ran, skipped instr did not");
    }

    #[test]
    fn counted_loop_runs_correct_iterations() {
        let (cpu, _) = run_asm(|asm| {
            asm.push(Instr::mov_imm(regs::O0, 10)); // counter
            asm.push(Instr::mov_imm(regs::O1, 0)); // accumulator
            asm.label("loop");
            asm.push(Instr::alu(AluOp::Add, regs::O1, regs::O1, Op2::Imm(3)));
            asm.push(Instr::alu(AluOp::SubCc, regs::O0, regs::O0, Op2::Imm(1)));
            asm.branch(ICond::Ne, "loop");
            asm.push(Instr::Nop); // delay slot
            asm.push(Instr::Halt);
        });
        assert_eq!(cpu.regs().read(regs::O1), 30);
    }

    #[test]
    fn branch_reg_loop() {
        let (cpu, _) = run_asm(|asm| {
            asm.push(Instr::mov_imm(regs::O0, 5));
            asm.push(Instr::mov_imm(regs::O1, 0));
            asm.label("loop");
            asm.push(Instr::alu(AluOp::Add, regs::O1, regs::O1, Op2::Imm(1)));
            asm.push(Instr::alu(AluOp::Sub, regs::O0, regs::O0, Op2::Imm(1)));
            asm.branch_reg(RCond::NonZero, regs::O0, "loop");
            asm.push(Instr::Nop);
            asm.push(Instr::Halt);
        });
        assert_eq!(cpu.regs().read(regs::O1), 5);
    }

    #[test]
    fn fp_pipeline() {
        let (cpu, _) = run_asm(|asm| {
            // Build 2.0 and 0.5 in fp regs via memory-free conversion path:
            asm.push(Instr::mov_imm(regs::O0, 2));
            asm.push(Instr::mov_imm(regs::O1, 0x300));
            asm.push(Instr::Store {
                kind: StoreKind::Stx,
                rs: regs::O0,
                rs1: regs::O1,
                op2: Op2::Imm(0),
            });
            asm.push(Instr::LoadF { rd: FReg::new(0), rs1: regs::O1, op2: Op2::Imm(0) });
            asm.push(Instr::Fpu {
                op: FpOp::Xtod,
                rd: FReg::new(1),
                rs1: FReg::new(0),
                rs2: FReg::new(0),
            });
            // f1 = 2.0; f2 = f1 + f1 = 4.0; f3 = sqrt(f2) = 2.0
            asm.push(Instr::Fpu {
                op: FpOp::Addd,
                rd: FReg::new(2),
                rs1: FReg::new(1),
                rs2: FReg::new(1),
            });
            asm.push(Instr::Fpu {
                op: FpOp::Sqrtd,
                rd: FReg::new(3),
                rs1: FReg::new(3),
                rs2: FReg::new(2),
            });
            asm.push(Instr::Halt);
        });
        assert_eq!(cpu.fregs().read_f64(FReg::new(2)), 4.0);
        assert_eq!(cpu.fregs().read_f64(FReg::new(3)), 2.0);
        assert!(cpu.stats().stall_count(StallCause::Fp) > 0, "fp latency charged");
    }

    #[test]
    fn fcmp_and_fbranch() {
        let (cpu, _) = run_asm(|asm| {
            asm.push(Instr::mov_imm(regs::O0, 1));
            asm.push(Instr::mov_imm(regs::O1, 0x300));
            asm.push(Instr::Store {
                kind: StoreKind::Stx,
                rs: regs::O0,
                rs1: regs::O1,
                op2: Op2::Imm(0),
            });
            asm.push(Instr::LoadF { rd: FReg::new(0), rs1: regs::O1, op2: Op2::Imm(0) });
            asm.push(Instr::Fpu {
                op: FpOp::Xtod,
                rd: FReg::new(0),
                rs1: FReg::new(0),
                rs2: FReg::new(0),
            }); // f0 = 1.0
            asm.push(Instr::Fpu {
                op: FpOp::Addd,
                rd: FReg::new(1),
                rs1: FReg::new(0),
                rs2: FReg::new(0),
            }); // f1 = 2.0
            asm.push(Instr::FCmp { rs1: FReg::new(0), rs2: FReg::new(1) }); // 1.0 < 2.0
            asm.branch_f(dyser_isa::FCond::Lt, "less");
            asm.push(Instr::Nop);
            asm.push(Instr::mov_imm(regs::O5, 111)); // skipped
            asm.label("less");
            asm.push(Instr::mov_imm(regs::O4, 222));
            asm.push(Instr::Halt);
        });
        assert_eq!(cpu.regs().read(regs::O4), 222);
        assert_eq!(cpu.regs().read(regs::O5), 0);
    }

    #[test]
    fn movcc_selects() {
        let (cpu, _) = run_asm(|asm| {
            asm.push(Instr::mov_imm(regs::O0, 3));
            asm.push(Instr::cmp(regs::O0, Op2::Imm(5))); // 3 < 5
            asm.push(Instr::mov_imm(regs::O1, 100));
            asm.push(Instr::MovCc { cond: ICond::Lt, rd: regs::O1, op2: Op2::Imm(7) });
            asm.push(Instr::MovCc { cond: ICond::Gt, rd: regs::O1, op2: Op2::Imm(9) });
            asm.push(Instr::Halt);
        });
        assert_eq!(cpu.regs().read(regs::O1), 7, "only the true-condition move lands");
    }

    #[test]
    fn call_and_return() {
        let (cpu, _) = run_asm(|asm| {
            asm.push(Instr::mov_imm(regs::O0, 1));
            asm.call("f");
            asm.push(Instr::Nop); // delay slot
            asm.push(Instr::alu(AluOp::Add, regs::O0, regs::O0, Op2::Imm(10)));
            asm.push(Instr::Halt);
            asm.label("f");
            asm.push(Instr::alu(AluOp::Add, regs::O0, regs::O0, Op2::Imm(100)));
            // Return: jmpl %o7 + 8, %g0 (skip call + delay slot).
            asm.push(Instr::Jmpl { rd: regs::G0, rs1: regs::O7, op2: Op2::Imm(8) });
            asm.push(Instr::Nop); // delay slot
        });
        assert_eq!(cpu.regs().read(regs::O0), 111, "call body and fall-through both ran");
    }

    #[test]
    fn load_use_stall_charged() {
        let (cpu, _) = run_asm(|asm| {
            asm.push(Instr::mov_imm(regs::O0, 0x400));
            asm.push(Instr::Load {
                kind: LoadKind::Ldx,
                rd: regs::O1,
                rs1: regs::O0,
                op2: Op2::Imm(0),
            });
            asm.push(Instr::alu(AluOp::Add, regs::O2, regs::O1, Op2::Imm(1))); // uses loaded value
            asm.push(Instr::Halt);
        });
        assert_eq!(cpu.stats().stall_count(StallCause::LoadUse), 1);
    }

    #[test]
    fn no_load_use_stall_with_gap() {
        let (cpu, _) = run_asm(|asm| {
            asm.push(Instr::mov_imm(regs::O0, 0x400));
            asm.push(Instr::Load {
                kind: LoadKind::Ldx,
                rd: regs::O1,
                rs1: regs::O0,
                op2: Op2::Imm(0),
            });
            asm.push(Instr::Nop);
            asm.push(Instr::alu(AluOp::Add, regs::O2, regs::O1, Op2::Imm(1)));
            asm.push(Instr::Halt);
        });
        assert_eq!(cpu.stats().stall_count(StallCause::LoadUse), 0);
    }

    #[test]
    fn taken_branch_costs_more_than_fallthrough() {
        let taken = run_asm(|asm| {
            asm.push(Instr::cmp(regs::G0, Op2::Imm(0))); // equal
            asm.branch(ICond::Eq, "t");
            asm.push(Instr::Nop);
            asm.label("t");
            asm.push(Instr::Halt);
        })
        .0;
        let untaken = run_asm(|asm| {
            asm.push(Instr::cmp(regs::G0, Op2::Imm(0)));
            asm.branch(ICond::Ne, "t");
            asm.push(Instr::Nop);
            asm.label("t");
            asm.push(Instr::Halt);
        })
        .0;
        assert!(taken.stats().cycles > untaken.stats().cycles);
        assert_eq!(taken.stats().stall_count(StallCause::Branch), 1);
        assert_eq!(untaken.stats().stall_count(StallCause::Branch), 0);
    }

    #[test]
    fn muldiv_occupancy_charged() {
        let (cpu, _) = run_asm(|asm| {
            asm.push(Instr::mov_imm(regs::O0, 6));
            asm.push(Instr::alu(AluOp::Mulx, regs::O1, regs::O0, Op2::Imm(7)));
            asm.push(Instr::alu(AluOp::Sdivx, regs::O2, regs::O1, Op2::Imm(6)));
            asm.push(Instr::Halt);
        });
        assert_eq!(cpu.regs().read(regs::O1), 42);
        assert_eq!(cpu.regs().read(regs::O2), 7);
        let expected = u64::from(AluOp::Mulx.latency() - 1 + AluOp::Sdivx.latency() - 1);
        assert_eq!(cpu.stats().stall_count(StallCause::IntMulDiv), expected);
    }

    #[test]
    fn simcall_logs_o0() {
        let (cpu, _) = run_asm(|asm| {
            asm.push(Instr::mov_imm(regs::O0, 55));
            asm.push(Instr::SimCall { code: 0 });
            asm.push(Instr::Halt);
        });
        assert_eq!(cpu.simcall_log(), &[(0, 55)]);
    }

    #[test]
    fn cycle_accounting_is_exact_for_straightline_code() {
        // n ALU instructions + halt on a 1-cycle bus: exactly n + 1 cycles.
        let (cpu, _) = run_asm(|asm| {
            for _ in 0..10 {
                asm.push(Instr::alu(AluOp::Add, regs::O0, regs::O0, Op2::Imm(1)));
            }
            asm.push(Instr::Halt);
        });
        assert_eq!(cpu.stats().cycles, 11);
        assert_eq!(cpu.stats().cpi(), 1.0);
    }

    #[test]
    fn dyser_instr_without_accelerator_fails() {
        let mut asm = Assembler::new();
        asm.push(Instr::Dyser(DyserInstr::Init { config: dyser_isa::ConfigId::new(0) }));
        asm.push(Instr::Halt);
        let words = asm.assemble().unwrap();
        let mut bus = SimpleBus::new();
        bus.memory_mut().write_code(ENTRY, &words);
        let mut cpu = Pipeline::new(ENTRY);
        let err = cpu.run(&mut bus, &mut NullCoproc, 100).unwrap_err();
        assert!(matches!(err, CoreError::Coproc { .. }));
        assert!(cpu.halted(), "core halts on fatal errors");
    }

    #[test]
    fn illegal_instruction_faults() {
        let mut bus = SimpleBus::new();
        bus.memory_mut().write_u32(ENTRY, 0x0000_0000); // op=00, op2=0: illegal
        let mut cpu = Pipeline::new(ENTRY);
        let err = cpu.run(&mut bus, &mut NullCoproc, 10).unwrap_err();
        assert!(matches!(err, CoreError::Decode { pc: ENTRY, .. }));
    }

    #[test]
    fn icache_latency_charged() {
        let mut asm = Assembler::new();
        asm.push(Instr::Nop);
        asm.push(Instr::Halt);
        let words = asm.assemble().unwrap();
        let mut bus = SimpleBus::new();
        bus.fetch_latency = 3;
        bus.memory_mut().write_code(ENTRY, &words);
        let mut cpu = Pipeline::new(ENTRY);
        cpu.run(&mut bus, &mut NullCoproc, 100).unwrap();
        assert_eq!(cpu.stats().stall_count(StallCause::ICache), 2, "nop's extra fetch cycles");
    }
}
