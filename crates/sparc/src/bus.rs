//! The memory interface seen by the pipeline.
//!
//! [`Bus`] unifies the functional and timing views: every access returns
//! both the data and the number of cycles the (blocking) access takes.
//! The system crate implements it over the real cache hierarchy;
//! [`SimpleBus`] provides a fixed-latency implementation for unit tests.

use dyser_mem::Memory;

/// The pipeline's view of the memory system.
pub trait Bus {
    /// Fetches a 32-bit instruction word; returns `(word, latency_cycles)`.
    fn fetch_instr(&mut self, addr: u64) -> (u32, u64);

    /// Fetches an instruction the caller has proven resides on an
    /// instruction-cache line that the bus fetched earlier and cannot
    /// have evicted since; returns the latency. Must be state- and
    /// stats-equivalent to [`Bus::fetch_instr`] at the same address (the
    /// default simply delegates); implementations with a real hierarchy
    /// override it to skip the miss machinery.
    fn fetch_repeat(&mut self, addr: u64) -> u64 {
        self.fetch_instr(addr).1
    }

    /// Reads an instruction word with no timing side effects — the
    /// translation view used by the compiled backend to decode blocks
    /// ahead of execution.
    fn peek_instr(&self, addr: u64) -> u32;

    /// The write generation of the code page containing `addr` (see
    /// [`Memory::page_generation`]). Translated blocks snapshot this and
    /// are re-translated when it moves.
    fn code_page_generation(&self, addr: u64) -> u64;

    /// Loads `bytes` bytes (1, 4, or 8), optionally sign-extending;
    /// returns `(value, latency_cycles)`.
    fn load(&mut self, addr: u64, bytes: u64, signed: bool) -> (u64, u64);

    /// Stores the low `bytes` bytes of `value`; returns the latency.
    fn store(&mut self, addr: u64, bytes: u64, value: u64) -> u64;
}

/// Helper shared by `Bus` implementations: a sized, optionally
/// sign-extended read from a [`Memory`].
pub fn read_sized(mem: &Memory, addr: u64, bytes: u64, signed: bool) -> u64 {
    match (bytes, signed) {
        (8, _) => mem.read_u64(addr),
        (4, false) => u64::from(mem.read_u32(addr)),
        (4, true) => mem.read_u32(addr) as i32 as i64 as u64,
        (1, false) => u64::from(mem.read_u8(addr)),
        (1, true) => mem.read_u8(addr) as i8 as i64 as u64,
        _ => panic!("unsupported access width {bytes}"),
    }
}

/// Helper shared by `Bus` implementations: a sized write to a [`Memory`].
pub fn write_sized(mem: &mut Memory, addr: u64, bytes: u64, value: u64) {
    match bytes {
        8 => mem.write_u64(addr, value),
        4 => mem.write_u32(addr, value as u32),
        1 => mem.write_u8(addr, value as u8),
        _ => panic!("unsupported access width {bytes}"),
    }
}

/// A flat memory with fixed access latencies; used in unit tests and as
/// the "perfect cache" ablation substrate.
#[derive(Debug, Clone, Default)]
pub struct SimpleBus {
    memory: Memory,
    /// Latency of every instruction fetch.
    pub fetch_latency: u64,
    /// Latency of every data access.
    pub data_latency: u64,
}

impl SimpleBus {
    /// Creates a bus with 1-cycle accesses.
    pub fn new() -> Self {
        SimpleBus { memory: Memory::new(), fetch_latency: 1, data_latency: 1 }
    }

    /// The underlying functional memory.
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// Mutable access to the underlying functional memory.
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.memory
    }
}

impl Bus for SimpleBus {
    fn fetch_instr(&mut self, addr: u64) -> (u32, u64) {
        (self.memory.read_u32(addr), self.fetch_latency)
    }

    fn peek_instr(&self, addr: u64) -> u32 {
        self.memory.read_u32(addr)
    }

    fn code_page_generation(&self, addr: u64) -> u64 {
        self.memory.page_generation(addr)
    }

    fn load(&mut self, addr: u64, bytes: u64, signed: bool) -> (u64, u64) {
        (read_sized(&self.memory, addr, bytes, signed), self.data_latency)
    }

    fn store(&mut self, addr: u64, bytes: u64, value: u64) -> u64 {
        write_sized(&mut self.memory, addr, bytes, value);
        self.data_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sized_reads() {
        let mut mem = Memory::new();
        mem.write_u64(0, 0xFFFF_FFFF_8000_0001);
        assert_eq!(read_sized(&mem, 0, 8, false), 0xFFFF_FFFF_8000_0001);
        assert_eq!(read_sized(&mem, 4, 4, false), 0x8000_0001);
        assert_eq!(read_sized(&mem, 4, 4, true), 0x8000_0001u32 as i32 as i64 as u64);
        assert_eq!(read_sized(&mem, 4, 1, false), 0x80);
        assert_eq!(read_sized(&mem, 4, 1, true), 0x80u8 as i8 as i64 as u64);
    }

    #[test]
    fn sized_writes() {
        let mut mem = Memory::new();
        write_sized(&mut mem, 0, 8, 0x1122_3344_5566_7788);
        write_sized(&mut mem, 0, 1, 0xAA);
        assert_eq!(mem.read_u64(0), 0xAA22_3344_5566_7788);
        write_sized(&mut mem, 4, 4, 0xDEAD_BEEF);
        assert_eq!(mem.read_u32(4), 0xDEAD_BEEF);
    }

    #[test]
    fn simple_bus_roundtrip() {
        let mut bus = SimpleBus::new();
        let lat = bus.store(0x100, 8, 42);
        assert_eq!(lat, 1);
        let (v, lat) = bus.load(0x100, 8, false);
        assert_eq!((v, lat), (42, 1));
    }
}
