//! The coprocessor interface: how the pipeline talks to DySER.
//!
//! The prototype exposes the fabric at the decode/execute boundary of the
//! OpenSPARC pipeline; here that boundary is the [`Coproc`] trait. The
//! system crate implements it over the real fabric; [`NullCoproc`] stands
//! in when no accelerator is attached (the pure-baseline configuration of
//! experiment E10).

/// Errors a coprocessor operation can raise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoprocError {
    /// `dinit` named a configuration that is not in the program's table.
    UnknownConfig {
        /// The requested table index.
        config: usize,
    },
    /// A configuration failed to load into the fabric.
    LoadFailed {
        /// Human-readable cause.
        reason: String,
    },
    /// A DySER instruction executed with no accelerator attached.
    NoAccelerator,
}

impl std::fmt::Display for CoprocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoprocError::UnknownConfig { config } => {
                write!(f, "dinit references unknown configuration {config}")
            }
            CoprocError::LoadFailed { reason } => write!(f, "configuration load failed: {reason}"),
            CoprocError::NoAccelerator => write!(f, "DySER instruction with no accelerator"),
        }
    }
}

impl std::error::Error for CoprocError {}

/// The pipeline's view of the DySER accelerator.
pub trait Coproc {
    /// Tries to enqueue a value on input port `port`; `false` means the
    /// FIFO is full and the pipeline must stall and retry.
    fn cp_send(&mut self, port: usize, value: u64) -> bool;

    /// Tries to dequeue a value from output port `port`; `None` means no
    /// result is ready yet.
    fn cp_recv(&mut self, port: usize) -> Option<u64>;

    /// Begins loading configuration `config`; returns the number of stall
    /// cycles (zero if it is already the active configuration).
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration does not exist or cannot load.
    fn cp_init(&mut self, config: usize) -> Result<u64, CoprocError>;

    /// Number of values in flight inside the accelerator (`dfence` waits
    /// for zero).
    fn cp_in_flight(&self) -> usize;

    /// The scalar input ports behind vector input port `vp`.
    fn cp_vec_in(&self, vp: usize) -> &[usize];

    /// The scalar output ports behind vector output port `vp`.
    fn cp_vec_out(&self, vp: usize) -> &[usize];

    /// Pays `ticks` deferred accelerator cycles in one call.
    ///
    /// The compiled backend does not tick the accelerator in lockstep
    /// with the core; instead it calls this immediately before any other
    /// `cp_*` method so the accelerator observes exactly the same tick
    /// count it would under per-cycle interleaving (deferred ticks
    /// commute with core-only activity — nothing else touches the
    /// accelerator in between). Coprocessors with no internal clock keep
    /// the default no-op.
    fn cp_catch_up(&mut self, ticks: u64) {
        let _ = ticks;
    }
}

/// A coprocessor that is not there: every operation fails.
///
/// Baseline binaries contain no DySER instructions, so none of these
/// methods is ever called when simulating the unaccelerated system.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullCoproc;

impl Coproc for NullCoproc {
    fn cp_send(&mut self, _port: usize, _value: u64) -> bool {
        false
    }

    fn cp_recv(&mut self, _port: usize) -> Option<u64> {
        None
    }

    fn cp_init(&mut self, _config: usize) -> Result<u64, CoprocError> {
        Err(CoprocError::NoAccelerator)
    }

    fn cp_in_flight(&self) -> usize {
        0
    }

    fn cp_vec_in(&self, _vp: usize) -> &[usize] {
        &[]
    }

    fn cp_vec_out(&self, _vp: usize) -> &[usize] {
        &[]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_coproc_refuses_everything() {
        let mut c = NullCoproc;
        assert!(!c.cp_send(0, 1));
        assert_eq!(c.cp_recv(0), None);
        assert_eq!(c.cp_init(0), Err(CoprocError::NoAccelerator));
        assert_eq!(c.cp_in_flight(), 0);
        assert!(c.cp_vec_in(0).is_empty());
        assert!(c.cp_vec_out(0).is_empty());
    }

    #[test]
    fn error_display() {
        assert!(CoprocError::UnknownConfig { config: 3 }.to_string().contains('3'));
        assert!(!CoprocError::NoAccelerator.to_string().is_empty());
    }
}
