//! # dyser-sparc
//!
//! A cycle-level timing model of an OpenSPARC-T1-like core: in-order,
//! single-issue, with SPARC delay-slot semantics — the baseline processor
//! the DySER prototype integrates into.
//!
//! The model is a timed state machine rather than a stage-by-stage RTL
//! mirror: each [`Pipeline::tick`] advances exactly one cycle, charging
//! the stall sources that dominate an in-order scalar core (and that the
//! ISPASS 2015 evaluation measures):
//!
//! * instruction-cache and data-cache miss latency (blocking),
//! * load-use interlock (one bubble),
//! * taken-branch bubbles beyond the delay slot,
//! * long-latency integer multiply/divide and floating-point operations,
//! * DySER interface stalls: sends into a full port FIFO, receives from an
//!   empty one, configuration loads, and `dfence` drains.
//!
//! The core talks to memory through the [`Bus`] trait and to the DySER
//! fabric through the [`Coproc`] trait, so the pipeline is testable in
//! isolation (see [`SimpleBus`] and [`NullCoproc`]) and composable by the
//! system crate, which wires in the real cache hierarchy and fabric.
//!
//! ```
//! use dyser_sparc::{NullCoproc, Pipeline, SimpleBus};
//! use dyser_isa::{Assembler, Instr, AluOp, Op2, regs};
//!
//! let mut asm = Assembler::new();
//! asm.push(Instr::mov_imm(regs::O0, 40));
//! asm.push(Instr::alu(AluOp::Add, regs::O0, regs::O0, Op2::Imm(2)));
//! asm.push(Instr::Halt);
//! let words = asm.assemble()?;
//!
//! let mut bus = SimpleBus::new();
//! bus.memory_mut().write_code(0x1000, &words);
//! let mut cpu = Pipeline::new(0x1000);
//! cpu.run(&mut bus, &mut NullCoproc, 1_000)?;
//! assert_eq!(cpu.regs().read(regs::O0), 42);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```


#![warn(missing_docs)]
pub mod bus;
pub mod coproc;
pub mod pipeline;
pub mod regfile;
pub mod stats;
pub mod syscall;

pub use bus::{Bus, SimpleBus};
pub use coproc::{Coproc, NullCoproc};
pub use pipeline::{CoreError, Pipeline};
pub use regfile::{FRegFile, RegFile};
pub use stats::{CoreStats, CycleAccount, CycleBucket, StallCause};
pub use syscall::{ProxyKernel, StartupStack, SysOutcome, SyscallHandler};
