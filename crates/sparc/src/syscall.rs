//! FASE-style trap-and-emulate syscall layer.
//!
//! A `ta`-style [`Instr::Trap`](dyser_isa::Instr) freezes the core (see
//! [`Pipeline::pending_syscall`](crate::Pipeline::pending_syscall)); the
//! *harness* — not the self-ticking core — then services the call through
//! a [`SyscallHandler`] and resumes the core with
//! [`Pipeline::complete_syscall`](crate::Pipeline::complete_syscall).
//! Keeping the handler outside the core preserves the bit-identity
//! contract: every backend (interpreted, stepped, compiled, batched)
//! observes the trap at the same retired-instruction boundary, performs
//! the same memory effects, and charges the same deterministic service
//! latency, so stdout bytes, exit codes, and cycle counts are identical
//! across engines.
//!
//! The ABI is a minimal proxy-kernel surface (numbers in the SunOS
//! tradition): arguments travel in `%o0..%o5`, the result returns in
//! `%o0`, and errors return `-1` (`u64::MAX`) — there is no errno cell.
//!
//! | # | name | arguments | result |
//! |---|------|-----------|--------|
//! | 1 | `exit` | code | does not return |
//! | 3 | `read` | fd, buf, len | bytes read (0 at EOF), -1 bad fd |
//! | 4 | `write` | fd, buf, len | bytes written, -1 bad fd |
//! | 17 | `brk` | addr (0 queries) | new break, current break on refusal |
//! | 116 | `gettime` | — | virtual time in cycles |
//!
//! `gettime` reads the *virtual* clock — the core's own cycle counter —
//! so timing queries are bit-reproducible and independent of host time.

use dyser_mem::Memory;

/// `exit(code)` — terminate the program.
pub const SYS_EXIT: u16 = 1;
/// `read(fd, buf, len)` — read from captured stdin.
pub const SYS_READ: u16 = 3;
/// `write(fd, buf, len)` — write to captured stdout/stderr.
pub const SYS_WRITE: u16 = 4;
/// `brk(addr)` — move the program break (0 queries, shrink refused).
pub const SYS_BRK: u16 = 17;
/// `gettime()` — the virtual (cycle-derived) clock.
pub const SYS_GETTIME: u16 = 116;

/// The error result every failed call returns in `%o0`.
pub const SYS_ERR: u64 = u64::MAX;

/// Fixed service latency of any syscall, in cycles — the trap, the
/// privilege switch, and the handler dispatch.
pub const SYSCALL_BASE_COST: u64 = 40;

/// Deterministic service latency: a fixed base plus one cycle per eight
/// bytes moved between guest and harness memory. Identical across
/// backends by construction — it depends only on the call's arguments.
pub fn service_cost(bytes_moved: u64) -> u64 {
    SYSCALL_BASE_COST + (bytes_moved >> 3)
}

/// What servicing a syscall decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SysOutcome {
    /// Resume the core: `retval` goes to `%o0`, `stall` cycles of
    /// [`StallCause::Syscall`](crate::StallCause) service latency are
    /// charged before the next instruction issues.
    Done {
        /// Value returned in `%o0`.
        retval: u64,
        /// Service latency in cycles.
        stall: u64,
    },
    /// The program called `exit(code)`: halt the core.
    Exit {
        /// The exit code (low 8 bits are the process status).
        code: u64,
    },
    /// The trap number is not part of the ABI: a typed error, never a
    /// panic (the system maps it to `SysError::UnknownSyscall`).
    Unknown,
}

/// A harness-side syscall service routine.
///
/// `args` are the guest's `%o0..%o5` at the trap; `cycles` is the core's
/// cycle counter (the virtual clock); `mem` is the guest's functional
/// memory, accessed untimed (the deterministic [`service_cost`] stands in
/// for the data movement).
pub trait SyscallHandler {
    /// Services one trap.
    fn syscall(&mut self, code: u16, args: [u64; 6], cycles: u64, mem: &mut Memory) -> SysOutcome;
}

/// The proxy kernel: captured standard streams, a bump-only program
/// break, and the virtual clock.
///
/// All state is plain data — cloning a [`ProxyKernel`] clones the whole
/// OS state, which is what lets the batch runner replicate systems.
#[derive(Debug, Clone, Default)]
pub struct ProxyKernel {
    stdout: Vec<u8>,
    stderr: Vec<u8>,
    stdin: Vec<u8>,
    stdin_pos: usize,
    /// Current program break; 0 until the loader sets the heap base.
    brk: u64,
    /// Lowest address `brk` may hold (the loader's heap base).
    heap_base: u64,
    exit_code: Option<u64>,
}

impl ProxyKernel {
    /// A kernel with empty streams and an unset heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the heap base: the initial program break and the floor below
    /// which `brk` refuses to move.
    pub fn set_heap_base(&mut self, base: u64) {
        self.heap_base = base;
        self.brk = base;
    }

    /// Replaces captured stdin with `bytes` and rewinds the read cursor.
    pub fn set_stdin(&mut self, bytes: &[u8]) {
        self.stdin = bytes.to_vec();
        self.stdin_pos = 0;
    }

    /// Bytes the program has written to stdout so far.
    pub fn stdout(&self) -> &[u8] {
        &self.stdout
    }

    /// Bytes the program has written to stderr so far.
    pub fn stderr(&self) -> &[u8] {
        &self.stderr
    }

    /// The current program break.
    pub fn brk(&self) -> u64 {
        self.brk
    }

    /// The code passed to `exit`, once the program has exited.
    pub fn exit_code(&self) -> Option<u64> {
        self.exit_code
    }
}

impl SyscallHandler for ProxyKernel {
    fn syscall(&mut self, code: u16, args: [u64; 6], cycles: u64, mem: &mut Memory) -> SysOutcome {
        match code {
            SYS_EXIT => {
                self.exit_code = Some(args[0]);
                SysOutcome::Exit { code: args[0] }
            }
            SYS_READ => {
                let [fd, buf, len, ..] = args;
                if fd != 0 {
                    return SysOutcome::Done { retval: SYS_ERR, stall: service_cost(0) };
                }
                let remaining = self.stdin.len() - self.stdin_pos;
                let n = (len as usize).min(remaining);
                for i in 0..n {
                    mem.write_u8(buf + i as u64, self.stdin[self.stdin_pos + i]);
                }
                self.stdin_pos += n;
                SysOutcome::Done { retval: n as u64, stall: service_cost(n as u64) }
            }
            SYS_WRITE => {
                let [fd, buf, len, ..] = args;
                let sink = match fd {
                    1 => &mut self.stdout,
                    2 => &mut self.stderr,
                    _ => return SysOutcome::Done { retval: SYS_ERR, stall: service_cost(0) },
                };
                for i in 0..len {
                    sink.push(mem.read_u8(buf + i));
                }
                SysOutcome::Done { retval: len, stall: service_cost(len) }
            }
            SYS_BRK => {
                let addr = args[0];
                // Grow-only: a query (0), a shrink, or an address below
                // the heap base all leave the break where it is; the
                // returned break tells the program what happened.
                if addr >= self.brk.max(self.heap_base) {
                    self.brk = addr;
                }
                SysOutcome::Done { retval: self.brk, stall: service_cost(0) }
            }
            SYS_GETTIME => SysOutcome::Done { retval: cycles, stall: service_cost(0) },
            _ => SysOutcome::Unknown,
        }
    }
}

/// The startup image `write_startup_stack` lays out, with the register
/// seeds the loader must install.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StartupStack {
    /// Argument count, for `%o0`.
    pub argc: u64,
    /// Address of the argv pointer array, for `%o1`.
    pub argv: u64,
    /// Address of the envp pointer array, for `%o2`.
    pub envp: u64,
    /// Stack-pointer seed (`%sp`/`%o6`): the base of the image.
    pub sp: u64,
}

/// Writes the process-startup image at `base` and returns the pointers
/// the loader seeds into registers.
///
/// Layout (all cells 8 bytes, big-endian, strings NUL-terminated):
///
/// ```text
/// base + 0                argc
/// base + 8                argv[0] .. argv[argc-1], NULL
/// ...                     envp[0] .. envp[m-1], NULL
/// ...                     the string bytes themselves
/// ```
pub fn write_startup_stack(mem: &mut Memory, base: u64, argv: &[&str], envp: &[&str]) -> StartupStack {
    let argc = argv.len() as u64;
    mem.write_u64(base, argc);
    let argv_ptr = base + 8;
    let envp_ptr = argv_ptr + 8 * (argc + 1);
    let mut str_at = envp_ptr + 8 * (envp.len() as u64 + 1);
    let mut cell = argv_ptr;
    for (i, s) in argv.iter().chain(envp.iter()).enumerate() {
        // The NULL terminator between the two arrays.
        if i == argv.len() {
            mem.write_u64(cell, 0);
            cell += 8;
        }
        mem.write_u64(cell, str_at);
        cell += 8;
        mem.write_bytes(str_at, s.as_bytes());
        mem.write_u8(str_at + s.len() as u64, 0);
        str_at += s.len() as u64 + 1;
    }
    if argv.is_empty() {
        // The chain loop above never emitted the argv terminator.
        mem.write_u64(cell, 0);
        cell += 8;
    }
    mem.write_u64(cell, 0); // envp terminator
    StartupStack { argc, argv: argv_ptr, envp: envp_ptr, sp: base }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(k: &mut ProxyKernel, mem: &mut Memory, code: u16, args: [u64; 6]) -> SysOutcome {
        k.syscall(code, args, 0, mem)
    }

    #[test]
    fn write_captures_stdout_and_stderr() {
        let mut k = ProxyKernel::new();
        let mut mem = Memory::new();
        mem.write_bytes(0x100, b"hi!");
        let out = call(&mut k, &mut mem, SYS_WRITE, [1, 0x100, 3, 0, 0, 0]);
        assert_eq!(out, SysOutcome::Done { retval: 3, stall: service_cost(3) });
        let out = call(&mut k, &mut mem, SYS_WRITE, [2, 0x100, 2, 0, 0, 0]);
        assert_eq!(out, SysOutcome::Done { retval: 2, stall: service_cost(2) });
        assert_eq!(k.stdout(), b"hi!");
        assert_eq!(k.stderr(), b"hi");
    }

    #[test]
    fn write_bad_fd_errors() {
        let mut k = ProxyKernel::new();
        let mut mem = Memory::new();
        let out = call(&mut k, &mut mem, SYS_WRITE, [7, 0x100, 3, 0, 0, 0]);
        assert_eq!(out, SysOutcome::Done { retval: SYS_ERR, stall: service_cost(0) });
        assert!(k.stdout().is_empty());
    }

    #[test]
    fn read_drains_stdin_then_eof() {
        let mut k = ProxyKernel::new();
        k.set_stdin(b"abcde");
        let mut mem = Memory::new();
        let out = call(&mut k, &mut mem, SYS_READ, [0, 0x200, 3, 0, 0, 0]);
        assert_eq!(out, SysOutcome::Done { retval: 3, stall: service_cost(3) });
        assert_eq!(mem.read_bytes(0x200, 3), b"abc");
        let out = call(&mut k, &mut mem, SYS_READ, [0, 0x200, 99, 0, 0, 0]);
        assert_eq!(out, SysOutcome::Done { retval: 2, stall: service_cost(2) });
        let out = call(&mut k, &mut mem, SYS_READ, [0, 0x200, 1, 0, 0, 0]);
        assert_eq!(out, SysOutcome::Done { retval: 0, stall: service_cost(0) }, "EOF reads 0");
    }

    #[test]
    fn brk_grows_never_shrinks() {
        let mut k = ProxyKernel::new();
        k.set_heap_base(0x7000);
        let mut mem = Memory::new();
        assert_eq!(
            call(&mut k, &mut mem, SYS_BRK, [0, 0, 0, 0, 0, 0]),
            SysOutcome::Done { retval: 0x7000, stall: service_cost(0) },
            "query returns the current break",
        );
        assert_eq!(
            call(&mut k, &mut mem, SYS_BRK, [0x9000, 0, 0, 0, 0, 0]),
            SysOutcome::Done { retval: 0x9000, stall: service_cost(0) },
        );
        assert_eq!(
            call(&mut k, &mut mem, SYS_BRK, [0x8000, 0, 0, 0, 0, 0]),
            SysOutcome::Done { retval: 0x9000, stall: service_cost(0) },
            "shrink refused",
        );
    }

    #[test]
    fn gettime_reads_the_virtual_clock() {
        let mut k = ProxyKernel::new();
        let mut mem = Memory::new();
        let out = k.syscall(SYS_GETTIME, [0; 6], 12345, &mut mem);
        assert_eq!(out, SysOutcome::Done { retval: 12345, stall: service_cost(0) });
    }

    #[test]
    fn exit_records_code() {
        let mut k = ProxyKernel::new();
        let mut mem = Memory::new();
        let out = call(&mut k, &mut mem, SYS_EXIT, [42, 0, 0, 0, 0, 0]);
        assert_eq!(out, SysOutcome::Exit { code: 42 });
        assert_eq!(k.exit_code(), Some(42));
    }

    #[test]
    fn unknown_numbers_are_typed() {
        let mut k = ProxyKernel::new();
        let mut mem = Memory::new();
        assert_eq!(call(&mut k, &mut mem, 999, [0; 6]), SysOutcome::Unknown);
    }

    #[test]
    fn startup_stack_layout() {
        let mut mem = Memory::new();
        let s = write_startup_stack(&mut mem, 0x6000, &["prog", "x"], &["K=V"]);
        assert_eq!(s, StartupStack { argc: 2, argv: 0x6008, envp: 0x6020, sp: 0x6000 });
        assert_eq!(mem.read_u64(0x6000), 2, "argc");
        let a0 = mem.read_u64(s.argv);
        let a1 = mem.read_u64(s.argv + 8);
        assert_eq!(mem.read_u64(s.argv + 16), 0, "argv NULL terminator");
        assert_eq!(mem.read_bytes(a0, 5), b"prog\0");
        assert_eq!(mem.read_bytes(a1, 2), b"x\0");
        let e0 = mem.read_u64(s.envp);
        assert_eq!(mem.read_u64(s.envp + 8), 0, "envp NULL terminator");
        assert_eq!(mem.read_bytes(e0, 4), b"K=V\0");
        // The string pool starts right after the envp terminator.
        assert_eq!(a0, s.envp + 16);
    }

    #[test]
    fn startup_stack_empty_argv() {
        let mut mem = Memory::new();
        let s = write_startup_stack(&mut mem, 0x6000, &[], &[]);
        assert_eq!(s.argc, 0);
        assert_eq!(mem.read_u64(s.argv), 0);
        assert_eq!(mem.read_u64(s.envp), 0);
    }
}
