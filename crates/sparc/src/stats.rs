//! Core execution statistics: cycle counts, dynamic instruction counts by
//! class, and a stall breakdown by cause — the raw material of the
//! evaluation's instruction-reduction (E5) and overhead (E10) exhibits.

use dyser_isa::InstrClass;

/// The causes a cycle can stall for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallCause {
    /// Instruction-cache miss.
    ICache,
    /// Data-cache miss (blocking load/store).
    DCache,
    /// Load-use interlock.
    LoadUse,
    /// Taken-branch bubbles beyond the delay slot.
    Branch,
    /// Long-latency integer multiply/divide occupancy.
    IntMulDiv,
    /// Floating-point occupancy.
    Fp,
    /// DySER send into a full input FIFO.
    DyserSend,
    /// DySER receive from an empty output FIFO.
    DyserRecv,
    /// DySER configuration load.
    DyserConfig,
    /// `dfence` waiting for the fabric to drain.
    DyserFence,
}

impl StallCause {
    /// All causes, in reporting order.
    pub const ALL: [StallCause; 10] = [
        StallCause::ICache,
        StallCause::DCache,
        StallCause::LoadUse,
        StallCause::Branch,
        StallCause::IntMulDiv,
        StallCause::Fp,
        StallCause::DyserSend,
        StallCause::DyserRecv,
        StallCause::DyserConfig,
        StallCause::DyserFence,
    ];

    /// A short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            StallCause::ICache => "icache",
            StallCause::DCache => "dcache",
            StallCause::LoadUse => "load-use",
            StallCause::Branch => "branch",
            StallCause::IntMulDiv => "int-muldiv",
            StallCause::Fp => "fp",
            StallCause::DyserSend => "dyser-send",
            StallCause::DyserRecv => "dyser-recv",
            StallCause::DyserConfig => "dyser-config",
            StallCause::DyserFence => "dyser-fence",
        }
    }

    fn index(self) -> usize {
        match self {
            StallCause::ICache => 0,
            StallCause::DCache => 1,
            StallCause::LoadUse => 2,
            StallCause::Branch => 3,
            StallCause::IntMulDiv => 4,
            StallCause::Fp => 5,
            StallCause::DyserSend => 6,
            StallCause::DyserRecv => 7,
            StallCause::DyserConfig => 8,
            StallCause::DyserFence => 9,
        }
    }
}

/// Accumulated core statistics.
#[derive(Debug, Clone, Default)]
pub struct CoreStats {
    /// Total cycles elapsed.
    pub cycles: u64,
    /// Dynamic instructions retired.
    pub instructions: u64,
    /// Retired instructions by class (indexed like [`InstrClass::ALL`]).
    class_counts: [u64; 8],
    /// Stall cycles by cause (indexed like [`StallCause::ALL`]).
    stall_counts: [u64; 10],
}

impl CoreStats {
    /// Records one retired instruction of the given class.
    pub fn retire(&mut self, class: InstrClass) {
        self.instructions += 1;
        let idx = InstrClass::ALL.iter().position(|c| *c == class).expect("class in table");
        self.class_counts[idx] += 1;
    }

    /// Records `cycles` stall cycles attributed to `cause`.
    pub fn stall(&mut self, cause: StallCause, cycles: u64) {
        self.stall_counts[cause.index()] += cycles;
    }

    /// Retired instructions of one class.
    pub fn class_count(&self, class: InstrClass) -> u64 {
        let idx = InstrClass::ALL.iter().position(|c| *c == class).expect("class in table");
        self.class_counts[idx]
    }

    /// Stall cycles attributed to one cause.
    pub fn stall_count(&self, cause: StallCause) -> u64 {
        self.stall_counts[cause.index()]
    }

    /// Total stall cycles across all causes.
    pub fn total_stalls(&self) -> u64 {
        self.stall_counts.iter().sum()
    }

    /// Cycles per instruction (0 when nothing retired).
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retire_and_query() {
        let mut s = CoreStats::default();
        s.retire(InstrClass::IntAlu);
        s.retire(InstrClass::IntAlu);
        s.retire(InstrClass::Load);
        assert_eq!(s.instructions, 3);
        assert_eq!(s.class_count(InstrClass::IntAlu), 2);
        assert_eq!(s.class_count(InstrClass::Load), 1);
        assert_eq!(s.class_count(InstrClass::Fp), 0);
    }

    #[test]
    fn stalls_accumulate() {
        let mut s = CoreStats::default();
        s.stall(StallCause::DCache, 10);
        s.stall(StallCause::DCache, 5);
        s.stall(StallCause::Branch, 2);
        assert_eq!(s.stall_count(StallCause::DCache), 15);
        assert_eq!(s.total_stalls(), 17);
    }

    #[test]
    fn cpi() {
        let mut s = CoreStats::default();
        assert_eq!(s.cpi(), 0.0);
        s.cycles = 20;
        s.retire(InstrClass::IntAlu);
        s.retire(InstrClass::IntAlu);
        assert_eq!(s.cpi(), 10.0);
    }

    #[test]
    fn labels_unique() {
        let labels: std::collections::HashSet<_> =
            StallCause::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), StallCause::ALL.len());
    }
}
