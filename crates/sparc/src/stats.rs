//! Core execution statistics: cycle counts, dynamic instruction counts by
//! class, and a stall breakdown by cause — the raw material of the
//! evaluation's instruction-reduction (E5) and overhead (E10) exhibits.

use dyser_isa::InstrClass;

/// The causes a cycle can stall for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallCause {
    /// Instruction-cache miss.
    ICache,
    /// Data-cache miss (blocking load/store).
    DCache,
    /// Load-use interlock.
    LoadUse,
    /// Taken-branch bubbles beyond the delay slot.
    Branch,
    /// Long-latency integer multiply/divide occupancy.
    IntMulDiv,
    /// Floating-point occupancy.
    Fp,
    /// DySER send into a full input FIFO.
    DyserSend,
    /// DySER receive from an empty output FIFO.
    DyserRecv,
    /// DySER configuration load.
    DyserConfig,
    /// `dfence` waiting for the fabric to drain.
    DyserFence,
    /// Emulated-syscall service latency (`ta` trap to the proxy kernel).
    Syscall,
}

impl StallCause {
    /// All causes, in reporting order.
    pub const ALL: [StallCause; 11] = [
        StallCause::ICache,
        StallCause::DCache,
        StallCause::LoadUse,
        StallCause::Branch,
        StallCause::IntMulDiv,
        StallCause::Fp,
        StallCause::DyserSend,
        StallCause::DyserRecv,
        StallCause::DyserConfig,
        StallCause::DyserFence,
        StallCause::Syscall,
    ];

    /// A short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            StallCause::ICache => "icache",
            StallCause::DCache => "dcache",
            StallCause::LoadUse => "load-use",
            StallCause::Branch => "branch",
            StallCause::IntMulDiv => "int-muldiv",
            StallCause::Fp => "fp",
            StallCause::DyserSend => "dyser-send",
            StallCause::DyserRecv => "dyser-recv",
            StallCause::DyserConfig => "dyser-config",
            StallCause::DyserFence => "dyser-fence",
            StallCause::Syscall => "syscall",
        }
    }

    fn index(self) -> usize {
        match self {
            StallCause::ICache => 0,
            StallCause::DCache => 1,
            StallCause::LoadUse => 2,
            StallCause::Branch => 3,
            StallCause::IntMulDiv => 4,
            StallCause::Fp => 5,
            StallCause::DyserSend => 6,
            StallCause::DyserRecv => 7,
            StallCause::DyserConfig => 8,
            StallCause::DyserFence => 9,
            StallCause::Syscall => 10,
        }
    }
}

/// The exclusive buckets a simulated cycle is attributed to.
///
/// Every cycle of a run falls into exactly one bucket: the in-order core
/// retires exactly one instruction per non-stall cycle, and every stall
/// cycle carries exactly one [`StallCause`], so the buckets partition
/// `CoreStats::cycles` with no overlap and no remainder. The identity
/// `sum(buckets) == total_cycles` is enforced by a debug assertion in
/// [`CoreStats::cycle_account`] and by property tests in the bench crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CycleBucket {
    /// Issue cycles of ordinary (non-DySER) instructions.
    CoreCompute,
    /// Core pipeline interlocks: load-use, branch bubbles, and integer
    /// multiply/divide or floating-point unit occupancy.
    CoreInterlock,
    /// Cycles lost to the blocking memory hierarchy (L1I/L1D misses and
    /// everything below them — L2 and DRAM latency is charged here too).
    MemMiss,
    /// Issue cycles of DySER interface instructions (the core-side face
    /// of fabric compute: sends, receives, fences, config launches).
    DyserCompute,
    /// Stall cycles streaming a configuration bitstream into the fabric.
    ConfigLoad,
    /// Stall cycles blocked sending into a full fabric input FIFO.
    PortSend,
    /// Stall cycles blocked receiving from an empty fabric output FIFO.
    PortRecv,
    /// Stall cycles in `dfence`, waiting for the fabric to drain.
    Drain,
    /// Stall cycles servicing emulated syscalls (`ta` traps).
    Syscall,
}

impl CycleBucket {
    /// All buckets, in reporting order.
    pub const ALL: [CycleBucket; 9] = [
        CycleBucket::CoreCompute,
        CycleBucket::CoreInterlock,
        CycleBucket::MemMiss,
        CycleBucket::DyserCompute,
        CycleBucket::ConfigLoad,
        CycleBucket::PortSend,
        CycleBucket::PortRecv,
        CycleBucket::Drain,
        CycleBucket::Syscall,
    ];

    /// A short label for reports and machine-readable output.
    pub fn label(self) -> &'static str {
        match self {
            CycleBucket::CoreCompute => "core-compute",
            CycleBucket::CoreInterlock => "core-interlock",
            CycleBucket::MemMiss => "mem-miss",
            CycleBucket::DyserCompute => "dyser-compute",
            CycleBucket::ConfigLoad => "dyser-config",
            CycleBucket::PortSend => "port-send",
            CycleBucket::PortRecv => "port-recv",
            CycleBucket::Drain => "drain",
            CycleBucket::Syscall => "syscall",
        }
    }

    fn index(self) -> usize {
        match self {
            CycleBucket::CoreCompute => 0,
            CycleBucket::CoreInterlock => 1,
            CycleBucket::MemMiss => 2,
            CycleBucket::DyserCompute => 3,
            CycleBucket::ConfigLoad => 4,
            CycleBucket::PortSend => 5,
            CycleBucket::PortRecv => 6,
            CycleBucket::Drain => 7,
            CycleBucket::Syscall => 8,
        }
    }
}

/// An exclusive attribution of every cycle of a run to one
/// [`CycleBucket`], derived from the core's retire and stall counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleAccount {
    /// The total cycle count the buckets must sum to.
    pub total_cycles: u64,
    buckets: [u64; 9],
}

impl CycleAccount {
    /// Cycles attributed to one bucket.
    pub fn get(&self, bucket: CycleBucket) -> u64 {
        self.buckets[bucket.index()]
    }

    /// Sum over all buckets (equal to `total_cycles` by construction).
    pub fn sum(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Whether the attribution identity `sum(buckets) == total_cycles`
    /// holds. Always true for accounts produced by
    /// [`CoreStats::cycle_account`]; exposed so tests can assert it.
    pub fn balanced(&self) -> bool {
        self.sum() == self.total_cycles
    }

    /// Fraction of total cycles in one bucket (0 when no cycles elapsed).
    pub fn fraction(&self, bucket: CycleBucket) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.get(bucket) as f64 / self.total_cycles as f64
        }
    }

    /// Adds `cycles` to one bucket without touching `total_cycles`; the
    /// caller is responsible for keeping the identity balanced (used by
    /// aggregators that reconstruct accounts from saved bucket counts).
    pub fn add(&mut self, bucket: CycleBucket, cycles: u64) {
        self.buckets[bucket.index()] += cycles;
    }

    /// Adds another account into this one, bucket by bucket.
    pub fn merge(&mut self, other: &CycleAccount) {
        self.total_cycles += other.total_cycles;
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += src;
        }
    }
}

/// Accumulated core statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Total cycles elapsed.
    pub cycles: u64,
    /// Dynamic instructions retired.
    pub instructions: u64,
    /// Retired instructions by class (indexed like [`InstrClass::ALL`]).
    class_counts: [u64; 8],
    /// Stall cycles by cause (indexed like [`StallCause::ALL`]).
    stall_counts: [u64; 11],
}

impl CoreStats {
    /// Records one retired instruction of the given class.
    pub fn retire(&mut self, class: InstrClass) {
        self.instructions += 1;
        self.class_counts[class.index()] += 1;
    }

    /// Records `cycles` stall cycles attributed to `cause`.
    pub fn stall(&mut self, cause: StallCause, cycles: u64) {
        self.stall_counts[cause.index()] += cycles;
    }

    /// Retired instructions of one class.
    pub fn class_count(&self, class: InstrClass) -> u64 {
        self.class_counts[class.index()]
    }

    /// Stall cycles attributed to one cause.
    pub fn stall_count(&self, cause: StallCause) -> u64 {
        self.stall_counts[cause.index()]
    }

    /// Total stall cycles across all causes.
    pub fn total_stalls(&self) -> u64 {
        self.stall_counts.iter().sum()
    }

    /// Attributes every elapsed cycle to an exclusive [`CycleBucket`].
    ///
    /// The in-order pipeline increments `cycles` exactly once per tick
    /// and each tick either retires exactly one instruction or charges
    /// exactly one stall cycle to one [`StallCause`], so
    /// `cycles == instructions + total_stalls` holds by construction and
    /// the buckets below partition the run exactly.
    pub fn cycle_account(&self) -> CycleAccount {
        let mut acct = CycleAccount { total_cycles: self.cycles, buckets: [0; 9] };
        let dyser_issue = self.class_count(InstrClass::Dyser);
        acct.buckets[CycleBucket::CoreCompute.index()] =
            self.instructions - dyser_issue;
        acct.buckets[CycleBucket::DyserCompute.index()] = dyser_issue;
        acct.buckets[CycleBucket::CoreInterlock.index()] = self
            .stall_count(StallCause::LoadUse)
            + self.stall_count(StallCause::Branch)
            + self.stall_count(StallCause::IntMulDiv)
            + self.stall_count(StallCause::Fp);
        acct.buckets[CycleBucket::MemMiss.index()] =
            self.stall_count(StallCause::ICache) + self.stall_count(StallCause::DCache);
        acct.buckets[CycleBucket::ConfigLoad.index()] =
            self.stall_count(StallCause::DyserConfig);
        acct.buckets[CycleBucket::PortSend.index()] =
            self.stall_count(StallCause::DyserSend);
        acct.buckets[CycleBucket::PortRecv.index()] =
            self.stall_count(StallCause::DyserRecv);
        acct.buckets[CycleBucket::Drain.index()] =
            self.stall_count(StallCause::DyserFence);
        acct.buckets[CycleBucket::Syscall.index()] =
            self.stall_count(StallCause::Syscall);
        debug_assert!(
            acct.balanced(),
            "cycle attribution identity violated: {} buckets vs {} cycles",
            acct.sum(),
            acct.total_cycles,
        );
        acct
    }

    /// Cycles per instruction (0 when nothing retired).
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retire_and_query() {
        let mut s = CoreStats::default();
        s.retire(InstrClass::IntAlu);
        s.retire(InstrClass::IntAlu);
        s.retire(InstrClass::Load);
        assert_eq!(s.instructions, 3);
        assert_eq!(s.class_count(InstrClass::IntAlu), 2);
        assert_eq!(s.class_count(InstrClass::Load), 1);
        assert_eq!(s.class_count(InstrClass::Fp), 0);
    }

    #[test]
    fn stalls_accumulate() {
        let mut s = CoreStats::default();
        s.stall(StallCause::DCache, 10);
        s.stall(StallCause::DCache, 5);
        s.stall(StallCause::Branch, 2);
        assert_eq!(s.stall_count(StallCause::DCache), 15);
        assert_eq!(s.total_stalls(), 17);
    }

    #[test]
    fn cpi() {
        let mut s = CoreStats::default();
        assert_eq!(s.cpi(), 0.0);
        s.cycles = 20;
        s.retire(InstrClass::IntAlu);
        s.retire(InstrClass::IntAlu);
        assert_eq!(s.cpi(), 10.0);
    }

    #[test]
    fn labels_unique() {
        let labels: std::collections::HashSet<_> =
            StallCause::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), StallCause::ALL.len());
    }

    #[test]
    fn bucket_labels_unique() {
        let labels: std::collections::HashSet<_> =
            CycleBucket::ALL.iter().map(|b| b.label()).collect();
        assert_eq!(labels.len(), CycleBucket::ALL.len());
    }

    #[test]
    fn cycle_account_partitions_exactly() {
        let mut s = CoreStats::default();
        s.retire(InstrClass::IntAlu);
        s.retire(InstrClass::Load);
        s.retire(InstrClass::Dyser);
        s.stall(StallCause::DCache, 7);
        s.stall(StallCause::LoadUse, 1);
        s.stall(StallCause::DyserRecv, 4);
        s.cycles = s.instructions + s.total_stalls();
        let acct = s.cycle_account();
        assert!(acct.balanced());
        assert_eq!(acct.get(CycleBucket::CoreCompute), 2);
        assert_eq!(acct.get(CycleBucket::DyserCompute), 1);
        assert_eq!(acct.get(CycleBucket::MemMiss), 7);
        assert_eq!(acct.get(CycleBucket::CoreInterlock), 1);
        assert_eq!(acct.get(CycleBucket::PortRecv), 4);
        assert_eq!(acct.sum(), 15);
        assert!((acct.fraction(CycleBucket::MemMiss) - 7.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn cycle_account_merge() {
        let mut a = CycleAccount::default();
        let mut s = CoreStats::default();
        s.retire(InstrClass::IntAlu);
        s.stall(StallCause::Branch, 2);
        s.cycles = 3;
        a.merge(&s.cycle_account());
        a.merge(&s.cycle_account());
        assert_eq!(a.total_cycles, 6);
        assert_eq!(a.get(CycleBucket::CoreCompute), 2);
        assert_eq!(a.get(CycleBucket::CoreInterlock), 4);
        assert!(a.balanced());
    }
}
