//! Golden-stats regression tests for the cycle engine.
//!
//! These pin the *exact* `FabricStats` counters produced by fixed
//! configurations under fixed input schedules. The golden values were
//! captured from the reference engine (the straightforward per-cycle
//! implementation of `Fabric::tick`); any rewrite of the engine — such as
//! the precomputed-routing-table fast path — must reproduce them bit for
//! bit, because every experiment's cycle counts and activity factors (and
//! therefore the energy model) derive from these counters.
//!
//! Scenario 1 is a hand-authored manual configuration chosen to exercise
//! every phase of the tick: external injection on north and west edges, a
//! four-hop mesh route, a fan-out of two from one FU result, an integer FU,
//! a floating-point FU with a configured constant, an FU whose result is
//! deliberately unconsumed (the `dropped_results` path), and drains on
//! south and east edges. Scenario 2 is a builder-produced dataflow graph
//! driven at full pipeline occupancy.

use dyser_fabric::{
    ConfigBuilder, Fabric, FabricConfig, FabricGeometry, FabricStats, FuConfig, FuId, FuOp,
    InDir, OperandSrc, OutDir, SwitchId,
};

fn sw(row: usize, col: usize) -> SwitchId {
    SwitchId { row, col }
}

/// A 2x2 manual configuration touching every engine phase (see module doc).
fn manual_config() -> FabricConfig {
    let geom = FabricGeometry::new(2, 2);
    let mut cfg = FabricConfig::empty(geom);
    cfg.set_name("stats_regression::manual");

    // FU (0,0): integer add of input ports 0 and 1.
    cfg.switch_mut(sw(0, 0)).set_source(OutDir::FuOp0, InDir::ExtIn);
    cfg.switch_mut(sw(0, 1)).set_source(OutDir::FuOp1, InDir::ExtIn);
    cfg.set_fu(
        FuId { row: 0, col: 0 },
        FuConfig {
            op: FuOp::IAdd,
            operands: [OperandSrc::Switch, OperandSrc::Switch, OperandSrc::None],
        },
    );
    // Fan the IAdd result out twice from its output switch (1,1): south to
    // output port 1 and east to output port 3.
    cfg.switch_mut(sw(1, 1)).set_source(OutDir::South, InDir::FuOut);
    cfg.switch_mut(sw(1, 1)).set_source(OutDir::East, InDir::FuOut);
    cfg.switch_mut(sw(2, 1)).set_source(OutDir::ExtOut, InDir::North);
    cfg.switch_mut(sw(1, 2)).set_source(OutDir::ExtOut, InDir::West);

    // FU (0,1): floating-point add of input port 1 (shared injection with
    // the IAdd's second operand — a same-line fanout) and a constant.
    cfg.switch_mut(sw(0, 1)).set_source(OutDir::FuOp0, InDir::ExtIn);
    cfg.set_fu(
        FuId { row: 0, col: 1 },
        FuConfig {
            op: FuOp::FAdd,
            operands: [
                OperandSrc::Switch,
                OperandSrc::Const(2.5f64.to_bits()),
                OperandSrc::None,
            ],
        },
    );
    // Route the FAdd result north-then-out to output port 4.
    cfg.switch_mut(sw(1, 2)).set_source(OutDir::North, InDir::FuOut);
    cfg.switch_mut(sw(0, 2)).set_source(OutDir::ExtOut, InDir::South);

    // FU (1,0): integer multiply of input port 3 by a constant, whose
    // result is deliberately NOT consumed by any route — every fire must
    // count one dropped result.
    cfg.switch_mut(sw(1, 0)).set_source(OutDir::FuOp0, InDir::ExtIn);
    cfg.set_fu(
        FuId { row: 1, col: 0 },
        FuConfig {
            op: FuOp::IMul,
            operands: [OperandSrc::Switch, OperandSrc::Const(3), OperandSrc::None],
        },
    );

    // A four-hop pure-mesh route: input port 2 at (0,2) travels
    // west, south, west, south and drains at output port 0.
    cfg.switch_mut(sw(0, 2)).set_source(OutDir::West, InDir::ExtIn);
    cfg.switch_mut(sw(0, 1)).set_source(OutDir::South, InDir::East);
    cfg.switch_mut(sw(1, 1)).set_source(OutDir::West, InDir::North);
    cfg.switch_mut(sw(1, 0)).set_source(OutDir::South, InDir::East);
    cfg.switch_mut(sw(2, 0)).set_source(OutDir::ExtOut, InDir::North);

    cfg.validate().expect("manual regression config is structurally valid");
    cfg
}

/// Drives the manual configuration on a fixed schedule and returns stats.
fn run_manual() -> FabricStats {
    let geom = FabricGeometry::new(2, 2);
    let mut fabric = Fabric::universal(geom);
    fabric.load_config(&manual_config()).expect("manual config loads");

    // Fixed schedule: offer one value per port per iteration for 8
    // iterations, tick 40 more cycles to drain, collecting all outputs.
    let mut received = 0u64;
    for i in 0..48u64 {
        if i < 8 {
            fabric.try_send(0, 100 + i);
            fabric.try_send(1, (i as f64).to_bits());
            fabric.try_send(2, 7000 + i);
            fabric.try_send(3, 9000 + i);
        }
        fabric.tick();
        for port in [0usize, 1, 3, 4] {
            while fabric.try_recv(port).is_some() {
                received += 1;
            }
        }
    }
    // 8 mesh pass-throughs + 8 IAdd results x 2 fanout + 8 FAdd results.
    assert_eq!(received, 32, "all scheduled values must drain");
    *fabric.stats()
}

/// Drives a builder-produced DFG at full occupancy and returns stats.
fn run_builder_dfg() -> FabricStats {
    let geom = FabricGeometry::new(4, 4);
    let mut b = ConfigBuilder::new(geom);
    let x = b.input_value(0);
    let y = b.input_value(1);
    let z = b.input_value(2);
    let sum = b.op(FuOp::IAdd, &[x, y]);
    let sq = b.op(FuOp::IMul, &[sum, sum]);
    let out = b.op(FuOp::IMax, &[sq, z]);
    b.output_value(out, 0);
    let config = b.build().expect("DFG routes on 4x4");

    let mut fabric = Fabric::universal(geom);
    fabric.load_config(&config).expect("built config loads");

    let mut received = 0u64;
    let mut sent = 0u64;
    for _ in 0..400u64 {
        if sent < 32 && (0..3).all(|p| fabric.input_free(p) > 0) {
            fabric.try_send(0, sent);
            fabric.try_send(1, sent ^ 0x5555);
            fabric.try_send(2, 1 << (sent % 60));
            sent += 1;
        }
        fabric.tick();
        while fabric.try_recv(0).is_some() {
            received += 1;
        }
        if received == 32 {
            break;
        }
    }
    assert_eq!(received, 32, "all invocations must complete");
    *fabric.stats()
}

#[test]
fn manual_config_stats_are_golden() {
    let s = run_manual();
    let golden = FabricStats {
        cycles: 48,
        active_cycles: 15,
        int_fu_fires: 16,
        fp_fu_fires: 8,
        fire_cycles: 8,
        switch_hops: 120,
        fanout_copies: 16,
        port_in: 32,
        port_out: 32,
        configs_loaded: 1,
        config_bits: 299,
        dropped_results: 8,
    };
    assert_eq!(s, golden, "manual-config counters changed: {s:#?}");
}

#[test]
fn builder_dfg_stats_are_golden() {
    let s = run_builder_dfg();
    let golden = FabricStats {
        cycles: 82,
        active_cycles: 82,
        int_fu_fires: 96,
        fp_fu_fires: 0,
        fire_cycles: 57,
        switch_hops: 544,
        fanout_copies: 32,
        port_in: 96,
        port_out: 32,
        configs_loaded: 1,
        config_bits: 603,
        dropped_results: 0,
    };
    assert_eq!(s, golden, "builder-DFG counters changed: {s:#?}");
}
