//! End-to-end property test: any random dataflow graph that the builder
//! can place and route must, when executed on the cycle-level fabric,
//! produce exactly the values a software interpretation of the graph
//! produces — for every invocation in a pipelined stream.

use dyser_fabric::{ConfigBuilder, Fabric, FabricGeometry, FuOp, ValueId};
use proptest::prelude::*;

/// Integer operations safe for randomized comparison (no FP rounding).
const INT_OPS: [FuOp; 14] = [
    FuOp::IAdd,
    FuOp::ISub,
    FuOp::IMul,
    FuOp::IAnd,
    FuOp::IOr,
    FuOp::IXor,
    FuOp::IShl,
    FuOp::IShrL,
    FuOp::IMax,
    FuOp::IMin,
    FuOp::ICmpEq,
    FuOp::ICmpSLt,
    FuOp::ICmpULt,
    FuOp::Select,
];

#[derive(Debug, Clone)]
struct RandomDfg {
    inputs: usize,
    /// (op, arg indices into the node list)
    ops: Vec<(FuOp, Vec<usize>)>,
}

fn arb_dfg() -> impl Strategy<Value = RandomDfg> {
    (1usize..=4, 1usize..=6).prop_flat_map(|(inputs, n_ops)| {
        let mut op_strategies: Vec<BoxedStrategy<(FuOp, Vec<usize>)>> = Vec::new();
        for i in 0..n_ops {
            let avail = inputs + i; // nodes created before this op
            let st = (0..INT_OPS.len(), proptest::collection::vec(0..avail, 3))
                .prop_map(move |(op_idx, args)| {
                    let op = INT_OPS[op_idx];
                    (op, args[..op.arity()].to_vec())
                })
                .boxed();
            op_strategies.push(st);
        }
        op_strategies.prop_map(move |ops| RandomDfg { inputs, ops })
    })
}

fn interpret(dfg: &RandomDfg, input_vals: &[u64]) -> u64 {
    let mut vals: Vec<u64> = input_vals[..dfg.inputs].to_vec();
    for (op, args) in &dfg.ops {
        let get = |k: usize| args.get(k).map(|&a| vals[a]).unwrap_or(0);
        vals.push(op.eval(get(0), get(1), get(2)));
    }
    *vals.last().expect("at least one op")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fabric_matches_interpreter(dfg in arb_dfg(), raw_inputs in proptest::collection::vec(any::<u64>(), 12)) {
        let geom = FabricGeometry::new(6, 6);
        let mut b = ConfigBuilder::with_kinds(
            geom,
            vec![dyser_fabric::FuKind::Universal; geom.fu_count()],
        );
        let input_ids: Vec<ValueId> = (0..dfg.inputs).map(|p| b.input_value(p)).collect();
        let mut ids: Vec<ValueId> = input_ids.clone();
        for (op, args) in &dfg.ops {
            let arg_ids: Vec<ValueId> = args.iter().map(|&a| ids[a]).collect();
            ids.push(b.op(*op, &arg_ids));
        }
        let result = *ids.last().unwrap();
        b.output_value(result, 0);

        // Some random graphs exhaust routing resources; that is a capacity
        // outcome, not a correctness failure.
        let Ok(config) = b.build() else { return Ok(()) };

        let mut fabric = Fabric::universal(geom);
        fabric.load_config(&config).expect("built configs always load");

        // Drive three pipelined invocations with different inputs.
        let invocations: Vec<Vec<u64>> = (0..3)
            .map(|inv| (0..dfg.inputs).map(|i| raw_inputs[(inv * 4 + i) % raw_inputs.len()]).collect())
            .collect();

        let mut outputs = Vec::new();
        let mut send_cursor = 0usize;
        for _ in 0..5000 {
            // Start the next invocation only when every port has FIFO room,
            // so a whole operand set is never sent partially.
            if send_cursor < invocations.len()
                && (0..dfg.inputs).all(|p| fabric.input_free(p) > 0)
            {
                for (p, v) in invocations[send_cursor].iter().enumerate() {
                    prop_assert!(fabric.try_send(p, *v), "space was checked");
                }
                send_cursor += 1;
            }
            fabric.tick();
            while let Some(v) = fabric.try_recv(0) {
                outputs.push(v);
            }
            if outputs.len() == invocations.len() {
                break;
            }
        }

        prop_assert_eq!(outputs.len(), invocations.len(), "all invocations must complete");
        for (inv, out) in invocations.iter().zip(&outputs) {
            prop_assert_eq!(*out, interpret(&dfg, inv));
        }
    }
}
