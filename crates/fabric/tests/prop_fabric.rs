//! End-to-end randomized test: any random dataflow graph that the builder
//! can place and route must, when executed on the cycle-level fabric,
//! produce exactly the values a software interpretation of the graph
//! produces — for every invocation in a pipelined stream. Seeded with the
//! in-workspace PRNG so the case set is identical on every run.

use dyser_fabric::{ConfigBuilder, Fabric, FabricGeometry, FuOp, ValueId};
use dyser_rng::Rng64;

/// Integer operations safe for randomized comparison (no FP rounding).
const INT_OPS: [FuOp; 14] = [
    FuOp::IAdd,
    FuOp::ISub,
    FuOp::IMul,
    FuOp::IAnd,
    FuOp::IOr,
    FuOp::IXor,
    FuOp::IShl,
    FuOp::IShrL,
    FuOp::IMax,
    FuOp::IMin,
    FuOp::ICmpEq,
    FuOp::ICmpSLt,
    FuOp::ICmpULt,
    FuOp::Select,
];

#[derive(Debug, Clone)]
struct RandomDfg {
    inputs: usize,
    /// (op, arg indices into the node list)
    ops: Vec<(FuOp, Vec<usize>)>,
}

fn rand_dfg(rng: &mut Rng64) -> RandomDfg {
    let inputs = rng.gen_range(1usize..5);
    let n_ops = rng.gen_range(1usize..7);
    let mut ops = Vec::with_capacity(n_ops);
    for i in 0..n_ops {
        let avail = inputs + i; // nodes created before this op
        let op = INT_OPS[rng.gen_range(0..INT_OPS.len())];
        let args: Vec<usize> = (0..op.arity()).map(|_| rng.gen_range(0..avail)).collect();
        ops.push((op, args));
    }
    RandomDfg { inputs, ops }
}

fn interpret(dfg: &RandomDfg, input_vals: &[u64]) -> u64 {
    let mut vals: Vec<u64> = input_vals[..dfg.inputs].to_vec();
    for (op, args) in &dfg.ops {
        let get = |k: usize| args.get(k).map(|&a| vals[a]).unwrap_or(0);
        vals.push(op.eval(get(0), get(1), get(2)));
    }
    *vals.last().expect("at least one op")
}

#[test]
fn fabric_matches_interpreter() {
    let mut rng = Rng64::seed_from_u64(0xFAB_0001);
    for _ in 0..64 {
        let dfg = rand_dfg(&mut rng);
        let raw_inputs: Vec<u64> = (0..12).map(|_| rng.next_u64()).collect();

        let geom = FabricGeometry::new(6, 6);
        let mut b = ConfigBuilder::with_kinds(
            geom,
            vec![dyser_fabric::FuKind::Universal; geom.fu_count()],
        )
        .expect("kinds built from geometry");
        let input_ids: Vec<ValueId> = (0..dfg.inputs).map(|p| b.input_value(p)).collect();
        let mut ids: Vec<ValueId> = input_ids.clone();
        for (op, args) in &dfg.ops {
            let arg_ids: Vec<ValueId> = args.iter().map(|&a| ids[a]).collect();
            ids.push(b.op(*op, &arg_ids));
        }
        let result = *ids.last().unwrap();
        b.output_value(result, 0);

        // Some random graphs exhaust routing resources; that is a capacity
        // outcome, not a correctness failure.
        let Ok(config) = b.build() else { continue };

        let mut fabric = Fabric::universal(geom);
        fabric.load_config(&config).expect("built configs always load");

        // Drive three pipelined invocations with different inputs.
        let invocations: Vec<Vec<u64>> = (0..3)
            .map(|inv| {
                (0..dfg.inputs).map(|i| raw_inputs[(inv * 4 + i) % raw_inputs.len()]).collect()
            })
            .collect();

        let mut outputs = Vec::new();
        let mut send_cursor = 0usize;
        for _ in 0..5000 {
            // Start the next invocation only when every port has FIFO room,
            // so a whole operand set is never sent partially.
            if send_cursor < invocations.len() && (0..dfg.inputs).all(|p| fabric.input_free(p) > 0)
            {
                for (p, v) in invocations[send_cursor].iter().enumerate() {
                    assert!(fabric.try_send(p, *v), "space was checked");
                }
                send_cursor += 1;
            }
            fabric.tick();
            while let Some(v) = fabric.try_recv(0) {
                outputs.push(v);
            }
            if outputs.len() == invocations.len() {
                break;
            }
        }

        assert_eq!(outputs.len(), invocations.len(), "all invocations must complete");
        for (inv, out) in invocations.iter().zip(&outputs) {
            assert_eq!(*out, interpret(&dfg, inv));
        }
    }
}
