//! Fabric configurations: the "bitstream" that turns the grid into one
//! compound functional unit.
//!
//! A configuration assigns each switch-output multiplexer a source
//! direction and each FU an operation with operand bindings. The model
//! validates structural legality (links exist, arities match, routes are
//! acyclic) and computes the configuration frame size, from which the
//! configuration-load latency is derived — the overhead the paper's
//! invocation-count experiment (E7) amortises.

use std::collections::HashMap;
use std::fmt;

use crate::geom::{FabricGeometry, FuId, SwitchId};
use crate::op::{FuKind, FuOp};

/// A switch input line: where a value arrives from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum InDir {
    /// From the north neighbour switch.
    North,
    /// From the south neighbour switch.
    South,
    /// From the east neighbour switch.
    East,
    /// From the west neighbour switch.
    West,
    /// From the north-west FU's result.
    FuOut,
    /// From this switch's external input port.
    ExtIn,
}

impl InDir {
    /// All input directions.
    pub const ALL: [InDir; 6] =
        [InDir::North, InDir::South, InDir::East, InDir::West, InDir::FuOut, InDir::ExtIn];

    /// Number of distinct input lines per switch.
    pub const COUNT: usize = 6;

    /// Index used for flat storage.
    pub const fn index(self) -> usize {
        match self {
            InDir::North => 0,
            InDir::South => 1,
            InDir::East => 2,
            InDir::West => 3,
            InDir::FuOut => 4,
            InDir::ExtIn => 5,
        }
    }
}

/// A switch output line: where a value is driven to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OutDir {
    /// To the north neighbour switch.
    North,
    /// To the south neighbour switch.
    South,
    /// To the east neighbour switch.
    East,
    /// To the west neighbour switch.
    West,
    /// To operand 0 of the south-east FU.
    FuOp0,
    /// To operand 1 of the south-west FU.
    FuOp1,
    /// To operand 2 (predicate) of the north-east FU.
    FuOp2,
    /// To this switch's external output port.
    ExtOut,
}

impl OutDir {
    /// All output directions.
    pub const ALL: [OutDir; 8] = [
        OutDir::North,
        OutDir::South,
        OutDir::East,
        OutDir::West,
        OutDir::FuOp0,
        OutDir::FuOp1,
        OutDir::FuOp2,
        OutDir::ExtOut,
    ];

    /// Index used for flat storage.
    pub fn index(self) -> usize {
        match self {
            OutDir::North => 0,
            OutDir::South => 1,
            OutDir::East => 2,
            OutDir::West => 3,
            OutDir::FuOp0 => 4,
            OutDir::FuOp1 => 5,
            OutDir::FuOp2 => 6,
            OutDir::ExtOut => 7,
        }
    }
}

/// Topology helpers tying directions to neighbours and FUs.
pub(crate) mod topo {
    use super::*;

    /// The neighbour switch reached by `d`, if any (N/S/E/W only).
    pub fn neighbor(geom: &FabricGeometry, sw: SwitchId, d: OutDir) -> Option<SwitchId> {
        let (r, c) = (sw.row as isize, sw.col as isize);
        let (nr, nc) = match d {
            OutDir::North => (r - 1, c),
            OutDir::South => (r + 1, c),
            OutDir::East => (r, c + 1),
            OutDir::West => (r, c - 1),
            _ => return None,
        };
        if nr < 0 || nc < 0 {
            return None;
        }
        let n = SwitchId { row: nr as usize, col: nc as usize };
        geom.switch_valid(n).then_some(n)
    }

    /// The input line on the receiving switch when sending in direction `d`.
    pub fn mirror(d: OutDir) -> InDir {
        match d {
            OutDir::North => InDir::South,
            OutDir::South => InDir::North,
            OutDir::East => InDir::West,
            OutDir::West => InDir::East,
            _ => unreachable!("only mesh directions mirror"),
        }
    }

    /// The FU (and operand slot) driven by output `d` of switch `sw`.
    ///
    /// Operand 0 comes from the FU's north-west switch, operand 1 from its
    /// north-east switch, operand 2 from its south-west switch.
    pub fn fu_operand_target(
        geom: &FabricGeometry,
        sw: SwitchId,
        d: OutDir,
    ) -> Option<(FuId, usize)> {
        let (r, c) = (sw.row as isize, sw.col as isize);
        let (fr, fc, slot) = match d {
            OutDir::FuOp0 => (r, c, 0),
            OutDir::FuOp1 => (r, c - 1, 1),
            OutDir::FuOp2 => (r - 1, c, 2),
            _ => return None,
        };
        if fr < 0 || fc < 0 {
            return None;
        }
        let fu = FuId { row: fr as usize, col: fc as usize };
        geom.fu_valid(fu).then_some((fu, slot))
    }

    /// The switch that delivers operand `slot` to `fu`.
    pub fn fu_operand_switch(fu: FuId, slot: usize) -> (SwitchId, OutDir) {
        match slot {
            0 => (SwitchId { row: fu.row, col: fu.col }, OutDir::FuOp0),
            1 => (SwitchId { row: fu.row, col: fu.col + 1 }, OutDir::FuOp1),
            2 => (SwitchId { row: fu.row + 1, col: fu.col }, OutDir::FuOp2),
            _ => panic!("operand slot {slot} out of range"),
        }
    }

    /// The switch that receives `fu`'s result (its south-east switch).
    pub fn fu_output_switch(fu: FuId) -> SwitchId {
        SwitchId { row: fu.row + 1, col: fu.col + 1 }
    }

    /// The FU whose output feeds switch `sw`'s `FuOut` line, if any.
    pub fn fu_feeding(geom: &FabricGeometry, sw: SwitchId) -> Option<FuId> {
        if sw.row == 0 || sw.col == 0 {
            return None;
        }
        let fu = FuId { row: sw.row - 1, col: sw.col - 1 };
        geom.fu_valid(fu).then_some(fu)
    }
}

/// The per-switch output multiplexer settings.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SwitchConfig {
    sources: [Option<InDir>; 8],
}

impl SwitchConfig {
    /// The configured source of output `d`, if any.
    pub fn source(&self, d: OutDir) -> Option<InDir> {
        self.sources[d.index()]
    }

    /// Sets the source of output `d`.
    pub fn set_source(&mut self, d: OutDir, src: InDir) {
        self.sources[d.index()] = Some(src);
    }

    /// Clears the source of output `d`.
    pub fn clear_source(&mut self, d: OutDir) {
        self.sources[d.index()] = None;
    }

    /// Iterates over configured `(output, source)` pairs.
    pub fn routes(&self) -> impl Iterator<Item = (OutDir, InDir)> + '_ {
        OutDir::ALL.into_iter().filter_map(|d| self.sources[d.index()].map(|s| (d, s)))
    }

    /// Whether no output is configured.
    pub fn is_empty(&self) -> bool {
        self.sources.iter().all(Option::is_none)
    }
}

/// The source of one FU operand slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OperandSrc {
    /// The slot is unused.
    None,
    /// Delivered by the slot's dedicated switch link.
    Switch,
    /// A configuration-time constant (always available; never consumes).
    Const(u64),
}

/// The configuration of one FU site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuConfig {
    /// The operation this site performs.
    pub op: FuOp,
    /// Sources of the three operand slots.
    pub operands: [OperandSrc; 3],
}

/// Errors detected when validating or loading a configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The configuration was built for a different geometry.
    GeometryMismatch {
        /// Geometry the configuration was built for.
        config: FabricGeometry,
        /// Geometry of the fabric it was loaded into.
        fabric: FabricGeometry,
    },
    /// A switch output is configured but has no physical destination.
    DanglingOutput {
        /// The switch.
        switch: SwitchId,
        /// The configured output.
        out: OutDir,
    },
    /// A switch output sources from a line that does not physically exist.
    MissingInput {
        /// The switch.
        switch: SwitchId,
        /// The configured source line.
        source: InDir,
    },
    /// An FU operand slot expects a switch value but no switch drives it.
    UndrivenOperand {
        /// The FU.
        fu: FuId,
        /// The operand slot.
        slot: usize,
    },
    /// A switch drives an FU operand slot the FU does not use.
    UnusedDrive {
        /// The FU.
        fu: FuId,
        /// The operand slot.
        slot: usize,
    },
    /// An FU's operand bindings do not match its operation's arity.
    ArityMismatch {
        /// The FU.
        fu: FuId,
        /// Its operation.
        op: FuOp,
    },
    /// The FU site's hardware kind cannot execute the configured operation.
    UnsupportedOp {
        /// The FU.
        fu: FuId,
        /// Its hardware kind.
        kind: FuKind,
        /// The configured operation.
        op: FuOp,
    },
    /// The switch routes contain a cycle.
    RoutingCycle {
        /// A switch on the cycle.
        switch: SwitchId,
    },
    /// A vector port maps to a scalar port that does not exist.
    BadVectorPort {
        /// The vector port index.
        vport: usize,
        /// The offending scalar port.
        port: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::GeometryMismatch { config, fabric } => {
                write!(f, "configuration is for a {config} fabric, not {fabric}")
            }
            ConfigError::DanglingOutput { switch, out } => {
                write!(f, "{switch} output {out:?} has no physical destination")
            }
            ConfigError::MissingInput { switch, source } => {
                write!(f, "{switch} sources from non-existent line {source:?}")
            }
            ConfigError::UndrivenOperand { fu, slot } => {
                write!(f, "{fu} operand {slot} expects a switch value but none is routed")
            }
            ConfigError::UnusedDrive { fu, slot } => {
                write!(f, "a switch drives {fu} operand {slot}, which the FU does not use")
            }
            ConfigError::ArityMismatch { fu, op } => {
                write!(f, "{fu} operand bindings do not match the arity of {op}")
            }
            ConfigError::UnsupportedOp { fu, kind, op } => {
                write!(f, "{fu} is a {kind:?} unit and cannot execute {op}")
            }
            ConfigError::RoutingCycle { switch } => {
                write!(f, "switch routes form a cycle through {switch}")
            }
            ConfigError::BadVectorPort { vport, port } => {
                write!(f, "vector port vp{vport} references non-existent scalar port {port}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// User-reachable construction errors: a malformed request for fabric
/// hardware, as opposed to [`ConfigError`], which reports a structurally
/// invalid *routing configuration*.
///
/// These used to be `panic!`s/`assert!`s deep inside the fabric crate;
/// they are now returned as values from the public constructors
/// ([`crate::Fabric::with_kinds`], [`crate::ConfigBuilder::with_kinds`],
/// [`crate::Fabric::set_fifo_depth`]) and the checked `try_*` accessors,
/// while internal post-validation invariants remain debug assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricConfigError {
    /// A per-site kinds vector whose length does not match the grid (a
    /// mismatched hardware frame).
    KindCountMismatch {
        /// FU sites in the geometry.
        expected: usize,
        /// Kinds supplied.
        got: usize,
    },
    /// A switch or FU coordinate outside the grid.
    OutOfGrid {
        /// What was addressed (`"switch"` or `"fu"`).
        what: &'static str,
        /// Requested row.
        row: usize,
        /// Requested column.
        col: usize,
        /// FU rows in the geometry (switch grids have one more).
        rows: usize,
        /// FU columns in the geometry (switch grids have one more).
        cols: usize,
    },
    /// A port index beyond the geometry's edge.
    BadPort {
        /// The offending port number.
        port: usize,
        /// Whether an input (true) or output (false) port was addressed.
        input: bool,
        /// Number of ports of that kind the geometry exposes.
        limit: usize,
    },
    /// A port FIFO depth of zero (the interface could never move data).
    ZeroFifoDepth,
    /// Grid dimensions outside `1..=FabricGeometry::MAX_DIM`.
    BadGeometry {
        /// Requested FU rows.
        rows: usize,
        /// Requested FU columns.
        cols: usize,
    },
}

impl fmt::Display for FabricConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricConfigError::KindCountMismatch { expected, got } => {
                write!(f, "kinds vector has {got} entries but the grid has {expected} FU sites")
            }
            FabricConfigError::OutOfGrid { what, row, col, rows, cols } => write!(
                f,
                "{what} ({row},{col}) outside a {rows}x{cols} fabric"
            ),
            FabricConfigError::BadPort { port, input, limit } => {
                let dir = if *input { "input" } else { "output" };
                write!(f, "{dir} port {port} does not exist (geometry has {limit})")
            }
            FabricConfigError::ZeroFifoDepth => write!(f, "port FIFO depth must be non-zero"),
            FabricConfigError::BadGeometry { rows, cols } => write!(
                f,
                "fabric geometry {rows}x{cols} is outside the supported 1..={} range",
                crate::FabricGeometry::MAX_DIM
            ),
        }
    }
}

impl std::error::Error for FabricConfigError {}

/// A complete fabric configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricConfig {
    name: String,
    geometry: FabricGeometry,
    switches: Vec<SwitchConfig>,
    fus: Vec<Option<FuConfig>>,
    vec_in: Vec<Vec<usize>>,
    vec_out: Vec<Vec<usize>>,
}

impl FabricConfig {
    /// Creates an empty configuration for `geometry`.
    pub fn empty(geometry: FabricGeometry) -> Self {
        FabricConfig {
            name: String::from("unnamed"),
            geometry,
            switches: vec![SwitchConfig::default(); geometry.switch_count()],
            fus: vec![None; geometry.fu_count()],
            vec_in: Vec::new(),
            vec_out: Vec::new(),
        }
    }

    /// The geometry this configuration targets.
    pub fn geometry(&self) -> FabricGeometry {
        self.geometry
    }

    /// A human-readable name (the compiler uses the region name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sets the configuration name.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// The switch configuration at `sw`.
    ///
    /// # Panics
    ///
    /// Panics if `sw` is out of range.
    pub fn switch(&self, sw: SwitchId) -> &SwitchConfig {
        &self.switches[self.geometry.switch_index(sw)]
    }

    /// Mutable access to the switch configuration at `sw`.
    ///
    /// # Panics
    ///
    /// Panics if `sw` is out of range.
    pub fn switch_mut(&mut self, sw: SwitchId) -> &mut SwitchConfig {
        let idx = self.geometry.switch_index(sw);
        &mut self.switches[idx]
    }

    /// The FU configuration at `fu`, if configured.
    pub fn fu(&self, fu: FuId) -> Option<&FuConfig> {
        self.fus[self.geometry.fu_index(fu)].as_ref()
    }

    /// Sets the FU configuration at `fu`.
    pub fn set_fu(&mut self, fu: FuId, cfg: FuConfig) {
        let idx = self.geometry.fu_index(fu);
        self.fus[idx] = Some(cfg);
    }

    /// Checked variant of [`FabricConfig::switch`].
    ///
    /// # Errors
    ///
    /// Returns [`FabricConfigError::OutOfGrid`] if `sw` is outside the grid.
    pub fn try_switch(&self, sw: SwitchId) -> Result<&SwitchConfig, FabricConfigError> {
        self.check_switch(sw)?;
        Ok(&self.switches[self.geometry.switch_index(sw)])
    }

    /// Checked variant of [`FabricConfig::switch_mut`].
    ///
    /// # Errors
    ///
    /// Returns [`FabricConfigError::OutOfGrid`] if `sw` is outside the grid.
    pub fn try_switch_mut(&mut self, sw: SwitchId) -> Result<&mut SwitchConfig, FabricConfigError> {
        self.check_switch(sw)?;
        let idx = self.geometry.switch_index(sw);
        Ok(&mut self.switches[idx])
    }

    /// Checked variant of [`FabricConfig::fu`].
    ///
    /// # Errors
    ///
    /// Returns [`FabricConfigError::OutOfGrid`] if `fu` is outside the grid.
    pub fn try_fu(&self, fu: FuId) -> Result<Option<&FuConfig>, FabricConfigError> {
        self.check_fu(fu)?;
        Ok(self.fus[self.geometry.fu_index(fu)].as_ref())
    }

    /// Checked variant of [`FabricConfig::set_fu`].
    ///
    /// # Errors
    ///
    /// Returns [`FabricConfigError::OutOfGrid`] if `fu` is outside the grid.
    pub fn try_set_fu(&mut self, fu: FuId, cfg: FuConfig) -> Result<(), FabricConfigError> {
        self.check_fu(fu)?;
        let idx = self.geometry.fu_index(fu);
        self.fus[idx] = Some(cfg);
        Ok(())
    }

    fn check_switch(&self, sw: SwitchId) -> Result<(), FabricConfigError> {
        if self.geometry.switch_valid(sw) {
            Ok(())
        } else {
            Err(FabricConfigError::OutOfGrid {
                what: "switch",
                row: sw.row,
                col: sw.col,
                rows: self.geometry.rows(),
                cols: self.geometry.cols(),
            })
        }
    }

    fn check_fu(&self, fu: FuId) -> Result<(), FabricConfigError> {
        if self.geometry.fu_valid(fu) {
            Ok(())
        } else {
            Err(FabricConfigError::OutOfGrid {
                what: "fu",
                row: fu.row,
                col: fu.col,
                rows: self.geometry.rows(),
                cols: self.geometry.cols(),
            })
        }
    }

    /// The scalar input ports behind vector input port `vp` (empty if unmapped).
    pub fn vec_in(&self, vp: usize) -> &[usize] {
        self.vec_in.get(vp).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The scalar output ports behind vector output port `vp` (empty if unmapped).
    pub fn vec_out(&self, vp: usize) -> &[usize] {
        self.vec_out.get(vp).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Maps vector input port `vp` to a list of scalar input ports.
    pub fn set_vec_in(&mut self, vp: usize, ports: Vec<usize>) {
        if self.vec_in.len() <= vp {
            self.vec_in.resize(vp + 1, Vec::new());
        }
        self.vec_in[vp] = ports;
    }

    /// Maps vector output port `vp` to a list of scalar output ports.
    pub fn set_vec_out(&mut self, vp: usize, ports: Vec<usize>) {
        if self.vec_out.len() <= vp {
            self.vec_out.resize(vp + 1, Vec::new());
        }
        self.vec_out[vp] = ports;
    }

    /// Checked variant of [`FabricConfig::set_vec_in`]: rejects scalar
    /// port numbers the geometry does not expose.
    ///
    /// # Errors
    ///
    /// Returns [`FabricConfigError::BadPort`] on an out-of-range port.
    pub fn try_set_vec_in(
        &mut self,
        vp: usize,
        ports: Vec<usize>,
    ) -> Result<(), FabricConfigError> {
        let limit = self.geometry.input_ports();
        if let Some(&port) = ports.iter().find(|&&p| p >= limit) {
            return Err(FabricConfigError::BadPort { port, input: true, limit });
        }
        self.set_vec_in(vp, ports);
        Ok(())
    }

    /// Checked variant of [`FabricConfig::set_vec_out`]: rejects scalar
    /// port numbers the geometry does not expose.
    ///
    /// # Errors
    ///
    /// Returns [`FabricConfigError::BadPort`] on an out-of-range port.
    pub fn try_set_vec_out(
        &mut self,
        vp: usize,
        ports: Vec<usize>,
    ) -> Result<(), FabricConfigError> {
        let limit = self.geometry.output_ports();
        if let Some(&port) = ports.iter().find(|&&p| p >= limit) {
            return Err(FabricConfigError::BadPort { port, input: false, limit });
        }
        self.set_vec_out(vp, ports);
        Ok(())
    }

    /// Number of configured FU sites.
    pub fn configured_fus(&self) -> usize {
        self.fus.iter().flatten().count()
    }

    /// Number of configured switch-output routes.
    pub fn configured_routes(&self) -> usize {
        self.switches.iter().map(|s| s.routes().count()).sum()
    }

    /// Size of the configuration frame in bits.
    ///
    /// The frame covers every physical resource (as a real bitstream
    /// would): 3 bits per existing switch output mux, 6 bits of opcode plus
    /// 3 x 2 bits of operand select per FU, and 64 bits for each constant
    /// actually used.
    pub fn frame_bits(&self) -> u64 {
        let mut bits = 0u64;
        for sw in self.geometry.switches() {
            for d in OutDir::ALL {
                if self.output_exists(sw, d) {
                    bits += 3;
                }
            }
        }
        for fu in self.geometry.fus() {
            bits += 6 + 3 * 2;
            if let Some(cfg) = self.fu(fu) {
                for o in cfg.operands {
                    if matches!(o, OperandSrc::Const(_)) {
                        bits += 64;
                    }
                }
            }
        }
        // Vector port mapping table: 5 bits per scalar-port entry.
        let vec_entries: usize =
            self.vec_in.iter().chain(self.vec_out.iter()).map(Vec::len).sum();
        bits + 5 * vec_entries as u64
    }

    /// Whether output `d` physically exists at switch `sw`.
    pub fn output_exists(&self, sw: SwitchId, d: OutDir) -> bool {
        match d {
            OutDir::North | OutDir::South | OutDir::East | OutDir::West => {
                topo::neighbor(&self.geometry, sw, d).is_some()
            }
            OutDir::FuOp0 | OutDir::FuOp1 | OutDir::FuOp2 => {
                topo::fu_operand_target(&self.geometry, sw, d).is_some()
            }
            OutDir::ExtOut => self.geometry.switch_output_port(sw).is_some(),
        }
    }

    /// Whether input line `src` physically exists at switch `sw`.
    pub fn input_exists(&self, sw: SwitchId, src: InDir) -> bool {
        match src {
            InDir::North => sw.row > 0,
            InDir::South => sw.row < self.geometry.rows(),
            InDir::West => sw.col > 0,
            InDir::East => sw.col < self.geometry.cols(),
            InDir::FuOut => topo::fu_feeding(&self.geometry, sw).is_some(),
            InDir::ExtIn => self.geometry.switch_input_port(sw).is_some(),
        }
    }

    /// Validates structural legality.
    ///
    /// # Errors
    ///
    /// Returns the first violation found: dangling or phantom links,
    /// operand/arity mismatches, routing cycles, or bad vector-port maps.
    /// FU capability (`kind`) is checked by [`crate::Fabric::load_config`],
    /// which knows the grid's hardware kinds.
    pub fn validate(&self) -> Result<(), ConfigError> {
        // Links must exist at both ends.
        for sw in self.geometry.switches() {
            for (d, src) in self.switch(sw).routes() {
                if !self.output_exists(sw, d) {
                    return Err(ConfigError::DanglingOutput { switch: sw, out: d });
                }
                if !self.input_exists(sw, src) {
                    return Err(ConfigError::MissingInput { switch: sw, source: src });
                }
            }
        }

        // FU operand slots and switch drives must agree, and arity must match.
        let mut driven: HashMap<(FuId, usize), SwitchId> = HashMap::new();
        for sw in self.geometry.switches() {
            for (d, _) in self.switch(sw).routes() {
                if let Some((fu, slot)) = topo::fu_operand_target(&self.geometry, sw, d) {
                    driven.insert((fu, slot), sw);
                }
            }
        }
        for fu in self.geometry.fus() {
            let cfg = self.fu(fu);
            for slot in 0..3 {
                let expects = matches!(
                    cfg.map(|c| c.operands[slot]),
                    Some(OperandSrc::Switch)
                );
                let has = driven.contains_key(&(fu, slot));
                if expects && !has {
                    return Err(ConfigError::UndrivenOperand { fu, slot });
                }
                if !expects && has {
                    return Err(ConfigError::UnusedDrive { fu, slot });
                }
            }
            if let Some(c) = cfg {
                let arity = c.op.arity();
                // `Select` uses slots (0, 1, 2); binary ops (0, 1); unary (0).
                for (slot, operand) in c.operands.iter().enumerate() {
                    let required = slot < arity || (c.op == FuOp::Select && slot == 2);
                    let used = !matches!(operand, OperandSrc::None);
                    if required != used {
                        return Err(ConfigError::ArityMismatch { fu, op: c.op });
                    }
                }
            }
        }

        self.check_acyclic()?;

        for (vp, ports) in self.vec_in.iter().enumerate() {
            if let Some(&port) = ports.iter().find(|&&p| p >= self.geometry.input_ports()) {
                return Err(ConfigError::BadVectorPort { vport: vp, port });
            }
        }
        for (vp, ports) in self.vec_out.iter().enumerate() {
            if let Some(&port) = ports.iter().find(|&&p| p >= self.geometry.output_ports()) {
                return Err(ConfigError::BadVectorPort { vport: vp, port });
            }
        }
        Ok(())
    }

    /// Topologically orders the configured switch-output registers,
    /// downstream (sinks) first; fails if the routes form a cycle.
    pub(crate) fn check_acyclic(&self) -> Result<Vec<(SwitchId, OutDir)>, ConfigError> {
        // Edge: register (sw, d) feeds register (sw2, d2) when d reaches sw2
        // on line `mirror(d)` and (sw2, d2) sources from that line.
        let regs: Vec<(SwitchId, OutDir)> = self
            .geometry
            .switches()
            .flat_map(|sw| self.switch(sw).routes().map(move |(d, _)| (sw, d)).collect::<Vec<_>>())
            .collect();
        let index: HashMap<(SwitchId, OutDir), usize> =
            regs.iter().enumerate().map(|(i, r)| (*r, i)).collect();
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); regs.len()];
        for (i, &(sw, d)) in regs.iter().enumerate() {
            if let Some(sw2) = topo::neighbor(&self.geometry, sw, d) {
                let arrive = topo::mirror(d);
                for (d2, src2) in self.switch(sw2).routes() {
                    if src2 == arrive {
                        succs[i].push(index[&(sw2, d2)]);
                    }
                }
            }
        }
        // Iterative DFS with colours; produce reverse-postorder (sinks first
        // means we emit a node after all its successors).
        let mut colour = vec![0u8; regs.len()]; // 0 white, 1 grey, 2 black
        let mut order = Vec::with_capacity(regs.len());
        for start in 0..regs.len() {
            if colour[start] != 0 {
                continue;
            }
            let mut stack = vec![(start, 0usize)];
            colour[start] = 1;
            while let Some(&(node, child)) = stack.last() {
                if child < succs[node].len() {
                    stack.last_mut().expect("stack is non-empty").1 += 1;
                    let next = succs[node][child];
                    match colour[next] {
                        0 => {
                            colour[next] = 1;
                            stack.push((next, 0));
                        }
                        1 => {
                            return Err(ConfigError::RoutingCycle { switch: regs[next].0 });
                        }
                        _ => {}
                    }
                } else {
                    colour[node] = 2;
                    order.push(node);
                    stack.pop();
                }
            }
        }
        Ok(order.into_iter().map(|i| regs[i]).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> FabricGeometry {
        FabricGeometry::new(2, 2)
    }

    #[test]
    fn empty_config_is_valid() {
        let cfg = FabricConfig::empty(geom());
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.configured_fus(), 0);
        assert_eq!(cfg.configured_routes(), 0);
    }

    #[test]
    fn dangling_output_detected() {
        let mut cfg = FabricConfig::empty(geom());
        // North output of the top-left switch leaves the fabric.
        cfg.switch_mut(SwitchId { row: 0, col: 0 }).set_source(OutDir::North, InDir::ExtIn);
        assert!(matches!(cfg.validate(), Err(ConfigError::DanglingOutput { .. })));
    }

    #[test]
    fn missing_input_detected() {
        let mut cfg = FabricConfig::empty(geom());
        // The top-left switch has no north neighbour to receive from.
        cfg.switch_mut(SwitchId { row: 0, col: 0 }).set_source(OutDir::South, InDir::North);
        assert!(matches!(cfg.validate(), Err(ConfigError::MissingInput { .. })));
    }

    #[test]
    fn ext_in_only_on_edges() {
        let mut cfg = FabricConfig::empty(geom());
        // Switch (1,1) is interior: no external input.
        cfg.switch_mut(SwitchId { row: 1, col: 1 }).set_source(OutDir::South, InDir::ExtIn);
        assert!(matches!(cfg.validate(), Err(ConfigError::MissingInput { .. })));
    }

    #[test]
    fn undriven_operand_detected() {
        let mut cfg = FabricConfig::empty(geom());
        cfg.set_fu(
            FuId { row: 0, col: 0 },
            FuConfig {
                op: FuOp::IAdd,
                operands: [OperandSrc::Switch, OperandSrc::Switch, OperandSrc::None],
            },
        );
        assert!(matches!(cfg.validate(), Err(ConfigError::UndrivenOperand { .. })));
    }

    #[test]
    fn unused_drive_detected() {
        let mut cfg = FabricConfig::empty(geom());
        // Drive operand 0 of fu(0,0) without configuring the FU.
        cfg.switch_mut(SwitchId { row: 0, col: 0 }).set_source(OutDir::FuOp0, InDir::ExtIn);
        assert!(matches!(cfg.validate(), Err(ConfigError::UnusedDrive { .. })));
    }

    #[test]
    fn arity_mismatch_detected() {
        let mut cfg = FabricConfig::empty(geom());
        // PassA is unary but binds two operands.
        let fu = FuId { row: 0, col: 0 };
        cfg.set_fu(
            fu,
            FuConfig {
                op: FuOp::PassA,
                operands: [OperandSrc::Const(1), OperandSrc::Const(2), OperandSrc::None],
            },
        );
        assert!(matches!(cfg.validate(), Err(ConfigError::ArityMismatch { .. })));
    }

    #[test]
    fn valid_single_adder_config() {
        // Two constants into an adder, result routed to output port 1
        // (south edge, switch (2,1)).
        let mut cfg = FabricConfig::empty(geom());
        let fu = FuId { row: 0, col: 0 };
        cfg.set_fu(
            fu,
            FuConfig {
                op: FuOp::IAdd,
                operands: [OperandSrc::Const(20), OperandSrc::Const(22), OperandSrc::None],
            },
        );
        // Result: fu(0,0) -> sw(1,1) -> south -> sw(2,1) -> ExtOut.
        cfg.switch_mut(SwitchId { row: 1, col: 1 }).set_source(OutDir::South, InDir::FuOut);
        cfg.switch_mut(SwitchId { row: 2, col: 1 }).set_source(OutDir::ExtOut, InDir::North);
        cfg.validate().expect("config should be legal");
        assert_eq!(cfg.configured_routes(), 2);
        assert_eq!(cfg.configured_fus(), 1);
    }

    #[test]
    fn routing_cycle_detected() {
        let mut cfg = FabricConfig::empty(geom());
        // sw(1,1) reflects its east input back east; sw(1,2) reflects its
        // west input back west: together a 2-cycle of route registers.
        cfg.switch_mut(SwitchId { row: 1, col: 1 }).set_source(OutDir::East, InDir::East);
        cfg.switch_mut(SwitchId { row: 1, col: 2 }).set_source(OutDir::West, InDir::West);
        assert!(matches!(cfg.validate(), Err(ConfigError::RoutingCycle { .. })));
    }

    #[test]
    fn topo_order_is_sinks_first() {
        let mut cfg = FabricConfig::empty(geom());
        cfg.switch_mut(SwitchId { row: 0, col: 0 }).set_source(OutDir::South, InDir::ExtIn);
        cfg.switch_mut(SwitchId { row: 1, col: 0 }).set_source(OutDir::South, InDir::North);
        cfg.switch_mut(SwitchId { row: 2, col: 0 }).set_source(OutDir::ExtOut, InDir::North);
        let order = cfg.check_acyclic().unwrap();
        let pos = |sw: SwitchId, d: OutDir| order.iter().position(|&x| x == (sw, d)).unwrap();
        assert!(
            pos(SwitchId { row: 2, col: 0 }, OutDir::ExtOut)
                < pos(SwitchId { row: 0, col: 0 }, OutDir::South),
            "sink register must be ordered before its source"
        );
    }

    #[test]
    fn frame_bits_grow_with_geometry_and_constants() {
        let small = FabricConfig::empty(FabricGeometry::new(2, 2));
        let big = FabricConfig::empty(FabricGeometry::new(8, 8));
        assert!(big.frame_bits() > small.frame_bits());

        let mut with_const = FabricConfig::empty(FabricGeometry::new(2, 2));
        with_const.set_fu(
            FuId { row: 0, col: 0 },
            FuConfig {
                op: FuOp::PassA,
                operands: [OperandSrc::Const(5), OperandSrc::None, OperandSrc::None],
            },
        );
        assert_eq!(with_const.frame_bits(), small.frame_bits() + 64);
    }

    #[test]
    fn bad_vector_port_detected() {
        let mut cfg = FabricConfig::empty(geom());
        cfg.set_vec_in(0, vec![0, 99]);
        assert!(matches!(cfg.validate(), Err(ConfigError::BadVectorPort { .. })));
    }

    #[test]
    fn vector_maps_readback() {
        let mut cfg = FabricConfig::empty(geom());
        cfg.set_vec_in(1, vec![0, 2]);
        cfg.set_vec_out(0, vec![1]);
        assert_eq!(cfg.vec_in(1), &[0, 2]);
        assert_eq!(cfg.vec_in(0), &[] as &[usize]);
        assert_eq!(cfg.vec_out(0), &[1]);
        cfg.validate().unwrap();
    }
}
