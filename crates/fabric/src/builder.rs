//! Building configurations from dataflow graphs: placement and routing.
//!
//! [`ConfigBuilder`] accepts a small dataflow graph — input ports,
//! constants, operations, output ports — places each operation on a
//! compatible functional unit, and routes every edge through the switch
//! network with breadth-first search over free route registers. Fan-out
//! reuses existing route prefixes of the same signal, exactly as the
//! circuit-switched hardware does (one switch input line can feed several
//! of that switch's output muxes).
//!
//! The builder is the mechanism; *policy* (operation ordering, placement
//! refinement, annealing) lives in the compiler's spatial scheduler, which
//! drives the builder with placement hints.

use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;

use crate::config::topo;
use crate::config::{ConfigError, FabricConfig, FabricConfigError, FuConfig, InDir, OperandSrc, OutDir};
use crate::geom::{FabricGeometry, FuId, SwitchId};
use crate::op::{FuKind, FuOp};

/// Handle to a value in the dataflow graph under construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ValueId(usize);

/// Errors produced while building a configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// An input or output port index is out of range for the geometry.
    BadPort {
        /// The offending port.
        port: usize,
        /// Whether it was used as an input.
        input: bool,
    },
    /// Two values were bound to the same input port.
    DuplicateInputPort {
        /// The port bound twice.
        port: usize,
    },
    /// Two values were bound to the same output port.
    DuplicateOutputPort {
        /// The port bound twice.
        port: usize,
    },
    /// An operation received the wrong number of arguments.
    ArityMismatch {
        /// The operation.
        op: FuOp,
        /// Arguments provided.
        got: usize,
    },
    /// No free functional unit can execute the operation.
    Unplaceable {
        /// The operation.
        op: FuOp,
    },
    /// No route could be found for an edge.
    Unroutable {
        /// Description of the edge.
        edge: String,
    },
    /// The finished configuration failed validation (internal error).
    Invalid(ConfigError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::BadPort { port, input } => {
                let dir = if *input { "input" } else { "output" };
                write!(f, "{dir} port {port} does not exist on this geometry")
            }
            BuildError::DuplicateInputPort { port } => {
                write!(f, "input port {port} bound to two values")
            }
            BuildError::DuplicateOutputPort { port } => {
                write!(f, "output port {port} bound to two values")
            }
            BuildError::ArityMismatch { op, got } => {
                write!(f, "{op} takes {} operands, got {got}", op.arity())
            }
            BuildError::Unplaceable { op } => {
                write!(f, "no free functional unit supports {op}")
            }
            BuildError::Unroutable { edge } => write!(f, "no route for edge {edge}"),
            BuildError::Invalid(e) => write!(f, "built configuration is invalid: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<ConfigError> for BuildError {
    fn from(e: ConfigError) -> Self {
        BuildError::Invalid(e)
    }
}

#[derive(Debug, Clone)]
enum Node {
    Input { port: usize },
    Const(u64),
    Op { op: FuOp, args: Vec<ValueId> },
}

/// Builds a [`FabricConfig`] from a dataflow graph.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct ConfigBuilder {
    geom: FabricGeometry,
    kinds: Vec<FuKind>,
    nodes: Vec<Node>,
    outputs: Vec<(ValueId, usize)>,
    hints: HashMap<usize, FuId>,
    vec_in: Vec<(usize, Vec<usize>)>,
    vec_out: Vec<(usize, Vec<usize>)>,
    name: String,
}

impl ConfigBuilder {
    /// Creates a builder for `geom` with the default heterogeneous kinds.
    pub fn new(geom: FabricGeometry) -> Self {
        let kinds = geom.fus().map(|f| FuKind::default_pattern(f.row, f.col)).collect();
        Self::build_with_kinds(geom, kinds)
    }

    /// Creates a builder with explicit per-site hardware kinds (row-major).
    ///
    /// # Errors
    ///
    /// Returns [`FabricConfigError::KindCountMismatch`] if
    /// `kinds.len() != geom.fu_count()`.
    pub fn with_kinds(
        geom: FabricGeometry,
        kinds: Vec<FuKind>,
    ) -> Result<Self, FabricConfigError> {
        if kinds.len() != geom.fu_count() {
            return Err(FabricConfigError::KindCountMismatch {
                expected: geom.fu_count(),
                got: kinds.len(),
            });
        }
        Ok(Self::build_with_kinds(geom, kinds))
    }

    /// Infallible constructor for kinds vectors built from the geometry.
    fn build_with_kinds(geom: FabricGeometry, kinds: Vec<FuKind>) -> Self {
        debug_assert_eq!(kinds.len(), geom.fu_count(), "one kind per FU site");
        ConfigBuilder {
            geom,
            kinds,
            nodes: Vec::new(),
            outputs: Vec::new(),
            hints: HashMap::new(),
            vec_in: Vec::new(),
            vec_out: Vec::new(),
            name: String::from("unnamed"),
        }
    }

    /// Sets the configuration name.
    pub fn set_name(&mut self, name: impl Into<String>) -> &mut Self {
        self.name = name.into();
        self
    }

    /// The geometry this builder targets.
    pub fn geometry(&self) -> FabricGeometry {
        self.geom
    }

    /// Declares a value arriving on input port `port`.
    pub fn input_value(&mut self, port: usize) -> ValueId {
        self.nodes.push(Node::Input { port });
        ValueId(self.nodes.len() - 1)
    }

    /// Declares a configuration-time constant.
    pub fn const_value(&mut self, value: u64) -> ValueId {
        self.nodes.push(Node::Const(value));
        ValueId(self.nodes.len() - 1)
    }

    /// Declares an operation over previously declared values.
    ///
    /// For [`FuOp::Select`], pass `[then_value, else_value, predicate]`.
    ///
    /// # Panics
    ///
    /// Panics if an argument handle comes from a different builder
    /// (out-of-range index).
    pub fn op(&mut self, op: FuOp, args: &[ValueId]) -> ValueId {
        for a in args {
            assert!(a.0 < self.nodes.len(), "argument from a different builder");
        }
        self.nodes.push(Node::Op { op, args: args.to_vec() });
        ValueId(self.nodes.len() - 1)
    }

    /// Binds `value` to output port `port`.
    pub fn output_value(&mut self, value: ValueId, port: usize) -> &mut Self {
        assert!(value.0 < self.nodes.len(), "value from a different builder");
        self.outputs.push((value, port));
        self
    }

    /// Hints that `value` (which must be an operation) should be placed on
    /// `fu`. The spatial scheduler uses hints to drive refinement.
    pub fn hint(&mut self, value: ValueId, fu: FuId) -> &mut Self {
        self.hints.insert(value.0, fu);
        self
    }

    /// Maps vector input port `vp` to scalar input ports.
    pub fn vec_in(&mut self, vp: usize, ports: Vec<usize>) -> &mut Self {
        self.vec_in.push((vp, ports));
        self
    }

    /// Maps vector output port `vp` to scalar output ports.
    pub fn vec_out(&mut self, vp: usize, ports: Vec<usize>) -> &mut Self {
        self.vec_out.push((vp, ports));
        self
    }

    /// Number of operation nodes declared so far.
    pub fn op_count(&self) -> usize {
        self.nodes.iter().filter(|n| matches!(n, Node::Op { .. })).count()
    }

    /// Places, routes, and validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] if ports clash, arities mismatch, placement
    /// runs out of compatible units, or routing fails.
    pub fn build(&self) -> Result<FabricConfig, BuildError> {
        Placer::new(self)?.run()
    }
}

/// A signal's position during routing: standing at `switch`, having
/// arrived on input line `line`.
type RouteState = (SwitchId, InDir);

/// Snapshot of the mutable routing state (config, register owners,
/// per-signal reached states), used for candidate rollback.
type Checkpoint =
    (FabricConfig, HashMap<(SwitchId, OutDir), usize>, HashMap<usize, HashSet<RouteState>>);

struct Placer<'a> {
    b: &'a ConfigBuilder,
    cfg: FabricConfig,
    /// Which signal (producer node index) occupies each route register.
    reg_owner: HashMap<(SwitchId, OutDir), usize>,
    /// States already reached by each signal's committed routes.
    signal_states: HashMap<usize, HashSet<RouteState>>,
    /// Placement of op nodes.
    node_fu: HashMap<usize, FuId>,
    fu_used: HashSet<FuId>,
}

impl<'a> Placer<'a> {
    fn new(b: &'a ConfigBuilder) -> Result<Self, BuildError> {
        // Port sanity.
        let mut in_ports = HashSet::new();
        for node in &b.nodes {
            if let Node::Input { port } = node {
                if *port >= b.geom.input_ports() {
                    return Err(BuildError::BadPort { port: *port, input: true });
                }
                if !in_ports.insert(*port) {
                    return Err(BuildError::DuplicateInputPort { port: *port });
                }
            }
        }
        let mut out_ports = HashSet::new();
        for (_, port) in &b.outputs {
            if *port >= b.geom.output_ports() {
                return Err(BuildError::BadPort { port: *port, input: false });
            }
            if !out_ports.insert(*port) {
                return Err(BuildError::DuplicateOutputPort { port: *port });
            }
        }
        // Arity sanity.
        for node in &b.nodes {
            if let Node::Op { op, args } = node {
                if args.len() != op.arity() {
                    return Err(BuildError::ArityMismatch { op: *op, got: args.len() });
                }
            }
        }
        Ok(Placer {
            b,
            cfg: {
                let mut c = FabricConfig::empty(b.geom);
                c.set_name(b.name.clone());
                c
            },
            reg_owner: HashMap::new(),
            signal_states: HashMap::new(),
            node_fu: HashMap::new(),
            fu_used: HashSet::new(),
        })
    }

    fn run(mut self) -> Result<FabricConfig, BuildError> {
        for idx in 0..self.b.nodes.len() {
            if let Node::Op { op, args } = &self.b.nodes[idx] {
                self.place_op(idx, *op, &args.clone())?;
            }
        }
        for (value, port) in &self.b.outputs {
            let goal_sw = self
                .b
                .geom
                .output_port_switch(*port)
                .expect("output port validated in Placer::new");
            let label = format!("value {} -> output port {port}", value.0);
            self.route_signal(value.0, goal_sw, OutDir::ExtOut, &label)?;
        }
        for (vp, ports) in &self.b.vec_in {
            self.cfg.set_vec_in(*vp, ports.clone());
        }
        for (vp, ports) in &self.b.vec_out {
            self.cfg.set_vec_out(*vp, ports.clone());
        }
        self.cfg.validate()?;
        Ok(self.cfg)
    }

    /// Rough physical location of a node's output, for placement cost.
    fn node_pos(&self, node: usize) -> Option<(isize, isize)> {
        match &self.b.nodes[node] {
            Node::Input { port } => {
                let sw = self.b.geom.input_port_switch(*port)?;
                Some((sw.row as isize, sw.col as isize))
            }
            Node::Const(_) => None,
            Node::Op { .. } => {
                let fu = self.node_fu.get(&node)?;
                let sw = topo::fu_output_switch(*fu);
                Some((sw.row as isize, sw.col as isize))
            }
        }
    }

    fn place_op(&mut self, node: usize, op: FuOp, args: &[ValueId]) -> Result<(), BuildError> {
        // Candidate sites: hinted site first, then free compatible sites by
        // distance to the argument producers.
        let mut candidates: Vec<FuId> = Vec::new();
        if let Some(&hint) = self.b.hints.get(&node) {
            if self.b.geom.fu_valid(hint) {
                candidates.push(hint);
            }
        }
        let arg_positions: Vec<(isize, isize)> =
            args.iter().filter_map(|a| self.node_pos(a.0)).collect();
        let mut free: Vec<FuId> = self
            .b
            .geom
            .fus()
            .filter(|fu| {
                !self.fu_used.contains(fu)
                    && self.b.kinds[self.b.geom.fu_index(*fu)].supports(op)
            })
            .collect();
        free.sort_by_key(|fu| {
            let (r, c) = (fu.row as isize, fu.col as isize);
            let dist: isize =
                arg_positions.iter().map(|(ar, ac)| (ar - r).abs() + (ac - c).abs()).sum();
            (dist, fu.row, fu.col)
        });
        candidates.extend(free);
        if candidates.is_empty() {
            return Err(BuildError::Unplaceable { op });
        }

        let orderings = Self::operand_orderings(op, args);
        let mut last_err = BuildError::Unplaceable { op };
        for fu in candidates {
            if self.fu_used.contains(&fu)
                || !self.b.kinds[self.b.geom.fu_index(fu)].supports(op)
            {
                continue;
            }
            for ordering in &orderings {
                match self.try_place_at(node, op, ordering, fu) {
                    Ok(()) => return Ok(()),
                    Err(e) => last_err = e,
                }
            }
        }
        Err(last_err)
    }

    /// Operand orderings to attempt: the given order, plus the swapped
    /// order for commutative binary operations (a routing degree of
    /// freedom real spatial schedulers exploit).
    fn operand_orderings(op: FuOp, args: &[ValueId]) -> Vec<Vec<ValueId>> {
        let commutative = matches!(
            op,
            FuOp::IAdd
                | FuOp::IMul
                | FuOp::IAnd
                | FuOp::IOr
                | FuOp::IXor
                | FuOp::IMax
                | FuOp::IMin
                | FuOp::ICmpEq
                | FuOp::ICmpNe
                | FuOp::FAdd
                | FuOp::FMul
                | FuOp::FMax
                | FuOp::FMin
                | FuOp::PredAnd
                | FuOp::PredOr
        );
        let mut orders = vec![args.to_vec()];
        if commutative && args.len() == 2 && args[0] != args[1] {
            orders.push(vec![args[1], args[0]]);
        }
        orders
    }

    fn try_place_at(
        &mut self,
        node: usize,
        op: FuOp,
        args: &[ValueId],
        fu: FuId,
    ) -> Result<(), BuildError> {
        let checkpoint = self.checkpoint();
        let mut operands = [OperandSrc::None; 3];
        for (slot, arg) in args.iter().enumerate() {
            match &self.b.nodes[arg.0] {
                Node::Const(c) => operands[slot] = OperandSrc::Const(*c),
                _ => {
                    let (goal_sw, goal_dir) = topo::fu_operand_switch(fu, slot);
                    let label = format!("value {} -> {fu} operand {slot}", arg.0);
                    if let Err(e) = self.route_signal(arg.0, goal_sw, goal_dir, &label) {
                        self.rollback(checkpoint);
                        return Err(e);
                    }
                    operands[slot] = OperandSrc::Switch;
                }
            }
        }
        self.cfg.set_fu(fu, FuConfig { op, operands });
        self.fu_used.insert(fu);
        self.node_fu.insert(node, fu);
        Ok(())
    }

    /// Snapshot of the mutable routing state, for candidate rollback.
    fn checkpoint(&self) -> Checkpoint {
        (self.cfg.clone(), self.reg_owner.clone(), self.signal_states.clone())
    }

    fn rollback(&mut self, cp: Checkpoint) {
        self.cfg = cp.0;
        self.reg_owner = cp.1;
        self.signal_states = cp.2;
    }

    /// Initial route states of a signal that has no committed routes yet.
    fn seed_states(&self, signal: usize) -> Result<Vec<RouteState>, BuildError> {
        match &self.b.nodes[signal] {
            Node::Input { port } => {
                let sw = self.b.geom.input_port_switch(*port).expect("validated port");
                Ok(vec![(sw, InDir::ExtIn)])
            }
            Node::Op { .. } => {
                let fu = self.node_fu.get(&signal).ok_or_else(|| BuildError::Unroutable {
                    edge: format!("value {signal} used before placement"),
                })?;
                Ok(vec![(topo::fu_output_switch(*fu), InDir::FuOut)])
            }
            Node::Const(_) => Err(BuildError::Unroutable {
                edge: format!("constant value {signal} cannot be routed"),
            }),
        }
    }

    /// Routes `signal` so that register `(goal_sw, goal_dir)` carries it.
    ///
    /// BFS over `(switch, arrival line)` states; existing routes of the
    /// same signal seed the frontier at distance zero, which makes fan-out
    /// share prefixes.
    fn route_signal(
        &mut self,
        signal: usize,
        goal_sw: SwitchId,
        goal_dir: OutDir,
        label: &str,
    ) -> Result<(), BuildError> {
        if self.reg_owner.contains_key(&(goal_sw, goal_dir)) {
            return Err(BuildError::Unroutable { edge: format!("{label}: goal register busy") });
        }
        let mut seeds: Vec<RouteState> = match self.signal_states.get(&signal) {
            Some(states) if !states.is_empty() => states.iter().copied().collect(),
            _ => self.seed_states(signal)?,
        };
        // HashSet iteration order varies between instances; the BFS breaks
        // shortest-path ties by seed order, so sort to keep routing (and
        // therefore every downstream cycle count) fully deterministic.
        seeds.sort_unstable();

        let mut parent: HashMap<RouteState, Option<(RouteState, OutDir)>> = HashMap::new();
        let mut queue: VecDeque<RouteState> = VecDeque::new();
        for s in &seeds {
            parent.insert(*s, None);
            queue.push_back(*s);
        }

        let mut goal_state: Option<RouteState> = None;
        while let Some(state) = queue.pop_front() {
            let (sw, _line) = state;
            if sw == goal_sw {
                goal_state = Some(state);
                break;
            }
            for d in [OutDir::North, OutDir::South, OutDir::East, OutDir::West] {
                let Some(next_sw) = topo::neighbor(&self.b.geom, sw, d) else { continue };
                if self.reg_owner.contains_key(&(sw, d)) {
                    continue;
                }
                let next: RouteState = (next_sw, topo::mirror(d));
                if parent.contains_key(&next) {
                    continue;
                }
                parent.insert(next, Some((state, d)));
                queue.push_back(next);
            }
        }

        let Some(goal_state) = goal_state else {
            return Err(BuildError::Unroutable { edge: label.to_owned() });
        };

        // Claim the final register, then walk parents claiming hop registers.
        let (_, arrival_line) = goal_state;
        self.claim(signal, goal_sw, goal_dir, arrival_line);
        let mut cursor = goal_state;
        while let Some(&Some((prev, taken))) = parent.get(&cursor) {
            let (prev_sw, prev_line) = prev;
            self.claim(signal, prev_sw, taken, prev_line);
            self.signal_states.entry(signal).or_default().insert(cursor);
            cursor = prev;
        }
        // Record the seed state as reached too (it may have come from
        // seed_states rather than an existing committed route).
        self.signal_states.entry(signal).or_default().insert(cursor);
        Ok(())
    }

    fn claim(&mut self, signal: usize, sw: SwitchId, d: OutDir, source: InDir) {
        self.cfg.switch_mut(sw).set_source(d, source);
        self.reg_owner.insert((sw, d), signal);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Fabric;

    fn geom() -> FabricGeometry {
        FabricGeometry::new(4, 4)
    }

    #[test]
    fn build_single_op() {
        let mut b = ConfigBuilder::new(geom());
        let x = b.input_value(0);
        let y = b.input_value(1);
        let s = b.op(FuOp::IAdd, &[x, y]);
        b.output_value(s, 0);
        let cfg = b.build().unwrap();
        assert_eq!(cfg.configured_fus(), 1);
        assert!(cfg.configured_routes() >= 3);
    }

    #[test]
    fn build_respects_name() {
        let mut b = ConfigBuilder::new(geom());
        b.set_name("vecadd");
        let x = b.input_value(0);
        b.output_value(x, 0);
        assert_eq!(b.build().unwrap().name(), "vecadd");
    }

    #[test]
    fn fanout_shares_prefix() {
        // x feeds two ops; the routed configuration must still validate
        // and execute correctly (x duplicated by the switch network).
        let mut b = ConfigBuilder::new(geom());
        let x = b.input_value(0);
        let y = b.input_value(1);
        let s = b.op(FuOp::IAdd, &[x, y]);
        let d = b.op(FuOp::IMul, &[x, x]);
        b.output_value(s, 0);
        b.output_value(d, 1);
        let cfg = b.build().expect("fanout must route");

        let mut f = Fabric::new(geom());
        f.load_config(&cfg).unwrap();
        f.try_send(0, 7);
        f.try_send(1, 3);
        let mut got = (None, None);
        for _ in 0..200 {
            f.tick();
            if got.0.is_none() {
                got.0 = f.try_recv(0);
            }
            if got.1.is_none() {
                got.1 = f.try_recv(1);
            }
            if got.0.is_some() && got.1.is_some() {
                break;
            }
        }
        assert_eq!(got, (Some(10), Some(49)));
    }

    #[test]
    fn chain_of_ops_executes() {
        // ((a+b) * (a-b)) routed through three FUs.
        let mut b = ConfigBuilder::new(geom());
        let a = b.input_value(0);
        let c = b.input_value(1);
        let sum = b.op(FuOp::IAdd, &[a, c]);
        let diff = b.op(FuOp::ISub, &[a, c]);
        let prod = b.op(FuOp::IMul, &[sum, diff]);
        b.output_value(prod, 0);
        let cfg = b.build().unwrap();
        let mut f = Fabric::new(geom());
        f.load_config(&cfg).unwrap();
        f.try_send(0, 9);
        f.try_send(1, 4);
        assert_eq!(f.run_until_output(0, 300), Some((13 * 5) as u64));
    }

    #[test]
    fn duplicate_input_port_rejected() {
        let mut b = ConfigBuilder::new(geom());
        let _ = b.input_value(0);
        let _ = b.input_value(0);
        let e = b.build().unwrap_err();
        assert!(matches!(e, BuildError::DuplicateInputPort { port: 0 }));
    }

    #[test]
    fn duplicate_output_port_rejected() {
        let mut b = ConfigBuilder::new(geom());
        let x = b.input_value(0);
        let y = b.input_value(1);
        b.output_value(x, 0);
        b.output_value(y, 0);
        assert!(matches!(b.build().unwrap_err(), BuildError::DuplicateOutputPort { port: 0 }));
    }

    #[test]
    fn bad_port_rejected() {
        let mut b = ConfigBuilder::new(geom());
        let _ = b.input_value(999);
        assert!(matches!(b.build().unwrap_err(), BuildError::BadPort { input: true, .. }));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut b = ConfigBuilder::new(geom());
        let x = b.input_value(0);
        let _bad = b.op(FuOp::IAdd, &[x]);
        assert!(matches!(b.build().unwrap_err(), BuildError::ArityMismatch { .. }));
    }

    #[test]
    fn unplaceable_when_no_capable_unit() {
        // All-IntSimple hardware cannot place a multiply.
        let g = FabricGeometry::new(2, 2);
        let mut b = ConfigBuilder::with_kinds(g, vec![FuKind::IntSimple; 4]).unwrap();
        let x = b.input_value(0);
        let y = b.input_value(1);
        let m = b.op(FuOp::IMul, &[x, y]);
        b.output_value(m, 0);
        assert!(matches!(b.build().unwrap_err(), BuildError::Unplaceable { op: FuOp::IMul }));
    }

    #[test]
    fn placement_exhaustion_detected() {
        // A 1x1 IntSimple fabric can host exactly one op.
        let g = FabricGeometry::new(1, 1);
        let mut b = ConfigBuilder::with_kinds(g, vec![FuKind::IntSimple; 1]).unwrap();
        let x = b.input_value(0);
        let y = b.input_value(1);
        let s1 = b.op(FuOp::IAdd, &[x, y]);
        let s2 = b.op(FuOp::ISub, &[s1, y]);
        b.output_value(s2, 0);
        let e = b.build().unwrap_err();
        assert!(
            matches!(e, BuildError::Unplaceable { .. } | BuildError::Unroutable { .. }),
            "got {e}"
        );
    }

    #[test]
    fn hint_pins_placement() {
        let mut b = ConfigBuilder::new(geom());
        let x = b.input_value(0);
        let y = b.input_value(1);
        let s = b.op(FuOp::IAdd, &[x, y]);
        b.output_value(s, 0);
        let target = FuId { row: 2, col: 2 };
        b.hint(s, target);
        let cfg = b.build().unwrap();
        assert!(cfg.fu(target).is_some(), "hinted site must be used");
        assert_eq!(cfg.fu(target).unwrap().op, FuOp::IAdd);
    }

    #[test]
    fn deep_graph_on_8x8() {
        // A reduction tree of 8 inputs: 7 adders.
        let g = FabricGeometry::new(8, 8);
        let mut b = ConfigBuilder::new(g);
        let mut layer: Vec<ValueId> = (0..8).map(|p| b.input_value(p)).collect();
        while layer.len() > 1 {
            layer = layer.chunks(2).map(|pair| b.op(FuOp::IAdd, &[pair[0], pair[1]])).collect();
        }
        b.output_value(layer[0], 0);
        let cfg = b.build().expect("reduction tree must place and route on 8x8");
        let mut f = Fabric::new(g);
        f.load_config(&cfg).unwrap();
        for p in 0..8 {
            assert!(f.try_send(p, (p + 1) as u64));
        }
        assert_eq!(f.run_until_output(0, 500), Some(36));
    }

    #[test]
    fn vector_port_maps_carried_through() {
        let mut b = ConfigBuilder::new(geom());
        let x = b.input_value(0);
        let y = b.input_value(1);
        let s = b.op(FuOp::IAdd, &[x, y]);
        b.output_value(s, 0);
        b.vec_in(0, vec![0, 1]);
        b.vec_out(0, vec![0]);
        let cfg = b.build().unwrap();
        assert_eq!(cfg.vec_in(0), &[0, 1]);
        assert_eq!(cfg.vec_out(0), &[0]);
    }

    #[test]
    fn fp_pipeline_executes() {
        let g = geom();
        let mut b = ConfigBuilder::new(g);
        let x = b.input_value(0);
        let y = b.input_value(1);
        let prod = b.op(FuOp::FMul, &[x, y]);
        let k = b.const_value(1.0f64.to_bits());
        let shifted = b.op(FuOp::FAdd, &[prod, k]);
        b.output_value(shifted, 0);
        let cfg = b.build().unwrap();
        let mut f = Fabric::new(g);
        f.load_config(&cfg).unwrap();
        f.try_send(0, 2.5f64.to_bits());
        f.try_send(1, 4.0f64.to_bits());
        let out = f.run_until_output(0, 300).expect("fp chain produces output");
        assert_eq!(f64::from_bits(out), 11.0);
    }
}
