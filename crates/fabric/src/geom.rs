//! Fabric geometry: the FU grid, the surrounding switch grid, and the
//! edge port map.
//!
//! A `rows x cols` fabric has `rows * cols` FUs and a
//! `(rows + 1) x (cols + 1)` switch grid. FU `(r, c)` is surrounded by four
//! switches; it draws operand 0 from its north-west switch `(r, c)`,
//! operand 1 from its north-east switch `(r, c+1)`, operand 2 (the
//! predicate of `select`) from its south-west switch `(r+1, c)`, and drives
//! its result into its south-east switch `(r+1, c+1)`.
//!
//! Input ports sit on the north and west edges, output ports on the south
//! and east edges, numbered deterministically so the compiler and the ISA
//! agree on port indices.

use std::fmt;

use crate::config::FabricConfigError;

/// The dimensions of a fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FabricGeometry {
    rows: usize,
    cols: usize,
}

/// Identifier of a functional unit at grid position `(row, col)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuId {
    /// Row in the FU grid.
    pub row: usize,
    /// Column in the FU grid.
    pub col: usize,
}

/// Identifier of a switch at grid position `(row, col)` in the
/// `(rows+1) x (cols+1)` switch grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SwitchId {
    /// Row in the switch grid.
    pub row: usize,
    /// Column in the switch grid.
    pub col: usize,
}

impl fmt::Display for FuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fu({},{})", self.row, self.col)
    }
}

impl fmt::Display for SwitchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sw({},{})", self.row, self.col)
    }
}

impl FabricGeometry {
    /// The largest supported value for either grid dimension: the port
    /// index space of the ISA bounds practical fabrics well below that.
    pub const MAX_DIM: usize = 16;

    /// Creates a geometry with the given FU grid dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or exceeds
    /// [`FabricGeometry::MAX_DIM`]. Untrusted dimensions (CLI flags, wire
    /// requests, sweep grids) should go through
    /// [`FabricGeometry::try_new`] instead.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self::try_new(rows, cols).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Creates a geometry with the given FU grid dimensions, returning a
    /// typed error for degenerate requests.
    ///
    /// # Errors
    ///
    /// Returns [`FabricConfigError::BadGeometry`] if either dimension is
    /// zero or exceeds [`FabricGeometry::MAX_DIM`].
    pub fn try_new(rows: usize, cols: usize) -> Result<Self, FabricConfigError> {
        if rows == 0 || cols == 0 || rows > Self::MAX_DIM || cols > Self::MAX_DIM {
            return Err(FabricConfigError::BadGeometry { rows, cols });
        }
        Ok(FabricGeometry { rows, cols })
    }

    /// Number of FU rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of FU columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of functional units.
    pub fn fu_count(&self) -> usize {
        self.rows * self.cols
    }

    /// Number of switches.
    pub fn switch_count(&self) -> usize {
        (self.rows + 1) * (self.cols + 1)
    }

    /// Number of input ports: one per north-edge switch plus one per
    /// west-edge switch below the corner.
    pub fn input_ports(&self) -> usize {
        (self.cols + 1) + self.rows
    }

    /// Number of output ports: one per south-edge switch plus one per
    /// east-edge switch above the bottom corner.
    pub fn output_ports(&self) -> usize {
        (self.cols + 1) + self.rows
    }

    /// Whether `fu` is a valid FU position.
    pub fn fu_valid(&self, fu: FuId) -> bool {
        fu.row < self.rows && fu.col < self.cols
    }

    /// Whether `sw` is a valid switch position.
    pub fn switch_valid(&self, sw: SwitchId) -> bool {
        sw.row <= self.rows && sw.col <= self.cols
    }

    /// Iterates over all FU positions in row-major order.
    pub fn fus(&self) -> impl Iterator<Item = FuId> + '_ {
        let cols = self.cols;
        (0..self.rows).flat_map(move |row| (0..cols).map(move |col| FuId { row, col }))
    }

    /// Iterates over all switch positions in row-major order.
    pub fn switches(&self) -> impl Iterator<Item = SwitchId> + '_ {
        let cols = self.cols;
        (0..=self.rows).flat_map(move |row| (0..=cols).map(move |col| SwitchId { row, col }))
    }

    /// Linear index of a switch (row-major).
    ///
    /// Callers must have validated the coordinate ([`FabricGeometry::switch_valid`]);
    /// checked access goes through `FabricConfig::try_switch`.
    pub fn switch_index(&self, sw: SwitchId) -> usize {
        debug_assert!(self.switch_valid(sw), "switch ({},{}) outside grid", sw.row, sw.col);
        sw.row * (self.cols + 1) + sw.col
    }

    /// Linear index of an FU (row-major).
    ///
    /// Callers must have validated the coordinate ([`FabricGeometry::fu_valid`]);
    /// checked access goes through `FabricConfig::try_fu`.
    pub fn fu_index(&self, fu: FuId) -> usize {
        debug_assert!(self.fu_valid(fu), "fu ({},{}) outside grid", fu.row, fu.col);
        fu.row * self.cols + fu.col
    }

    /// The switch an input port injects into, if the port exists.
    ///
    /// Ports `0..=cols` sit on the north edge (switch `(0, p)`); ports
    /// `cols+1..` sit on the west edge (switch `(p - cols, 0)`).
    pub fn input_port_switch(&self, port: usize) -> Option<SwitchId> {
        if port <= self.cols {
            Some(SwitchId { row: 0, col: port })
        } else {
            let row = port - self.cols;
            (row <= self.rows).then_some(SwitchId { row, col: 0 })
        }
    }

    /// The switch an output port drains from, if the port exists.
    ///
    /// Ports `0..=cols` sit on the south edge (switch `(rows, p)`); ports
    /// `cols+1..` sit on the east edge (switch `(rows - (p - cols), cols)`).
    pub fn output_port_switch(&self, port: usize) -> Option<SwitchId> {
        if port <= self.cols {
            Some(SwitchId { row: self.rows, col: port })
        } else {
            let off = port - self.cols;
            (off <= self.rows).then(|| SwitchId { row: self.rows - off, col: self.cols })
        }
    }

    /// The input port injecting at `sw`, if `sw` is on the north/west edge.
    pub fn switch_input_port(&self, sw: SwitchId) -> Option<usize> {
        if sw.row == 0 {
            Some(sw.col)
        } else if sw.col == 0 {
            Some(self.cols + sw.row)
        } else {
            None
        }
    }

    /// The output port draining at `sw`, if `sw` is on the south/east edge.
    pub fn switch_output_port(&self, sw: SwitchId) -> Option<usize> {
        if sw.row == self.rows {
            Some(sw.col)
        } else if sw.col == self.cols {
            Some(self.cols + (self.rows - sw.row))
        } else {
            None
        }
    }
}

impl fmt::Display for FabricGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts() {
        let g = FabricGeometry::new(4, 4);
        assert_eq!(g.fu_count(), 16);
        assert_eq!(g.switch_count(), 25);
        assert_eq!(g.input_ports(), 9);
        assert_eq!(g.output_ports(), 9);
        assert_eq!(g.fus().count(), 16);
        assert_eq!(g.switches().count(), 25);
    }

    #[test]
    fn port_maps_are_inverse() {
        let g = FabricGeometry::new(3, 5);
        for p in 0..g.input_ports() {
            let sw = g.input_port_switch(p).unwrap();
            assert_eq!(g.switch_input_port(sw), Some(p), "input port {p}");
        }
        for p in 0..g.output_ports() {
            let sw = g.output_port_switch(p).unwrap();
            assert_eq!(g.switch_output_port(sw), Some(p), "output port {p}");
        }
    }

    #[test]
    fn input_ports_cover_north_and_west() {
        let g = FabricGeometry::new(2, 2);
        assert_eq!(g.input_port_switch(0), Some(SwitchId { row: 0, col: 0 }));
        assert_eq!(g.input_port_switch(2), Some(SwitchId { row: 0, col: 2 }));
        assert_eq!(g.input_port_switch(3), Some(SwitchId { row: 1, col: 0 }));
        assert_eq!(g.input_port_switch(4), Some(SwitchId { row: 2, col: 0 }));
        assert_eq!(g.input_port_switch(5), None);
    }

    #[test]
    fn output_ports_cover_south_and_east() {
        let g = FabricGeometry::new(2, 2);
        assert_eq!(g.output_port_switch(0), Some(SwitchId { row: 2, col: 0 }));
        assert_eq!(g.output_port_switch(2), Some(SwitchId { row: 2, col: 2 }));
        assert_eq!(g.output_port_switch(3), Some(SwitchId { row: 1, col: 2 }));
        assert_eq!(g.output_port_switch(4), Some(SwitchId { row: 0, col: 2 }));
        assert_eq!(g.output_port_switch(5), None);
    }

    #[test]
    fn interior_switches_have_no_ports() {
        let g = FabricGeometry::new(3, 3);
        let sw = SwitchId { row: 1, col: 1 };
        assert_eq!(g.switch_input_port(sw), None);
        assert_eq!(g.switch_output_port(sw), None);
    }

    #[test]
    fn validity() {
        let g = FabricGeometry::new(2, 3);
        assert!(g.fu_valid(FuId { row: 1, col: 2 }));
        assert!(!g.fu_valid(FuId { row: 2, col: 0 }));
        assert!(g.switch_valid(SwitchId { row: 2, col: 3 }));
        assert!(!g.switch_valid(SwitchId { row: 3, col: 0 }));
    }

    #[test]
    #[should_panic(expected = "outside the supported")]
    fn zero_dims_panic() {
        let _ = FabricGeometry::new(0, 4);
    }

    #[test]
    fn try_new_validates_bounds() {
        assert!(FabricGeometry::try_new(1, 1).is_ok());
        assert!(FabricGeometry::try_new(FabricGeometry::MAX_DIM, FabricGeometry::MAX_DIM).is_ok());
        for (rows, cols) in [(0, 4), (4, 0), (0, 0), (FabricGeometry::MAX_DIM + 1, 4)] {
            assert!(FabricGeometry::try_new(rows, cols).is_err(), "{rows}x{cols}");
        }
    }
}
