//! The cycle-level fabric execution engine.
//!
//! Values move through the configured routes one hop per cycle with
//! credit-based flow control: every switch output is a single-entry elastic
//! register that advances only when its consumer has room. FUs fire in
//! dataflow fashion — when every bound operand has arrived and the FU's
//! internal pipeline has a free slot — so back-to-back invocations of the
//! configured region overlap at full throughput.
//!
//! Within one [`Fabric::tick`], registers are processed sinks-first in a
//! topological order computed at configuration-load time. This models the
//! hardware's ready-signal propagation exactly: a register freed this cycle
//! can accept a new value this cycle, giving an initiation interval of one
//! without letting any value traverse more than one hop per cycle.

use std::collections::VecDeque;

use dyser_trace::{detail, EventKind, TraceBuffer, TraceEvent};

use crate::config::topo;
use crate::config::{ConfigError, FabricConfig, FabricConfigError, InDir, OperandSrc, OutDir};
use crate::geom::{FabricGeometry, FuId, SwitchId};
use crate::op::{FuKind, Value};
use crate::stats::FabricStats;

/// Depth of the input/output port FIFOs, as in the prototype.
pub const DEFAULT_FIFO_DEPTH: usize = 4;

/// Width of the configuration bus in bits per cycle.
pub const DEFAULT_CONFIG_BUS_BITS: u64 = 64;

#[derive(Debug, Clone)]
struct FuState {
    config: Option<crate::config::FuConfig>,
    latch: [Option<Value>; 3],
    /// In-flight operations: `(ready_cycle, value)`, FIFO order.
    pipe: VecDeque<(u64, Value)>,
    out: Option<Value>,
}

impl FuState {
    fn empty() -> Self {
        FuState { config: None, latch: [None; 3], pipe: VecDeque::new(), out: None }
    }

    fn in_flight(&self) -> usize {
        self.latch.iter().flatten().count() + self.pipe.len() + usize::from(self.out.is_some())
    }
}

/// Where a switch-output register delivers its value, resolved once at
/// configuration-load time so the per-cycle loop does no topology math.
#[derive(Debug, Clone, Copy)]
enum RegDest {
    /// Into another switch: the [`RouteTable`] consumer key of
    /// `(destination switch, arriving line)`.
    Switch { key: u32 },
    /// Into an FU operand latch.
    FuLatch { fu: u32, slot: u8 },
    /// Into an output-port FIFO.
    Port { port: u32 },
}

/// One configured register in the sinks-first topological move order.
#[derive(Debug, Clone, Copy)]
struct RegStep {
    /// Register index: `switch_index * 8 + OutDir::index()`.
    src: u32,
    dest: RegDest,
}

/// Dense routing tables precomputed from a configuration.
///
/// Everything `tick` needs per cycle is resolved here once per
/// `load_config`: consumer lists for every `(switch, input line)` pair in
/// CSR form, the register move plan, each FU's output-line key, and the
/// set of input ports the configuration actually wires. The tick loop
/// then runs on flat index arithmetic with zero heap allocation.
#[derive(Debug, Clone)]
struct RouteTable {
    /// CSR offsets into `targets`, indexed by
    /// `switch_index * InDir::COUNT + InDir::index()`; length is one more
    /// than the key count.
    offsets: Vec<u32>,
    /// Concatenated consumer register indices for every key.
    targets: Vec<u32>,
    /// Register move plan, in sinks-first topological order.
    steps: Vec<RegStep>,
    /// Per FU index, the consumer key of its output switch's `FuOut` line.
    fu_out_keys: Vec<u32>,
    /// Indices of the FUs the configuration actually programs; the FU
    /// phases iterate only these instead of the whole grid.
    active_fus: Vec<u32>,
    /// `(port, key)` for each input port whose `ExtIn` line has consumers.
    wired_inputs: Vec<(u32, u32)>,
}

impl RouteTable {
    fn key(geom: &FabricGeometry, sw: SwitchId, line: InDir) -> u32 {
        (geom.switch_index(sw) * InDir::COUNT + line.index()) as u32
    }

    /// Consumer register indices of input line `key`.
    fn consumers(&self, key: u32) -> &[u32] {
        let lo = self.offsets[key as usize] as usize;
        let hi = self.offsets[key as usize + 1] as usize;
        &self.targets[lo..hi]
    }

    fn build(
        geom: &FabricGeometry,
        config: &FabricConfig,
        reg_order: &[(SwitchId, OutDir)],
    ) -> Self {
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); geom.switch_count() * InDir::COUNT];
        for sw in geom.switches() {
            let si = geom.switch_index(sw);
            for (d, line) in config.switch(sw).routes() {
                lists[si * InDir::COUNT + line.index()].push((si * 8 + d.index()) as u32);
            }
        }
        let mut offsets = Vec::with_capacity(lists.len() + 1);
        let mut targets = Vec::new();
        offsets.push(0u32);
        for list in &lists {
            targets.extend_from_slice(list);
            offsets.push(targets.len() as u32);
        }

        let steps = reg_order
            .iter()
            .map(|&(sw, d)| {
                let dest = match d {
                    OutDir::North | OutDir::South | OutDir::East | OutDir::West => {
                        let dest = topo::neighbor(geom, sw, d)
                            .expect("validated mesh route has a neighbour");
                        RegDest::Switch { key: Self::key(geom, dest, topo::mirror(d)) }
                    }
                    OutDir::FuOp0 | OutDir::FuOp1 | OutDir::FuOp2 => {
                        let (fu, slot) = topo::fu_operand_target(geom, sw, d)
                            .expect("validated operand route targets an FU");
                        RegDest::FuLatch { fu: geom.fu_index(fu) as u32, slot: slot as u8 }
                    }
                    OutDir::ExtOut => {
                        let port = geom
                            .switch_output_port(sw)
                            .expect("validated ExtOut route sits on an output edge");
                        RegDest::Port { port: port as u32 }
                    }
                };
                RegStep { src: (geom.switch_index(sw) * 8 + d.index()) as u32, dest }
            })
            .collect();

        let fu_out_keys = geom
            .fus()
            .map(|fu| Self::key(geom, topo::fu_output_switch(fu), InDir::FuOut))
            .collect();

        let active_fus = geom
            .fus()
            .filter(|&fu| config.fu(fu).is_some())
            .map(|fu| geom.fu_index(fu) as u32)
            .collect();

        let mut wired_inputs = Vec::new();
        let mut table =
            RouteTable { offsets, targets, steps, fu_out_keys, active_fus, wired_inputs: vec![] };
        for port in 0..geom.input_ports() {
            let sw = geom.input_port_switch(port).expect("port index in range");
            let key = Self::key(geom, sw, InDir::ExtIn);
            if !table.consumers(key).is_empty() {
                wired_inputs.push((port as u32, key));
            }
        }
        table.wired_inputs = wired_inputs;
        table
    }
}

/// Copies `value` into every consumer register of `key`, atomically (all
/// must be free). Returns whether the value moved.
fn deliver(
    regs: &mut [Option<Value>],
    table: &RouteTable,
    key: u32,
    value: Value,
    stats: &mut FabricStats,
) -> bool {
    let consumers = table.consumers(key);
    if consumers.is_empty() {
        return false;
    }
    if consumers.iter().any(|&i| regs[i as usize].is_some()) {
        return false;
    }
    for &i in consumers {
        regs[i as usize] = Some(value);
    }
    stats.fanout_copies += (consumers.len() - 1) as u64;
    true
}

#[derive(Debug, Clone)]
struct Active {
    config: FabricConfig,
    /// Precomputed routing tables (see [`RouteTable`]).
    table: RouteTable,
    /// Register contents, indexed by `switch_index * 8 + OutDir::index()`.
    regs: Vec<Option<Value>>,
    fus: Vec<FuState>,
    in_fifos: Vec<VecDeque<Value>>,
    out_fifos: Vec<VecDeque<Value>>,
    /// Values occupying FU pipeline stages, maintained incrementally so
    /// the quiescence check never walks the grid.
    pipe_count: usize,
    /// Whether the state is a fixed point of [`Fabric::tick`]: the last
    /// tick moved nothing, fired nothing, and no FU pipeline entry is
    /// waiting on a future cycle. Ticks preserve this until an external
    /// event (port send, output receive, configuration load) perturbs
    /// the state, so a stationary tick is counters-only.
    stationary: bool,
}

/// The DySER fabric: geometry, hardware kinds, and execution state.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct Fabric {
    geom: FabricGeometry,
    kinds: Vec<FuKind>,
    fifo_depth: usize,
    config_bus_bits: u64,
    cycle: u64,
    active: Option<Active>,
    stats: FabricStats,
    /// `None` unless tracing was enabled: the disabled path is a single
    /// branch per would-be event (see DESIGN.md, "Observability").
    tracer: Option<Box<TraceBuffer>>,
}

impl Fabric {
    /// Creates a fabric with the default heterogeneous kind pattern.
    pub fn new(geom: FabricGeometry) -> Self {
        let kinds = geom.fus().map(|f| FuKind::default_pattern(f.row, f.col)).collect();
        Self::build(geom, kinds)
    }

    /// Creates a fabric where every site is a [`FuKind::Universal`] unit
    /// (used by idealised sweeps).
    pub fn universal(geom: FabricGeometry) -> Self {
        Self::build(geom, vec![FuKind::Universal; geom.fu_count()])
    }

    /// Creates a fabric with explicit per-site kinds (row-major).
    ///
    /// # Errors
    ///
    /// Returns [`FabricConfigError::KindCountMismatch`] if
    /// `kinds.len() != geom.fu_count()`.
    pub fn with_kinds(geom: FabricGeometry, kinds: Vec<FuKind>) -> Result<Self, FabricConfigError> {
        if kinds.len() != geom.fu_count() {
            return Err(FabricConfigError::KindCountMismatch {
                expected: geom.fu_count(),
                got: kinds.len(),
            });
        }
        Ok(Self::build(geom, kinds))
    }

    /// Infallible constructor for kinds vectors built from the geometry.
    fn build(geom: FabricGeometry, kinds: Vec<FuKind>) -> Self {
        debug_assert_eq!(kinds.len(), geom.fu_count(), "one kind per FU site");
        Fabric {
            geom,
            kinds,
            fifo_depth: DEFAULT_FIFO_DEPTH,
            config_bus_bits: DEFAULT_CONFIG_BUS_BITS,
            cycle: 0,
            active: None,
            stats: FabricStats::default(),
            tracer: None,
        }
    }

    /// Sets the port FIFO depth (default [`DEFAULT_FIFO_DEPTH`]).
    ///
    /// # Errors
    ///
    /// Returns [`FabricConfigError::ZeroFifoDepth`] if `depth` is zero.
    pub fn set_fifo_depth(&mut self, depth: usize) -> Result<(), FabricConfigError> {
        if depth == 0 {
            return Err(FabricConfigError::ZeroFifoDepth);
        }
        self.fifo_depth = depth;
        Ok(())
    }

    /// Enables fabric event tracing (FU fires and port transfers) into a
    /// ring buffer of at most `capacity` events.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.tracer = Some(Box::new(TraceBuffer::new(capacity)));
    }

    /// Takes the trace buffer (disabling further tracing), if any.
    pub fn take_trace(&mut self) -> Option<Box<TraceBuffer>> {
        self.tracer.take()
    }

    /// The fabric geometry.
    pub fn geometry(&self) -> FabricGeometry {
        self.geom
    }

    /// Per-site hardware kinds (row-major).
    pub fn kinds(&self) -> &[FuKind] {
        &self.kinds
    }

    /// The hardware kind at `fu`.
    pub fn kind_at(&self, fu: FuId) -> FuKind {
        self.kinds[self.geom.fu_index(fu)]
    }

    /// Accumulated activity statistics.
    pub fn stats(&self) -> &FabricStats {
        &self.stats
    }

    /// Current cycle count (total ticks since construction).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The name of the active configuration, if any.
    pub fn active_config_name(&self) -> Option<&str> {
        self.active.as_ref().map(|a| a.config.name())
    }

    /// The active configuration, if any.
    pub fn active_config(&self) -> Option<&FabricConfig> {
        self.active.as_ref().map(|a| &a.config)
    }

    /// Cycles needed to stream in a configuration over the config bus.
    pub fn config_load_cycles(&self, config: &FabricConfig) -> u64 {
        config.frame_bits().div_ceil(self.config_bus_bits)
    }

    /// Loads a configuration, replacing any active one and clearing all
    /// in-flight state. Timing (the load latency) is charged by the caller
    /// using [`Fabric::config_load_cycles`].
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is structurally invalid, built
    /// for a different geometry, or uses an operation unsupported by the
    /// hardware kind at its site.
    pub fn load_config(&mut self, config: &FabricConfig) -> Result<(), ConfigError> {
        if config.geometry() != self.geom {
            return Err(ConfigError::GeometryMismatch {
                config: config.geometry(),
                fabric: self.geom,
            });
        }
        config.validate()?;
        for fu in self.geom.fus() {
            if let Some(fc) = config.fu(fu) {
                let kind = self.kind_at(fu);
                if !kind.supports(fc.op) {
                    return Err(ConfigError::UnsupportedOp { fu, kind, op: fc.op });
                }
            }
        }
        let reg_order = config.check_acyclic()?;
        let table = RouteTable::build(&self.geom, config, &reg_order);
        let mut fus: Vec<FuState> = (0..self.geom.fu_count()).map(|_| FuState::empty()).collect();
        for fu in self.geom.fus() {
            fus[self.geom.fu_index(fu)].config = config.fu(fu).copied();
        }
        self.stats.configs_loaded += 1;
        self.stats.config_bits += config.frame_bits();
        // A configured FU with no switch-fed operand (constants only)
        // fires every cycle unconditionally, so a fabric holding one is
        // never stationary — not even freshly loaded and empty.
        let free_running = self.geom.fus().filter_map(|fu| config.fu(fu)).any(|fc| {
            !fc.operands.iter().any(|o| matches!(o, OperandSrc::Switch))
        });
        self.active = Some(Active {
            config: config.clone(),
            table,
            regs: vec![None; self.geom.switch_count() * 8],
            fus,
            in_fifos: vec![VecDeque::new(); self.geom.input_ports()],
            out_fifos: vec![VecDeque::new(); self.geom.output_ports()],
            pipe_count: 0,
            stationary: !free_running,
        });
        Ok(())
    }

    /// Unloads the active configuration, discarding in-flight state.
    pub fn unload(&mut self) {
        self.active = None;
    }

    /// Tries to enqueue a value on input port `port`.
    ///
    /// Returns `false` (and the caller stalls) if no configuration is
    /// active, the port does not exist, or its FIFO is full.
    pub fn try_send(&mut self, port: usize, value: Value) -> bool {
        let depth = self.fifo_depth;
        let Some(active) = self.active.as_mut() else { return false };
        let Some(fifo) = active.in_fifos.get_mut(port) else { return false };
        if fifo.len() >= depth {
            return false;
        }
        fifo.push_back(value);
        active.stationary = false;
        self.stats.port_in += 1;
        if let Some(tracer) = self.tracer.as_deref_mut() {
            tracer.record(TraceEvent {
                cycle: self.cycle,
                kind: EventKind::PortTransfer,
                arg: port as u64,
                detail: detail::PORT_IN,
            });
        }
        true
    }

    /// Tries to dequeue a value from output port `port`.
    pub fn try_recv(&mut self, port: usize) -> Option<Value> {
        let active = self.active.as_mut()?;
        let v = active.out_fifos.get_mut(port)?.pop_front()?;
        // The pop frees output-FIFO space a blocked route register may
        // have been waiting for, so the state may move again.
        active.stationary = false;
        self.stats.port_out += 1;
        if let Some(tracer) = self.tracer.as_deref_mut() {
            tracer.record(TraceEvent {
                cycle: self.cycle,
                kind: EventKind::PortTransfer,
                arg: port as u64,
                detail: detail::PORT_OUT,
            });
        }
        Some(v)
    }

    /// Number of values buffered on output port `port`.
    pub fn output_pending(&self, port: usize) -> usize {
        self.active
            .as_ref()
            .and_then(|a| a.out_fifos.get(port))
            .map_or(0, VecDeque::len)
    }

    /// Free slots on input port `port`'s FIFO.
    pub fn input_free(&self, port: usize) -> usize {
        self.active
            .as_ref()
            .and_then(|a| a.in_fifos.get(port))
            .map_or(0, |f| self.fifo_depth.saturating_sub(f.len()))
    }

    /// Values in flight inside the fabric: input FIFOs, route registers,
    /// operand latches, FU pipelines, and FU output buffers. Output FIFOs
    /// are *excluded* — their values are results awaiting `drecv`.
    pub fn in_flight(&self) -> usize {
        let Some(a) = &self.active else { return 0 };
        let fifos: usize = a.in_fifos.iter().map(VecDeque::len).sum();
        let regs = a.regs.iter().flatten().count();
        let fus: usize = a.fus.iter().map(FuState::in_flight).sum();
        fifos + regs + fus
    }

    /// The scalar input ports behind vector input port `vp`.
    pub fn vec_in_ports(&self, vp: usize) -> &[usize] {
        self.active.as_ref().map(|a| a.config.vec_in(vp)).unwrap_or(&[])
    }

    /// The scalar output ports behind vector output port `vp`.
    pub fn vec_out_ports(&self, vp: usize) -> &[usize] {
        self.active.as_ref().map(|a| a.config.vec_out(vp)).unwrap_or(&[])
    }

    /// Counters-only cycle advance: what a tick does when there is no
    /// value anywhere to move. Shared by the idle early path of
    /// [`Fabric::tick`] and the bulk skip of [`Fabric::tick_n`].
    fn advance_idle(&mut self, n: u64) {
        self.cycle += n;
        self.stats.cycles += n;
    }

    /// Whether a tick would do no state-dependent work: no active
    /// configuration, or an active one whose state is a fixed point of
    /// [`Fabric::tick`] (nothing moved or fired last tick and no FU
    /// pipeline entry is waiting on a future cycle). Values parked in
    /// output FIFOs do not count — ticks never move them, only
    /// `try_recv` does — but a `try_recv` clears the fixed point because
    /// it frees space a blocked route register may claim.
    ///
    /// While this holds, `n` ticks are equivalent to adding `n` to the
    /// cycle counters, which is exactly what [`Fabric::tick_n`] exploits.
    /// O(1): the fixed-point flag is maintained by `tick` itself and by
    /// the external entry points (`try_send`, `try_recv`,
    /// `load_config`), never by walking the grid.
    pub fn is_quiescent(&self) -> bool {
        self.active.as_ref().is_none_or(|a| a.stationary)
    }

    /// Advances the fabric by `n` cycles, bulk-advancing the counters
    /// while the fabric is quiescent and stepping [`Fabric::tick`] while
    /// it is busy. All statistics are bit-identical to `n` plain ticks.
    pub fn tick_n(&mut self, n: u64) {
        let mut remaining = n;
        while remaining > 0 && !self.is_quiescent() {
            self.tick();
            remaining -= 1;
        }
        self.advance_idle(remaining);
    }

    /// Advances the fabric by one cycle.
    ///
    /// The five phases run entirely on the precomputed [`RouteTable`]:
    /// flat index loads and stores, no per-cycle topology lookups and no
    /// heap allocation in steady state. An unconfigured or stationary
    /// fabric (see [`Fabric::is_quiescent`]) takes a counters-only early
    /// path with none of the per-phase setup.
    pub fn tick(&mut self) {
        if self.is_quiescent() {
            self.advance_idle(1);
            return;
        }
        self.cycle += 1;
        self.stats.cycles += 1;
        let cycle = self.cycle;
        let fifo_depth = self.fifo_depth;
        let stats = &mut self.stats;
        let mut tracer = self.tracer.as_deref_mut();
        let Some(active) = self.active.as_mut() else { return };
        let Active { table, regs, fus, in_fifos, out_fifos, pipe_count, stationary, .. } = active;
        let mut any_activity = false;
        let mut any_fire = false;

        // Phase 1: move switch-output registers, sinks first.
        for step in &table.steps {
            let src = step.src as usize;
            let Some(value) = regs[src] else { continue };
            let moved = match step.dest {
                RegDest::Switch { key } => deliver(regs, table, key, value, stats),
                RegDest::FuLatch { fu, slot } => {
                    let latch = &mut fus[fu as usize].latch[slot as usize];
                    if latch.is_none() {
                        *latch = Some(value);
                        true
                    } else {
                        false
                    }
                }
                RegDest::Port { port } => {
                    let fifo = &mut out_fifos[port as usize];
                    if fifo.len() < fifo_depth {
                        fifo.push_back(value);
                        true
                    } else {
                        false
                    }
                }
            };
            if moved {
                regs[src] = None;
                stats.switch_hops += 1;
                any_activity = true;
            }
        }

        // Phase 2: inject FU results into their south-east switches.
        // Only configured FUs can hold results, so the FU phases walk the
        // active list instead of the whole grid.
        for &fi in &table.active_fus {
            let fi = fi as usize;
            let Some(value) = fus[fi].out else { continue };
            let key = table.fu_out_keys[fi];
            if table.consumers(key).is_empty() {
                // No route consumes this result: drop it (manual configs only).
                fus[fi].out = None;
                stats.dropped_results += 1;
                continue;
            }
            if deliver(regs, table, key, value, stats) {
                fus[fi].out = None;
                any_activity = true;
            }
        }

        // Phase 3: advance FU pipelines into output buffers.
        for &fi in &table.active_fus {
            let fu_state = &mut fus[fi as usize];
            if fu_state.out.is_none() {
                if let Some(&(ready, v)) = fu_state.pipe.front() {
                    if cycle >= ready {
                        fu_state.out = Some(v);
                        fu_state.pipe.pop_front();
                        *pipe_count -= 1;
                        any_activity = true;
                    }
                }
            }
        }

        // Phase 4: fire ready FUs.
        for &fi in &table.active_fus {
            let fu_state = &mut fus[fi as usize];
            let Some(cfg) = fu_state.config else { continue };
            let capacity = cfg.op.latency().max(1) as usize;
            if fu_state.pipe.len() >= capacity {
                continue;
            }
            let mut operands = [0u64; 3];
            let mut ready = true;
            for (slot, operand) in operands.iter_mut().enumerate() {
                match cfg.operands[slot] {
                    OperandSrc::None => {}
                    OperandSrc::Const(c) => *operand = c,
                    OperandSrc::Switch => match fu_state.latch[slot] {
                        Some(v) => *operand = v,
                        None => {
                            ready = false;
                            break;
                        }
                    },
                }
            }
            if !ready {
                continue;
            }
            for slot in 0..3 {
                if matches!(cfg.operands[slot], OperandSrc::Switch) {
                    fu_state.latch[slot] = None;
                }
            }
            let result = cfg.op.eval(operands[0], operands[1], operands[2]);
            fu_state.pipe.push_back((cycle + cfg.op.latency(), result));
            *pipe_count += 1;
            if cfg.op.is_fp() {
                stats.fp_fu_fires += 1;
            } else {
                stats.int_fu_fires += 1;
            }
            if let Some(tracer) = tracer.as_mut() {
                tracer.record(TraceEvent {
                    cycle,
                    kind: EventKind::FabricFire,
                    arg: fi as u64,
                    detail: if cfg.op.is_fp() { detail::FIRE_FP } else { detail::FIRE_INT },
                });
            }
            any_activity = true;
            any_fire = true;
        }

        // Phase 5: inject input-port values into their wired edge switches.
        for &(port, key) in &table.wired_inputs {
            let Some(&value) = in_fifos[port as usize].front() else { continue };
            if deliver(regs, table, key, value, stats) {
                in_fifos[port as usize].pop_front();
                any_activity = true;
            }
        }

        if any_activity {
            stats.active_cycles += 1;
        }
        if any_fire {
            stats.fire_cycles += 1;
        }
        // A tick that moved nothing, fired nothing, and left no pipeline
        // entry pending cannot do anything on later cycles either — the
        // state is a fixed point until an external event perturbs it.
        *stationary = !any_activity && !any_fire && *pipe_count == 0;
    }

    /// Runs until output port `port` has a value, then returns it.
    ///
    /// Returns `None` if `max_cycles` elapse first.
    pub fn run_until_output(&mut self, port: usize, max_cycles: u64) -> Option<Value> {
        for _ in 0..max_cycles {
            if let Some(v) = self.try_recv(port) {
                return Some(v);
            }
            self.tick();
        }
        self.try_recv(port)
    }

    /// Runs until nothing is in flight (at most `max_cycles`); returns
    /// whether the fabric drained.
    pub fn drain(&mut self, max_cycles: u64) -> bool {
        for _ in 0..max_cycles {
            if self.in_flight() == 0 {
                return true;
            }
            self.tick();
        }
        self.in_flight() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ConfigBuilder;
    use crate::op::FuOp;

    fn simple_add_fabric() -> Fabric {
        let geom = FabricGeometry::new(2, 2);
        let mut b = ConfigBuilder::new(geom);
        let a = b.input_value(0);
        let c = b.input_value(1);
        let sum = b.op(FuOp::IAdd, &[a, c]);
        b.output_value(sum, 0);
        let config = b.build().expect("trivial DFG must route");
        let mut fabric = Fabric::new(geom);
        fabric.load_config(&config).expect("built config must load");
        fabric
    }

    #[test]
    fn add_two_values() {
        let mut f = simple_add_fabric();
        assert!(f.try_send(0, 20));
        assert!(f.try_send(1, 22));
        assert_eq!(f.run_until_output(0, 100), Some(42));
    }

    #[test]
    fn pipelined_invocations_overlap() {
        let mut f = simple_add_fabric();
        // Push four invocations back to back (FIFO depth is 4).
        for i in 0..4u64 {
            assert!(f.try_send(0, i));
            assert!(f.try_send(1, 100));
        }
        let mut results = Vec::new();
        let mut first_latency = None;
        for cycle in 0..200u64 {
            f.tick();
            while let Some(v) = f.try_recv(0) {
                if first_latency.is_none() {
                    first_latency = Some(cycle);
                }
                results.push(v);
            }
            if results.len() == 4 {
                // Pipelining: all four results arrive within a few cycles of
                // the first, far sooner than 4x the pipeline depth.
                assert!(cycle - first_latency.unwrap() <= 6, "results must be pipelined");
                break;
            }
        }
        assert_eq!(results, vec![100, 101, 102, 103], "in-order results");
    }

    #[test]
    fn fifo_backpressure() {
        let mut f = simple_add_fabric();
        // Port 1 never gets values, so port 0's pipeline backs up: 4 FIFO
        // slots plus a small number of route registers absorb sends, then
        // the fabric refuses.
        let mut accepted = 0;
        for i in 0..32u64 {
            for _ in 0..4 {
                f.tick();
            }
            if f.try_send(0, i) {
                accepted += 1;
            }
        }
        assert!(accepted < 32, "backpressure must eventually refuse sends");
        assert!(f.in_flight() > 0);
    }

    #[test]
    fn drain_after_balanced_input() {
        let mut f = simple_add_fabric();
        f.try_send(0, 1);
        f.try_send(1, 2);
        assert!(!f.drain(0), "not drained immediately");
        assert!(f.drain(100), "drains once the result reaches the output FIFO");
        assert_eq!(f.try_recv(0), Some(3));
    }

    #[test]
    fn send_fails_without_config() {
        let mut f = Fabric::new(FabricGeometry::new(2, 2));
        assert!(!f.try_send(0, 1));
        assert_eq!(f.try_recv(0), None);
        assert_eq!(f.in_flight(), 0);
        f.tick(); // must not panic
    }

    #[test]
    fn send_to_missing_port_fails() {
        let mut f = simple_add_fabric();
        assert!(!f.try_send(99, 1));
    }

    #[test]
    fn stats_track_activity() {
        let mut f = simple_add_fabric();
        f.try_send(0, 5);
        f.try_send(1, 6);
        f.run_until_output(0, 100).unwrap();
        let s = f.stats();
        assert_eq!(s.port_in, 2);
        assert_eq!(s.port_out, 1);
        assert_eq!(s.int_fu_fires, 1);
        assert!(s.switch_hops >= 2);
        assert!(s.active_cycles > 0);
        assert_eq!(s.configs_loaded, 1);
        assert!(s.config_bits > 0);
    }

    #[test]
    fn geometry_mismatch_rejected() {
        let geom = FabricGeometry::new(2, 2);
        let mut b = ConfigBuilder::new(geom);
        let a = b.input_value(0);
        b.output_value(a, 0);
        let config = b.build().unwrap();
        let mut f = Fabric::new(FabricGeometry::new(4, 4));
        assert!(matches!(
            f.load_config(&config),
            Err(ConfigError::GeometryMismatch { .. })
        ));
    }

    #[test]
    fn unsupported_op_rejected_by_kind() {
        // An all-IntSimple fabric cannot host an FMul.
        let geom = FabricGeometry::new(2, 2);
        let mut b = ConfigBuilder::new(geom);
        let a = b.input_value(0);
        let c = b.input_value(1);
        let m = b.op(FuOp::FMul, &[a, c]);
        b.output_value(m, 0);
        // Build against a universal placement so the builder succeeds...
        let config = b.build().unwrap();
        // ...then load into restricted hardware.
        let mut f = Fabric::with_kinds(geom, vec![FuKind::IntSimple; 4]).unwrap();
        assert!(matches!(f.load_config(&config), Err(ConfigError::UnsupportedOp { .. })));
    }

    #[test]
    fn reconfiguration_clears_state() {
        let mut f = simple_add_fabric();
        f.try_send(0, 1);
        assert!(f.in_flight() > 0);
        let cfg = f.active_config().unwrap().clone();
        f.load_config(&cfg).unwrap();
        assert_eq!(f.in_flight(), 0, "reload clears in-flight values");
        assert_eq!(f.stats().configs_loaded, 2);
    }

    #[test]
    fn config_load_cycles_scale_with_frame() {
        let f = Fabric::new(FabricGeometry::new(2, 2));
        let g = Fabric::new(FabricGeometry::new(8, 8));
        let c_small = FabricConfig::empty(FabricGeometry::new(2, 2));
        let c_big = FabricConfig::empty(FabricGeometry::new(8, 8));
        assert!(g.config_load_cycles(&c_big) > f.config_load_cycles(&c_small));
        assert!(f.config_load_cycles(&c_small) > 0);
    }

    #[test]
    fn select_predication() {
        let geom = FabricGeometry::new(2, 2);
        let mut b = ConfigBuilder::new(geom);
        let a = b.input_value(0);
        let c = b.input_value(1);
        let p = b.input_value(2);
        let sel = b.op(FuOp::Select, &[a, c, p]);
        b.output_value(sel, 0);
        let config = b.build().expect("select must route");
        let mut f = Fabric::new(geom);
        f.load_config(&config).unwrap();
        f.try_send(0, 111);
        f.try_send(1, 222);
        f.try_send(2, 1);
        assert_eq!(f.run_until_output(0, 100), Some(111));
        f.try_send(0, 111);
        f.try_send(1, 222);
        f.try_send(2, 0);
        assert_eq!(f.run_until_output(0, 100), Some(222));
    }

    #[test]
    fn constants_do_not_consume() {
        let geom = FabricGeometry::new(2, 2);
        let mut b = ConfigBuilder::new(geom);
        let a = b.input_value(0);
        let k = b.const_value(10);
        let sum = b.op(FuOp::IMul, &[a, k]);
        b.output_value(sum, 0);
        let config = b.build().unwrap();
        let mut f = Fabric::new(geom);
        f.load_config(&config).unwrap();
        for i in 1..=3u64 {
            f.try_send(0, i);
        }
        let mut out = Vec::new();
        for _ in 0..100 {
            f.tick();
            while let Some(v) = f.try_recv(0) {
                out.push(v);
            }
            if out.len() == 3 {
                break;
            }
        }
        assert_eq!(out, vec![10, 20, 30]);
    }
}
