//! The cycle-level fabric execution engine.
//!
//! Values move through the configured routes one hop per cycle with
//! credit-based flow control: every switch output is a single-entry elastic
//! register that advances only when its consumer has room. FUs fire in
//! dataflow fashion — when every bound operand has arrived and the FU's
//! internal pipeline has a free slot — so back-to-back invocations of the
//! configured region overlap at full throughput.
//!
//! Within one [`Fabric::tick`], registers are processed sinks-first in a
//! topological order computed at configuration-load time. This models the
//! hardware's ready-signal propagation exactly: a register freed this cycle
//! can accept a new value this cycle, giving an initiation interval of one
//! without letting any value traverse more than one hop per cycle.
//!
//! The per-cycle loop is *specialized to the loaded bitstream*. At
//! `load_config` time the configured dataflow graph is compiled into a
//! fixed evaluation schedule: the sinks-first step order, per-FU plans
//! (operand masks, preresolved constants, pipeline capacity), and a
//! *wake graph* recording, for every resource a value can block on —
//! a downstream register, an FU operand latch, an output-FIFO slot —
//! which producers to re-arm when it frees. The tick loop then runs
//! event-driven over ready bitmaps: a blocked register or idle FU is
//! parked after one failed attempt and revisited only when a wake edge
//! fires, so a tick's cost scales with the values actually moving, not
//! with the size of the configuration. The schedule is pure
//! acceleration: the visit order and every observable outcome are
//! bit-identical to the exhaustive scan.

use std::collections::VecDeque;
use std::ops::Range;

use dyser_trace::{detail, EventKind, TraceBuffer, TraceEvent};

use crate::config::topo;
use crate::config::{ConfigError, FabricConfig, FabricConfigError, InDir, OperandSrc, OutDir};
use crate::geom::{FabricGeometry, FuId, SwitchId};
use crate::op::{FuKind, FuOp, Value};
use crate::stats::FabricStats;

/// Depth of the input/output port FIFOs, as in the prototype.
pub const DEFAULT_FIFO_DEPTH: usize = 4;

/// Width of the configuration bus in bits per cycle.
pub const DEFAULT_CONFIG_BUS_BITS: u64 = 64;

#[derive(Debug, Clone)]
struct FuState {
    latch: [Option<Value>; 3],
    /// Bit `slot` set iff `latch[slot]` holds a value — the O(1) operand
    /// readiness word the fire phase compares against
    /// [`FuPlan::switch_mask`].
    latched: u8,
    /// In-flight operations: `(ready_cycle, value)`, FIFO order.
    pipe: VecDeque<(u64, Value)>,
    out: Option<Value>,
}

impl FuState {
    fn empty() -> Self {
        FuState { latch: [None; 3], latched: 0, pipe: VecDeque::new(), out: None }
    }

    fn in_flight(&self) -> usize {
        self.latch.iter().flatten().count() + self.pipe.len() + usize::from(self.out.is_some())
    }
}

/// Where a switch-output register delivers its value, resolved once at
/// configuration-load time so the per-cycle loop does no topology math.
#[derive(Debug, Clone, Copy)]
enum RegDest {
    /// Into another switch: the [`RouteTable`] consumer key of
    /// `(destination switch, arriving line)`.
    Switch { key: u32 },
    /// Into an FU operand latch.
    FuLatch { fu: u32, slot: u8 },
    /// Into an output-port FIFO.
    Port { port: u32 },
}

/// One configured register in the sinks-first topological move order.
#[derive(Debug, Clone, Copy)]
struct RegStep {
    /// Register index: `switch_index * 8 + OutDir::index()`.
    src: u32,
    dest: RegDest,
}

/// Everything the merged FU phase needs about one configured unit,
/// resolved once per `load_config` so the per-cycle loop never consults
/// the [`FuConfig`](crate::config::FuConfig) itself.
#[derive(Debug, Clone, Copy)]
struct FuPlan {
    /// FU index into the state array.
    fu: u32,
    /// Consumer key of the FU's output switch's `FuOut` line.
    out_key: u32,
    /// Whether `out_key` has any consumers (results drop otherwise).
    out_wired: bool,
    op: FuOp,
    /// Pipeline capacity: `op.latency().max(1)`.
    capacity: u32,
    latency: u64,
    is_fp: bool,
    /// Bit `slot` set iff operand `slot` arrives from the switch mesh; a
    /// fire is ready exactly when `latched & switch_mask == switch_mask`.
    switch_mask: u8,
    /// Operand template with `Const` slots prefilled.
    const_ops: [Value; 3],
    /// Per operand slot, the step index of the register feeding the
    /// latch (`u32::MAX` if none): a fire frees the latches, so it
    /// re-arms these steps.
    feeders: [u32; 3],
}

/// Tag bit in a wake-graph entry: set when the entry re-arms an FU plan
/// (by plan index) rather than a register step.
const FU_WAKE: u32 = 1 << 31;

/// Tag bit in a wake-graph entry: set when the entry re-arms an input
/// port's injection (by `wired_inputs` index) rather than a register
/// step.
const PORT_WAKE: u32 = 1 << 30;

/// Dense routing tables precomputed from a configuration.
///
/// Everything `tick` needs per cycle is resolved here once per
/// `load_config`: consumer lists for every `(switch, input line)` pair in
/// CSR form, the register move plan, each FU's output-line key, and the
/// set of input ports the configuration actually wires. The tick loop
/// then runs on flat index arithmetic with zero heap allocation.
///
/// Every u32 index column — the consumer CSR, the wake-graph CSR, and
/// the port/FU translation maps — lives in one `arena` allocation per
/// bitstream, addressed through the column ranges below. The columns a
/// busy tick walks together (wake lists after consumer lists, feeder
/// maps after both) are therefore contiguous in memory instead of
/// scattered across eight separately grown `Vec`s.
#[derive(Debug, Clone)]
struct RouteTable {
    /// The single index arena; see the column ranges below.
    arena: Box<[u32]>,
    /// CSR offsets into the `targets` column, indexed by
    /// `switch_index * InDir::COUNT + InDir::index()`; length is one more
    /// than the key count.
    offsets: Range<usize>,
    /// Concatenated consumer *step* indices for every key. Every consumer
    /// register is a configured route and therefore has a step, and
    /// register values live in the step-indexed `vals` array, so
    /// `deliver` needs no register-to-step translation.
    targets: Range<usize>,
    /// Wake graph in CSR form, indexed by step: when step `s` moves (its
    /// source register frees), the `wake_targets` slice between offsets
    /// `s` and `s + 1` lists the producers delivering *into* that
    /// register — upstream steps, plus FU plans tagged with [`FU_WAKE`] —
    /// that the free may unblock. Producers are always source-ward of the
    /// freed register, i.e. at strictly higher step indices, so a wake
    /// fired mid-scan lands ahead of the scan cursor and is attempted in
    /// the same tick, exactly like the exhaustive sinks-first pass.
    wake_offsets: Range<usize>,
    wake_targets: Range<usize>,
    /// Per output port, the step index of the `ExtOut` register feeding
    /// it (`u32::MAX` if none): a `try_recv` frees FIFO space, so it
    /// re-arms this step.
    port_feeders: Range<usize>,
    /// Maps an FU index to its plan index (`u32::MAX` if unconfigured):
    /// an operand latch filling re-arms the owning unit.
    fu_to_plan: Range<usize>,
    /// Maps an input port to its wired-input index (`u32::MAX` if
    /// unwired): a `try_send` arms the port's injection entry.
    port_inject: Range<usize>,
    /// Flattened `(port, key)` pairs for each input port whose `ExtIn`
    /// line has consumers.
    wired_inputs: Range<usize>,
    /// Register move plan, in sinks-first topological order.
    steps: Vec<RegStep>,
    /// One plan per FU the configuration actually programs; the merged
    /// FU phase iterates only these instead of the whole grid.
    fu_plans: Vec<FuPlan>,
    /// Longest FU latency in the configuration, sizing the pipeline
    /// timer wheel.
    max_latency: u64,
}

impl RouteTable {
    fn key(geom: &FabricGeometry, sw: SwitchId, line: InDir) -> u32 {
        (geom.switch_index(sw) * InDir::COUNT + line.index()) as u32
    }

    /// Consumer register indices of input line `key`.
    fn consumers(&self, key: u32) -> &[u32] {
        let lo = self.arena[self.offsets.start + key as usize] as usize;
        let hi = self.arena[self.offsets.start + key as usize + 1] as usize;
        &self.arena[self.targets.start + lo..self.targets.start + hi]
    }

    /// Wake-graph entries to re-arm when step `step` moves.
    fn wakes(&self, step: usize) -> &[u32] {
        let lo = self.arena[self.wake_offsets.start + step] as usize;
        let hi = self.arena[self.wake_offsets.start + step + 1] as usize;
        &self.arena[self.wake_targets.start + lo..self.wake_targets.start + hi]
    }

    /// The plan index of FU `fu` (`u32::MAX` if unconfigured).
    fn plan_of(&self, fu: usize) -> u32 {
        self.arena[self.fu_to_plan.start + fu]
    }

    /// The step feeding output port `port` (`u32::MAX` if none).
    fn port_feeder(&self, port: usize) -> u32 {
        self.arena[self.port_feeders.start + port]
    }

    /// The wired-input index of input port `port` (`u32::MAX` if unwired).
    fn port_injector(&self, port: usize) -> u32 {
        self.arena[self.port_inject.start + port]
    }

    /// The `(port, key)` pair of wired input `ei`.
    fn wired_input(&self, ei: usize) -> (u32, u32) {
        let at = self.wired_inputs.start + ei * 2;
        (self.arena[at], self.arena[at + 1])
    }

    fn wired_input_count(&self) -> usize {
        self.wired_inputs.len() / 2
    }

    fn build(
        geom: &FabricGeometry,
        config: &FabricConfig,
        reg_order: &[(SwitchId, OutDir)],
    ) -> Self {
        // CSR slice over locally built columns, used until the arena is
        // assembled at the end of the build.
        fn csr<'a>(offsets: &[u32], targets: &'a [u32], key: u32) -> &'a [u32] {
            let lo = offsets[key as usize] as usize;
            let hi = offsets[key as usize + 1] as usize;
            &targets[lo..hi]
        }

        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); geom.switch_count() * InDir::COUNT];
        for sw in geom.switches() {
            let si = geom.switch_index(sw);
            for (d, line) in config.switch(sw).routes() {
                lists[si * InDir::COUNT + line.index()].push((si * 8 + d.index()) as u32);
            }
        }
        let mut offsets = Vec::with_capacity(lists.len() + 1);
        let mut targets = Vec::new();
        offsets.push(0u32);
        for list in &lists {
            targets.extend_from_slice(list);
            offsets.push(targets.len() as u32);
        }

        let steps = reg_order
            .iter()
            .map(|&(sw, d)| {
                let dest = match d {
                    OutDir::North | OutDir::South | OutDir::East | OutDir::West => {
                        let dest = topo::neighbor(geom, sw, d)
                            .expect("validated mesh route has a neighbour");
                        RegDest::Switch { key: Self::key(geom, dest, topo::mirror(d)) }
                    }
                    OutDir::FuOp0 | OutDir::FuOp1 | OutDir::FuOp2 => {
                        let (fu, slot) = topo::fu_operand_target(geom, sw, d)
                            .expect("validated operand route targets an FU");
                        RegDest::FuLatch { fu: geom.fu_index(fu) as u32, slot: slot as u8 }
                    }
                    OutDir::ExtOut => {
                        let port = geom
                            .switch_output_port(sw)
                            .expect("validated ExtOut route sits on an output edge");
                        RegDest::Port { port: port as u32 }
                    }
                };
                RegStep { src: (geom.switch_index(sw) * 8 + d.index()) as u32, dest }
            })
            .collect();

        let steps: Vec<RegStep> = steps;
        let mut reg_to_step = vec![u32::MAX; geom.switch_count() * 8];
        for (i, step) in steps.iter().enumerate() {
            reg_to_step[step.src as usize] = i as u32;
        }
        debug_assert!(
            targets.iter().all(|&t| reg_to_step[t as usize] != u32::MAX),
            "every consumer register is a configured route with a step"
        );
        // Remap consumer targets from register indices to step indices so
        // the hot delivery path needs no register-to-step translation.
        for t in &mut targets {
            *t = reg_to_step[*t as usize];
        }

        // Who feeds each FU operand latch and each output port: the step
        // whose register delivers into it (unique by mesh topology).
        let mut latch_feeders = vec![u32::MAX; geom.fu_count() * 3];
        let mut port_feeders = vec![u32::MAX; geom.output_ports()];
        for (i, step) in steps.iter().enumerate() {
            match step.dest {
                RegDest::FuLatch { fu, slot } => {
                    let cell = &mut latch_feeders[fu as usize * 3 + slot as usize];
                    debug_assert_eq!(*cell, u32::MAX, "one route per operand latch");
                    *cell = i as u32;
                }
                RegDest::Port { port } => {
                    let cell = &mut port_feeders[port as usize];
                    debug_assert_eq!(*cell, u32::MAX, "one ExtOut route per output port");
                    *cell = i as u32;
                }
                RegDest::Switch { .. } => {}
            }
        }

        let mut fu_to_plan = vec![u32::MAX; geom.fu_count()];
        let fu_plans: Vec<FuPlan> = geom
            .fus()
            .filter_map(|fu| config.fu(fu).map(|fc| (fu, fc)))
            .map(|(fu, fc)| {
                let fi = geom.fu_index(fu);
                let out_key = Self::key(geom, topo::fu_output_switch(fu), InDir::FuOut);
                let mut switch_mask = 0u8;
                let mut const_ops = [0u64; 3];
                for (slot, operand) in fc.operands.iter().enumerate() {
                    match operand {
                        OperandSrc::None => {}
                        OperandSrc::Const(c) => const_ops[slot] = *c,
                        OperandSrc::Switch => switch_mask |= 1 << slot,
                    }
                }
                FuPlan {
                    fu: fi as u32,
                    out_key,
                    out_wired: !csr(&offsets, &targets, out_key).is_empty(),
                    op: fc.op,
                    capacity: fc.op.latency().max(1) as u32,
                    latency: fc.op.latency(),
                    is_fp: fc.op.is_fp(),
                    switch_mask,
                    const_ops,
                    feeders: [
                        latch_feeders[fi * 3],
                        latch_feeders[fi * 3 + 1],
                        latch_feeders[fi * 3 + 2],
                    ],
                }
            })
            .collect();
        for (qi, plan) in fu_plans.iter().enumerate() {
            fu_to_plan[plan.fu as usize] = qi as u32;
        }
        let max_latency = fu_plans.iter().map(|p| p.latency).max().unwrap_or(0);

        let mut port_inject = vec![u32::MAX; geom.input_ports()];
        let mut wired_inputs = Vec::new();
        for (port, inject) in port_inject.iter_mut().enumerate() {
            let sw = geom.input_port_switch(port).expect("port index in range");
            let key = Self::key(geom, sw, InDir::ExtIn);
            if !csr(&offsets, &targets, key).is_empty() {
                *inject = (wired_inputs.len() / 2) as u32;
                wired_inputs.push(port as u32);
                wired_inputs.push(key);
            }
        }

        // The wake graph: for every step, the producers delivering into
        // its register, which its move may unblock — upstream steps, FU
        // results, and input-port injections.
        let mut wake_lists: Vec<Vec<u32>> = vec![Vec::new(); steps.len()];
        for (pi, step) in steps.iter().enumerate() {
            if let RegDest::Switch { key } = step.dest {
                for &c in csr(&offsets, &targets, key) {
                    wake_lists[c as usize].push(pi as u32);
                }
            }
        }
        for (qi, plan) in fu_plans.iter().enumerate() {
            if plan.out_wired {
                for &c in csr(&offsets, &targets, plan.out_key) {
                    wake_lists[c as usize].push(qi as u32 | FU_WAKE);
                }
            }
        }
        for ei in 0..wired_inputs.len() / 2 {
            let key = wired_inputs[ei * 2 + 1];
            for &c in csr(&offsets, &targets, key) {
                wake_lists[c as usize].push(ei as u32 | PORT_WAKE);
            }
        }
        let mut wake_offsets = Vec::with_capacity(wake_lists.len() + 1);
        let mut wake_targets = Vec::new();
        wake_offsets.push(0u32);
        for list in &wake_lists {
            wake_targets.extend_from_slice(list);
            wake_offsets.push(wake_targets.len() as u32);
        }

        // Pack every index column into the one arena, in the order the
        // hot phases touch them.
        fn pack(arena: &mut Vec<u32>, column: &[u32]) -> Range<usize> {
            let start = arena.len();
            arena.extend_from_slice(column);
            start..arena.len()
        }
        let total = offsets.len()
            + targets.len()
            + wake_offsets.len()
            + wake_targets.len()
            + port_feeders.len()
            + fu_to_plan.len()
            + port_inject.len()
            + wired_inputs.len();
        let mut arena = Vec::with_capacity(total);
        let offsets = pack(&mut arena, &offsets);
        let targets = pack(&mut arena, &targets);
        let wake_offsets = pack(&mut arena, &wake_offsets);
        let wake_targets = pack(&mut arena, &wake_targets);
        let port_feeders = pack(&mut arena, &port_feeders);
        let fu_to_plan = pack(&mut arena, &fu_to_plan);
        let port_inject = pack(&mut arena, &port_inject);
        let wired_inputs = pack(&mut arena, &wired_inputs);
        RouteTable {
            arena: arena.into_boxed_slice(),
            offsets,
            targets,
            wake_offsets,
            wake_targets,
            port_feeders,
            fu_to_plan,
            port_inject,
            wired_inputs,
            steps,
            fu_plans,
            max_latency,
        }
    }
}

/// Copies `value` into every consumer register of `key`, atomically (all
/// must be free), marking each filled register's step in the `fresh`
/// bitmap — the batch merged into the ready set at end of tick, so a
/// value delivered this cycle moves no earlier than the next one.
/// Returns whether the value moved.
fn deliver(
    vals: &mut [Value],
    occ: &mut [u64],
    fresh: &mut [u64],
    table: &RouteTable,
    key: u32,
    value: Value,
    stats: &mut FabricStats,
) -> bool {
    let consumers = table.consumers(key);
    if consumers.is_empty() {
        return false;
    }
    if consumers.iter().any(|&c| occ[c as usize / 64] >> (c % 64) & 1 != 0) {
        return false;
    }
    for &c in consumers {
        vals[c as usize] = value;
        occ[c as usize / 64] |= 1 << (c % 64);
        fresh[c as usize / 64] |= 1 << (c % 64);
    }
    stats.fanout_copies += (consumers.len() - 1) as u64;
    true
}

#[derive(Debug, Clone)]
struct Active {
    config: FabricConfig,
    /// Precomputed routing tables (see [`RouteTable`]).
    table: RouteTable,
    /// The mutable per-cycle state — value slots and every ready bitmap —
    /// as one arena allocation per bitstream, laid out in the order the
    /// tick phases touch it:
    ///
    /// | column         | words              | contents                    |
    /// |----------------|--------------------|-----------------------------|
    /// | `vals`         | `step_words * 64`  | register contents, by step  |
    /// | `occ`          | `step_words`       | occupancy bitmap            |
    /// | `ready`        | `step_words`       | attemptable steps           |
    /// | `fresh`        | `step_words`       | steps filled this tick      |
    /// | `fu_ready`     | `fu_words`         | attemptable FU plans        |
    /// | `inject_ready` | rest               | attemptable port injections |
    ///
    /// `vals[s]` is meaningful only where `occ` has bit `s` set. A step's
    /// ready bit clears on attempt and re-arms through the wake graph; a
    /// value delivered this tick lands in `fresh` and merges into `ready`
    /// at end of tick (one hop per cycle). FU and injection entries park
    /// on a failed attempt until a [`FU_WAKE`]/[`PORT_WAKE`] edge, a
    /// latch fill, or the timer wheel re-arms them.
    hot: Box<[u64]>,
    /// Words per step-indexed bitmap column in `hot`.
    step_words: usize,
    /// Words in the `fu_ready` column of `hot`.
    fu_words: usize,
    /// Timer wheel over FU plans: a unit whose pipeline front completes
    /// at a future cycle parks here instead of polling, and is re-armed
    /// into `fu_ready` when that cycle arrives. Slot count is a power of
    /// two exceeding the longest configured latency, so entries never
    /// collide across wheel revolutions. Wheel entries imply
    /// `pipe_count > 0`, which blocks the quiescent bulk skip, so every
    /// scheduled slot is actually drained.
    wheel: Vec<Vec<u32>>,
    fus: Vec<FuState>,
    in_fifos: Vec<VecDeque<Value>>,
    out_fifos: Vec<VecDeque<Value>>,
    /// Values occupying FU pipeline stages, maintained incrementally so
    /// the quiescence check never walks the grid.
    pipe_count: usize,
    /// Whether the state is a fixed point of [`Fabric::tick`]: the last
    /// tick moved nothing, fired nothing, and no FU pipeline entry is
    /// waiting on a future cycle. Ticks preserve this until an external
    /// event (port send, output receive, configuration load) perturbs
    /// the state, so a stationary tick is counters-only.
    stationary: bool,
}

/// The hot arena's columns, in layout order:
/// `(vals, occ, ready, fresh, fu_ready, inject_ready)`.
type HotColumns<'a> =
    (&'a mut [u64], &'a mut [u64], &'a mut [u64], &'a mut [u64], &'a mut [u64], &'a mut [u64]);

impl Active {
    /// Splits the hot arena into its columns.
    fn columns(hot: &mut [u64], step_words: usize, fu_words: usize) -> HotColumns<'_> {
        let (vals, rest) = hot.split_at_mut(step_words * 64);
        let (occ, rest) = rest.split_at_mut(step_words);
        let (ready, rest) = rest.split_at_mut(step_words);
        let (fresh, rest) = rest.split_at_mut(step_words);
        let (fu_ready, inject_ready) = rest.split_at_mut(fu_words);
        (vals, occ, ready, fresh, fu_ready, inject_ready)
    }

    /// The occupancy bitmap column, read-only.
    fn occ_words(&self) -> &[u64] {
        &self.hot[self.step_words * 64..self.step_words * 65]
    }

    /// Arms step `step` in the `ready` column (a `try_recv` freed the
    /// output-FIFO slot its register was blocked on).
    fn arm_step(&mut self, step: u32) {
        let base = self.step_words * 64 + self.step_words;
        self.hot[base + step as usize / 64] |= 1 << (step % 64);
    }

    /// Arms wired input `ei` in the `inject_ready` column (a `try_send`
    /// gave its FIFO a value to inject).
    fn arm_injection(&mut self, ei: u32) {
        let base = self.step_words * 64 + 3 * self.step_words + self.fu_words;
        self.hot[base + ei as usize / 64] |= 1 << (ei % 64);
    }
}

/// The DySER fabric: geometry, hardware kinds, and execution state.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct Fabric {
    geom: FabricGeometry,
    kinds: Vec<FuKind>,
    fifo_depth: usize,
    config_bus_bits: u64,
    cycle: u64,
    active: Option<Active>,
    stats: FabricStats,
    /// `None` unless tracing was enabled: the disabled path is a single
    /// branch per would-be event (see DESIGN.md, "Observability").
    tracer: Option<Box<TraceBuffer>>,
}

impl Fabric {
    /// Creates a fabric with the default heterogeneous kind pattern.
    pub fn new(geom: FabricGeometry) -> Self {
        let kinds = geom.fus().map(|f| FuKind::default_pattern(f.row, f.col)).collect();
        Self::build(geom, kinds)
    }

    /// Creates a fabric where every site is a [`FuKind::Universal`] unit
    /// (used by idealised sweeps).
    pub fn universal(geom: FabricGeometry) -> Self {
        Self::build(geom, vec![FuKind::Universal; geom.fu_count()])
    }

    /// Creates a fabric with explicit per-site kinds (row-major).
    ///
    /// # Errors
    ///
    /// Returns [`FabricConfigError::KindCountMismatch`] if
    /// `kinds.len() != geom.fu_count()`.
    pub fn with_kinds(geom: FabricGeometry, kinds: Vec<FuKind>) -> Result<Self, FabricConfigError> {
        if kinds.len() != geom.fu_count() {
            return Err(FabricConfigError::KindCountMismatch {
                expected: geom.fu_count(),
                got: kinds.len(),
            });
        }
        Ok(Self::build(geom, kinds))
    }

    /// Infallible constructor for kinds vectors built from the geometry.
    fn build(geom: FabricGeometry, kinds: Vec<FuKind>) -> Self {
        debug_assert_eq!(kinds.len(), geom.fu_count(), "one kind per FU site");
        Fabric {
            geom,
            kinds,
            fifo_depth: DEFAULT_FIFO_DEPTH,
            config_bus_bits: DEFAULT_CONFIG_BUS_BITS,
            cycle: 0,
            active: None,
            stats: FabricStats::default(),
            tracer: None,
        }
    }

    /// Sets the port FIFO depth (default [`DEFAULT_FIFO_DEPTH`]).
    ///
    /// # Errors
    ///
    /// Returns [`FabricConfigError::ZeroFifoDepth`] if `depth` is zero.
    pub fn set_fifo_depth(&mut self, depth: usize) -> Result<(), FabricConfigError> {
        if depth == 0 {
            return Err(FabricConfigError::ZeroFifoDepth);
        }
        self.fifo_depth = depth;
        Ok(())
    }

    /// Enables fabric event tracing (FU fires and port transfers) into a
    /// ring buffer of at most `capacity` events.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.tracer = Some(Box::new(TraceBuffer::new(capacity)));
    }

    /// Takes the trace buffer (disabling further tracing), if any.
    pub fn take_trace(&mut self) -> Option<Box<TraceBuffer>> {
        self.tracer.take()
    }

    /// The fabric geometry.
    pub fn geometry(&self) -> FabricGeometry {
        self.geom
    }

    /// Per-site hardware kinds (row-major).
    pub fn kinds(&self) -> &[FuKind] {
        &self.kinds
    }

    /// The hardware kind at `fu`.
    pub fn kind_at(&self, fu: FuId) -> FuKind {
        self.kinds[self.geom.fu_index(fu)]
    }

    /// Accumulated activity statistics.
    pub fn stats(&self) -> &FabricStats {
        &self.stats
    }

    /// Current cycle count (total ticks since construction).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The name of the active configuration, if any.
    pub fn active_config_name(&self) -> Option<&str> {
        self.active.as_ref().map(|a| a.config.name())
    }

    /// The active configuration, if any.
    pub fn active_config(&self) -> Option<&FabricConfig> {
        self.active.as_ref().map(|a| &a.config)
    }

    /// Cycles needed to stream in a configuration over the config bus.
    pub fn config_load_cycles(&self, config: &FabricConfig) -> u64 {
        config.frame_bits().div_ceil(self.config_bus_bits)
    }

    /// Loads a configuration, replacing any active one and clearing all
    /// in-flight state. Timing (the load latency) is charged by the caller
    /// using [`Fabric::config_load_cycles`].
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is structurally invalid, built
    /// for a different geometry, or uses an operation unsupported by the
    /// hardware kind at its site.
    pub fn load_config(&mut self, config: &FabricConfig) -> Result<(), ConfigError> {
        if config.geometry() != self.geom {
            return Err(ConfigError::GeometryMismatch {
                config: config.geometry(),
                fabric: self.geom,
            });
        }
        config.validate()?;
        for fu in self.geom.fus() {
            if let Some(fc) = config.fu(fu) {
                let kind = self.kind_at(fu);
                if !kind.supports(fc.op) {
                    return Err(ConfigError::UnsupportedOp { fu, kind, op: fc.op });
                }
            }
        }
        let reg_order = config.check_acyclic()?;
        let table = RouteTable::build(&self.geom, config, &reg_order);
        let fus: Vec<FuState> = (0..self.geom.fu_count()).map(|_| FuState::empty()).collect();
        self.stats.configs_loaded += 1;
        self.stats.config_bits += config.frame_bits();
        // A configured FU with no switch-fed operand (constants only)
        // fires every cycle unconditionally, so a fabric holding one is
        // never stationary — not even freshly loaded and empty — and
        // starts (and stays) on the FU ready list.
        let free_running = table.fu_plans.iter().any(|p| p.switch_mask == 0);
        let step_words = table.steps.len().div_ceil(64);
        let fu_words = table.fu_plans.len().div_ceil(64);
        let inject_words = table.wired_input_count().div_ceil(64);
        let mut hot = vec![0u64; step_words * 67 + fu_words + inject_words];
        let fu_base = step_words * 67;
        for (qi, plan) in table.fu_plans.iter().enumerate() {
            if plan.switch_mask == 0 {
                hot[fu_base + qi / 64] |= 1 << (qi % 64);
            }
        }
        // `+ 2` headroom: a latency-0 fire is deferred to `cycle + 1`, so
        // the farthest wheel slot is `max_latency.max(1)` ticks out.
        let wheel_slots = usize::try_from(table.max_latency + 2)
            .expect("latency fits usize")
            .next_power_of_two();
        self.active = Some(Active {
            config: config.clone(),
            table,
            hot: hot.into_boxed_slice(),
            step_words,
            fu_words,
            wheel: vec![Vec::new(); wheel_slots],
            fus,
            in_fifos: vec![VecDeque::new(); self.geom.input_ports()],
            out_fifos: vec![VecDeque::new(); self.geom.output_ports()],
            pipe_count: 0,
            stationary: !free_running,
        });
        Ok(())
    }

    /// Unloads the active configuration, discarding in-flight state.
    pub fn unload(&mut self) {
        self.active = None;
    }

    /// Tries to enqueue a value on input port `port`.
    ///
    /// Returns `false` (and the caller stalls) if no configuration is
    /// active, the port does not exist, or its FIFO is full.
    pub fn try_send(&mut self, port: usize, value: Value) -> bool {
        let depth = self.fifo_depth;
        let Some(active) = self.active.as_mut() else { return false };
        let Some(fifo) = active.in_fifos.get_mut(port) else { return false };
        if fifo.len() >= depth {
            return false;
        }
        fifo.push_back(value);
        active.stationary = false;
        // The enqueue makes the port's injection attemptable. The port
        // index is in range: the FIFO lookup above already bounded it.
        let ei = active.table.port_injector(port);
        if ei != u32::MAX {
            active.arm_injection(ei);
        }
        self.stats.port_in += 1;
        if let Some(tracer) = self.tracer.as_deref_mut() {
            tracer.record(TraceEvent {
                cycle: self.cycle,
                kind: EventKind::PortTransfer,
                arg: port as u64,
                detail: detail::PORT_IN,
            });
        }
        true
    }

    /// Tries to dequeue a value from output port `port`.
    pub fn try_recv(&mut self, port: usize) -> Option<Value> {
        let active = self.active.as_mut()?;
        let v = active.out_fifos.get_mut(port)?.pop_front()?;
        // The pop frees output-FIFO space a blocked route register may
        // have been waiting for, so the state may move again; re-arm the
        // register feeding this port.
        active.stationary = false;
        let feeder = active.table.port_feeder(port);
        if feeder != u32::MAX {
            active.arm_step(feeder);
        }
        self.stats.port_out += 1;
        if let Some(tracer) = self.tracer.as_deref_mut() {
            tracer.record(TraceEvent {
                cycle: self.cycle,
                kind: EventKind::PortTransfer,
                arg: port as u64,
                detail: detail::PORT_OUT,
            });
        }
        Some(v)
    }

    /// Number of values buffered on output port `port`.
    pub fn output_pending(&self, port: usize) -> usize {
        self.active
            .as_ref()
            .and_then(|a| a.out_fifos.get(port))
            .map_or(0, VecDeque::len)
    }

    /// Free slots on input port `port`'s FIFO.
    pub fn input_free(&self, port: usize) -> usize {
        self.active
            .as_ref()
            .and_then(|a| a.in_fifos.get(port))
            .map_or(0, |f| self.fifo_depth.saturating_sub(f.len()))
    }

    /// Values in flight inside the fabric: input FIFOs, route registers,
    /// operand latches, FU pipelines, and FU output buffers. Output FIFOs
    /// are *excluded* — their values are results awaiting `drecv`.
    pub fn in_flight(&self) -> usize {
        let Some(a) = &self.active else { return 0 };
        let fifos: usize = a.in_fifos.iter().map(VecDeque::len).sum();
        let regs: usize = a.occ_words().iter().map(|w| w.count_ones() as usize).sum();
        let fus: usize = a.fus.iter().map(FuState::in_flight).sum();
        fifos + regs + fus
    }

    /// The scalar input ports behind vector input port `vp`.
    pub fn vec_in_ports(&self, vp: usize) -> &[usize] {
        self.active.as_ref().map(|a| a.config.vec_in(vp)).unwrap_or(&[])
    }

    /// The scalar output ports behind vector output port `vp`.
    pub fn vec_out_ports(&self, vp: usize) -> &[usize] {
        self.active.as_ref().map(|a| a.config.vec_out(vp)).unwrap_or(&[])
    }

    /// Counters-only cycle advance: what a tick does when there is no
    /// value anywhere to move. Shared by the idle early path of
    /// [`Fabric::tick`] and the bulk skip of [`Fabric::tick_n`].
    fn advance_idle(&mut self, n: u64) {
        self.cycle += n;
        self.stats.cycles += n;
    }

    /// Whether a tick would do no state-dependent work: no active
    /// configuration, or an active one whose state is a fixed point of
    /// [`Fabric::tick`] (nothing moved or fired last tick and no FU
    /// pipeline entry is waiting on a future cycle). Values parked in
    /// output FIFOs do not count — ticks never move them, only
    /// `try_recv` does — but a `try_recv` clears the fixed point because
    /// it frees space a blocked route register may claim.
    ///
    /// While this holds, `n` ticks are equivalent to adding `n` to the
    /// cycle counters, which is exactly what [`Fabric::tick_n`] exploits.
    /// O(1): the fixed-point flag is maintained by `tick` itself and by
    /// the external entry points (`try_send`, `try_recv`,
    /// `load_config`), never by walking the grid.
    pub fn is_quiescent(&self) -> bool {
        self.active.as_ref().is_none_or(|a| a.stationary)
    }

    /// Advances the fabric by `n` cycles, bulk-advancing the counters
    /// while the fabric is quiescent and stepping [`Fabric::tick`] while
    /// it is busy. All statistics are bit-identical to `n` plain ticks.
    pub fn tick_n(&mut self, n: u64) {
        let mut remaining = n;
        while remaining > 0 && !self.is_quiescent() {
            self.tick();
            remaining -= 1;
        }
        self.advance_idle(remaining);
    }

    /// Advances the fabric by one cycle.
    ///
    /// The phases run entirely on the schedule precomputed by
    /// [`RouteTable::build`]: flat index loads and stores, no per-cycle
    /// topology lookups and no heap allocation in steady state. The
    /// register phase scans the ready bitmap rather than the full step
    /// list, and the merged FU pass visits only units flagged ready, so
    /// the cost of a busy tick tracks the values that can actually move.
    /// An unconfigured or stationary fabric (see
    /// [`Fabric::is_quiescent`]) takes a counters-only early path with
    /// none of the per-phase setup.
    pub fn tick(&mut self) {
        if self.is_quiescent() {
            self.advance_idle(1);
            return;
        }
        self.cycle += 1;
        self.stats.cycles += 1;
        let cycle = self.cycle;
        let fifo_depth = self.fifo_depth;
        let stats = &mut self.stats;
        let mut tracer = self.tracer.as_deref_mut();
        let Some(active) = self.active.as_mut() else { return };
        let Active {
            table,
            hot,
            step_words,
            fu_words,
            wheel,
            fus,
            in_fifos,
            out_fifos,
            pipe_count,
            stationary,
            ..
        } = active;
        let (vals, occ, ready, fresh, fu_ready, inject_ready) =
            Active::columns(hot, *step_words, *fu_words);
        let mut any_activity = false;
        let mut any_fire = false;

        // Units whose pipeline front completes this cycle come off the
        // timer wheel and back onto the ready list.
        let slot = (cycle & (wheel.len() as u64 - 1)) as usize;
        for &qi in &wheel[slot] {
            fu_ready[qi as usize / 64] |= 1 << (qi % 64);
        }
        wheel[slot].clear();

        // Phase 1: attempt the ready steps in ascending — sinks-first —
        // order. Every attempt consumes its bit; a move re-arms the
        // freed register's upstream producers through the wake graph.
        // Wake targets sit at strictly higher step indices than the scan
        // cursor, so the word is re-read each iteration and a same-tick
        // wake is attempted exactly where the exhaustive pass would have
        // reached it. Values delivered this tick land in `fresh`, not
        // `ready`, and wait for the next tick — one hop per cycle.
        for w in 0..ready.len() {
            loop {
                let pending = ready[w];
                if pending == 0 {
                    break;
                }
                let bit = pending.trailing_zeros() as usize;
                ready[w] &= !(1u64 << bit);
                let si = w * 64 + bit;
                if occ[w] >> bit & 1 == 0 {
                    continue;
                }
                let step = table.steps[si];
                let value = vals[si];
                let moved = match step.dest {
                    RegDest::Switch { key } => deliver(vals, occ, fresh, table, key, value, stats),
                    RegDest::FuLatch { fu, slot } => {
                        let fu_state = &mut fus[fu as usize];
                        if fu_state.latch[slot as usize].is_none() {
                            fu_state.latch[slot as usize] = Some(value);
                            fu_state.latched |= 1 << slot;
                            // The arrival may let the unit fire this tick.
                            let plan = table.plan_of(fu as usize);
                            if plan != u32::MAX {
                                fu_ready[plan as usize / 64] |= 1 << (plan % 64);
                            }
                            true
                        } else {
                            false
                        }
                    }
                    RegDest::Port { port } => {
                        let fifo = &mut out_fifos[port as usize];
                        if fifo.len() < fifo_depth {
                            fifo.push_back(value);
                            true
                        } else {
                            false
                        }
                    }
                };
                if moved {
                    occ[w] &= !(1u64 << bit);
                    stats.switch_hops += 1;
                    any_activity = true;
                    for &wake in table.wakes(si) {
                        if wake & (FU_WAKE | PORT_WAKE) == 0 {
                            debug_assert!(wake as usize > si, "wakes point source-ward");
                            ready[wake as usize / 64] |= 1 << (wake % 64);
                        } else if wake & FU_WAKE != 0 {
                            let plan = wake & !FU_WAKE;
                            fu_ready[plan as usize / 64] |= 1 << (plan % 64);
                        } else {
                            let ei = wake & !PORT_WAKE;
                            inject_ready[ei as usize / 64] |= 1 << (ei % 64);
                        }
                    }
                }
            }
        }

        // Phases 2–4 merged into one pass over the ready FUs, in plan
        // (FU) order. Only the result-injection phase touches shared
        // state (the registers), and ready flags are only ever *set*
        // during this pass, never consulted mid-pass, so the observable
        // sequence of register writes, stats, and trace events matches
        // the exhaustive three-phase sweep. A unit leaves the ready list
        // unless its pipeline is still advancing toward a free output
        // buffer (or it free-runs on constants, or it must drop an
        // unwired result next tick); everything else is re-armed by
        // latch fills and wake edges.
        for (w, ready_word) in fu_ready.iter_mut().enumerate() {
            let mut snapshot = *ready_word;
            *ready_word = 0;
            while snapshot != 0 {
                let bit = snapshot.trailing_zeros() as usize;
                snapshot &= snapshot - 1;
                let plan = &table.fu_plans[w * 64 + bit];
                let fu_state = &mut fus[plan.fu as usize];
                // Inject the FU result into its south-east switch (phase 2).
                let mut out_blocked = false;
                if let Some(value) = fu_state.out {
                    if !plan.out_wired {
                        // No route consumes this result: drop it (manual configs only).
                        fu_state.out = None;
                        stats.dropped_results += 1;
                    } else if deliver(vals, occ, fresh, table, plan.out_key, value, stats) {
                        fu_state.out = None;
                        any_activity = true;
                    } else {
                        out_blocked = true;
                    }
                }
                // Advance the FU pipeline into the output buffer (phase 3).
                if fu_state.out.is_none() {
                    if let Some(&(ready_at, v)) = fu_state.pipe.front() {
                        if cycle >= ready_at {
                            fu_state.out = Some(v);
                            fu_state.pipe.pop_front();
                            *pipe_count -= 1;
                            any_activity = true;
                        }
                    }
                }
                // Fire when every bound operand is latched and the
                // pipeline has room (phase 4).
                if fu_state.pipe.len() < plan.capacity as usize
                    && (fu_state.latched & plan.switch_mask) == plan.switch_mask
                {
                    let mut operands = plan.const_ops;
                    let mut mask = plan.switch_mask;
                    while mask != 0 {
                        let slot = mask.trailing_zeros() as usize;
                        mask &= mask - 1;
                        operands[slot] = fu_state.latch[slot]
                            .take()
                            .expect("latched bit tracks a filled latch");
                        // The freed latch re-arms the register feeding it.
                        let feeder = plan.feeders[slot];
                        if feeder != u32::MAX {
                            ready[feeder as usize / 64] |= 1 << (feeder % 64);
                        }
                    }
                    fu_state.latched &= !plan.switch_mask;
                    let result = plan.op.eval(operands[0], operands[1], operands[2]);
                    fu_state.pipe.push_back((cycle + plan.latency, result));
                    *pipe_count += 1;
                    if plan.is_fp {
                        stats.fp_fu_fires += 1;
                    } else {
                        stats.int_fu_fires += 1;
                    }
                    if let Some(tracer) = tracer.as_mut() {
                        tracer.record(TraceEvent {
                            cycle,
                            kind: EventKind::FabricFire,
                            arg: plan.fu as u64,
                            detail: if plan.is_fp { detail::FIRE_FP } else { detail::FIRE_INT },
                        });
                    }
                    any_activity = true;
                    any_fire = true;
                }
                // Stay scheduled only while next tick's visit can make
                // progress: a free-running unit, or a result buffered
                // this tick whose delivery has not yet been refused. A
                // refused delivery parks the unit until a wake edge
                // reports the downstream register freed; an idle unit
                // parks until an operand latch fills; a unit whose
                // pipeline front completes at a future cycle parks on
                // the timer wheel until then. (A latency-0 fire lands on
                // next tick's slot: the output buffer accepts it no
                // earlier, exactly as the every-tick visit would.)
                if plan.switch_mask == 0 || (fu_state.out.is_some() && !out_blocked) {
                    *ready_word |= 1 << bit;
                } else if fu_state.out.is_none() {
                    if let Some(&(ready_at, _)) = fu_state.pipe.front() {
                        let due = ready_at.max(cycle + 1);
                        let slot = (due & (wheel.len() as u64 - 1)) as usize;
                        wheel[slot].push((w * 64 + bit) as u32);
                    }
                }
            }
        }

        // Phase 5: inject input-port values into their wired edge
        // switches — armed entries only, in `wired_inputs` order. A
        // refused delivery parks the entry until a [`PORT_WAKE`] edge
        // reports a consumer register freed (deliveries never free
        // registers, so no wake can arrive mid-phase); a successful one
        // keeps the entry armed while the FIFO still holds values, and
        // `try_send` re-arms an entry drained empty.
        for (w, inject_word) in inject_ready.iter_mut().enumerate() {
            let mut snapshot = *inject_word;
            *inject_word = 0;
            while snapshot != 0 {
                let bit = snapshot.trailing_zeros() as usize;
                snapshot &= snapshot - 1;
                let (port, key) = table.wired_input(w * 64 + bit);
                let fifo = &mut in_fifos[port as usize];
                let Some(&value) = fifo.front() else { continue };
                if deliver(vals, occ, fresh, table, key, value, stats) {
                    fifo.pop_front();
                    any_activity = true;
                    if !fifo.is_empty() {
                        *inject_word |= 1 << bit;
                    }
                }
            }
        }

        // Registers filled this tick become attemptable next tick.
        for (r, f) in ready.iter_mut().zip(fresh.iter_mut()) {
            *r |= *f;
            *f = 0;
        }

        if any_activity {
            stats.active_cycles += 1;
        }
        if any_fire {
            stats.fire_cycles += 1;
        }
        // A tick that moved nothing, fired nothing, and left no pipeline
        // entry pending cannot do anything on later cycles either — the
        // state is a fixed point until an external event perturbs it.
        *stationary = !any_activity && !any_fire && *pipe_count == 0;
    }

    /// Runs until output port `port` has a value, then returns it.
    ///
    /// Returns `None` if `max_cycles` elapse first.
    pub fn run_until_output(&mut self, port: usize, max_cycles: u64) -> Option<Value> {
        for _ in 0..max_cycles {
            if let Some(v) = self.try_recv(port) {
                return Some(v);
            }
            self.tick();
        }
        self.try_recv(port)
    }

    /// Runs until nothing is in flight (at most `max_cycles`); returns
    /// whether the fabric drained.
    pub fn drain(&mut self, max_cycles: u64) -> bool {
        for _ in 0..max_cycles {
            if self.in_flight() == 0 {
                return true;
            }
            self.tick();
        }
        self.in_flight() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ConfigBuilder;
    use crate::op::FuOp;

    fn simple_add_fabric() -> Fabric {
        let geom = FabricGeometry::new(2, 2);
        let mut b = ConfigBuilder::new(geom);
        let a = b.input_value(0);
        let c = b.input_value(1);
        let sum = b.op(FuOp::IAdd, &[a, c]);
        b.output_value(sum, 0);
        let config = b.build().expect("trivial DFG must route");
        let mut fabric = Fabric::new(geom);
        fabric.load_config(&config).expect("built config must load");
        fabric
    }

    #[test]
    fn add_two_values() {
        let mut f = simple_add_fabric();
        assert!(f.try_send(0, 20));
        assert!(f.try_send(1, 22));
        assert_eq!(f.run_until_output(0, 100), Some(42));
    }

    #[test]
    fn pipelined_invocations_overlap() {
        let mut f = simple_add_fabric();
        // Push four invocations back to back (FIFO depth is 4).
        for i in 0..4u64 {
            assert!(f.try_send(0, i));
            assert!(f.try_send(1, 100));
        }
        let mut results = Vec::new();
        let mut first_latency = None;
        for cycle in 0..200u64 {
            f.tick();
            while let Some(v) = f.try_recv(0) {
                if first_latency.is_none() {
                    first_latency = Some(cycle);
                }
                results.push(v);
            }
            if results.len() == 4 {
                // Pipelining: all four results arrive within a few cycles of
                // the first, far sooner than 4x the pipeline depth.
                assert!(cycle - first_latency.unwrap() <= 6, "results must be pipelined");
                break;
            }
        }
        assert_eq!(results, vec![100, 101, 102, 103], "in-order results");
    }

    #[test]
    fn fifo_backpressure() {
        let mut f = simple_add_fabric();
        // Port 1 never gets values, so port 0's pipeline backs up: 4 FIFO
        // slots plus a small number of route registers absorb sends, then
        // the fabric refuses.
        let mut accepted = 0;
        for i in 0..32u64 {
            for _ in 0..4 {
                f.tick();
            }
            if f.try_send(0, i) {
                accepted += 1;
            }
        }
        assert!(accepted < 32, "backpressure must eventually refuse sends");
        assert!(f.in_flight() > 0);
    }

    #[test]
    fn drain_after_balanced_input() {
        let mut f = simple_add_fabric();
        f.try_send(0, 1);
        f.try_send(1, 2);
        assert!(!f.drain(0), "not drained immediately");
        assert!(f.drain(100), "drains once the result reaches the output FIFO");
        assert_eq!(f.try_recv(0), Some(3));
    }

    #[test]
    fn send_fails_without_config() {
        let mut f = Fabric::new(FabricGeometry::new(2, 2));
        assert!(!f.try_send(0, 1));
        assert_eq!(f.try_recv(0), None);
        assert_eq!(f.in_flight(), 0);
        f.tick(); // must not panic
    }

    #[test]
    fn send_to_missing_port_fails() {
        let mut f = simple_add_fabric();
        assert!(!f.try_send(99, 1));
    }

    #[test]
    fn stats_track_activity() {
        let mut f = simple_add_fabric();
        f.try_send(0, 5);
        f.try_send(1, 6);
        f.run_until_output(0, 100).unwrap();
        let s = f.stats();
        assert_eq!(s.port_in, 2);
        assert_eq!(s.port_out, 1);
        assert_eq!(s.int_fu_fires, 1);
        assert!(s.switch_hops >= 2);
        assert!(s.active_cycles > 0);
        assert_eq!(s.configs_loaded, 1);
        assert!(s.config_bits > 0);
    }

    #[test]
    fn geometry_mismatch_rejected() {
        let geom = FabricGeometry::new(2, 2);
        let mut b = ConfigBuilder::new(geom);
        let a = b.input_value(0);
        b.output_value(a, 0);
        let config = b.build().unwrap();
        let mut f = Fabric::new(FabricGeometry::new(4, 4));
        assert!(matches!(
            f.load_config(&config),
            Err(ConfigError::GeometryMismatch { .. })
        ));
    }

    #[test]
    fn unsupported_op_rejected_by_kind() {
        // An all-IntSimple fabric cannot host an FMul.
        let geom = FabricGeometry::new(2, 2);
        let mut b = ConfigBuilder::new(geom);
        let a = b.input_value(0);
        let c = b.input_value(1);
        let m = b.op(FuOp::FMul, &[a, c]);
        b.output_value(m, 0);
        // Build against a universal placement so the builder succeeds...
        let config = b.build().unwrap();
        // ...then load into restricted hardware.
        let mut f = Fabric::with_kinds(geom, vec![FuKind::IntSimple; 4]).unwrap();
        assert!(matches!(f.load_config(&config), Err(ConfigError::UnsupportedOp { .. })));
    }

    #[test]
    fn reconfiguration_clears_state() {
        let mut f = simple_add_fabric();
        f.try_send(0, 1);
        assert!(f.in_flight() > 0);
        let cfg = f.active_config().unwrap().clone();
        f.load_config(&cfg).unwrap();
        assert_eq!(f.in_flight(), 0, "reload clears in-flight values");
        assert_eq!(f.stats().configs_loaded, 2);
    }

    #[test]
    fn config_load_cycles_scale_with_frame() {
        let f = Fabric::new(FabricGeometry::new(2, 2));
        let g = Fabric::new(FabricGeometry::new(8, 8));
        let c_small = FabricConfig::empty(FabricGeometry::new(2, 2));
        let c_big = FabricConfig::empty(FabricGeometry::new(8, 8));
        assert!(g.config_load_cycles(&c_big) > f.config_load_cycles(&c_small));
        assert!(f.config_load_cycles(&c_small) > 0);
    }

    #[test]
    fn select_predication() {
        let geom = FabricGeometry::new(2, 2);
        let mut b = ConfigBuilder::new(geom);
        let a = b.input_value(0);
        let c = b.input_value(1);
        let p = b.input_value(2);
        let sel = b.op(FuOp::Select, &[a, c, p]);
        b.output_value(sel, 0);
        let config = b.build().expect("select must route");
        let mut f = Fabric::new(geom);
        f.load_config(&config).unwrap();
        f.try_send(0, 111);
        f.try_send(1, 222);
        f.try_send(2, 1);
        assert_eq!(f.run_until_output(0, 100), Some(111));
        f.try_send(0, 111);
        f.try_send(1, 222);
        f.try_send(2, 0);
        assert_eq!(f.run_until_output(0, 100), Some(222));
    }

    #[test]
    fn constants_do_not_consume() {
        let geom = FabricGeometry::new(2, 2);
        let mut b = ConfigBuilder::new(geom);
        let a = b.input_value(0);
        let k = b.const_value(10);
        let sum = b.op(FuOp::IMul, &[a, k]);
        b.output_value(sum, 0);
        let config = b.build().unwrap();
        let mut f = Fabric::new(geom);
        f.load_config(&config).unwrap();
        for i in 1..=3u64 {
            f.try_send(0, i);
        }
        let mut out = Vec::new();
        for _ in 0..100 {
            f.tick();
            while let Some(v) = f.try_recv(0) {
                out.push(v);
            }
            if out.len() == 3 {
                break;
            }
        }
        assert_eq!(out, vec![10, 20, 30]);
    }
}
