//! Fabric statistics: activity counters (for the energy model, E6) and
//! structural counts (for the resource table, E1).

use crate::config::{FabricConfig, OutDir};
use crate::geom::FabricGeometry;
use crate::op::FuKind;

/// Dynamic activity counters accumulated while the fabric executes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// Cycles the fabric was ticked.
    pub cycles: u64,
    /// Cycles in which at least one value moved or an FU fired.
    pub active_cycles: u64,
    /// Integer FU firings.
    pub int_fu_fires: u64,
    /// Floating-point FU firings.
    pub fp_fu_fires: u64,
    /// Cycles in which at least one FU fired (a compute-occupancy
    /// refinement of `active_cycles`, which also counts pure routing).
    pub fire_cycles: u64,
    /// Values moved across switch-output registers (one per hop).
    pub switch_hops: u64,
    /// Extra copies made by fan-out (beyond the first consumer).
    pub fanout_copies: u64,
    /// Values accepted on input ports.
    pub port_in: u64,
    /// Values delivered from output ports.
    pub port_out: u64,
    /// Configurations loaded.
    pub configs_loaded: u64,
    /// Total configuration bits streamed.
    pub config_bits: u64,
    /// Results dropped because no route consumed them (indicates a
    /// mis-built manual configuration; the compiler never produces these).
    pub dropped_results: u64,
}

impl FabricStats {
    /// Total FU firings.
    pub fn fu_fires(&self) -> u64 {
        self.int_fu_fires + self.fp_fu_fires
    }

    /// Fraction of ticked cycles with any activity.
    pub fn occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.active_cycles as f64 / self.cycles as f64
        }
    }

    /// Fraction of ticked cycles in which at least one FU fired.
    pub fn fire_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.fire_cycles as f64 / self.cycles as f64
        }
    }

    /// Cycles the fabric was ticked without any value movement.
    pub fn idle_cycles(&self) -> u64 {
        self.cycles.saturating_sub(self.active_cycles)
    }
}

/// Structural resource counts of a fabric geometry — the simulator-level
/// stand-in for the paper's FPGA resource table (see `DESIGN.md`, E1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StructuralStats {
    /// The geometry.
    pub geometry: FabricGeometry,
    /// Functional units in total.
    pub fus: usize,
    /// Simple integer units.
    pub int_simple: usize,
    /// Integer multiply/divide units.
    pub int_mul: usize,
    /// Floating-point add units.
    pub fp_add: usize,
    /// Floating-point multiply units.
    pub fp_mul: usize,
    /// Universal units.
    pub universal: usize,
    /// Switches.
    pub switches: usize,
    /// Directed physical links (switch outputs that exist).
    pub links: usize,
    /// Input ports.
    pub input_ports: usize,
    /// Output ports.
    pub output_ports: usize,
    /// Configuration frame size in bits (empty configuration).
    pub frame_bits: u64,
}

impl StructuralStats {
    /// Computes the structural statistics of a geometry with the given
    /// per-site hardware kinds.
    pub fn compute(geometry: FabricGeometry, kinds: &[FuKind]) -> Self {
        assert_eq!(kinds.len(), geometry.fu_count(), "one kind per FU site");
        let count = |k: FuKind| kinds.iter().filter(|&&x| x == k).count();
        let empty = FabricConfig::empty(geometry);
        let links = geometry
            .switches()
            .map(|sw| OutDir::ALL.iter().filter(|&&d| empty.output_exists(sw, d)).count())
            .sum();
        StructuralStats {
            geometry,
            fus: geometry.fu_count(),
            int_simple: count(FuKind::IntSimple),
            int_mul: count(FuKind::IntMul),
            fp_add: count(FuKind::FpAdd),
            fp_mul: count(FuKind::FpMul),
            universal: count(FuKind::Universal),
            switches: geometry.switch_count(),
            links,
            input_ports: geometry.input_ports(),
            output_ports: geometry.output_ports(),
            frame_bits: empty.frame_bits(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structural_counts_scale() {
        let g2 = FabricGeometry::new(2, 2);
        let g8 = FabricGeometry::new(8, 8);
        let k2: Vec<FuKind> =
            g2.fus().map(|f| FuKind::default_pattern(f.row, f.col)).collect();
        let k8: Vec<FuKind> =
            g8.fus().map(|f| FuKind::default_pattern(f.row, f.col)).collect();
        let s2 = StructuralStats::compute(g2, &k2);
        let s8 = StructuralStats::compute(g8, &k8);
        assert_eq!(s2.fus, 4);
        assert_eq!(s8.fus, 64);
        assert_eq!(s8.int_simple + s8.int_mul + s8.fp_add + s8.fp_mul + s8.universal, 64);
        assert!(s8.links > s2.links);
        assert!(s8.frame_bits > s2.frame_bits);
        assert_eq!(s2.switches, 9);
        assert_eq!(s8.switches, 81);
    }

    #[test]
    fn default_pattern_is_balanced_on_even_grids() {
        let g = FabricGeometry::new(4, 4);
        let kinds: Vec<FuKind> = g.fus().map(|f| FuKind::default_pattern(f.row, f.col)).collect();
        let s = StructuralStats::compute(g, &kinds);
        assert_eq!(s.int_simple, 4);
        assert_eq!(s.int_mul, 4);
        assert_eq!(s.fp_add, 4);
        assert_eq!(s.fp_mul, 4);
    }

    #[test]
    fn occupancy_bounds() {
        let mut s = FabricStats::default();
        assert_eq!(s.occupancy(), 0.0);
        s.cycles = 10;
        s.active_cycles = 5;
        assert_eq!(s.occupancy(), 0.5);
        s.int_fu_fires = 3;
        s.fp_fu_fires = 4;
        assert_eq!(s.fu_fires(), 7);
    }
}
