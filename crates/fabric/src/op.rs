//! Functional-unit operations and capability classes.
//!
//! The fabric is *heterogeneous*: each grid position holds an FU of a
//! particular [`FuKind`] which supports a subset of the operations. The
//! default grid pattern mixes integer and floating-point units in 2x2
//! tiles, matching the prototype's balanced datapath.

use std::fmt;

/// A 64-bit fabric value. Floating-point values travel bit-punned, as they
/// do on the prototype's 64-bit datapath.
pub type Value = u64;

/// Operations a functional unit can be configured to perform.
///
/// `Select` is the predication primitive the compiler uses for
/// if-converted control flow (it picks operand 0 when the predicate in
/// operand 2 is non-zero, operand 1 otherwise). `PassA` forwards operand 0
/// unchanged and is used as a routing relay when a route must cross an FU
/// site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuOp {
    /// Integer add.
    IAdd,
    /// Integer subtract.
    ISub,
    /// Integer multiply.
    IMul,
    /// Integer signed divide (`x / 0 = 0`).
    IDiv,
    /// Bitwise and.
    IAnd,
    /// Bitwise or.
    IOr,
    /// Bitwise xor.
    IXor,
    /// Shift left.
    IShl,
    /// Logical shift right.
    IShrL,
    /// Arithmetic shift right.
    IShrA,
    /// Signed maximum.
    IMax,
    /// Signed minimum.
    IMin,
    /// Integer equality (1/0 result).
    ICmpEq,
    /// Integer inequality.
    ICmpNe,
    /// Signed less-than.
    ICmpSLt,
    /// Signed less-or-equal.
    ICmpSLe,
    /// Unsigned less-than.
    ICmpULt,
    /// Predicated select: `pred != 0 ? a : b`.
    Select,
    /// Forward operand 0 unchanged (routing relay).
    PassA,
    /// Logical and of two predicates (both non-zero).
    PredAnd,
    /// Logical or of two predicates.
    PredOr,
    /// Logical not of a predicate.
    PredNot,
    /// Double add.
    FAdd,
    /// Double subtract.
    FSub,
    /// Double multiply.
    FMul,
    /// Double divide.
    FDiv,
    /// Double square root.
    FSqrt,
    /// Double maximum.
    FMax,
    /// Double minimum.
    FMin,
    /// Double absolute value.
    FAbs,
    /// Double negate (sign-bit flip; well-defined on NaN and ±0 where
    /// `0.0 - x` is not).
    FNeg,
    /// Double less-than (1/0 result).
    FCmpLt,
    /// Double less-or-equal.
    FCmpLe,
    /// Double equality.
    FCmpEq,
    /// Convert a signed 64-bit integer to double.
    IToF,
    /// Convert a double to a signed 64-bit integer (truncating).
    FToI,
}

impl FuOp {
    /// All operations, useful for exhaustive tests.
    pub const ALL: [FuOp; 36] = [
        FuOp::IAdd,
        FuOp::ISub,
        FuOp::IMul,
        FuOp::IDiv,
        FuOp::IAnd,
        FuOp::IOr,
        FuOp::IXor,
        FuOp::IShl,
        FuOp::IShrL,
        FuOp::IShrA,
        FuOp::IMax,
        FuOp::IMin,
        FuOp::ICmpEq,
        FuOp::ICmpNe,
        FuOp::ICmpSLt,
        FuOp::ICmpSLe,
        FuOp::ICmpULt,
        FuOp::Select,
        FuOp::PassA,
        FuOp::PredAnd,
        FuOp::PredOr,
        FuOp::PredNot,
        FuOp::FAdd,
        FuOp::FSub,
        FuOp::FMul,
        FuOp::FDiv,
        FuOp::FSqrt,
        FuOp::FMax,
        FuOp::FMin,
        FuOp::FAbs,
        FuOp::FNeg,
        FuOp::FCmpLt,
        FuOp::FCmpLe,
        FuOp::FCmpEq,
        FuOp::IToF,
        FuOp::FToI,
    ];

    /// Number of operands the operation consumes (1, 2, or 3).
    pub fn arity(self) -> usize {
        match self {
            FuOp::PassA
            | FuOp::PredNot
            | FuOp::FSqrt
            | FuOp::FAbs
            | FuOp::FNeg
            | FuOp::IToF
            | FuOp::FToI => 1,
            FuOp::Select => 3,
            _ => 2,
        }
    }

    /// Pipeline latency of the operation in cycles.
    pub fn latency(self) -> u64 {
        match self {
            FuOp::IMul => 3,
            FuOp::IDiv => 12,
            FuOp::FAdd | FuOp::FSub | FuOp::FMax | FuOp::FMin => 3,
            FuOp::FMul => 4,
            FuOp::FDiv => 12,
            FuOp::FSqrt => 14,
            FuOp::IToF | FuOp::FToI => 3,
            _ => 1,
        }
    }

    /// Whether this is a floating-point operation.
    pub fn is_fp(self) -> bool {
        matches!(
            self,
            FuOp::FAdd
                | FuOp::FSub
                | FuOp::FMul
                | FuOp::FDiv
                | FuOp::FSqrt
                | FuOp::FMax
                | FuOp::FMin
                | FuOp::FAbs
                | FuOp::FNeg
                | FuOp::FCmpLt
                | FuOp::FCmpLe
                | FuOp::FCmpEq
                | FuOp::IToF
                | FuOp::FToI
        )
    }

    /// Evaluates the operation on up to three operands.
    ///
    /// Missing operands (beyond the op's arity) are ignored. Unary ops read
    /// operand 0.
    pub fn eval(self, a: Value, b: Value, pred: Value) -> Value {
        let fa = f64::from_bits(a);
        let fb = f64::from_bits(b);
        let bool_to_v = |x: bool| u64::from(x);
        match self {
            FuOp::IAdd => a.wrapping_add(b),
            FuOp::ISub => a.wrapping_sub(b),
            FuOp::IMul => a.wrapping_mul(b),
            FuOp::IDiv => {
                if b == 0 {
                    0
                } else {
                    (a as i64).wrapping_div(b as i64) as u64
                }
            }
            FuOp::IAnd => a & b,
            FuOp::IOr => a | b,
            FuOp::IXor => a ^ b,
            FuOp::IShl => a.wrapping_shl(b as u32 & 63),
            FuOp::IShrL => a.wrapping_shr(b as u32 & 63),
            FuOp::IShrA => ((a as i64).wrapping_shr(b as u32 & 63)) as u64,
            FuOp::IMax => (a as i64).max(b as i64) as u64,
            FuOp::IMin => (a as i64).min(b as i64) as u64,
            FuOp::ICmpEq => bool_to_v(a == b),
            FuOp::ICmpNe => bool_to_v(a != b),
            FuOp::ICmpSLt => bool_to_v((a as i64) < (b as i64)),
            FuOp::ICmpSLe => bool_to_v((a as i64) <= (b as i64)),
            FuOp::ICmpULt => bool_to_v(a < b),
            FuOp::Select => {
                if pred != 0 {
                    a
                } else {
                    b
                }
            }
            FuOp::PassA => a,
            FuOp::PredAnd => bool_to_v(a != 0 && b != 0),
            FuOp::PredOr => bool_to_v(a != 0 || b != 0),
            FuOp::PredNot => bool_to_v(a == 0),
            FuOp::FAdd => (fa + fb).to_bits(),
            FuOp::FSub => (fa - fb).to_bits(),
            FuOp::FMul => (fa * fb).to_bits(),
            FuOp::FDiv => (fa / fb).to_bits(),
            FuOp::FSqrt => fa.sqrt().to_bits(),
            FuOp::FMax => fa.max(fb).to_bits(),
            FuOp::FMin => fa.min(fb).to_bits(),
            FuOp::FAbs => fa.abs().to_bits(),
            FuOp::FNeg => (-fa).to_bits(),
            FuOp::FCmpLt => bool_to_v(fa < fb),
            FuOp::FCmpLe => bool_to_v(fa <= fb),
            FuOp::FCmpEq => bool_to_v(fa == fb),
            FuOp::IToF => ((a as i64) as f64).to_bits(),
            FuOp::FToI => (fa as i64) as u64,
        }
    }
}

impl fmt::Display for FuOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Capability class of a functional-unit site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuKind {
    /// Simple integer: add/sub/logic/shift/compare/select/predicates.
    IntSimple,
    /// Integer with multiply/divide.
    IntMul,
    /// Floating-point adder (add/sub/compare/min/max/abs/convert).
    FpAdd,
    /// Floating-point multiplier (mul/div/sqrt/convert).
    FpMul,
    /// Universal unit supporting every operation (used in idealised sweeps).
    Universal,
}

impl FuKind {
    /// Whether a unit of this kind can execute `op`.
    pub fn supports(self, op: FuOp) -> bool {
        use FuOp::*;
        let simple_int = matches!(
            op,
            IAdd | ISub
                | IAnd
                | IOr
                | IXor
                | IShl
                | IShrL
                | IShrA
                | IMax
                | IMin
                | ICmpEq
                | ICmpNe
                | ICmpSLt
                | ICmpSLe
                | ICmpULt
                | Select
                | PassA
                | PredAnd
                | PredOr
                | PredNot
        );
        match self {
            FuKind::Universal => true,
            FuKind::IntSimple => simple_int,
            FuKind::IntMul => simple_int || matches!(op, IMul | IDiv),
            FuKind::FpAdd => matches!(
                op,
                FAdd | FSub | FMax | FMin | FAbs | FNeg | FCmpLt | FCmpLe | FCmpEq | IToF
                    | FToI
                    | Select
                    | PassA
            ),
            FuKind::FpMul => matches!(op, FMul | FDiv | FSqrt | Select | PassA),
        }
    }

    /// The default heterogeneous grid pattern: 2x2 tiles of
    /// `[IntSimple, IntMul; FpAdd, FpMul]`, matching the prototype's
    /// balanced integer/floating-point datapath.
    pub fn default_pattern(row: usize, col: usize) -> FuKind {
        match (row % 2, col % 2) {
            (0, 0) => FuKind::IntSimple,
            (0, 1) => FuKind::IntMul,
            (1, 0) => FuKind::FpAdd,
            (1, 1) => FuKind::FpMul,
            _ => unreachable!(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arities_cover_all_ops() {
        for op in FuOp::ALL {
            let a = op.arity();
            assert!((1..=3).contains(&a), "{op} arity {a}");
        }
        assert_eq!(FuOp::Select.arity(), 3);
        assert_eq!(FuOp::PassA.arity(), 1);
        assert_eq!(FuOp::IAdd.arity(), 2);
    }

    #[test]
    fn int_eval() {
        assert_eq!(FuOp::IAdd.eval(2, 3, 0), 5);
        assert_eq!(FuOp::ISub.eval(2, 3, 0), (-1i64) as u64);
        assert_eq!(FuOp::IMul.eval(6, 7, 0), 42);
        assert_eq!(FuOp::IDiv.eval((-42i64) as u64, 7, 0), (-6i64) as u64);
        assert_eq!(FuOp::IDiv.eval(5, 0, 0), 0, "trap-free divide");
        assert_eq!(FuOp::IMax.eval((-1i64) as u64, 1, 0), 1);
        assert_eq!(FuOp::IMin.eval((-1i64) as u64, 1, 0), (-1i64) as u64);
        assert_eq!(FuOp::ICmpSLt.eval((-1i64) as u64, 0, 0), 1);
        assert_eq!(FuOp::ICmpULt.eval(u64::MAX, 0, 0), 0);
    }

    #[test]
    fn select_uses_predicate() {
        assert_eq!(FuOp::Select.eval(10, 20, 1), 10);
        assert_eq!(FuOp::Select.eval(10, 20, 0), 20);
    }

    #[test]
    fn predicates() {
        assert_eq!(FuOp::PredAnd.eval(1, 2, 0), 1);
        assert_eq!(FuOp::PredAnd.eval(1, 0, 0), 0);
        assert_eq!(FuOp::PredOr.eval(0, 5, 0), 1);
        assert_eq!(FuOp::PredNot.eval(0, 0, 0), 1);
        assert_eq!(FuOp::PredNot.eval(3, 0, 0), 0);
    }

    #[test]
    fn fp_eval() {
        let f = |x: f64| x.to_bits();
        assert_eq!(f64::from_bits(FuOp::FAdd.eval(f(1.5), f(2.0), 0)), 3.5);
        assert_eq!(f64::from_bits(FuOp::FMul.eval(f(1.5), f(2.0), 0)), 3.0);
        assert_eq!(f64::from_bits(FuOp::FSqrt.eval(f(16.0), 0, 0)), 4.0);
        assert_eq!(FuOp::FCmpLt.eval(f(1.0), f(2.0), 0), 1);
        assert_eq!(FuOp::FCmpLt.eval(f(2.0), f(1.0), 0), 0);
        assert_eq!(FuOp::FToI.eval(f(7.9), 0, 0), 7);
        assert_eq!(f64::from_bits(FuOp::IToF.eval((-3i64) as u64, 0, 0)), -3.0);
    }

    #[test]
    fn latencies_positive() {
        for op in FuOp::ALL {
            assert!(op.latency() >= 1, "{op}");
        }
        assert!(FuOp::FDiv.latency() > FuOp::FAdd.latency());
        assert!(FuOp::IMul.latency() > FuOp::IAdd.latency());
    }

    #[test]
    fn kinds_partition_sensibly() {
        assert!(FuKind::IntSimple.supports(FuOp::IAdd));
        assert!(!FuKind::IntSimple.supports(FuOp::IMul));
        assert!(FuKind::IntMul.supports(FuOp::IMul));
        assert!(!FuKind::IntMul.supports(FuOp::FAdd));
        assert!(FuKind::FpAdd.supports(FuOp::FAdd));
        assert!(!FuKind::FpAdd.supports(FuOp::FMul));
        assert!(FuKind::FpMul.supports(FuOp::FSqrt));
        for op in FuOp::ALL {
            assert!(FuKind::Universal.supports(op));
        }
    }

    #[test]
    fn every_op_has_a_home_in_the_default_pattern() {
        for op in FuOp::ALL {
            let supported = (0..2)
                .flat_map(|r| (0..2).map(move |c| FuKind::default_pattern(r, c)))
                .any(|k| k.supports(op));
            assert!(supported, "{op} unsupported by the default 2x2 tile");
        }
    }

    #[test]
    fn all_kinds_support_passthrough_and_select() {
        for kind in [FuKind::IntSimple, FuKind::IntMul, FuKind::FpAdd, FuKind::FpMul] {
            assert!(kind.supports(FuOp::PassA), "{kind:?} must relay");
            assert!(kind.supports(FuOp::Select), "{kind:?} must select");
        }
    }
}
