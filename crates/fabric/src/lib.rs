//! # dyser-fabric
//!
//! A cycle-level model of the DySER fabric: the dynamically specialized
//! execution resource the prototype integrates into OpenSPARC.
//!
//! DySER is a heterogeneous grid of functional units (FUs) embedded in a
//! circuit-switched network of switches. A *configuration* programs each
//! switch's output multiplexers and each FU's operation, turning the grid
//! into one large compound functional unit matched to a program region.
//! Values stream in through named **input ports** on the north/west edges,
//! flow through statically configured routes with credit-based
//! backpressure (modelled as single-entry elastic registers), fire FUs in
//! dataflow fashion, and exit through **output ports** on the south/east
//! edges. Because every resource is pipelined, consecutive invocations of
//! the region overlap — the source of DySER's throughput.
//!
//! The model reproduces the microarchitectural behaviour the ISPASS 2015
//! evaluation measures:
//!
//! * dataflow firing with per-link flow control (one hop per cycle),
//! * FU pipelining with per-operation latencies,
//! * port FIFOs and the flexible **vector port** mapping,
//! * configuration as a bitstream with a load latency proportional to the
//!   configuration size,
//! * structural and activity statistics (for the resource table and the
//!   energy model).
//!
//! ```
//! use dyser_fabric::{ConfigBuilder, Fabric, FabricGeometry, FuOp};
//!
//! // Route two inputs through one adder to one output on a 2x2 fabric.
//! let geom = FabricGeometry::new(2, 2);
//! let mut b = ConfigBuilder::new(geom);
//! let a = b.input_value(0);
//! let c = b.input_value(1);
//! let sum = b.op(FuOp::IAdd, &[a, c]);
//! b.output_value(sum, 0);
//! let config = b.build().unwrap();
//!
//! let mut fabric = Fabric::new(geom);
//! fabric.load_config(&config).unwrap();
//! assert!(fabric.try_send(0, 20));
//! assert!(fabric.try_send(1, 22));
//! let out = fabric.run_until_output(0, 100).unwrap();
//! assert_eq!(out, 42);
//! ```


#![warn(missing_docs)]
pub mod builder;
pub mod config;
pub mod exec;
pub mod geom;
pub mod op;
pub mod stats;

pub use builder::{BuildError, ConfigBuilder, ValueId};
pub use config::{
    ConfigError, FabricConfig, FabricConfigError, FuConfig, InDir, OperandSrc, OutDir,
    SwitchConfig,
};
pub use exec::{Fabric, DEFAULT_CONFIG_BUS_BITS, DEFAULT_FIFO_DEPTH};
pub use geom::{FabricGeometry, FuId, SwitchId};
pub use op::{FuKind, FuOp};
pub use stats::{FabricStats, StructuralStats};
