//! The decoded instruction set.
//!
//! [`Instr`] is the single instruction representation shared by the
//! assembler, the binary encoder/decoder, the compiler back end, and the
//! pipeline model. Every variant carries fully decoded operands; the
//! bit-level view lives in the [`mod@crate::encode`] module.

use std::fmt;

use crate::cond::{FCond, ICond, Icc, RCond};
use crate::dyser::DyserInstr;
use crate::reg::{FReg, Reg};

/// Integer ALU operations (format-3 register ops).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// 64-bit addition.
    Add,
    /// 64-bit subtraction.
    Sub,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Bitwise and-not (`rs1 & !op2`).
    Andn,
    /// Bitwise or-not (`rs1 | !op2`).
    Orn,
    /// Bitwise xnor.
    Xnor,
    /// Logical shift left (64-bit, count mod 64).
    Sllx,
    /// Logical shift right.
    Srlx,
    /// Arithmetic shift right.
    Srax,
    /// 64-bit multiply.
    Mulx,
    /// Signed 64-bit divide (`x / 0 = 0`, matching the simulator's trap-free model).
    Sdivx,
    /// Unsigned 64-bit divide (`x / 0 = 0`).
    Udivx,
    /// Addition that also sets the integer condition codes.
    AddCc,
    /// Subtraction that also sets the integer condition codes.
    SubCc,
}

impl AluOp {
    /// All operations, useful for exhaustive tests.
    pub const ALL: [AluOp; 16] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Andn,
        AluOp::Orn,
        AluOp::Xnor,
        AluOp::Sllx,
        AluOp::Srlx,
        AluOp::Srax,
        AluOp::Mulx,
        AluOp::Sdivx,
        AluOp::Udivx,
        AluOp::AddCc,
        AluOp::SubCc,
    ];

    /// Evaluates the operation, returning the result and, for the `cc`
    /// variants, the updated condition codes.
    ///
    /// Division by zero yields zero rather than trapping: the simulator is
    /// trap-free and the compiler never emits unguarded divides.
    pub fn eval(self, a: u64, b: u64) -> (u64, Option<Icc>) {
        match self {
            AluOp::Add => (a.wrapping_add(b), None),
            AluOp::Sub => (a.wrapping_sub(b), None),
            AluOp::And => (a & b, None),
            AluOp::Or => (a | b, None),
            AluOp::Xor => (a ^ b, None),
            AluOp::Andn => (a & !b, None),
            AluOp::Orn => (a | !b, None),
            AluOp::Xnor => (!(a ^ b), None),
            AluOp::Sllx => (a.wrapping_shl(b as u32 & 63), None),
            AluOp::Srlx => (a.wrapping_shr(b as u32 & 63), None),
            AluOp::Srax => (((a as i64).wrapping_shr(b as u32 & 63)) as u64, None),
            AluOp::Mulx => (a.wrapping_mul(b), None),
            AluOp::Sdivx => {
                let res = if b == 0 { 0 } else { (a as i64).wrapping_div(b as i64) as u64 };
                (res, None)
            }
            AluOp::Udivx => (a.checked_div(b).unwrap_or(0), None),
            AluOp::AddCc => (a.wrapping_add(b), Some(Icc::from_add(a, b))),
            AluOp::SubCc => (a.wrapping_sub(b), Some(Icc::from_sub(a, b))),
        }
    }

    /// Whether the operation writes the integer condition codes.
    pub fn sets_cc(self) -> bool {
        matches!(self, AluOp::AddCc | AluOp::SubCc)
    }

    /// Execute-stage latency class: `1` for simple ops, more for mul/div,
    /// matching the OpenSPARC T1's long-latency integer unit.
    pub fn latency(self) -> u32 {
        match self {
            AluOp::Mulx => 8,
            AluOp::Sdivx | AluOp::Udivx => 40,
            _ => 1,
        }
    }

    /// The assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Andn => "andn",
            AluOp::Orn => "orn",
            AluOp::Xnor => "xnor",
            AluOp::Sllx => "sllx",
            AluOp::Srlx => "srlx",
            AluOp::Srax => "srax",
            AluOp::Mulx => "mulx",
            AluOp::Sdivx => "sdivx",
            AluOp::Udivx => "udivx",
            AluOp::AddCc => "addcc",
            AluOp::SubCc => "subcc",
        }
    }
}

/// Floating-point operations (`FPop1`), all on 64-bit doubles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpOp {
    /// Double addition.
    Addd,
    /// Double subtraction.
    Subd,
    /// Double multiplication.
    Muld,
    /// Double division.
    Divd,
    /// Double square root (unary; `rs1` is ignored).
    Sqrtd,
    /// Negation (unary).
    Negd,
    /// Absolute value (unary).
    Absd,
    /// Register move (unary).
    Movd,
    /// Convert a 64-bit integer (held in an fp register) to double (unary).
    Xtod,
    /// Convert a double to a 64-bit integer, truncating (unary).
    Dtox,
    /// Maximum (VIS-style, used by the DySER compiler's reductions).
    Maxd,
    /// Minimum (VIS-style).
    Mind,
}

impl FpOp {
    /// All operations, useful for exhaustive tests.
    pub const ALL: [FpOp; 12] = [
        FpOp::Addd,
        FpOp::Subd,
        FpOp::Muld,
        FpOp::Divd,
        FpOp::Sqrtd,
        FpOp::Negd,
        FpOp::Absd,
        FpOp::Movd,
        FpOp::Xtod,
        FpOp::Dtox,
        FpOp::Maxd,
        FpOp::Mind,
    ];

    /// Whether the operation ignores its first source operand.
    pub fn is_unary(self) -> bool {
        matches!(
            self,
            FpOp::Sqrtd | FpOp::Negd | FpOp::Absd | FpOp::Movd | FpOp::Xtod | FpOp::Dtox
        )
    }

    /// Evaluates the operation on raw 64-bit register values.
    pub fn eval(self, a: u64, b: u64) -> u64 {
        let fa = f64::from_bits(a);
        let fb = f64::from_bits(b);
        match self {
            FpOp::Addd => (fa + fb).to_bits(),
            FpOp::Subd => (fa - fb).to_bits(),
            FpOp::Muld => (fa * fb).to_bits(),
            FpOp::Divd => (fa / fb).to_bits(),
            FpOp::Sqrtd => fb.sqrt().to_bits(),
            FpOp::Negd => (-fb).to_bits(),
            FpOp::Absd => fb.abs().to_bits(),
            FpOp::Movd => b,
            FpOp::Xtod => ((b as i64) as f64).to_bits(),
            FpOp::Dtox => (fb as i64) as u64,
            FpOp::Maxd => fa.max(fb).to_bits(),
            FpOp::Mind => fa.min(fb).to_bits(),
        }
    }

    /// Execute-stage latency. The OpenSPARC T1 services floating point in
    /// a single shared, far-away FPU: per-operation latencies seen by a
    /// thread are large (tens of cycles on silicon). The values here are
    /// the calibrated "T1-class FPU" latencies from DESIGN.md.
    pub fn latency(self) -> u32 {
        match self {
            FpOp::Addd | FpOp::Subd | FpOp::Maxd | FpOp::Mind => 8,
            FpOp::Muld => 10,
            FpOp::Divd => 32,
            FpOp::Sqrtd => 36,
            FpOp::Movd | FpOp::Negd | FpOp::Absd => 2,
            FpOp::Xtod | FpOp::Dtox => 6,
        }
    }

    /// The assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FpOp::Addd => "faddd",
            FpOp::Subd => "fsubd",
            FpOp::Muld => "fmuld",
            FpOp::Divd => "fdivd",
            FpOp::Sqrtd => "fsqrtd",
            FpOp::Negd => "fnegd",
            FpOp::Absd => "fabsd",
            FpOp::Movd => "fmovd",
            FpOp::Xtod => "fxtod",
            FpOp::Dtox => "fdtox",
            FpOp::Maxd => "fmaxd",
            FpOp::Mind => "fmind",
        }
    }
}

/// The second ALU operand: a register or a signed 13-bit immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op2 {
    /// A register operand.
    Reg(Reg),
    /// A signed immediate, representable in 13 bits (`-4096..=4095`).
    Imm(i16),
}

impl Op2 {
    /// Inclusive immediate range of the 13-bit field.
    pub const IMM_MIN: i16 = -4096;
    /// Inclusive immediate range of the 13-bit field.
    pub const IMM_MAX: i16 = 4095;

    /// Whether a value fits the signed 13-bit immediate field.
    pub fn fits_imm(value: i64) -> bool {
        (Self::IMM_MIN as i64..=Self::IMM_MAX as i64).contains(&value)
    }
}

impl From<Reg> for Op2 {
    fn from(r: Reg) -> Self {
        Op2::Reg(r)
    }
}

impl fmt::Display for Op2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op2::Reg(r) => write!(f, "{r}"),
            Op2::Imm(i) => write!(f, "{i}"),
        }
    }
}

/// Integer load flavours.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoadKind {
    /// 64-bit load.
    Ldx,
    /// 32-bit zero-extending load.
    Lduw,
    /// 32-bit sign-extending load.
    Ldsw,
    /// 8-bit zero-extending load.
    Ldub,
}

impl LoadKind {
    /// All load kinds.
    pub const ALL: [LoadKind; 4] = [LoadKind::Ldx, LoadKind::Lduw, LoadKind::Ldsw, LoadKind::Ldub];

    /// Access width in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            LoadKind::Ldx => 8,
            LoadKind::Lduw | LoadKind::Ldsw => 4,
            LoadKind::Ldub => 1,
        }
    }

    /// The assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            LoadKind::Ldx => "ldx",
            LoadKind::Lduw => "lduw",
            LoadKind::Ldsw => "ldsw",
            LoadKind::Ldub => "ldub",
        }
    }
}

/// Integer store flavours.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreKind {
    /// 64-bit store.
    Stx,
    /// 32-bit store.
    Stw,
    /// 8-bit store.
    Stb,
}

impl StoreKind {
    /// All store kinds.
    pub const ALL: [StoreKind; 3] = [StoreKind::Stx, StoreKind::Stw, StoreKind::Stb];

    /// Access width in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            StoreKind::Stx => 8,
            StoreKind::Stw => 4,
            StoreKind::Stb => 1,
        }
    }

    /// The assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            StoreKind::Stx => "stx",
            StoreKind::Stw => "stw",
            StoreKind::Stb => "stb",
        }
    }
}

/// Coarse instruction classes, used by the statistics and energy models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstrClass {
    /// Simple integer ALU work.
    IntAlu,
    /// Integer multiply/divide.
    IntMulDiv,
    /// Floating-point arithmetic.
    Fp,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Control transfer.
    Branch,
    /// DySER interface instruction.
    Dyser,
    /// Everything else (nop, halt, simcall).
    Other,
}

impl InstrClass {
    /// All classes, in reporting order.
    pub const ALL: [InstrClass; 8] = [
        InstrClass::IntAlu,
        InstrClass::IntMulDiv,
        InstrClass::Fp,
        InstrClass::Load,
        InstrClass::Store,
        InstrClass::Branch,
        InstrClass::Dyser,
        InstrClass::Other,
    ];

    /// A short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            InstrClass::IntAlu => "int-alu",
            InstrClass::IntMulDiv => "int-muldiv",
            InstrClass::Fp => "fp",
            InstrClass::Load => "load",
            InstrClass::Store => "store",
            InstrClass::Branch => "branch",
            InstrClass::Dyser => "dyser",
            InstrClass::Other => "other",
        }
    }

    /// Position of this class in [`InstrClass::ALL`].
    pub fn index(self) -> usize {
        match self {
            InstrClass::IntAlu => 0,
            InstrClass::IntMulDiv => 1,
            InstrClass::Fp => 2,
            InstrClass::Load => 3,
            InstrClass::Store => 4,
            InstrClass::Branch => 5,
            InstrClass::Dyser => 6,
            InstrClass::Other => 7,
        }
    }
}

/// A decoded instruction.
///
/// Branch displacements are in *instruction words* relative to the branch's
/// own address (`target = pc + 4 * disp`), with SPARC delay-slot semantics:
/// the instruction after a taken branch still executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// Integer ALU operation: `rd = rs1 op op2`.
    Alu {
        /// The operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// First source register.
        rs1: Reg,
        /// Second operand.
        op2: Op2,
    },
    /// Set the high 22 bits of a register: `rd = imm22 << 10`.
    Sethi {
        /// Destination register.
        rd: Reg,
        /// The 22-bit immediate.
        imm22: u32,
    },
    /// Conditional move on the integer condition codes: `if cond { rd = op2 }`.
    MovCc {
        /// The condition to test.
        cond: ICond,
        /// Destination register.
        rd: Reg,
        /// Value moved when the condition holds.
        op2: Op2,
    },
    /// Integer load: `rd = mem[rs1 + op2]`.
    Load {
        /// Load width/extension.
        kind: LoadKind,
        /// Destination register.
        rd: Reg,
        /// Base address register.
        rs1: Reg,
        /// Address offset.
        op2: Op2,
    },
    /// Integer store: `mem[rs1 + op2] = rs`.
    Store {
        /// Store width.
        kind: StoreKind,
        /// Data register.
        rs: Reg,
        /// Base address register.
        rs1: Reg,
        /// Address offset.
        op2: Op2,
    },
    /// Floating-point double load: `rd = mem[rs1 + op2]`.
    LoadF {
        /// Destination fp register.
        rd: FReg,
        /// Base address register.
        rs1: Reg,
        /// Address offset.
        op2: Op2,
    },
    /// Floating-point double store: `mem[rs1 + op2] = rs`.
    StoreF {
        /// Data fp register.
        rs: FReg,
        /// Base address register.
        rs1: Reg,
        /// Address offset.
        op2: Op2,
    },
    /// Floating-point arithmetic: `rd = rs1 op rs2` (unary ops use `rs2`).
    Fpu {
        /// The operation.
        op: FpOp,
        /// Destination fp register.
        rd: FReg,
        /// First source fp register (ignored by unary ops).
        rs1: FReg,
        /// Second source fp register.
        rs2: FReg,
    },
    /// Floating-point compare, setting `fcc`.
    FCmp {
        /// First source fp register.
        rs1: FReg,
        /// Second source fp register.
        rs2: FReg,
    },
    /// Branch on integer condition codes, with a delay slot.
    Branch {
        /// The condition.
        cond: ICond,
        /// Word displacement from this instruction.
        disp: i32,
    },
    /// Branch on floating-point condition code, with a delay slot.
    BranchF {
        /// The condition.
        cond: FCond,
        /// Word displacement from this instruction.
        disp: i32,
    },
    /// Branch on a register's relation to zero, with a delay slot.
    BranchReg {
        /// The register condition.
        cond: RCond,
        /// Register tested.
        rs1: Reg,
        /// Word displacement from this instruction.
        disp: i32,
    },
    /// Call: `%o7 = pc; pc = pc + 4*disp`, with a delay slot.
    Call {
        /// Word displacement from this instruction.
        disp: i32,
    },
    /// Jump and link: `rd = pc; pc = rs1 + op2`, with a delay slot.
    Jmpl {
        /// Register receiving the return address.
        rd: Reg,
        /// Base register of the target.
        rs1: Reg,
        /// Target offset.
        op2: Op2,
    },
    /// A DySER accelerator-interface instruction.
    Dyser(DyserInstr),
    /// No operation.
    Nop,
    /// Stop the simulation (the prototype's benchmark-exit trap).
    Halt,
    /// Simulator service call; `code` selects the service (e.g. print `%o0`).
    SimCall {
        /// Service selector.
        code: u16,
    },
    /// Trap to the syscall-emulation layer (`ta`-style); `code` is the
    /// syscall number, arguments travel in `%o0..%o5` and the result
    /// returns in `%o0`. The core suspends at the trap until the
    /// harness-side handler services it.
    Trap {
        /// Syscall number.
        code: u16,
    },
}

impl Instr {
    /// Convenience constructor for ALU operations.
    pub fn alu(op: AluOp, rd: Reg, rs1: Reg, op2: impl Into<Op2>) -> Self {
        Instr::Alu { op, rd, rs1, op2: op2.into() }
    }

    /// Convenience constructor for a register-to-register move (`or rd, %g0, rs`).
    pub fn mov(rd: Reg, rs: Reg) -> Self {
        Instr::Alu { op: AluOp::Or, rd, rs1: crate::reg::reg::G0, op2: Op2::Reg(rs) }
    }

    /// Convenience constructor for loading a small immediate (`or rd, %g0, imm`).
    pub fn mov_imm(rd: Reg, imm: i16) -> Self {
        Instr::Alu { op: AluOp::Or, rd, rs1: crate::reg::reg::G0, op2: Op2::Imm(imm) }
    }

    /// Convenience constructor for `cmp rs1, op2` (`subcc %g0, ...`).
    pub fn cmp(rs1: Reg, op2: impl Into<Op2>) -> Self {
        Instr::Alu { op: AluOp::SubCc, rd: crate::reg::reg::G0, rs1, op2: op2.into() }
    }

    /// The coarse class of this instruction, for statistics and energy.
    pub fn class(&self) -> InstrClass {
        match self {
            Instr::Alu { op, .. } => match op {
                AluOp::Mulx | AluOp::Sdivx | AluOp::Udivx => InstrClass::IntMulDiv,
                _ => InstrClass::IntAlu,
            },
            Instr::Sethi { .. } | Instr::MovCc { .. } => InstrClass::IntAlu,
            Instr::Load { .. } | Instr::LoadF { .. } => InstrClass::Load,
            Instr::Store { .. } | Instr::StoreF { .. } => InstrClass::Store,
            Instr::Fpu { .. } | Instr::FCmp { .. } => InstrClass::Fp,
            Instr::Branch { .. }
            | Instr::BranchF { .. }
            | Instr::BranchReg { .. }
            | Instr::Call { .. }
            | Instr::Jmpl { .. } => InstrClass::Branch,
            Instr::Dyser(_) => InstrClass::Dyser,
            Instr::Nop | Instr::Halt | Instr::SimCall { .. } | Instr::Trap { .. } => {
                InstrClass::Other
            }
        }
    }

    /// Whether this is a control-transfer instruction (has a delay slot).
    pub fn is_cti(&self) -> bool {
        matches!(
            self,
            Instr::Branch { .. }
                | Instr::BranchF { .. }
                | Instr::BranchReg { .. }
                | Instr::Call { .. }
                | Instr::Jmpl { .. }
        )
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Alu { op, rd, rs1, op2 } => {
                write!(f, "{} {rs1}, {op2}, {rd}", op.mnemonic())
            }
            Instr::Sethi { rd, imm22 } => write!(f, "sethi 0x{imm22:x}, {rd}"),
            Instr::MovCc { cond, rd, op2 } => {
                write!(f, "mov{} {op2}, {rd}", &cond.mnemonic()[1..])
            }
            Instr::Load { kind, rd, rs1, op2 } => {
                write!(f, "{} [{rs1} + {op2}], {rd}", kind.mnemonic())
            }
            Instr::Store { kind, rs, rs1, op2 } => {
                write!(f, "{} {rs}, [{rs1} + {op2}]", kind.mnemonic())
            }
            Instr::LoadF { rd, rs1, op2 } => write!(f, "lddf [{rs1} + {op2}], {rd}"),
            Instr::StoreF { rs, rs1, op2 } => write!(f, "stdf {rs}, [{rs1} + {op2}]"),
            Instr::Fpu { op, rd, rs1, rs2 } => {
                if op.is_unary() {
                    write!(f, "{} {rs2}, {rd}", op.mnemonic())
                } else {
                    write!(f, "{} {rs1}, {rs2}, {rd}", op.mnemonic())
                }
            }
            Instr::FCmp { rs1, rs2 } => write!(f, "fcmpd {rs1}, {rs2}"),
            Instr::Branch { cond, disp } => write!(f, "{} {disp:+}", cond.mnemonic()),
            Instr::BranchF { cond, disp } => write!(f, "{} {disp:+}", cond.mnemonic()),
            Instr::BranchReg { cond, rs1, disp } => {
                write!(f, "{} {rs1}, {disp:+}", cond.mnemonic())
            }
            Instr::Call { disp } => write!(f, "call {disp:+}"),
            Instr::Jmpl { rd, rs1, op2 } => write!(f, "jmpl {rs1} + {op2}, {rd}"),
            Instr::Dyser(d) => write!(f, "{d}"),
            Instr::Nop => write!(f, "nop"),
            Instr::Halt => write!(f, "halt"),
            Instr::SimCall { code } => write!(f, "simcall {code}"),
            Instr::Trap { code } => write!(f, "ta {code}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::reg;

    #[test]
    fn alu_eval_matches_rust_semantics() {
        assert_eq!(AluOp::Add.eval(3, 4).0, 7);
        assert_eq!(AluOp::Sub.eval(3, 4).0, (-1i64) as u64);
        assert_eq!(AluOp::And.eval(0b1100, 0b1010).0, 0b1000);
        assert_eq!(AluOp::Or.eval(0b1100, 0b1010).0, 0b1110);
        assert_eq!(AluOp::Xor.eval(0b1100, 0b1010).0, 0b0110);
        assert_eq!(AluOp::Andn.eval(0b1100, 0b1010).0, 0b0100);
        assert_eq!(AluOp::Sllx.eval(1, 63).0, 1 << 63);
        assert_eq!(AluOp::Srlx.eval(u64::MAX, 63).0, 1);
        assert_eq!(AluOp::Srax.eval((-8i64) as u64, 2).0, (-2i64) as u64);
        assert_eq!(AluOp::Mulx.eval(6, 7).0, 42);
        assert_eq!(AluOp::Sdivx.eval((-42i64) as u64, 7).0, (-6i64) as u64);
        assert_eq!(AluOp::Udivx.eval(42, 7).0, 6);
    }

    #[test]
    fn alu_divide_by_zero_is_zero() {
        assert_eq!(AluOp::Sdivx.eval(5, 0).0, 0);
        assert_eq!(AluOp::Udivx.eval(5, 0).0, 0);
    }

    #[test]
    fn alu_shift_counts_are_mod_64() {
        assert_eq!(AluOp::Sllx.eval(1, 64).0, 1);
        assert_eq!(AluOp::Srlx.eval(2, 65).0, 1);
    }

    #[test]
    fn cc_variants_report_flags() {
        let (res, icc) = AluOp::SubCc.eval(5, 5);
        assert_eq!(res, 0);
        assert!(icc.expect("subcc sets flags").z);
        assert!(AluOp::Add.eval(1, 1).1.is_none());
    }

    #[test]
    fn fp_eval_basics() {
        let a = 2.5f64.to_bits();
        let b = 1.5f64.to_bits();
        assert_eq!(f64::from_bits(FpOp::Addd.eval(a, b)), 4.0);
        assert_eq!(f64::from_bits(FpOp::Subd.eval(a, b)), 1.0);
        assert_eq!(f64::from_bits(FpOp::Muld.eval(a, b)), 3.75);
        assert_eq!(f64::from_bits(FpOp::Sqrtd.eval(0, 9.0f64.to_bits())), 3.0);
        assert_eq!(f64::from_bits(FpOp::Absd.eval(0, (-2.0f64).to_bits())), 2.0);
        assert_eq!(FpOp::Dtox.eval(0, 7.9f64.to_bits()), 7);
        assert_eq!(f64::from_bits(FpOp::Xtod.eval(0, (-3i64) as u64)), -3.0);
        assert_eq!(f64::from_bits(FpOp::Maxd.eval(a, b)), 2.5);
        assert_eq!(f64::from_bits(FpOp::Mind.eval(a, b)), 1.5);
    }

    #[test]
    fn op2_imm_range() {
        assert!(Op2::fits_imm(0));
        assert!(Op2::fits_imm(4095));
        assert!(Op2::fits_imm(-4096));
        assert!(!Op2::fits_imm(4096));
        assert!(!Op2::fits_imm(-4097));
    }

    #[test]
    fn classes() {
        assert_eq!(Instr::alu(AluOp::Add, reg::O0, reg::O1, Op2::Imm(1)).class(), InstrClass::IntAlu);
        assert_eq!(
            Instr::alu(AluOp::Mulx, reg::O0, reg::O1, Op2::Imm(1)).class(),
            InstrClass::IntMulDiv
        );
        assert_eq!(Instr::Halt.class(), InstrClass::Other);
        assert_eq!(Instr::Branch { cond: ICond::Always, disp: 2 }.class(), InstrClass::Branch);
        assert!(Instr::Branch { cond: ICond::Always, disp: 2 }.is_cti());
        assert!(!Instr::Nop.is_cti());
    }

    #[test]
    fn display_is_never_empty() {
        let samples = [
            Instr::alu(AluOp::Add, reg::O0, reg::O1, Op2::Imm(4)),
            Instr::Sethi { rd: reg::O0, imm22: 0x1234 },
            Instr::Load { kind: LoadKind::Ldx, rd: reg::O0, rs1: reg::O1, op2: Op2::Imm(8) },
            Instr::Fpu { op: FpOp::Addd, rd: FReg::new(0), rs1: FReg::new(1), rs2: FReg::new(2) },
            Instr::Nop,
            Instr::Halt,
        ];
        for i in samples {
            assert!(!i.to_string().is_empty());
        }
    }

    #[test]
    fn mov_helpers() {
        let m = Instr::mov(reg::O0, reg::O1);
        assert_eq!(m.to_string(), "or %g0, %o1, %o0");
        let c = Instr::cmp(reg::O0, Op2::Imm(3));
        assert!(matches!(c, Instr::Alu { op: AluOp::SubCc, rd, .. } if rd.is_zero()));
    }
}
