//! Binary instruction encoding and decoding.
//!
//! Instructions are fixed 32-bit words laid out in the spirit of the SPARC
//! V9 formats:
//!
//! * **format 1** (`op = 01`): `call`, with a signed 30-bit word displacement;
//! * **format 2** (`op = 00`): `sethi` and the branch families, selected by
//!   the `op2` field in bits `[24:22]`;
//! * **format 3** (`op = 10`/`11`): register/register or register/immediate
//!   operations, selected by the 6-bit `op3` field in bits `[24:19]`, with
//!   the `i` bit (`[13]`) choosing between `rs2` and a signed 13-bit
//!   immediate.
//!
//! The DySER extension occupies the `op3 = 0x20..=0x29` block of the
//! arithmetic format — the block real SPARC reserves for tagged arithmetic,
//! repurposed here the way the prototype repurposes `IMPDEP1/2`.
//!
//! The encoding is lossless: `decode(encode(i)) == i` for every encodable
//! instruction except the canonical NOP, which is by definition
//! `sethi 0, %g0` and decodes to [`Instr::Nop`].

use std::fmt;

use crate::cond::{FCond, ICond, RCond};
use crate::dyser::{ConfigId, DyserInstr, Port, VecPort};
use crate::instr::{AluOp, FpOp, Instr, LoadKind, Op2, StoreKind};
use crate::reg::{FReg, Reg};

/// Error produced when a 32-bit word is not a valid instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The offending instruction word.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "illegal instruction word 0x{:08x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

// op3 assignments for the arithmetic format (op = 10).
mod op3a {
    pub const ADD: u32 = 0x00;
    pub const SUB: u32 = 0x01;
    pub const AND: u32 = 0x02;
    pub const OR: u32 = 0x03;
    pub const XOR: u32 = 0x04;
    pub const ANDN: u32 = 0x05;
    pub const ORN: u32 = 0x06;
    pub const XNOR: u32 = 0x07;
    pub const SLLX: u32 = 0x08;
    pub const SRLX: u32 = 0x09;
    pub const SRAX: u32 = 0x0A;
    pub const MULX: u32 = 0x0B;
    pub const SDIVX: u32 = 0x0C;
    pub const UDIVX: u32 = 0x0D;
    pub const ADDCC: u32 = 0x10;
    pub const SUBCC: u32 = 0x11;
    pub const MOVCC: u32 = 0x15;
    pub const JMPL: u32 = 0x18;
    pub const DINIT: u32 = 0x20;
    pub const DSEND: u32 = 0x21;
    pub const DSENDF: u32 = 0x22;
    pub const DRECV: u32 = 0x23;
    pub const DRECVF: u32 = 0x24;
    pub const DLOAD: u32 = 0x25;
    pub const DSTORE: u32 = 0x26;
    pub const DSENDV: u32 = 0x27;
    pub const DRECVV: u32 = 0x28;
    pub const DFENCE: u32 = 0x29;
    pub const FPOP1: u32 = 0x34;
    pub const FPOP2: u32 = 0x35;
    pub const TRAP: u32 = 0x3C;
    pub const SIMCALL: u32 = 0x3D;
    pub const HALT: u32 = 0x3E;
}

// op3 assignments for the memory format (op = 11).
mod op3m {
    pub const LDX: u32 = 0x00;
    pub const LDUW: u32 = 0x01;
    pub const LDSW: u32 = 0x02;
    pub const LDUB: u32 = 0x03;
    pub const STX: u32 = 0x04;
    pub const STW: u32 = 0x05;
    pub const STB: u32 = 0x06;
    pub const LDDF: u32 = 0x08;
    pub const STDF: u32 = 0x09;
}

// opf assignments within FPop1.
mod opf {
    pub const ADDD: u32 = 1;
    pub const SUBD: u32 = 2;
    pub const MULD: u32 = 3;
    pub const DIVD: u32 = 4;
    pub const SQRTD: u32 = 5;
    pub const NEGD: u32 = 6;
    pub const ABSD: u32 = 7;
    pub const MOVD: u32 = 8;
    pub const XTOD: u32 = 9;
    pub const DTOX: u32 = 10;
    pub const MAXD: u32 = 11;
    pub const MIND: u32 = 12;
}

fn alu_op3(op: AluOp) -> u32 {
    match op {
        AluOp::Add => op3a::ADD,
        AluOp::Sub => op3a::SUB,
        AluOp::And => op3a::AND,
        AluOp::Or => op3a::OR,
        AluOp::Xor => op3a::XOR,
        AluOp::Andn => op3a::ANDN,
        AluOp::Orn => op3a::ORN,
        AluOp::Xnor => op3a::XNOR,
        AluOp::Sllx => op3a::SLLX,
        AluOp::Srlx => op3a::SRLX,
        AluOp::Srax => op3a::SRAX,
        AluOp::Mulx => op3a::MULX,
        AluOp::Sdivx => op3a::SDIVX,
        AluOp::Udivx => op3a::UDIVX,
        AluOp::AddCc => op3a::ADDCC,
        AluOp::SubCc => op3a::SUBCC,
    }
}

fn op3_alu(op3: u32) -> Option<AluOp> {
    Some(match op3 {
        op3a::ADD => AluOp::Add,
        op3a::SUB => AluOp::Sub,
        op3a::AND => AluOp::And,
        op3a::OR => AluOp::Or,
        op3a::XOR => AluOp::Xor,
        op3a::ANDN => AluOp::Andn,
        op3a::ORN => AluOp::Orn,
        op3a::XNOR => AluOp::Xnor,
        op3a::SLLX => AluOp::Sllx,
        op3a::SRLX => AluOp::Srlx,
        op3a::SRAX => AluOp::Srax,
        op3a::MULX => AluOp::Mulx,
        op3a::SDIVX => AluOp::Sdivx,
        op3a::UDIVX => AluOp::Udivx,
        op3a::ADDCC => AluOp::AddCc,
        op3a::SUBCC => AluOp::SubCc,
        _ => return None,
    })
}

fn fp_opf(op: FpOp) -> u32 {
    match op {
        FpOp::Addd => opf::ADDD,
        FpOp::Subd => opf::SUBD,
        FpOp::Muld => opf::MULD,
        FpOp::Divd => opf::DIVD,
        FpOp::Sqrtd => opf::SQRTD,
        FpOp::Negd => opf::NEGD,
        FpOp::Absd => opf::ABSD,
        FpOp::Movd => opf::MOVD,
        FpOp::Xtod => opf::XTOD,
        FpOp::Dtox => opf::DTOX,
        FpOp::Maxd => opf::MAXD,
        FpOp::Mind => opf::MIND,
    }
}

fn opf_fp(bits: u32) -> Option<FpOp> {
    Some(match bits {
        opf::ADDD => FpOp::Addd,
        opf::SUBD => FpOp::Subd,
        opf::MULD => FpOp::Muld,
        opf::DIVD => FpOp::Divd,
        opf::SQRTD => FpOp::Sqrtd,
        opf::NEGD => FpOp::Negd,
        opf::ABSD => FpOp::Absd,
        opf::MOVD => FpOp::Movd,
        opf::XTOD => FpOp::Xtod,
        opf::DTOX => FpOp::Dtox,
        opf::MAXD => FpOp::Maxd,
        opf::MIND => FpOp::Mind,
        _ => return None,
    })
}

fn sign_extend(value: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((value << shift) as i32) >> shift
}

fn fits_signed(value: i64, bits: u32) -> bool {
    let min = -(1i64 << (bits - 1));
    let max = (1i64 << (bits - 1)) - 1;
    (min..=max).contains(&value)
}

fn encode_op2(op2: Op2) -> u32 {
    match op2 {
        Op2::Reg(r) => r.bits(),
        Op2::Imm(i) => {
            assert!(
                fits_signed(i64::from(i), 13),
                "immediate {i} does not fit the signed 13-bit field"
            );
            (1 << 13) | ((i as u32) & 0x1FFF)
        }
    }
}

fn decode_op2(word: u32) -> Op2 {
    if word & (1 << 13) != 0 {
        Op2::Imm(sign_extend(word & 0x1FFF, 13) as i16)
    } else {
        Op2::Reg(Reg::new((word & 0x1F) as u8))
    }
}

fn f3(op: u32, rd: u32, op3: u32, rs1: u32, rest: u32) -> u32 {
    (op << 30) | (rd << 25) | (op3 << 19) | (rs1 << 14) | rest
}

fn check_disp(disp: i32, bits: u32, what: &str) {
    assert!(fits_signed(i64::from(disp), bits), "{what} displacement {disp} does not fit {bits} bits");
}

/// Encodes an instruction into its 32-bit word.
///
/// # Panics
///
/// Panics if a displacement or immediate does not fit its encoding field
/// (the [`crate::Assembler`] checks these ranges and reports errors instead).
pub fn encode(instr: &Instr) -> u32 {
    match *instr {
        Instr::Alu { op, rd, rs1, op2 } => {
            f3(0b10, rd.bits(), alu_op3(op), rs1.bits(), encode_op2(op2))
        }
        Instr::Sethi { rd, imm22 } => {
            assert!(imm22 < (1 << 22), "sethi immediate 0x{imm22:x} does not fit 22 bits");
            (0b100 << 22) | (rd.bits() << 25) | imm22
        }
        Instr::MovCc { cond, rd, op2 } => {
            f3(0b10, rd.bits(), op3a::MOVCC, cond.bits(), encode_op2(op2))
        }
        Instr::Load { kind, rd, rs1, op2 } => {
            let op3 = match kind {
                LoadKind::Ldx => op3m::LDX,
                LoadKind::Lduw => op3m::LDUW,
                LoadKind::Ldsw => op3m::LDSW,
                LoadKind::Ldub => op3m::LDUB,
            };
            f3(0b11, rd.bits(), op3, rs1.bits(), encode_op2(op2))
        }
        Instr::Store { kind, rs, rs1, op2 } => {
            let op3 = match kind {
                StoreKind::Stx => op3m::STX,
                StoreKind::Stw => op3m::STW,
                StoreKind::Stb => op3m::STB,
            };
            f3(0b11, rs.bits(), op3, rs1.bits(), encode_op2(op2))
        }
        Instr::LoadF { rd, rs1, op2 } => f3(0b11, rd.bits(), op3m::LDDF, rs1.bits(), encode_op2(op2)),
        Instr::StoreF { rs, rs1, op2 } => f3(0b11, rs.bits(), op3m::STDF, rs1.bits(), encode_op2(op2)),
        Instr::Fpu { op, rd, rs1, rs2 } => {
            f3(0b10, rd.bits(), op3a::FPOP1, rs1.bits(), (fp_opf(op) << 5) | rs2.bits())
        }
        Instr::FCmp { rs1, rs2 } => f3(0b10, 0, op3a::FPOP2, rs1.bits(), (1 << 5) | rs2.bits()),
        Instr::Branch { cond, disp } => {
            check_disp(disp, 22, "bicc");
            (cond.bits() << 25) | (0b010 << 22) | ((disp as u32) & 0x3F_FFFF)
        }
        Instr::BranchF { cond, disp } => {
            check_disp(disp, 22, "fbfcc");
            (cond.bits() << 25) | (0b110 << 22) | ((disp as u32) & 0x3F_FFFF)
        }
        Instr::BranchReg { cond, rs1, disp } => {
            check_disp(disp, 16, "bpr");
            let d = disp as u32;
            (cond.bits() << 25)
                | (0b011 << 22)
                | (((d >> 14) & 0x3) << 20)
                | (rs1.bits() << 14)
                | (d & 0x3FFF)
        }
        Instr::Call { disp } => {
            check_disp(disp, 30, "call");
            (0b01 << 30) | ((disp as u32) & 0x3FFF_FFFF)
        }
        Instr::Jmpl { rd, rs1, op2 } => f3(0b10, rd.bits(), op3a::JMPL, rs1.bits(), encode_op2(op2)),
        Instr::Dyser(d) => encode_dyser(d),
        Instr::Nop => 0b100 << 22, // sethi 0, %g0
        Instr::Halt => f3(0b10, 0, op3a::HALT, 0, 0),
        Instr::SimCall { code } => {
            assert!(code < (1 << 12), "simcall code {code} does not fit 12 bits");
            f3(0b10, 0, op3a::SIMCALL, 0, (1 << 13) | u32::from(code))
        }
        Instr::Trap { code } => {
            assert!(code < (1 << 12), "trap code {code} does not fit 12 bits");
            f3(0b10, 0, op3a::TRAP, 0, (1 << 13) | u32::from(code))
        }
    }
}

fn encode_dyser(d: DyserInstr) -> u32 {
    match d {
        DyserInstr::Init { config } => f3(0b10, 0, op3a::DINIT, 0, (1 << 13) | config.bits()),
        DyserInstr::Send { port, rs } => f3(0b10, port.bits(), op3a::DSEND, rs.bits(), 1 << 13),
        DyserInstr::SendF { port, rs } => f3(0b10, port.bits(), op3a::DSENDF, rs.bits(), 1 << 13),
        DyserInstr::Recv { port, rd } => f3(0b10, rd.bits(), op3a::DRECV, port.bits(), 1 << 13),
        DyserInstr::RecvF { port, rd } => f3(0b10, rd.bits(), op3a::DRECVF, port.bits(), 1 << 13),
        DyserInstr::Load { port, rs1, op2 } => {
            f3(0b10, port.bits(), op3a::DLOAD, rs1.bits(), encode_op2(op2))
        }
        DyserInstr::Store { port, rs1, op2 } => {
            f3(0b10, port.bits(), op3a::DSTORE, rs1.bits(), encode_op2(op2))
        }
        DyserInstr::SendVec { vport, base, count } => {
            assert!((1..=8).contains(&count), "vector transfer count {count} out of range");
            f3(0b10, vport.bits(), op3a::DSENDV, base.bits(), (1 << 13) | u32::from(count))
        }
        DyserInstr::RecvVec { vport, base, count } => {
            assert!((1..=8).contains(&count), "vector transfer count {count} out of range");
            f3(0b10, vport.bits(), op3a::DRECVV, base.bits(), (1 << 13) | u32::from(count))
        }
        DyserInstr::Fence => f3(0b10, 0, op3a::DFENCE, 0, 0),
    }
}

/// Decodes a 32-bit instruction word.
///
/// # Errors
///
/// Returns [`DecodeError`] if the word does not correspond to any
/// instruction in the ISA.
pub fn decode(word: u32) -> Result<Instr, DecodeError> {
    let op = word >> 30;
    let err = Err(DecodeError { word });
    match op {
        0b01 => Ok(Instr::Call { disp: sign_extend(word & 0x3FFF_FFFF, 30) }),
        0b00 => {
            let op2f = (word >> 22) & 0x7;
            match op2f {
                0b100 => {
                    let rd = Reg::new(((word >> 25) & 0x1F) as u8);
                    let imm22 = word & 0x3F_FFFF;
                    if rd.is_zero() && imm22 == 0 {
                        Ok(Instr::Nop)
                    } else {
                        Ok(Instr::Sethi { rd, imm22 })
                    }
                }
                0b010 => {
                    let cond = ICond::from_bits((word >> 25) & 0xF);
                    Ok(Instr::Branch { cond, disp: sign_extend(word & 0x3F_FFFF, 22) })
                }
                0b110 => {
                    let Some(cond) = FCond::from_bits((word >> 25) & 0xF) else { return err };
                    Ok(Instr::BranchF { cond, disp: sign_extend(word & 0x3F_FFFF, 22) })
                }
                0b011 => {
                    let Some(cond) = RCond::from_bits((word >> 25) & 0x7) else { return err };
                    if (word >> 28) & 0x3 != 0 {
                        return err;
                    }
                    let rs1 = Reg::new(((word >> 14) & 0x1F) as u8);
                    let d = (((word >> 20) & 0x3) << 14) | (word & 0x3FFF);
                    Ok(Instr::BranchReg { cond, rs1, disp: sign_extend(d, 16) })
                }
                _ => err,
            }
        }
        0b10 => decode_arith(word),
        _ => decode_mem(word),
    }
}

fn decode_arith(word: u32) -> Result<Instr, DecodeError> {
    let rd_bits = ((word >> 25) & 0x1F) as u8;
    let op3 = (word >> 19) & 0x3F;
    let rs1_bits = ((word >> 14) & 0x1F) as u8;
    let err = Err(DecodeError { word });

    if let Some(op) = op3_alu(op3) {
        return Ok(Instr::Alu {
            op,
            rd: Reg::new(rd_bits),
            rs1: Reg::new(rs1_bits),
            op2: decode_op2(word),
        });
    }
    match op3 {
        op3a::MOVCC => Ok(Instr::MovCc {
            cond: ICond::from_bits(u32::from(rs1_bits) & 0xF),
            rd: Reg::new(rd_bits),
            op2: decode_op2(word),
        }),
        op3a::JMPL => Ok(Instr::Jmpl {
            rd: Reg::new(rd_bits),
            rs1: Reg::new(rs1_bits),
            op2: decode_op2(word),
        }),
        op3a::FPOP1 => {
            let Some(op) = opf_fp((word >> 5) & 0x1FF) else { return err };
            Ok(Instr::Fpu {
                op,
                rd: FReg::new(rd_bits),
                rs1: FReg::new(rs1_bits),
                rs2: FReg::new((word & 0x1F) as u8),
            })
        }
        op3a::FPOP2 => {
            if (word >> 5) & 0x1FF != 1 {
                return err;
            }
            Ok(Instr::FCmp { rs1: FReg::new(rs1_bits), rs2: FReg::new((word & 0x1F) as u8) })
        }
        op3a::DINIT => Ok(Instr::Dyser(DyserInstr::Init {
            config: ConfigId::new((word & 0xFFF) as u16),
        })),
        op3a::DSEND => {
            let Some(port) = Port::try_new(rd_bits) else { return err };
            Ok(Instr::Dyser(DyserInstr::Send { port, rs: Reg::new(rs1_bits) }))
        }
        op3a::DSENDF => {
            let Some(port) = Port::try_new(rd_bits) else { return err };
            Ok(Instr::Dyser(DyserInstr::SendF { port, rs: FReg::new(rs1_bits) }))
        }
        op3a::DRECV => {
            let Some(port) = Port::try_new(rs1_bits) else { return err };
            Ok(Instr::Dyser(DyserInstr::Recv { port, rd: Reg::new(rd_bits) }))
        }
        op3a::DRECVF => {
            let Some(port) = Port::try_new(rs1_bits) else { return err };
            Ok(Instr::Dyser(DyserInstr::RecvF { port, rd: FReg::new(rd_bits) }))
        }
        op3a::DLOAD => {
            let Some(port) = Port::try_new(rd_bits) else { return err };
            Ok(Instr::Dyser(DyserInstr::Load { port, rs1: Reg::new(rs1_bits), op2: decode_op2(word) }))
        }
        op3a::DSTORE => {
            let Some(port) = Port::try_new(rd_bits) else { return err };
            Ok(Instr::Dyser(DyserInstr::Store { port, rs1: Reg::new(rs1_bits), op2: decode_op2(word) }))
        }
        op3a::DSENDV => {
            let Some(vport) = VecPort::try_new(rd_bits) else { return err };
            let count = (word & 0xF) as u8;
            if !(1..=8).contains(&count) {
                return err;
            }
            Ok(Instr::Dyser(DyserInstr::SendVec { vport, base: Reg::new(rs1_bits), count }))
        }
        op3a::DRECVV => {
            let Some(vport) = VecPort::try_new(rd_bits) else { return err };
            let count = (word & 0xF) as u8;
            if !(1..=8).contains(&count) {
                return err;
            }
            Ok(Instr::Dyser(DyserInstr::RecvVec { vport, base: Reg::new(rs1_bits), count }))
        }
        op3a::DFENCE => Ok(Instr::Dyser(DyserInstr::Fence)),
        op3a::TRAP => Ok(Instr::Trap { code: (word & 0xFFF) as u16 }),
        op3a::SIMCALL => Ok(Instr::SimCall { code: (word & 0xFFF) as u16 }),
        op3a::HALT => Ok(Instr::Halt),
        _ => err,
    }
}

fn decode_mem(word: u32) -> Result<Instr, DecodeError> {
    let rd_bits = ((word >> 25) & 0x1F) as u8;
    let op3 = (word >> 19) & 0x3F;
    let rs1 = Reg::new(((word >> 14) & 0x1F) as u8);
    let op2 = decode_op2(word);
    let load = |kind| Instr::Load { kind, rd: Reg::new(rd_bits), rs1, op2 };
    let store = |kind| Instr::Store { kind, rs: Reg::new(rd_bits), rs1, op2 };
    match op3 {
        op3m::LDX => Ok(load(LoadKind::Ldx)),
        op3m::LDUW => Ok(load(LoadKind::Lduw)),
        op3m::LDSW => Ok(load(LoadKind::Ldsw)),
        op3m::LDUB => Ok(load(LoadKind::Ldub)),
        op3m::STX => Ok(store(StoreKind::Stx)),
        op3m::STW => Ok(store(StoreKind::Stw)),
        op3m::STB => Ok(store(StoreKind::Stb)),
        op3m::LDDF => Ok(Instr::LoadF { rd: FReg::new(rd_bits), rs1, op2 }),
        op3m::STDF => Ok(Instr::StoreF { rs: FReg::new(rd_bits), rs1, op2 }),
        _ => Err(DecodeError { word }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::reg;

    fn roundtrip(i: Instr) {
        let word = encode(&i);
        let back = decode(word).unwrap_or_else(|e| panic!("decoding {i}: {e}"));
        assert_eq!(back, i, "roundtrip of {i} (word 0x{word:08x})");
    }

    #[test]
    fn roundtrip_alu_all_ops() {
        for op in AluOp::ALL {
            roundtrip(Instr::Alu { op, rd: reg::O0, rs1: reg::O1, op2: Op2::Reg(reg::O2) });
            roundtrip(Instr::Alu { op, rd: reg::L3, rs1: reg::I2, op2: Op2::Imm(-42) });
            roundtrip(Instr::Alu { op, rd: reg::G1, rs1: reg::G0, op2: Op2::Imm(4095) });
            roundtrip(Instr::Alu { op, rd: reg::G1, rs1: reg::G0, op2: Op2::Imm(-4096) });
        }
    }

    #[test]
    fn roundtrip_fp_all_ops() {
        for op in FpOp::ALL {
            roundtrip(Instr::Fpu { op, rd: FReg::new(0), rs1: FReg::new(7), rs2: FReg::new(31) });
        }
        roundtrip(Instr::FCmp { rs1: FReg::new(2), rs2: FReg::new(3) });
    }

    #[test]
    fn roundtrip_memory() {
        for kind in LoadKind::ALL {
            roundtrip(Instr::Load { kind, rd: reg::O0, rs1: reg::O1, op2: Op2::Imm(16) });
        }
        for kind in StoreKind::ALL {
            roundtrip(Instr::Store { kind, rs: reg::O3, rs1: reg::O4, op2: Op2::Reg(reg::O5) });
        }
        roundtrip(Instr::LoadF { rd: FReg::new(4), rs1: reg::O0, op2: Op2::Imm(-8) });
        roundtrip(Instr::StoreF { rs: FReg::new(5), rs1: reg::O1, op2: Op2::Imm(8) });
    }

    #[test]
    fn roundtrip_branches() {
        for cond in ICond::ALL {
            roundtrip(Instr::Branch { cond, disp: -100 });
            roundtrip(Instr::Branch { cond, disp: (1 << 21) - 1 });
        }
        for cond in FCond::ALL {
            roundtrip(Instr::BranchF { cond, disp: 77 });
        }
        for cond in RCond::ALL {
            roundtrip(Instr::BranchReg { cond, rs1: reg::L0, disp: -32768 });
            roundtrip(Instr::BranchReg { cond, rs1: reg::L0, disp: 32767 });
        }
        roundtrip(Instr::Call { disp: -123456 });
        roundtrip(Instr::Jmpl { rd: reg::G0, rs1: reg::O7, op2: Op2::Imm(8) });
    }

    #[test]
    fn roundtrip_dyser() {
        use DyserInstr as D;
        let p = Port::new(5);
        let vp = VecPort::new(3);
        let cases = [
            D::Init { config: ConfigId::new(17) },
            D::Send { port: p, rs: reg::O2 },
            D::SendF { port: p, rs: FReg::new(9) },
            D::Recv { port: p, rd: reg::L1 },
            D::RecvF { port: p, rd: FReg::new(30) },
            D::Load { port: p, rs1: reg::O0, op2: Op2::Imm(24) },
            D::Store { port: p, rs1: reg::O1, op2: Op2::Reg(reg::O2) },
            D::SendVec { vport: vp, base: reg::L0, count: 4 },
            D::RecvVec { vport: vp, base: reg::L4, count: 1 },
            D::Fence,
        ];
        for d in cases {
            roundtrip(Instr::Dyser(d));
        }
    }

    #[test]
    fn roundtrip_misc() {
        roundtrip(Instr::Sethi { rd: reg::O0, imm22: 0x3F_FFFF });
        roundtrip(Instr::MovCc { cond: ICond::Gt, rd: reg::O0, op2: Op2::Imm(1) });
        roundtrip(Instr::Nop);
        roundtrip(Instr::Halt);
        roundtrip(Instr::SimCall { code: 3 });
        roundtrip(Instr::Trap { code: 4 });
        roundtrip(Instr::Trap { code: (1 << 12) - 1 });
    }

    #[test]
    fn canonical_nop_is_sethi_zero() {
        assert_eq!(encode(&Instr::Nop), encode(&Instr::Sethi { rd: reg::G0, imm22: 0 }));
        assert_eq!(decode(encode(&Instr::Nop)).unwrap(), Instr::Nop);
    }

    #[test]
    fn illegal_words_error() {
        // op=00 with an unused op2 field.
        assert!(decode(0).is_err());
        // Arithmetic format with an unassigned op3.
        assert!(decode((0b10 << 30) | (0x3F << 19)).is_err());
        // Memory format with an unassigned op3.
        assert!(decode((0b11u32 << 30) | (0x3F << 19)).is_err());
        // Vector transfer with count 0.
        let bad = (0b10 << 30) | (super::op3a::DSENDV << 19) | (1 << 13);
        assert!(decode(bad).is_err());
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_branch_panics() {
        let _ = encode(&Instr::Branch { cond: ICond::Always, disp: 1 << 22 });
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_imm_panics() {
        let _ = encode(&Instr::Alu { op: AluOp::Add, rd: reg::O0, rs1: reg::O1, op2: Op2::Imm(4096) });
    }

    #[test]
    fn decode_error_display() {
        let e = DecodeError { word: 0xDEAD_BEEF };
        assert_eq!(e.to_string(), "illegal instruction word 0xdeadbeef");
    }
}
