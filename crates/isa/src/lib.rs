//! # dyser-isa
//!
//! A SPARC-flavoured 64-bit instruction set with the DySER accelerator
//! extension, as used by the SPARC-DySER prototype (ISPASS 2015).
//!
//! The crate provides:
//!
//! * [`Reg`]/[`FReg`] — the integer and floating-point register files of an
//!   OpenSPARC-T1-like core (windowing is intentionally flattened; see the
//!   substitution notes in `DESIGN.md`),
//! * [`Instr`] — the decoded instruction representation shared by the
//!   compiler back end, the assembler, and the pipeline model,
//! * [`encode()`](encode())/[`decode`] — a fixed 32-bit binary encoding in the spirit of
//!   the SPARC V9 formats (format 1 call / format 2 branches / format 3
//!   register ops). The encoding is *internally consistent and lossless*,
//!   but it is not bit-compatible with real SPARC V9: the prototype's
//!   evaluation depends on instruction counts and timing classes, not on
//!   binary compatibility,
//! * [`Assembler`] — a small two-pass assembler with named labels, used by
//!   the code generator and by hand-written kernels,
//! * the [`dyser`] module — the ISA-exposed accelerator interface
//!   (`dinit`, `dsend`, `drecv`, `dload`, `dstore`, vector transfers and
//!   `dfence`), mirroring the ISA extension the paper adds to OpenSPARC.
//!
//! ## Example
//!
//! ```
//! use dyser_isa::{Assembler, Instr, AluOp, Op2, regs};
//!
//! let mut asm = Assembler::new();
//! asm.push(Instr::alu(AluOp::Add, regs::O0, regs::O1, Op2::Imm(4)));
//! asm.push(Instr::Halt);
//! let words = asm.assemble().unwrap();
//! assert_eq!(words.len(), 2);
//! ```


#![warn(missing_docs)]
pub mod asm;
pub mod cond;
pub mod dyser;
pub mod encode;
pub mod instr;
pub mod reg;

pub use asm::{AsmError, Assembler};
pub use cond::{FCond, Fcc, ICond, Icc, RCond};
pub use dyser::{ConfigId, DyserInstr, Port, VecPort};
pub use encode::{decode, encode, DecodeError};
pub use instr::{AluOp, FpOp, Instr, LoadKind, Op2, StoreKind};
pub use reg::{FReg, Reg};

/// Named integer register constants (`regs::O0`, `regs::G0`, ...).
pub use reg::reg_names as regs;

pub use instr::InstrClass;

/// Architectural word size in bytes (SPARC V9 is a 64-bit architecture).
pub const WORD_BYTES: u64 = 8;

/// Size of one encoded instruction in bytes.
pub const INSTR_BYTES: u64 = 4;
